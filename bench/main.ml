(* Benchmark & experiment harness.

   The paper's evaluation artifacts are its worked examples — there is no
   performance study to match numerically.  This harness therefore has two
   parts:

   1. Experiment reproductions E1-E8 (see DESIGN.md's experiment index):
      every figure and table of the paper regenerated exactly (E1-E4), plus
      the scaling/overhead/ablation studies the architecture motivates
      (E5-E8).  Each prints paper-expected vs measured values.

   2. Bechamel microbenchmarks of the core operations (coverage, grounding,
      the refinement pipeline, SQL analysis, miners, enforcement, audit
      store).

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe -- quick     -- experiments only, skip Bechamel
     dune exec bench/main.exe -- coverage  -- only E11, regenerating BENCH_coverage.json
     dune exec bench/main.exe -- wal       -- only E12, regenerating BENCH_wal.json
     dune exec bench/main.exe -- governor  -- only E13, regenerating BENCH_governor.json

   (or `make bench` / `make bench-quick` / `make bench-coverage`). *)

module C = Prima_core.Coverage
module P = Prima_core.Policy
module R = Prima_core.Rule
module Ref = Prima_core.Refinement
module S = Workload.Scenario

let attrs = Vocabulary.Audit_attrs.pattern

let header id title =
  Fmt.pr "@.============================================================@.";
  Fmt.pr "%s: %s@." id title;
  Fmt.pr "============================================================@."

let expect label ~paper ~measured =
  let ok = paper = measured in
  Fmt.pr "%-46s paper: %-28s measured: %-28s %s@." label paper measured
    (if ok then "[ok]" else "[MISMATCH]");
  ok

let all_ok = ref true

let check label ~paper ~measured = if not (expect label ~paper ~measured) then all_ok := false

let time_it f =
  let t0 = Sys.time () in
  let result = f () in
  (result, Sys.time () -. t0)

(* ------------------------------------------------------------------ *)
(* E1: Figure 1 — the sample privacy policy vocabulary.                 *)
(* ------------------------------------------------------------------ *)

let e1 () =
  header "E1" "Figure 1 — sample privacy policy vocabulary";
  let vocab = S.vocab () in
  Fmt.pr "%a" Vocabulary.Vocab.pp vocab;
  check "ground set of (data, demographic)" ~paper:"4 terms"
    ~measured:
      (Printf.sprintf "%d terms"
         (List.length (Vocabulary.Vocab.ground_set vocab ~attr:"data" ~value:"demographic")));
  check "(data, gender) is ground" ~paper:"true"
    ~measured:(string_of_bool (Vocabulary.Vocab.is_ground vocab ~attr:"data" ~value:"gender"));
  check "(data, demographic) is composite" ~paper:"true"
    ~measured:
      (string_of_bool (not (Vocabulary.Vocab.is_ground vocab ~attr:"data" ~value:"demographic")))

(* ------------------------------------------------------------------ *)
(* E2: Figure 3 — coverage computation on the example system.           *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2" "Figure 3 — example scenario illustrating coverage computation";
  let vocab = S.vocab () in
  let p_ps = S.policy_store () in
  let p_al = S.figure3_audit_policy () in
  Fmt.pr "Policy store (composite level):@.%a@." P.pp p_ps;
  let range = Prima_core.Range.of_policy vocab (P.project p_ps ~attrs) in
  Fmt.pr "Ground policy P_PS' (%d rules)@.@." (Prima_core.Range.cardinality range);
  Fmt.pr "Audit-log policy P_AL with match status:@.";
  List.iteri
    (fun i rule ->
      let projected = Option.get (R.project rule ~attrs) in
      let covered = Prima_core.Range.covers vocab range projected in
      Fmt.pr "  %d. %-45s %s@." (i + 1)
        (R.to_compact_string ~attrs projected)
        (if covered then "matched" else "EXCEPTION SCENARIO"))
    (P.rules p_al);
  let stats = C.aligned ~bag:false vocab ~attrs ~p_x:p_ps ~p_y:p_al in
  Fmt.pr "@.";
  check "matched rules" ~paper:"3 (rules 1,2,5)"
    ~measured:(Printf.sprintf "%d (rules 1,2,5)" stats.C.overlap);
  check "ComputeCoverage(P_PS, P_AL, V)" ~paper:"3/6 = 50%"
    ~measured:
      (Printf.sprintf "%d/%d = %.0f%%" stats.C.overlap stats.C.denominator
         (100. *. stats.C.coverage))

(* ------------------------------------------------------------------ *)
(* E3: Table 1 + the Section 5 refinement run.                          *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3" "Table 1 + Section 5 — audit trail, refinement, pattern adoption";
  let vocab = S.vocab () in
  let p_ps = S.policy_store () in
  let p_al = S.table1_audit_policy () in
  Prima_core.Report.pp_audit_table Fmt.stdout (P.rules p_al);
  Fmt.pr "@.";
  let before = C.aligned ~bag:true vocab ~attrs ~p_x:p_ps ~p_y:p_al in
  check "coverage of the snapshot" ~paper:"3/10 = 30%"
    ~measured:
      (Printf.sprintf "%d/%d = %.0f%%" before.C.overlap before.C.denominator
         (100. *. before.C.coverage));
  let practice = Prima_core.Filter.run p_al in
  check "Filter(P_AL) practice entries" ~paper:"7 (t3,t4,t6-t10)"
    ~measured:(Printf.sprintf "%d (t3,t4,t6-t10)" (P.cardinality practice));
  Fmt.pr "@.Generated analysis statement (Algorithm 5):@.  %s@.@."
    (Prima_core.Data_analysis.statement ~table_name:"practice"
       Prima_core.Data_analysis.default_config);
  let report = Ref.run_epoch ~vocab ~p_ps ~p_al () in
  check "patterns extracted" ~paper:"1"
    ~measured:(string_of_int (List.length report.Ref.patterns));
  check "the pattern" ~paper:"Referral:Registration:Nurse"
    ~measured:
      (String.concat ":"
         (List.map String.capitalize_ascii
            (String.split_on_char ':'
               (R.to_compact_string ~attrs (List.hd report.Ref.patterns)))));
  check "useful after Prune" ~paper:"1"
    ~measured:(string_of_int (List.length report.Ref.useful));
  check "coverage after adoption" ~paper:"8/10 = 80%"
    ~measured:
      (Printf.sprintf "%d/%d = %.0f%%" report.Ref.coverage_after.C.overlap
         report.Ref.coverage_after.C.denominator
         (100. *. report.Ref.coverage_after.C.coverage))

(* ------------------------------------------------------------------ *)
(* E4: Figure 2 — the coverage-improvement trajectory.                  *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4" "Figure 2 — policy coverage improving through refinement";
  let config =
    { (Workload.Hospital.default_config ()) with
      Workload.Hospital.total_accesses = 1600;
      epoch_size = 200;
    }
  in
  let vocab = config.Workload.Hospital.vocab in
  let trail = Workload.Generator.generate config in
  let batches =
    List.map
      (fun b -> Audit_mgmt.To_policy.policy_of_entries (Workload.Generator.entries b))
      (Workload.Generator.epochs config trail)
  in
  let oracle = Workload.Generator.oracle config in
  let ref_config = { Ref.default_config with Ref.acceptance = Ref.Oracle oracle } in
  let reports, final =
    Ref.run_epochs ~config:ref_config ~vocab
      ~p_ps:(Workload.Hospital.policy_store config) ~batches ()
  in
  let series =
    List.mapi
      (fun i r ->
        (Printf.sprintf "epoch %d" (i + 1), r.Ref.coverage_before.C.coverage))
      reports
  in
  Prima_core.Report.pp_series Fmt.stdout series;
  let first = (List.hd reports).Ref.coverage_before.C.coverage in
  let last = (List.nth reports (List.length reports - 1)).Ref.coverage_before.C.coverage in
  Fmt.pr "@.";
  check "trajectory moves towards complete coverage" ~paper:"increasing"
    ~measured:(if last > first then "increasing" else "NOT increasing");
  let covered = Workload.Generator.practices_covered config final in
  check "informal practices documented" ~paper:"all (oracle-guided)"
    ~measured:
      (if List.length covered = List.length config.Workload.Hospital.informal then
         "all (oracle-guided)"
       else
         Printf.sprintf "%d/%d" (List.length covered)
           (List.length config.Workload.Hospital.informal))

(* ------------------------------------------------------------------ *)
(* E5: scaling of ComputeCoverage and the refinement pipeline.          *)
(* ------------------------------------------------------------------ *)

let synthetic_policy config n =
  let trail =
    Workload.Generator.generate { config with Workload.Hospital.total_accesses = n }
  in
  Audit_mgmt.To_policy.policy_of_entries (Workload.Generator.entries trail)

let e5 () =
  header "E5" "Scaling — coverage and refinement cost vs audit-log size";
  let config = Workload.Hospital.default_config () in
  let vocab = config.Workload.Hospital.vocab in
  let p_ps = Workload.Hospital.policy_store config in
  Fmt.pr "%-12s %-18s %-18s@." "log size" "coverage (ms)" "refinement (ms)";
  List.iter
    (fun n ->
      let p_al = synthetic_policy config n in
      let _, t_cov =
        time_it (fun () -> C.aligned ~bag:true vocab ~attrs ~p_x:p_ps ~p_y:p_al)
      in
      let _, t_ref = time_it (fun () -> Ref.run_epoch ~vocab ~p_ps ~p_al ()) in
      Fmt.pr "%-12d %-18.2f %-18.2f@." n (1000. *. t_cov) (1000. *. t_ref))
    [ 1000; 4000; 16000 ];
  Fmt.pr "@.Grounding cost vs vocabulary size:@.";
  Fmt.pr "%-12s %-10s %-14s@." "vocabulary" "values" "range (rules)";
  List.iter
    (fun (name, vocab, p) ->
      let range, t = time_it (fun () -> Prima_core.Range.of_policy vocab p) in
      Fmt.pr "%-12s %-10d %-8d (%.2f ms)@." name
        (Vocabulary.Vocab.cardinality vocab)
        (Prima_core.Range.cardinality range)
        (1000. *. t))
    [ ("figure1", S.vocab (), S.policy_store ());
      ("hospital", config.Workload.Hospital.vocab, p_ps);
    ]

(* ------------------------------------------------------------------ *)
(* E6: Active Enforcement overhead and audit-store storage efficiency.  *)
(* ------------------------------------------------------------------ *)

let setup_enforced_clinical n =
  let vocab = S.vocab () in
  let control = Hdb.Control_center.create ~vocab () in
  ignore
    (Hdb.Control_center.admin_exec control
       "CREATE TABLE records (patient TEXT, referral TEXT, psychiatry TEXT, address TEXT)");
  let engine = Hdb.Control_center.engine control in
  for i = 1 to n do
    Relational.Engine.insert_row engine ~table:"records"
      [ Relational.Value.Str (Printf.sprintf "p%04d" i);
        Relational.Value.Str "cardiology"; Relational.Value.Str "none";
        Relational.Value.Str "12 Elm St";
      ]
  done;
  Hdb.Control_center.set_patient_column control ~table:"records" ~column:"patient";
  Hdb.Control_center.map_column control ~table:"records" ~column:"referral"
    ~category:"referral";
  Hdb.Control_center.map_column control ~table:"records" ~column:"psychiatry"
    ~category:"psychiatry";
  Hdb.Control_center.map_column control ~table:"records" ~column:"address"
    ~category:"address";
  Hdb.Control_center.permit control ~data:"routine" ~purpose:"treatment" ~authorized:"nurse";
  for i = 1 to n / 20 do
    Hdb.Control_center.opt_out control
      ~patient:(Printf.sprintf "p%04d" (i * 20))
      ~purpose:"treatment" ~data:"referral"
  done;
  control

let e6 () =
  header "E6" "Active Enforcement overhead & audit-store storage (Section 4.1/4.2)";
  let rows = 2000 in
  let control = setup_enforced_clinical rows in
  let engine = Hdb.Control_center.engine control in
  let iterations = 50 in
  let sql = "SELECT patient, referral FROM records WHERE referral = 'cardiology'" in
  let _, t_raw =
    time_it (fun () ->
        for _ = 1 to iterations do
          ignore (Relational.Engine.query engine sql)
        done)
  in
  let _, t_enforced =
    time_it (fun () ->
        for _ = 1 to iterations do
          match
            Hdb.Control_center.query control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
              sql
          with
          | Ok _ -> ()
          | Error _ -> failwith "unexpected denial"
        done)
  in
  let per_query t = 1000. *. t /. float_of_int iterations in
  Fmt.pr "clinical rows: %d, %d query iterations@.@." rows iterations;
  Fmt.pr "raw query                 : %.3f ms/query@." (per_query t_raw);
  Fmt.pr "enforced (rewrite+audit)  : %.3f ms/query@." (per_query t_enforced);
  Fmt.pr "overhead                  : %.1fx@." (t_enforced /. t_raw);
  check "enforcement overhead is bounded" ~paper:"minimal impact (< 10x here)"
    ~measured:
      (if t_enforced /. t_raw < 10. then "minimal impact (< 10x here)"
       else Printf.sprintf "%.1fx" (t_enforced /. t_raw));
  let config = Workload.Hospital.default_config () in
  let entries =
    Workload.Generator.entries
      (Workload.Generator.generate
         { config with Workload.Hospital.total_accesses = 50000 })
  in
  let store = Hdb.Audit_store.of_entries entries in
  let naive = Hdb.Audit_store.naive_bytes store in
  let encoded = Hdb.Audit_store.encoded_bytes store in
  Fmt.pr "@.audit entries             : %d@." (Hdb.Audit_store.length store);
  Fmt.pr "naive row-store bytes     : %d@." naive;
  Fmt.pr "dictionary-encoded bytes  : %d@." encoded;
  Fmt.pr "compression ratio         : %.2fx@." (float_of_int naive /. float_of_int encoded);
  check "storage-efficient logs" ~paper:"smaller than naive"
    ~measured:(if encoded < naive then "smaller than naive" else "LARGER")

(* ------------------------------------------------------------------ *)
(* E7: pattern-extraction ablation — SQL vs Apriori vs FP-growth.       *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7" "Pattern extraction ablation — SQL GROUP BY vs frequent-pattern mining";
  let config =
    { (Workload.Hospital.default_config ()) with Workload.Hospital.total_accesses = 3000 }
  in
  let trail = Workload.Generator.generate config in
  let p_al = Audit_mgmt.To_policy.policy_of_entries (Workload.Generator.entries trail) in
  let practice = Prima_core.Filter.run p_al in
  Fmt.pr "practice entries: %d@.@." (P.cardinality practice);
  let module EP = Prima_core.Extract_patterns in
  let sorted ps = List.sort String.compare (List.map (R.to_compact_string ~attrs) ps) in
  let sql_patterns, t_sql = time_it (fun () -> EP.run practice) in
  let apriori, t_ap =
    time_it (fun () -> EP.run ~backend:(EP.Mining EP.default_mining) practice)
  in
  let fp, t_fp =
    time_it (fun () ->
        EP.run
          ~backend:(EP.Mining { EP.default_mining with EP.algorithm = `Fp_growth })
          practice)
  in
  Fmt.pr "%-14s %-10s %-12s@." "backend" "patterns" "time (ms)";
  Fmt.pr "%-14s %-10d %-12.2f@." "sql" (List.length sql_patterns) (1000. *. t_sql);
  Fmt.pr "%-14s %-10d %-12.2f@." "apriori" (List.length apriori) (1000. *. t_ap);
  Fmt.pr "%-14s %-10d %-12.2f@." "fp-growth" (List.length fp) (1000. *. t_fp);
  Fmt.pr "@.";
  check "apriori finds the SQL patterns" ~paper:"identical"
    ~measured:(if sorted sql_patterns = sorted apriori then "identical" else "DIFFERENT");
  check "fp-growth finds the SQL patterns" ~paper:"identical"
    ~measured:(if sorted sql_patterns = sorted fp then "identical" else "DIFFERENT");
  let interner, correlations = EP.correlations ~min_support:50 ~min_confidence:0.95 practice in
  Fmt.pr "@.Cross-attribute correlations (only the mining backend surfaces these):@.";
  List.iteri
    (fun i rule -> if i < 5 then Fmt.pr "  %a@." (Mining.Assoc_rules.pp interner) rule)
    correlations;
  check "mining adds correlations beyond GROUP BY" ~paper:"> 0"
    ~measured:(if correlations <> [] then "> 0" else "none")

(* ------------------------------------------------------------------ *)
(* E8: violation contamination — refinement quality vs violation rate.  *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8" "Violation contamination — precision/recall of unsupervised adoption";
  Fmt.pr
    "Accept-all refinement (no human/oracle), varying the rogue-access rate.@.\
     precision = adopted patterns that are genuine informal practice;@.\
     recall    = informal practices documented after refinement.@.@.";
  Fmt.pr "%-10s %-10s %-10s %-10s %-22s@." "violation" "adopted" "precision" "recall"
    "distinct-user condition";
  let base = Workload.Hospital.default_config () in
  let run ~rate ~with_condition =
    let config =
      { base with Workload.Hospital.violation_rate = rate; total_accesses = 3000 }
    in
    let trail = Workload.Generator.generate config in
    let p_al = Audit_mgmt.To_policy.policy_of_entries (Workload.Generator.entries trail) in
    let sql_config =
      if with_condition then Prima_core.Data_analysis.default_config
      else
        { Prima_core.Data_analysis.default_config with
          Prima_core.Data_analysis.condition = None;
        }
    in
    let ref_config =
      { Ref.default_config with Ref.backend = Prima_core.Extract_patterns.Sql sql_config }
    in
    let report =
      Ref.run_epoch ~config:ref_config ~vocab:config.Workload.Hospital.vocab
        ~p_ps:(Workload.Hospital.policy_store config) ~p_al ()
    in
    let adopted = report.Ref.accepted in
    let genuine = List.filter (Workload.Hospital.is_informal_pattern config) adopted in
    let covered = Workload.Generator.practices_covered config report.Ref.p_ps' in
    let precision =
      if adopted = [] then 1.0
      else float_of_int (List.length genuine) /. float_of_int (List.length adopted)
    in
    let recall =
      float_of_int (List.length covered)
      /. float_of_int (List.length config.Workload.Hospital.informal)
    in
    Fmt.pr "%-10.2f %-10d %-10.2f %-10.2f %-22s@." rate (List.length adopted) precision
      recall
      (if with_condition then "on" else "off");
    (precision, recall)
  in
  let rates = [ 0.0; 0.02; 0.05; 0.10; 0.20 ] in
  let with_cond = List.map (fun rate -> run ~rate ~with_condition:true) rates in
  Fmt.pr "@.";
  let without_cond = List.map (fun rate -> run ~rate ~with_condition:false) rates in
  Fmt.pr "@.";
  let avg xs = List.fold_left (fun a (p, _) -> a +. p) 0. xs /. float_of_int (List.length xs) in
  check "condition improves or preserves precision" ~paper:"avg precision >="
    ~measured:(if avg with_cond >= avg without_cond then "avg precision >=" else "WORSE");
  check "recall stays high at low violation rates" ~paper:">= 0.8"
    ~measured:(if snd (List.hd with_cond) >= 0.8 then ">= 0.8" else "low")

(* ------------------------------------------------------------------ *)
(* E9: generalization ablation — rule-base size after refinement.       *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9" "Generalization ablation — abstract rules vs refinement-accreted ground rules";
  Fmt.pr
    "Section 2 observes that broad (composite) purposes exist to keep the@.\
     rule base small.  Refinement adopts *ground* patterns; this ablation@.\
     grounds the hospital's documented policy (what a naively accreted@.\
     store converges to) and measures what Analysis.generalize recovers.@.@.";
  let config = Workload.Hospital.default_config () in
  let vocab = config.Workload.Hospital.vocab in
  let p_ps = Workload.Hospital.policy_store config in
  let grounded =
    P.make ~source:(P.source p_ps)
      (List.concat_map (R.ground_rules vocab) (P.rules p_ps))
  in
  let generalized, summary =
    Prima_core.Analysis.summarize_generalization vocab grounded
  in
  Fmt.pr "%-28s %8s@." "policy form" "rules";
  Fmt.pr "%-28s %8d@." "original (composite)" (P.cardinality p_ps);
  Fmt.pr "%-28s %8d@." "fully grounded" (P.cardinality grounded);
  Fmt.pr "%-28s %8d@.@." "re-generalized" (P.cardinality generalized);
  check "range preserved" ~paper:"true" ~measured:(string_of_bool summary.Prima_core.Analysis.range_preserved);
  check "generalization shrinks the store" ~paper:"<= grounded"
    ~measured:
      (if P.cardinality generalized <= P.cardinality grounded then "<= grounded"
       else "GREW");
  (* Coverage judgments are identical before and after. *)
  let trail =
    Workload.Generator.generate { config with Workload.Hospital.total_accesses = 1000 }
  in
  let p_al = Audit_mgmt.To_policy.policy_of_entries (Workload.Generator.entries trail) in
  let c1 = C.aligned ~bag:true vocab ~attrs ~p_x:grounded ~p_y:p_al in
  let c2 = C.aligned ~bag:true vocab ~attrs ~p_x:generalized ~p_y:p_al in
  check "coverage unchanged by generalization"
    ~paper:(Printf.sprintf "%d/%d" c1.C.overlap c1.C.denominator)
    ~measured:(Printf.sprintf "%d/%d" c2.C.overlap c2.C.denominator)

(* ------------------------------------------------------------------ *)
(* E10: substrate parity — tree-based legacy records feed refinement.   *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10" "Tree substrate parity — XML legacy records produce the same refinement";
  let vocab = Workload.Scenario.vocab () in
  let store = Treedata.Tree_store.create () in
  Treedata.Tree_store.put_xml store ~patient:"p1"
    "<record><referrals><referral to=\"cardiology\"/></referrals></record>";
  Treedata.Tree_store.map_path store ~path:"//referral" ~category:"referral";
  let rules = Hdb.Privacy_rules.create ~vocab in
  Hdb.Privacy_rules.add rules ~data:"routine" ~purpose:"treatment" ~authorized:"nurse" ();
  let consent = Hdb.Consent.create ~vocab () in
  let logger = Hdb.Audit_logger.create () in
  let enforcement = Treedata.Tree_enforcement.create ~store ~rules ~consent ~logger in
  (* The same nurses break the glass for registration, as in Table 1. *)
  List.iter
    (fun user ->
      match
        Treedata.Tree_enforcement.retrieve ~break_glass:true enforcement
          { Treedata.Tree_enforcement.user; role = "nurse"; purpose = "registration" }
          ~patient:"p1"
      with
      | Ok _ -> ()
      | Error e -> failwith (Treedata.Tree_enforcement.error_to_string e))
    [ "mark"; "tim"; "bob"; "mark"; "olga" ];
  let p_al = Audit_mgmt.To_policy.policy_of_store (Hdb.Audit_logger.store logger) in
  let report =
    Ref.run_epoch ~vocab ~p_ps:(Workload.Scenario.policy_store ()) ~p_al ()
  in
  check "pattern found from tree audit trail" ~paper:"Referral:Registration:Nurse"
    ~measured:
      (match report.Ref.useful with
      | [ rule ] ->
        String.concat ":"
          (List.map String.capitalize_ascii
             (String.split_on_char ':' (R.to_compact_string ~attrs rule)))
      | other -> Printf.sprintf "%d patterns" (List.length other))

(* ------------------------------------------------------------------ *)
(* E11: coverage scaling — seed set-based Range vs hash-based Range.    *)
(* ------------------------------------------------------------------ *)

(* Algorithm 1 on the preserved seed implementation
   (Prima_core.Range_reference): materialise both ranges as balanced sets
   with memo-free grounding, intersect, count. *)
let set_coverage vocab ~p_x ~p_y =
  let module RR = Prima_core.Range_reference in
  let range_x = RR.of_policy vocab p_x in
  let range_y = RR.of_policy vocab p_y in
  (RR.cardinality (RR.inter range_x range_y), RR.cardinality range_y)

let time_per_call ~iterations f =
  ignore (f ());
  (* warm-up: populates the grounding memo, as in steady-state epochs *)
  let t0 = Sys.time () in
  for _ = 1 to iterations do
    ignore (f ())
  done;
  1000. *. (Sys.time () -. t0) /. float_of_int iterations

(* A complete [branching]-ary taxonomy of the given depth per pattern
   attribute, for the vocabulary axis of the sweep. *)
let synthetic_vocab ~depth ~branching =
  let tax attr =
    let counter = ref 0 in
    let fresh () =
      let v = Printf.sprintf "%s%d" attr !counter in
      incr counter;
      v
    in
    let rec build d =
      let value = fresh () in
      if d >= depth then Vocabulary.Taxonomy.leaf value
      else Vocabulary.Taxonomy.node value (List.init branching (fun _ -> build (d + 1)))
    in
    Vocabulary.Taxonomy.create ~attr (build 1)
  in
  Vocabulary.Vocab.of_taxonomies (List.map tax attrs)

let synthetic_policies prng vocab ~store_rules ~audit_rules =
  let values attr = Vocabulary.Taxonomy.all_values (Vocabulary.Vocab.taxonomy vocab attr) in
  let leaves attr =
    Vocabulary.Taxonomy.ground_values (Vocabulary.Vocab.taxonomy vocab attr)
  in
  let rule pick =
    R.of_assoc (List.map (fun attr -> (attr, Workload.Prng.pick prng (pick attr))) attrs)
  in
  ( P.make (List.init store_rules (fun _ -> rule values)),
    P.make (List.init audit_rules (fun _ -> rule leaves)) )

let e11 () =
  header "E11" "Coverage scaling — hash-based Range vs the seed set-based Range";
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "{\n  \"experiment\": \"coverage-scaling\",\n";
  Buffer.add_string buffer "  \"baseline\": \"seed set-based Range (Range_reference)\",\n";
  Buffer.add_string buffer "  \"candidate\": \"hash-based Range + memoized grounding\",\n";
  (* --- axis 1: audit-log size, realistic hospital trails --- *)
  let config = Workload.Hospital.default_config () in
  let vocab = config.Workload.Hospital.vocab in
  let p_ps = P.project (Workload.Hospital.policy_store config) ~attrs in
  Fmt.pr "@.Audit-log size sweep (hospital vocabulary):@.";
  Fmt.pr "%-10s %-12s %-12s %-14s %-10s@." "log size" "set (ms)" "hash (ms)" "hash-fast (ms)"
    "speedup";
  Buffer.add_string buffer "  \"policy_size_sweep\": [\n";
  let size_speedups =
    List.map
      (fun n ->
        let p_al = P.project (synthetic_policy config n) ~attrs in
        let iterations = if n >= 16000 then 3 else 5 in
        let t_set =
          time_per_call ~iterations:1 (fun () -> set_coverage vocab ~p_x:p_ps ~p_y:p_al)
        in
        let t_hash =
          time_per_call ~iterations (fun () -> C.compute vocab ~p_x:p_ps ~p_y:p_al)
        in
        let t_fast =
          time_per_call ~iterations (fun () ->
              C.compute ~uncovered:false vocab ~p_x:p_ps ~p_y:p_al)
        in
        let speedup = t_set /. t_hash in
        Fmt.pr "%-10d %-12.2f %-12.2f %-14.2f %-10.1f@." n t_set t_hash t_fast speedup;
        Buffer.add_string buffer
          (Printf.sprintf
             "    {\"log_size\": %d, \"set_ms\": %.3f, \"hash_ms\": %.3f, \
              \"hash_fast_ms\": %.3f, \"speedup\": %.1f}%s\n"
             n t_set t_hash t_fast speedup
             (if n = 16000 then "" else ","));
        (n, speedup))
      [ 1000; 4000; 16000 ]
  in
  Buffer.add_string buffer "  ],\n";
  (* --- axis 2: vocabulary depth, synthetic complete taxonomies --- *)
  Fmt.pr "@.Vocabulary depth sweep (branching 3, 400 store rules, 4000 audit rules):@.";
  Fmt.pr "%-8s %-8s %-12s %-12s %-12s %-10s@." "depth" "values" "range" "set (ms)"
    "hash (ms)" "speedup";
  Buffer.add_string buffer "  \"vocab_depth_sweep\": [\n";
  let depth_speedups =
    List.map
      (fun depth ->
        let svocab = synthetic_vocab ~depth ~branching:3 in
        let prng = Workload.Prng.create ~seed:(1000 + depth) in
        let p_x, p_y = synthetic_policies prng svocab ~store_rules:400 ~audit_rules:4000 in
        let range_card = Prima_core.Range.cardinality (Prima_core.Range.of_policy svocab p_x) in
        let t_set =
          time_per_call ~iterations:1 (fun () -> set_coverage svocab ~p_x ~p_y)
        in
        let t_hash =
          time_per_call ~iterations:3 (fun () -> C.compute svocab ~p_x ~p_y)
        in
        let speedup = t_set /. t_hash in
        Fmt.pr "%-8d %-8d %-12d %-12.2f %-12.2f %-10.1f@." depth
          (Vocabulary.Vocab.cardinality svocab) range_card t_set t_hash speedup;
        Buffer.add_string buffer
          (Printf.sprintf
             "    {\"depth\": %d, \"vocab_values\": %d, \"range_cardinality\": %d, \
              \"set_ms\": %.3f, \"hash_ms\": %.3f, \"speedup\": %.1f}%s\n"
             depth
             (Vocabulary.Vocab.cardinality svocab)
             range_card t_set t_hash speedup
             (if depth = 5 then "" else ","));
        (depth, speedup))
      [ 2; 3; 4; 5 ]
  in
  Buffer.add_string buffer "  ],\n";
  let largest_size = List.assoc 16000 size_speedups in
  let largest_depth = List.assoc 5 depth_speedups in
  Buffer.add_string buffer
    (Printf.sprintf
       "  \"largest_point\": {\"log_size_16000_speedup\": %.1f, \
        \"vocab_depth_5_speedup\": %.1f}\n}\n"
       largest_size largest_depth);
  let oc = open_out "BENCH_coverage.json" in
  output_string oc (Buffer.contents buffer);
  close_out oc;
  Fmt.pr "@.wrote BENCH_coverage.json@.";
  check "hash-based coverage >= 5x faster on the largest sweep point" ~paper:">= 5x"
    ~measured:(if largest_size >= 5.0 then ">= 5x" else Printf.sprintf "%.1fx" largest_size)

(* Minimum over iterations, not the mean: used where the gate is tight
   (hash-chain replay 15%, governed queries 5%) — the per-record cost
   under test is a handful of integer ops, so scheduler noise would
   otherwise dominate the measurement. *)
let min_time ~iterations f =
  ignore (f ());
  let best = ref infinity in
  for _ = 1 to iterations do
    let t0 = Sys.time () in
    ignore (f ());
    let dt = Sys.time () -. t0 in
    if dt < !best then best := dt
  done;
  1000. *. !best

(* ------------------------------------------------------------------ *)
(* E12: WAL durability — append/sync and recovery-replay throughput.   *)
(* ------------------------------------------------------------------ *)

let e12 () =
  header "E12" "WAL durability — append/sync and recovery-replay throughput";
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "{\n  \"experiment\": \"wal-replay\",\n";
  Buffer.add_string buffer
    "  \"store\": \"Hdb.Audit_store over Durable.Log (simulated device)\",\n";
  let hospital = Workload.Hospital.default_config () in
  let entries_for n =
    Workload.Generator.entries
      (Workload.Generator.generate { hospital with Workload.Hospital.total_accesses = n })
  in
  (* A log whose WAL holds [entries] synced; replay calls wrap the same
     surviving media in a fresh Log via of_devices, as a restart would. *)
  let populated_log entries =
    let log = Durable.Log.create ~seed:7 () in
    ignore (Durable.Log.open_or_recover log);
    List.iter (fun e -> ignore (Durable.Log.append log (Hdb.Audit_schema.to_wire e))) entries;
    Durable.Log.sync log;
    log
  in
  let reopen log =
    Durable.Log.of_devices ~wal:(Durable.Log.wal_device log)
      ~snapshot:(Durable.Log.snapshot_device log)
  in
  Fmt.pr "@.Replay throughput sweep (hospital audit entries, wire-framed WAL):@.";
  Fmt.pr "%-10s %-13s %-13s %-13s %-16s@." "entries" "append (ms)" "replay (ms)" "snap (ms)"
    "replay (ev/s)";
  Buffer.add_string buffer "  \"replay_sweep\": [\n";
  let results =
    List.map
      (fun n ->
        let entries = entries_for n in
        let iterations = if n >= 16000 then 3 else 5 in
        (* append+sync: frame every entry into a fresh WAL, one fsync *)
        let t_append =
          time_per_call ~iterations (fun () ->
              let log = Durable.Log.create ~seed:7 () in
              ignore (Durable.Log.open_or_recover log);
              let store, _, _ = Hdb.Audit_store.open_durable log in
              List.iter (Hdb.Audit_store.append store) entries;
              Hdb.Audit_store.sync store)
        in
        (* replay: CRC-verify the whole WAL and decode it back into a store *)
        let wal_log = populated_log entries in
        let t_replay =
          time_per_call ~iterations (fun () ->
              let store, recovery, undecodable =
                Hdb.Audit_store.open_durable (reopen wal_log)
              in
              if
                Hdb.Audit_store.length store <> n
                || undecodable > 0
                || not (Durable.Recovery.clean recovery)
              then failwith "replay lost records")
        in
        (* snapshot: the same image compacted by a checkpoint, replayed
           from the snapshot path instead of the record-by-record WAL *)
        let snap_log = populated_log entries in
        let () =
          let store, _, _ = Hdb.Audit_store.open_durable (reopen snap_log) in
          Hdb.Audit_store.checkpoint store
        in
        let t_snap =
          time_per_call ~iterations (fun () ->
              let store, _, _ = Hdb.Audit_store.open_durable (reopen snap_log) in
              if Hdb.Audit_store.length store <> n then failwith "snapshot lost records")
        in
        let rate t = float_of_int n /. (t /. 1000.) in
        Fmt.pr "%-10d %-13.2f %-13.2f %-13.2f %-16.0f@." n t_append t_replay t_snap
          (rate t_replay);
        Buffer.add_string buffer
          (Printf.sprintf
             "    {\"entries\": %d, \"append_ms\": %.3f, \"wal_replay_ms\": %.3f, \
              \"snapshot_replay_ms\": %.3f, \"append_per_sec\": %.0f, \
              \"replay_per_sec\": %.0f}%s\n"
             n t_append t_replay t_snap (rate t_append) (rate t_replay)
             (if n = 16000 then "" else ","));
        (n, rate t_replay))
      [ 1000; 4000; 16000 ]
  in
  Buffer.add_string buffer "  ],\n";
  (* group-commit batching: the same append+sync workload with pending
     appends coalesced into one device write at each sync (sync every 100
     records, as a batched commit path would) *)
  let gc_entries = entries_for 16000 in
  let append_run ~group_commit =
    time_per_call ~iterations:3 (fun () ->
        let log = Durable.Log.create ~seed:7 () in
        ignore (Durable.Log.open_or_recover log);
        Durable.Log.set_group_commit log group_commit;
        let store, _, _ = Hdb.Audit_store.open_durable log in
        List.iteri
          (fun i e ->
            Hdb.Audit_store.append store e;
            if i mod 100 = 99 then Hdb.Audit_store.sync store)
          gc_entries;
        Hdb.Audit_store.sync store)
  in
  let t_plain = append_run ~group_commit:false in
  let t_batched = append_run ~group_commit:true in
  (* on the simulated device an append is a buffer copy, so wall time is
     near-parity; the structural win is device write boundaries: one per
     record plain, one per sync batched *)
  let n_gc = List.length gc_entries in
  Fmt.pr "@.Group-commit batching (%d entries, sync every 100):@." n_gc;
  Fmt.pr "  per-record device writes: %.2f ms (%d write boundaries)@." t_plain n_gc;
  Fmt.pr "  coalesced batch writes:   %.2f ms (%d write boundaries, %.2fx time)@."
    t_batched (n_gc / 100) (t_plain /. t_batched);
  Buffer.add_string buffer
    (Printf.sprintf
       "  \"group_commit\": {\"entries\": %d, \"sync_interval\": 100, \
        \"plain_ms\": %.3f, \"batched_ms\": %.3f, \"speedup\": %.2f, \
        \"write_boundaries_plain\": %d, \"write_boundaries_batched\": %d},\n"
       n_gc t_plain t_batched (t_plain /. t_batched) n_gc (n_gc / 100));
  (* hash-chain verification overhead: the same sealed 16000-entry WAL
     replayed twice through the raw recovery scan — once CRC-only
     (verify_chain:false, the pre-chain replay path) and once with the
     FNV-1a chain recomputed frame by frame.  The chain step is a short
     fold per payload byte on top of the CRC already touching every byte,
     so the tamper evidence must come in at <= 15% over the baseline. *)
  let chain_log = populated_log (entries_for 16000) in
  let chain_wal = Durable.Log.wal_device chain_log in
  let chain_snap = Durable.Log.snapshot_device chain_log in
  let replay_scan ~verify_chain () =
    let r = Durable.Recovery.run ~verify_chain ~wal:chain_wal ~snapshot:chain_snap () in
    if not (Durable.Recovery.clean r) then failwith "chained replay not clean"
  in
  (* interleaved min-of-7: measuring the two scans back to back in each
     iteration keeps heap drift from the earlier experiments (both scans
     allocate the same ~16k payload strings) from landing on one side of
     the comparison *)
  Gc.full_major ();
  replay_scan ~verify_chain:false ();
  replay_scan ~verify_chain:true ();
  let t_crc = ref infinity in
  let t_chained = ref infinity in
  for _ = 1 to 7 do
    let t0 = Sys.time () in
    replay_scan ~verify_chain:false ();
    let t1 = Sys.time () in
    replay_scan ~verify_chain:true ();
    let t2 = Sys.time () in
    if t1 -. t0 < !t_crc then t_crc := t1 -. t0;
    if t2 -. t1 < !t_chained then t_chained := t2 -. t1
  done;
  let t_crc = 1000. *. !t_crc in
  let t_chained = 1000. *. !t_chained in
  let chain_overhead = (t_chained -. t_crc) /. t_crc *. 100. in
  Fmt.pr "@.Hash-chained replay overhead (16000 entries, min of 7):@.";
  Fmt.pr "  CRC-only scan:    %.2f ms@." t_crc;
  Fmt.pr "  chained scan:     %.2f ms (%+.1f%%)@." t_chained chain_overhead;
  Buffer.add_string buffer
    (Printf.sprintf
       "  \"hash_chain\": {\"entries\": 16000, \"crc_only_replay_ms\": %.3f, \
        \"chained_replay_ms\": %.3f, \"overhead_pct\": %.1f, \"gate_pct\": 15},\n"
       t_crc t_chained chain_overhead);
  let largest = List.assoc 16000 results in
  Buffer.add_string buffer
    (Printf.sprintf "  \"largest_point\": {\"entries\": 16000, \"replay_per_sec\": %.0f}\n}\n"
       largest);
  let oc = open_out "BENCH_wal.json" in
  output_string oc (Buffer.contents buffer);
  close_out oc;
  Fmt.pr "@.wrote BENCH_wal.json@.";
  check "WAL replay >= 10k entries/s at the largest sweep point" ~paper:">= 10k/s"
    ~measured:(if largest >= 10_000. then ">= 10k/s" else Printf.sprintf "%.0f/s" largest);
  check "hash-chain verification <= 15% over CRC-only replay" ~paper:"<= 15%"
    ~measured:
      (if t_chained <= t_crc *. 1.15 then "<= 15%"
       else Printf.sprintf "%.1f%%" chain_overhead)

(* ------------------------------------------------------------------ *)
(* E13: query governance — budgeted Algorithm 5 vs ungoverned.          *)
(* ------------------------------------------------------------------ *)

let e13 () =
  header "E13" "Query governance — budgeted Algorithm 5 overhead vs ungoverned";
  let module DA = Prima_core.Data_analysis in
  let module B = Relational.Budget in
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "{\n  \"experiment\": \"query-governance\",\n";
  Buffer.add_string buffer "  \"baseline\": \"ungoverned Algorithm 5 (GROUP BY + HAVING)\",\n";
  Buffer.add_string buffer
    "  \"candidate\": \"same query under a strict, non-firing resource budget\",\n";
  let hospital = Workload.Hospital.default_config () in
  (* A budget with room to spare: the point is the per-check cost, not the
     quota — quotas firing is E13's degradation section below. *)
  let generous () = B.create (B.limits ~rows:1_000_000 ~tuples:100_000_000 ~ticks:1_000_000_000 ()) in
  Fmt.pr "@.Governed-query overhead sweep (hospital practice tables):@.";
  Fmt.pr "%-10s %-12s %-14s %-14s %-10s@." "log size" "practice" "plain (ms)" "governed (ms)"
    "overhead";
  Buffer.add_string buffer "  \"overhead_sweep\": [\n";
  let overheads =
    List.map
      (fun n ->
        let p_al = synthetic_policy hospital n in
        let practice = Prima_core.Filter.run p_al in
        let engine = Relational.Engine.create () in
        ignore (DA.materialize engine ~table_name:"practice" practice);
        let iterations = if n >= 16000 then 7 else 11 in
        let plain_patterns = ref [] in
        let t_plain =
          min_time ~iterations (fun () ->
              plain_patterns := DA.run engine ~table_name:"practice" DA.default_config)
        in
        let governed_patterns = ref [] in
        let t_governed =
          min_time ~iterations (fun () ->
              governed_patterns :=
                DA.run ~budget:(generous ()) engine ~table_name:"practice" DA.default_config)
        in
        if !plain_patterns <> !governed_patterns then
          failwith "governed run diverged from the ungoverned run";
        let overhead = 100. *. ((t_governed /. t_plain) -. 1.) in
        Fmt.pr "%-10d %-12d %-14.3f %-14.3f %+.1f%%@." n (P.cardinality practice) t_plain
          t_governed overhead;
        Buffer.add_string buffer
          (Printf.sprintf
             "    {\"log_size\": %d, \"practice_rows\": %d, \"plain_ms\": %.4f, \
              \"governed_ms\": %.4f, \"overhead_pct\": %.2f}%s\n"
             n (P.cardinality practice) t_plain t_governed overhead
             (if n = 16000 then "" else ","));
        (n, overhead))
      [ 1000; 4000; 16000 ]
  in
  Buffer.add_string buffer "  ],\n";
  (* Degradation: the same analysis under a starved budget returns a
     truncated (lower-bound) pattern set instead of failing. *)
  let p_al = synthetic_policy hospital 4000 in
  let practice = Prima_core.Filter.run p_al in
  let exact = DA.analyse practice in
  let starved =
    DA.analyse_governed ~limits:(B.limits ~tuples:(P.cardinality practice + 100) ()) practice
  in
  Fmt.pr "@.Degradation under a starved budget (4000-access trail):@.";
  Fmt.pr "exact patterns    : %d@." (List.length exact);
  Fmt.pr "degraded patterns : %d (lower bound: %b)@."
    (List.length starved.DA.patterns) starved.DA.degraded;
  Fmt.pr "resources consumed: %s@."
    (Relational.Errors.stats_to_string starved.DA.stats);
  Buffer.add_string buffer
    (Printf.sprintf
       "  \"degradation\": {\"exact_patterns\": %d, \"degraded_patterns\": %d, \
        \"degraded\": %b},\n"
       (List.length exact) (List.length starved.DA.patterns) starved.DA.degraded);
  let largest = List.assoc 16000 overheads in
  Buffer.add_string buffer
    (Printf.sprintf "  \"largest_point\": {\"log_size_16000_overhead_pct\": %.2f}\n}\n" largest);
  let oc = open_out "BENCH_governor.json" in
  output_string oc (Buffer.contents buffer);
  close_out oc;
  Fmt.pr "@.wrote BENCH_governor.json@.";
  check "subset under starvation" ~paper:"degraded <= exact"
    ~measured:
      (if List.for_all (fun rule -> List.mem rule exact) starved.DA.patterns then
         "degraded <= exact"
       else "NOT A SUBSET");
  check "governor overhead <= 5% at the largest sweep point" ~paper:"<= 5%"
    ~measured:(if largest <= 5.0 then "<= 5%" else Printf.sprintf "%.1f%%" largest)

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks.                                            *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let open Toolkit in
  header "BENCH" "Bechamel microbenchmarks (ns/run, OLS on monotonic clock)";
  let vocab = Workload.Scenario.vocab () in
  let p_ps = Workload.Scenario.policy_store () in
  let p_al10 = Workload.Scenario.table1_audit_policy () in
  let hospital = Workload.Hospital.default_config () in
  let trail_500 =
    Workload.Generator.generate { hospital with Workload.Hospital.total_accesses = 500 }
  in
  let p_al_500 =
    Audit_mgmt.To_policy.policy_of_entries (Workload.Generator.entries trail_500)
  in
  let practice_500 = Prima_core.Filter.run p_al_500 in
  let entries_500 = Workload.Generator.entries trail_500 in
  let control = setup_enforced_clinical 500 in
  let enforced_sql = "SELECT patient, referral FROM records WHERE referral = 'cardiology'" in
  let analysis_engine = Relational.Engine.create () in
  let _ =
    Prima_core.Data_analysis.materialize analysis_engine ~table_name:"practice" practice_500
  in
  let store_500 = Hdb.Audit_store.of_entries entries_500 in
  let tests =
    [ Test.make ~name:"coverage/figure3-set"
        (Staged.stage (fun () ->
             C.aligned ~bag:false vocab ~attrs ~p_x:p_ps ~p_y:(Workload.Scenario.figure3_audit_policy ())));
      Test.make ~name:"coverage/table1-bag"
        (Staged.stage (fun () -> C.aligned ~bag:true vocab ~attrs ~p_x:p_ps ~p_y:p_al10));
      Test.make ~name:"coverage/synthetic-500"
        (Staged.stage (fun () ->
             C.aligned ~bag:true hospital.Workload.Hospital.vocab ~attrs
               ~p_x:(Workload.Hospital.policy_store hospital) ~p_y:p_al_500));
      Test.make ~name:"range/ground-figure1"
        (Staged.stage (fun () -> Prima_core.Range.of_policy vocab p_ps));
      Test.make ~name:"range/ground-hospital"
        (Staged.stage (fun () ->
             Prima_core.Range.of_policy hospital.Workload.Hospital.vocab
               (Workload.Hospital.policy_store hospital)));
      Test.make ~name:"refine/paper-table1"
        (Staged.stage (fun () -> Ref.run_epoch ~vocab ~p_ps ~p_al:p_al10 ()));
      Test.make ~name:"refine/synthetic-500"
        (Staged.stage (fun () ->
             Ref.run_epoch ~vocab:hospital.Workload.Hospital.vocab
               ~p_ps:(Workload.Hospital.policy_store hospital) ~p_al:p_al_500 ()));
      Test.make ~name:"sql/parse-select"
        (Staged.stage (fun () ->
             Relational.Sql_parser.parse_stmt
               "SELECT data, purpose, authorized FROM practice GROUP BY data, purpose, \
                authorized HAVING COUNT(*) >= 5 AND COUNT(DISTINCT user) > 1"));
      Test.make ~name:"sql/group-by-500"
        (Staged.stage (fun () ->
             Prima_core.Data_analysis.run analysis_engine ~table_name:"practice"
               Prima_core.Data_analysis.default_config));
      Test.make ~name:"mining/apriori-500"
        (Staged.stage (fun () ->
             Prima_core.Extract_patterns.run
               ~backend:
                 (Prima_core.Extract_patterns.Mining Prima_core.Extract_patterns.default_mining)
               practice_500));
      Test.make ~name:"mining/fp-growth-500"
        (Staged.stage (fun () ->
             Prima_core.Extract_patterns.run
               ~backend:
                 (Prima_core.Extract_patterns.Mining
                    { Prima_core.Extract_patterns.default_mining with
                      Prima_core.Extract_patterns.algorithm = `Fp_growth;
                    })
               practice_500));
      Test.make ~name:"hdb/enforced-query"
        (Staged.stage (fun () ->
             match
               Hdb.Control_center.query control ~user:"tim" ~role:"nurse"
                 ~purpose:"treatment" enforced_sql
             with
             | Ok _ -> ()
             | Error _ -> failwith "denied"));
      Test.make ~name:"audit/append-500"
        (Staged.stage (fun () -> Hdb.Audit_store.of_entries entries_500));
      Test.make ~name:"audit/scan-500"
        (Staged.stage (fun () -> Hdb.Audit_query.count store_500 Hdb.Audit_query.any));
      Test.make ~name:"analysis/generalize-grounded"
        (Staged.stage
           (let grounded =
              P.make
                (List.concat_map
                   (R.ground_rules hospital.Workload.Hospital.vocab)
                   (P.rules (Workload.Hospital.policy_store hospital)))
            in
            fun () ->
              Prima_core.Analysis.generalize hospital.Workload.Hospital.vocab grounded));
      Test.make ~name:"tree/xml-parse"
        (Staged.stage (fun () ->
             Treedata.Xml.parse
               "<record><demographics><name>Ann</name><address>12 Elm St</address></demographics><medications><prescription drug=\"statin\"/></medications></record>"));
    ]
  in
  let test = Test.make_grouped ~name:"prima" ~fmt:"%s %s" tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let raw_results = Benchmark.all cfg instances test in
  let results = List.map (fun instance -> Analyze.all ols instance raw_results) instances in
  let results = Analyze.merge ols instances results in
  Fmt.pr "%-40s %16s@." "benchmark" "ns/run";
  match Hashtbl.find_opt results (Measure.label Instance.monotonic_clock) with
  | None -> Fmt.pr "(no results)@."
  | Some by_test ->
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) by_test []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.iter (fun (name, ols) ->
           match Analyze.OLS.estimates ols with
           | Some [ estimate ] -> Fmt.pr "%-40s %16.1f@." name estimate
           | Some _ | None -> Fmt.pr "%-40s %16s@." name "n/a")

let () =
  let quick = Array.exists (String.equal "quick") Sys.argv in
  (* `coverage` regenerates BENCH_coverage.json alone; `wal` regenerates
     BENCH_wal.json alone; `governor` regenerates BENCH_governor.json alone
     (see `make bench-coverage` / `make bench-wal` / `make bench-governor`). *)
  let coverage_only = Array.exists (String.equal "coverage") Sys.argv in
  let wal_only = Array.exists (String.equal "wal") Sys.argv in
  let governor_only = Array.exists (String.equal "governor") Sys.argv in
  let solo = coverage_only || wal_only || governor_only in
  if not solo then begin
    e1 ();
    e2 ();
    e3 ();
    e4 ();
    e5 ();
    e6 ();
    e7 ();
    e8 ();
    e9 ();
    e10 ()
  end;
  if coverage_only || not solo then e11 ();
  if wal_only || not solo then e12 ();
  if governor_only || not solo then e13 ();
  if (not quick) && not solo then bechamel_suite ();
  Fmt.pr "@.============================================================@.";
  if !all_ok then Fmt.pr "All experiment checks PASSED.@."
  else begin
    Fmt.pr "Some experiment checks FAILED.@.";
    exit 1
  end
