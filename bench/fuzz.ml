(* Standalone fuzzing sweep over the relational engine (`make fuzz`).

   Bigger than the regression suite baked into dune runtest (3 seeds x
   500 statements): by default 10 seeds x 2000 statements each, all
   checked for the two governor invariants — no untyped exception ever
   escapes the engine, and a budgeted run that completes is bitwise
   identical to the ungoverned run.

     dune exec bench/fuzz.exe               -- default sweep
     dune exec bench/fuzz.exe -- 5 10000    -- 5 seeds x 10000 statements

   Exits non-zero on any violation; the offending SQL is printed by the
   report so the case reproduces from its seed alone. *)

let () =
  let seeds, queries =
    match Sys.argv with
    | [| _; s; q |] -> (int_of_string s, int_of_string q)
    | [| _; s |] -> (int_of_string s, 2000)
    | _ -> (10, 2000)
  in
  Fmt.pr "fuzzing: %d seeds x %d statements@." seeds queries;
  let failed = ref false in
  for seed = 1 to seeds do
    let report = Relational.Sql_fuzz.run ~queries ~seed () in
    Fmt.pr "%a@." Relational.Sql_fuzz.pp report;
    if not (Relational.Sql_fuzz.passed report) then failed := true
  done;
  Fmt.pr "@.DML round-trips vs model table: %d seeds x %d ops@." seeds (queries / 4);
  for seed = 1 to seeds do
    let report = Relational.Sql_fuzz.run_dml ~ops:(queries / 4) ~seed () in
    Fmt.pr "%a@." Relational.Sql_fuzz.pp report;
    if not (Relational.Sql_fuzz.passed report) then begin
      failed := true;
      List.iter
        (fun (f : Relational.Sql_fuzz.failure) -> Fmt.pr "  %s :: %s@." f.reason f.sql)
        (report.Relational.Sql_fuzz.untyped @ report.Relational.Sql_fuzz.mismatches)
    end
  done;
  if !failed then begin
    Fmt.pr "@.FUZZING FOUND VIOLATIONS.@.";
    exit 1
  end
  else Fmt.pr "@.All seeds clean: no untyped exceptions, no governed/ungoverned mismatches.@."
