(* Tamper-evidence sweep (`make tamper`).

   The same composed fault schedules as `make chaos`, graded on the
   tamper-evidence invariant alone: every seeded in-place mutation of
   stable media must be flagged by the next recovery with the exact
   divergence offset (zero false negatives), no crash may be misread as
   tampering (a misclassification trips the tamper-evidence violation in
   the harness, so `passed` already covers false positives), and the
   final trail of every schedule must verify clean end to end.

     dune exec bench/tamper_sweep.exe              -- default 20 x 400
     dune exec bench/tamper_sweep.exe -- 8 1000    -- 8 seeds x 1000 steps *)

let () =
  let seeds, steps =
    match Sys.argv with
    | [| _; s; n |] -> (int_of_string s, int_of_string n)
    | [| _; s |] -> (int_of_string s, 400)
    | _ -> (20, 400)
  in
  Fmt.pr "tamper sweep: %d seeds x %d-step schedules@." seeds steps;
  let failed = ref false in
  let injected = ref 0 in
  let detected = ref 0 in
  for seed = 1 to seeds do
    let report = Chaos.Harness.run ~seed ~steps () in
    Fmt.pr "%a@." Chaos.Harness.pp report;
    injected := !injected + report.Chaos.Harness.tampers;
    detected := !detected + report.Chaos.Harness.tampers_detected;
    let missed =
      report.Chaos.Harness.tampers_detected <> report.Chaos.Harness.tampers
    in
    if (not (Chaos.Harness.passed report)) || missed
       || report.Chaos.Harness.tampers = 0
    then begin
      failed := true;
      Fmt.pr "@.--- fault log (seed %d) ---@." seed;
      List.iter (Fmt.pr "%s@.") report.Chaos.Harness.events;
      match report.Chaos.Harness.violation with
      | Some v -> Fmt.pr "%a@." Chaos.Harness.pp_violation v
      | None ->
        if missed then
          Fmt.pr "seed %d: only %d of %d tampers detected@." seed
            report.Chaos.Harness.tampers_detected report.Chaos.Harness.tampers
        else Fmt.pr "seed %d: schedule injected no tampering@." seed
    end
  done;
  Fmt.pr "@.total: %d/%d injected tampers detected@." !detected !injected;
  if !failed then begin
    Fmt.pr "@.TAMPER SWEEP FAILED.@.";
    exit 1
  end
  else
    Fmt.pr
      "All seeds clean: every tamper detected at its offset, no crash \
       misread as tampering, final trails verify.@."
