(* E17: delta-debugging shrink sweep (`make shrink`).

   Harvest failing 400-step chaos schedules — cycling the harness's three
   injected defects (eat-entry, drop-replay, stale-vocab) across seeds
   until at least 20 have failed — and push every one of them through the
   ddmin shrinker.  The sweep gates on three properties:

   - size:          every minimal repro has at most 40 actions (in
                    practice almost all land under 10);
   - determinism:   shrinking the same failing schedule twice yields
                    byte-identical repros;
   - faithfulness:  every minimal repro still violates the same invariant
                    the original 400-step run violated.

   Results land in BENCH_shrink.json; the smallest repro of the run is
   saved under _chaos/ as a replayable serialized schedule:

     dune exec bench/shrink_sweep.exe              -- default sweep (>= 20 failures)
     dune exec bench/shrink_sweep.exe -- 8 250     -- >= 8 failures x 250-step schedules *)

let defects =
  [| Chaos.Harness.Eat_entry 5; Chaos.Harness.Drop_replay; Chaos.Harness.Stale_vocab |]

type row = {
  seed : int;
  defect : string;
  invariant : string;
  original : int;
  minimal : int;
  candidates : int;
  seconds : float;
}

let () =
  let want, steps =
    match Sys.argv with
    | [| _; w; n |] -> (int_of_string w, int_of_string n)
    | [| _; w |] -> (int_of_string w, 400)
    | _ -> (20, 400)
  in
  Fmt.pr "shrink sweep: collecting >= %d failing %d-step schedules@." want steps;
  let rows = ref [] in
  let nondeterministic = ref 0 in
  let oversized = ref 0 in
  let unfaithful = ref 0 in
  let smallest = ref None in
  let found = ref 0 in
  let seed = ref 0 in
  while !found < want do
    incr seed;
    let defect = defects.((!seed - 1) mod Array.length defects) in
    let actions = Chaos.Schedule.generate ~nsites:2 ~seed:!seed ~steps () in
    let pool = (steps * 3) + 120 in
    let report = Chaos.Harness.run_actions ~defect ~pool ~seed:!seed ~actions () in
    match Chaos.Shrink.of_report ~defect ~actions report with
    | None -> ()
    | Some repro ->
      incr found;
      let t0 = Unix.gettimeofday () in
      let mini, stats = Chaos.Shrink.shrink repro in
      let dt = Unix.gettimeofday () -. t0 in
      let mini2, _ = Chaos.Shrink.shrink repro in
      let deterministic = Chaos.Shrink.to_string mini = Chaos.Shrink.to_string mini2 in
      let faithful = Chaos.Shrink.still_fails mini in
      if not deterministic then incr nondeterministic;
      if stats.Chaos.Shrink.minimal > 40 then incr oversized;
      if not faithful then incr unfaithful;
      (match !smallest with
      | Some (_, n) when n <= stats.Chaos.Shrink.minimal -> ()
      | _ -> smallest := Some (mini, stats.Chaos.Shrink.minimal));
      rows :=
        {
          seed = !seed;
          defect = Chaos.Harness.defect_to_string defect;
          invariant = mini.Chaos.Shrink.invariant;
          original = stats.Chaos.Shrink.original;
          minimal = stats.Chaos.Shrink.minimal;
          candidates = stats.Chaos.Shrink.candidates;
          seconds = dt;
        }
        :: !rows;
      Fmt.pr "seed %4d  %-12s  %-16s  %d -> %2d action(s), %4d candidates, %.1fs%s%s@."
        !seed
        (Chaos.Harness.defect_to_string defect)
        mini.Chaos.Shrink.invariant stats.Chaos.Shrink.original stats.Chaos.Shrink.minimal
        stats.Chaos.Shrink.candidates dt
        (if deterministic then "" else "  NONDETERMINISTIC")
        (if faithful then "" else "  UNFAITHFUL")
  done;
  let rows = List.rev !rows in
  let n = List.length rows in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  let avg_min = sum (fun r -> float_of_int r.minimal) /. float_of_int n in
  let max_min = List.fold_left (fun acc r -> max acc r.minimal) 0 rows in
  (* the smallest repro of the sweep, saved as a replayable schedule *)
  (try Unix.mkdir "_chaos" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (match !smallest with
  | Some (mini, sz) ->
    let path = Printf.sprintf "_chaos/minimal-seed%d.repro" mini.Chaos.Shrink.seed in
    Chaos.Shrink.save path mini;
    Fmt.pr "@.smallest repro (%d action(s), seed %d) saved to %s@." sz
      mini.Chaos.Shrink.seed path
  | None -> ());
  let oc = open_out "BENCH_shrink.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"experiment\": \"E17 schedule shrinking\",\n";
  p "  \"steps\": %d,\n  \"failures\": %d,\n  \"seeds_scanned\": %d,\n" steps n !seed;
  p "  \"avg_minimal_actions\": %.2f,\n  \"max_minimal_actions\": %d,\n" avg_min max_min;
  p "  \"nondeterministic\": %d,\n  \"oversized\": %d,\n  \"unfaithful\": %d,\n"
    !nondeterministic !oversized !unfaithful;
  p "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      p
        "    {\"seed\": %d, \"defect\": \"%s\", \"invariant\": \"%s\", \"original\": %d, \
         \"minimal\": %d, \"candidates\": %d, \"seconds\": %.2f}%s\n"
        r.seed r.defect r.invariant r.original r.minimal r.candidates r.seconds
        (if i = n - 1 then "" else ","))
    rows;
  p "  ]\n}\n";
  close_out oc;
  Fmt.pr "@.%d failing schedules shrunk: avg %.1f, max %d action(s); wrote BENCH_shrink.json@."
    n avg_min max_min;
  if !nondeterministic > 0 || !oversized > 0 || !unfaithful > 0 then begin
    Fmt.pr "SHRINK SWEEP GATE FAILED: %d nondeterministic, %d oversized (> 40), %d unfaithful@."
      !nondeterministic !oversized !unfaithful;
    exit 1
  end
  else Fmt.pr "All repros deterministic, <= 40 actions, and faithful to their invariant.@."
