(* Long-running chaos sweep (`make chaos`).

   Bigger than the regression suite baked into dune runtest: by default 20
   seeds x 400-step composed fault schedules, each checked against the
   model oracle's nine invariants.  Any violation prints the full fault
   log and the violation trace, and reproduces from its seed alone:

     dune exec bench/chaos_sweep.exe               -- default sweep
     dune exec bench/chaos_sweep.exe -- 8 1000     -- 8 seeds x 1000 steps *)

let () =
  let seeds, steps =
    match Sys.argv with
    | [| _; s; n |] -> (int_of_string s, int_of_string n)
    | [| _; s |] -> (int_of_string s, 400)
    | _ -> (20, 400)
  in
  Fmt.pr "chaos sweep: %d seeds x %d-step schedules@." seeds steps;
  let failed = ref false in
  for seed = 1 to seeds do
    let report = Chaos.Harness.run ~seed ~steps () in
    Fmt.pr "%a@." Chaos.Harness.pp report;
    if not (Chaos.Harness.passed report) then begin
      failed := true;
      Fmt.pr "@.--- fault log (seed %d) ---@." seed;
      List.iter (Fmt.pr "%s@.") report.Chaos.Harness.events
    end
  done;
  if !failed then begin
    Fmt.pr "@.CHAOS SWEEP FOUND VIOLATIONS.@.";
    exit 1
  end
  else Fmt.pr "@.All seeds clean: nine invariants held on every schedule.@."
