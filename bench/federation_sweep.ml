(* Federation durability sweep (`make federation`).

   A (sites x entries) grid over the per-site durable federation: every
   site sits on its own write-ahead op log, successful fetches are
   archived into the sharded consolidated store, and each grid point is
   graded on three axes plus a hard crash-recovery gate:

   - ingest throughput: write-ahead-logged ingestion + fsync, entries/s;
   - consolidation throughput: the full production path (fetch, archive,
     tournament-merge) over all sites, records/s;
   - crash recovery: power-cut one site's own WAL (clean loss of the
     unsynced tail), reopen it from its op log, and require every synced
     entry back, a clean verdict, and an identical consolidation after
     the recovered site is reseated — any miss fails the run.

   The largest grid point's per-site WALs are saved under
   _build/federation-wals/ so the offline checker can sweep them:
   `prima verify --wal _build/federation-wals`.

   Results land in BENCH_federation.json with a consolidation-throughput
   gate (>= 10k records/s at the largest point).

     dune exec bench/federation_sweep.exe            -- default grid
     dune exec bench/federation_sweep.exe -- quick   -- smallest point only *)

module Site = Audit_mgmt.Site
module Fault = Audit_mgmt.Fault
module Federation = Audit_mgmt.Federation
module Shard_store = Audit_mgmt.Shard_store
module Health = Audit_mgmt.Health

let ops = [| Hdb.Audit_schema.Allow; Hdb.Audit_schema.Disallow |]
let users = [| "alice"; "bob"; "carol"; "dave" |]
let datas = [| "referral"; "gender"; "dob"; "insurance" |]
let purposes = [| "treatment"; "payment"; "research" |]
let roles = [| "nurse"; "doctor"; "billing" |]

let pick rng a = a.(Splitmix.int rng (Array.length a))

(* Deterministic synthetic trail: times strictly increasing so entries
   spread across multiple (site, time-range) shards. *)
let gen_entries rng ~n ~site_index =
  List.init n (fun i ->
      Hdb.Audit_schema.entry
        ~time:((i * 97) + site_index)
        ~op:(pick rng ops) ~user:(pick rng users) ~data:(pick rng datas)
        ~purpose:(pick rng purposes) ~authorized:(pick rng roles)
        ~status:Hdb.Audit_schema.Regular)

let time_it f =
  let t0 = Sys.time () in
  let result = f () in
  (result, Sys.time () -. t0)

let per_sec n dt = if dt <= 0. then infinity else float_of_int n /. dt

type point = {
  nsites : int;
  per_site : int;
  total : int;
  ingest_per_sec : float;
  consolidate_per_sec : float;
  recovered : int;
  recovery_clean : bool;
  reconverged : bool;
}

let run_point ~nsites ~per_site =
  let seed = (nsites * 1009) + per_site in
  let rng = Splitmix.create ~seed in
  let streams = List.init nsites (fun i -> gen_entries rng ~n:per_site ~site_index:i) in
  let sites =
    List.init nsites (fun i ->
        let site = Site.create ~name:(Printf.sprintf "site-%d" (i + 1)) () in
        Site.attach_wal site (Durable.Log.create ~seed:(seed + i + 1) ());
        site)
  in
  (* write-ahead-logged ingest, fsynced at the end of each site's stream *)
  let (), t_ingest =
    time_it (fun () ->
        List.iter2
          (fun site stream ->
            Site.ingest_entries site stream;
            Site.sync_wal site)
          sites streams)
  in
  let total = nsites * per_site in
  (* the production consolidation path, archive attached *)
  let fed = Federation.create ~retry:Audit_mgmt.Retry.no_retry ~seed () in
  List.iteri
    (fun i site ->
      Federation.add_faulty_site fed
        (Fault.wrap ~config:Fault.no_faults ~seed:(seed + 100 + i) site))
    sites;
  let archive = Shard_store.create ~seed:(seed + 7) () in
  Federation.attach_archive fed archive;
  let result, t_consolidate = time_it (fun () -> Federation.consolidated_result fed) in
  if not (Health.complete result.Federation.health) then
    failwith "fault-free consolidation was not complete";
  if List.length result.Federation.entries <> total then
    failwith "consolidation lost entries";
  (* crash-recovery gate: power-cut site 1's own WAL, reopen locally *)
  let victim = List.hd sites in
  let name = Site.name victim in
  let log = Option.get (Site.wal victim) in
  Durable.Device.crash (Durable.Log.wal_device log) ~point:Durable.Device.Clean_loss;
  Durable.Device.crash (Durable.Log.snapshot_device log) ~point:Durable.Device.Clean_loss;
  let (site', recovery, undecodable), _t_recover =
    time_it (fun () ->
        Site.open_durable ~name
          (Durable.Log.of_devices
             ~wal:(Durable.Log.wal_device log)
             ~snapshot:(Durable.Log.snapshot_device log)))
  in
  let recovered = Site.length site' in
  let recovery_clean =
    Durable.Recovery.clean recovery && undecodable = 0
    && (not (Site.durably_degraded site'))
    && recovered = per_site
  in
  (* reseat the recovered site: consolidation must reconverge exactly *)
  let reconverged =
    recovery_clean
    &&
    (let fed' = Federation.create ~retry:Audit_mgmt.Retry.no_retry ~seed () in
     List.iteri
       (fun i site ->
         let site = if i = 0 then site' else site in
         Federation.add_faulty_site fed'
           (Fault.wrap ~config:Fault.no_faults ~seed:(seed + 100 + i) site))
       sites;
     let result' = Federation.consolidated_result fed' in
     Health.complete result'.Federation.health
     && List.for_all2 Hdb.Audit_schema.equal result.Federation.entries
          result'.Federation.entries)
  in
  ( { nsites;
      per_site;
      total;
      ingest_per_sec = per_sec total t_ingest;
      consolidate_per_sec = per_sec total t_consolidate;
      recovered;
      recovery_clean;
      reconverged;
    },
    sites )

let save_wals sites =
  let dir = "_build/federation-wals" in
  (try Unix.mkdir "_build" 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun site ->
      match Site.wal site with
      | None -> ()
      | Some log ->
        let base = Filename.concat dir (Site.name site) in
        Durable.Device.save (Durable.Log.wal_device log) (base ^ ".wal");
        Durable.Device.save (Durable.Log.snapshot_device log) (base ^ ".snapshot"))
    sites;
  dir

let () =
  let quick = Array.length Sys.argv > 1 && Sys.argv.(1) = "quick" in
  let grid =
    if quick then [ (2, 500) ]
    else [ (2, 500); (4, 1000); (8, 2000) ]
  in
  Fmt.pr "federation durability sweep: %d grid point(s)@." (List.length grid);
  Fmt.pr "%-8s %-10s %-14s %-18s %-12s %-6s@." "sites" "entries" "ingest/s"
    "consolidate/s" "recovered" "gate";
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "{\n  \"experiment\": \"federation-durability\",\n";
  Buffer.add_string buffer
    "  \"gate\": \"crash one site's WAL per point: every synced entry recovered, clean \
     verdict, consolidation reconverges; >= 10k records/s consolidation at the largest \
     point\",\n";
  Buffer.add_string buffer "  \"sweep\": [\n";
  let points =
    List.mapi
      (fun idx (nsites, per_site) ->
        let p, sites = run_point ~nsites ~per_site in
        let gate_ok = p.recovery_clean && p.reconverged in
        Fmt.pr "%-8d %-10d %-14.0f %-18.0f %-4d/%-7d %s@." p.nsites p.per_site
          p.ingest_per_sec p.consolidate_per_sec p.recovered p.per_site
          (if gate_ok then "[ok]" else "[FAIL]");
        Buffer.add_string buffer
          (Printf.sprintf
             "    {\"sites\": %d, \"entries_per_site\": %d, \"total\": %d, \
              \"ingest_per_sec\": %.0f, \"consolidate_per_sec\": %.0f, \"recovered\": \
              %d, \"recovery_clean\": %b, \"reconverged\": %b}%s\n"
             p.nsites p.per_site p.total p.ingest_per_sec p.consolidate_per_sec
             p.recovered p.recovery_clean p.reconverged
             (if idx = List.length grid - 1 then "" else ","));
        (p, sites))
      grid
  in
  let largest, largest_sites = List.nth points (List.length points - 1) in
  let dir = save_wals largest_sites in
  let throughput_ok = largest.consolidate_per_sec >= 10_000. in
  Buffer.add_string buffer "  ],\n";
  Buffer.add_string buffer
    (Printf.sprintf
       "  \"largest_point\": {\"sites\": %d, \"entries_per_site\": %d, \
        \"consolidate_per_sec\": %.0f, \"throughput_gate_10k\": %b}\n}\n"
       largest.nsites largest.per_site largest.consolidate_per_sec throughput_ok);
  let oc = open_out "BENCH_federation.json" in
  output_string oc (Buffer.contents buffer);
  close_out oc;
  Fmt.pr "@.wrote BENCH_federation.json; per-site WALs saved under %s@." dir;
  Fmt.pr "try:  prima verify --wal %s@." dir;
  let all_ok =
    List.for_all (fun (p, _) -> p.recovery_clean && p.reconverged) points
    && throughput_ok
  in
  if not all_ok then begin
    Fmt.pr "@.FEDERATION SWEEP FAILED.@.";
    exit 1
  end
  else
    Fmt.pr
      "All points pass: crash-local recovery lossless, consolidation reconverges, \
       throughput gate met.@."
