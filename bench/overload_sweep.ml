(* E18: overload-storm admission sweep (`make overload`).

   Four gates over the multi-tenant admission controller, each a claim the
   DESIGN makes about overload behaviour:

   - fairness:       under a 10:1 hot-tenant storm arbitrated by
                     deficit-round-robin drains, every victim tenant keeps
                     at least 80% of its no-storm baseline throughput
                     (in practice: exactly 100% — the hot tenant queues
                     behind its own share);
   - all-or-nothing: a shed ingestion batch leaves the site untouched —
                     store length, sequence floor and quarantine all
                     unchanged — and carries an honest retry hint;
   - invariant 10:   the chaos harness's admission-fairness invariant
                     holds over a full seeds x 400-step sweep with
                     Overload_storm in the action alphabet;
   - brownout:       every refinement epoch run under a brownout grant
                     reports Coverage.Lower_bound — a deliberately
                     truncated run never claims exactness.

   Results land in BENCH_overload.json:

     dune exec bench/overload_sweep.exe            -- default: 20 seeds x 400 steps
     dune exec bench/overload_sweep.exe -- 8 250   -- 8 seeds x 250-step chaos part *)

module Adm = Audit_mgmt.Admission

(* --- part A: DRR fairness under a 10:1 storm ------------------------- *)

let epochs = 30
let epoch_ms = 1000
let serve_limit = 40
let storm_ratio = 10

let fairness_classes () =
  [ ("blue", Adm.(class_config ~rows:(quota ~capacity:60 ~refill_per_s:30 ()) ()));
    ("green", Adm.(class_config ~rows:(quota ~capacity:60 ~refill_per_s:30 ()) ()));
    (* The hot tenant's bucket never binds: fairness must come from the
       drain's deficit round-robin, not from its own quota. *)
    ("hot", Adm.(class_config ~rows:(quota ~capacity:2000 ~refill_per_s:1000 ()) ()));
  ]

let make_controller () =
  let adm = Adm.create ~now:0 (fairness_classes ()) in
  Adm.assign adm ~tenant:"blue" "blue";
  Adm.assign adm ~tenant:"green" "green";
  Adm.assign adm ~tenant:"hot" "hot";
  adm

let request tenant i = (Adm.principal ~tenant ~request:(string_of_int i) (), Adm.cost ~rows:1 (), Adm.Mutation)

(* One run over [epochs] drains; [storm] adds the 10:1 hot tenant.
   Returns (admitted per victim tenant, hot admitted, sheds, brownouts). *)
type fair_run = {
  victims : (string * int) list;
  hot_admitted : int;
  sheds : int;
  mutation_brownouts : int;
}

let fairness_run ~seed ~storm =
  let rng = Splitmix.create ~seed in
  let adm = make_controller () in
  let admitted = Hashtbl.create 4 in
  let count tenant = try Hashtbl.find admitted tenant with Not_found -> 0 in
  let sheds = ref 0 and brownouts = ref 0 in
  for e = 1 to epochs do
    let now = e * epoch_ms in
    let victim_load tenant =
      List.init (3 + Splitmix.int rng 6) (fun i -> request tenant ((e * 100) + i))
    in
    let blue = victim_load "blue" in
    let green = victim_load "green" in
    let hot =
      if storm then
        List.init
          (storm_ratio * (List.length blue + List.length green) / 2)
          (fun i -> request "hot" ((e * 1000) + i))
      else []
    in
    let results = Adm.drain adm ~now ~serve_limit (blue @ green @ hot) in
    List.iter
      (fun ((p : Adm.principal), decision) ->
        match decision with
        | Adm.Admitted _ -> Hashtbl.replace admitted p.Adm.tenant (count p.Adm.tenant + 1)
        | Adm.Brownout _ -> incr brownouts
        | Adm.Rejected _ -> incr sheds)
      results
  done;
  { victims = [ ("blue", count "blue"); ("green", count "green") ];
    hot_admitted = count "hot";
    sheds = !sheds;
    mutation_brownouts = !brownouts;
  }

(* --- part B: all-or-nothing sheds ------------------------------------ *)

let mk_entry i =
  Hdb.Audit_schema.entry ~time:i ~op:Hdb.Audit_schema.Allow
    ~user:(Printf.sprintf "user-%d" (i mod 3))
    ~data:"mri" ~purpose:"diagnosis" ~authorized:"radiologist"
    ~status:Hdb.Audit_schema.Regular

(* Push random batches through a gated site; every shed must leave the
   site byte-identical and carry a retry hint (the class has capacity and
   refill, so the cost is always eventually affordable).  Returns
   (sheds, partial-application count, missing-hint count). *)
let shed_run ~seed =
  let rng = Splitmix.create ~seed:(seed + 7919) in
  let adm =
    Adm.create ~now:0
      [ ("tight", Adm.(class_config ~rows:(quota ~capacity:8 ~refill_per_s:4 ()) ())) ]
  in
  Adm.assign adm ~tenant:"clinic" "tight";
  let site = Audit_mgmt.Site.create ~name:"gated" () in
  Audit_mgmt.Site.set_admission site (Some adm);
  let principal = Adm.principal ~tenant:"clinic" () in
  let sheds = ref 0 and partial = ref 0 and hintless = ref 0 in
  let k = ref 0 in
  for batch = 1 to 40 do
    let now = batch * 100 in
    let n = 1 + Splitmix.int rng 6 in
    let entries = List.init n (fun _ -> incr k; mk_entry !k) in
    let before =
      Audit_mgmt.Site.(length site, next_seq site, quarantined_count site)
    in
    match Audit_mgmt.Site.ingest_entries_admitted site ~now ~principal entries with
    | Ok _ -> ()
    | Error r ->
      incr sheds;
      let after =
        Audit_mgmt.Site.(length site, next_seq site, quarantined_count site)
      in
      if before <> after then incr partial;
      (match r.Adm.retry_after_ms with
      | Some ms when ms >= 1 -> ()
      | _ -> incr hintless)
  done;
  (!sheds, !partial, !hintless)

(* --- part D: brownout epochs are lower bounds ------------------------ *)

(* A refinement caller whose class can only half-afford the declared cost
   browns out: the epoch runs under the tightened grant and must label its
   coverage Lower_bound.  A generously classed control epoch over the same
   complete trail stays Exact. *)
let brownout_run () =
  let vocab = Vocabulary.Samples.figure1 () in
  let p_ps = Workload.Scenario.policy_store () in
  let system = Prima_system.System.create ~training_minimum:1 ~vocab ~p_ps () in
  let store = Hdb.Control_center.audit_store (Prima_system.System.control system) in
  Hdb.Audit_store.append_all store (Workload.Scenario.table1_entries ());
  Prima_system.System.set_budget_classes system
    [ (* refine_admitted declares 256 rows: 200 covers half but not the
         strict bar, so every admit is a brownout. *)
      ("throttled", Adm.(class_config ~rows:(quota ~capacity:200 ~refill_per_s:200 ()) ()));
      ("gold", Adm.(class_config ~rows:(quota ~capacity:4096 ~refill_per_s:4096 ()) ()));
    ];
  Prima_system.System.assign_tenant system ~tenant:"throttled-analyst"
    ~class_name:"throttled";
  Prima_system.System.assign_tenant system ~tenant:"gold-analyst" ~class_name:"gold";
  let throttled = Adm.principal ~tenant:"throttled-analyst" () in
  let gold = Adm.principal ~tenant:"gold-analyst" () in
  let rounds = 5 in
  let ok = ref 0 and lower = ref 0 and errors = ref 0 in
  for _ = 1 to rounds do
    Prima_system.System.advance_clock system epoch_ms;
    match Prima_system.System.refine_admitted system ~principal:throttled with
    | Error _ -> incr errors
    | Ok report ->
      incr ok;
      (match report.Prima_core.Refinement.qualifier with
      | Prima_core.Coverage.Lower_bound _ -> incr lower
      | Prima_core.Coverage.Exact -> ())
  done;
  Prima_system.System.advance_clock system epoch_ms;
  let control_exact =
    match Prima_system.System.refine_admitted system ~principal:gold with
    | Ok report -> report.Prima_core.Refinement.qualifier = Prima_core.Coverage.Exact
    | Error _ -> false
  in
  let gov = Prima_system.System.governance system in
  (!ok, !lower, !errors, gov.Prima_system.System.brownout_epochs, control_exact)

(* --- sweep ----------------------------------------------------------- *)

type fairness_row = {
  seed : int;
  base_blue : int;
  base_green : int;
  storm_blue : int;
  storm_green : int;
  ratio : float;
  hot : int;
  shed : int;
}

let () =
  let seeds, steps =
    match Sys.argv with
    | [| _; s; n |] -> (int_of_string s, int_of_string n)
    | [| _; s |] -> (int_of_string s, 400)
    | _ -> (20, 400)
  in
  Fmt.pr "overload sweep: %d seeds, %d:1 storms, serve limit %d/drain@." seeds storm_ratio
    serve_limit;

  (* A: fairness *)
  let rows = ref [] in
  let mutation_brownouts = ref 0 in
  for seed = 1 to seeds do
    let base = fairness_run ~seed ~storm:false in
    let storm = fairness_run ~seed ~storm:true in
    mutation_brownouts := !mutation_brownouts + base.mutation_brownouts + storm.mutation_brownouts;
    let get run t = List.assoc t run.victims in
    let ratio =
      let b = get base "blue" + get base "green" in
      let s = get storm "blue" + get storm "green" in
      if b = 0 then 1.0 else float_of_int s /. float_of_int b
    in
    rows :=
      { seed;
        base_blue = get base "blue";
        base_green = get base "green";
        storm_blue = get storm "blue";
        storm_green = get storm "green";
        ratio;
        hot = storm.hot_admitted;
        shed = storm.sheds;
      }
      :: !rows;
    Fmt.pr "seed %3d  victims %3d+%3d baseline -> %3d+%3d under storm (%.0f%%), hot %3d, shed %3d@."
      seed (get base "blue") (get base "green") (get storm "blue") (get storm "green")
      (100. *. ratio) storm.hot_admitted storm.sheds
  done;
  let rows = List.rev !rows in
  let min_ratio = List.fold_left (fun acc r -> min acc r.ratio) 1.0 rows in

  (* B: all-or-nothing sheds *)
  let total_sheds = ref 0 and partials = ref 0 and hintless = ref 0 in
  for seed = 1 to seeds do
    let s, p, h = shed_run ~seed in
    total_sheds := !total_sheds + s;
    partials := !partials + p;
    hintless := !hintless + h
  done;
  Fmt.pr "@.sheds: %d across %d gated sites, %d partially applied, %d missing a retry hint@."
    !total_sheds seeds !partials !hintless;

  (* C: invariant-10 chaos sweep with storms in the alphabet *)
  Fmt.pr "@.chaos: %d seeds x %d-step schedules (Overload_storm weighted in)@." seeds steps;
  let violations = ref 0 in
  let storms = ref 0 and storm_admitted = ref 0 and storm_shed = ref 0 in
  for seed = 1 to seeds do
    let report = Chaos.Harness.run ~seed ~steps () in
    storms := !storms + report.Chaos.Harness.storms;
    storm_admitted := !storm_admitted + report.Chaos.Harness.storm_admitted;
    storm_shed := !storm_shed + report.Chaos.Harness.storm_shed;
    if not (Chaos.Harness.passed report) then begin
      incr violations;
      Fmt.pr "%a@." Chaos.Harness.pp report
    end
  done;
  Fmt.pr "chaos: %d violation(s); %d storms drove %d admits / %d sheds through the gate@."
    !violations !storms !storm_admitted !storm_shed;

  (* D: brownout epochs *)
  let br_ok, br_lower, br_errors, br_counted, control_exact = brownout_run () in
  Fmt.pr "@.brownout: %d/%d throttled epochs labelled Lower_bound (%d errors, governance \
          counted %d); generous control epoch exact: %b@."
    br_lower br_ok br_errors br_counted control_exact;

  (* gates + JSON *)
  let fair_ok = min_ratio >= 0.8 in
  let shed_ok = !partials = 0 && !hintless = 0 && !total_sheds > 0 in
  let chaos_ok = !violations = 0 && !storms > 0 in
  let brownout_ok = br_errors = 0 && br_ok > 0 && br_lower = br_ok && control_exact in
  let no_mutation_brownout = !mutation_brownouts = 0 in
  let oc = open_out "BENCH_overload.json" in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n  \"experiment\": \"E18 overload-storm admission\",\n";
  p "  \"seeds\": %d,\n  \"storm_ratio\": %d,\n  \"serve_limit\": %d,\n  \"epochs\": %d,\n"
    seeds storm_ratio serve_limit epochs;
  p "  \"min_victim_ratio\": %.3f,\n" min_ratio;
  p "  \"sheds\": %d,\n  \"partial_sheds\": %d,\n  \"hintless_sheds\": %d,\n" !total_sheds
    !partials !hintless;
  p "  \"mutation_brownouts\": %d,\n" !mutation_brownouts;
  p "  \"chaos\": {\"seeds\": %d, \"steps\": %d, \"violations\": %d, \"storms\": %d, \
     \"storm_admitted\": %d, \"storm_shed\": %d},\n"
    seeds steps !violations !storms !storm_admitted !storm_shed;
  p "  \"brownout\": {\"epochs\": %d, \"lower_bound\": %d, \"errors\": %d, \
     \"control_exact\": %b},\n"
    br_ok br_lower br_errors control_exact;
  p "  \"fairness\": [\n";
  let n = List.length rows in
  List.iteri
    (fun i r ->
      p
        "    {\"seed\": %d, \"baseline\": [%d, %d], \"storm\": [%d, %d], \"ratio\": %.3f, \
         \"hot_admitted\": %d, \"shed\": %d}%s\n"
        r.seed r.base_blue r.base_green r.storm_blue r.storm_green r.ratio r.hot r.shed
        (if i = n - 1 then "" else ","))
    rows;
  p "  ]\n}\n";
  close_out oc;
  Fmt.pr "@.wrote BENCH_overload.json@.";
  if fair_ok && shed_ok && chaos_ok && brownout_ok && no_mutation_brownout then
    Fmt.pr "All gates passed: victims kept >= %.0f%% of baseline, every shed all-or-nothing \
            and hinted, invariant 10 clean, every brownout a lower bound.@."
      (100. *. min_ratio)
  else begin
    Fmt.pr
      "OVERLOAD SWEEP GATE FAILED: fairness %b (min ratio %.2f), sheds %b (%d partial, %d \
       hintless), chaos %b (%d violations, %d storms), brownout %b, mutation brownouts %d@."
      fair_ok min_ratio shed_ok !partials !hintless chaos_ok !violations !storms brownout_ok
      !mutation_brownouts;
    exit 1
  end
