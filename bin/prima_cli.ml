(* prima: command-line front end.

     prima paper                       -- replay the paper's running example
     prima simulate [options]          -- synthetic hospital + refinement
     prima coverage --policy F --audit F [--bag]
     prima refine   --policy F --audit F [options]
     prima mine     --audit F [--min-support N] [--min-confidence X]
     prima federation-health --audit F [--sites N --seed N ...]
     prima recover  --wal F [--snapshot F --kind audit|quarantine|site --site NAME --out F]
     prima verify   --wal F-or-DIR [--snapshot F]   (read-only; exit 1 on tampering)

   File formats:
   - policy files: one rule per line, "data:purpose:authorized"; '#' comments;
   - audit files: CSV with header time,op,user,data,purpose,authorized,status
     (op/status numeric as in Section 4.2). *)

let setup_logs level =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level level

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let vocab_of_name = function
  | "figure1" -> Vocabulary.Samples.figure1 ()
  | "hospital" -> Vocabulary.Samples.hospital ()
  | name -> Fmt.failwith "unknown vocabulary %S (use figure1 or hospital)" name

let parse_policy_file path : Prima_core.Policy.t =
  Prima_core.Policy_file.of_string (read_file path)

let parse_audit_file path : Hdb.Audit_schema.entry list =
  Hdb.Audit_csv.of_string (read_file path)

(* --- paper --- *)

let run_paper () =
  let vocab = Workload.Scenario.vocab () in
  let attrs = Vocabulary.Audit_attrs.pattern in
  let p_ps = Workload.Scenario.policy_store () in
  let fig3 =
    Prima_core.Coverage.aligned ~bag:false vocab ~attrs ~p_x:p_ps
      ~p_y:(Workload.Scenario.figure3_audit_policy ())
  in
  Fmt.pr "Figure 3 system : %a@." Prima_core.Coverage.pp_stats fig3;
  let p_al = Workload.Scenario.table1_audit_policy () in
  let report = Prima_core.Refinement.run_epoch ~vocab ~p_ps ~p_al () in
  Fmt.pr "Table 1 snapshot: %a@." Prima_core.Coverage.pp_stats
    report.Prima_core.Refinement.coverage_before;
  Fmt.pr "@.%a" Prima_core.Report.pp_epoch report;
  0

(* --- coverage --- *)

let run_coverage vocab_name policy_path audit_path bag =
  let vocab = vocab_of_name vocab_name in
  let p_ps = parse_policy_file policy_path in
  let p_al = Audit_mgmt.To_policy.policy_of_entries (parse_audit_file audit_path) in
  let stats =
    Prima_core.Coverage.aligned ~bag vocab ~attrs:Vocabulary.Audit_attrs.pattern ~p_x:p_ps
      ~p_y:p_al
  in
  Fmt.pr "%a@." Prima_core.Coverage.pp_stats stats;
  if stats.Prima_core.Coverage.uncovered <> [] then begin
    Fmt.pr "uncovered:@.";
    List.iter
      (fun r -> Fmt.pr "  %a@." Prima_core.Report.pp_pattern r)
      stats.Prima_core.Coverage.uncovered
  end;
  0

(* --- refine --- *)

let run_refine vocab_name policy_path audit_path min_frequency use_mining max_rows
    max_tuples max_ticks max_wall_ms =
  let vocab = vocab_of_name vocab_name in
  let p_ps = parse_policy_file policy_path in
  let p_al = Audit_mgmt.To_policy.policy_of_entries (parse_audit_file audit_path) in
  let backend =
    if use_mining then
      Prima_core.Extract_patterns.Mining
        { Prima_core.Extract_patterns.default_mining with
          Prima_core.Extract_patterns.min_support = min_frequency;
        }
    else
      Prima_core.Extract_patterns.Sql
        { Prima_core.Data_analysis.default_config with
          Prima_core.Data_analysis.min_frequency;
        }
  in
  let limits =
    match max_rows, max_tuples, max_ticks, max_wall_ms with
    | None, None, None, None -> None
    | rows, tuples, ticks, wall_ms ->
      Some (Relational.Budget.limits ?rows ?tuples ?ticks ?wall_ms ())
  in
  let config =
    { Prima_core.Refinement.default_config with Prima_core.Refinement.backend; limits }
  in
  let report = Prima_core.Refinement.run_epoch ~config ~vocab ~p_ps ~p_al () in
  Prima_core.Report.pp_epoch Fmt.stdout report;
  if report.Prima_core.Refinement.degraded then
    Fmt.pr
      "@.note: the analysis query exceeded its budget and was retried in partial mode; \
       treat the pattern set as a LOWER BOUND and re-run with a larger budget before \
       adopting its absence of patterns as evidence@.";
  0

(* --- mine --- *)

let run_mine audit_path min_support min_confidence =
  let entries = parse_audit_file audit_path in
  let practice =
    Prima_core.Filter.run (Audit_mgmt.To_policy.policy_of_entries entries)
  in
  Fmt.pr "practice entries: %d@." (Prima_core.Policy.cardinality practice);
  let interner, rules =
    Prima_core.Extract_patterns.correlations ~min_support ~min_confidence practice
  in
  Fmt.pr "association rules (support >= %d, confidence >= %.2f):@." min_support
    min_confidence;
  List.iter (fun r -> Fmt.pr "  %a@." (Mining.Assoc_rules.pp interner) r) rules;
  0

(* --- simulate --- *)

let run_simulate seed accesses epoch_size violation_rate acceptance_name =
  let config =
    { (Workload.Hospital.default_config ~seed ()) with
      Workload.Hospital.total_accesses = accesses;
      epoch_size;
      violation_rate;
    }
  in
  let vocab = config.Workload.Hospital.vocab in
  let acceptance =
    match acceptance_name with
    | "oracle" -> Prima_core.Refinement.Oracle (Workload.Generator.oracle config)
    | "accept-all" -> Prima_core.Refinement.Accept_all
    | "reject-all" -> Prima_core.Refinement.Reject_all
    | name -> Fmt.failwith "unknown acceptance %S" name
  in
  let ref_config = { Prima_core.Refinement.default_config with acceptance } in
  let trail = Workload.Generator.generate config in
  let batches =
    List.map
      (fun b -> Audit_mgmt.To_policy.policy_of_entries (Workload.Generator.entries b))
      (Workload.Generator.epochs config trail)
  in
  let reports, final =
    Prima_core.Refinement.run_epochs ~config:ref_config ~vocab
      ~p_ps:(Workload.Hospital.policy_store config) ~batches ()
  in
  List.iteri
    (fun i r ->
      Fmt.pr "epoch %2d: %a -> %a  (+%d rules)@." (i + 1) Prima_core.Coverage.pp_stats
        r.Prima_core.Refinement.coverage_before Prima_core.Coverage.pp_stats
        r.Prima_core.Refinement.coverage_after
        (List.length r.Prima_core.Refinement.accepted))
    reports;
  let covered = Workload.Generator.practices_covered config final in
  Fmt.pr "informal practices documented: %d/%d@." (List.length covered)
    (List.length config.Workload.Hospital.informal);
  0

(* --- generate --- *)

let run_generate seed accesses audit_out policy_out wal_out =
  let config =
    { (Workload.Hospital.default_config ~seed ()) with
      Workload.Hospital.total_accesses = accesses;
    }
  in
  let trail = Workload.Generator.generate config in
  let entries = Workload.Generator.entries trail in
  Hdb.Audit_csv.save audit_out entries;
  Prima_core.Policy_file.save policy_out (Workload.Hospital.policy_store config);
  Fmt.pr "wrote %d audit entries to %s and %d policy rules to %s@."
    (List.length trail) audit_out
    (List.length config.Workload.Hospital.documented)
    policy_out;
  (match wal_out with
  | None -> ()
  | Some path ->
    let log = Durable.Log.create ~seed () in
    ignore (Durable.Log.open_or_recover log);
    List.iter (fun e -> ignore (Durable.Log.append log (Hdb.Audit_schema.to_wire e))) entries;
    Durable.Log.sync log;
    Durable.Device.save (Durable.Log.wal_device log) path;
    Fmt.pr "wrote the same trail as a WAL to %s (next LSN %d)@." path
      (Durable.Log.next_lsn log);
    Fmt.pr "try:  prima recover --wal %s --out recovered.csv@." path);
  Fmt.pr "try:  prima refine --vocab hospital --policy %s --audit %s@." policy_out audit_out;
  0

(* --- recover --- *)

(* Offline inspection of durable state: load the WAL (and snapshot, if
   any), run recovery, and print the report — what verified, what was
   dropped, where appends would resume.  Decoding happens above the
   durable layer: --kind picks the payload codec. *)
let run_recover wal_path snapshot_path kind site_name out =
  let wal = Durable.Device.load wal_path in
  let snapshot =
    match snapshot_path with
    | Some path -> Durable.Device.load path
    | None -> Durable.Device.create ()
  in
  let log = Durable.Log.of_devices ~wal ~snapshot in
  match kind with
  | "site" ->
    (* Crash-local site recovery: replay the per-site op WAL — entries,
       exactly-once ledger, in-flight quarantine, sequence floor — and
       report whether the feed still owes a replay of the lost suffix. *)
    let name =
      match site_name with
      | Some n -> n
      | None -> Filename.remove_extension (Filename.basename wal_path)
    in
    let site, recovery, undecodable = Audit_mgmt.Site.open_durable ~name log in
    Fmt.pr "%a" Durable.Recovery.pp recovery;
    if undecodable > 0 then
      Fmt.pr "warning: %d CRC-valid record(s) did not decode as site ops@." undecodable;
    Fmt.pr "site %s: %d entries, %d quarantined, next raw seq %d@." name
      (Audit_mgmt.Site.length site)
      (Audit_mgmt.Site.quarantined_count site)
      (Audit_mgmt.Site.next_seq site);
    (match out with
    | Some path ->
      Hdb.Audit_csv.save_store path (Audit_mgmt.Site.store site);
      Fmt.pr "wrote %s@." path
    | None -> ());
    if Audit_mgmt.Site.durably_degraded site then begin
      Fmt.pr
        "DEGRADED: recovery was lossy or tampered — replay the feed from raw seq %d, \
         then acknowledge; until then coverage over this site is a lower bound@."
        (Audit_mgmt.Site.next_seq site);
      1
    end
    else 0
  | "audit" ->
    let store, recovery, undecodable = Hdb.Audit_store.open_durable log in
    Fmt.pr "%a" Durable.Recovery.pp recovery;
    if undecodable > 0 then
      Fmt.pr "warning: %d CRC-valid records did not decode as audit entries@." undecodable;
    Fmt.pr "recovered %d audit entries (next LSN %d)@." (Hdb.Audit_store.length store)
      (Hdb.Audit_store.lsn store);
    (match out with
    | Some path ->
      Hdb.Audit_csv.save_store path store;
      Fmt.pr "wrote %s@." path
    | None -> ());
    0
  | "quarantine" ->
    let q, recovery, undecodable = Audit_mgmt.Quarantine.open_durable log in
    Fmt.pr "%a" Durable.Recovery.pp recovery;
    if undecodable > 0 then
      Fmt.pr "warning: %d CRC-valid records did not decode as quarantine ops@." undecodable;
    Fmt.pr "%a" Audit_mgmt.Quarantine.pp q;
    0
  | other ->
    Fmt.epr "unknown --kind %S (use audit, quarantine or site)@." other;
    2

(* --- verify --- *)

(* Offline chain verification: strictly read-only — unlike [recover] it
   adopts nothing, truncates nothing and reseals nothing, so the evidence
   stays on disk and the command can run twice with the same verdict.
   Exits 1 on a tamper verdict so scripts can gate on it. *)
let verify_one wal_path snapshot_path =
  let wal = Durable.Device.load wal_path in
  let snapshot =
    match snapshot_path with
    | Some path -> Durable.Device.load path
    | None -> Durable.Device.create ()
  in
  let r = Durable.Recovery.run ~wal ~snapshot () in
  Fmt.pr "verdict: %s@." (Durable.Recovery.verdict_to_string r.Durable.Recovery.verdict);
  Fmt.pr
    "accepted prefix: %d record(s) (%d from the snapshot, %d from the WAL; %d verified WAL \
     bytes)@."
    (List.length r.Durable.Recovery.entries)
    r.Durable.Recovery.snapshot_entries r.Durable.Recovery.wal_entries
    r.Durable.Recovery.wal_verified_bytes;
  Fmt.pr "chain head: %s@." (Durable.Chain.to_hex r.Durable.Recovery.chain_head);
  (match r.Durable.Recovery.tail_error with
  | Some why -> Fmt.pr "scan stopped: %s@." why
  | None -> ());
  (match r.Durable.Recovery.snapshot_error with
  | Some why -> Fmt.pr "snapshot: %s@." why
  | None -> ());
  match r.Durable.Recovery.verdict with
  | Durable.Recovery.Tamper_detected { offset } ->
    Fmt.pr
      "first divergence: offset %d — bytes from there were durable and verified once, and \
       no longer verify@."
      offset;
    1
  | Durable.Recovery.Torn_tail ->
    Fmt.pr "benign torn tail: %d unverifiable byte(s) dropped@."
      r.Durable.Recovery.dropped_tail;
    0
  | Durable.Recovery.Verified ->
    Fmt.pr "log verifies end-to-end@.";
    0

(* A directory of per-site WALs (a federation's durable state) verifies as
   a unit: each [*.wal] inside is checked read-only, picking up a sibling
   [<name>.snapshot] when present, and the worst per-site verdict is the
   exit code — one tampered site fails the whole directory. *)
let run_verify wal_path snapshot_path =
  if Sys.is_directory wal_path then begin
    let wals =
      Sys.readdir wal_path |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".wal")
      |> List.sort String.compare
    in
    if wals = [] then begin
      Fmt.epr "no *.wal files in %s@." wal_path;
      2
    end
    else begin
      let worst = ref 0 in
      List.iter
        (fun f ->
          let wal = Filename.concat wal_path f in
          let snap = Filename.concat wal_path (Filename.remove_extension f ^ ".snapshot") in
          let snap = if Sys.file_exists snap then Some snap else None in
          Fmt.pr "--- %s ---@." f;
          worst := max !worst (verify_one wal snap))
        wals;
      Fmt.pr "@.%d per-site WAL(s) verified: %s@." (List.length wals)
        (if !worst = 0 then "all chains intact" else "TAMPERING DETECTED");
      !worst
    end
  end
  else verify_one wal_path snapshot_path

(* --- analyze --- *)

let run_analyze vocab_name policy_path =
  let vocab = vocab_of_name vocab_name in
  let p_ps = parse_policy_file policy_path in
  let redundant = Prima_core.Analysis.redundant_rules vocab p_ps in
  if redundant <> [] then begin
    Fmt.pr "redundant rules:@.";
    List.iter (fun r -> Fmt.pr "  %a@." Prima_core.Rule.pp r) redundant
  end;
  let generalized, summary = Prima_core.Analysis.summarize_generalization vocab p_ps in
  Fmt.pr "rules: %d -> %d (range of %d ground rules preserved: %b)@."
    summary.Prima_core.Analysis.rules_before summary.Prima_core.Analysis.rules_after
    summary.Prima_core.Analysis.range_cardinality
    summary.Prima_core.Analysis.range_preserved;
  Fmt.pr "%a" Prima_core.Policy.pp generalized;
  0

(* --- faulty federations (trend, federation-health) --- *)

(* Split an audit trail round-robin across N sites and wrap every site in
   a seeded fault injector.  The same seed replays the same failure
   schedule, so every report printed from it is reproducible evidence. *)
let build_faulty_federation ~entries ~nsites ~seed ~p_unavailable ~p_timeout ~p_flaky
    ~p_corrupt =
  let nsites = max 1 nsites in
  let sites =
    List.init nsites (fun i ->
        Audit_mgmt.Site.create ~name:(Printf.sprintf "site-%d" (i + 1)) ())
  in
  List.iteri
    (fun i e -> Audit_mgmt.Site.ingest_entry (List.nth sites (i mod nsites)) e)
    entries;
  let fed = Audit_mgmt.Federation.create ~seed () in
  let config =
    { Audit_mgmt.Fault.no_faults with
      Audit_mgmt.Fault.p_unavailable;
      p_timeout;
      p_flaky;
      p_corrupt;
    }
  in
  List.iteri
    (fun i site ->
      Audit_mgmt.Federation.add_faulty_site fed
        (Audit_mgmt.Fault.wrap ~config ~seed:(seed + i + 1) site))
    sites;
  fed

(* --- trend --- *)

(* With --sites N, the trail is consolidated through a fault-injected
   federation first, so the trend carries the health report — per-site
   breaker state and trip counts included — and a partial window is
   labelled as such. *)
let run_trend vocab_name policy_path audit_path window nsites seed p_unavailable p_timeout
    p_flaky p_corrupt =
  let vocab = vocab_of_name vocab_name in
  let p_ps = parse_policy_file policy_path in
  let entries = parse_audit_file audit_path in
  let p_al =
    if nsites <= 0 then Audit_mgmt.To_policy.policy_of_entries entries
    else begin
      let fed =
        build_faulty_federation ~entries ~nsites ~seed ~p_unavailable ~p_timeout ~p_flaky
          ~p_corrupt
      in
      let result = Audit_mgmt.Federation.consolidated_result fed in
      let health = result.Audit_mgmt.Federation.health in
      Fmt.pr "%a@." Audit_mgmt.Health.pp health;
      if health.Audit_mgmt.Health.completeness < 1.0 then
        Fmt.pr "note: this trend is computed from a partial window (completeness %.1f%%)@."
          (100. *. health.Audit_mgmt.Health.completeness);
      Audit_mgmt.To_policy.policy_of_entries result.Audit_mgmt.Federation.entries
    end
  in
  let points = Prima_core.Trend.compute vocab ~p_ps ~p_al ~window () in
  Prima_core.Trend.pp Fmt.stdout points;
  if Prima_core.Trend.drifting points then
    Fmt.pr "@.warning: coverage is drifting; a refinement run is due@.";
  0

(* --- federation-health --- *)

(* "NAME=CAP[:REFILL[:WEIGHT]]" -> (name, class_config) with a rows
   quota; refill defaults to the capacity, weight to 1. *)
let parse_class_spec s =
  let fail () =
    Fmt.epr "bad --class %S (expected NAME=CAP[:REFILL[:WEIGHT]])@." s;
    exit 2
  in
  match String.index_opt s '=' with
  | None -> fail ()
  | Some eq ->
    let name = String.sub s 0 eq in
    let rest = String.sub s (eq + 1) (String.length s - eq - 1) in
    if name = "" then fail ();
    (match String.split_on_char ':' rest with
    | parts when List.exists (fun p -> int_of_string_opt p = None) parts -> fail ()
    | [ cap ] ->
      (name, Audit_mgmt.Admission.(class_config ~rows:(quota ~capacity:(int_of_string cap) ()) ()))
    | [ cap; refill ] ->
      ( name,
        Audit_mgmt.Admission.(
          class_config
            ~rows:(quota ~capacity:(int_of_string cap) ~refill_per_s:(int_of_string refill) ())
            ()) )
    | [ cap; refill; weight ] ->
      ( name,
        Audit_mgmt.Admission.(
          class_config ~weight:(int_of_string weight)
            ~rows:(quota ~capacity:(int_of_string cap) ~refill_per_s:(int_of_string refill) ())
            ()) )
    | _ -> fail ())

(* "USER=CLASS" -> (tenant, class name). *)
let parse_tenant_spec s =
  match String.index_opt s '=' with
  | Some eq when eq > 0 && eq < String.length s - 1 ->
    (String.sub s 0 eq, String.sub s (eq + 1) (String.length s - eq - 1))
  | _ ->
    Fmt.epr "bad --tenant %S (expected USER=CLASS)@." s;
    exit 2

(* The admission-gated twin of [build_faulty_federation]: the controller
   attaches first, then every entry passes through the tenant gate
   ([Site.ingest_entries_admitted], tenant = the entry's user) on its way
   into its site.  Shed entries never reach the federation, so the health
   report's completeness is honest about what admission dropped. *)
let build_admitted_federation ~entries ~nsites ~seed ~p_unavailable ~p_timeout ~p_flaky
    ~p_corrupt ~classes ~tenants =
  let nsites = max 1 nsites in
  let sites =
    List.init nsites (fun i ->
        Audit_mgmt.Site.create ~name:(Printf.sprintf "site-%d" (i + 1)) ())
  in
  let adm = Audit_mgmt.Admission.create ~now:0 classes in
  List.iter (fun (tenant, cls) -> Audit_mgmt.Admission.assign adm ~tenant cls) tenants;
  let fed = Audit_mgmt.Federation.create ~seed () in
  Audit_mgmt.Federation.set_admission fed (Some adm);
  let config =
    { Audit_mgmt.Fault.no_faults with
      Audit_mgmt.Fault.p_unavailable;
      p_timeout;
      p_flaky;
      p_corrupt;
    }
  in
  List.iteri
    (fun i site ->
      Audit_mgmt.Federation.add_faulty_site fed
        (Audit_mgmt.Fault.wrap ~config ~seed:(seed + i + 1) site))
    sites;
  let admitted = ref 0 and shed = ref 0 and last_reject = ref None in
  let clock = ref 0 in
  List.iteri
    (fun i e ->
      (* The trail's own logical timestamps drive the refill clock. *)
      clock := max !clock e.Hdb.Audit_schema.time;
      let site = List.nth sites (i mod nsites) in
      let principal =
        Audit_mgmt.Admission.principal ~tenant:e.Hdb.Audit_schema.user ()
      in
      match Audit_mgmt.Site.ingest_entries_admitted site ~now:!clock ~principal [ e ] with
      | Ok n -> admitted := !admitted + n
      | Error r ->
        incr shed;
        last_reject := Some r)
    entries;
  (fed, adm, !admitted, !shed, !last_reject)

let run_federation_health audit_path nsites seed p_unavailable p_timeout p_flaky p_corrupt
    archive heal class_specs tenant_specs =
  let entries = parse_audit_file audit_path in
  if class_specs = [] && tenant_specs <> [] then begin
    Fmt.epr "--tenant requires at least one --class@.";
    exit 2
  end;
  let fed =
    if class_specs = [] then
      build_faulty_federation ~entries ~nsites ~seed ~p_unavailable ~p_timeout ~p_flaky
        ~p_corrupt
    else begin
      let classes = List.map parse_class_spec class_specs in
      let tenants = List.map parse_tenant_spec tenant_specs in
      List.iter
        (fun (_, cls) ->
          if not (List.mem_assoc cls classes) && cls <> "standard" then begin
            Fmt.epr "--tenant maps to unknown class %S@." cls;
            exit 2
          end)
        tenants;
      let fed, _adm, admitted, shed, last_reject =
        build_admitted_federation ~entries ~nsites ~seed ~p_unavailable ~p_timeout ~p_flaky
          ~p_corrupt ~classes ~tenants
      in
      Fmt.pr "admission: %d/%d entries admitted, %d shed@." admitted
        (List.length entries) shed;
      (match last_reject with
      | Some r when shed > 0 ->
        Fmt.pr "  last shed: %s@." (Audit_mgmt.Admission.rejection_to_string r)
      | _ -> ());
      fed
    end
  in
  let archive_store =
    if archive then begin
      let store = Audit_mgmt.Shard_store.create ~seed:(seed + 97) () in
      Audit_mgmt.Federation.attach_archive fed store;
      Some store
    end
    else None
  in
  let result = Audit_mgmt.Federation.consolidated_result fed in
  Fmt.pr "%a" Audit_mgmt.Health.pp result.Audit_mgmt.Federation.health;
  (match archive_store with
  | Some store -> Fmt.pr "%a" Audit_mgmt.Shard_store.pp store
  | None -> ());
  let q = Audit_mgmt.Federation.transit_quarantine fed in
  if Audit_mgmt.Quarantine.length q > 0 then Fmt.pr "%a" Audit_mgmt.Quarantine.pp q;
  if heal then begin
    Audit_mgmt.Federation.heal_all fed;
    let recovered = Audit_mgmt.Federation.consolidated_result fed in
    Fmt.pr "@.after heal:@.%a" Audit_mgmt.Health.pp
      recovered.Audit_mgmt.Federation.health
  end;
  if result.Audit_mgmt.Federation.health.Audit_mgmt.Health.completeness < 1.0 then begin
    Fmt.pr
      "@.note: coverage computed from this window is a LOWER BOUND (completeness \
       %.1f%%); do not prune or auto-accept patterns from it@."
      (100. *. result.Audit_mgmt.Federation.health.Audit_mgmt.Health.completeness)
  end;
  0

(* --- cmdliner wiring --- *)

open Cmdliner

let vocab_arg =
  Arg.(value & opt string "figure1" & info [ "vocab" ] ~docv:"NAME"
         ~doc:"Vocabulary: figure1 or hospital.")

let policy_arg =
  Arg.(required & opt (some file) None & info [ "policy" ] ~docv:"FILE"
         ~doc:"Policy store file (data:purpose:authorized per line).")

let audit_arg =
  Arg.(required & opt (some file) None & info [ "audit" ] ~docv:"FILE"
         ~doc:"Audit trail CSV (time,op,user,data,purpose,authorized,status).")

let paper_cmd =
  Cmd.v (Cmd.info "paper" ~doc:"Replay the paper's running example")
    Term.(const run_paper $ const ())

let coverage_cmd =
  let bag =
    Arg.(value & flag & info [ "bag" ] ~doc:"Count each audit entry (Section 5 accounting).")
  in
  Cmd.v (Cmd.info "coverage" ~doc:"ComputeCoverage over a policy store and an audit trail")
    Term.(const run_coverage $ vocab_arg $ policy_arg $ audit_arg $ bag)

let refine_cmd =
  let min_frequency =
    Arg.(value & opt int 5 & info [ "f"; "min-frequency" ] ~docv:"N"
           ~doc:"Threshold frequency f of Algorithm 4.")
  in
  let mining =
    Arg.(value & flag & info [ "mining" ] ~doc:"Use the Apriori backend instead of SQL.")
  in
  let max_rows =
    Arg.(value & opt (some int) None & info [ "max-rows" ] ~docv:"N"
           ~doc:"Budget: maximum result rows of the analysis query.")
  in
  let max_tuples =
    Arg.(value & opt (some int) None & info [ "max-tuples" ] ~docv:"N"
           ~doc:"Budget: maximum intermediate tuples the analysis query may materialise.")
  in
  let max_ticks =
    Arg.(value & opt (some int) None & info [ "max-ticks" ] ~docv:"N"
           ~doc:"Budget: simulated-time deadline in executor ticks.")
  in
  let max_wall_ms =
    Arg.(value & opt (some int) None & info [ "max-wall-ms" ] ~docv:"MS"
           ~doc:"Budget: wall-clock deadline in milliseconds for the analysis query.")
  in
  Cmd.v (Cmd.info "refine" ~doc:"Run the Refinement pipeline (Algorithms 2-6)")
    Term.(const run_refine $ vocab_arg $ policy_arg $ audit_arg $ min_frequency $ mining
          $ max_rows $ max_tuples $ max_ticks $ max_wall_ms)

let mine_cmd =
  let min_support =
    Arg.(value & opt int 5 & info [ "min-support" ] ~docv:"N" ~doc:"Absolute support.")
  in
  let min_confidence =
    Arg.(value & opt float 0.8 & info [ "min-confidence" ] ~docv:"X" ~doc:"Confidence.")
  in
  Cmd.v (Cmd.info "mine" ~doc:"Mine association rules from the practice entries")
    Term.(const run_mine $ audit_arg $ min_support $ min_confidence)

let simulate_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let accesses =
    Arg.(value & opt int 2000 & info [ "accesses" ] ~docv:"N" ~doc:"Total accesses.")
  in
  let epoch =
    Arg.(value & opt int 250 & info [ "epoch-size" ] ~docv:"N" ~doc:"Accesses per epoch.")
  in
  let violations =
    Arg.(value & opt float 0.02 & info [ "violation-rate" ] ~docv:"X"
           ~doc:"Fraction of rogue accesses.")
  in
  let acceptance =
    Arg.(value & opt string "oracle" & info [ "acceptance" ] ~docv:"MODE"
           ~doc:"oracle, accept-all or reject-all.")
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Synthetic hospital with epoch-wise refinement")
    Term.(const run_simulate $ seed $ accesses $ epoch $ violations $ acceptance)

let generate_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.") in
  let accesses =
    Arg.(value & opt int 2000 & info [ "accesses" ] ~docv:"N" ~doc:"Total accesses.")
  in
  let audit_out =
    Arg.(value & opt string "audit.csv" & info [ "audit-out" ] ~docv:"FILE"
           ~doc:"Audit CSV output path.")
  in
  let policy_out =
    Arg.(value & opt string "policy.txt" & info [ "policy-out" ] ~docv:"FILE"
           ~doc:"Policy file output path.")
  in
  let wal_out =
    Arg.(value & opt (some string) None & info [ "wal-out" ] ~docv:"FILE"
           ~doc:"Also write the trail as a checksummed write-ahead log.")
  in
  Cmd.v (Cmd.info "generate" ~doc:"Write a synthetic hospital audit trail and policy to disk")
    Term.(const run_generate $ seed $ accesses $ audit_out $ policy_out $ wal_out)

let recover_cmd =
  let wal =
    Arg.(required & opt (some file) None & info [ "wal" ] ~docv:"FILE"
           ~doc:"Write-ahead log file to recover.")
  in
  let snapshot =
    Arg.(value & opt (some file) None & info [ "snapshot" ] ~docv:"FILE"
           ~doc:"Companion snapshot image, if one was checkpointed.")
  in
  let kind =
    Arg.(value & opt string "audit" & info [ "kind" ] ~docv:"KIND"
           ~doc:"Payload codec: audit, quarantine, or site (a federation member's per-site \
                 op WAL — entries, exactly-once ledger, in-flight quarantine).")
  in
  let site =
    Arg.(value & opt (some string) None & info [ "site" ] ~docv:"NAME"
           ~doc:"Site name for --kind site; defaults to the WAL file's basename.  Implies \
                 --kind site is the intended codec.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Export the recovered audit entries as CSV (audit and site kinds).")
  in
  (* --site alone is enough to select the site codec *)
  let kind =
    Term.(const (fun kind site -> match site with Some _ -> "site" | None -> kind)
          $ kind $ site)
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Verify a WAL (+ snapshot), print the recovery report and the surviving state; \
             exits 1 when a site recovery is left durably degraded")
    Term.(const run_recover $ wal $ snapshot $ kind $ site $ out)

let verify_cmd =
  let wal =
    Arg.(required & opt (some file) None & info [ "wal" ] ~docv:"FILE-or-DIR"
           ~doc:"Write-ahead log file to verify, or a directory of per-site *.wal files \
                 (sibling <name>.snapshot images are picked up automatically).")
  in
  let snapshot =
    Arg.(value & opt (some file) None & info [ "snapshot" ] ~docv:"FILE"
           ~doc:"Companion snapshot image, if one was checkpointed (single-file mode).")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Offline tamper check of a WAL (+ snapshot) or a directory of per-site WALs: \
             hash-chain verification without adopting or rewriting anything; exits 1 on \
             a tamper verdict")
    Term.(const run_verify $ wal $ snapshot)

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Redundancy and generalization analysis of a policy store")
    Term.(const run_analyze $ vocab_arg $ policy_arg)

(* Fault-schedule options shared by every command that builds a
   fault-injected federation. *)
let fault_seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Fault-schedule seed.")

let unavailable_arg =
  Arg.(value & opt float 0.2 & info [ "unavailable" ] ~docv:"X"
         ~doc:"Probability a site is down for the whole run.")

let timeout_arg =
  Arg.(value & opt float 0.1 & info [ "timeout" ] ~docv:"X"
         ~doc:"Per-attempt probability of a timeout.")

let flaky_arg =
  Arg.(value & opt float 0.2 & info [ "flaky" ] ~docv:"X"
         ~doc:"Per-attempt probability of a transient failure.")

let corrupt_arg =
  Arg.(value & opt float 0.05 & info [ "corrupt" ] ~docv:"X"
         ~doc:"Per-record probability of corruption in transit.")

let trend_cmd =
  let window =
    Arg.(value & opt int 100 & info [ "window" ] ~docv:"N" ~doc:"Window size in time ticks.")
  in
  let sites =
    Arg.(value & opt int 0 & info [ "sites" ] ~docv:"N"
           ~doc:"Consolidate through N fault-injected sites first and print their health \
                 (0: read the trail directly).")
  in
  Cmd.v (Cmd.info "trend" ~doc:"Windowed coverage trend of an audit trail")
    Term.(const run_trend $ vocab_arg $ policy_arg $ audit_arg $ window $ sites
          $ fault_seed_arg $ unavailable_arg $ timeout_arg $ flaky_arg $ corrupt_arg)

let federation_health_cmd =
  let sites =
    Arg.(value & opt int 3 & info [ "sites" ] ~docv:"N"
           ~doc:"Number of sites to spread the trail across.")
  in
  let heal =
    Arg.(value & flag & info [ "heal" ] ~doc:"Also show the report after healing all sites.")
  in
  let archive =
    Arg.(value & flag & info [ "archive" ]
           ~doc:"Attach a sharded durable archive: successful fetches are archived per \
                 (site, time-range) shard, dark sites are served stale from it, and the \
                 per-site shard columns are populated in the report.")
  in
  let classes =
    Arg.(value & opt_all string [] & info [ "class" ] ~docv:"NAME=CAP[:REFILL[:WEIGHT]]"
           ~doc:"Register a budget class (repeatable): a rows token bucket of CAP tokens \
                 refilled at REFILL/s (default CAP) with fair-share WEIGHT (default 1).  \
                 With at least one class, the trail ingests through the tenant admission \
                 gate and the report gains per-class admitted/brownout/shed columns.")
  in
  let tenants =
    Arg.(value & opt_all string [] & info [ "tenant" ] ~docv:"USER=CLASS"
           ~doc:"Map an audit-trail user to a budget class (repeatable).  Unmapped users \
                 fall into the default \"standard\" class.")
  in
  Cmd.v
    (Cmd.info "federation-health"
       ~doc:"Consolidate a trail across fault-injected sites and print the health report \
             (per-site breaker trips; per-class admission counters with --class)")
    Term.(const run_federation_health $ audit_arg $ sites $ fault_seed_arg $ unavailable_arg
          $ timeout_arg $ flaky_arg $ corrupt_arg $ archive $ heal $ classes $ tenants)

(* One seeded chaos schedule through the whole system, checked against the
   model oracle; exits non-zero on a violation, printing the step-by-step
   fault log and the violation trace.  --replay re-runs a serialized repro
   file instead (exit 1 names the violated invariant and step); --shrink
   delta-debugs a failing run to a 1-minimal repro and optionally saves
   it. *)
let run_chaos seed steps sites verbose defect replay_file do_shrink repro_out =
  let trace = if verbose then Some (fun line -> Fmt.pr "%s@." line) else None in
  let defect =
    match defect with
    | None -> None
    | Some s -> (
      match Chaos.Harness.defect_of_string s with
      | Some d -> Some d
      | None ->
        Fmt.epr "unknown defect %S (try \"eat-entry 5\", \"drop-replay\", \"stale-vocab\")@." s;
        exit 2)
  in
  let shrink_and_save repro =
    let mini, stats = Chaos.Shrink.shrink repro in
    Fmt.pr "shrunk %d -> %d action(s) in %d candidate run(s), %d round(s)@."
      stats.Chaos.Shrink.original stats.Chaos.Shrink.minimal stats.Chaos.Shrink.candidates
      stats.Chaos.Shrink.rounds;
    Fmt.pr "@.--- minimal repro ---@.%s" (Chaos.Shrink.to_string mini);
    match repro_out with
    | None -> ()
    | Some path ->
      Chaos.Shrink.save path mini;
      Fmt.pr "@.saved to %s (replay with: prima chaos --replay %s)@." path path
  in
  match replay_file with
  | Some path -> (
    match Chaos.Shrink.load path with
    | Error e ->
      Fmt.epr "cannot load repro %s: %s@." path e;
      2
    | Ok repro ->
      let report = Chaos.Shrink.replay repro in
      Fmt.pr "%a@." Chaos.Harness.pp report;
      (match report.Chaos.Harness.violation with
      | None ->
        Fmt.pr "repro no longer fails (recorded invariant %S at step %d)@."
          repro.Chaos.Shrink.invariant repro.Chaos.Shrink.step;
        0
      | Some v ->
        Fmt.pr "@.%a@." Chaos.Harness.pp_violation v;
        1))
  | None -> (
    let actions = Chaos.Schedule.generate ~nsites:sites ~seed ~steps () in
    let report =
      Chaos.Harness.run_actions ~nsites:sites ?defect ?trace
        ~pool:((steps * 3) + 120) ~seed ~actions ()
    in
    Fmt.pr "%a@." Chaos.Harness.pp report;
    match report.Chaos.Harness.violation with
    | None -> 0
    | Some v ->
      if not verbose then begin
        Fmt.pr "@.--- fault log ---@.";
        List.iter (Fmt.pr "%s@.") report.Chaos.Harness.events
      end;
      Fmt.pr "@.%a@." Chaos.Harness.pp_violation v;
      Fmt.pr "reproduce with: prima chaos --seed %d --steps %d --sites %d%s@." seed steps
        sites
        (match defect with
        | None -> ""
        | Some d -> Printf.sprintf " --defect %S" (Chaos.Harness.defect_to_string d));
      if do_shrink then begin
        match Chaos.Shrink.of_report ?defect ~nsites:sites ~actions report with
        | Some repro -> shrink_and_save repro
        | None -> ()
      end;
      1)

let chaos_cmd =
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Schedule seed; a run replays exactly from its seed.")
  in
  let steps =
    Arg.(value & opt int 400 & info [ "steps" ] ~docv:"N"
           ~doc:"Number of composed fault-schedule actions.")
  in
  let sites =
    Arg.(value & opt int 2 & info [ "sites" ] ~docv:"N"
           ~doc:"Fault-injected remote sites besides the clinical DB.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Stream the fault log while running.")
  in
  let defect =
    Arg.(value & opt (some string) None & info [ "defect" ] ~docv:"NAME"
           ~doc:"Arm an injected bug (\"eat-entry K\", \"drop-replay\", \"stale-vocab\") \
                 so the run has a real failure to find and shrink.")
  in
  let replay =
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE"
           ~doc:"Replay a serialized repro file instead of generating a schedule; exits \
                 non-zero naming the violated invariant and step.")
  in
  let shrink =
    Arg.(value & flag & info [ "shrink" ]
           ~doc:"On a violation, delta-debug the schedule to a 1-minimal repro \
                 (deterministic; every surviving action is load-bearing).")
  in
  let repro_out =
    Arg.(value & opt (some string) None & info [ "repro-out" ] ~docv:"FILE"
           ~doc:"With --shrink: save the minimal repro to FILE.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Drive the whole system through a seeded fault schedule and check the model \
             oracle's invariants; shrink failures to minimal repros")
    Term.(const run_chaos $ seed $ steps $ sites $ verbose $ defect $ replay $ shrink
          $ repro_out)

let main_cmd =
  Cmd.group
    (Cmd.info "prima" ~version:"1.0.0"
       ~doc:"PRIMA: privacy policy coverage and refinement for healthcare")
    [ paper_cmd; coverage_cmd; refine_cmd; mine_cmd; simulate_cmd; generate_cmd; analyze_cmd;
      trend_cmd; federation_health_cmd; recover_cmd; verify_cmd; chaos_cmd ]

let () =
  (* PRIMA_VERBOSE=1 surfaces refinement and enforcement decision logs. *)
  setup_logs
    (match Sys.getenv_opt "PRIMA_VERBOSE" with
    | Some _ -> Some Logs.Info
    | None -> Some Logs.Warning);
  exit (Cmd.eval' main_cmd)
