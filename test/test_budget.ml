(* Edge cases of the per-query resource governor: quotas firing at exact
   boundaries, cancellation mid-operator, partial-mode truncation, and the
   graceful-degradation path up through refinement and the assembled
   system.  The companion QCheck property pins the governor's core
   contract: a budget whose quotas never fire leaves results identical to
   an ungoverned run. *)

module B = Relational.Budget
module E = Relational.Errors
module Eng = Relational.Engine
module DA = Prima_core.Data_analysis
module EP = Prima_core.Extract_patterns
module Ref = Prima_core.Refinement
module S = Workload.Scenario
module Sys_ = Prima_system.System

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* 30 rows, three groups — enough work that a GROUP BY accumulates a
   meaningful tick count. *)
let make_engine () =
  let engine = Eng.create () in
  ignore (Eng.command engine "CREATE TABLE t (id INT, grp TEXT, score INT)");
  for i = 0 to 29 do
    ignore
      (Eng.command engine
         (Printf.sprintf "INSERT INTO t VALUES (%d, '%c', %d)" i
            (Char.chr (Char.code 'a' + (i mod 3)))
            (i * 7 mod 13)))
  done;
  engine

let group_query = "SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp"

let result_csv engine budget sql = Eng.result_to_csv (Eng.query ?budget engine sql)

(* --- quotas at their edges --- *)

let test_zero_row_quota () =
  let engine = make_engine () in
  (match Eng.query ~budget:(B.create (B.limits ~rows:0 ())) engine "SELECT id FROM t" with
  | exception E.Budget_exceeded (E.Rows, _) -> ()
  | exception e -> Alcotest.failf "wrong exception: %s" (E.to_string e)
  | _ -> Alcotest.fail "a zero-row quota must fire in strict mode");
  (* Partial mode: same quota, empty (but well-formed) result instead. *)
  let budget = B.create ~mode:B.Partial (B.limits ~rows:0 ()) in
  let result = Eng.query ~budget engine "SELECT id FROM t" in
  check_int "partial yields no rows" 0 (List.length result.Relational.Executor.rows);
  check_bool "flagged truncated" true (B.truncated budget);
  check_bool "row quota is the one that fired" true (B.exhausted budget = Some E.Rows)

let test_deadline_exact_boundary () =
  let engine = make_engine () in
  (* Measure the exact tick cost of an ungoverned run... *)
  let ungoverned = B.default () in
  let expected = result_csv engine (Some ungoverned) group_query in
  let cost = (B.stats ungoverned).E.ticks in
  check_bool "the query does real work" true (cost > 30);
  (* ...then a deadline of exactly that many ticks completes (the deadline
     fires strictly after it passes)... *)
  let at = B.create (B.limits ~ticks:cost ()) in
  Alcotest.(check string) "deadline at exact cost completes" expected
    (result_csv engine (Some at) group_query);
  check_int "and consumes exactly the measured ticks" cost (B.stats at).E.ticks;
  (* ...while one tick less fails. *)
  match result_csv engine (Some (B.create (B.limits ~ticks:(cost - 1) ()))) group_query with
  | exception E.Budget_exceeded (E.Time, stats) ->
    check_int "counters at the boundary" cost stats.E.ticks
  | exception e -> Alcotest.failf "wrong exception: %s" (E.to_string e)
  | _ -> Alcotest.fail "one tick under the cost must exceed the deadline"

let test_tuple_quota_partial_prefix () =
  let engine = make_engine () in
  (* A tight tuple quota in partial mode: the aggregate sees a prefix of
     the scan, so every group count is a lower bound of the true count. *)
  let true_counts =
    (Eng.query engine group_query).Relational.Executor.rows
    |> List.map (fun row -> Relational.Row.to_list row)
  in
  let budget = B.create ~mode:B.Partial (B.limits ~tuples:10 ()) in
  let partial = (Eng.query ~budget engine group_query).Relational.Executor.rows in
  check_bool "flagged truncated" true (B.truncated budget);
  check_bool "partial counts bound the true counts" true
    (List.for_all
       (fun row ->
         match Relational.Row.to_list row with
         | [ grp; Relational.Value.Int n ] ->
           List.exists
             (function
               | [ grp'; Relational.Value.Int n' ] -> grp = grp' && n <= n'
               | _ -> false)
             true_counts
         | _ -> false)
       partial)

(* --- cancellation --- *)

let test_cancel_during_aggregate () =
  let engine = make_engine () in
  let ungoverned = B.default () in
  ignore (result_csv engine (Some ungoverned) group_query);
  let mid = (B.stats ungoverned).E.ticks / 2 in
  (* Trip the token halfway through the hash-aggregate build: strict and
     partial mode must both abort — cancellation is never a degradation. *)
  List.iter
    (fun mode ->
      match Eng.query ~budget:(B.create ~mode ~cancel_at:mid B.unlimited) engine group_query with
      | exception E.Cancelled stats ->
        check_bool "cancelled near the trip point" true (stats.E.ticks >= mid)
      | exception e -> Alcotest.failf "wrong exception: %s" (E.to_string e)
      | _ -> Alcotest.fail "a tripped token must abort the query")
    [ B.Strict; B.Partial ];
  (* A token pulled before the query starts aborts immediately. *)
  let token = B.cancel_token () in
  B.cancel token;
  check_bool "token reads cancelled" true (B.is_cancelled token);
  match Eng.query ~budget:(B.create ~cancel:token B.unlimited) engine "SELECT id FROM t" with
  | exception E.Cancelled _ -> ()
  | _ -> Alcotest.fail "pre-cancelled token must abort"

let test_admit_list_strict_is_physical () =
  (* The strict fast path must not rebuild the list it admits. *)
  let budget = B.create B.unlimited in
  let rows = [ 1; 2; 3 ] in
  check_bool "strict admit_list returns the same list" true (B.admit_list budget rows == rows)

(* --- governed == ungoverned when nothing fires (QCheck) --- *)

let queries =
  [ "SELECT id, score FROM t";
    "SELECT grp, COUNT(*) FROM t GROUP BY grp ORDER BY grp";
    "SELECT DISTINCT score FROM t ORDER BY score DESC";
    "SELECT id FROM t WHERE score > 5 ORDER BY id LIMIT 7";
    "SELECT grp, COUNT(*) FROM t GROUP BY grp HAVING COUNT(*) >= 2";
  ]

let gen_case =
  let open QCheck2.Gen in
  let* rows = list_size (int_range 0 25) (pair (int_range 0 50) (int_range 0 9)) in
  let* query = int_range 0 (List.length queries - 1) in
  return (rows, query)

let prop_governed_matches_ungoverned =
  QCheck2.Test.make ~name:"non-firing budget leaves results identical" ~count:120
    ~print:(fun (rows, q) -> Printf.sprintf "rows=%d query=%d" (List.length rows) q)
    gen_case
    (fun (rows, query_index) ->
      let engine = Eng.create () in
      ignore (Eng.command engine "CREATE TABLE t (id INT, grp TEXT, score INT)");
      List.iteri
        (fun i (id, score) ->
          ignore
            (Eng.command engine
               (Printf.sprintf "INSERT INTO t VALUES (%d, '%c', %d)" id
                  (Char.chr (Char.code 'a' + (i mod 4)))
                  score)))
        rows;
      let sql = List.nth queries query_index in
      let plain = result_csv engine None sql in
      let generous = B.create (B.limits ~rows:100_000 ~tuples:1_000_000 ~ticks:10_000_000 ()) in
      let governed = result_csv engine (Some generous) sql in
      let partial =
        B.create ~mode:B.Partial (B.limits ~rows:100_000 ~tuples:1_000_000 ~ticks:10_000_000 ())
      in
      let soft = result_csv engine (Some partial) sql in
      plain = governed && plain = soft && (not (B.truncated partial)))

(* --- graceful degradation through Algorithm 5 --- *)

let practice () = Prima_core.Filter.run (S.table1_audit_policy ())

let test_degraded_extraction_is_lower_bound () =
  let exact = DA.analyse (practice ()) in
  check_bool "scenario yields a pattern" true (List.length exact > 0);
  (* Generous budget: same patterns, not degraded, stats populated. *)
  let ok = DA.analyse_governed ~limits:(B.limits ~ticks:1_000_000 ()) (practice ()) in
  check_bool "not degraded" false ok.DA.degraded;
  check_bool "patterns identical" true (ok.DA.patterns = exact);
  check_bool "stats populated" true (ok.DA.stats.E.ticks > 0);
  (* Starved budget: the strict attempt fires, the partial retry returns a
     subset of the exact patterns, flagged degraded. *)
  let starved = DA.analyse_governed ~limits:(B.limits ~tuples:3 ()) (practice ()) in
  check_bool "degraded" true starved.DA.degraded;
  check_bool "patterns are a subset of the exact set" true
    (List.for_all (fun rule -> List.mem rule exact) starved.DA.patterns)

let test_extract_patterns_governed_mining_exact () =
  (* The mining backend is ungoverned: always exact, zero stats. *)
  let governed =
    EP.run_governed ~backend:(EP.Mining EP.default_mining) ~limits:(B.limits ~tuples:1 ())
      (practice ())
  in
  check_bool "mining never degrades" false governed.DA.degraded;
  check_int "mining reports zero ticks" 0 governed.DA.stats.E.ticks

let test_epoch_degrades_to_lower_bound () =
  let vocab = S.vocab () in
  let config = { Ref.default_config with Ref.limits = Some (B.limits ~tuples:3 ()) } in
  let report =
    Ref.run_epoch ~config ~vocab ~p_ps:(S.policy_store ()) ~p_al:(S.table1_audit_policy ()) ()
  in
  check_bool "epoch flagged degraded" true report.Ref.degraded;
  check_bool "budget stats recorded" true (report.Ref.budget_stats.E.ticks > 0);
  (match report.Ref.qualifier with
  | Prima_core.Coverage.Lower_bound _ -> ()
  | Prima_core.Coverage.Exact ->
    Alcotest.fail "a degraded extraction must downgrade coverage to Lower_bound");
  (* The same epoch under a generous budget is exact. *)
  let config = { Ref.default_config with Ref.limits = Some (B.limits ~ticks:1_000_000 ()) } in
  let report =
    Ref.run_epoch ~config ~vocab ~p_ps:(S.policy_store ()) ~p_al:(S.table1_audit_policy ()) ()
  in
  check_bool "generous budget not degraded" false report.Ref.degraded;
  check_bool "exact qualifier" true (report.Ref.qualifier = Prima_core.Coverage.Exact)

(* --- the assembled system tracks governance --- *)

let test_system_governance_counters () =
  let system =
    Sys_.create ~vocab:(Vocabulary.Samples.figure1 ()) ~p_ps:(S.policy_store ()) ()
  in
  let icu = Audit_mgmt.Site.create ~name:"icu" () in
  Audit_mgmt.Site.ingest_entries icu (S.table1_entries ());
  Sys_.add_site system icu;
  check_bool "ungoverned by default" true (Sys_.query_limits system = None);
  check_int "no governed epochs yet" 0 (Sys_.governance system).Sys_.governed_epochs;
  (* Govern with a budget that will not fire: counted, not degraded. *)
  Sys_.set_query_limits system (Some (B.limits ~ticks:1_000_000 ()));
  (match Sys_.refine system with
  | Ok report -> check_bool "not degraded" false report.Ref.degraded
  | Error e -> Alcotest.fail e);
  let g = Sys_.governance system in
  check_int "one governed epoch" 1 g.Sys_.governed_epochs;
  check_int "none degraded" 0 g.Sys_.degraded_epochs;
  check_bool "stats retained" true
    (match g.Sys_.last_budget_stats with Some s -> s.E.ticks > 0 | None -> false);
  (* Starve the next epoch: the degraded counter moves. *)
  Sys_.set_query_limits system (Some (B.limits ~tuples:3 ()));
  (match Sys_.refine system with
  | Ok report -> check_bool "degraded epoch" true report.Ref.degraded
  | Error e -> Alcotest.fail e);
  let g = Sys_.governance system in
  check_int "two governed epochs" 2 g.Sys_.governed_epochs;
  check_int "one degraded" 1 g.Sys_.degraded_epochs

(* --- wall-clock deadline, deterministic via an injected clock --- *)

let test_wall_deadline_injected_clock () =
  let engine = make_engine () in
  (* a fake clock that advances 1ms per budget tick: a 5ms wall deadline
     must fire partway through the scan *)
  let t = ref 0.0 in
  let now () =
    t := !t +. 1.0;
    !t
  in
  let tripped =
    try
      ignore (Eng.query ~budget:(B.create ~now (B.limits ~wall_ms:5 ())) engine group_query);
      false
    with E.Budget_exceeded (E.Time, _) -> true
  in
  check_bool "5ms wall deadline trips on a 30-row group-by" true tripped;
  (* a deadline the query finishes under changes nothing *)
  let t2 = ref 0.0 in
  let now2 () =
    t2 := !t2 +. 1.0;
    !t2
  in
  Alcotest.(check string)
    "generous wall deadline is invisible"
    (result_csv engine None group_query)
    (result_csv engine (Some (B.create ~now:now2 (B.limits ~wall_ms:1_000_000 ()))) group_query);
  (* without a wall limit the clock is never consulted *)
  let consulted = ref false in
  let spy () =
    consulted := true;
    0.0
  in
  ignore (Eng.query ~budget:(B.create ~now:spy B.unlimited) engine group_query);
  check_bool "clock not consulted without a wall limit" false !consulted

(* --- budgets on the enforcement path (Control_center.query) --- *)

let make_control () =
  let control = Hdb.Control_center.create ~vocab:(S.vocab ()) () in
  ignore (Hdb.Control_center.admin_exec control "CREATE TABLE visits (id INT, note TEXT)");
  for i = 1 to 20 do
    ignore
      (Hdb.Control_center.admin_exec control
         (Printf.sprintf "INSERT INTO visits VALUES (%d, 'n%d')" i i))
  done;
  control

let enforcement_query control =
  Hdb.Control_center.query control ~user:"u" ~role:"nurse" ~purpose:"treatment"
    "SELECT * FROM visits"

let test_enforcement_over_quota_raises () =
  let control = make_control () in
  (* ungoverned: the full result set comes back *)
  (match enforcement_query control with
  | Ok o -> check_int "ungoverned rows" 20 (List.length o.Hdb.Enforcement.result.Relational.Executor.rows)
  | Error e -> Alcotest.failf "ungoverned query denied: %s" (Hdb.Enforcement.error_to_string e));
  (* over quota: the typed exception, never silent truncation *)
  Hdb.Control_center.set_query_limits control (Some (B.limits ~rows:5 ()));
  (match enforcement_query control with
  | exception E.Budget_exceeded (E.Rows, _) -> ()
  | Ok o ->
    Alcotest.failf "over-quota enforcement query returned %d rows instead of raising"
      (List.length o.Hdb.Enforcement.result.Relational.Executor.rows)
  | Error e -> Alcotest.failf "denied instead of budget trip: %s" (Hdb.Enforcement.error_to_string e));
  (* generous limits: identical rows again *)
  Hdb.Control_center.set_query_limits control (Some (B.limits ~rows:1000 ~ticks:100_000 ()));
  (match enforcement_query control with
  | Ok o -> check_int "governed-but-generous rows" 20 (List.length o.Hdb.Enforcement.result.Relational.Executor.rows)
  | Error e -> Alcotest.failf "generous query denied: %s" (Hdb.Enforcement.error_to_string e));
  (* clearing the limits restores the ungoverned path *)
  Hdb.Control_center.set_query_limits control None;
  check_bool "limits cleared" true (Hdb.Control_center.query_limits control = None)

let test_system_knob_reaches_enforcement () =
  let sys = Sys_.create ~vocab:(S.vocab ()) ~p_ps:(S.policy_store ()) () in
  let control = Sys_.control sys in
  ignore (Hdb.Control_center.admin_exec control "CREATE TABLE k (id INT)");
  for i = 1 to 9 do
    ignore (Hdb.Control_center.admin_exec control (Printf.sprintf "INSERT INTO k VALUES (%d)" i))
  done;
  Sys_.set_query_limits sys (Some (B.limits ~rows:2 ()));
  let tripped =
    try
      ignore
        (Hdb.Control_center.query control ~user:"u" ~role:"nurse" ~purpose:"treatment"
           "SELECT * FROM k");
      false
    with E.Budget_exceeded (E.Rows, _) -> true
  in
  Sys_.set_query_limits sys None;
  check_bool "System.set_query_limits governs the enforcement path" true tripped

let () =
  Alcotest.run "budget"
    [ ( "quotas",
        [ Alcotest.test_case "zero-row quota" `Quick test_zero_row_quota;
          Alcotest.test_case "deadline at exact boundary" `Quick test_deadline_exact_boundary;
          Alcotest.test_case "partial tuple quota bounds counts" `Quick
            test_tuple_quota_partial_prefix;
          Alcotest.test_case "admit_list strict is physical" `Quick
            test_admit_list_strict_is_physical;
        ] );
      ( "cancellation",
        [ Alcotest.test_case "mid-aggregate + pre-cancelled" `Quick
            test_cancel_during_aggregate ] );
      ("parity", [ QCheck_alcotest.to_alcotest ~long:false prop_governed_matches_ungoverned ]);
      ( "degradation",
        [ Alcotest.test_case "extraction lower bound" `Quick
            test_degraded_extraction_is_lower_bound;
          Alcotest.test_case "mining backend exact" `Quick
            test_extract_patterns_governed_mining_exact;
          Alcotest.test_case "epoch lower bound" `Quick test_epoch_degrades_to_lower_bound;
        ] );
      ( "system",
        [ Alcotest.test_case "governance counters" `Quick test_system_governance_counters ] );
      ( "wall clock",
        [ Alcotest.test_case "injected clock, deterministic deadline" `Quick
            test_wall_deadline_injected_clock ] );
      ( "enforcement path",
        [ Alcotest.test_case "over quota raises typed, never truncates" `Quick
            test_enforcement_over_quota_raises;
          Alcotest.test_case "system knob reaches enforcement" `Quick
            test_system_knob_reaches_enforcement;
        ] );
    ]
