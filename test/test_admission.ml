(* Multi-tenant admission control: the token-bucket refill boundary, shed
   and brownout semantics, deficit-round-robin fairness, all-or-nothing
   gated ingestion, and the admitted paths through the assembled system.

   The refill boundary is CLOSED, mirroring Retry.deadline_reached's [>=]
   treatment of the retry deadline: a token owed at exactly-now is
   granted at that tick, and a rejection's [retry_after_ms] hint is the
   earliest delay at which the same cost is admitted — retrying exactly
   then must succeed. *)

module Adm = Audit_mgmt.Admission
module Site = Audit_mgmt.Site
module Health = Audit_mgmt.Health
module Budget = Relational.Budget

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rows_class ?(weight = 1) ~cap ~rate () =
  Adm.(class_config ~weight ~rows:(quota ~capacity:cap ~refill_per_s:rate ()) ())

let one_tenant ?(cls = "c") config =
  let adm = Adm.create ~now:0 [ (cls, config) ] in
  Adm.assign adm ~tenant:"t" cls;
  (adm, Adm.principal ~tenant:"t" ())

let admit_one adm p ~now = Adm.admit adm ~now ~kind:Adm.Mutation p (Adm.cost ~rows:1 ())

let is_admitted = function Adm.Admitted _ -> true | _ -> false
let is_rejected = function Adm.Rejected _ -> true | _ -> false

let drain_bucket adm p ~now ~cap =
  for _ = 1 to cap do
    match admit_one adm p ~now with
    | Adm.Admitted _ -> ()
    | _ -> Alcotest.fail "bucket drained early"
  done

(* --- the closed refill boundary --- *)

(* refill 1/s from empty: the token owed at exactly t+1000 is granted at
   that tick, not one tick later. *)
let test_refill_exactly_now () =
  let adm, p = one_tenant (rows_class ~cap:10 ~rate:1 ()) in
  drain_bucket adm p ~now:0 ~cap:10;
  check_bool "empty at 0" true (is_rejected (admit_one adm p ~now:0));
  check_bool "999 ms: token still owed" true (is_rejected (admit_one adm p ~now:999));
  check_bool "1000 ms exactly: granted" true (is_admitted (admit_one adm p ~now:1000))

(* Sub-token credit carries exactly: 3 tokens/s means the first token
   lands at ceil(1000/3) = 334 ms, never at 333. *)
let test_refill_carry_boundary () =
  let adm, p = one_tenant (rows_class ~cap:3 ~rate:3 ()) in
  drain_bucket adm p ~now:0 ~cap:3;
  check_bool "333 ms: 999/1000, still short" true (is_rejected (admit_one adm p ~now:333));
  check_bool "334 ms: 1002/1000, granted" true (is_admitted (admit_one adm p ~now:334))

(* The retry hint is honest and tight: a rejection at [now] admits at
   exactly [now + hint] — the closed-boundary contract — and would still
   be short one tick earlier. *)
let test_retry_hint_closed_boundary () =
  let adm, p = one_tenant (rows_class ~cap:7 ~rate:2 ()) in
  drain_bucket adm p ~now:0 ~cap:7;
  match admit_one adm p ~now:100 with
  | Adm.Rejected { Adm.retry_after_ms = Some d; _ } ->
    check_bool "hint positive" true (d >= 1);
    check_bool "one tick early: still shed" true
      (d = 1 || is_rejected (admit_one adm p ~now:(100 + d - 1)));
    check_bool "exactly now + hint: admitted" true
      (is_admitted (admit_one adm p ~now:(100 + d)))
  | _ -> Alcotest.fail "expected a hinted rejection"

(* A zero-capacity class never admits and never promises a retry. *)
let test_zero_capacity_never_admits () =
  let adm, p = one_tenant (rows_class ~cap:0 ~rate:5 ()) in
  List.iter
    (fun now ->
      match admit_one adm p ~now with
      | Adm.Rejected r ->
        check_bool "no retry hint" true (r.Adm.retry_after_ms = None)
      | _ -> Alcotest.fail "zero capacity admitted")
    [ 0; 1000; 1_000_000 ]

(* Capacity without refill: once spent, the class is done for good —
   rejections carry no hint. *)
let test_zero_rate_no_hint () =
  let adm, p = one_tenant (rows_class ~cap:2 ~rate:0 ()) in
  drain_bucket adm p ~now:0 ~cap:2;
  match admit_one adm p ~now:1_000_000 with
  | Adm.Rejected r -> check_bool "never refills, no hint" true (r.Adm.retry_after_ms = None)
  | _ -> Alcotest.fail "expected rejection"

(* set_class clamps the level to the new capacity but keeps counters. *)
let test_set_class_clamps_tokens () =
  let adm, p = one_tenant (rows_class ~cap:10 ~rate:0 ()) in
  check_bool "one strict admit" true (is_admitted (admit_one adm p ~now:0));
  Adm.set_class adm "c" (rows_class ~cap:2 ~rate:0 ());
  (* 9 tokens clamp to 2: exactly two more admits *)
  check_bool "clamped token 1" true (is_admitted (admit_one adm p ~now:0));
  check_bool "clamped token 2" true (is_admitted (admit_one adm p ~now:0));
  check_bool "third shed" true (is_rejected (admit_one adm p ~now:0));
  match Adm.stats_of_class adm "c" with
  | Some s ->
    check_int "counters survived reconfiguration" 3 s.Adm.admitted;
    check_int "shed counted" 1 s.Adm.shed
  | None -> Alcotest.fail "class vanished"

(* --- brownout and shed semantics --- *)

(* A query that covers half the plain cost browns out to a Partial grant;
   a mutation in the same state is shed whole — never browned out. *)
let test_query_brownout_mutation_shed () =
  let adm, p = one_tenant (rows_class ~cap:6 ~rate:0 ()) in
  let cost = Adm.cost ~rows:10 () in
  (match Adm.admit adm ~now:0 ~kind:Adm.Mutation p cost with
  | Adm.Rejected _ -> ()
  | _ -> Alcotest.fail "mutation must shed, not brown out");
  match Adm.admit adm ~now:0 ~kind:Adm.Query p cost with
  | Adm.Brownout g ->
    check_bool "partial mode" true (g.Adm.g_mode = Budget.Partial);
    check_bool "granted rows capped at the bucket" true
      (g.Adm.g_limits.Budget.max_rows = Some 6)
  | _ -> Alcotest.fail "query must brown out"

(* Backpressure raises the strict bar: the same query that admits clean
   at pressure 0 browns out at pressure 1. *)
let test_pressure_raises_bar () =
  let adm, p = one_tenant (rows_class ~cap:10 ~rate:0 ()) in
  let cost = Adm.cost ~rows:8 () in
  Adm.set_pressure adm
    { Adm.wal_backlog = 1000; degraded_shards = 0; open_breakers = 0 };
  check_int "one signal, one level" 1 (Adm.pressure_level adm);
  (match Adm.admit adm ~now:0 ~kind:Adm.Query p cost with
  | Adm.Brownout _ -> ()
  | _ -> Alcotest.fail "raised bar must brown out");
  Adm.set_pressure adm Adm.no_pressure;
  match Adm.admit adm ~now:0 ~kind:Adm.Query p (Adm.cost ~rows:2 ()) with
  | Adm.Admitted _ -> ()
  | _ -> Alcotest.fail "pressure cleared, strict admit expected"

(* settle charges the overrun beyond the declared cost: the class goes
   into debt and its next admit waits for the refill to cover it. *)
let test_settle_overrun_debt () =
  let adm, p = one_tenant (rows_class ~cap:10 ~rate:10 ()) in
  (match Adm.admit adm ~now:0 ~kind:Adm.Query p (Adm.cost ~rows:2 ()) with
  | Adm.Admitted _ -> ()
  | _ -> Alcotest.fail "setup admit failed");
  (* declared 2, actually consumed 10: 8 tokens of overrun debt *)
  Adm.settle adm ~now:0 p ~declared:(Adm.cost ~rows:2 ())
    { Relational.Errors.rows_out = 10; tuples = 0; ticks = 0 };
  check_bool "in debt: next admit shed" true (is_rejected (admit_one adm p ~now:0));
  check_bool "refill pays the debt down" true (is_admitted (admit_one adm p ~now:1000))

(* --- deficit round-robin fairness --- *)

(* A 10:1 hot tenant under a serve limit: the victim's whole burst is
   admitted; the hot tenant absorbs every overload shed. *)
let test_drain_fairness_10_to_1 () =
  let adm =
    Adm.create ~now:0
      [ ("victim", rows_class ~cap:100 ~rate:50 ());
        ("hot", rows_class ~cap:1000 ~rate:500 ());
      ]
  in
  Adm.assign adm ~tenant:"v" "victim";
  Adm.assign adm ~tenant:"h" "hot";
  let req tenant i =
    (Adm.principal ~tenant ~request:(string_of_int i) (), Adm.cost ~rows:1 (), Adm.Mutation)
  in
  let victim = List.init 8 (req "v") in
  let hot = List.init 80 (req "h") in
  let results = Adm.drain adm ~now:0 ~serve_limit:30 (victim @ hot) in
  check_int "every request decided exactly once" 88 (List.length results);
  let admitted tenant =
    List.length
      (List.filter
         (fun ((p : Adm.principal), d) -> p.Adm.tenant = tenant && is_admitted d)
         results)
  in
  check_int "victim burst fully served" 8 (admitted "v");
  check_int "hot tenant gets the remaining capacity" 22 (admitted "h");
  List.iter
    (fun ((p : Adm.principal), d) ->
      match d with
      | Adm.Brownout _ -> Alcotest.fail "drain browned out a mutation"
      | Adm.Rejected r ->
        check_bool "only the hot tenant is shed" true (p.Adm.tenant = "h");
        check_bool "overload sheds hint an immediate retry" true
          (r.Adm.retry_after_ms = Some 1)
      | Adm.Admitted _ -> ())
    results

(* --- all-or-nothing gated ingestion --- *)

let entry i =
  Hdb.Audit_schema.entry ~time:i ~op:Hdb.Audit_schema.Allow ~user:"u" ~data:"mri"
    ~purpose:"diagnosis" ~authorized:"radiologist" ~status:Hdb.Audit_schema.Regular

(* A shed batch leaves the site byte-identical — store, sequence floor
   and quarantine all untouched — and the same batch ingests whole once
   the bucket refills. *)
let test_shed_batch_leaves_site_untouched () =
  let adm = Adm.create ~now:0 [ ("tight", rows_class ~cap:5 ~rate:5 ()) ] in
  Adm.assign adm ~tenant:"clinic" "tight";
  let site = Site.create ~name:"gated" () in
  Site.set_admission site (Some adm);
  let principal = Adm.principal ~tenant:"clinic" () in
  (match Site.ingest_entries_admitted site ~now:0 ~principal [ entry 1; entry 2 ] with
  | Ok n -> check_int "affordable batch ingests whole" 2 n
  | Error _ -> Alcotest.fail "setup batch shed");
  let before = (Site.length site, Site.next_seq site, Site.quarantined_count site) in
  let oversized = List.init 4 (fun i -> entry (10 + i)) in
  (match Site.ingest_entries_admitted site ~now:0 ~principal oversized with
  | Error r ->
    check_bool "retryable" true (r.Adm.retry_after_ms <> None);
    check_bool "site untouched by the shed" true
      (before = (Site.length site, Site.next_seq site, Site.quarantined_count site))
  | Ok _ -> Alcotest.fail "oversized batch admitted");
  match Site.ingest_entries_admitted site ~now:2000 ~principal oversized with
  | Ok n ->
    check_int "same batch whole after refill" 4 n;
    check_int "nothing double-ingested" 6 (Site.length site)
  | Error _ -> Alcotest.fail "refilled batch still shed"

(* --- health accounting --- *)

(* satellite pin: a site with zero expected entries is vacuously complete
   (1.0) — the completeness division must never produce NaN. *)
let test_site_completeness_zero_entries () =
  let empty =
    Health.make ~site:"idle" ~status:(Health.Delivered { retries = 0 }) ~entries:0
      ~quarantined:0 ~skipped_entries:0 ~breaker:Audit_mgmt.Breaker.Closed ~trips:0 ()
  in
  let c = Health.site_completeness empty in
  check_bool "not NaN" false (Float.is_nan c);
  check_bool "vacuously complete" true (c = 1.0);
  check_bool "empty site is ok" true (Health.site_ok empty)

(* --- limits composition --- *)

let test_limits_min_tightest_wins () =
  let a = Budget.limits ~rows:10 ~ticks:100 () in
  let b = Budget.limits ~rows:50 ~tuples:7 () in
  let m = Budget.limits_min a b in
  check_bool "rows: both set, min" true (m.Budget.max_rows = Some 10);
  check_bool "tuples: one set" true (m.Budget.max_tuples = Some 7);
  check_bool "ticks: one set" true (m.Budget.deadline = Some 100);
  check_bool "wall: neither set" true (m.Budget.max_wall_ms = None);
  check_bool "unlimited is the identity" true
    (Budget.limits_min Budget.unlimited a = a)

(* --- the admitted paths through the assembled system --- *)

let make_system () =
  let vocab = Vocabulary.Samples.figure1 () in
  let p_ps = Workload.Scenario.policy_store () in
  let system = Prima_system.System.create ~training_minimum:1 ~vocab ~p_ps () in
  let control = Prima_system.System.control system in
  List.iter
    (fun sql -> ignore (Hdb.Control_center.admin_exec control sql))
    [ "CREATE TABLE records (patient TEXT, referral TEXT)";
      "INSERT INTO records VALUES ('p1', 'r1'), ('p2', 'r2')";
    ];
  Hdb.Control_center.set_patient_column control ~table:"records" ~column:"patient";
  Hdb.Control_center.map_column control ~table:"records" ~column:"referral"
    ~category:"referral";
  Hdb.Audit_store.append_all
    (Hdb.Control_center.audit_store control)
    (Workload.Scenario.table1_entries ());
  system

(* refine through a class that half-affords the declared cost: the epoch
   runs as a brownout and must label its coverage Lower_bound. *)
let test_refine_admitted_brownout_lower_bound () =
  let system = make_system () in
  Prima_system.System.set_budget_classes system
    [ ("throttled", rows_class ~cap:200 ~rate:200 ()) ];
  Prima_system.System.assign_tenant system ~tenant:"analyst" ~class_name:"throttled";
  let principal = Adm.principal ~tenant:"analyst" () in
  (match Prima_system.System.refine_admitted system ~principal with
  | Ok report ->
    check_bool "brownout epoch is a lower bound" true
      (match report.Prima_core.Refinement.qualifier with
      | Prima_core.Coverage.Lower_bound _ -> true
      | Prima_core.Coverage.Exact -> false);
    check_bool "marked degraded" true report.Prima_core.Refinement.degraded
  | Error e -> Alcotest.fail ("brownout refine failed: " ^ e));
  let gov = Prima_system.System.governance system in
  check_int "brownout epoch counted" 1 gov.Prima_system.System.brownout_epochs;
  check_bool "class counters surfaced" true
    (List.exists
       (fun (s : Adm.class_stats) -> s.Adm.cls = "throttled" && s.Adm.brownouts = 1)
       gov.Prima_system.System.classes)

(* An exhausted class sheds the whole request — typed, retryable, and
   counted — and a generous class on the same system still runs exact. *)
let test_enforce_admitted_shed_and_exact () =
  let system = make_system () in
  Prima_system.System.set_budget_classes system
    [ ("zero", rows_class ~cap:0 ~rate:0 ());
      ("gold", rows_class ~cap:4096 ~rate:4096 ());
    ]
  ;
  Prima_system.System.assign_tenant system ~tenant:"blocked" ~class_name:"zero";
  Prima_system.System.assign_tenant system ~tenant:"vip" ~class_name:"gold";
  let sql = "SELECT referral FROM records" in
  (match
     Prima_system.System.enforce_admitted system
       ~principal:(Adm.principal ~tenant:"blocked" ())
       ~user:"nancy" ~role:"nurse" ~purpose:"treatment" sql
   with
  | Error (Prima_system.System.Shed r) ->
    check_bool "zero capacity: no retry promise" true (r.Adm.retry_after_ms = None)
  | _ -> Alcotest.fail "zero class must shed");
  (match
     Prima_system.System.enforce_admitted system
       ~principal:(Adm.principal ~tenant:"vip" ())
       ~user:"nancy" ~role:"nurse" ~purpose:"treatment" sql
   with
  | Ok o -> check_bool "generous class runs strict" false o.Prima_system.System.browned_out
  | Error _ -> Alcotest.fail "gold class must admit");
  let gov = Prima_system.System.governance system in
  check_int "shed counted" 1 gov.Prima_system.System.shed_requests

let () =
  Alcotest.run "admission"
    [ ( "refill-boundary",
        [ Alcotest.test_case "exactly-now tick grants" `Quick test_refill_exactly_now;
          Alcotest.test_case "carry boundary" `Quick test_refill_carry_boundary;
          Alcotest.test_case "retry hint is closed" `Quick test_retry_hint_closed_boundary;
          Alcotest.test_case "zero capacity" `Quick test_zero_capacity_never_admits;
          Alcotest.test_case "zero rate" `Quick test_zero_rate_no_hint;
          Alcotest.test_case "set_class clamps" `Quick test_set_class_clamps_tokens;
        ] );
      ( "shed-brownout",
        [ Alcotest.test_case "query browns out, mutation sheds" `Quick
            test_query_brownout_mutation_shed;
          Alcotest.test_case "pressure raises the bar" `Quick test_pressure_raises_bar;
          Alcotest.test_case "settle overrun debt" `Quick test_settle_overrun_debt;
        ] );
      ( "fairness",
        [ Alcotest.test_case "10:1 drain" `Quick test_drain_fairness_10_to_1 ] );
      ( "gated-ingestion",
        [ Alcotest.test_case "shed leaves site untouched" `Quick
            test_shed_batch_leaves_site_untouched;
        ] );
      ( "health",
        [ Alcotest.test_case "zero-entry completeness" `Quick
            test_site_completeness_zero_entries;
        ] );
      ( "limits",
        [ Alcotest.test_case "limits_min tightest wins" `Quick test_limits_min_tightest_wins ] );
      ( "system",
        [ Alcotest.test_case "refine brownout lower bound" `Quick
            test_refine_admitted_brownout_lower_bound;
          Alcotest.test_case "enforce shed and exact" `Quick
            test_enforce_admitted_shed_and_exact;
        ] );
    ]
