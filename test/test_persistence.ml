(* Tests for the on-disk interchange formats: policy files and audit CSV. *)

module PF = Prima_core.Policy_file
module P = Prima_core.Policy
module R = Prima_core.Rule

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- policy files --- *)

let test_policy_triple_shorthand () =
  let p = PF.of_string "# comment\nroutine:treatment:nurse\n\npsychiatry:treatment:psychiatrist\n" in
  check_int "two rules" 2 (P.cardinality p);
  Alcotest.(check (option string)) "data" (Some "routine")
    (R.find_attr (List.hd (P.rules p)) "data")

let test_policy_general_notation () =
  let p = PF.of_string "data=routine, purpose=treatment\nuser=mark, time=3\n" in
  check_int "two rules" 2 (P.cardinality p);
  Alcotest.(check (option string)) "user kept" (Some "mark")
    (R.find_attr (List.nth (P.rules p) 1) "user")

let test_policy_mixed_and_inline_comment () =
  let p = PF.of_string "routine:treatment:nurse  # the ward rule\ndata=gender\n" in
  check_int "two rules" 2 (P.cardinality p)

let test_policy_bad_lines () =
  let expect_bad s =
    match PF.of_string s with
    | exception PF.Bad_line _ -> ()
    | _ -> Alcotest.failf "expected Bad_line: %s" s
  in
  expect_bad "just-one-field\n";
  expect_bad "a:b\n";
  expect_bad "a=b=c\n"

let test_policy_roundtrip () =
  let p =
    P.make ~source:P.Policy_store
      [ R.of_assoc [ ("data", "routine"); ("purpose", "treatment"); ("authorized", "nurse") ];
        R.of_assoc [ ("data", "gender") ];
        R.of_assoc [ ("time", "3"); ("user", "mark"); ("data", "referral") ];
      ]
  in
  let p' = PF.of_string (PF.to_string p) in
  check_int "same cardinality" (P.cardinality p) (P.cardinality p');
  List.iter2
    (fun a b -> check_bool "same rule" true (R.equal_syntactic a b))
    (P.rules p) (P.rules p')

let test_policy_file_io () =
  let path = Filename.temp_file "prima_policy" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let p = Workload.Scenario.policy_store () in
      PF.save path p;
      let p' = PF.load path in
      check_int "loaded" (P.cardinality p) (P.cardinality p'))

(* --- audit CSV --- *)

let entry ?(time = 1) ?(user = "u") ?(data = "referral") () =
  Hdb.Audit_schema.entry ~time ~op:Hdb.Audit_schema.Allow ~user ~data ~purpose:"treatment"
    ~authorized:"nurse" ~status:Hdb.Audit_schema.Regular

let test_audit_csv_roundtrip () =
  let entries = Workload.Scenario.table1_entries () in
  let entries' = Hdb.Audit_csv.of_string (Hdb.Audit_csv.to_string entries) in
  check_bool "identical" true (entries = entries')

let test_audit_csv_quoting () =
  let nasty = entry ~user:"o'brien, \"rn\"" ~data:"multi\nline" () in
  let back = Hdb.Audit_csv.of_string (Hdb.Audit_csv.to_string [ nasty ]) in
  check_bool "nasty fields survive" true (back = [ nasty ])

let test_audit_csv_errors () =
  (match Hdb.Audit_csv.of_string "wrong,header\n1,2\n" with
  | exception Hdb.Audit_csv.Bad_csv _ -> ()
  | _ -> Alcotest.fail "expected header error");
  (match Hdb.Audit_csv.of_string (Hdb.Audit_csv.header ^ "\n1,1,u\n") with
  | exception Hdb.Audit_csv.Bad_csv _ -> ()
  | _ -> Alcotest.fail "expected arity error");
  match Hdb.Audit_csv.of_string (Hdb.Audit_csv.header ^ "\nxx,1,u,d,p,a,1\n") with
  | exception Hdb.Audit_csv.Bad_csv _ -> ()
  | _ -> Alcotest.fail "expected numeric error"

let test_audit_csv_store_io () =
  let path = Filename.temp_file "prima_audit" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let store = Hdb.Audit_store.of_entries (Workload.Scenario.table1_entries ()) in
      Hdb.Audit_csv.save_store path store;
      let store' = Hdb.Audit_csv.load_store path in
      check_bool "store roundtrip" true
        (Hdb.Audit_store.to_list store = Hdb.Audit_store.to_list store'))

let test_audit_csv_empty () =
  check_bool "empty text" true (Hdb.Audit_csv.of_string "" = [])

(* Regression: a row with the wrong column count must be rejected with the
   offending 1-based line number in the message, not silently mis-parsed. *)
let test_audit_csv_line_numbers () =
  let expect_line line text =
    match Hdb.Audit_csv.of_string text with
    | exception Hdb.Audit_csv.Bad_csv msg ->
      let prefix = Printf.sprintf "line %d:" line in
      check_bool
        (Printf.sprintf "error %S names line %d" msg line)
        true
        (String.length msg >= String.length prefix
        && String.sub msg 0 (String.length prefix) = prefix)
    | entries -> Alcotest.failf "expected Bad_csv, parsed %d entries" (List.length entries)
  in
  let h = Hdb.Audit_csv.header in
  (* wrong column count, too few and too many *)
  expect_line 3 (h ^ "\n1,1,u,d,p,a,1\n1,1,u\n");
  expect_line 2 (h ^ "\n1,1,u,d,p,a,1,extra\n");
  (* unreadable numeric field *)
  expect_line 4 (h ^ "\n1,1,u,d,p,a,1\n2,1,u,d,p,a,1\nxx,1,u,d,p,a,1\n");
  (* out-of-range op/status wrapped into Bad_csv, not Invalid_argument *)
  expect_line 2 (h ^ "\n1,7,u,d,p,a,1\n");
  expect_line 2 (h ^ "\n1,1,u,d,p,a,9\n");
  (* a quoted multi-line field shifts physical lines; the error must point
     at the row's starting line *)
  expect_line 2 (h ^ "\n1,1,\"multi\nline\nuser\",d,p,a\n")

let test_audit_csv_valid_rows_after_blank () =
  (* Blank lines are still skipped, and line numbering stays physical. *)
  let h = Hdb.Audit_csv.header in
  let entries = Hdb.Audit_csv.of_string (h ^ "\n\n1,1,u,d,p,a,1\n") in
  check_int "one entry" 1 (List.length entries);
  match Hdb.Audit_csv.of_string (h ^ "\n\n1,1,u\n") with
  | exception Hdb.Audit_csv.Bad_csv msg ->
    check_bool (Printf.sprintf "blank line counted: %S" msg) true
      (String.length msg >= 7 && String.sub msg 0 7 = "line 3:")
  | _ -> Alcotest.fail "expected Bad_csv"

(* --- provenance columns --- *)

let prov ?(session = "s-1") ?(request = "rq-1") ?parent ?(changed = []) e =
  Hdb.Audit_schema.with_provenance ~session ~request ?parent ~changed e

(* A mixed trail — rows with and without the extension — must round-trip
   through the extended header, each row keeping (or not keeping) its
   provenance. *)
let test_audit_csv_provenance_roundtrip () =
  let entries =
    [ entry ();
      prov ~parent:7 ~changed:[ "purpose"; "status" ] (entry ~time:2 ());
      prov ~session:"s;odd" ~request:"rq,quoted" (entry ~time:3 ~user:"o'brien" ());
      entry ~time:4 ();
    ]
  in
  let text = Hdb.Audit_csv.to_string entries in
  check_bool "mixed trail uses the extended header" true
    (String.length text >= String.length Hdb.Audit_csv.header_extended
    && String.sub text 0 (String.length Hdb.Audit_csv.header_extended)
       = Hdb.Audit_csv.header_extended);
  check_bool "mixed rows round-trip" true (Hdb.Audit_csv.of_string text = entries);
  (* provenance-free trails keep the plain 7-column header *)
  let plain = Hdb.Audit_csv.to_string [ entry () ] in
  check_bool "plain trail keeps the base header" true
    (String.sub plain 0 (String.length Hdb.Audit_csv.header) = Hdb.Audit_csv.header
    && not
         (String.length plain >= String.length Hdb.Audit_csv.header_extended
         && String.sub plain 0 (String.length Hdb.Audit_csv.header_extended)
            = Hdb.Audit_csv.header_extended))

(* Malformed provenance fields are rejected with the offending 1-based
   line number, like every other CSV error. *)
let test_audit_csv_provenance_errors () =
  let expect_line line text =
    match Hdb.Audit_csv.of_string text with
    | exception Hdb.Audit_csv.Bad_csv msg ->
      let prefix = Printf.sprintf "line %d:" line in
      check_bool
        (Printf.sprintf "error %S names line %d" msg line)
        true
        (String.length msg >= String.length prefix
        && String.sub msg 0 (String.length prefix) = prefix)
    | entries -> Alcotest.failf "expected Bad_csv, parsed %d entries" (List.length entries)
  in
  let h = Hdb.Audit_csv.header_extended in
  let good = Durable.Chain.to_hex (Durable.Chain.hash_string "x") in
  (* malformed integrity hash: wrong length, uppercase, non-hex *)
  expect_line 2 (h ^ "\n1,1,u,d,p,a,1,s,rq,,f,abc\n");
  expect_line 3 (h ^ Printf.sprintf "\n1,1,u,d,p,a,1,s,rq,,f,%s\n2,1,u,d,p,a,1,s,rq,,f,%s\n"
                   good (String.uppercase_ascii good));
  expect_line 2 (h ^ "\n1,1,u,d,p,a,1,s,rq,,f,zzzzzzzzzzzzzzzz\n");
  (* unreadable parent LSN *)
  expect_line 2 (h ^ Printf.sprintf "\n1,1,u,d,p,a,1,s,rq,seven,f,%s\n" good);
  (* a 12-column row under the plain header is an arity error *)
  expect_line 2
    (Hdb.Audit_csv.header ^ Printf.sprintf "\n1,1,u,d,p,a,1,s,rq,7,f,%s\n" good);
  (* partial extension (neither 7 nor 12 columns) *)
  expect_line 2 (h ^ "\n1,1,u,d,p,a,1,s,rq\n")

(* The carried hash is verbatim: a well-formed but wrong hash parses, and
   shows up downstream as an integrity violation rather than a CSV error. *)
let test_audit_csv_provenance_verbatim_hash () =
  let e = prov (entry ~time:9 ()) in
  let wrong =
    match e.Hdb.Audit_schema.provenance with
    | Some p ->
      { e with
        Hdb.Audit_schema.provenance =
          Some { p with Hdb.Audit_schema.integrity = p.Hdb.Audit_schema.integrity lxor 1 };
      }
    | None -> Alcotest.fail "missing provenance"
  in
  match Hdb.Audit_csv.of_string (Hdb.Audit_csv.to_string [ wrong ]) with
  | [ back ] ->
    check_bool "hash carried verbatim" true (back = wrong);
    check_bool "and fails verification downstream" false
      (Hdb.Audit_schema.verify_integrity back)
  | l -> Alcotest.failf "expected one entry, got %d" (List.length l)

let () =
  Alcotest.run "persistence"
    [ ( "policy-file",
        [ Alcotest.test_case "triple shorthand" `Quick test_policy_triple_shorthand;
          Alcotest.test_case "general notation" `Quick test_policy_general_notation;
          Alcotest.test_case "mixed + inline comment" `Quick
            test_policy_mixed_and_inline_comment;
          Alcotest.test_case "bad lines" `Quick test_policy_bad_lines;
          Alcotest.test_case "roundtrip" `Quick test_policy_roundtrip;
          Alcotest.test_case "file io" `Quick test_policy_file_io;
        ] );
      ( "audit-csv",
        [ Alcotest.test_case "roundtrip" `Quick test_audit_csv_roundtrip;
          Alcotest.test_case "quoting" `Quick test_audit_csv_quoting;
          Alcotest.test_case "errors" `Quick test_audit_csv_errors;
          Alcotest.test_case "store io" `Quick test_audit_csv_store_io;
          Alcotest.test_case "empty" `Quick test_audit_csv_empty;
          Alcotest.test_case "line-numbered errors" `Quick test_audit_csv_line_numbers;
          Alcotest.test_case "blank lines keep numbering" `Quick
            test_audit_csv_valid_rows_after_blank;
        ] );
      ( "audit-csv-provenance",
        [ Alcotest.test_case "mixed rows roundtrip" `Quick
            test_audit_csv_provenance_roundtrip;
          Alcotest.test_case "line-numbered errors" `Quick
            test_audit_csv_provenance_errors;
          Alcotest.test_case "hash carried verbatim" `Quick
            test_audit_csv_provenance_verbatim_hash;
        ] );
    ]
