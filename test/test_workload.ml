(* Tests for the synthetic workload: the deterministic PRNG, the hospital
   model, the generator's statistical shape and its ground-truth labels. *)

open Workload

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- prng --- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:7 in
  let xs = List.init 50 (fun _ -> Prng.int a 1000) in
  let ys = List.init 50 (fun _ -> Prng.int b 1000) in
  Alcotest.(check (list int)) "same stream" xs ys

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:7 and b = Prng.create ~seed:8 in
  let xs = List.init 20 (fun _ -> Prng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Prng.int b 1000000) in
  check_bool "different streams" true (xs <> ys)

let test_prng_bounds () =
  let rng = Prng.create ~seed:1 in
  for _ = 1 to 1000 do
    let x = Prng.int rng 10 in
    check_bool "in range" true (x >= 0 && x < 10);
    let f = Prng.float rng in
    check_bool "unit interval" true (f >= 0. && f < 1.)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_prng_uniformity_rough () =
  let rng = Prng.create ~seed:3 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 10000 do
    let i = Prng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter (fun n -> check_bool "within 30% of fair" true (n > 700 && n < 1300)) buckets

let test_prng_pick_weighted () =
  let rng = Prng.create ~seed:5 in
  let heavy = ref 0 in
  for _ = 1 to 1000 do
    if Prng.pick_weighted rng [ ("heavy", 9); ("light", 1) ] = "heavy" then incr heavy
  done;
  check_bool "ratio respected" true (!heavy > 800)

let test_prng_shuffle_permutes () =
  let rng = Prng.create ~seed:11 in
  let xs = List.init 20 Fun.id in
  let ys = Prng.shuffle rng xs in
  check_bool "same multiset" true (List.sort compare ys = xs);
  check_bool "actually moved" true (ys <> xs)

(* --- hospital model --- *)

let test_staff_roster () =
  let config = Hospital.default_config () in
  let staff = Hospital.staff config in
  let expected = List.fold_left (fun acc (_, n) -> acc + n) 0 config.Hospital.staff_per_role in
  check_int "head count" expected (List.length staff);
  check_int "nurses" 14 (List.length (Hospital.users_of_role config "nurse"))

let test_policy_store_from_documented () =
  let config = Hospital.default_config () in
  let p_ps = Hospital.policy_store config in
  check_int "one rule per documented triple"
    (List.length config.Hospital.documented)
    (Prima_core.Policy.cardinality p_ps)

let test_is_informal_pattern () =
  let config = Hospital.default_config () in
  let informal =
    Prima_core.Rule.of_assoc
      [ ("data", "referral"); ("purpose", "registration"); ("authorized", "nurse") ]
  in
  let covered =
    Prima_core.Rule.of_assoc
      [ ("data", "vitals"); ("purpose", "treatment"); ("authorized", "nurse") ]
  in
  check_bool "informal recognised" true (Hospital.is_informal_pattern config informal);
  check_bool "covered not informal" false (Hospital.is_informal_pattern config covered)

(* --- generator --- *)

let test_generator_deterministic () =
  let config = { (Hospital.default_config ()) with Hospital.total_accesses = 200 } in
  let a = Generator.generate config and b = Generator.generate config in
  check_bool "same trail" true (a = b)

let test_generator_count_and_times () =
  let config = { (Hospital.default_config ()) with Hospital.total_accesses = 300 } in
  let trail = Generator.generate config in
  check_int "entry count" 300 (List.length trail);
  List.iteri
    (fun i l -> check_int "monotone time" (i + 1) l.Generator.entry.Hdb.Audit_schema.time)
    trail

let test_generator_label_mix () =
  let config = Hospital.default_config () in
  let trail = Generator.generate config in
  let count p = List.length (List.filter p trail) in
  let informal = count (fun l -> match l.Generator.label with Generator.Informal _ -> true | _ -> false) in
  let violations = count (fun l -> l.Generator.label = Generator.Violation) in
  let covered = count (fun l -> l.Generator.label = Generator.Covered) in
  let total = float_of_int config.Hospital.total_accesses in
  check_bool "informal near rate" true
    (Float.abs ((float_of_int informal /. total) -. config.Hospital.informal_rate) < 0.05);
  check_bool "violations near rate" true
    (Float.abs ((float_of_int violations /. total) -. config.Hospital.violation_rate) < 0.02);
  check_bool "covered majority" true (covered > informal + violations)

let test_generator_labels_consistent_with_status () =
  let config = Hospital.default_config () in
  List.iter
    (fun l ->
      match l.Generator.label with
      | Generator.Informal _ | Generator.Violation ->
        check_bool "non-covered is BTG" true
          (l.Generator.entry.Hdb.Audit_schema.status = Hdb.Audit_schema.Exception_based)
      | Generator.Covered -> ())
    (Generator.generate config)

let test_generator_violations_by_rogues () =
  let config = Hospital.default_config () in
  List.iter
    (fun l ->
      if l.Generator.label = Generator.Violation then
        check_bool "rogue user" true
          (String.length l.Generator.entry.Hdb.Audit_schema.user >= 5
          && String.sub l.Generator.entry.Hdb.Audit_schema.user 0 5 = "rogue"))
    (Generator.generate config)

let test_generator_epochs_partition () =
  let config =
    { (Hospital.default_config ()) with Hospital.total_accesses = 1050; epoch_size = 200 }
  in
  let trail = Generator.generate config in
  let batches = Generator.epochs config trail in
  check_int "six batches" 6 (List.length batches);
  check_int "flattening preserves" 1050 (List.length (List.concat batches));
  check_int "last partial" 50 (List.length (List.nth batches 5))

let test_generator_oracle () =
  let config = Hospital.default_config () in
  let oracle = Generator.oracle config in
  check_bool "accepts informal" true
    (oracle
       (Prima_core.Rule.of_assoc
          [ ("data", "referral"); ("purpose", "registration"); ("authorized", "nurse") ]));
  check_bool "rejects rogue pattern" false
    (oracle
       (Prima_core.Rule.of_assoc
          [ ("data", "genetic"); ("purpose", "telemarketing"); ("authorized", "clerk") ]))

let test_practices_covered_metric () =
  let config = Hospital.default_config () in
  let p_ps = Hospital.policy_store config in
  check_int "none covered initially" 0
    (List.length (Generator.practices_covered config p_ps));
  let richer =
    Prima_core.Policy.add_rule p_ps
      (Prima_core.Rule.of_assoc
         [ ("data", "referral"); ("purpose", "registration"); ("authorized", "nurse") ])
  in
  check_int "one covered" 1 (List.length (Generator.practices_covered config richer))

(* --- scenario fixtures --- *)

let test_scenario_shapes () =
  check_int "figure3 entries" 6 (List.length (Workload.Scenario.figure3_entries ()));
  check_int "table1 entries" 10 (List.length (Workload.Scenario.table1_entries ()));
  check_int "policy store rules" 3
    (Prima_core.Policy.cardinality (Workload.Scenario.policy_store ()))

let test_scenario_vocabulary_closed () =
  (* Every data/purpose/role value in the fixtures is in the vocabulary. *)
  let vocab = Workload.Scenario.vocab () in
  List.iter
    (fun e ->
      check_bool "data known" true
        (Vocabulary.Vocab.mem_value vocab ~attr:"data" ~value:e.Hdb.Audit_schema.data);
      check_bool "purpose known" true
        (Vocabulary.Vocab.mem_value vocab ~attr:"purpose" ~value:e.Hdb.Audit_schema.purpose);
      check_bool "role known" true
        (Vocabulary.Vocab.mem_value vocab ~attr:"authorized"
           ~value:e.Hdb.Audit_schema.authorized))
    (Workload.Scenario.table1_entries () @ Workload.Scenario.figure3_entries ())

let test_generator_vocabulary_closed () =
  let config = { (Hospital.default_config ()) with Hospital.total_accesses = 500 } in
  let vocab = config.Hospital.vocab in
  List.iter
    (fun l ->
      let e = l.Generator.entry in
      check_bool "data leaf" true
        (Vocabulary.Vocab.is_ground vocab ~attr:"data" ~value:e.Hdb.Audit_schema.data
        && Vocabulary.Vocab.mem_value vocab ~attr:"data" ~value:e.Hdb.Audit_schema.data);
      check_bool "purpose leaf" true
        (Vocabulary.Vocab.mem_value vocab ~attr:"purpose" ~value:e.Hdb.Audit_schema.purpose))
    (Generator.generate config)

(* ---- purpose workflows: plans, twists, and prefix conformance ---- *)

(* Untwisted instances conform to their template; every twist of every
   template, across seeds (which randomise the twist's position draw and
   the user assignment), produces a sequence that conforms to NO template.
   The twists are exactly the violations that are invisible entry by entry
   — each access alone is plausible; only the sequence betrays it. *)

let test_purpose_untwisted_conforms () =
  let config = Hospital.default_config ~seed:5 () in
  List.iter
    (fun template ->
      for seed = 1 to 20 do
        let rng = Prng.create ~seed in
        let inst = Purpose.instantiate rng config ~start_time:100 template in
        check_bool
          (Printf.sprintf "%s (seed %d) conforms" template.Purpose.name seed)
          true
          (Purpose.conforms (Purpose.steps_of_entries inst.Purpose.entries));
        check_int
          (Printf.sprintf "%s: one entry per step" template.Purpose.name)
          (List.length template.Purpose.steps)
          (List.length inst.Purpose.entries)
      done)
    Purpose.templates

let test_purpose_twisted_never_conforms () =
  let config = Hospital.default_config ~seed:5 () in
  List.iter
    (fun template ->
      List.iter
        (fun twist ->
          for seed = 1 to 20 do
            let rng = Prng.create ~seed in
            let inst = Purpose.instantiate rng config ~twist ~start_time:100 template in
            check_bool
              (Printf.sprintf "%s twisted by %s (seed %d) does not conform"
                 template.Purpose.name (Purpose.twist_to_string twist) seed)
              false
              (Purpose.conforms (Purpose.steps_of_entries inst.Purpose.entries))
          done)
        Purpose.all_twists)
    Purpose.templates

let test_purpose_entries_in_vocabulary () =
  let config = Hospital.default_config ~seed:5 () in
  let vocab = config.Hospital.vocab in
  List.iter
    (fun template ->
      let rng = Prng.create ~seed:9 in
      let inst = Purpose.instantiate rng config ~start_time:1 template in
      List.iter
        (fun (e : Hdb.Audit_schema.entry) ->
          check_bool "workflow data is a vocabulary leaf" true
            (Vocabulary.Vocab.mem_value vocab ~attr:"data" ~value:e.Hdb.Audit_schema.data
            && Vocabulary.Vocab.is_ground vocab ~attr:"data"
                 ~value:e.Hdb.Audit_schema.data);
          check_bool "workflow purpose is in the vocabulary" true
            (Vocabulary.Vocab.mem_value vocab ~attr:"purpose"
               ~value:e.Hdb.Audit_schema.purpose);
          check_bool "workflow user is staffed" true
            (Hospital.users_of_role config e.Hdb.Audit_schema.authorized <> []
            || e.Hdb.Audit_schema.authorized = "clerk"))
        inst.Purpose.entries)
    Purpose.templates

let test_purpose_twist_round_trip () =
  List.iter
    (fun twist ->
      check_bool
        (Printf.sprintf "twist %S round-trips" (Purpose.twist_to_string twist))
        true
        (Purpose.twist_of_string (Purpose.twist_to_string twist) = Some twist))
    Purpose.all_twists;
  check_bool "unknown twist rejected" true (Purpose.twist_of_string "inverted" = None)

let test_purpose_prefix_is_plausible () =
  (* a prefix of a legitimate plan is still plausible — conformance must
     not demand completed plans, or every in-flight workflow would read as
     a violation *)
  let config = Hospital.default_config ~seed:5 () in
  let rng = Prng.create ~seed:3 in
  let template = List.hd Purpose.templates in
  let inst = Purpose.instantiate rng config ~start_time:1 template in
  let steps = Purpose.steps_of_entries inst.Purpose.entries in
  for k = 1 to List.length steps do
    check_bool
      (Printf.sprintf "%d-step prefix conforms" k)
      true
      (Purpose.conforms (List.filteri (fun i _ -> i < k) steps))
  done

let () =
  Alcotest.run "workload"
    [ ( "prng",
        [ Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "rough uniformity" `Quick test_prng_uniformity_rough;
          Alcotest.test_case "weighted pick" `Quick test_prng_pick_weighted;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutes;
        ] );
      ( "hospital",
        [ Alcotest.test_case "staff roster" `Quick test_staff_roster;
          Alcotest.test_case "policy store" `Quick test_policy_store_from_documented;
          Alcotest.test_case "informal oracle" `Quick test_is_informal_pattern;
        ] );
      ( "generator",
        [ Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "count & times" `Quick test_generator_count_and_times;
          Alcotest.test_case "label mix" `Quick test_generator_label_mix;
          Alcotest.test_case "labels vs status" `Quick
            test_generator_labels_consistent_with_status;
          Alcotest.test_case "violations by rogues" `Quick test_generator_violations_by_rogues;
          Alcotest.test_case "epoch partition" `Quick test_generator_epochs_partition;
          Alcotest.test_case "oracle" `Quick test_generator_oracle;
          Alcotest.test_case "practices-covered metric" `Quick test_practices_covered_metric;
        ] );
      ( "scenario",
        [ Alcotest.test_case "fixture shapes" `Quick test_scenario_shapes;
          Alcotest.test_case "fixtures in vocabulary" `Quick test_scenario_vocabulary_closed;
          Alcotest.test_case "generated values in vocabulary" `Quick
            test_generator_vocabulary_closed;
        ] );
      ( "purpose workflows",
        [ Alcotest.test_case "untwisted plans conform" `Quick
            test_purpose_untwisted_conforms;
          Alcotest.test_case "twisted plans never conform" `Quick
            test_purpose_twisted_never_conforms;
          Alcotest.test_case "entries stay in the vocabulary" `Quick
            test_purpose_entries_in_vocabulary;
          Alcotest.test_case "twist names round-trip" `Quick test_purpose_twist_round_trip;
          Alcotest.test_case "plan prefixes are plausible" `Quick
            test_purpose_prefix_is_plausible;
        ] );
    ]
