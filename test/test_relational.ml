(* Tests for the relational substrate below the SQL layer: values, schemas,
   rows, tables, indexes, the growable vector and CSV I/O. *)

open Relational

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- Value --- *)

let test_value_compare_numeric () =
  check_bool "int/float mix" true (Value.compare (Value.Int 2) (Value.Float 2.5) < 0);
  check_bool "equal across types" true (Value.equal (Value.Int 2) (Value.Float 2.0));
  check_bool "null first" true (Value.compare Value.Null (Value.Int min_int) < 0)

let test_value_compare_strings () =
  check_bool "lexicographic" true (Value.compare (Value.Str "abc") (Value.Str "abd") < 0);
  check_bool "bool order" true (Value.compare (Value.Bool false) (Value.Bool true) < 0)

let test_value_to_sql_literal () =
  check_string "string quoting" "'it''s'" (Value.to_sql_literal (Value.Str "it's"));
  check_string "null" "NULL" (Value.to_sql_literal Value.Null);
  check_string "int" "42" (Value.to_sql_literal (Value.Int 42));
  check_string "bool" "TRUE" (Value.to_sql_literal (Value.Bool true))

let test_value_coerce () =
  check_bool "int into float widens" true
    (Value.coerce Value.T_float (Value.Int 3) = Some (Value.Float 3.));
  check_bool "integral float narrows" true
    (Value.coerce Value.T_int (Value.Float 3.0) = Some (Value.Int 3));
  check_bool "fractional float rejected" true
    (Value.coerce Value.T_int (Value.Float 3.5) = None);
  check_bool "null always fits" true (Value.coerce Value.T_int Value.Null = Some Value.Null);
  check_bool "string into int rejected" true
    (Value.coerce Value.T_int (Value.Str "3") = None)

let test_value_ty_of_string () =
  check_bool "timestamp is int" true (Value.ty_of_string "TIMESTAMP" = Some Value.T_int);
  check_bool "varchar" true (Value.ty_of_string "varchar" = Some Value.T_string);
  check_bool "unknown" true (Value.ty_of_string "BLOB" = None)

(* --- Vec --- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  check_int "len" 100 (Vec.length v);
  check_int "first" 0 (Vec.get v 0);
  check_int "last" 99 (Vec.get v 99)

let test_vec_bounds () =
  let v = Vec.create () in
  Vec.push v 1;
  Alcotest.check_raises "oob"
    (Errors.Internal "Vec.get: index 1 out of bounds (len 1)") (fun () ->
      ignore (Vec.get v 1))

let test_vec_pop_filter_map () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check_int "pop" 4 (Vec.pop v);
  check_int "len after pop" 3 (Vec.length v);
  let evens = Vec.filter (fun x -> x mod 2 = 0) v in
  check_int "filtered" 1 (Vec.length evens);
  let doubled = Vec.map (fun x -> 2 * x) v in
  Alcotest.(check (list int)) "map" [ 2; 4; 6 ] (Vec.to_list doubled)

(* --- Schema --- *)

let sample_schema () =
  Schema.of_list
    [ Schema.column "id" Value.T_int;
      Schema.column "name" Value.T_string;
      Schema.column "age" Value.T_int;
    ]

let test_schema_find () =
  let s = sample_schema () in
  check_bool "found" true (Schema.find s "name" = Ok 1);
  check_bool "case insensitive" true (Schema.find s "NAME" = Ok 1);
  check_bool "missing" true (Result.is_error (Schema.find s "salary"))

let test_schema_qualified () =
  let s = Schema.with_qualifier (sample_schema ()) "t" in
  check_bool "qualified" true (Schema.find s ~qualifier:"t" "id" = Ok 0);
  check_bool "wrong qualifier" true (Result.is_error (Schema.find s ~qualifier:"u" "id"))

let test_schema_ambiguity () =
  let s =
    Schema.concat
      (Schema.with_qualifier (sample_schema ()) "a")
      (Schema.with_qualifier (sample_schema ()) "b")
  in
  check_bool "ambiguous unqualified" true (Result.is_error (Schema.find s "id"));
  check_bool "qualified resolves" true (Schema.find s ~qualifier:"b" "id" = Ok 3)

(* --- Row --- *)

let test_row_ops () =
  let r1 = Row.of_list [ Value.Int 1; Value.Str "a" ] in
  let r2 = Row.of_list [ Value.Int 1; Value.Str "a" ] in
  let r3 = Row.of_list [ Value.Int 1; Value.Str "b" ] in
  check_bool "equal" true (Row.equal r1 r2);
  check_bool "not equal" false (Row.equal r1 r3);
  check_bool "hash agrees" true (Row.hash r1 = Row.hash r2);
  check_bool "compare" true (Row.compare r1 r3 < 0);
  check_bool "project" true
    (Row.equal (Row.project r3 [| 1 |]) (Row.of_list [ Value.Str "b" ]))

(* --- Table --- *)

let make_table () =
  let t = Table.create ~name:"people" ~schema:(sample_schema ()) in
  Table.insert_values t [ Value.Int 1; Value.Str "ann"; Value.Int 34 ];
  Table.insert_values t [ Value.Int 2; Value.Str "bob"; Value.Int 28 ];
  Table.insert_values t [ Value.Int 3; Value.Str "cyd"; Value.Int 41 ];
  t

let test_table_insert_count () =
  let t = make_table () in
  check_int "rows" 3 (Table.row_count t)

let test_table_type_check () =
  let t = make_table () in
  Alcotest.check_raises "bad type"
    (Errors.Sql_error (Errors.Execute, "table people: column id expects INTEGER, got x"))
    (fun () -> Table.insert_values t [ Value.Str "x"; Value.Str "y"; Value.Int 1 ])

let test_table_arity_check () =
  let t = make_table () in
  Alcotest.check_raises "bad arity"
    (Errors.Sql_error (Errors.Execute, "table people: row arity 1, schema arity 3"))
    (fun () -> Table.insert_values t [ Value.Int 9 ])

let test_table_delete () =
  let t = make_table () in
  let removed = Table.delete_where t (fun row -> Row.get row 2 <> Value.Int 28) in
  check_int "removed" 1 removed;
  check_int "left" 2 (Table.row_count t)

let test_table_update () =
  let t = make_table () in
  let changed =
    Table.update_where t
      ~pred:(fun row -> Row.get row 1 = Value.Str "ann")
      ~transform:(fun row ->
        let r = Array.copy row in
        r.(2) <- Value.Int 35;
        r)
  in
  check_int "changed" 1 changed;
  check_bool "value updated" true (Row.get (Table.get t 0) 2 = Value.Int 35)

let test_table_index () =
  let t = make_table () in
  Table.create_index t ~column_name:"name";
  let idx = Option.get (Table.index_on t ~column:1) in
  Alcotest.(check (list int)) "lookup bob" [ 1 ] (Index.lookup idx (Value.Str "bob"));
  Alcotest.(check (list int)) "lookup none" [] (Index.lookup idx (Value.Str "zed"));
  (* Index stays consistent across deletes. *)
  ignore (Table.delete_where t (fun row -> Row.get row 1 <> Value.Str "bob"));
  let idx = Option.get (Table.index_on t ~column:1) in
  Alcotest.(check (list int)) "after delete" [] (Index.lookup idx (Value.Str "bob"))

let test_index_duplicates () =
  let schema = Schema.of_list [ Schema.column "k" Value.T_string ] in
  let t = Table.create ~name:"dup" ~schema in
  Table.create_index t ~column_name:"k";
  Table.insert_values t [ Value.Str "a" ];
  Table.insert_values t [ Value.Str "a" ];
  Table.insert_values t [ Value.Str "b" ];
  let idx = Option.get (Table.index_on t ~column:0) in
  Alcotest.(check (list int)) "dup rows" [ 0; 1 ] (Index.lookup idx (Value.Str "a"));
  check_int "distinct keys" 2 (Index.cardinality idx)

(* --- Database --- *)

let test_database_catalog () =
  let db = Database.create () in
  let _ = Database.create_table db ~name:"t" ~schema:(sample_schema ()) in
  check_bool "exists" true (Database.table_exists db "T");
  Alcotest.check_raises "dup" (Errors.Sql_error (Errors.Catalog, "table t already exists"))
    (fun () -> ignore (Database.create_table db ~name:"t" ~schema:(sample_schema ())));
  Database.drop_table db "t";
  check_bool "dropped" false (Database.table_exists db "t");
  Alcotest.check_raises "missing" (Errors.Sql_error (Errors.Catalog, "no such table: t"))
    (fun () -> Database.drop_table db "t")

(* --- CSV --- *)

let test_csv_roundtrip () =
  let t = make_table () in
  let csv = Csv.result_to_csv (Table.schema t) (Table.to_list t) in
  let t2 = Table.create ~name:"copy" ~schema:(sample_schema ()) in
  let n = Csv.load_into t2 csv ~has_header:true in
  check_int "loaded" 3 n;
  check_bool "same first row" true (Row.equal (Table.get t 0) (Table.get t2 0))

let test_csv_quoting () =
  let schema = Schema.of_list [ Schema.column "s" Value.T_string ] in
  let t = Table.create ~name:"q" ~schema in
  Table.insert_values t [ Value.Str "a,b" ];
  Table.insert_values t [ Value.Str "say \"hi\"" ];
  Table.insert_values t [ Value.Str "line1\nline2" ];
  let csv = Csv.result_to_csv schema (Table.to_list t) in
  let t2 = Table.create ~name:"q2" ~schema in
  let n = Csv.load_into t2 csv ~has_header:true in
  check_int "loaded" 3 n;
  check_bool "comma kept" true (Row.get (Table.get t2 0) 0 = Value.Str "a,b");
  check_bool "quotes kept" true (Row.get (Table.get t2 1) 0 = Value.Str "say \"hi\"");
  check_bool "newline kept" true (Row.get (Table.get t2 2) 0 = Value.Str "line1\nline2")

let test_csv_null_roundtrip () =
  let schema =
    Schema.of_list [ Schema.column "a" Value.T_string; Schema.column "n" Value.T_int ]
  in
  let t = Table.create ~name:"n" ~schema in
  Table.insert_values t [ Value.Null; Value.Int 7 ];
  let csv = Csv.result_to_csv schema (Table.to_list t) in
  let t2 = Table.create ~name:"n2" ~schema in
  ignore (Csv.load_into t2 csv ~has_header:true);
  check_bool "null back" true (Row.get (Table.get t2 0) 0 = Value.Null)

let () =
  Alcotest.run "relational"
    [ ( "value",
        [ Alcotest.test_case "numeric compare" `Quick test_value_compare_numeric;
          Alcotest.test_case "string/bool compare" `Quick test_value_compare_strings;
          Alcotest.test_case "sql literal" `Quick test_value_to_sql_literal;
          Alcotest.test_case "coerce" `Quick test_value_coerce;
          Alcotest.test_case "ty_of_string" `Quick test_value_ty_of_string;
        ] );
      ( "vec",
        [ Alcotest.test_case "push/get" `Quick test_vec_push_get;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "pop/filter/map" `Quick test_vec_pop_filter_map;
        ] );
      ( "schema",
        [ Alcotest.test_case "find" `Quick test_schema_find;
          Alcotest.test_case "qualified" `Quick test_schema_qualified;
          Alcotest.test_case "ambiguity" `Quick test_schema_ambiguity;
        ] );
      ("row", [ Alcotest.test_case "ops" `Quick test_row_ops ]);
      ( "table",
        [ Alcotest.test_case "insert/count" `Quick test_table_insert_count;
          Alcotest.test_case "type check" `Quick test_table_type_check;
          Alcotest.test_case "arity check" `Quick test_table_arity_check;
          Alcotest.test_case "delete" `Quick test_table_delete;
          Alcotest.test_case "update" `Quick test_table_update;
          Alcotest.test_case "index" `Quick test_table_index;
          Alcotest.test_case "index duplicates" `Quick test_index_duplicates;
        ] );
      ("database", [ Alcotest.test_case "catalog" `Quick test_database_catalog ]);
      ( "csv",
        [ Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "null" `Quick test_csv_null_roundtrip;
        ] );
    ]
