(* Crash-safety tests for the durable layer: for every injected crash
   point, recovery must return a verified prefix of what was appended —
   never a reordered, corrupted or invented record — and everything synced
   before the crash must survive it (except a truncation that died
   mid-fsync, which is allowed to lose stable bytes but still only ever
   shortens the prefix).  On top of the device matrix: WAL -> snapshot ->
   WAL round-trips, quarantine persistence across a kill/restart, and the
   system-level downgrade of coverage to a lower bound after a dropped
   tail. *)

module C = Durable.Chain
module D = Durable.Device
module F = Durable.Frame
module L = Durable.Log
module R = Durable.Recovery
module Snap = Durable.Snapshot
module W = Durable.Wal

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let matrix_seeds = [ 11; 22; 33 ]

let payload i = Printf.sprintf "record-%04d-%s" i (String.make (i mod 7) 'x')

let rec firstn n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: firstn (n - 1) tl

let is_prefix ~of_:whole part = part = firstn (List.length part) whole

(* Simulate a process restart: a fresh Log over the same (surviving)
   devices, as if the files were reopened. *)
let restart log = L.of_devices ~wal:(L.wal_device log) ~snapshot:(L.snapshot_device log)

(* Where the accepted records sit on stable media — tampering targets. *)
let data_spans image =
  List.filter (fun (_, _, k) -> k = F.Data) (W.frame_spans image)

(* --- the crash-point matrix --- *)

(* Append 30 records, sync after the 17th, crash at [point], recover.
   Verified-prefix invariant for every point; the synced prefix survives
   every point except Truncated_sync (which corrupts stable media by
   design). *)
let test_crash_matrix point seed () =
  let appended = List.init 30 payload in
  let synced = 17 in
  let log = L.create ~seed () in
  ignore (L.open_or_recover log);
  List.iteri
    (fun i p ->
      ignore (L.append log p);
      if i = synced - 1 then L.sync log)
    appended;
  D.crash (L.wal_device log) ~point;
  let r = L.open_or_recover (restart log) in
  check_bool
    (Printf.sprintf "%s/%d: recovered a prefix" (D.crash_point_to_string point) seed)
    true
    (is_prefix ~of_:appended r.R.entries);
  if point <> D.Truncated_sync then
    check_bool
      (Printf.sprintf "%s/%d: synced prefix survived (%d >= %d)"
         (D.crash_point_to_string point) seed (List.length r.R.entries) synced)
      true
      (List.length r.R.entries >= synced);
  check_int "next LSN = recovered count" (List.length r.R.entries) r.R.next_lsn;
  (* zero false positives: crash damage lands in the unsynced tail, so no
     crash point may ever be classified as interior tampering *)
  check_bool
    (Printf.sprintf "%s/%d: crash damage never reads as tampering"
       (D.crash_point_to_string point) seed)
    false (R.tampered r)

(* After recovery, the log must accept appends again and a second restart
   must see them — the "recover, keep going, crash again" lifecycle. *)
let test_resume_after_crash point seed () =
  let log = L.create ~seed () in
  ignore (L.open_or_recover log);
  List.iter (fun p -> ignore (L.append log p)) (List.init 12 payload);
  L.sync log;
  List.iter (fun p -> ignore (L.append log (p ^ "-unsynced"))) (List.init 6 payload);
  D.crash (L.wal_device log) ~point;
  let log2 = restart log in
  let r = L.open_or_recover log2 in
  let resumed_at = L.append log2 "post-crash" in
  check_int "append resumes at the recovered LSN" r.R.next_lsn resumed_at;
  L.sync log2;
  let r2 = L.open_or_recover (restart log2) in
  check_bool "second recovery is clean" true (R.clean r2);
  check_bool "post-crash record survived" true
    (r2.R.entries = r.R.entries @ [ "post-crash" ])

(* --- QCheck parity against an in-memory oracle --- *)

(* Random append/sync schedules, arbitrary payload bytes, one crash at the
   end.  Oracle: the plain list of appended payloads and how many of them
   had been synced.  Recovery must agree with the oracle's prefix. *)
let gen_schedule =
  let open QCheck2.Gen in
  let* seed = int_range 0 1000 in
  let* point = oneofl D.all_crash_points in
  let* sync_every = int_range 1 9 in
  let* payloads = list_size (int_range 1 40) (string_size ~gen:char (int_range 0 24)) in
  return (seed, point, sync_every, payloads)

let print_schedule (seed, point, sync_every, payloads) =
  Printf.sprintf "seed=%d point=%s sync_every=%d payloads=%d" seed
    (D.crash_point_to_string point)
    sync_every (List.length payloads)

let prop_recovery_matches_oracle =
  QCheck2.Test.make ~name:"recovery = verified prefix of the oracle" ~count:300
    ~print:print_schedule gen_schedule (fun (seed, point, sync_every, payloads) ->
      let log = L.create ~seed () in
      ignore (L.open_or_recover log);
      let synced = ref 0 in
      List.iteri
        (fun i p ->
          ignore (L.append log p);
          if (i + 1) mod sync_every = 0 then begin
            L.sync log;
            synced := i + 1
          end)
        payloads;
      D.crash (L.wal_device log) ~point;
      let r = L.open_or_recover (restart log) in
      is_prefix ~of_:payloads r.R.entries
      && (point = D.Truncated_sync || List.length r.R.entries >= !synced)
      && r.R.next_lsn = List.length r.R.entries)

(* --- checkpoint / snapshot --- *)

let test_wal_snapshot_wal_roundtrip () =
  let all = List.init 15 payload in
  let log = L.create ~seed:5 () in
  ignore (L.open_or_recover log);
  List.iter (fun p -> ignore (L.append log p)) (firstn 10 all);
  L.sync log;
  L.checkpoint log ~entries:(firstn 10 all);
  check_int "WAL truncated to header" Durable.Wal.header_size
    (D.durable_size (L.wal_device log));
  List.iteri (fun i p -> check_int "LSN continues" (10 + i) (L.append log p))
    (List.filteri (fun i _ -> i >= 10) all);
  L.sync log;
  let r = L.open_or_recover (restart log) in
  check_bool "clean" true (R.clean r);
  check_bool "snapshot + WAL stitch back to the full log" true (r.R.entries = all);
  check_int "snapshot contributed 10" 10 r.R.snapshot_entries;
  check_int "WAL contributed 5" 5 r.R.wal_entries;
  check_int "next LSN" 15 r.R.next_lsn

(* Crash in the checkpoint window: after the snapshot is written but
   before anything else happens, both the snapshot and the (already
   truncated) WAL must reconcile without losing or duplicating a record. *)
let test_crash_after_checkpoint () =
  List.iter
    (fun point ->
      let all = List.init 8 payload in
      let log = L.create ~seed:9 () in
      ignore (L.open_or_recover log);
      List.iter (fun p -> ignore (L.append log p)) all;
      L.sync log;
      L.checkpoint log ~entries:all;
      (* Nothing is unsynced here, so only stable-media damage can bite. *)
      D.crash (L.wal_device log) ~point;
      let r = L.open_or_recover (restart log) in
      check_bool
        (Printf.sprintf "%s after checkpoint: snapshot carries the log"
           (D.crash_point_to_string point))
        true
        (is_prefix ~of_:all r.R.entries);
      if point <> D.Truncated_sync then
        check_bool "whole log survived via the snapshot" true (r.R.entries = all))
    D.all_crash_points

(* A WAL overlapping its snapshot (the crash landed between snapshot sync
   and WAL reformat) must not duplicate the overlap. *)
let test_overlapping_wal_not_duplicated () =
  let all = List.init 12 payload in
  let wal = D.create ~seed:3 () in
  let snapshot = D.create ~seed:4 () in
  let log = L.of_devices ~wal ~snapshot in
  ignore (L.open_or_recover log);
  List.iter (fun p -> ignore (L.append log p)) all;
  L.sync log;
  (* Hand-write the snapshot as the checkpoint would — sealing the chain
     head at LSN 7 — then "crash" before the WAL reformat: the WAL still
     holds all 12 from LSN 0. *)
  let chain_at_7 =
    List.fold_left Durable.Chain.step Durable.Chain.zero (firstn 7 all)
  in
  Snap.write snapshot ~lsn:7 ~chain:chain_at_7 ~entries:(firstn 7 all);
  let r = L.open_or_recover (L.of_devices ~wal ~snapshot) in
  check_bool "clean" true (R.clean r);
  check_bool "no duplication across the overlap" true (r.R.entries = all);
  check_int "snapshot 7" 7 r.R.snapshot_entries;
  check_int "wal contributes only the suffix" 5 r.R.wal_entries

(* --- quarantine persistence --- *)

let raw_of i = [ ("user", Printf.sprintf "u%d" i); ("data", "referral") ]

let test_quarantine_survives_restart () =
  let log = L.create ~seed:21 () in
  let q = Audit_mgmt.Quarantine.create () in
  ignore (Audit_mgmt.Quarantine.restore q log);
  Audit_mgmt.Quarantine.add q ~site:"icu" ~seq:1 ~raw:(raw_of 1) ~reason:"unmappable";
  Audit_mgmt.Quarantine.add q ~site:"icu" ~seq:2 ~raw:(raw_of 2) ~reason:"corrupt";
  Audit_mgmt.Quarantine.add q ~site:"lab" ~seq:1 ~raw:(raw_of 3) ~reason:"unmappable";
  (* Resolve one: the removal must also survive the restart. *)
  Audit_mgmt.Quarantine.remove q ~site:"icu" ~seq:1;
  Audit_mgmt.Quarantine.sync q;
  let q2, r, undecodable = Audit_mgmt.Quarantine.open_durable (restart log) in
  check_bool "clean recovery" true (R.clean r);
  check_int "no codec mismatches" 0 undecodable;
  check_int "two items survived" 2 (Audit_mgmt.Quarantine.length q2);
  check_bool "resolution survived" false (Audit_mgmt.Quarantine.mem q2 ~site:"icu" ~seq:1);
  check_bool "items identical" true
    (Audit_mgmt.Quarantine.items q = Audit_mgmt.Quarantine.items q2)

let test_quarantine_checkpoint_and_crash () =
  let log = L.create ~seed:22 () in
  let q = Audit_mgmt.Quarantine.create () in
  ignore (Audit_mgmt.Quarantine.restore q log);
  Audit_mgmt.Quarantine.add q ~site:"icu" ~seq:1 ~raw:(raw_of 1) ~reason:"unmappable";
  Audit_mgmt.Quarantine.add q ~site:"icu" ~seq:2 ~raw:(raw_of 2) ~reason:"corrupt";
  Audit_mgmt.Quarantine.sync q;
  Audit_mgmt.Quarantine.checkpoint q;
  (* An unsynced mutation after the checkpoint is lost by a crash, but the
     checkpointed state must come back intact. *)
  Audit_mgmt.Quarantine.add q ~site:"lab" ~seq:9 ~raw:(raw_of 9) ~reason:"late";
  D.crash (L.wal_device log) ~point:D.Clean_loss;
  let q2, r, undecodable = Audit_mgmt.Quarantine.open_durable (restart log) in
  check_int "no codec mismatches" 0 undecodable;
  check_int "checkpointed items back" 2 (Audit_mgmt.Quarantine.length q2);
  check_bool "unsynced late add lost" false (Audit_mgmt.Quarantine.mem q2 ~site:"lab" ~seq:9);
  check_int "snapshot carried them" 2 r.R.snapshot_entries

let test_quarantine_clear_is_durable () =
  let log = L.create ~seed:23 () in
  let q = Audit_mgmt.Quarantine.create () in
  ignore (Audit_mgmt.Quarantine.restore q log);
  Audit_mgmt.Quarantine.add q ~site:"icu" ~seq:1 ~raw:(raw_of 1) ~reason:"unmappable";
  Audit_mgmt.Quarantine.clear q;
  Audit_mgmt.Quarantine.sync q;
  let q2, _, _ = Audit_mgmt.Quarantine.open_durable (restart log) in
  check_int "clear survived" 0 (Audit_mgmt.Quarantine.length q2)

(* --- audit store persistence --- *)

let entry i =
  Hdb.Audit_schema.entry ~time:i
    ~op:(if i mod 5 = 0 then Hdb.Audit_schema.Disallow else Hdb.Audit_schema.Allow)
    ~user:(Printf.sprintf "user-%d" (i mod 3))
    ~data:"referral" ~purpose:"registration" ~authorized:"nurse"
    ~status:(if i mod 2 = 0 then Hdb.Audit_schema.Regular else Hdb.Audit_schema.Exception_based)

let test_audit_store_survives_restart () =
  let log = L.create ~seed:31 () in
  let store = Hdb.Audit_store.create () in
  ignore (Hdb.Audit_store.restore store log);
  let entries = List.init 20 entry in
  Hdb.Audit_store.append_all store entries;
  Hdb.Audit_store.sync store;
  let store2, r, undecodable = Hdb.Audit_store.open_durable (restart log) in
  check_bool "clean recovery" true (R.clean r);
  check_int "no codec mismatches" 0 undecodable;
  check_bool "entries identical" true (Hdb.Audit_store.to_list store2 = entries);
  check_int "LSN continues" 20 (Hdb.Audit_store.lsn store2);
  (* checkpoint, extend, crash the unsynced tail, restart *)
  Hdb.Audit_store.checkpoint store2;
  Hdb.Audit_store.append store2 (entry 20);
  Hdb.Audit_store.sync store2;
  Hdb.Audit_store.append store2 (entry 21);
  (* not synced *)
  (match Hdb.Audit_store.log store2 with
  | Some log2 -> D.crash (L.wal_device log2) ~point:D.Torn_tail
  | None -> Alcotest.fail "store lost its log");
  let store3, r3, _ = Hdb.Audit_store.open_durable (restart log) in
  check_bool "synced 21 back" true
    (Hdb.Audit_store.to_list store3 = entries @ [ entry 20 ]
    || Hdb.Audit_store.to_list store3 = entries @ [ entry 20; entry 21 ]);
  check_int "snapshot carried the first 20" 20 r3.R.snapshot_entries

(* --- system level: dropped tail downgrades coverage --- *)

let scenario_entries () = Workload.Scenario.table1_entries ()

let test_system_recovery_and_lower_bound () =
  let audit_log = L.create ~seed:41 () in
  let quarantine_log = L.create ~seed:42 () in
  let storage = { Prima_system.System.audit_log; quarantine_log } in
  let vocab = Vocabulary.Samples.figure1 () in
  let p_ps = Workload.Scenario.policy_store () in
  (* Run 1: a durably-backed system accumulates a trail; part of it is
     synced, a tail is still in the page cache when the process dies. *)
  let system = Prima_system.System.create ~storage ~vocab ~p_ps () in
  check_bool "fresh storage recovers clean" false
    (Prima_system.System.durably_degraded system);
  let store = Hdb.Control_center.audit_store (Prima_system.System.control system) in
  let entries = scenario_entries () in
  Hdb.Audit_store.append_all store entries;
  Prima_system.System.sync_durable system;
  Hdb.Audit_store.append_all store (List.init 4 entry);
  D.crash (L.wal_device audit_log) ~point:D.Partial_header;
  (* Run 2: reopen the surviving media.  Partial_header always cuts inside
     an unsynced record's header, so the tail drop is guaranteed. *)
  let storage2 =
    { Prima_system.System.audit_log = restart audit_log;
      quarantine_log = restart quarantine_log;
    }
  in
  let system2 = Prima_system.System.create ~storage:storage2 ~vocab ~p_ps () in
  let recovery =
    match Prima_system.System.recovery system2 with
    | Some r -> r
    | None -> Alcotest.fail "no recovery report"
  in
  check_bool "audit tail dropped" true (R.dropped_tail recovery.Prima_system.System.audit);
  check_bool "system knows it is degraded" true
    (Prima_system.System.durably_degraded system2);
  let store2 = Hdb.Control_center.audit_store (Prima_system.System.control system2) in
  check_bool "synced trail survived" true
    (firstn (List.length entries) (Hdb.Audit_store.to_list store2) = entries);
  (* Even at completeness 1.0 the coverage label must be a lower bound:
     the trail on disk is a verified prefix, not certainly the history. *)
  let qc = Prima_system.System.coverage_qualified system2 in
  check_bool "window itself is complete" true
    (qc.Prima_system.System.health.Audit_mgmt.Health.completeness >= 1.0);
  (match qc.Prima_system.System.bag_semantics.Prima_core.Coverage.qualifier with
  | Prima_core.Coverage.Lower_bound _ -> ()
  | Prima_core.Coverage.Exact -> Alcotest.fail "dropped tail must downgrade to Lower_bound");
  match qc.Prima_system.System.set_semantics.Prima_core.Coverage.qualifier with
  | Prima_core.Coverage.Lower_bound _ -> ()
  | Prima_core.Coverage.Exact -> Alcotest.fail "dropped tail must downgrade to Lower_bound"

(* Tampering is surfaced all the way up: the system reports it, counts as
   durably degraded, amputates the trail at the divergence, and labels
   every coverage reading a lower bound. *)
let test_system_tamper_forces_lower_bound () =
  let audit_log = L.create ~seed:43 () in
  let quarantine_log = L.create ~seed:44 () in
  let storage = { Prima_system.System.audit_log; quarantine_log } in
  let vocab = Vocabulary.Samples.figure1 () in
  let p_ps = Workload.Scenario.policy_store () in
  let system = Prima_system.System.create ~storage ~vocab ~p_ps () in
  check_bool "fresh storage is untampered" false (Prima_system.System.tampered system);
  let store = Hdb.Control_center.audit_store (Prima_system.System.control system) in
  let entries = scenario_entries () in
  Hdb.Audit_store.append_all store entries;
  Prima_system.System.sync_durable system;
  (* interior mutation of an accepted record — the region crashes never touch *)
  let wal = L.wal_device audit_log in
  let off, _, _ = List.nth (data_spans (D.contents wal)) 1 in
  D.corrupt_stable wal ~pos:(off + F.header_size) ~bit:3;
  let storage2 =
    { Prima_system.System.audit_log = restart audit_log;
      quarantine_log = restart quarantine_log;
    }
  in
  let system2 = Prima_system.System.create ~storage:storage2 ~vocab ~p_ps () in
  check_bool "system reports the tampering" true (Prima_system.System.tampered system2);
  check_bool "tampering implies durably degraded" true
    (Prima_system.System.durably_degraded system2);
  let recovery =
    match Prima_system.System.recovery system2 with
    | Some r -> r
    | None -> Alcotest.fail "no recovery report"
  in
  (match recovery.Prima_system.System.audit.R.verdict with
  | R.Tamper_detected { offset } -> check_int "divergence at the mutated frame" off offset
  | v -> Alcotest.failf "expected tamper verdict, got %s" (R.verdict_to_string v));
  let store2 = Hdb.Control_center.audit_store (Prima_system.System.control system2) in
  check_bool "trail amputated just before the mutation" true
    (Hdb.Audit_store.to_list store2 = firstn 1 entries);
  let qc = Prima_system.System.coverage_qualified system2 in
  (match qc.Prima_system.System.set_semantics.Prima_core.Coverage.qualifier with
  | Prima_core.Coverage.Lower_bound _ -> ()
  | Prima_core.Coverage.Exact -> Alcotest.fail "tampered recovery must force Lower_bound");
  match qc.Prima_system.System.bag_semantics.Prima_core.Coverage.qualifier with
  | Prima_core.Coverage.Lower_bound _ -> ()
  | Prima_core.Coverage.Exact -> Alcotest.fail "tampered recovery must force Lower_bound"

(* The adaptive completeness gate: the configured floor applies in full to
   a large window, scaled down on a small one. *)
let test_adaptive_threshold_scales () =
  let vocab = Vocabulary.Samples.figure1 () in
  let p_ps = Workload.Scenario.policy_store () in
  let system = Prima_system.System.create ~completeness_threshold:0.9 ~vocab ~p_ps () in
  check_bool "small window floor is below the configured threshold" true
    (Prima_system.System.effective_threshold system < 0.9);
  (* effective = 0.9 * n / (n + 25): half the configured value at n = 25,
     converging towards 0.9 as n grows. *)
  let eps = 1e-9 in
  let eff n = 0.9 *. float_of_int n /. float_of_int (n + 25) in
  check_bool "n=25 halves the floor" true (abs_float (eff 25 -. 0.45) < eps);
  check_bool "monotone in window size" true (eff 100 > eff 25 && eff 10_000 > eff 100);
  check_bool "bounded by the configured threshold" true (eff 1_000_000 < 0.9)

(* --- tamper evidence: interior mutation of sealed media --- *)

(* A sealed log: [n] records appended and synced, so every data frame on
   stable media precedes a seal frame — the region a crash can never
   damage, and exactly where a tampering mutation must be caught. *)
let sealed_log ~seed ~n ~sync_every =
  let log = L.create ~seed () in
  ignore (L.open_or_recover log);
  List.iteri
    (fun i p ->
      ignore (L.append log p);
      if (i + 1) mod sync_every = 0 || i = n - 1 then L.sync log)
    (List.init n payload);
  log

(* The corrupted-length case: flip a bit inside the length field of an
   accepted (stable, sealed) frame.  The CRC covers the length bytes, so a
   reframed scan cannot silently resynchronise — the verdict is tampering
   at exactly that frame, twice over, and adopting the log amputates the
   trail just before it, after which life goes on and the evidence is
   consumed. *)
let test_tamper_corrupted_length seed () =
  let all = List.init 12 payload in
  let log = sealed_log ~seed ~n:12 ~sync_every:5 in
  let wal = L.wal_device log and snap = L.snapshot_device log in
  let idx = 6 in
  let off, _, _ = List.nth (data_spans (D.contents wal)) idx in
  D.corrupt_stable wal ~pos:(off + (seed mod 4)) ~bit:(seed mod 8);
  let r1 = R.run ~wal ~snapshot:snap () in
  (match r1.R.verdict with
  | R.Tamper_detected { offset } ->
    check_int (Printf.sprintf "seed %d: divergence at the frame start" seed) off offset
  | v -> Alcotest.failf "seed %d: expected tamper, got %s" seed (R.verdict_to_string v));
  check_int "scan stopped dead at the mutated record" idx r1.R.wal_records;
  check_bool "mutated record never surfaced" true (r1.R.entries = firstn idx all);
  (* read-only verification is idempotent *)
  let r2 = R.run ~wal ~snapshot:snap () in
  check_bool "verdict idempotent" true (r1.R.verdict = r2.R.verdict);
  (* adoption: reopen truncates at the divergence and reseals *)
  let log2 = restart log in
  let r3 = L.open_or_recover log2 in
  check_bool "open still reports the tampering" true (R.tampered r3);
  check_bool "adopted trail is the amputated prefix" true (r3.R.entries = firstn idx all);
  ignore (L.append log2 "after-tamper");
  L.sync log2;
  let r4 = L.open_or_recover (restart log2) in
  check_bool "evidence consumed: next recovery is clean" true
    (R.clean r4 && not (R.tampered r4));
  check_bool "trail continues past the amputation" true
    (r4.R.entries = firstn idx all @ [ "after-tamper" ])

(* Mutating the already-synced header is tampering too: a crash cannot
   touch it, and the seals further in prove the file once verified. *)
let test_tamper_header_magic () =
  let log = sealed_log ~seed:77 ~n:8 ~sync_every:3 in
  let wal = L.wal_device log and snap = L.snapshot_device log in
  D.corrupt_stable wal ~pos:2 ~bit:1;
  let r = R.run ~wal ~snapshot:snap () in
  check_bool "mutilated magic reads as tampering" true (R.tampered r);
  check_bool "nothing surfaced from the unreadable file" true (r.R.entries = [])

let test_tamper_base_chain () =
  let log = sealed_log ~seed:78 ~n:8 ~sync_every:3 in
  let wal = L.wal_device log and snap = L.snapshot_device log in
  (* base_chain lives right after magic + base_lsn; flipping it breaks the
     first data frame's chain link *)
  D.corrupt_stable wal ~pos:(String.length W.magic + 8) ~bit:0;
  let r = R.run ~wal ~snapshot:snap () in
  match r.R.verdict with
  | R.Tamper_detected { offset } -> check_int "divergence at the first frame" W.header_size offset
  | v -> Alcotest.failf "expected tamper, got %s" (R.verdict_to_string v)

(* Pinned hole: Frame.get_u64 folds 64 stored bits into a 63-bit OCaml
   int, so a set bit 63 of either header u64 would vanish in the parse —
   and the header has no CRC.  Found by prop_single_bitflip_caught
   (seed=11 n=8 sync_every=4 pos_pick=40941 bit=7: bit 63 of base_lsn);
   read_header now rejects a top byte with either high bit set. *)
let test_tamper_header_high_bits () =
  List.iter
    (fun (name, field_offset) ->
      let lo = String.length W.magic + field_offset in
      List.iter
        (fun bit ->
          let log = sealed_log ~seed:80 ~n:8 ~sync_every:4 in
          let wal = L.wal_device log and snap = L.snapshot_device log in
          D.corrupt_stable wal ~pos:(lo + 7) ~bit;
          let r = R.run ~wal ~snapshot:snap () in
          check_bool
            (Printf.sprintf "bit %d of %s top byte reads as tampering" bit name)
            true (R.tampered r))
        [ 6; 7 ])
    [ ("base_lsn", 0); ("base_chain", 8) ]

(* The cross-device anchor: a snapshot whose sealed chain head the WAL's
   header cannot reproduce means one side's history was rewritten. *)
let test_tamper_snapshot_anchor () =
  let all = List.init 10 payload in
  let log = L.create ~seed:79 () in
  ignore (L.open_or_recover log);
  List.iter (fun p -> ignore (L.append log p)) (firstn 6 all);
  L.sync log;
  L.checkpoint log ~entries:(firstn 6 all);
  List.iter (fun p -> ignore (L.append log p)) (List.filteri (fun i _ -> i >= 6) all);
  L.sync log;
  (* flip one bit of the snapshot header's chain field *)
  D.corrupt_stable (L.snapshot_device log) ~pos:(String.length Snap.magic + 8) ~bit:4;
  let r = R.run ~wal:(L.wal_device log) ~snapshot:(L.snapshot_device log) () in
  match r.R.verdict with
  | R.Tamper_detected { offset } ->
    check_int "divergence points at the chain anchor" (String.length W.magic + 8) offset
  | v -> Alcotest.failf "expected anchor tamper, got %s" (R.verdict_to_string v)

let test_chain_hex_roundtrip () =
  List.iter
    (fun n ->
      match C.of_hex (C.to_hex n) with
      | Some m -> check_bool "hex round-trip" true (m = n)
      | None -> Alcotest.fail "to_hex produced unparseable hex")
    [ 0; 1; C.zero; C.step C.zero "x"; C.hash_string "payload" ];
  check_bool "garbage rejected" true (C.of_hex "not-hex-at-all!" = None);
  check_bool "short hex rejected" true (C.of_hex "abc" = None)

(* Satellite property: one bit flip at any sampled offset of a sealed WAL
   is caught — never a clean recovery — and a flip landing inside a data
   frame is classified as tampering at exactly that frame's offset, with
   the same verdict on a second verification.  Device seeds are the three
   fixed matrix seeds, so the damage streams are stable across runs. *)
let gen_tamper =
  let open QCheck2.Gen in
  let* seed = oneofl matrix_seeds in
  let* n = int_range 1 20 in
  let* sync_every = int_range 1 6 in
  let* pos_pick = int_range 0 100_000 in
  let* bit = int_range 0 7 in
  return (seed, n, sync_every, pos_pick, bit)

let print_tamper (seed, n, sync_every, pos_pick, bit) =
  Printf.sprintf "seed=%d n=%d sync_every=%d pos_pick=%d bit=%d" seed n sync_every pos_pick
    bit

let prop_single_bitflip_caught =
  QCheck2.Test.make ~name:"single bit flip on a sealed WAL is caught" ~count:300
    ~print:print_tamper gen_tamper (fun (seed, n, sync_every, pos_pick, bit) ->
      let log = sealed_log ~seed ~n ~sync_every in
      let wal = L.wal_device log and snap = L.snapshot_device log in
      let image = D.contents wal in
      let pos = pos_pick mod String.length image in
      D.corrupt_stable wal ~pos ~bit;
      let r1 = R.run ~wal ~snapshot:snap () in
      let r2 = R.run ~wal ~snapshot:snap () in
      let caught = not (R.clean r1) in
      let idempotent = r1.R.verdict = r2.R.verdict in
      let correct_offset =
        match
          List.find_opt
            (fun (off, len, _) -> pos >= off && pos < off + len)
            (data_spans image)
        with
        | Some (off, _, _) -> r1.R.verdict = R.Tamper_detected { offset = off }
        | None -> true (* header or seal bytes: caught above, offset unconstrained *)
      in
      caught && idempotent && correct_offset)

(* --- background checkpointing --- *)

(* The log compacts itself once the WAL exceeds the policy.  The image
   callback mirrors the write-ahead discipline of the real stores: memory
   is updated only after the append returns, so at trigger time (before
   the new payload is logged) the image covers exactly the WAL contents. *)
let test_auto_checkpoint_records () =
  let log = L.create ~seed:51 () in
  ignore (L.open_or_recover log);
  let mem = ref [] in
  L.set_auto_checkpoint log (L.checkpoint_every ~records:5 ()) (fun () -> !mem);
  let appended = List.init 23 payload in
  List.iter
    (fun p ->
      ignore (L.append log p);
      mem := !mem @ [ p ])
    appended;
  L.sync log;
  (* Trigger fires before appends 6, 11, 16 and 21 (WAL at 5 records). *)
  check_int "auto checkpoints fired" 4 (L.auto_checkpoints log);
  let r = L.open_or_recover (restart log) in
  check_bool "clean recovery" true (R.clean r);
  check_bool "nothing lost to compaction" true (r.R.entries = appended);
  check_int "snapshot carries the compacted prefix" 20 r.R.snapshot_entries;
  check_int "wal holds only the live tail" 3 r.R.wal_entries

let test_auto_checkpoint_bytes () =
  let log = L.create ~seed:52 () in
  ignore (L.open_or_recover log);
  let mem = ref [] in
  L.set_auto_checkpoint log (L.checkpoint_every ~bytes:50 ()) (fun () -> !mem);
  let appended = List.init 18 (Printf.sprintf "%010d") in
  List.iter
    (fun p ->
      ignore (L.append log p);
      mem := !mem @ [ p ])
    appended;
  L.sync log;
  (* 10-byte payloads against a 50-byte budget: fires before appends 6,
     11 and 16. *)
  check_int "auto checkpoints fired" 3 (L.auto_checkpoints log);
  let r = L.open_or_recover (restart log) in
  check_bool "clean recovery" true (R.clean r);
  check_bool "nothing lost to compaction" true (r.R.entries = appended);
  check_int "snapshot carries the compacted prefix" 15 r.R.snapshot_entries;
  (* clear_auto_checkpoint really detaches the policy *)
  let log2 = restart log in
  ignore (L.open_or_recover log2);
  L.set_auto_checkpoint log2 (L.checkpoint_every ~records:1 ()) (fun () -> !mem);
  L.clear_auto_checkpoint log2;
  ignore (L.append log2 "tail");
  check_int "cleared policy never fires" 0 (L.auto_checkpoints log2)

(* Crash during the auto-checkpointed lifecycle: whatever the WAL device
   loses, the snapshots written by the background policy sit on the other
   device and must bound the damage. *)
let test_crash_after_auto_checkpoint point seed () =
  let log = L.create ~seed () in
  ignore (L.open_or_recover log);
  let mem = ref [] in
  L.set_auto_checkpoint log (L.checkpoint_every ~records:4 ()) (fun () -> !mem);
  let appended = List.init 14 payload in
  List.iter
    (fun p ->
      ignore (L.append log p);
      mem := !mem @ [ p ])
    appended;
  (* Triggers before appends 5, 9 and 13: snapshot covers 12, WAL holds 2
     unsynced records.  Crash only the WAL device. *)
  check_int "auto checkpoints fired" 3 (L.auto_checkpoints log);
  D.crash (L.wal_device log) ~point;
  let r = L.open_or_recover (restart log) in
  check_bool
    (Printf.sprintf "%s/%d: recovered a prefix" (D.crash_point_to_string point) seed)
    true
    (is_prefix ~of_:appended r.R.entries);
  if point <> D.Truncated_sync then
    check_bool
      (Printf.sprintf "%s/%d: snapshot floor held (%d >= 12)"
         (D.crash_point_to_string point) seed (List.length r.R.entries))
      true
      (List.length r.R.entries >= 12)

(* The store-level wiring: an audit store and a quarantine with the policy
   enabled compact themselves and still restart losslessly. *)
let test_audit_store_auto_checkpoint () =
  let log = L.create ~seed:53 () in
  let store, _, _ = Hdb.Audit_store.open_durable log in
  Hdb.Audit_store.enable_auto_checkpoint
    ~policy:(Durable.Log.checkpoint_every ~records:5 ()) store;
  let entries = List.init 17 entry in
  Hdb.Audit_store.append_all store entries;
  Hdb.Audit_store.sync store;
  check_bool "policy fired" true (L.auto_checkpoints log >= 2);
  let store2, r, undecodable = Hdb.Audit_store.open_durable (restart log) in
  check_bool "clean recovery" true (R.clean r);
  check_int "no codec mismatches" 0 undecodable;
  check_bool "entries identical" true (Hdb.Audit_store.to_list store2 = entries);
  check_int "LSN continues" 17 (Hdb.Audit_store.lsn store2);
  check_bool "snapshot absorbed the prefix" true (r.R.snapshot_entries >= 10)

let test_quarantine_auto_checkpoint () =
  let log = L.create ~seed:54 () in
  let q, _, _ = Audit_mgmt.Quarantine.open_durable log in
  Audit_mgmt.Quarantine.enable_auto_checkpoint
    ~policy:(Durable.Log.checkpoint_every ~records:4 ()) q;
  for i = 1 to 13 do
    Audit_mgmt.Quarantine.add q ~site:"icu" ~seq:i ~raw:(raw_of i) ~reason:"unmappable"
  done;
  (* Resolutions are ops too: they count against the policy and must not
     resurrect on restart even when compaction interleaves them. *)
  Audit_mgmt.Quarantine.remove q ~site:"icu" ~seq:2;
  Audit_mgmt.Quarantine.remove q ~site:"icu" ~seq:7;
  Audit_mgmt.Quarantine.sync q;
  check_bool "policy fired" true (L.auto_checkpoints log >= 2);
  let q2, r, undecodable = Audit_mgmt.Quarantine.open_durable (restart log) in
  check_bool "clean recovery" true (R.clean r);
  check_int "no codec mismatches" 0 undecodable;
  check_int "live items back" 11 (Audit_mgmt.Quarantine.length q2);
  check_bool "resolved item stayed resolved" false
    (Audit_mgmt.Quarantine.mem q2 ~site:"icu" ~seq:7);
  check_bool "items identical" true
    (Audit_mgmt.Quarantine.items q = Audit_mgmt.Quarantine.items q2)

let matrix name f =
  List.concat_map
    (fun point ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "%s %s seed %d" name (D.crash_point_to_string point) seed)
            `Quick (f point seed))
        matrix_seeds)
    D.all_crash_points

(* --- group-commit batching --- *)

(* With batching on, appends accumulate in user space — the device sees
   nothing until sync, which lands the whole batch as one write. *)
let test_group_commit_coalesces () =
  let log = L.create ~seed:44 () in
  ignore (L.open_or_recover log);
  let dev = L.wal_device log in
  let base_unsynced = D.unsynced dev in
  let base_syncs = D.syncs dev in
  L.set_group_commit log true;
  check_bool "mode reads back" true (L.group_commit log);
  for i = 0 to 9 do
    ignore (L.append log (payload i))
  done;
  check_int "appends pend in user space, not the page cache" base_unsynced
    (D.unsynced dev);
  check_int "ten records pending" 10 (L.pending_records log);
  L.sync log;
  check_int "sync drains the batch" 0 (L.pending_records log);
  check_int "one device sync covered all ten records" (base_syncs + 1) (D.syncs dev);
  let r = L.open_or_recover (restart log) in
  check_int "all ten durable" 10 (List.length r.R.entries)

(* Turning batching off flushes the pending batch to the page cache so
   nothing silently vanishes on the mode switch. *)
let test_group_commit_off_flushes () =
  let log = L.create ~seed:45 () in
  ignore (L.open_or_recover log);
  let dev = L.wal_device log in
  let base_unsynced = D.unsynced dev in
  L.set_group_commit log true;
  for i = 0 to 4 do
    ignore (L.append log (payload i))
  done;
  check_int "five pending" 5 (L.pending_records log);
  L.set_group_commit log false;
  check_int "switch-off flushes the batch" 0 (L.pending_records log);
  check_bool "bytes reached the page cache" true (D.unsynced dev > base_unsynced);
  L.sync log;
  let r = L.open_or_recover (restart log) in
  check_int "all five durable" 5 (List.length r.R.entries)

(* Checkpoint replaces the WAL object underneath the log; the batching mode
   must survive onto the fresh WAL. *)
let test_group_commit_survives_checkpoint () =
  let log = L.create ~seed:46 () in
  ignore (L.open_or_recover log);
  L.set_group_commit log true;
  for i = 0 to 4 do
    ignore (L.append log (payload i))
  done;
  L.checkpoint log ~entries:(List.init 5 payload);
  check_bool "mode survives the WAL replacement" true (L.group_commit log);
  ignore (L.append log (payload 99));
  check_int "appends still batch after checkpoint" 1 (L.pending_records log);
  L.sync log;
  let r = L.open_or_recover (restart log) in
  check_int "snapshot + post-checkpoint record" 6 (List.length r.R.entries)

(* Crash matrix under group commit: the pending batch is lost entirely —
   strictly within the durability contract — and since nothing unsynced
   ever reached the device, every crash point except the lying fsync
   recovers exactly the synced prefix. *)
let test_group_commit_crash_matrix point seed () =
  let appended = List.init 30 payload in
  let synced = 17 in
  let log = L.create ~seed () in
  ignore (L.open_or_recover log);
  L.set_group_commit log true;
  List.iteri
    (fun i p ->
      ignore (L.append log p);
      if i = synced - 1 then L.sync log)
    appended;
  D.crash (L.wal_device log) ~point;
  let r = L.open_or_recover (restart log) in
  check_bool
    (Printf.sprintf "gc/%s/%d: recovered a prefix" (D.crash_point_to_string point) seed)
    true
    (is_prefix ~of_:appended r.R.entries);
  if point <> D.Truncated_sync then
    check_int
      (Printf.sprintf "gc/%s/%d: exactly the synced batch survives"
         (D.crash_point_to_string point) seed)
      synced
      (List.length r.R.entries)

(* --- quarantine reprocess across a crash ---

   A site quarantines foreign records its mapping cannot read; the mapping
   fix arrives, and the process dies *between* the fix and the reprocess.
   After recovery the reprocess must run exactly once: a second reprocess
   and a full upstream retry of the original batch are both no-ops. *)

let foreign_raw i role_col =
  [
    ("time", string_of_int (i + 1));
    ("op", "allow");
    ("user", Printf.sprintf "u%d" i);
    ("data", "referral");
    ("purpose", "treatment");
    (role_col, "nurse");
    ("status", "btg");
  ]

let test_quarantine_reprocess_idempotent_across_crash () =
  let log = L.create ~seed:77 () in
  let q, _, _ = Audit_mgmt.Quarantine.open_durable log in
  let site = Audit_mgmt.Site.create ~quarantine:q ~name:"icu" () in
  (* "rolle" hides the authorized attribute from the identity mapping *)
  let batch = List.init 4 (fun i -> foreign_raw i "rolle") in
  let s = Audit_mgmt.Site.ingest_raw_all site batch in
  check_int "all quarantined" 4 s.Audit_mgmt.Site.quarantined;
  Audit_mgmt.Quarantine.sync q;
  (* the mapping fix lands; the process dies before reprocessing runs *)
  D.crash (L.wal_device log) ~point:D.Clean_loss;
  let q2, r, undecodable = Audit_mgmt.Quarantine.open_durable (restart log) in
  check_bool "clean recovery" true (R.clean r);
  check_int "no codec mismatches" 0 undecodable;
  check_int "items survived the crash" 4 (Audit_mgmt.Quarantine.length q2);
  let fixed =
    Audit_mgmt.Mapping.create ~column_aliases:[ ("rolle", "authorized") ] ()
  in
  let site2 = Audit_mgmt.Site.create ~mapping:fixed ~quarantine:q2 ~name:"icu" () in
  let first = Audit_mgmt.Site.reprocess_quarantined site2 in
  check_int "reprocess ingests everything" 4 first.Audit_mgmt.Site.ingested;
  check_int "quarantine drained" 0 (Audit_mgmt.Quarantine.length q2);
  check_int "store holds the records" 4 (Audit_mgmt.Site.length site2);
  (* idempotence: a second reprocess is a no-op *)
  let second = Audit_mgmt.Site.reprocess_quarantined site2 in
  check_int "second reprocess ingests nothing" 0
    (Audit_mgmt.Site.summary_total second);
  (* and an upstream retry of the original batch at its original seqs is
     all duplicates — exactly-once across crash + reprocess *)
  let retry = Audit_mgmt.Site.ingest_raw_batch ~first_seq:0 site2 batch in
  check_int "retried batch is all duplicates" 4 retry.Audit_mgmt.Site.duplicates;
  check_int "store unchanged" 4 (Audit_mgmt.Site.length site2)

(* --- the shard manifest ---

   One checksummed catalogue frame behind a magic header.  The codec must
   round-trip arbitrary catalogues bit-for-bit, and any damage — a
   truncation at any byte, a flip of any bit — must make the whole image
   unreadable: the reader serves the full catalogue or none, never a
   half-catalogue.  Damage sweeps run per matrix seed so the device
   streams are stable across runs. *)

module M = Durable.Manifest

let gen_catalogue =
  let open QCheck2.Gen in
  let gen_shard =
    let* name = string_size ~gen:(char_range 'a' 'z') (int_range 0 12) in
    let* bucket = int_range 0 99 in
    let* lo = int_range 0 1_000_000 in
    let* span = int_range 0 10_000 in
    let* records = int_range 0 100_000 in
    let* chain = int_range 0 max_int in
    return
      { M.name = Printf.sprintf "%s#%d" name bucket;
        lo;
        hi = lo + span;
        records;
        chain;
      }
  in
  let* shards = list_size (int_range 0 12) gen_shard in
  return { M.shards }

let print_catalogue (t : M.t) = Format.asprintf "%a" M.pp t

let prop_manifest_roundtrip =
  QCheck2.Test.make ~name:"manifest encode/decode round-trip" ~count:300
    ~print:print_catalogue gen_catalogue (fun t -> M.decode (M.encode t) = Ok t)

(* A device holding [image] bytes, all synced — the state a manifest is
   read back from after a restart. *)
let device_of ~seed image =
  let dv = D.create ~seed () in
  D.append dv image;
  D.sync dv;
  dv

let sample_catalogue =
  { M.shards =
      [ { M.name = "icu#3"; lo = 30_000; hi = 39_992; records = 41; chain = 77 };
        { M.name = "icu#4"; lo = 40_001; hi = 49_871; records = 12; chain = 133 };
        { M.name = "lab#3"; lo = 30_505; hi = 39_404; records = 7; chain = 9 };
      ];
  }

let test_manifest_write_read seed () =
  let dv = D.create ~seed () in
  check_bool "empty device: no manifest yet" true (M.read dv = Ok None);
  M.write dv sample_catalogue;
  check_bool "reads back whole" true (M.read dv = Ok (Some sample_catalogue));
  (* a rewrite replaces, never appends *)
  let smaller = { M.shards = [ List.hd sample_catalogue.M.shards ] } in
  M.write dv smaller;
  check_bool "replaced wholesale" true (M.read dv = Ok (Some smaller))

(* Every proper truncation of the image is unreadable (the empty prefix is
   the one exception: indistinguishable from "no manifest yet", which is
   exactly the torn-write-from-scratch story — the store rebuilds). *)
let test_manifest_truncation seed () =
  let image = M.encode sample_catalogue in
  let n = String.length image in
  for cut = 0 to n - 1 do
    let dv = device_of ~seed (String.sub image 0 cut) in
    match M.read dv with
    | Ok None ->
      check_int "only the empty prefix reads as absent" 0 cut
    | Ok (Some _) ->
      Alcotest.failf "truncation at %d/%d served a catalogue" cut n
    | Error _ -> ()
  done

(* One flipped bit anywhere — magic, frame header, payload, CRC, chain —
   makes the image unreadable; the bit position is drawn per byte from the
   seeded stream so each matrix seed sweeps a different damage pattern. *)
let test_manifest_bitflip seed () =
  let image = M.encode sample_catalogue in
  let rng = Splitmix.create ~seed in
  String.iteri
    (fun pos _ ->
      let bit = Splitmix.int rng 8 in
      let dv = device_of ~seed image in
      D.corrupt_stable dv ~pos ~bit;
      match M.read dv with
      | Ok (Some t) when t = sample_catalogue ->
        (* the flip must actually change the byte, so this cannot happen *)
        Alcotest.failf "bit %d of byte %d read back as the intact catalogue" bit pos
      | Ok (Some _) -> Alcotest.failf "bit %d of byte %d served a catalogue" bit pos
      | Ok None -> Alcotest.failf "bit %d of byte %d read as an empty device" bit pos
      | Error _ -> ())
    image

let manifest_matrix name f =
  List.map
    (fun seed ->
      Alcotest.test_case (Printf.sprintf "%s, seed %d" name seed) `Quick (f seed))
    matrix_seeds

let () =
  Alcotest.run "durable"
    [ ("crash-matrix", matrix "prefix" test_crash_matrix);
      ("resume", matrix "resume" test_resume_after_crash);
      ("oracle", [ QCheck_alcotest.to_alcotest ~long:false prop_recovery_matches_oracle ]);
      ( "checkpoint",
        [ Alcotest.test_case "wal -> snapshot -> wal" `Quick test_wal_snapshot_wal_roundtrip;
          Alcotest.test_case "crash after checkpoint" `Quick test_crash_after_checkpoint;
          Alcotest.test_case "overlapping wal not duplicated" `Quick
            test_overlapping_wal_not_duplicated;
        ] );
      ( "quarantine",
        [ Alcotest.test_case "survives restart" `Quick test_quarantine_survives_restart;
          Alcotest.test_case "checkpoint + crash" `Quick test_quarantine_checkpoint_and_crash;
          Alcotest.test_case "clear is durable" `Quick test_quarantine_clear_is_durable;
        ] );
      ( "audit-store",
        [ Alcotest.test_case "survives restart" `Quick test_audit_store_survives_restart ] );
      ( "auto-checkpoint",
        [ Alcotest.test_case "records trigger" `Quick test_auto_checkpoint_records;
          Alcotest.test_case "bytes trigger" `Quick test_auto_checkpoint_bytes;
          Alcotest.test_case "audit store compaction" `Quick
            test_audit_store_auto_checkpoint;
          Alcotest.test_case "quarantine compaction" `Quick
            test_quarantine_auto_checkpoint;
        ] );
      ("auto-checkpoint-crash", matrix "auto-ckpt" test_crash_after_auto_checkpoint);
      ( "tamper",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "corrupted length, seed %d" seed)
              `Quick
              (test_tamper_corrupted_length seed))
          matrix_seeds
        @ [ Alcotest.test_case "mutilated header magic" `Quick test_tamper_header_magic;
            Alcotest.test_case "mutilated base chain" `Quick test_tamper_base_chain;
            Alcotest.test_case "header u64 high bits" `Quick test_tamper_header_high_bits;
            Alcotest.test_case "snapshot anchor mismatch" `Quick
              test_tamper_snapshot_anchor;
            Alcotest.test_case "chain hex round-trip" `Quick test_chain_hex_roundtrip;
            QCheck_alcotest.to_alcotest ~long:false prop_single_bitflip_caught;
          ] );
      ( "group-commit",
        Alcotest.test_case "coalesces into one device write" `Quick
          test_group_commit_coalesces
        :: Alcotest.test_case "switch-off flushes" `Quick test_group_commit_off_flushes
        :: Alcotest.test_case "mode survives checkpoint" `Quick
             test_group_commit_survives_checkpoint
        :: matrix "gc" test_group_commit_crash_matrix );
      ( "reprocess",
        [ Alcotest.test_case "idempotent across crash before reprocess" `Quick
            test_quarantine_reprocess_idempotent_across_crash ] );
      ( "manifest",
        (QCheck_alcotest.to_alcotest ~long:false prop_manifest_roundtrip
         :: manifest_matrix "write/read/replace" test_manifest_write_read)
        @ manifest_matrix "every truncation unreadable" test_manifest_truncation
        @ manifest_matrix "every bit flip unreadable" test_manifest_bitflip );
      ( "system",
        [ Alcotest.test_case "dropped tail -> lower bound" `Quick
            test_system_recovery_and_lower_bound;
          Alcotest.test_case "tamper -> lower bound" `Quick
            test_system_tamper_forces_lower_bound;
          Alcotest.test_case "adaptive threshold" `Quick test_adaptive_threshold_scales;
        ] );
    ]
