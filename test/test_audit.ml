(* Tests for Audit Management: schema mappings, sites, the consolidated
   federation view and the audit-to-policy bridge. *)

open Audit_mgmt

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let entry ?(time = 1) ?(op = Hdb.Audit_schema.Allow) ?(user = "u") ?(data = "referral")
    ?(purpose = "treatment") ?(authorized = "nurse")
    ?(status = Hdb.Audit_schema.Regular) () =
  Hdb.Audit_schema.entry ~time ~op ~user ~data ~purpose ~authorized ~status

(* --- to_policy --- *)

let test_rule_of_entry () =
  let rule = To_policy.rule_of_entry (entry ~time:3 ~status:Hdb.Audit_schema.Exception_based ()) in
  check_int "seven terms" 7 (Prima_core.Rule.cardinality rule);
  Alcotest.(check (option string)) "status" (Some "0")
    (Prima_core.Rule.find_attr rule "status")

let test_entry_of_rule_roundtrip () =
  let e = entry ~time:9 ~op:Hdb.Audit_schema.Disallow () in
  let rule = To_policy.rule_of_entry e in
  match To_policy.entry_of_rule rule with
  | Some e' -> check_bool "roundtrip" true (Hdb.Audit_schema.equal e e')
  | None -> Alcotest.fail "roundtrip failed"

let test_entry_of_rule_partial () =
  let rule = Prima_core.Rule.of_assoc [ ("data", "x") ] in
  check_bool "partial rejected" true (To_policy.entry_of_rule rule = None)

let test_pattern_rule_projection () =
  let rule = To_policy.pattern_rule_of_entry (entry ()) in
  check_int "three terms" 3 (Prima_core.Rule.cardinality rule)

(* --- mapping --- *)

let legacy_mapping () =
  Mapping.create
    ~column_aliases:[ ("ts", "time"); ("action", "op"); ("who", "user"); ("category", "data");
                      ("reason", "purpose"); ("role", "authorized"); ("mode", "status") ]
    ~value_synonyms:[ (("authorized", "rn"), "nurse"); (("data", "xray"), "x-ray") ]
    ()

let legacy_row =
  [ ("ts", "17"); ("action", "GRANTED"); ("who", "Olga"); ("category", "XRAY");
    ("reason", "Treatment"); ("role", "RN"); ("mode", "BTG") ]

let test_mapping_normalises () =
  let e = Mapping.apply (legacy_mapping ()) legacy_row in
  check_int "time" 17 e.Hdb.Audit_schema.time;
  check_bool "granted is allow" true (e.Hdb.Audit_schema.op = Hdb.Audit_schema.Allow);
  check_string "user lowercased" "olga" e.Hdb.Audit_schema.user;
  check_string "synonym applied" "x-ray" e.Hdb.Audit_schema.data;
  check_string "role synonym" "nurse" e.Hdb.Audit_schema.authorized;
  check_bool "btg is exception" true
    (e.Hdb.Audit_schema.status = Hdb.Audit_schema.Exception_based)

let test_mapping_missing_attribute () =
  let incomplete = List.filter (fun (k, _) -> k <> "who") legacy_row in
  Alcotest.check_raises "missing" (Mapping.Unmappable "missing attribute user") (fun () ->
      ignore (Mapping.apply (legacy_mapping ()) incomplete))

let test_mapping_bad_time () =
  let bad = ("ts", "yesterday") :: List.remove_assoc "ts" legacy_row in
  Alcotest.check_raises "bad time" (Mapping.Unmappable "cannot read time value \"yesterday\"")
    (fun () -> ignore (Mapping.apply (legacy_mapping ()) bad))

(* Regression: synonym keys are matched case-insensitively.  Before the
   fix, [create] stored keys verbatim while [apply] lowercased raw values
   first, so a synonym registered as ("RN" -> "nurse") never matched. *)
let test_mapping_synonym_case_insensitive () =
  let mapping =
    Mapping.create
      ~value_synonyms:[ (("authorized", "RN"), "nurse"); (("Data", "XRAY"), "x-ray") ]
      ()
  in
  check_string "uppercase synonym key matches" "nurse"
    (Mapping.standard_value mapping ~attr:"authorized" "rn");
  check_string "attr case irrelevant" "x-ray" (Mapping.standard_value mapping ~attr:"data" "xray");
  let raw =
    [ ("time", "3"); ("op", "1"); ("user", "u"); ("data", "XRAY");
      ("purpose", "treatment"); ("authorized", "RN"); ("status", "1") ]
  in
  let e = Mapping.apply mapping raw in
  check_string "synonym applied end-to-end" "nurse" e.Hdb.Audit_schema.authorized;
  check_string "data synonym applied end-to-end" "x-ray" e.Hdb.Audit_schema.data

let test_mapping_identity () =
  let raw =
    [ ("time", "5"); ("op", "1"); ("user", "u"); ("data", "referral");
      ("purpose", "treatment"); ("authorized", "nurse"); ("status", "1") ]
  in
  let e = Mapping.apply Mapping.identity raw in
  check_int "time" 5 e.Hdb.Audit_schema.time

(* --- site --- *)

let test_site_ingest () =
  let site = Site.create ~name:"icu" () in
  Site.ingest_entries site [ entry ~time:1 (); entry ~time:2 () ];
  check_int "two" 2 (Site.length site);
  check_string "name" "icu" (Site.name site)

let test_site_legacy_raw () =
  let site = Site.create ~mapping:(legacy_mapping ()) ~name:"legacy" () in
  Site.ingest_raw site legacy_row;
  check_int "ingested" 1 (Site.length site);
  check_string "normalised" "nurse" (List.hd (Site.entries site)).Hdb.Audit_schema.authorized

(* A raw row in the standard schema; [broken] fields are unreadable. *)
let raw_row ?(time = "1") ?(op = "1") ?(user = "u") () =
  [ ("time", time); ("op", op); ("user", user); ("data", "referral");
    ("purpose", "treatment"); ("authorized", "nurse"); ("status", "1") ]

(* Atomic-per-record: a malformed record mid-batch no longer aborts after
   partial ingestion — records before AND after it are ingested, the bad
   one is quarantined. *)
let test_site_batch_atomic_per_record () =
  let site = Site.create ~name:"icu" () in
  let summary =
    Site.ingest_raw_all site
      [ raw_row ~time:"1" (); raw_row ~time:"bogus" (); raw_row ~time:"3" () ]
  in
  check_int "two ingested" 2 summary.Site.ingested;
  check_int "one quarantined" 1 summary.Site.quarantined;
  check_int "no duplicates" 0 summary.Site.duplicates;
  check_int "store has both good records" 2 (Site.length site);
  check_int "quarantine holds the bad one" 1 (Site.quarantined_count site);
  Alcotest.(check (list int)) "good records on both sides of the failure" [ 1; 3 ]
    (List.map (fun e -> e.Hdb.Audit_schema.time) (Site.entries site))

(* Exactly-once: re-submitting a batch at the same first_seq is a no-op for
   records already ingested or quarantined. *)
let test_site_batch_exactly_once () =
  let site = Site.create ~name:"icu" () in
  let batch = [ raw_row ~time:"1" (); raw_row ~time:"bogus" (); raw_row ~time:"3" () ] in
  let first = Site.ingest_raw_batch ~first_seq:0 site batch in
  check_int "first pass ingests" 2 first.Site.ingested;
  let retry = Site.ingest_raw_batch ~first_seq:0 site batch in
  check_int "retry ingests nothing" 0 retry.Site.ingested;
  check_int "retry quarantines nothing new" 0 retry.Site.quarantined;
  check_int "all three are duplicates" 3 retry.Site.duplicates;
  check_int "store unchanged" 2 (Site.length site);
  check_int "quarantine unchanged" 1 (Site.quarantined_count site)

(* Quarantine lifecycle: a mapping fix lets quarantined records reprocess,
   with their original seqs, and without double ingestion. *)
let test_site_reprocess_after_mapping_fix () =
  let site = Site.create ~name:"legacy" () in
  let bad = [ raw_row ~op:"granted-maybe" () ] in
  let summary = Site.ingest_raw_all site bad in
  check_int "quarantined" 1 summary.Site.quarantined;
  (* Still broken: reprocessing returns it to quarantine. *)
  let stuck = Site.reprocess_quarantined site in
  check_int "still quarantined" 1 stuck.Site.quarantined;
  check_int "store still empty" 0 (Site.length site);
  (* Fix the mapping, then reprocess. *)
  Site.set_mapping site
    (Mapping.create ~value_synonyms:[ (("op", "granted-maybe"), "granted") ] ());
  let fixed = Site.reprocess_quarantined site in
  check_int "reprocessed" 1 fixed.Site.ingested;
  check_int "quarantine drained" 0 (Site.quarantined_count site);
  check_int "ingested once" 1 (Site.length site);
  (* A second reprocess or batch retry cannot double-ingest. *)
  let again = Site.reprocess_quarantined site in
  check_int "nothing left" 0 (Site.summary_total again);
  let replay = Site.ingest_raw_batch ~first_seq:0 site bad in
  check_int "replay is a duplicate" 1 replay.Site.duplicates;
  check_int "still ingested once" 1 (Site.length site)

(* --- federation --- *)

let test_federation_merges_by_time () =
  let a = Site.create ~name:"a" () in
  let b = Site.create ~name:"b" () in
  Site.ingest_entries a [ entry ~time:1 ~user:"a1" (); entry ~time:5 ~user:"a5" () ];
  Site.ingest_entries b [ entry ~time:2 ~user:"b2" (); entry ~time:4 ~user:"b4" () ];
  let fed = Federation.of_sites [ a; b ] in
  let merged = Federation.consolidated fed in
  Alcotest.(check (list string)) "time order" [ "a1"; "b2"; "b4"; "a5" ]
    (List.map (fun e -> e.Hdb.Audit_schema.user) merged)

let test_federation_tie_stability () =
  let a = Site.create ~name:"a" () in
  let b = Site.create ~name:"b" () in
  Site.ingest_entries a [ entry ~time:3 ~user:"first" () ];
  Site.ingest_entries b [ entry ~time:3 ~user:"second" () ];
  let merged = Federation.consolidated (Federation.of_sites [ a; b ]) in
  Alcotest.(check (list string)) "site order on ties" [ "first"; "second" ]
    (List.map (fun e -> e.Hdb.Audit_schema.user) merged)

let test_federation_unsorted_site () =
  let a = Site.create ~name:"a" () in
  Site.ingest_entries a [ entry ~time:9 (); entry ~time:1 (); entry ~time:5 () ];
  let merged = Federation.consolidated (Federation.of_sites [ a ]) in
  Alcotest.(check (list int)) "sorted defensively" [ 1; 5; 9 ]
    (List.map (fun e -> e.Hdb.Audit_schema.time) merged)

let test_federation_window () =
  let a = Site.create ~name:"a" () in
  Site.ingest_entries a (List.init 10 (fun i -> entry ~time:(i + 1) ()));
  let fed = Federation.of_sites [ a ] in
  check_int "window" 4 (List.length (Federation.window fed ~time_from:3 ~time_to:6))

let test_federation_empty () =
  let fed = Federation.create () in
  check_int "no entries" 0 (List.length (Federation.consolidated fed));
  check_int "empty policy" 0 (Prima_core.Policy.cardinality (Federation.to_policy fed))

let test_federation_window_boundaries () =
  let a = Site.create ~name:"a" () in
  Site.ingest_entries a [ entry ~time:1 (); entry ~time:5 (); entry ~time:9 () ];
  let fed = Federation.of_sites [ a ] in
  check_int "inclusive both ends" 3 (List.length (Federation.window fed ~time_from:1 ~time_to:9));
  check_int "point window" 1 (List.length (Federation.window fed ~time_from:5 ~time_to:5));
  check_int "empty window" 0 (List.length (Federation.window fed ~time_from:6 ~time_to:4))

let test_federation_to_policy () =
  let a = Site.create ~name:"a" () in
  Site.ingest_entries a [ entry ~time:1 (); entry ~time:2 () ];
  let p = Federation.to_policy (Federation.of_sites [ a ]) in
  check_int "two rules" 2 (Prima_core.Policy.cardinality p);
  check_bool "audit source" true (Prima_core.Policy.source p = Prima_core.Policy.Audit_log)

let test_federation_totals () =
  let a = Site.create ~name:"a" () in
  let b = Site.create ~name:"b" () in
  Site.ingest_entries a [ entry () ];
  Site.ingest_entries b [ entry (); entry ~time:2 () ];
  let fed = Federation.create () in
  Federation.add_site fed a;
  Federation.add_site fed b;
  check_int "three total" 3 (Federation.total_entries fed);
  check_bool "lookup" true (Option.is_some (Federation.site fed "b"));
  check_bool "missing" true (Federation.site fed "zzz" = None)

(* The legacy-site end-to-end: raw rows through mapping, federation, policy,
   refinement sees them like native entries. *)
let test_federation_heterogeneous_end_to_end () =
  let modern = Site.create ~name:"modern" () in
  Site.ingest_entries modern
    (List.filteri (fun i _ -> i < 5) (Workload.Scenario.table1_entries ()));
  let legacy = Site.create ~mapping:(legacy_mapping ()) ~name:"legacy" () in
  List.iteri
    (fun i e ->
      Site.ingest_raw legacy
        [ ("ts", string_of_int e.Hdb.Audit_schema.time);
          ("action", if e.Hdb.Audit_schema.op = Hdb.Audit_schema.Allow then "granted" else "denied");
          ("who", e.Hdb.Audit_schema.user);
          ("category", e.Hdb.Audit_schema.data);
          ("reason", e.Hdb.Audit_schema.purpose);
          ("role", if i mod 2 = 0 then "RN" else e.Hdb.Audit_schema.authorized);
          ("mode",
           if e.Hdb.Audit_schema.status = Hdb.Audit_schema.Regular then "regular" else "btg");
        ])
    (List.filteri (fun i _ -> i >= 5) (Workload.Scenario.table1_entries ()));
  let fed = Federation.of_sites [ modern; legacy ] in
  check_int "all ten consolidated" 10 (List.length (Federation.consolidated fed));
  let p_al = Federation.to_policy fed in
  check_int "ten rules" 10 (Prima_core.Policy.cardinality p_al)

(* --- heap merge parity --- *)

(* The min-heap k-way merge must agree exactly — order included — with
   stable_sort over the site-order concatenation: same timestamps merge in
   site order, and each site's own order is preserved. *)
let prop_heap_merge_parity =
  QCheck2.Test.make ~name:"heap merge = stable sort of concatenation" ~count:200
    ~print:(fun sites -> Printf.sprintf "<%d sites>" (List.length sites))
    QCheck2.Gen.(list_size (int_range 0 5) (list_size (int_range 0 20) (int_range 0 8)))
    (fun site_times ->
      let sites =
        List.mapi
          (fun i times ->
            let site = Site.create ~name:(Printf.sprintf "s%d" i) () in
            List.iteri
              (fun j time ->
                (* The user tags (site, position) so order is observable. *)
                Site.ingest_entry site (entry ~time ~user:(Printf.sprintf "u%d-%d" i j) ()))
              times;
            site)
          site_times
      in
      let merged = Federation.consolidated (Federation.of_sites sites) in
      let expected =
        List.stable_sort
          (fun a b -> Int.compare a.Hdb.Audit_schema.time b.Hdb.Audit_schema.time)
          (List.concat_map
             (fun site ->
               List.stable_sort
                 (fun a b -> Int.compare a.Hdb.Audit_schema.time b.Hdb.Audit_schema.time)
                 (Site.entries site))
             sites)
      in
      List.map (fun e -> e.Hdb.Audit_schema.user) merged
      = List.map (fun e -> e.Hdb.Audit_schema.user) expected)

(* --- the tournament merge itself --- *)

let test_tournament_basics () =
  check_bool "no streams" true (Tournament.merge ~key:(fun x -> x) [] = []);
  check_bool "all empty streams" true
    (Tournament.merge ~key:(fun x -> x) [ []; []; [] ] = []);
  check_bool "single stream passes through" true
    (Tournament.merge ~key:(fun x -> x) [ [ 1; 2; 3 ] ] = [ 1; 2; 3 ]);
  (* non-power-of-two cursor counts exercise the padded leaves *)
  check_bool "three streams interleave" true
    (Tournament.merge ~key:(fun x -> x) [ [ 1; 4; 7 ]; [ 2; 5 ]; [ 3; 6; 9 ] ]
    = [ 1; 2; 3; 4; 5; 6; 7; 9 ]);
  check_bool "five streams, uneven lengths" true
    (Tournament.merge ~key:(fun x -> x) [ [ 10 ]; []; [ 1; 2; 3 ]; [ 2 ]; [ 0; 11 ] ]
    = [ 0; 1; 2; 2; 3; 10; 11 ])

(* Equal keys resolve by cursor priority, not arrival order: the archive
   hands the merge cursors in site order regardless of shard layout. *)
let test_tournament_priority_ties () =
  let a = Tournament.cursor ~priority:2 [ (1, "low") ] in
  let b = Tournament.cursor ~priority:1 [ (1, "high") ] in
  check_bool "lower priority value wins the tie" true
    (Tournament.merge_cursors ~key:fst [ a; b ] = [ (1, "high"); (1, "low") ])

(* Eleven cursors push the bracket past one 8-leaf level, and every
   cursor carries the same four keys: each key's run must come out in
   exact stream order, with every stream's own order intact. *)
let test_tournament_many_cursors_duplicate_keys () =
  let streams =
    List.init 11 (fun i -> List.init 4 (fun j -> (j, Printf.sprintf "s%d-%d" i j)))
  in
  let expected =
    List.concat_map
      (fun j -> List.init 11 (fun i -> (j, Printf.sprintf "s%d-%d" i j)))
      [ 0; 1; 2; 3 ]
  in
  check_bool "ties resolve in stream order across 11 cursors" true
    (Tournament.merge ~key:fst streams = expected)

(* Up to 12 cursors over a 4-value key range (heavy duplication): the
   tournament must agree, order included, with a stable sort of the
   stream-order concatenation — the same oracle the federation-level
   heap-parity property uses, here against the merge primitive itself. *)
let prop_tournament_stable_tie_break =
  QCheck2.Test.make ~name:"tournament merge = stable sort, >8 cursors, duplicate keys"
    ~count:300
    ~print:(fun streams -> Printf.sprintf "<%d streams>" (List.length streams))
    QCheck2.Gen.(list_size (int_range 9 12) (list_size (int_range 0 15) (int_range 0 3)))
    (fun keystreams ->
      let streams =
        List.mapi
          (fun i keys ->
            List.mapi
              (fun j key -> (key, (i, j)))
              (List.sort Int.compare keys))
          keystreams
      in
      let merged = Tournament.merge ~key:fst streams in
      let expected =
        List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) (List.concat streams)
      in
      merged = expected)

(* --- per-site durable WAL: crash, local replay, exactly-once --- *)

let site_log seed = Durable.Log.create ~seed ()

(* A site on its own WAL: kill it mid-stream, reopen from the devices
   alone, and the store, the exactly-once ledger and the quarantine are
   all back without re-ingesting from the source. *)
let test_site_wal_crash_replay () =
  let log = site_log 7 in
  let site = Site.create ~name:"icu" () in
  Site.attach_wal site log;
  Site.ingest_entries site [ entry ~time:1 ~user:"a" (); entry ~time:2 ~user:"b" () ];
  ignore (Site.ingest_raw_all site [ raw_row ~time:"3" (); raw_row ~time:"nope" () ]);
  Site.sync_wal site;
  (* unsynced tail: lost by the clean power cut below *)
  Site.ingest_entry site (entry ~time:9 ~user:"late" ());
  let wal = Durable.Log.wal_device log and snap = Durable.Log.snapshot_device log in
  Durable.Device.crash wal ~point:Durable.Device.Clean_loss;
  Durable.Device.crash snap ~point:Durable.Device.Clean_loss;
  let site', r, undecodable =
    Site.open_durable ~name:"icu" (Durable.Log.of_devices ~wal ~snapshot:snap)
  in
  check_bool "clean recovery" true (Durable.Recovery.clean r);
  check_int "no codec mismatches" 0 undecodable;
  check_int "synced entries replayed locally" 3 (Site.length site');
  check_int "quarantine replayed locally" 1 (Site.quarantined_count site');
  check_bool "clean loss of the unsynced tail is not degradation" false
    (Site.durably_degraded site');
  (* the ledger survived: a full upstream retry of the raw batch is all
     duplicates — exactly-once across the crash *)
  let retry =
    Site.ingest_raw_batch ~first_seq:0 site' [ raw_row ~time:"3" (); raw_row ~time:"nope" () ]
  in
  check_int "retried batch all duplicates" 2 retry.Site.duplicates;
  check_int "store unchanged" 3 (Site.length site');
  (* the unsynced tail is re-sent by the feed, exactly like the clinical path *)
  Site.ingest_entry site' (entry ~time:9 ~user:"late" ());
  check_int "tail replayed" 4 (Site.length site')

(* A torn WAL tail marks the site durably degraded until the feed
   acknowledges the replay; checkpointing compacts the op history. *)
let test_site_wal_torn_tail_degrades () =
  let log = site_log 11 in
  let site = Site.create ~name:"lab" () in
  Site.attach_wal site log;
  Site.ingest_entries site (List.init 6 (fun i -> entry ~time:(i + 1) ()));
  Site.sync_wal site;
  Site.ingest_entries site [ entry ~time:7 (); entry ~time:8 () ];
  let wal = Durable.Log.wal_device log and snap = Durable.Log.snapshot_device log in
  Durable.Device.crash wal ~point:Durable.Device.Torn_tail;
  Durable.Device.crash snap ~point:Durable.Device.Clean_loss;
  let site', r, _ =
    Site.open_durable ~name:"lab" (Durable.Log.of_devices ~wal ~snapshot:snap)
  in
  check_bool "synced prefix survived" true (Site.length site' >= 6);
  if Durable.Recovery.dropped_tail r then begin
    check_bool "torn tail degrades the site" true (Site.durably_degraded site');
    Site.ingest_entries site'
      (List.init (8 - Site.length site') (fun i -> entry ~time:(Site.length site' + i + 1) ()));
    Site.acknowledge_replay site';
    check_bool "replay acknowledged" false (Site.durably_degraded site')
  end;
  check_int "whole stream back" 8 (Site.length site')

(* Checkpoint compacts: after a checkpoint and a crash, recovery comes
   back from the snapshot image alone. *)
let test_site_wal_checkpoint_then_crash () =
  let log = site_log 13 in
  let site = Site.create ~name:"rad" () in
  Site.attach_wal site log;
  Site.ingest_entries site (List.init 5 (fun i -> entry ~time:(i + 1) ()));
  ignore (Site.ingest_raw_all site [ raw_row ~time:"nope" () ]);
  Site.checkpoint_wal site;
  let wal = Durable.Log.wal_device log and snap = Durable.Log.snapshot_device log in
  Durable.Device.crash wal ~point:Durable.Device.Clean_loss;
  Durable.Device.crash snap ~point:Durable.Device.Clean_loss;
  let site', r, _ =
    Site.open_durable ~name:"rad" (Durable.Log.of_devices ~wal ~snapshot:snap)
  in
  check_bool "clean recovery from the snapshot" true (Durable.Recovery.clean r);
  check_int "entries back" 5 (Site.length site');
  check_int "quarantine back" 1 (Site.quarantined_count site');
  check_int "sequence floor preserved" (Site.next_seq site) (Site.next_seq site')

(* --- consolidated_result health --- *)

(* Reliable sites: the production path is equivalent to the direct view and
   the health report accounts for every record with completeness 1. *)
let test_consolidated_result_reliable () =
  let a = Site.create ~name:"a" () in
  let b = Site.create ~name:"b" () in
  Site.ingest_entries a [ entry ~time:1 (); entry ~time:4 () ];
  Site.ingest_entries b [ entry ~time:2 (); entry ~time:3 () ];
  let fed = Federation.of_sites [ a; b ] in
  let result = Federation.consolidated_result fed in
  check_int "all delivered" 4 (List.length result.Federation.entries);
  let h = result.Federation.health in
  check_bool "complete" true (Audit_mgmt.Health.complete h);
  check_int "total accounts for input" 4 h.Audit_mgmt.Health.total;
  check_int "nothing quarantined" 0 h.Audit_mgmt.Health.quarantined;
  check_int "nothing stranded" 0 h.Audit_mgmt.Health.skipped_entries;
  check_bool "same as direct view" true
    (List.for_all2 Hdb.Audit_schema.equal result.Federation.entries (Federation.consolidated fed))

(* A site's ingest quarantine shows up in the health accounting. *)
let test_consolidated_result_counts_ingest_quarantine () =
  let a = Site.create ~name:"a" () in
  ignore (Site.ingest_raw_all a [ raw_row ~time:"1" (); raw_row ~time:"nope" () ]);
  let fed = Federation.of_sites [ a ] in
  let h = (Federation.consolidated_result fed).Federation.health in
  check_int "delivered" 1 h.Audit_mgmt.Health.delivered;
  check_int "quarantined counted" 1 h.Audit_mgmt.Health.quarantined;
  check_int "total = delivered + quarantined" 2 h.Audit_mgmt.Health.total;
  check_bool "partial" true (h.Audit_mgmt.Health.completeness < 1.0)

let () =
  Alcotest.run "audit"
    [ ( "to-policy",
        [ Alcotest.test_case "rule of entry" `Quick test_rule_of_entry;
          Alcotest.test_case "roundtrip" `Quick test_entry_of_rule_roundtrip;
          Alcotest.test_case "partial rejected" `Quick test_entry_of_rule_partial;
          Alcotest.test_case "pattern projection" `Quick test_pattern_rule_projection;
        ] );
      ( "mapping",
        [ Alcotest.test_case "normalises" `Quick test_mapping_normalises;
          Alcotest.test_case "missing attribute" `Quick test_mapping_missing_attribute;
          Alcotest.test_case "bad time" `Quick test_mapping_bad_time;
          Alcotest.test_case "identity" `Quick test_mapping_identity;
          Alcotest.test_case "synonym case-insensitive" `Quick
            test_mapping_synonym_case_insensitive;
        ] );
      ( "site",
        [ Alcotest.test_case "ingest" `Quick test_site_ingest;
          Alcotest.test_case "legacy raw" `Quick test_site_legacy_raw;
          Alcotest.test_case "batch atomic per record" `Quick test_site_batch_atomic_per_record;
          Alcotest.test_case "batch exactly once" `Quick test_site_batch_exactly_once;
          Alcotest.test_case "reprocess after mapping fix" `Quick
            test_site_reprocess_after_mapping_fix;
        ] );
      ( "federation",
        [ Alcotest.test_case "merge by time" `Quick test_federation_merges_by_time;
          Alcotest.test_case "tie stability" `Quick test_federation_tie_stability;
          Alcotest.test_case "unsorted site" `Quick test_federation_unsorted_site;
          Alcotest.test_case "window" `Quick test_federation_window;
          Alcotest.test_case "empty" `Quick test_federation_empty;
          Alcotest.test_case "window boundaries" `Quick test_federation_window_boundaries;
          Alcotest.test_case "to policy" `Quick test_federation_to_policy;
          Alcotest.test_case "totals/lookup" `Quick test_federation_totals;
          Alcotest.test_case "heterogeneous end-to-end" `Quick
            test_federation_heterogeneous_end_to_end;
          QCheck_alcotest.to_alcotest ~long:false prop_heap_merge_parity;
        ] );
      ( "tournament",
        [ Alcotest.test_case "degenerate shapes" `Quick test_tournament_basics;
          Alcotest.test_case "priority breaks ties" `Quick test_tournament_priority_ties;
          Alcotest.test_case "11 cursors, duplicate keys" `Quick
            test_tournament_many_cursors_duplicate_keys;
          QCheck_alcotest.to_alcotest ~long:false prop_tournament_stable_tie_break;
        ] );
      ( "site-wal",
        [ Alcotest.test_case "crash + local replay + exactly-once" `Quick
            test_site_wal_crash_replay;
          Alcotest.test_case "torn tail degrades until replay" `Quick
            test_site_wal_torn_tail_degrades;
          Alcotest.test_case "checkpoint then crash" `Quick
            test_site_wal_checkpoint_then_crash;
        ] );
      ( "consolidated-result",
        [ Alcotest.test_case "reliable sites" `Quick test_consolidated_result_reliable;
          Alcotest.test_case "ingest quarantine counted" `Quick
            test_consolidated_result_counts_ingest_quarantine;
        ] );
    ]
