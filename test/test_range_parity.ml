(* Differential tests: the hash-backed Range and the memoized coverage
   fast paths must agree *exactly* with the seed's set-based implementation
   (kept as Prima_core.Range_reference) — on randomly generated
   vocabularies and policies (seeded via Workload.Prng, so failures are
   reproducible bit-for-bit), and on the paper's own Section 5 walkthrough
   (Table 1's 3/10) and Figure 3 (3/6). *)

module R = Prima_core.Rule
module P = Prima_core.Policy
module Range = Prima_core.Range
module Ref_range = Prima_core.Range_reference
module C = Prima_core.Coverage
module Prng = Workload.Prng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let check_rules label expected actual =
  Alcotest.(check (list string)) label
    (List.map R.to_string expected)
    (List.map R.to_string actual)

(* --- random vocabularies --- *)

(* A random taxonomy for [attr]: a tree of depth <= max_depth with 1-3
   children per interior node.  Values are globally unique within the
   taxonomy by construction ("<attr>0", "<attr>1", ...). *)
let random_taxonomy prng ~attr ~max_depth =
  let counter = ref 0 in
  let fresh () =
    let v = Printf.sprintf "%s%d" attr !counter in
    incr counter;
    v
  in
  let rec build depth =
    let value = fresh () in
    if depth >= max_depth || Prng.bool prng ~probability:0.3 then Vocabulary.Taxonomy.leaf value
    else begin
      let n = 1 + Prng.int prng 3 in
      Vocabulary.Taxonomy.node value (List.init n (fun _ -> build (depth + 1)))
    end
  in
  Vocabulary.Taxonomy.create ~attr (build 1)

let attrs = [ "data"; "purpose"; "authorized" ]

let random_vocab prng =
  Vocabulary.Vocab.of_taxonomies
    (List.map (fun attr -> random_taxonomy prng ~attr ~max_depth:(2 + Prng.int prng 3)) attrs)

(* --- random rules and policies --- *)

let random_rule prng vocab =
  let term attr =
    let values = Vocabulary.Taxonomy.all_values (Vocabulary.Vocab.taxonomy vocab attr) in
    (attr, Prng.pick prng values)
  in
  (* Keep at least one term; drop the others at random to vary cardinality
     (Definition 6 only intersects equal-cardinality rules). *)
  let kept =
    List.filter (fun _ -> Prng.bool prng ~probability:0.7) attrs
  in
  let kept = if kept = [] then [ List.nth attrs (Prng.int prng 3) ] else kept in
  R.of_assoc (List.map term kept)

let random_policy prng vocab ~max_size =
  P.make (List.init (Prng.int prng (max_size + 1)) (fun _ -> random_rule prng vocab))

(* --- the parity assertions for one (vocab, policies) draw --- *)

let ref_stats vocab ~p_x ~p_y : C.stats =
  (* Algorithm 1 recomputed on the reference representation. *)
  let range_x = Ref_range.of_policy vocab p_x in
  let range_y = Ref_range.of_policy vocab p_y in
  let overlap = Ref_range.cardinality (Ref_range.inter range_x range_y) in
  let denominator = Ref_range.cardinality range_y in
  { C.overlap;
    denominator;
    coverage =
      (if denominator = 0 then 1.0 else float_of_int overlap /. float_of_int denominator);
    uncovered = Ref_range.elements (Ref_range.diff range_y range_x);
  }

let ref_bag_stats vocab ~p_x ~p_y : C.stats =
  let range_x = Ref_range.of_policy vocab p_x in
  let rules = P.rules p_y in
  let covered, uncovered =
    List.partition (fun rule -> Ref_range.covers vocab range_x rule) rules
  in
  let overlap = List.length covered and denominator = List.length rules in
  { C.overlap;
    denominator;
    coverage =
      (if denominator = 0 then 1.0 else float_of_int overlap /. float_of_int denominator);
    uncovered;
  }

let assert_parity prng vocab =
  let p_a = random_policy prng vocab ~max_size:10 in
  let p_b = random_policy prng vocab ~max_size:10 in
  let hash_a = Range.of_policy vocab p_a and hash_b = Range.of_policy vocab p_b in
  let ref_a = Ref_range.of_policy vocab p_a and ref_b = Ref_range.of_policy vocab p_b in
  (* range construction *)
  check_rules "elements" (Ref_range.elements ref_a) (Range.elements hash_a);
  check_int "cardinality" (Ref_range.cardinality ref_a) (Range.cardinality hash_a);
  check_bool "is_empty" (Ref_range.is_empty ref_a) (Range.is_empty hash_a);
  (* algebra *)
  check_rules "inter"
    (Ref_range.elements (Ref_range.inter ref_a ref_b))
    (Range.elements (Range.inter hash_a hash_b));
  check_rules "diff"
    (Ref_range.elements (Ref_range.diff ref_a ref_b))
    (Range.elements (Range.diff hash_a hash_b));
  check_rules "union"
    (Ref_range.elements (Ref_range.union ref_a ref_b))
    (Range.elements (Range.union hash_a hash_b));
  check_bool "subset a b" (Ref_range.subset ref_a ref_b) (Range.subset hash_a hash_b);
  check_bool "subset inter"
    (Ref_range.subset (Ref_range.inter ref_a ref_b) ref_b)
    (Range.subset (Range.inter hash_a hash_b) hash_b);
  (* membership lifted to composite rules *)
  for _ = 1 to 10 do
    let probe = random_rule prng vocab in
    check_bool "covers" (Ref_range.covers vocab ref_a probe) (Range.covers vocab hash_a probe);
    check_bool "intersects" (Ref_range.intersects vocab ref_a probe)
      (Range.intersects vocab hash_a probe)
  done;
  (* the non-materialising counters *)
  check_int "cardinality_of_rules"
    (Ref_range.cardinality ref_b)
    (Range.cardinality_of_rules vocab (P.rules p_b));
  check_int "cardinality_of_rules ~within"
    (Ref_range.cardinality (Ref_range.inter ref_a ref_b))
    (Range.cardinality_of_rules ~within:hash_a vocab (P.rules p_b));
  (* coverage, both semantics, both paths *)
  let expected = ref_stats vocab ~p_x:p_a ~p_y:p_b in
  let got = C.compute vocab ~p_x:p_a ~p_y:p_b in
  check_int "coverage overlap" expected.C.overlap got.C.overlap;
  check_int "coverage denominator" expected.C.denominator got.C.denominator;
  Alcotest.(check (float 0.)) "coverage ratio" expected.C.coverage got.C.coverage;
  check_rules "coverage uncovered" expected.C.uncovered got.C.uncovered;
  let fast = C.compute ~uncovered:false vocab ~p_x:p_a ~p_y:p_b in
  check_int "fast overlap" expected.C.overlap fast.C.overlap;
  check_int "fast denominator" expected.C.denominator fast.C.denominator;
  check_rules "fast uncovered empty" [] fast.C.uncovered;
  let expected_bag = ref_bag_stats vocab ~p_x:p_a ~p_y:p_b in
  let got_bag = C.compute_bag vocab ~p_x:p_a ~p_y:p_b in
  check_int "bag overlap" expected_bag.C.overlap got_bag.C.overlap;
  check_int "bag denominator" expected_bag.C.denominator got_bag.C.denominator;
  check_rules "bag uncovered" expected_bag.C.uncovered got_bag.C.uncovered

let test_random_parity seed () =
  let prng = Prng.create ~seed in
  for _ = 1 to 25 do
    let vocab = random_vocab prng in
    assert_parity prng vocab
  done

(* --- the paper's Section 5 walkthrough on both implementations --- *)

let test_section5_walkthrough () =
  let vocab = Workload.Scenario.vocab () in
  let pattern_attrs = Vocabulary.Audit_attrs.pattern in
  let p_x = P.project (Workload.Scenario.policy_store ()) ~attrs:pattern_attrs in
  let p_y = P.project (Workload.Scenario.table1_audit_policy ()) ~attrs:pattern_attrs in
  let stats = C.compute_bag vocab ~p_x ~p_y in
  check_int "Table 1 overlap 3" 3 stats.C.overlap;
  check_int "Table 1 denominator 10" 10 stats.C.denominator;
  let expected = ref_bag_stats vocab ~p_x ~p_y in
  check_int "reference agrees (overlap)" expected.C.overlap stats.C.overlap;
  check_int "reference agrees (denominator)" expected.C.denominator stats.C.denominator;
  check_rules "reference agrees (uncovered)" expected.C.uncovered stats.C.uncovered

let test_figure3_walkthrough () =
  let vocab = Workload.Scenario.vocab () in
  let pattern_attrs = Vocabulary.Audit_attrs.pattern in
  let p_x = P.project (Workload.Scenario.policy_store ()) ~attrs:pattern_attrs in
  let p_y = P.project (Workload.Scenario.figure3_audit_policy ()) ~attrs:pattern_attrs in
  let stats = C.compute vocab ~p_x ~p_y in
  check_int "Figure 3 overlap 3" 3 stats.C.overlap;
  check_int "Figure 3 denominator 6" 6 stats.C.denominator;
  let expected = ref_stats vocab ~p_x ~p_y in
  check_rules "reference agrees (uncovered)" expected.C.uncovered stats.C.uncovered;
  let fast = C.compute ~uncovered:false vocab ~p_x ~p_y in
  check_int "fast path agrees" expected.C.overlap fast.C.overlap

(* Re-running coverage against the *same* vocabulary must keep hitting the
   memo without drifting: same numbers on every repetition. *)
let test_memo_stability () =
  let prng = Prng.create ~seed:7 in
  let vocab = random_vocab prng in
  let p_x = random_policy prng vocab ~max_size:8 in
  let p_y = random_policy prng vocab ~max_size:8 in
  let first = C.compute vocab ~p_x ~p_y in
  for _ = 1 to 5 do
    let again = C.compute vocab ~p_x ~p_y in
    check_int "stable overlap" first.C.overlap again.C.overlap;
    check_int "stable denominator" first.C.denominator again.C.denominator;
    check_rules "stable uncovered" first.C.uncovered again.C.uncovered
  done;
  (* A *fresh* vocabulary over different trees must not see stale entries:
     recompute against a structurally different draw and cross-check the
     reference on it. *)
  let vocab' = random_vocab prng in
  let p = random_policy prng vocab' ~max_size:8 in
  check_int "fresh vocab, fresh grounding"
    (Ref_range.cardinality (Ref_range.of_policy vocab' p))
    (Range.cardinality (Range.of_policy vocab' p))

let () =
  Alcotest.run "range-parity"
    [ ( "random",
        [ Alcotest.test_case "seed 1" `Quick (test_random_parity 1);
          Alcotest.test_case "seed 42" `Quick (test_random_parity 42);
          Alcotest.test_case "seed 20260806" `Quick (test_random_parity 20260806);
        ] );
      ( "paper",
        [ Alcotest.test_case "Section 5: 3/10" `Quick test_section5_walkthrough;
          Alcotest.test_case "Figure 3: 3/6" `Quick test_figure3_walkthrough;
        ] );
      ( "memoization",
        [ Alcotest.test_case "stable across repeats" `Quick test_memo_stability ] );
    ]
