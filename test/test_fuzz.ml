(* The seeded SQL fuzzer as a regression test: three fixed seeds, ≥500
   statements each.  Passing means (a) no statement — however mangled —
   escaped the engine as anything but a typed error or a budget stop, and
   (b) every budgeted run that completed matched the ungoverned run
   bitwise.  Seeds are fixed so a failure reproduces exactly; `make fuzz`
   runs a bigger sweep. *)

module Fuzz = Relational.Sql_fuzz

let seeds = [ 1; 2; 3 ]

let test_seed seed () =
  let report = Fuzz.run ~queries:500 ~seed () in
  if not (Fuzz.passed report) then
    Alcotest.failf "fuzzer found violations:@.%a" Fuzz.pp report;
  Alcotest.(check bool) "covered at least the requested statements" true
    (report.Fuzz.queries >= 500);
  (* The generator must actually exercise every classification bucket —
     a fuzzer that never hits a budget or a typed error tests nothing. *)
  Alcotest.(check bool) "some statements succeed" true (report.Fuzz.ok > 0);
  Alcotest.(check bool) "some statements fail typed" true (report.Fuzz.typed_errors > 0);
  Alcotest.(check bool) "some budgets fire" true (report.Fuzz.budget_hits > 0);
  Alcotest.(check bool) "some partial runs truncate" true (report.Fuzz.truncated_runs > 0)

(* DML round-trips: every generated INSERT/UPDATE/DELETE runs on a governed
   engine and an ungoverned model engine; outcome classes must agree and the
   full table image must stay bitwise-identical after every statement. *)
let test_dml seed () =
  let report = Fuzz.run_dml ~ops:150 ~seed () in
  if not (Fuzz.passed report) then
    Alcotest.failf "DML fuzzer found violations:@.%a" Fuzz.pp report;
  Alcotest.(check bool) "some writes succeed" true (report.Fuzz.ok > 0);
  Alcotest.(check bool) "some writes fail typed" true (report.Fuzz.typed_errors > 0)

let () =
  Alcotest.run "fuzz"
    [ ( "seeded",
        List.map
          (fun seed ->
            Alcotest.test_case (Printf.sprintf "seed %d x 500" seed) `Quick (test_seed seed))
          seeds );
      ( "dml",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Printf.sprintf "seed %d x 150 writes vs model table" seed)
              `Quick (test_dml seed))
          seeds );
    ]
