(* Tests for the Hippocratic Database components: audit schema/store/logger/
   query, privacy rules, consent, and Active Enforcement query rewriting. *)

open Hdb

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let vocab = Vocabulary.Samples.figure1 ()

let entry ?(time = 1) ?(op = Audit_schema.Allow) ?(user = "u") ?(data = "referral")
    ?(purpose = "treatment") ?(authorized = "nurse") ?(status = Audit_schema.Regular) () =
  Audit_schema.entry ~time ~op ~user ~data ~purpose ~authorized ~status

(* --- audit schema --- *)

let test_schema_int_codes () =
  check_int "allow" 1 (Audit_schema.op_to_int Audit_schema.Allow);
  check_int "exception" 0 (Audit_schema.status_to_int Audit_schema.Exception_based);
  check_bool "roundtrip op" true (Audit_schema.op_of_int 0 = Audit_schema.Disallow);
  check_bool "roundtrip status" true (Audit_schema.status_of_int 1 = Audit_schema.Regular);
  Alcotest.check_raises "bad op" (Invalid_argument "Audit_schema.op_of_int: 7") (fun () ->
      ignore (Audit_schema.op_of_int 7))

let test_schema_row_roundtrip () =
  let e = entry ~time:42 ~status:Audit_schema.Exception_based () in
  check_bool "roundtrip" true (Audit_schema.equal e (Audit_schema.of_row (Audit_schema.to_row e)))

let test_schema_assoc () =
  let assoc = Audit_schema.to_assoc (entry ~time:3 ()) in
  check_bool "time" true (List.assoc "time" assoc = "3");
  check_bool "status" true (List.assoc "status" assoc = "1");
  check_int "seven attributes" 7 (List.length assoc)

(* --- audit store --- *)

let test_store_append_get () =
  let store = Audit_store.create () in
  List.iter (Audit_store.append store) [ entry ~time:1 (); entry ~time:2 ~user:"v" () ];
  check_int "length" 2 (Audit_store.length store);
  check_bool "get 1" true ((Audit_store.get store 1).Audit_schema.user = "v");
  Alcotest.check_raises "oob" (Invalid_argument "Audit_store.get: index out of bounds")
    (fun () -> ignore (Audit_store.get store 2))

let test_store_roundtrip_many () =
  let entries =
    List.init 500 (fun i ->
        entry ~time:i
          ~user:(Printf.sprintf "user-%d" (i mod 7))
          ~data:(if i mod 2 = 0 then "referral" else "psychiatry")
          ~op:(if i mod 11 = 0 then Audit_schema.Disallow else Audit_schema.Allow)
          ~status:(if i mod 3 = 0 then Audit_schema.Exception_based else Audit_schema.Regular)
          ())
  in
  let store = Audit_store.of_entries entries in
  check_int "length" 500 (Audit_store.length store);
  List.iteri
    (fun i e -> check_bool (Printf.sprintf "entry %d" i) true
        (Audit_schema.equal e (Audit_store.get store i)))
    entries

let test_store_compression_wins () =
  let entries = List.init 2000 (fun i -> entry ~time:i ~user:"recurring-user-name" ()) in
  let store = Audit_store.of_entries entries in
  check_bool "dictionary encoding smaller" true
    (Audit_store.encoded_bytes store < Audit_store.naive_bytes store)

let test_store_to_table () =
  let store = Audit_store.of_entries [ entry ~time:1 (); entry ~time:2 () ] in
  let db = Relational.Database.create () in
  let tbl = Audit_store.to_table store ~database:db ~table_name:"audit" in
  check_int "rows" 2 (Relational.Table.row_count tbl);
  (* idempotent re-export truncates *)
  let tbl2 = Audit_store.to_table store ~database:db ~table_name:"audit" in
  check_int "re-export" 2 (Relational.Table.row_count tbl2)

(* --- logger --- *)

let test_logger_clock () =
  let logger = Audit_logger.create () in
  let t1 = Audit_logger.tick logger in
  Audit_logger.log logger ~op:Audit_schema.Allow ~user:"u" ~data:"referral"
    ~purpose:"treatment" ~authorized:"nurse" ~status:Audit_schema.Regular;
  let t2 = Audit_logger.tick logger in
  check_bool "monotone" true (t2 > t1);
  check_int "logged" 1 (Audit_logger.length logger)

let test_logger_external_entry_advances_clock () =
  let logger = Audit_logger.create () in
  Audit_logger.log_entry logger (entry ~time:100 ());
  check_bool "clock jumped" true (Audit_logger.now logger > 100)

(* --- audit query --- *)

let make_store () =
  Audit_store.of_entries
    [ entry ~time:1 ~user:"mark" ~data:"referral" ~purpose:"registration"
        ~status:Audit_schema.Exception_based ();
      entry ~time:2 ~user:"tim" ~data:"referral" ();
      entry ~time:3 ~user:"mark" ~data:"psychiatry" ~op:Audit_schema.Disallow ();
      entry ~time:4 ~user:"mark" ~data:"referral" ~purpose:"registration"
        ~status:Audit_schema.Exception_based ();
    ]

let test_query_filters () =
  let store = make_store () in
  check_int "by user" 3
    (Audit_query.count store { Audit_query.any with Audit_query.user = Some "mark" });
  check_int "by time range" 2
    (Audit_query.count store
       { Audit_query.any with Audit_query.time_from = Some 2; time_to = Some 3 });
  check_int "exceptions" 2 (List.length (Audit_query.exceptions store));
  check_int "disclosures of referral" 3
    (List.length (Audit_query.disclosures store ~data:"referral" ()))

let test_query_summaries () =
  let store = make_store () in
  let by_user = Audit_query.by_user store in
  check_bool "mark tops" true (fst (List.hd by_user) = "mark");
  let by_pattern = Audit_query.by_pattern store in
  check_bool "pattern counted" true
    (List.assoc ("referral", "registration", "nurse") by_pattern = 2)

(* --- provenance extension --- *)

let prov_entry ?(parent = Some 7) ?(changed = [ "purpose"; "status" ]) ?(session = "s-1")
    ?(request = "rq-9") base =
  Audit_schema.with_provenance ~session ~request ?parent ~changed base

let test_provenance_wire_roundtrip () =
  let cases =
    [ entry () (* no provenance: wire ends after the core *)
    ; prov_entry (entry ~time:2 ())
    ; prov_entry ~parent:None ~changed:[] (entry ~time:3 ())
    ; prov_entry ~session:"s,with\nnasty\"bytes" ~request:"" (entry ~time:4 ~user:"o'brien" ())
    ]
  in
  List.iter
    (fun e ->
      match Audit_schema.of_wire (Audit_schema.to_wire e) with
      | Some e' -> check_bool "wire roundtrip preserves provenance" true (e = e')
      | None -> Alcotest.fail "wire roundtrip failed")
    cases;
  (* a truncated extension is a codec mismatch, not a silent core entry *)
  let wire = Audit_schema.to_wire (prov_entry (entry ())) in
  check_bool "truncated extension rejected" true
    (Audit_schema.of_wire (String.sub wire 0 (String.length wire - 3)) = None);
  check_bool "trailing garbage rejected" true (Audit_schema.of_wire (wire ^ "x") = None)

let test_provenance_integrity () =
  let e = prov_entry (entry ~time:5 ()) in
  check_bool "fresh provenance verifies" true (Audit_schema.verify_integrity e);
  check_bool "stored hash equals recomputation" true
    ((match e.Audit_schema.provenance with Some p -> p.Audit_schema.integrity | None -> -1)
    = Audit_schema.integrity_hash e);
  (* forging a core field after the fact breaks the per-record hash *)
  let forged = { e with Audit_schema.user = "evil" } in
  check_bool "forged core field detected" false (Audit_schema.verify_integrity forged);
  (* forging a provenance field does too *)
  let forged_prov =
    { e with
      Audit_schema.provenance =
        (match e.Audit_schema.provenance with
        | Some p -> Some { p with Audit_schema.request = "rq-other" }
        | None -> None);
    }
  in
  check_bool "forged provenance field detected" false
    (Audit_schema.verify_integrity forged_prov);
  check_bool "no provenance verifies vacuously" true
    (Audit_schema.verify_integrity (entry ()))

let test_provenance_store_roundtrip () =
  let entries =
    [ entry ~time:1 (); prov_entry (entry ~time:2 ()); prov_entry ~parent:None (entry ~time:3 ()) ]
  in
  let store = Audit_store.of_entries entries in
  List.iteri
    (fun i e ->
      check_bool (Printf.sprintf "entry %d intact" i) true (Audit_store.get store i = e))
    entries;
  (* and across the durable write-ahead path *)
  let log = Durable.Log.create ~seed:9 () in
  let store2 = Audit_store.create () in
  ignore (Audit_store.restore store2 log);
  List.iter (Audit_store.append store2) entries;
  Audit_store.sync store2;
  let store3, r, undecodable =
    Audit_store.open_durable
      (Durable.Log.of_devices
         ~wal:(Durable.Log.wal_device log)
         ~snapshot:(Durable.Log.snapshot_device log))
  in
  check_bool "clean recovery" true (Durable.Recovery.clean r);
  check_int "no codec mismatches" 0 undecodable;
  check_bool "provenance survives restart" true (Audit_store.to_list store3 = entries)

let test_query_provenance () =
  let store =
    Audit_store.of_entries
      [ entry ~time:1 ()
      ; prov_entry ~session:"s-1" ~request:"rq-1" (entry ~time:2 ())
      ; prov_entry ~session:"s-1" ~request:"rq-2" (entry ~time:3 ())
      ; prov_entry ~session:"s-2" ~request:"rq-1" (entry ~time:4 ())
      ]
  in
  check_int "by_session" 2 (List.length (Audit_query.by_session store "s-1"));
  check_int "by_request" 2 (List.length (Audit_query.by_request store "rq-1"));
  check_int "session filter skips bare entries" 1
    (Audit_query.count store
       { Audit_query.any with Audit_query.session = Some "s-2" });
  check_int "combined session+request" 1
    (Audit_query.count store
       { Audit_query.any with Audit_query.session = Some "s-1"; request = Some "rq-2" });
  check_int "untampered trail has no violations" 0
    (List.length (Audit_query.integrity_violations store));
  (* forge one record in place: the sweep names exactly it *)
  let forged = { (Audit_store.get store 2) with Audit_schema.data = "psychiatry" } in
  let store' =
    Audit_store.of_entries
      (List.mapi
         (fun i e -> if i = 2 then forged else e)
         (Audit_store.to_list store))
  in
  match Audit_query.integrity_violations store' with
  | [ e ] -> check_bool "the forged record" true (e = forged)
  | l -> Alcotest.failf "expected exactly the forged record, got %d" (List.length l)

(* --- privacy rules --- *)

let test_rules_closed_world () =
  let rules = Privacy_rules.create ~vocab in
  check_bool "default deny" false
    (Privacy_rules.permits rules ~data:"referral" ~purpose:"treatment" ~authorized:"nurse")

let test_rules_composite_covers () =
  let rules = Privacy_rules.create ~vocab in
  Privacy_rules.add rules ~data:"routine" ~purpose:"treatment" ~authorized:"nurse" ();
  check_bool "referral covered" true
    (Privacy_rules.permits rules ~data:"referral" ~purpose:"treatment" ~authorized:"nurse");
  check_bool "psychiatry not covered" false
    (Privacy_rules.permits rules ~data:"psychiatry" ~purpose:"treatment" ~authorized:"nurse")

let test_rules_deny_overrides () =
  let rules = Privacy_rules.create ~vocab in
  Privacy_rules.add rules ~data:"clinical" ~purpose:"treatment" ~authorized:"nurse" ();
  Privacy_rules.add rules ~effect:Privacy_rules.Forbid ~data:"sensitive" ~purpose:"treatment"
    ~authorized:"nurse" ();
  check_bool "routine ok" true
    (Privacy_rules.permits rules ~data:"referral" ~purpose:"treatment" ~authorized:"nurse");
  check_bool "sensitive forbidden" false
    (Privacy_rules.permits rules ~data:"psychiatry" ~purpose:"treatment" ~authorized:"nurse")

let test_rules_role_subsumption () =
  let rules = Privacy_rules.create ~vocab in
  Privacy_rules.add rules ~data:"psychiatry" ~purpose:"treatment" ~authorized:"physician" ();
  check_bool "psychiatrist is physician" true
    (Privacy_rules.permits rules ~data:"psychiatry" ~purpose:"treatment"
       ~authorized:"psychiatrist");
  check_bool "nurse is not" false
    (Privacy_rules.permits rules ~data:"psychiatry" ~purpose:"treatment" ~authorized:"nurse")

(* --- consent --- *)

let test_consent_default_and_optout () =
  let consent = Consent.create ~vocab () in
  check_bool "default opt-in" true
    (Consent.permits consent ~patient:"p1" ~purpose:"treatment" ~data:"referral");
  Consent.record consent ~patient:"p1" ~purpose:"administering-healthcare" ~data:"sensitive"
    Consent.Opt_out;
  check_bool "opted out subtree" false
    (Consent.permits consent ~patient:"p1" ~purpose:"billing" ~data:"psychiatry");
  check_bool "other data unaffected" true
    (Consent.permits consent ~patient:"p1" ~purpose:"billing" ~data:"referral");
  check_bool "other patient unaffected" true
    (Consent.permits consent ~patient:"p2" ~purpose:"billing" ~data:"psychiatry")

let test_consent_latest_wins () =
  let consent = Consent.create ~vocab () in
  Consent.record consent ~patient:"p1" ~purpose:"research" ~data:"data" Consent.Opt_out;
  Consent.record consent ~patient:"p1" ~purpose:"research" ~data:"data" Consent.Opt_in;
  check_bool "re-opt-in wins" true
    (Consent.permits consent ~patient:"p1" ~purpose:"research" ~data:"gender")

let test_consent_opted_out_patients () =
  let consent = Consent.create ~vocab () in
  Consent.record consent ~patient:"p2" ~purpose:"billing" ~data:"demographic" Consent.Opt_out;
  let out =
    Consent.opted_out_patients consent ~patients:[ "p1"; "p2"; "p3" ] ~purpose:"billing"
      ~categories:[ "address" ]
  in
  Alcotest.(check (list string)) "only p2" [ "p2" ] out

(* --- enforcement --- *)

let clinical_sql =
  [ "CREATE TABLE records (patient TEXT, referral TEXT, psychiatry TEXT, address TEXT)";
    "INSERT INTO records VALUES ('p1', 'r1', 'psy1', 'a1'), ('p2', 'r2', 'psy2', 'a2'), ('p3', 'r3', 'psy3', 'a3')";
  ]

let make_control () =
  let control = Control_center.create ~vocab () in
  List.iter (fun sql -> ignore (Control_center.admin_exec control sql)) clinical_sql;
  Control_center.set_patient_column control ~table:"records" ~column:"patient";
  Control_center.map_column control ~table:"records" ~column:"referral" ~category:"referral";
  Control_center.map_column control ~table:"records" ~column:"psychiatry" ~category:"psychiatry";
  Control_center.map_column control ~table:"records" ~column:"address" ~category:"address";
  Control_center.permit control ~data:"routine" ~purpose:"treatment" ~authorized:"nurse";
  Control_center.permit control ~data:"demographic" ~purpose:"billing" ~authorized:"clerk";
  control

let run_ok ?break_glass control ~user ~role ~purpose sql =
  match Control_center.query ?break_glass control ~user ~role ~purpose sql with
  | Ok outcome -> outcome
  | Error e -> Alcotest.failf "unexpected denial: %s" (Enforcement.error_to_string e)

let test_enforcement_permitted_query () =
  let control = make_control () in
  let outcome =
    run_ok control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT patient, referral FROM records"
  in
  check_int "three rows" 3 (List.length outcome.Enforcement.result.Relational.Executor.rows);
  check_bool "nothing masked" true (outcome.Enforcement.masked_columns = []);
  Alcotest.(check (list string)) "disclosed" [ "referral" ]
    outcome.Enforcement.disclosed_categories

let test_enforcement_masks_forbidden_column () =
  let control = make_control () in
  let outcome =
    run_ok control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT referral, psychiatry FROM records"
  in
  Alcotest.(check (list string)) "psychiatry masked" [ "psychiatry" ]
    outcome.Enforcement.masked_columns;
  let first = List.hd outcome.Enforcement.result.Relational.Executor.rows in
  check_bool "masked cell is NULL" true
    (Relational.Row.get first 1 = Relational.Value.Null);
  check_bool "permitted cell survives" true
    (Relational.Row.get first 0 = Relational.Value.Str "r1")

let test_enforcement_denies_all_forbidden () =
  let control = make_control () in
  match
    Control_center.query control ~user:"tim" ~role:"nurse" ~purpose:"billing"
      "SELECT psychiatry FROM records"
  with
  | Error (Enforcement.Denied _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Enforcement.error_to_string e)
  | Ok _ -> Alcotest.fail "expected denial"

let test_enforcement_denies_forbidden_predicate () =
  let control = make_control () in
  match
    Control_center.query control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT referral FROM records WHERE psychiatry = 'psy1'"
  with
  | Error (Enforcement.Denied _) -> ()
  | _ -> Alcotest.fail "expected denial for predicate leak"

let test_enforcement_consent_excludes_rows () =
  let control = make_control () in
  Control_center.opt_out control ~patient:"p2" ~purpose:"treatment" ~data:"referral";
  let outcome =
    run_ok control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT patient, referral FROM records"
  in
  check_int "two rows" 2 (List.length outcome.Enforcement.result.Relational.Executor.rows);
  Alcotest.(check (list string)) "p2 excluded" [ "p2" ] outcome.Enforcement.excluded_patients

let test_enforcement_break_glass () =
  let control = make_control () in
  let denied =
    Control_center.query control ~user:"sarah" ~role:"nurse" ~purpose:"treatment"
      "SELECT psychiatry FROM records"
  in
  check_bool "denied first" true (Result.is_error denied);
  let outcome =
    run_ok ~break_glass:true control ~user:"sarah" ~role:"nurse" ~purpose:"treatment"
      "SELECT psychiatry FROM records"
  in
  check_bool "break glass flagged" true outcome.Enforcement.break_glass;
  check_int "all rows returned" 3 (List.length outcome.Enforcement.result.Relational.Executor.rows);
  (* Both the denial and the BTG access are on the audit trail. *)
  let entries = Control_center.audit_entries control in
  check_bool "denial logged" true
    (List.exists (fun e -> e.Audit_schema.op = Audit_schema.Disallow) entries);
  check_bool "exception logged" true
    (List.exists (fun e -> e.Audit_schema.status = Audit_schema.Exception_based) entries)

let test_enforcement_audit_trail_regular () =
  let control = make_control () in
  let _ =
    run_ok control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT referral FROM records"
  in
  let entries = Control_center.audit_entries control in
  check_int "one entry" 1 (List.length entries);
  let e = List.hd entries in
  check_string "data" "referral" e.Audit_schema.data;
  check_string "purpose" "treatment" e.Audit_schema.purpose;
  check_string "authorized" "nurse" e.Audit_schema.authorized;
  check_bool "regular" true (e.Audit_schema.status = Audit_schema.Regular)

let test_enforcement_unmapped_table_passthrough () =
  let control = make_control () in
  ignore (Control_center.admin_exec control "CREATE TABLE config (k TEXT, v TEXT)");
  ignore (Control_center.admin_exec control "INSERT INTO config VALUES ('a', 'b')");
  let outcome =
    run_ok control ~user:"tim" ~role:"nurse" ~purpose:"treatment" "SELECT k FROM config"
  in
  check_int "passthrough" 1 (List.length outcome.Enforcement.result.Relational.Executor.rows);
  check_int "nothing audited" 0 (List.length (Control_center.audit_entries control))

let test_enforcement_rejects_non_select () =
  let control = make_control () in
  match
    Control_center.query control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "DELETE FROM records"
  with
  | Error (Enforcement.Unsupported _) -> ()
  | _ -> Alcotest.fail "expected unsupported"

let test_enforcement_aggregate_query () =
  let control = make_control () in
  (* Aggregating a permitted category is a disclosure of that category. *)
  let outcome =
    run_ok control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT COUNT(referral) FROM records"
  in
  Alcotest.(check (list string)) "category disclosed" [ "referral" ]
    outcome.Enforcement.disclosed_categories;
  (* COUNT star touches no mapped column: runs, discloses nothing. *)
  let outcome2 =
    run_ok control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT COUNT(*) FROM records"
  in
  check_bool "no categories" true (outcome2.Enforcement.disclosed_categories = []);
  (* Aggregating a forbidden category is masked like any projection. *)
  let outcome3 =
    run_ok control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT referral, COUNT(psychiatry) FROM records GROUP BY referral"
  in
  check_bool "psychiatry masked" true
    (List.mem "psychiatry" outcome3.Enforcement.masked_columns)

let test_enforcement_break_glass_flag_only_on_denial () =
  let control = make_control () in
  (* A permitted query with break_glass requested is just a regular query. *)
  let outcome =
    run_ok ~break_glass:true control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT referral FROM records"
  in
  check_bool "not flagged" false outcome.Enforcement.break_glass;
  let entries = Control_center.audit_entries control in
  check_bool "logged regular" true
    (List.for_all (fun e -> e.Audit_schema.status = Audit_schema.Regular) entries)

let test_enforcement_projection_and_predicate_same_column () =
  let control = make_control () in
  let outcome =
    run_ok control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT referral FROM records WHERE referral = 'r1'"
  in
  check_int "one row" 1 (List.length outcome.Enforcement.result.Relational.Executor.rows)

let test_consent_opt_out_default_store () =
  let consent = Consent.create ~default:Consent.Opt_out ~vocab () in
  check_bool "denied by default" false
    (Consent.permits consent ~patient:"p9" ~purpose:"treatment" ~data:"referral");
  Consent.record consent ~patient:"p9" ~purpose:"administering-healthcare" ~data:"clinical"
    Consent.Opt_in;
  check_bool "opt-in subtree grants" true
    (Consent.permits consent ~patient:"p9" ~purpose:"treatment" ~data:"referral");
  let out =
    Consent.opted_out_patients consent ~patients:[ "p9"; "p10" ] ~purpose:"treatment"
      ~categories:[ "referral" ]
  in
  Alcotest.(check (list string)) "p10 excluded by default" [ "p10" ] out

(* --- multi-table enforcement --- *)

let make_join_control () =
  let control = make_control () in
  List.iter
    (fun sql -> ignore (Control_center.admin_exec control sql))
    [ "CREATE TABLE visits (patient TEXT, ward TEXT, rx TEXT)";
      "INSERT INTO visits VALUES ('p1', 'icu', 'rxA'), ('p2', 'derm', 'rxB'), ('p3', 'icu', 'rxC')";
    ];
  Control_center.set_patient_column control ~table:"visits" ~column:"patient";
  Control_center.map_column control ~table:"visits" ~column:"rx" ~category:"prescription";
  control

let test_enforcement_join_masks_per_table () =
  let control = make_join_control () in
  let outcome =
    run_ok control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT records.referral, visits.rx, records.psychiatry FROM records JOIN visits ON records.patient = visits.patient"
  in
  Alcotest.(check (list string)) "psychiatry masked" [ "psychiatry" ]
    outcome.Enforcement.masked_columns;
  Alcotest.(check (list string)) "both permitted categories disclosed"
    [ "prescription"; "referral" ]
    (List.sort String.compare outcome.Enforcement.disclosed_categories);
  check_int "joined rows" 3 (List.length outcome.Enforcement.result.Relational.Executor.rows)

let test_enforcement_join_consent_per_table () =
  let control = make_join_control () in
  Control_center.opt_out control ~patient:"p2" ~purpose:"treatment" ~data:"prescription";
  let outcome =
    run_ok control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT v.rx FROM records JOIN visits AS v ON records.patient = v.patient"
  in
  Alcotest.(check (list string)) "p2 excluded" [ "p2" ] outcome.Enforcement.excluded_patients;
  check_int "two rows" 2 (List.length outcome.Enforcement.result.Relational.Executor.rows)

let test_enforcement_join_predicate_leak_denied () =
  let control = make_join_control () in
  match
    Control_center.query control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT visits.rx FROM records JOIN visits ON records.psychiatry = visits.ward"
  with
  | Error (Enforcement.Denied _) -> ()
  | _ -> Alcotest.fail "expected denial via join condition"

let test_enforcement_alias_supported () =
  let control = make_control () in
  let outcome =
    run_ok control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT r.referral FROM records AS r"
  in
  check_int "rows via alias" 3 (List.length outcome.Enforcement.result.Relational.Executor.rows);
  Alcotest.(check (list string)) "disclosed" [ "referral" ]
    outcome.Enforcement.disclosed_categories

let test_enforcement_rewritten_sql_inspectable () =
  let control = make_control () in
  Control_center.opt_out control ~patient:"p1" ~purpose:"treatment" ~data:"referral";
  let outcome =
    run_ok control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
      "SELECT referral, psychiatry FROM records"
  in
  let sql = outcome.Enforcement.rewritten_sql in
  let contains needle =
    let nh = String.length sql and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub sql i nn = needle || go (i + 1)) in
    go 0
  in
  check_bool "consent predicate" true (contains "NOT IN");
  check_bool "masking literal" true (contains "NULL AS psychiatry")

let () =
  Alcotest.run "hdb"
    [ ( "audit-schema",
        [ Alcotest.test_case "int codes" `Quick test_schema_int_codes;
          Alcotest.test_case "row roundtrip" `Quick test_schema_row_roundtrip;
          Alcotest.test_case "assoc" `Quick test_schema_assoc;
        ] );
      ( "audit-store",
        [ Alcotest.test_case "append/get" `Quick test_store_append_get;
          Alcotest.test_case "roundtrip many" `Quick test_store_roundtrip_many;
          Alcotest.test_case "compression wins" `Quick test_store_compression_wins;
          Alcotest.test_case "to relational table" `Quick test_store_to_table;
        ] );
      ( "logger",
        [ Alcotest.test_case "clock" `Quick test_logger_clock;
          Alcotest.test_case "external entries" `Quick test_logger_external_entry_advances_clock;
        ] );
      ( "audit-query",
        [ Alcotest.test_case "filters" `Quick test_query_filters;
          Alcotest.test_case "summaries" `Quick test_query_summaries;
        ] );
      ( "provenance",
        [ Alcotest.test_case "wire roundtrip" `Quick test_provenance_wire_roundtrip;
          Alcotest.test_case "integrity hash" `Quick test_provenance_integrity;
          Alcotest.test_case "store + durable roundtrip" `Quick
            test_provenance_store_roundtrip;
          Alcotest.test_case "query tracing" `Quick test_query_provenance;
        ] );
      ( "privacy-rules",
        [ Alcotest.test_case "closed world" `Quick test_rules_closed_world;
          Alcotest.test_case "composite covers" `Quick test_rules_composite_covers;
          Alcotest.test_case "deny overrides" `Quick test_rules_deny_overrides;
          Alcotest.test_case "role subsumption" `Quick test_rules_role_subsumption;
        ] );
      ( "consent",
        [ Alcotest.test_case "default & opt-out" `Quick test_consent_default_and_optout;
          Alcotest.test_case "latest wins" `Quick test_consent_latest_wins;
          Alcotest.test_case "opted-out patients" `Quick test_consent_opted_out_patients;
        ] );
      ( "enforcement",
        [ Alcotest.test_case "permitted query" `Quick test_enforcement_permitted_query;
          Alcotest.test_case "masks forbidden column" `Quick
            test_enforcement_masks_forbidden_column;
          Alcotest.test_case "denies all-forbidden" `Quick test_enforcement_denies_all_forbidden;
          Alcotest.test_case "denies predicate leak" `Quick
            test_enforcement_denies_forbidden_predicate;
          Alcotest.test_case "consent excludes rows" `Quick
            test_enforcement_consent_excludes_rows;
          Alcotest.test_case "break glass" `Quick test_enforcement_break_glass;
          Alcotest.test_case "audit trail" `Quick test_enforcement_audit_trail_regular;
          Alcotest.test_case "unmapped passthrough" `Quick
            test_enforcement_unmapped_table_passthrough;
          Alcotest.test_case "non-select rejected" `Quick test_enforcement_rejects_non_select;
          Alcotest.test_case "rewritten sql inspectable" `Quick
            test_enforcement_rewritten_sql_inspectable;
        ] );
      ( "enforcement-edges",
        [ Alcotest.test_case "aggregate queries" `Quick test_enforcement_aggregate_query;
          Alcotest.test_case "break-glass flag only on denial" `Quick
            test_enforcement_break_glass_flag_only_on_denial;
          Alcotest.test_case "projection+predicate same column" `Quick
            test_enforcement_projection_and_predicate_same_column;
          Alcotest.test_case "opt-out default consent" `Quick
            test_consent_opt_out_default_store;
        ] );
      ( "enforcement-joins",
        [ Alcotest.test_case "masks per table" `Quick test_enforcement_join_masks_per_table;
          Alcotest.test_case "consent per table" `Quick test_enforcement_join_consent_per_table;
          Alcotest.test_case "join-condition leak denied" `Quick
            test_enforcement_join_predicate_leak_denied;
          Alcotest.test_case "alias supported" `Quick test_enforcement_alias_supported;
        ] );
    ]
