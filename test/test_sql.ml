(* Tests for the SQL layer: lexer, parser, printer and the executor's query
   semantics (filters, aggregation, three-valued logic, joins, DML). *)

open Relational

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_engine () =
  let e = Engine.create () in
  ignore (Engine.exec e "CREATE TABLE t (a TEXT, b INTEGER, c REAL)");
  ignore
    (Engine.exec e
       "INSERT INTO t VALUES ('x', 1, 1.5), ('x', 2, 2.5), ('y', 3, 3.5), ('y', 4, NULL), ('z', NULL, 0.5)");
  e

let rows e sql = (Engine.query e sql).Executor.rows

let scalar e sql = Engine.query_scalar e sql

(* --- lexer --- *)

let test_lexer_basic () =
  let tokens = Sql_lexer.tokenize "SELECT a, b FROM t WHERE x >= 10.5 AND s = 'it''s'" in
  check_int "token count" 15 (List.length tokens) (* includes EOF *)

let test_lexer_operators () =
  let toks = Sql_lexer.tokenize "<> != <= >= || - -- comment" in
  check_bool "neq twice" true
    (List.filter (fun (t, _) -> t = Sql_lexer.Neq_tok) toks |> List.length = 2);
  check_bool "comment swallowed" true (List.length toks = 7)

let test_lexer_errors () =
  (match Sql_lexer.tokenize "'abc" with
  | exception Errors.Parse_error { phase = Errors.Lex; message; _ } ->
    check_string "unterminated string" "unterminated string literal" message
  | _ -> Alcotest.fail "expected lex error");
  match Sql_lexer.tokenize "a ! b" with
  | exception Errors.Parse_error { phase = Errors.Lex; message; _ } ->
    check_string "stray char" "unexpected character '!'" message
  | _ -> Alcotest.fail "expected lex error"

let test_lexer_positions () =
  (* Every token carries the byte offset of its first character. *)
  let toks = Sql_lexer.tokenize "SELECT ab, 'lit'" in
  (match toks with
  | [ (Sql_lexer.Ident "SELECT", 0); (Sql_lexer.Ident "ab", 7); (Sql_lexer.Comma, 9);
      (Sql_lexer.String_lit "lit", 11); (Sql_lexer.Eof, 16) ] -> ()
  | _ -> Alcotest.fail "unexpected token offsets");
  (* Lex errors point at the offending character... *)
  (match Sql_lexer.tokenize "ab !" with
  | exception Errors.Parse_error { position = { offset; token }; _ } ->
    check_int "lex error offset" 3 offset;
    check_string "lex error token" "!" token
  | _ -> Alcotest.fail "expected lex error");
  (* ...and parse errors at the offending token. *)
  let sql = "SELECT a FROM t WHERE" in
  match Sql_parser.parse_stmt sql with
  | exception Errors.Parse_error { phase = Errors.Parse; position = { offset; token }; _ } ->
    check_int "parse error offset" (String.length sql) offset;
    check_string "parse error token" "<eof>" token
  | _ -> Alcotest.fail "expected parse error"

let test_lexer_quoted_ident () =
  match Sql_lexer.tokenize "\"weird name\"" with
  | [ (Sql_lexer.Ident s, _); (Sql_lexer.Eof, _) ] -> check_string "quoted ident" "weird name" s
  | _ -> Alcotest.fail "expected single identifier"

(* --- parser / printer --- *)

let roundtrip sql = Sql_ast.to_sql (Sql_parser.parse_stmt sql)

let test_parse_select_shape () =
  match Sql_parser.parse_stmt "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) >= 5 AND COUNT(DISTINCT user) > 1" with
  | Sql_ast.Select s ->
    check_int "projections" 2 (List.length s.Sql_ast.projections);
    check_int "group by" 1 (List.length s.Sql_ast.group_by);
    check_bool "has having" true (Option.is_some s.Sql_ast.having)
  | _ -> Alcotest.fail "expected select"

let test_parse_precedence () =
  (* a OR b AND c parses as a OR (b AND c). *)
  match Sql_parser.parse_expr_string "a OR b AND c" with
  | Sql_ast.Binop (Sql_ast.Or, _, Sql_ast.Binop (Sql_ast.And, _, _)) -> ()
  | e -> Alcotest.failf "wrong shape: %s" (Sql_ast.expr_to_sql e)

let test_parse_arith_precedence () =
  match Sql_parser.parse_expr_string "1 + 2 * 3" with
  | Sql_ast.Binop (Sql_ast.Add, _, Sql_ast.Binop (Sql_ast.Mul, _, _)) -> ()
  | e -> Alcotest.failf "wrong shape: %s" (Sql_ast.expr_to_sql e)

let test_parse_not_in () =
  match Sql_parser.parse_expr_string "x NOT IN (1, 2)" with
  | Sql_ast.In_list { negated = true; items; _ } -> check_int "items" 2 (List.length items)
  | _ -> Alcotest.fail "expected NOT IN"

let test_parse_between_like_isnull () =
  (match Sql_parser.parse_expr_string "x BETWEEN 1 AND 5" with
  | Sql_ast.Between { negated = false; _ } -> ()
  | _ -> Alcotest.fail "between");
  (match Sql_parser.parse_expr_string "s NOT LIKE 'a%'" with
  | Sql_ast.Like { negated = true; _ } -> ()
  | _ -> Alcotest.fail "not like");
  match Sql_parser.parse_expr_string "x IS NOT NULL" with
  | Sql_ast.Is_null { negated = true; _ } -> ()
  | _ -> Alcotest.fail "is not null"

let test_parse_qualified_and_alias () =
  match Sql_parser.parse_stmt "SELECT t.a AS alpha FROM t AS u" with
  | Sql_ast.Select
      { projections = [ Sql_ast.Proj (Sql_ast.Col { qualifier = Some "t"; name = "a" }, Some "alpha") ];
        from = Some (Sql_ast.Table { name = "t"; alias = Some "u" });
        _
      } ->
    ()
  | _ -> Alcotest.fail "qualified/alias shape"

let test_parse_errors () =
  let expect_parse_error sql =
    match Sql_parser.parse_stmt sql with
    | exception Errors.Parse_error { phase = Errors.Parse; _ } -> ()
    | _ -> Alcotest.failf "expected parse error: %s" sql
  in
  expect_parse_error "SELECT";
  expect_parse_error "SELECT a FROM";
  expect_parse_error "SELECT a FROM t WHERE";
  expect_parse_error "INSERT INTO t VALUES";
  expect_parse_error "SELECT a FROM t extra garbage (";
  expect_parse_error "CREATE TABLE t (a BLOB)"

let test_roundtrip_statements () =
  let cases =
    [ "SELECT DISTINCT a, b FROM t WHERE (a = 'x') ORDER BY b DESC LIMIT 3 OFFSET 1";
      "INSERT INTO t (a, b) VALUES ('q', 1)";
      "DELETE FROM t WHERE (b > 2)";
      "UPDATE t SET b = (b + 1) WHERE (a = 'x')";
      "CREATE TABLE u (x INTEGER, y TEXT)";
      "DROP TABLE u";
    ]
  in
  List.iter
    (fun sql ->
      (* parse → print → parse → print must be a fixed point *)
      let once = roundtrip sql in
      let twice = roundtrip once in
      check_string ("fixpoint: " ^ sql) once twice)
    cases

(* --- executor: filtering and projection --- *)

let test_where_filters () =
  let e = fresh_engine () in
  check_int "b >= 2" 3 (List.length (rows e "SELECT a FROM t WHERE b >= 2"))

let test_where_null_is_false () =
  let e = fresh_engine () in
  (* b is NULL on one row: comparison yields NULL which must not select. *)
  check_int "b > 0 skips null" 4 (List.length (rows e "SELECT a FROM t WHERE b > 0"));
  check_int "b IS NULL" 1 (List.length (rows e "SELECT a FROM t WHERE b IS NULL"))

let test_projection_expressions () =
  let e = fresh_engine () in
  check_bool "arith" true (scalar e "SELECT b * 10 FROM t WHERE a = 'x' AND b = 1" = Value.Int 10);
  check_bool "concat" true
    (scalar e "SELECT a || '!' FROM t WHERE b = 3" = Value.Str "y!");
  check_bool "function" true (scalar e "SELECT UPPER(a) FROM t WHERE b = 3" = Value.Str "Y")

let test_select_star_and_names () =
  let e = fresh_engine () in
  let rs = Engine.query e "SELECT * FROM t LIMIT 1" in
  Alcotest.(check (list string)) "names" [ "a"; "b"; "c" ]
    (Schema.column_names rs.Executor.schema);
  let rs2 = Engine.query e "SELECT b + 1 AS next, a FROM t LIMIT 1" in
  Alcotest.(check (list string)) "alias names" [ "next"; "a" ]
    (Schema.column_names rs2.Executor.schema)

let test_distinct () =
  let e = fresh_engine () in
  check_int "distinct a" 3 (List.length (rows e "SELECT DISTINCT a FROM t"))

let test_order_limit_offset () =
  let e = fresh_engine () in
  let got = rows e "SELECT b FROM t WHERE b IS NOT NULL ORDER BY b DESC LIMIT 2 OFFSET 1" in
  Alcotest.(check (list int))
    "values" [ 3; 2 ]
    (List.map (fun r -> Option.get (Value.as_int (Row.get r 0))) got)

let test_order_by_alias_and_position () =
  let e = fresh_engine () in
  let by_alias = rows e "SELECT a, COUNT(*) AS n FROM t GROUP BY a ORDER BY n DESC, a" in
  check_bool "x first (2 rows)" true
    (Row.get (List.hd by_alias) 0 = Value.Str "x")

let test_like_in_between () =
  let e = fresh_engine () in
  check_int "like" 2 (List.length (rows e "SELECT a FROM t WHERE a LIKE 'x%' AND b IS NOT NULL"));
  check_int "in" 3 (List.length (rows e "SELECT a FROM t WHERE b IN (1, 2, 3)"));
  check_int "between" 2 (List.length (rows e "SELECT a FROM t WHERE b BETWEEN 2 AND 3"))

(* --- executor: aggregation --- *)

let test_global_aggregates () =
  let e = fresh_engine () in
  check_bool "count star" true (scalar e "SELECT COUNT(*) FROM t" = Value.Int 5);
  check_bool "count skips null" true (scalar e "SELECT COUNT(b) FROM t" = Value.Int 4);
  check_bool "sum" true (scalar e "SELECT SUM(b) FROM t" = Value.Int 10);
  check_bool "avg" true (scalar e "SELECT AVG(b) FROM t" = Value.Float 2.5);
  check_bool "min" true (scalar e "SELECT MIN(c) FROM t" = Value.Float 0.5);
  check_bool "max" true (scalar e "SELECT MAX(b) FROM t" = Value.Int 4)

let test_aggregate_empty_input () =
  let e = fresh_engine () in
  check_bool "count empty" true (scalar e "SELECT COUNT(*) FROM t WHERE b > 100" = Value.Int 0);
  check_bool "sum empty is null" true
    (scalar e "SELECT SUM(b) FROM t WHERE b > 100" = Value.Null)

let test_group_by_having () =
  let e = fresh_engine () in
  let got = rows e "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a" in
  check_int "two groups" 2 (List.length got);
  check_bool "x group" true (Row.get (List.hd got) 0 = Value.Str "x")

let test_count_distinct () =
  let e = fresh_engine () in
  ignore (Engine.exec e "CREATE TABLE d (u TEXT)");
  ignore (Engine.exec e "INSERT INTO d VALUES ('m'), ('m'), ('n'), ('m')");
  check_bool "distinct users" true (scalar e "SELECT COUNT(DISTINCT u) FROM d" = Value.Int 2)

let test_aggregate_in_where_rejected () =
  let e = fresh_engine () in
  match rows e "SELECT a FROM t WHERE COUNT(*) > 1" with
  | exception Errors.Sql_error (Errors.Plan, _) -> ()
  | _ -> Alcotest.fail "expected plan error"

let test_group_by_expression () =
  let e = fresh_engine () in
  let got = rows e "SELECT b % 2, COUNT(*) FROM t WHERE b IS NOT NULL GROUP BY b % 2 ORDER BY 1" in
  check_int "parity groups" 2 (List.length got)

(* --- executor: joins --- *)

let join_engine () =
  let e = fresh_engine () in
  ignore (Engine.exec e "CREATE TABLE labels (a TEXT, label TEXT)");
  ignore (Engine.exec e "INSERT INTO labels VALUES ('x', 'ex'), ('y', 'why')");
  e

let test_inner_join () =
  let e = join_engine () in
  let got = rows e "SELECT t.b, labels.label FROM t JOIN labels ON t.a = labels.a ORDER BY t.b" in
  check_int "matched rows" 4 (List.length got)

let test_left_join () =
  let e = join_engine () in
  let got =
    rows e
      "SELECT t.a, labels.label FROM t LEFT JOIN labels ON t.a = labels.a WHERE labels.label IS NULL"
  in
  (* only the 'z' row lacks a label *)
  check_int "unmatched" 1 (List.length got);
  check_bool "z row" true (Row.get (List.hd got) 0 = Value.Str "z")

let test_cross_join () =
  let e = join_engine () in
  check_int "cartesian" 10 (List.length (rows e "SELECT t.a FROM t CROSS JOIN labels"))

let test_comma_join () =
  let e = join_engine () in
  check_int "comma cartesian" 10
    (List.length (rows e "SELECT t.a FROM t, labels"))

(* --- executor: DML / DDL --- *)

let test_insert_columns_subset () =
  let e = fresh_engine () in
  ignore (Engine.exec e "INSERT INTO t (a) VALUES ('w')");
  check_int "null filled" 1 (List.length (rows e "SELECT a FROM t WHERE a = 'w' AND b IS NULL"))

let test_delete_update () =
  let e = fresh_engine () in
  check_int "deleted" 2 (Engine.command e "DELETE FROM t WHERE a = 'x'");
  check_int "updated" 1 (Engine.command e "UPDATE t SET b = 99 WHERE a = 'z'");
  check_bool "updated value" true (scalar e "SELECT b FROM t WHERE a = 'z'" = Value.Int 99)

let test_unknown_table_and_column () =
  let e = fresh_engine () in
  (match rows e "SELECT a FROM missing" with
  | exception Errors.Sql_error (Errors.Catalog, _) -> ()
  | _ -> Alcotest.fail "expected catalog error");
  match rows e "SELECT nope FROM t" with
  | exception Errors.Sql_error (Errors.Plan, _) -> ()
  | _ -> Alcotest.fail "expected plan error"

let test_division_by_zero () =
  let e = fresh_engine () in
  match rows e "SELECT b / 0 FROM t WHERE b = 1" with
  | exception Errors.Sql_error (Errors.Execute, "division by zero") -> ()
  | _ -> Alcotest.fail "expected division by zero"

let test_scalar_functions () =
  let e = fresh_engine () in
  check_bool "coalesce" true
    (scalar e "SELECT COALESCE(b, 0) FROM t WHERE b IS NULL" = Value.Int 0);
  check_bool "substr" true (scalar e "SELECT SUBSTR('hello', 2, 3) FROM t LIMIT 1" = Value.Str "ell");
  check_bool "length" true (scalar e "SELECT LENGTH(a) FROM t WHERE b = 1" = Value.Int 1);
  check_bool "nullif" true (scalar e "SELECT NULLIF(1, 1) FROM t LIMIT 1" = Value.Null)

let test_three_valued_logic () =
  let e = fresh_engine () in
  (* NULL AND FALSE = FALSE, NULL OR TRUE = TRUE — the row with b NULL. *)
  check_int "null or true" 5
    (List.length (rows e "SELECT a FROM t WHERE b > 0 OR TRUE"));
  check_int "null and false" 0
    (List.length (rows e "SELECT a FROM t WHERE b > 0 AND FALSE"));
  check_int "not null is null" 4 (List.length (rows e "SELECT a FROM t WHERE NOT (b IS NULL)"))

let test_select_without_from () =
  let e = Engine.create () in
  check_bool "constant" true (scalar e "SELECT 1 + 2" = Value.Int 3)

(* --- subqueries --- *)

let test_in_subquery () =
  let e = join_engine () in
  let got = rows e "SELECT b FROM t WHERE a IN (SELECT a FROM labels) ORDER BY b" in
  check_int "labelled rows" 4 (List.length got)

let test_not_in_subquery () =
  let e = join_engine () in
  let got = rows e "SELECT a FROM t WHERE a NOT IN (SELECT a FROM labels)" in
  check_int "only z" 1 (List.length got);
  check_bool "z" true (Row.get (List.hd got) 0 = Value.Str "z")

let test_subquery_with_predicate () =
  let e = join_engine () in
  let got =
    rows e "SELECT b FROM t WHERE a IN (SELECT a FROM labels WHERE label = 'ex')"
  in
  check_int "x rows" 2 (List.length got)

let test_subquery_in_having () =
  let e = join_engine () in
  let got =
    rows e
      "SELECT a, COUNT(*) FROM t GROUP BY a HAVING MIN(a) IN (SELECT a FROM labels)"
  in
  check_int "two groups" 2 (List.length got)

let test_subquery_arity_checked () =
  let e = join_engine () in
  match rows e "SELECT b FROM t WHERE a IN (SELECT a, label FROM labels)" with
  | exception Errors.Sql_error (Errors.Plan, _) -> ()
  | _ -> Alcotest.fail "expected plan error"

let test_subquery_prints () =
  let stmt = Sql_parser.parse_stmt "SELECT a FROM t WHERE a IN (SELECT a FROM labels)" in
  let sql = Sql_ast.to_sql stmt in
  check_string "printed" "SELECT a FROM t WHERE a IN (SELECT a FROM labels)" sql

let test_exists () =
  let e = join_engine () in
  check_int "exists true keeps all" 5
    (List.length (rows e "SELECT a FROM t WHERE EXISTS (SELECT a FROM labels)"));
  check_int "exists false drops all" 0
    (List.length
       (rows e "SELECT a FROM t WHERE EXISTS (SELECT a FROM labels WHERE label = 'nope')"));
  check_int "not exists" 5
    (List.length
       (rows e
          "SELECT a FROM t WHERE NOT EXISTS (SELECT a FROM labels WHERE label = 'nope')"))

let test_scalar_subquery () =
  let e = join_engine () in
  check_bool "scalar count" true
    (scalar e "SELECT (SELECT COUNT(*) FROM labels)" = Value.Int 2);
  check_bool "scalar in predicate" true
    (List.length (rows e "SELECT a FROM t WHERE b = (SELECT MIN(b) FROM t)") = 1);
  check_bool "empty scalar is null" true
    (scalar e "SELECT (SELECT label FROM labels WHERE label = 'nope')" = Value.Null);
  match rows e "SELECT a FROM t WHERE b = (SELECT b FROM t WHERE b IS NOT NULL)" with
  | exception Errors.Sql_error (Errors.Execute, _) -> ()
  | _ -> Alcotest.fail "expected multi-row scalar error"

(* --- more executor edge cases --- *)

let test_order_by_nulls_first () =
  let e = fresh_engine () in
  let got = rows e "SELECT b FROM t ORDER BY b" in
  check_bool "null sorts first" true (Row.get (List.hd got) 0 = Value.Null)

let test_limit_zero_and_overshoot () =
  let e = fresh_engine () in
  check_int "limit 0" 0 (List.length (rows e "SELECT a FROM t LIMIT 0"));
  check_int "limit beyond" 5 (List.length (rows e "SELECT a FROM t LIMIT 99"));
  check_int "offset beyond" 0 (List.length (rows e "SELECT a FROM t LIMIT 5 OFFSET 99"))

let test_distinct_on_expression () =
  let e = fresh_engine () in
  check_int "distinct parity" 2
    (List.length (rows e "SELECT DISTINCT b % 2 FROM t WHERE b IS NOT NULL"))

let test_count_distinct_skips_null () =
  let e = fresh_engine () in
  check_bool "nulls not counted" true
    (scalar e "SELECT COUNT(DISTINCT b) FROM t" = Value.Int 4)

let test_order_by_aggregate_not_projected () =
  let e = fresh_engine () in
  let got = rows e "SELECT a FROM t GROUP BY a ORDER BY COUNT(*) DESC, a ASC" in
  check_int "three groups" 3 (List.length got)

let test_like_underscore () =
  let e = Engine.create () in
  check_bool "underscore" true (scalar e "SELECT 'cat' LIKE 'c_t'" = Value.Bool true);
  check_bool "percent middle" true (scalar e "SELECT 'clinic' LIKE 'c%c'" = Value.Bool true);
  check_bool "no match" true (scalar e "SELECT 'cat' LIKE 'c_'" = Value.Bool false)

let test_between_empty_range () =
  let e = fresh_engine () in
  check_int "hi < lo matches nothing" 0
    (List.length (rows e "SELECT a FROM t WHERE b BETWEEN 3 AND 1"))

let test_update_unknown_column () =
  let e = fresh_engine () in
  match Engine.command e "UPDATE t SET nope = 1" with
  | exception Errors.Sql_error (Errors.Plan, _) -> ()
  | _ -> Alcotest.fail "expected plan error"

let test_insert_too_many_values () =
  let e = fresh_engine () in
  match Engine.command e "INSERT INTO t (a) VALUES ('x', 1)" with
  | exception Errors.Sql_error (Errors.Execute, _) -> ()
  | _ -> Alcotest.fail "expected execute error"

let test_having_filters_groups () =
  let e = fresh_engine () in
  let got = rows e "SELECT a FROM t GROUP BY a HAVING SUM(b) >= 3 ORDER BY a" in
  (* x: 1+2=3; y: 3 (+null); z: null sum -> NULL >= 3 is unknown, dropped *)
  check_int "two survive" 2 (List.length got)

(* --- derived tables --- *)

let test_derived_table_basic () =
  let e = fresh_engine () in
  let got =
    rows e "SELECT d.a FROM (SELECT a, b FROM t WHERE b >= 2) AS d WHERE d.b <= 3"
  in
  check_int "inner+outer filters" 2 (List.length got)

let test_derived_table_aggregate_inside () =
  let e = fresh_engine () in
  let got =
    rows e
      "SELECT g.a FROM (SELECT a, COUNT(*) AS n FROM t GROUP BY a) AS g WHERE g.n > 1 ORDER BY g.a"
  in
  check_int "two groups" 2 (List.length got)

let test_derived_table_join () =
  let e = join_engine () in
  let got =
    rows e
      "SELECT d.a, labels.label FROM (SELECT DISTINCT a FROM t) AS d JOIN labels ON d.a = labels.a"
  in
  check_int "joined" 2 (List.length got)

let test_derived_table_requires_alias () =
  match Sql_parser.parse_stmt "SELECT a FROM (SELECT a FROM t)" with
  | exception Errors.Parse_error { phase = Errors.Parse; _ } -> ()
  | _ -> Alcotest.fail "expected parse error (alias required)"

let test_derived_table_prints () =
  let sql = "SELECT d.a FROM (SELECT a FROM t) AS d" in
  check_string "roundtrip" sql (Sql_ast.to_sql (Sql_parser.parse_stmt sql))

let test_derived_table_rejected_under_enforcement () =
  let vocab = Vocabulary.Samples.figure1 () in
  let control = Hdb.Control_center.create ~vocab () in
  ignore (Hdb.Control_center.admin_exec control "CREATE TABLE recs (patient TEXT, psy TEXT)");
  Hdb.Control_center.map_column control ~table:"recs" ~column:"psy" ~category:"psychiatry";
  match
    Hdb.Control_center.query control ~user:"u" ~role:"nurse" ~purpose:"treatment"
      "SELECT d.psy FROM (SELECT psy FROM recs) AS d"
  with
  | Error (Hdb.Enforcement.Unsupported _) -> ()
  | _ -> Alcotest.fail "derived table must be rejected under enforcement"

(* --- union --- *)

let test_union_dedupes () =
  let e = join_engine () in
  check_int "union distinct" 3
    (List.length (rows e "SELECT a FROM t UNION SELECT a FROM labels"))

let test_union_all_keeps_duplicates () =
  let e = join_engine () in
  check_int "union all" 7
    (List.length (rows e "SELECT a FROM t UNION ALL SELECT a FROM labels"))

let test_union_chain_mixed () =
  let e = join_engine () in
  (* any plain UNION in the chain deduplicates the whole result *)
  check_int "mixed chain" 3
    (List.length
       (rows e "SELECT a FROM t UNION ALL SELECT a FROM labels UNION SELECT a FROM t"))

let test_union_arity_checked () =
  let e = join_engine () in
  match rows e "SELECT a, b FROM t UNION SELECT a FROM labels" with
  | exception Errors.Sql_error (Errors.Plan, _) -> ()
  | _ -> Alcotest.fail "expected arity error"

let test_union_prints () =
  let sql = "SELECT a FROM t UNION ALL SELECT a FROM labels" in
  check_string "roundtrip" sql (Sql_ast.to_sql (Sql_parser.parse_stmt sql))

(* --- index pushdown --- *)

let indexed_and_plain () =
  let plain = join_engine () in
  let indexed = join_engine () in
  Relational.Table.create_index (Engine.table indexed "t") ~column_name:"a";
  Relational.Table.create_index (Engine.table indexed "t") ~column_name:"b";
  (plain, indexed)

let test_index_probe_equivalence () =
  let plain, indexed = indexed_and_plain () in
  let queries =
    [ "SELECT a, b FROM t WHERE a = 'x'";
      "SELECT a, b FROM t WHERE a = 'x' AND b >= 2";
      "SELECT a, b FROM t WHERE 'y' = a";
      "SELECT a, b FROM t WHERE a = 'missing'";
      "SELECT a, COUNT(*) FROM t WHERE a = 'x' GROUP BY a";
      "SELECT a FROM t WHERE b = 3";
      "SELECT a FROM t WHERE a = NULL";
    ]
  in
  List.iter
    (fun sql ->
      let expected = (Engine.query plain sql).Executor.rows in
      let got = (Engine.query indexed sql).Executor.rows in
      check_bool ("same result: " ^ sql) true
        (List.equal Row.equal expected got))
    queries

let test_index_probe_type_mismatch () =
  let _, indexed = indexed_and_plain () in
  (* b is INTEGER; probing with a fractional literal matches nothing. *)
  check_int "fractional probe" 0 (List.length (rows indexed "SELECT a FROM t WHERE b = 2.5"));
  check_int "coercible probe" 1 (List.length (rows indexed "SELECT a FROM t WHERE b = 2.0"))

let test_index_probe_sees_new_rows () =
  let _, indexed = indexed_and_plain () in
  ignore (Engine.exec indexed "INSERT INTO t VALUES ('x', 9, 9.0)");
  check_int "fresh row via index" 3
    (List.length (rows indexed "SELECT a FROM t WHERE a = 'x' AND b IS NOT NULL"))

let () =
  Alcotest.run "sql"
    [ ( "lexer",
        [ Alcotest.test_case "basic" `Quick test_lexer_basic;
          Alcotest.test_case "operators/comments" `Quick test_lexer_operators;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "quoted ident" `Quick test_lexer_quoted_ident;
        ] );
      ( "parser",
        [ Alcotest.test_case "select shape" `Quick test_parse_select_shape;
          Alcotest.test_case "bool precedence" `Quick test_parse_precedence;
          Alcotest.test_case "arith precedence" `Quick test_parse_arith_precedence;
          Alcotest.test_case "not in" `Quick test_parse_not_in;
          Alcotest.test_case "between/like/is null" `Quick test_parse_between_like_isnull;
          Alcotest.test_case "qualified/alias" `Quick test_parse_qualified_and_alias;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "print fixpoint" `Quick test_roundtrip_statements;
        ] );
      ( "select",
        [ Alcotest.test_case "where" `Quick test_where_filters;
          Alcotest.test_case "null predicate" `Quick test_where_null_is_false;
          Alcotest.test_case "projection exprs" `Quick test_projection_expressions;
          Alcotest.test_case "star & names" `Quick test_select_star_and_names;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "order/limit/offset" `Quick test_order_limit_offset;
          Alcotest.test_case "order by alias" `Quick test_order_by_alias_and_position;
          Alcotest.test_case "like/in/between" `Quick test_like_in_between;
          Alcotest.test_case "3-valued logic" `Quick test_three_valued_logic;
          Alcotest.test_case "no FROM" `Quick test_select_without_from;
          Alcotest.test_case "scalar functions" `Quick test_scalar_functions;
        ] );
      ( "aggregate",
        [ Alcotest.test_case "global" `Quick test_global_aggregates;
          Alcotest.test_case "empty input" `Quick test_aggregate_empty_input;
          Alcotest.test_case "group/having" `Quick test_group_by_having;
          Alcotest.test_case "count distinct" `Quick test_count_distinct;
          Alcotest.test_case "agg in where rejected" `Quick test_aggregate_in_where_rejected;
          Alcotest.test_case "group by expr" `Quick test_group_by_expression;
        ] );
      ( "join",
        [ Alcotest.test_case "inner" `Quick test_inner_join;
          Alcotest.test_case "left" `Quick test_left_join;
          Alcotest.test_case "cross" `Quick test_cross_join;
          Alcotest.test_case "comma" `Quick test_comma_join;
        ] );
      ( "subquery",
        [ Alcotest.test_case "in subquery" `Quick test_in_subquery;
          Alcotest.test_case "not in subquery" `Quick test_not_in_subquery;
          Alcotest.test_case "with predicate" `Quick test_subquery_with_predicate;
          Alcotest.test_case "in having" `Quick test_subquery_in_having;
          Alcotest.test_case "arity checked" `Quick test_subquery_arity_checked;
          Alcotest.test_case "prints" `Quick test_subquery_prints;
          Alcotest.test_case "exists" `Quick test_exists;
          Alcotest.test_case "scalar subquery" `Quick test_scalar_subquery;
        ] );
      ( "edge-cases",
        [ Alcotest.test_case "order by nulls first" `Quick test_order_by_nulls_first;
          Alcotest.test_case "limit 0/overshoot" `Quick test_limit_zero_and_overshoot;
          Alcotest.test_case "distinct expression" `Quick test_distinct_on_expression;
          Alcotest.test_case "count distinct nulls" `Quick test_count_distinct_skips_null;
          Alcotest.test_case "order by unprojected agg" `Quick
            test_order_by_aggregate_not_projected;
          Alcotest.test_case "like underscore" `Quick test_like_underscore;
          Alcotest.test_case "empty between" `Quick test_between_empty_range;
          Alcotest.test_case "update unknown column" `Quick test_update_unknown_column;
          Alcotest.test_case "insert too many values" `Quick test_insert_too_many_values;
          Alcotest.test_case "having drops null groups" `Quick test_having_filters_groups;
        ] );
      ( "derived-tables",
        [ Alcotest.test_case "basic" `Quick test_derived_table_basic;
          Alcotest.test_case "aggregate inside" `Quick test_derived_table_aggregate_inside;
          Alcotest.test_case "join" `Quick test_derived_table_join;
          Alcotest.test_case "alias required" `Quick test_derived_table_requires_alias;
          Alcotest.test_case "prints" `Quick test_derived_table_prints;
          Alcotest.test_case "rejected under enforcement" `Quick
            test_derived_table_rejected_under_enforcement;
        ] );
      ( "union",
        [ Alcotest.test_case "dedupes" `Quick test_union_dedupes;
          Alcotest.test_case "all keeps duplicates" `Quick test_union_all_keeps_duplicates;
          Alcotest.test_case "mixed chain" `Quick test_union_chain_mixed;
          Alcotest.test_case "arity checked" `Quick test_union_arity_checked;
          Alcotest.test_case "prints" `Quick test_union_prints;
        ] );
      ( "index-pushdown",
        [ Alcotest.test_case "probe equivalence" `Quick test_index_probe_equivalence;
          Alcotest.test_case "type mismatch" `Quick test_index_probe_type_mismatch;
          Alcotest.test_case "sees new rows" `Quick test_index_probe_sees_new_rows;
        ] );
      ( "dml",
        [ Alcotest.test_case "insert subset" `Quick test_insert_columns_subset;
          Alcotest.test_case "delete/update" `Quick test_delete_update;
          Alcotest.test_case "unknown names" `Quick test_unknown_table_and_column;
          Alcotest.test_case "div by zero" `Quick test_division_by_zero;
        ] );
    ]
