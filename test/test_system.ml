(* Integration tests: the assembled PRIMA system of Figure 4 — enforcement
   generating real audit entries, federation consolidating them, refinement
   adopting patterns, and the closed loop converting exception-based access
   into regular access. *)

module Sys_ = Prima_system.System

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let vocab () = Vocabulary.Samples.figure1 ()

let setup_clinical control =
  List.iter
    (fun sql -> ignore (Hdb.Control_center.admin_exec control sql))
    [ "CREATE TABLE records (patient TEXT, referral TEXT, prescription TEXT, address TEXT)";
      "INSERT INTO records VALUES ('p1', 'r1', 'rx1', 'a1'), ('p2', 'r2', 'rx2', 'a2')";
    ];
  Hdb.Control_center.set_patient_column control ~table:"records" ~column:"patient";
  Hdb.Control_center.map_column control ~table:"records" ~column:"referral"
    ~category:"referral";
  Hdb.Control_center.map_column control ~table:"records" ~column:"prescription"
    ~category:"prescription";
  Hdb.Control_center.map_column control ~table:"records" ~column:"address"
    ~category:"address"

let make_system () =
  let system =
    Sys_.create ~vocab:(vocab ()) ~p_ps:(Workload.Scenario.policy_store ()) ()
  in
  setup_clinical (Sys_.control system);
  system

let test_system_seeds_enforcement_from_store () =
  let system = make_system () in
  let rules = Hdb.Control_center.rules (Sys_.control system) in
  check_int "three seeded rules" 3 (Hdb.Privacy_rules.count rules);
  check_bool "nurse referral treatment permitted" true
    (Hdb.Privacy_rules.permits rules ~data:"referral" ~purpose:"treatment" ~authorized:"nurse")

let query ?break_glass system ~user ~role ~purpose sql =
  Hdb.Control_center.query ?break_glass (Sys_.control system) ~user ~role ~purpose sql

let btg_registration system user =
  match
    query ~break_glass:true system ~user ~role:"nurse" ~purpose:"registration"
      "SELECT referral FROM records"
  with
  | Ok outcome -> check_bool "was break-glass" true outcome.Hdb.Enforcement.break_glass
  | Error e -> Alcotest.failf "btg failed: %s" (Hdb.Enforcement.error_to_string e)

let test_closed_loop_exception_becomes_regular () =
  let system = make_system () in
  (* Nurses repeatedly need referral data for registration: denied by the
     seeded policy, so they break the glass.  5+ times, several users. *)
  List.iter (btg_registration system) [ "mark"; "tim"; "bob"; "mark"; "olga"; "mark" ];
  let before = Sys_.coverage system in
  check_bool "coverage below 1" true
    (before.Prima_core.Prima.bag_semantics.Prima_core.Coverage.coverage < 1.0);
  (match Sys_.refine system with
  | Ok report ->
    check_int "pattern adopted" 1 (List.length report.Prima_core.Refinement.accepted)
  | Error e -> Alcotest.fail e);
  (* The same access is now regular: no break-glass needed. *)
  (match
     query system ~user:"mark" ~role:"nurse" ~purpose:"registration"
       "SELECT referral FROM records"
   with
  | Ok outcome ->
    check_bool "regular now" false outcome.Hdb.Enforcement.break_glass;
    check_bool "nothing masked" true (outcome.Hdb.Enforcement.masked_columns = [])
  | Error e -> Alcotest.failf "still denied: %s" (Hdb.Enforcement.error_to_string e));
  let after = Sys_.coverage system in
  check_bool "coverage improved" true
    (after.Prima_core.Prima.bag_semantics.Prima_core.Coverage.coverage
    > before.Prima_core.Prima.bag_semantics.Prima_core.Coverage.coverage)

let test_refinement_ignores_rare_exceptions () =
  let system = make_system () in
  (* Below the f = 5 threshold: nothing should be adopted. *)
  List.iter (btg_registration system) [ "mark"; "tim" ];
  match Sys_.refine system with
  | Ok report -> check_int "no adoption" 0 (List.length report.Prima_core.Refinement.accepted)
  | Error e -> Alcotest.fail e

let test_refinement_single_user_not_adopted () =
  let system = make_system () in
  (* One user spamming BTG: COUNT(DISTINCT user) > 1 must reject it. *)
  List.iter (btg_registration system) [ "mark"; "mark"; "mark"; "mark"; "mark"; "mark" ];
  match Sys_.refine system with
  | Ok report -> check_int "no adoption" 0 (List.length report.Prima_core.Refinement.accepted)
  | Error e -> Alcotest.fail e

let test_extra_site_feeds_refinement () =
  let system = make_system () in
  let icu = Audit_mgmt.Site.create ~name:"icu" () in
  Audit_mgmt.Site.ingest_entries icu (Workload.Scenario.table1_entries ());
  Sys_.add_site system icu;
  match Sys_.refine system with
  | Ok report ->
    check_bool "pattern from remote site" true
      (List.exists
         (Prima_core.Rule.equal_syntactic (Workload.Scenario.expected_pattern ()))
         report.Prima_core.Refinement.accepted)
  | Error e -> Alcotest.fail e

let test_training_minimum_blocks () =
  let system =
    Sys_.create ~training_minimum:100 ~vocab:(vocab ())
      ~p_ps:(Workload.Scenario.policy_store ()) ()
  in
  setup_clinical (Sys_.control system);
  btg_registration system "mark";
  match Sys_.refine system with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "training period not enforced"

(* Degraded-mode gating: a system whose federation consolidates a partial
   window must refuse to auto-accept patterns until completeness recovers
   above the threshold. *)
let test_completeness_threshold_blocks_auto_acceptance () =
  let system =
    Sys_.create ~completeness_threshold:0.9 ~vocab:(vocab ())
      ~p_ps:(Workload.Scenario.policy_store ()) ()
  in
  let icu = Audit_mgmt.Site.create ~name:"icu" () in
  Audit_mgmt.Site.ingest_entries icu (Workload.Scenario.table1_entries ());
  let fault = Audit_mgmt.Fault.wrap ~seed:5 icu in
  Audit_mgmt.Fault.take_down fault;
  Audit_mgmt.Federation.add_faulty_site (Sys_.federation system) fault;
  (* The only populated site is unreachable: completeness 0, refine blocked. *)
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  (match Sys_.refine system with
  | Error e -> check_bool "error names completeness" true (contains e "completeness")
  | Ok _ -> Alcotest.fail "refine must refuse a degraded window");
  check_bool "completeness recorded" true (Sys_.completeness system < 0.9);
  (* Coverage is still measurable, but only as a lower bound. *)
  let q = Sys_.coverage_qualified system in
  check_bool "lower bound label" true
    (match q.Sys_.bag_semantics.Prima_core.Coverage.qualifier with
    | Prima_core.Coverage.Lower_bound c -> c < 0.9
    | Prima_core.Coverage.Exact -> false);
  (* Recovery: heal the site; refine runs and adopts the pattern, exact. *)
  Audit_mgmt.Federation.heal_all (Sys_.federation system);
  match Sys_.refine system with
  | Ok report ->
    check_int "pattern adopted after recovery" 1
      (List.length report.Prima_core.Refinement.accepted);
    check_bool "exact qualifier" true
      (report.Prima_core.Refinement.qualifier = Prima_core.Coverage.Exact)
  | Error e -> Alcotest.fail e

(* Lowering the threshold deliberately lets a degraded refine run, and its
   report is labelled with the window's completeness. *)
let test_lowered_threshold_labels_lower_bound () =
  let system =
    Sys_.create ~completeness_threshold:0.0 ~vocab:(vocab ())
      ~p_ps:(Workload.Scenario.policy_store ()) ()
  in
  let icu = Audit_mgmt.Site.create ~name:"icu" () in
  Audit_mgmt.Site.ingest_entries icu (Workload.Scenario.table1_entries ());
  Sys_.add_site system icu;
  (* A second site that never answers drags completeness below 1. *)
  let flaky_site = Audit_mgmt.Site.create ~name:"flaky" () in
  Audit_mgmt.Site.ingest_entries flaky_site [ Audit_mgmt.Site.entries icu |> List.hd ];
  let fault = Audit_mgmt.Fault.wrap ~seed:5 flaky_site in
  Audit_mgmt.Fault.take_down fault;
  Audit_mgmt.Federation.add_faulty_site (Sys_.federation system) fault;
  match Sys_.refine system with
  | Ok report ->
    check_bool "report labelled lower bound" true
      (match report.Prima_core.Refinement.qualifier with
      | Prima_core.Coverage.Lower_bound c -> c < 1.0
      | Prima_core.Coverage.Exact -> false)
  | Error e -> Alcotest.fail e

(* End-to-end on the synthetic hospital: oracle-guided refinement adopts
   informal practices and never violations; coverage improves epoch over
   epoch. *)
let test_synthetic_hospital_epochs () =
  let config =
    { (Workload.Hospital.default_config ()) with
      Workload.Hospital.total_accesses = 2000;
      epoch_size = 500;
    }
  in
  let p_ps = Workload.Hospital.policy_store config in
  let trail = Workload.Generator.generate config in
  let batches =
    List.map
      (fun batch ->
        Audit_mgmt.To_policy.policy_of_entries (Workload.Generator.entries batch))
      (Workload.Generator.epochs config trail)
  in
  let oracle = Workload.Generator.oracle config in
  let ref_config =
    { Prima_core.Refinement.default_config with
      Prima_core.Refinement.acceptance = Prima_core.Refinement.Oracle oracle;
    }
  in
  let reports, final =
    Prima_core.Refinement.run_epochs ~config:ref_config ~vocab:config.Workload.Hospital.vocab
      ~p_ps ~batches ()
  in
  check_int "four epochs" 4 (List.length reports);
  (* Every adopted pattern is a genuine informal practice. *)
  List.iter
    (fun r ->
      List.iter
        (fun pattern ->
          check_bool "no violation adopted" true
            (Workload.Hospital.is_informal_pattern config pattern))
        r.Prima_core.Refinement.accepted)
    reports;
  (* Refinement discovered at least half of the informal practices. *)
  let covered = Workload.Generator.practices_covered config final in
  check_bool "recall >= 1/2" true
    (2 * List.length covered >= List.length config.Workload.Hospital.informal);
  (* Coverage on the last batch improved against the refined store. *)
  let last = List.nth reports 3 in
  check_bool "coverage improves within epoch" true
    (last.Prima_core.Refinement.coverage_after.Prima_core.Coverage.coverage
    >= last.Prima_core.Refinement.coverage_before.Prima_core.Coverage.coverage)

let () =
  Alcotest.run "system"
    [ ( "prima-system",
        [ Alcotest.test_case "seeds enforcement" `Quick test_system_seeds_enforcement_from_store;
          Alcotest.test_case "closed loop" `Quick test_closed_loop_exception_becomes_regular;
          Alcotest.test_case "rare exceptions ignored" `Quick
            test_refinement_ignores_rare_exceptions;
          Alcotest.test_case "single user not adopted" `Quick
            test_refinement_single_user_not_adopted;
          Alcotest.test_case "extra site" `Quick test_extra_site_feeds_refinement;
          Alcotest.test_case "training minimum" `Quick test_training_minimum_blocks;
        ] );
      ( "degraded-mode",
        [ Alcotest.test_case "completeness threshold blocks auto-acceptance" `Quick
            test_completeness_threshold_blocks_auto_acceptance;
          Alcotest.test_case "lowered threshold labels lower bound" `Quick
            test_lowered_threshold_labels_lower_bound;
        ] );
      ( "synthetic-hospital",
        [ Alcotest.test_case "oracle-guided epochs" `Slow test_synthetic_hospital_epochs ] );
    ]
