(* Whole-system chaos: composed fault schedules checked against the pure
   model oracle.  The runtest-sized sweep here keeps the long soak in
   `make chaos`; both are deterministic in their seeds, so any failure
   reproduces from the printed seed alone. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- fixed-seed schedules: the nine invariants hold end to end --- *)

let run_seed seed steps () =
  let report = Chaos.Harness.run ~seed ~steps () in
  (match report.Chaos.Harness.violation with
  | None -> ()
  | Some v ->
    Fmt.epr "--- fault log (seed %d) ---@." seed;
    List.iter (Fmt.epr "%s@.") report.Chaos.Harness.events;
    Fmt.epr "%a@." Chaos.Harness.pp_violation v);
  check (Printf.sprintf "seed %d: all invariants hold" seed) true
    (Chaos.Harness.passed report);
  check
    (Printf.sprintf "seed %d: schedule ran to completion" seed)
    true
    (report.Chaos.Harness.actions_run = steps);
  (* the schedule must actually exercise the fault planes it composes *)
  check (Printf.sprintf "seed %d: crashes happened" seed) true
    (report.Chaos.Harness.crashes > 0);
  check (Printf.sprintf "seed %d: consolidations happened" seed) true
    (report.Chaos.Harness.consolidations > 0);
  check (Printf.sprintf "seed %d: refinement ran" seed) true
    (report.Chaos.Harness.refines_ok + report.Chaos.Harness.refines_rejected > 0);
  check (Printf.sprintf "seed %d: enforcement budgets tripped" seed) true
    (report.Chaos.Harness.enforce_trips > 0);
  (* tamper-evidence: every injected tamper was detected (zero false
     negatives); run_seed only passes when no false positive fired either,
     since a misclassified crash raises the tamper-evidence violation *)
  check (Printf.sprintf "seed %d: tampers injected" seed) true
    (report.Chaos.Harness.tampers > 0);
  check_int
    (Printf.sprintf "seed %d: every tamper detected" seed)
    report.Chaos.Harness.tampers report.Chaos.Harness.tampers_detected

(* --- determinism: a seed replays to the identical run --- *)

let test_deterministic () =
  let a = Chaos.Harness.run ~seed:42 ~steps:120 () in
  let b = Chaos.Harness.run ~seed:42 ~steps:120 () in
  check "same seed, same event log" true
    (a.Chaos.Harness.events = b.Chaos.Harness.events);
  check "same seed, same verdict" true
    (Chaos.Harness.passed a = Chaos.Harness.passed b);
  check_int "same seed, same crash count" a.Chaos.Harness.crashes
    b.Chaos.Harness.crashes;
  let c = Chaos.Harness.run ~seed:43 ~steps:120 () in
  check "different seed, different schedule" false
    (a.Chaos.Harness.events = c.Chaos.Harness.events)

(* --- pinned regression: refine over an empty practice window ---

   Found by the chaos harness (seed 1 of the first sweep): a consolidated
   window whose entries are all regular accesses filters to an {e empty}
   practice policy, which used to materialise as a zero-column table and
   blow up Algorithm 5 with [Sql_error "unknown column data"] escaping
   [System.refine] as an exception.  An empty practice can never meet a
   positive frequency threshold, so the answer is "no patterns". *)

let test_empty_practice_analysis () =
  let empty = Prima_core.Policy.make [] in
  check_int "analyse of an empty practice finds nothing" 0
    (List.length (Prima_core.Data_analysis.analyse empty));
  let governed =
    Prima_core.Data_analysis.analyse_governed
      ~limits:(Relational.Budget.limits ~ticks:10 ())
      empty
  in
  check_int "governed analyse of an empty practice finds nothing" 0
    (List.length governed.Prima_core.Data_analysis.patterns);
  check "and does not degrade" false governed.Prima_core.Data_analysis.degraded

let test_empty_practice_epoch () =
  let config = Workload.Hospital.default_config ~seed:7 () in
  let vocab = config.Workload.Hospital.vocab in
  let p_ps = Workload.Hospital.policy_store config in
  (* a window of regular accesses only: Filter(P_AL) is empty *)
  let entries =
    List.init 8 (fun i ->
        Hdb.Audit_schema.entry ~time:(i + 1) ~op:Hdb.Audit_schema.Allow
          ~user:(Printf.sprintf "u%d" i) ~data:"medication_data" ~purpose:"treatment"
          ~authorized:"nurse" ~status:Hdb.Audit_schema.Regular)
  in
  let p_al = Audit_mgmt.To_policy.policy_of_entries entries in
  let report = Prima_core.Refinement.run_epoch ~vocab ~p_ps ~p_al () in
  check_int "no patterns from an all-regular window" 0
    (List.length report.Prima_core.Refinement.patterns)

(* --- weighted draws: the documented boundary semantics, pinned ---

   [pick_weighted] walks the cumulative sum with [target < acc + w], so a
   zero-weight class contributes nothing to any interval and can never be
   drawn — the property tests below pin that over seeded generation.  An
   all-zero (or negative) table is a configuration error, not an empty
   schedule: it must raise the typed [Invalid_weights]. *)

let count_actions pred actions = List.length (List.filter pred actions)

let test_zero_weight_never_drawn () =
  let no_tampers =
    { Chaos.Schedule.default_weights with Chaos.Schedule.w_tamper = 0 }
  in
  let no_crashes =
    { Chaos.Schedule.default_weights with Chaos.Schedule.w_crash = 0;
      Chaos.Schedule.w_site_crash = 0 }
  in
  for seed = 1 to 50 do
    let a = Chaos.Schedule.generate ~weights:no_tampers ~nsites:2 ~seed ~steps:100 () in
    check_int
      (Printf.sprintf "seed %d: zero tamper weight draws no tampers" seed)
      0
      (count_actions (function Chaos.Schedule.Tamper _ -> true | _ -> false) a);
    let b = Chaos.Schedule.generate ~weights:no_crashes ~nsites:2 ~seed ~steps:100 () in
    check_int
      (Printf.sprintf "seed %d: zero crash weights draw no crashes" seed)
      0
      (count_actions
         (function
           | Chaos.Schedule.Crash _ | Chaos.Schedule.Site_crash _ -> true | _ -> false)
         b)
  done;
  (* nonzero weights keep drawing: the zero was load-bearing above *)
  let a = Chaos.Schedule.generate ~nsites:2 ~seed:1 ~steps:400 () in
  check "default weights do draw tampers" true
    (count_actions (function Chaos.Schedule.Tamper _ -> true | _ -> false) a > 0)

let test_invalid_weight_tables () =
  let zeroed =
    {
      Chaos.Schedule.w_append_clinical = 0; w_append_remote = 0; w_append_remote_raw = 0;
      w_set_mapping = 0; w_append_workflow = 0; w_vocab_edit = 0; w_sync = 0;
      w_checkpoint = 0; w_auto_checkpoint = 0; w_crash = 0; w_site_crash = 0;
      w_consolidate = 0; w_outage = 0; w_heal = 0; w_advance = 0; w_refine = 0;
      w_refine_race = 0; w_threshold = 0; w_enforce = 0; w_group_commit = 0; w_tamper = 0;
      w_overload_storm = 0; w_set_budget_class = 0;
    }
  in
  check "all-zero table raises Invalid_weights" true
    (match Chaos.Schedule.generate ~weights:zeroed ~nsites:2 ~seed:1 ~steps:10 () with
    | exception Chaos.Schedule.Invalid_weights _ -> true
    | _ -> false);
  let negative =
    { Chaos.Schedule.default_weights with Chaos.Schedule.w_sync = -1 }
  in
  check "negative weight raises Invalid_weights" true
    (match Chaos.Schedule.generate ~weights:negative ~nsites:2 ~seed:1 ~steps:10 () with
    | exception Chaos.Schedule.Invalid_weights _ -> true
    | _ -> false)

(* --- serialization: of_string is a total inverse of to_string --- *)

let test_action_round_trip () =
  List.iter
    (fun seed ->
      let actions = Chaos.Schedule.generate ~nsites:3 ~seed ~steps:200 () in
      List.iter
        (fun a ->
          let s = Chaos.Schedule.to_string a in
          match Chaos.Schedule.of_string s with
          | Some a' ->
            check (Printf.sprintf "%S round-trips" s) true (a = a')
          | None -> Alcotest.failf "of_string rejected %S" s)
        actions)
    [ 1; 2; 3 ];
  check "garbage is rejected" true (Chaos.Schedule.of_string "frobnicate 3" = None);
  check "trailing junk is rejected" true
    (Chaos.Schedule.of_string "consolidate now" = None)

(* --- the shrinker: smoke, determinism, faithfulness --- *)

let failing_repro () =
  let defect = Chaos.Harness.Eat_entry 5 in
  let seed = 1 and steps = 120 in
  let actions = Chaos.Schedule.generate ~nsites:2 ~seed ~steps () in
  let report =
    Chaos.Harness.run_actions ~defect ~pool:((steps * 3) + 120) ~seed ~actions ()
  in
  match Chaos.Shrink.of_report ~defect ~actions report with
  | Some repro -> repro
  | None -> Alcotest.fail "eat-entry defect did not fail at seed 1 x 120 steps"

let test_shrink_smoke () =
  let repro = failing_repro () in
  let mini, stats = Chaos.Shrink.shrink repro in
  check "shrinking shrinks" true
    (stats.Chaos.Shrink.minimal < stats.Chaos.Shrink.original);
  check "minimal repro is small" true (stats.Chaos.Shrink.minimal <= 40);
  check "minimal repro still fails its invariant" true (Chaos.Shrink.still_fails mini);
  (* 1-minimality: deleting any single surviving action loses the failure *)
  let n = List.length mini.Chaos.Shrink.actions in
  for i = 0 to n - 1 do
    let pruned =
      { mini with
        Chaos.Shrink.actions =
          List.filteri (fun j _ -> j <> i) mini.Chaos.Shrink.actions }
    in
    check (Printf.sprintf "action %d is load-bearing" i) false
      (Chaos.Shrink.still_fails pruned)
  done

let test_shrink_deterministic () =
  let repro = failing_repro () in
  let a, _ = Chaos.Shrink.shrink repro in
  let b, _ = Chaos.Shrink.shrink repro in
  check "two shrinks, byte-identical repros" true
    (String.equal (Chaos.Shrink.to_string a) (Chaos.Shrink.to_string b))

let test_repro_round_trip () =
  let repro = failing_repro () in
  let mini, _ = Chaos.Shrink.shrink repro in
  match Chaos.Shrink.of_string (Chaos.Shrink.to_string mini) with
  | Ok r -> check "repro text round-trips" true (r = mini)
  | Error e -> Alcotest.failf "repro text did not parse: %s" e

(* --- pinned corpus: committed minimal repros still fail, as recorded ---

   Every .repro under chaos_corpus/ was produced by the shrinker from a
   real failing schedule.  Replaying each must violate exactly the
   invariant recorded in its header — if a refactor makes one pass (or
   fail differently), the harness/model contract has shifted and the
   corpus entry needs a deliberate update, not a silent one. *)

let corpus_dir () =
  (* cwd is test/ under dune runtest (glob_files deps), the project root
     when the binary is exec'd directly *)
  if Sys.file_exists "chaos_corpus" then "chaos_corpus" else "test/chaos_corpus"

let corpus_files () =
  match Sys.readdir (corpus_dir ()) with
  | exception Sys_error _ -> []
  | files ->
    List.sort compare
      (List.filter
         (fun f -> Filename.check_suffix f ".repro")
         (Array.to_list files))

let test_corpus_replays () =
  let files = corpus_files () in
  check "corpus is not empty" true (files <> []);
  List.iter
    (fun file ->
      match Chaos.Shrink.load (Filename.concat (corpus_dir ()) file) with
      | Error e -> Alcotest.failf "%s: cannot load: %s" file e
      | Ok repro ->
        let report = Chaos.Shrink.replay repro in
        (match report.Chaos.Harness.violation with
        | Some v ->
          Alcotest.(check string)
            (Printf.sprintf "%s: violates its recorded invariant" file)
            repro.Chaos.Shrink.invariant v.Chaos.Harness.invariant;
          check_int
            (Printf.sprintf "%s: at its recorded step" file)
            repro.Chaos.Shrink.step v.Chaos.Harness.step
        | None -> Alcotest.failf "%s: no longer fails" file))
    files

(* --- the model oracle itself: consolidation mirrors the heap merge --- *)

let test_model_consolidation () =
  let config = Workload.Hospital.default_config ~seed:11 () in
  let config = { config with Workload.Hospital.total_accesses = 60 } in
  let entries =
    Workload.Generator.entries (Workload.Generator.generate config)
  in
  let vocab = config.Workload.Hospital.vocab in
  let p_ps = Workload.Hospital.policy_store config in
  let model = Chaos.Model.create ~vocab ~p_ps ~nsites:2 in
  (* deal the stream round-robin across clinical and the two remotes *)
  List.iteri
    (fun i e ->
      match i mod 3 with
      | 0 -> Chaos.Model.append_clinical model [ e ]
      | 1 -> Chaos.Model.append_remote model 0 [ e ]
      | _ -> Chaos.Model.append_remote model 1 [ e ])
    entries;
  (* against the real federation fed the same split *)
  let fed = Audit_mgmt.Federation.create () in
  let clinical = Audit_mgmt.Site.create ~name:"clinical-db" () in
  let r0 = Audit_mgmt.Site.create ~name:"site-0" () in
  let r1 = Audit_mgmt.Site.create ~name:"site-1" () in
  List.iter (Audit_mgmt.Federation.add_site fed) [ clinical; r0; r1 ];
  List.iteri
    (fun i e ->
      let site = match i mod 3 with 0 -> clinical | 1 -> r0 | _ -> r1 in
      Audit_mgmt.Site.ingest_entry site e)
    entries;
  let merged = Audit_mgmt.Federation.consolidated fed in
  let modelled = Chaos.Model.consolidated model in
  check_int "same trail length" (List.length merged) (List.length modelled);
  check "model consolidation equals the heap merge" true
    (List.for_all2 Hdb.Audit_schema.equal merged modelled)

let () =
  Alcotest.run "chaos"
    [
      ( "schedules",
        [
          Alcotest.test_case "seed 1 x 250 steps" `Slow (run_seed 1 250);
          Alcotest.test_case "seed 2 x 250 steps" `Slow (run_seed 2 250);
          Alcotest.test_case "seed 3 x 250 steps" `Slow (run_seed 3 250);
          Alcotest.test_case "deterministic replay" `Quick test_deterministic;
        ] );
      ( "weighted draws",
        [
          Alcotest.test_case "zero weight is never drawn" `Quick
            test_zero_weight_never_drawn;
          Alcotest.test_case "invalid tables raise" `Quick test_invalid_weight_tables;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "actions round-trip" `Quick test_action_round_trip;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "shrinks to a 1-minimal repro" `Slow test_shrink_smoke;
          Alcotest.test_case "byte-identical across runs" `Slow
            test_shrink_deterministic;
          Alcotest.test_case "repro text round-trips" `Slow test_repro_round_trip;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "empty practice: data analysis" `Quick
            test_empty_practice_analysis;
          Alcotest.test_case "empty practice: refinement epoch" `Quick
            test_empty_practice_epoch;
          Alcotest.test_case "pinned corpus repros replay" `Slow test_corpus_replays;
        ] );
      ( "model oracle",
        [
          Alcotest.test_case "consolidation mirrors the heap merge" `Quick
            test_model_consolidation;
        ] );
    ]
