(* Whole-system chaos: composed fault schedules checked against the pure
   model oracle.  The runtest-sized sweep here keeps the long soak in
   `make chaos`; both are deterministic in their seeds, so any failure
   reproduces from the printed seed alone. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- fixed-seed schedules: the seven invariants hold end to end --- *)

let run_seed seed steps () =
  let report = Chaos.Harness.run ~seed ~steps () in
  (match report.Chaos.Harness.violation with
  | None -> ()
  | Some v ->
    Fmt.epr "--- fault log (seed %d) ---@." seed;
    List.iter (Fmt.epr "%s@.") report.Chaos.Harness.events;
    Fmt.epr "%a@." Chaos.Harness.pp_violation v);
  check (Printf.sprintf "seed %d: all invariants hold" seed) true
    (Chaos.Harness.passed report);
  check
    (Printf.sprintf "seed %d: schedule ran to completion" seed)
    true
    (report.Chaos.Harness.actions_run = steps);
  (* the schedule must actually exercise the fault planes it composes *)
  check (Printf.sprintf "seed %d: crashes happened" seed) true
    (report.Chaos.Harness.crashes > 0);
  check (Printf.sprintf "seed %d: consolidations happened" seed) true
    (report.Chaos.Harness.consolidations > 0);
  check (Printf.sprintf "seed %d: refinement ran" seed) true
    (report.Chaos.Harness.refines_ok + report.Chaos.Harness.refines_rejected > 0);
  check (Printf.sprintf "seed %d: enforcement budgets tripped" seed) true
    (report.Chaos.Harness.enforce_trips > 0);
  (* tamper-evidence: every injected tamper was detected (zero false
     negatives); run_seed only passes when no false positive fired either,
     since a misclassified crash raises the tamper-evidence violation *)
  check (Printf.sprintf "seed %d: tampers injected" seed) true
    (report.Chaos.Harness.tampers > 0);
  check_int
    (Printf.sprintf "seed %d: every tamper detected" seed)
    report.Chaos.Harness.tampers report.Chaos.Harness.tampers_detected

(* --- determinism: a seed replays to the identical run --- *)

let test_deterministic () =
  let a = Chaos.Harness.run ~seed:42 ~steps:120 () in
  let b = Chaos.Harness.run ~seed:42 ~steps:120 () in
  check "same seed, same event log" true
    (a.Chaos.Harness.events = b.Chaos.Harness.events);
  check "same seed, same verdict" true
    (Chaos.Harness.passed a = Chaos.Harness.passed b);
  check_int "same seed, same crash count" a.Chaos.Harness.crashes
    b.Chaos.Harness.crashes;
  let c = Chaos.Harness.run ~seed:43 ~steps:120 () in
  check "different seed, different schedule" false
    (a.Chaos.Harness.events = c.Chaos.Harness.events)

(* --- pinned regression: refine over an empty practice window ---

   Found by the chaos harness (seed 1 of the first sweep): a consolidated
   window whose entries are all regular accesses filters to an {e empty}
   practice policy, which used to materialise as a zero-column table and
   blow up Algorithm 5 with [Sql_error "unknown column data"] escaping
   [System.refine] as an exception.  An empty practice can never meet a
   positive frequency threshold, so the answer is "no patterns". *)

let test_empty_practice_analysis () =
  let empty = Prima_core.Policy.make [] in
  check_int "analyse of an empty practice finds nothing" 0
    (List.length (Prima_core.Data_analysis.analyse empty));
  let governed =
    Prima_core.Data_analysis.analyse_governed
      ~limits:(Relational.Budget.limits ~ticks:10 ())
      empty
  in
  check_int "governed analyse of an empty practice finds nothing" 0
    (List.length governed.Prima_core.Data_analysis.patterns);
  check "and does not degrade" false governed.Prima_core.Data_analysis.degraded

let test_empty_practice_epoch () =
  let config = Workload.Hospital.default_config ~seed:7 () in
  let vocab = config.Workload.Hospital.vocab in
  let p_ps = Workload.Hospital.policy_store config in
  (* a window of regular accesses only: Filter(P_AL) is empty *)
  let entries =
    List.init 8 (fun i ->
        Hdb.Audit_schema.entry ~time:(i + 1) ~op:Hdb.Audit_schema.Allow
          ~user:(Printf.sprintf "u%d" i) ~data:"medication_data" ~purpose:"treatment"
          ~authorized:"nurse" ~status:Hdb.Audit_schema.Regular)
  in
  let p_al = Audit_mgmt.To_policy.policy_of_entries entries in
  let report = Prima_core.Refinement.run_epoch ~vocab ~p_ps ~p_al () in
  check_int "no patterns from an all-regular window" 0
    (List.length report.Prima_core.Refinement.patterns)

(* --- the model oracle itself: consolidation mirrors the heap merge --- *)

let test_model_consolidation () =
  let config = Workload.Hospital.default_config ~seed:11 () in
  let config = { config with Workload.Hospital.total_accesses = 60 } in
  let entries =
    Workload.Generator.entries (Workload.Generator.generate config)
  in
  let vocab = config.Workload.Hospital.vocab in
  let p_ps = Workload.Hospital.policy_store config in
  let model = Chaos.Model.create ~vocab ~p_ps ~nsites:2 in
  (* deal the stream round-robin across clinical and the two remotes *)
  List.iteri
    (fun i e ->
      match i mod 3 with
      | 0 -> Chaos.Model.append_clinical model [ e ]
      | 1 -> Chaos.Model.append_remote model 0 [ e ]
      | _ -> Chaos.Model.append_remote model 1 [ e ])
    entries;
  (* against the real federation fed the same split *)
  let fed = Audit_mgmt.Federation.create () in
  let clinical = Audit_mgmt.Site.create ~name:"clinical-db" () in
  let r0 = Audit_mgmt.Site.create ~name:"site-0" () in
  let r1 = Audit_mgmt.Site.create ~name:"site-1" () in
  List.iter (Audit_mgmt.Federation.add_site fed) [ clinical; r0; r1 ];
  List.iteri
    (fun i e ->
      let site = match i mod 3 with 0 -> clinical | 1 -> r0 | _ -> r1 in
      Audit_mgmt.Site.ingest_entry site e)
    entries;
  let merged = Audit_mgmt.Federation.consolidated fed in
  let modelled = Chaos.Model.consolidated model in
  check_int "same trail length" (List.length merged) (List.length modelled);
  check "model consolidation equals the heap merge" true
    (List.for_all2 Hdb.Audit_schema.equal merged modelled)

let () =
  Alcotest.run "chaos"
    [
      ( "schedules",
        [
          Alcotest.test_case "seed 1 x 250 steps" `Slow (run_seed 1 250);
          Alcotest.test_case "seed 2 x 250 steps" `Slow (run_seed 2 250);
          Alcotest.test_case "seed 3 x 250 steps" `Slow (run_seed 3 250);
          Alcotest.test_case "deterministic replay" `Quick test_deterministic;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "empty practice: data analysis" `Quick
            test_empty_practice_analysis;
          Alcotest.test_case "empty practice: refinement epoch" `Quick
            test_empty_practice_epoch;
        ] );
      ( "model oracle",
        [
          Alcotest.test_case "consolidation mirrors the heap merge" `Quick
            test_model_consolidation;
        ] );
    ]
