(* Fault-matrix suite: deterministic fault injection over the federation.

   For seeded fault schedules, consolidation must never raise, the health
   report must account for 100% of input records (delivered + quarantined +
   stranded at skipped sites), runs must be reproducible bit-for-bit from
   the seed, and — the convergence oracle — once every site recovers and
   quarantined records are reprocessed, the refinement loop must accept
   exactly the same rules as the fault-free run.

   `make faults` runs this binary; the three fixed seeds of the matrix are
   baked in below. *)

open Audit_mgmt

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let matrix_seeds = [ 101; 202; 303 ]

let entry ?(time = 1) ?(op = Hdb.Audit_schema.Allow) ?(user = "u") ?(data = "referral")
    ?(purpose = "treatment") ?(authorized = "nurse")
    ?(status = Hdb.Audit_schema.Regular) () =
  Hdb.Audit_schema.entry ~time ~op ~user ~data ~purpose ~authorized ~status

(* --- retry --- *)

let test_retry_flaky_then_success () =
  let prng = Splitmix.create ~seed:1 in
  let clock = ref 0 in
  let calls = ref 0 in
  let result, stats =
    Retry.run ~policy:{ Retry.default with max_attempts = 5 } ~prng ~clock (fun ~attempt ->
        incr calls;
        if attempt < 3 then Error "flaky" else Ok attempt)
  in
  check_bool "succeeded" true (result = Ok 3);
  check_int "three calls" 3 !calls;
  check_int "attempts reported" 3 stats.Retry.attempts;
  check_bool "backoff advanced the clock" true (!clock > 0)

let test_retry_exhaustion_and_deadline () =
  let prng = Splitmix.create ~seed:1 in
  let clock = ref 0 in
  let result, stats =
    Retry.run ~policy:{ Retry.default with max_attempts = 3 } ~prng ~clock (fun ~attempt:_ ->
        Error "down")
  in
  check_bool "exhausted" true (result = Error "down");
  check_int "bounded attempts" 3 stats.Retry.attempts;
  (* A tight deadline cuts retries short regardless of max_attempts. *)
  let clock = ref 0 in
  let _, stats =
    Retry.run
      ~policy:{ Retry.default with max_attempts = 100; base_delay = 600; deadline = 1_000 }
      ~prng ~clock
      (fun ~attempt:_ -> Error "down")
  in
  check_bool "deadline bounds attempts" true (stats.Retry.attempts < 100)

(* The deadline boundary is closed: an attempt that would start at exactly
   [deadline] elapsed ms is refused.  Jitter off, base = max = 50ms, so the
   backoff trajectory is exact: attempt 1 at t=0, attempt 2 at t=50, and
   the attempt that would start at t=100 = deadline is refused.  Widening
   the budget by a single millisecond admits it. *)
let test_retry_deadline_boundary () =
  let policy =
    { Retry.max_attempts = 10; base_delay = 50; max_delay = 50; jitter = 0.; deadline = 100 }
  in
  let prng = Splitmix.create ~seed:1 in
  let clock = ref 0 in
  let calls = ref 0 in
  let result, stats =
    Retry.run ~policy ~prng ~clock (fun ~attempt:_ ->
        incr calls;
        Error "down")
  in
  check_bool "still failing" true (result = Error "down");
  check_int "attempt at exactly the deadline refused" 2 stats.Retry.attempts;
  check_int "callback count matches" 2 !calls;
  check_int "elapsed stops at the boundary" 100 stats.Retry.elapsed;
  (* one ms of headroom flips the boundary attempt to admitted *)
  let clock = ref 0 in
  let _, stats =
    Retry.run ~policy:{ policy with deadline = 101 } ~prng ~clock (fun ~attempt:_ ->
        Error "down")
  in
  check_int "deadline + 1 admits the boundary attempt" 3 stats.Retry.attempts

(* Jittered schedules are a pure function of the PRNG seed: same seed,
   bit-identical trajectory (attempts, elapsed, final clock); this is what
   lets any fault-matrix or chaos run replay from its seed alone. *)
let test_retry_jitter_determinism () =
  let policy =
    { Retry.max_attempts = 6; base_delay = 40; max_delay = 500; jitter = 0.5; deadline = 5_000 }
  in
  let trajectory seed =
    let prng = Splitmix.create ~seed in
    let clock = ref 0 in
    let _, stats = Retry.run ~policy ~prng ~clock (fun ~attempt:_ -> Error "down") in
    (stats.Retry.attempts, stats.Retry.elapsed, !clock)
  in
  check_bool "same seed, same jittered trajectory" true (trajectory 7 = trajectory 7);
  let a, e, c = trajectory 7 in
  check_int "attempts exhausted" 6 a;
  check_bool "jittered backoff advanced the clock" true (e > 0 && c = e);
  check_bool "different seed, different jitter" true
    (let _, e', _ = trajectory 8 in
     e <> e')

(* --- breaker transitions --- *)

let breaker_config = { Breaker.failure_threshold = 2; cooldown = 100; success_threshold = 1 }

let breaker_state fed name =
  match Federation.breaker fed name with
  | Some b -> Breaker.state b
  | None -> Alcotest.fail "no breaker"

let test_breaker_transitions () =
  let site = Site.create ~name:"icu" () in
  Site.ingest_entries site [ entry ~time:1 (); entry ~time:2 () ];
  let fault = Fault.wrap ~seed:7 site in
  Fault.take_down fault;
  let fed = Federation.create ~retry:Retry.no_retry () in
  Federation.add_faulty_site ~breaker:breaker_config fed fault;
  (* First failure: still closed. *)
  let r1 = Federation.consolidated_result fed in
  check_bool "closed after 1 failure" true (breaker_state fed "icu" = Breaker.Closed);
  check_bool "skipped for unavailability" true
    (match (List.hd r1.Federation.health.Health.sites).Health.status with
    | Health.Skipped (Health.Fetch_failed _) -> true
    | _ -> false);
  check_int "entries stranded" 2 r1.Federation.health.Health.skipped_entries;
  (* Second failure trips the breaker. *)
  ignore (Federation.consolidated_result fed);
  check_bool "open after threshold" true (breaker_state fed "icu" = Breaker.Open);
  (* While open and before cooldown, the site is skipped without a fetch. *)
  let r3 = Federation.consolidated_result fed in
  check_bool "skipped by breaker" true
    (match (List.hd r3.Federation.health.Health.sites).Health.status with
    | Health.Skipped Health.Breaker_open -> true
    | _ -> false);
  check_bool "still open" true (breaker_state fed "icu" = Breaker.Open);
  (* Cooldown elapses; the site has recovered; the probe closes it. *)
  Federation.advance_clock fed breaker_config.Breaker.cooldown;
  Fault.restore fault;
  let r4 = Federation.consolidated_result fed in
  check_bool "closed after successful probe" true (breaker_state fed "icu" = Breaker.Closed);
  check_int "entries delivered again" 2 (List.length r4.Federation.entries);
  check_bool "complete again" true (Health.complete r4.Federation.health)

let test_breaker_halfopen_failure_reopens () =
  let b = Breaker.create ~config:breaker_config () in
  Breaker.record_failure b ~now:0;
  Breaker.record_failure b ~now:0;
  check_bool "open" true (Breaker.state b = Breaker.Open);
  check_bool "denied before cooldown" false (Breaker.allow b ~now:50);
  check_bool "probe allowed after cooldown" true (Breaker.allow b ~now:100);
  check_bool "half-open" true (Breaker.state b = Breaker.Half_open);
  Breaker.record_failure b ~now:100;
  check_bool "failed probe reopens" true (Breaker.state b = Breaker.Open)

(* Half-open admits exactly one probe at a time: while the first probe's
   outcome is unrecorded, a second concurrent [allow] is refused — callers
   cannot stampede a barely-recovered site.  Recording the outcome frees
   the slot: a success (threshold 1 here) closes the breaker, a failure
   re-opens it and the next cooldown admits exactly one probe again. *)
let test_breaker_halfopen_single_probe () =
  let b = Breaker.create ~config:breaker_config () in
  Breaker.record_failure b ~now:0;
  Breaker.record_failure b ~now:0;
  check_bool "open" true (Breaker.state b = Breaker.Open);
  check_bool "first probe admitted" true (Breaker.allow b ~now:100);
  check_bool "half-open" true (Breaker.state b = Breaker.Half_open);
  check_bool "second concurrent probe refused" false (Breaker.allow b ~now:100);
  check_bool "still refused later, outcome unrecorded" false (Breaker.allow b ~now:500);
  check_bool "still half-open" true (Breaker.state b = Breaker.Half_open);
  Breaker.record_success b;
  check_bool "successful probe closes" true (Breaker.state b = Breaker.Closed);
  check_bool "closed admits freely" true (Breaker.allow b ~now:500 && Breaker.allow b ~now:500);
  (* the failure path frees the probe slot too *)
  Breaker.record_failure b ~now:500;
  Breaker.record_failure b ~now:500;
  check_bool "re-opened" true (Breaker.state b = Breaker.Open);
  check_bool "new cooldown, one probe" true (Breaker.allow b ~now:600);
  check_bool "and only one" false (Breaker.allow b ~now:600);
  Breaker.record_failure b ~now:600;
  check_bool "failed probe re-opens" true (Breaker.state b = Breaker.Open);
  check_bool "refused while open" false (Breaker.allow b ~now:650);
  check_bool "next cooldown admits a fresh probe" true (Breaker.allow b ~now:700)

(* --- the durable consolidated archive --- *)

(* With an archive attached, a dark site is served stale from its shards:
   archived records count as delivered, the lag as stranded — and a later
   live fetch catches the archive back up. *)
let test_archive_stale_serving () =
  let site = Site.create ~name:"icu" () in
  Site.ingest_entries site [ entry ~time:1 ~user:"a" (); entry ~time:2 ~user:"b" () ];
  let fault = Fault.wrap ~config:Fault.no_faults ~seed:1 site in
  let fed = Federation.create ~retry:Retry.no_retry () in
  Federation.add_faulty_site fed fault;
  let archive = Shard_store.create ~seed:5 () in
  Federation.attach_archive fed archive;
  let r1 = Federation.consolidated_result fed in
  check_bool "live fetch complete" true (Health.complete r1.Federation.health);
  check_int "fetch archived" 2 (Shard_store.site_records archive ~site:"icu");
  (* new entries arrive, then the site goes dark before they are archived *)
  Site.ingest_entries site [ entry ~time:3 ~user:"c" () ];
  Fault.take_down fault;
  let r2 = Federation.consolidated_result fed in
  check_int "stale serve: the archived records" 2 (List.length r2.Federation.entries);
  let h = r2.Federation.health in
  (match (List.hd h.Health.sites).Health.status with
  | Health.Stale { archived = 2; lag = 1 } -> ()
  | s -> Alcotest.failf "expected Stale{2,1}, got %s" (Fmt.str "%a" Health.pp_status s));
  check_int "archived counted delivered" 2 h.Health.delivered;
  check_int "lag counted stranded" 1 h.Health.skipped_entries;
  check_int "accounting intact" h.Health.total
    (h.Health.delivered + h.Health.quarantined + h.Health.skipped_entries);
  check_bool "partial while lagging" true (h.Health.completeness < 1.0);
  (* the site comes back: live fetch resumes and the archive catches up *)
  Fault.restore fault;
  let r3 = Federation.consolidated_result fed in
  check_bool "complete again" true (Health.complete r3.Federation.health);
  check_int "archive caught up" 3 (Shard_store.site_records archive ~site:"icu")

(* Open-or-recover semantics: a torn manifest is rebuilt from shard scans
   (never trusted half-read), and the rebuilt store merges identically. *)
let test_archive_manifest_rebuild () =
  let a = Shard_store.create ~seed:9 () in
  ignore
    (Shard_store.archive_site a ~site:"icu"
       [ entry ~time:1 ~user:"a" (); entry ~time:10_500 ~user:"b" () ]);
  ignore (Shard_store.archive_site a ~site:"lab" [ entry ~time:7 ~user:"c" () ]);
  Shard_store.sync a;
  check_int "two buckets + one = three shards" 3 (Shard_store.shard_count a);
  let before = Shard_store.merged a in
  (* tear the manifest: drop its last bytes *)
  let md = Shard_store.manifest_device a in
  let img = Durable.Device.contents md in
  Durable.Device.truncate md (String.length img - 3);
  Durable.Device.sync md;
  let b, report = Shard_store.reopen ~manifest:md ~shards:(Shard_store.devices a) () in
  check_bool "manifest rebuilt from scans" true report.Shard_store.manifest_rebuilt;
  check_int "every shard recovered from its scan" 3 (Shard_store.shard_count b);
  check_int "no adoptions against a rebuilt catalogue" 0 report.Shard_store.adopted;
  check_int "no shard degraded" 0 (Shard_store.shards_degraded b);
  check_bool "merge identical after rebuild" true
    (List.for_all2 Hdb.Audit_schema.equal before (Shard_store.merged b));
  (* and the rewritten manifest now reads back whole *)
  let _, report2 = Shard_store.reopen ~manifest:md ~shards:(Shard_store.devices b) () in
  check_bool "second open trusts the manifest" false report2.Shard_store.manifest_rebuilt

(* A tampered shard is quarantined per shard, not whole-store: its records
   count stranded, the merge excludes it, the other site still serves —
   and a clean fetch supersedes the damaged archive wholesale. *)
let test_archive_tampered_shard_quarantined () =
  let a = Shard_store.create ~seed:21 () in
  let icu = [ entry ~time:1 ~user:"a" (); entry ~time:2 ~user:"b" () ] in
  ignore (Shard_store.archive_site a ~site:"icu" icu);
  ignore (Shard_store.archive_site a ~site:"lab" [ entry ~time:3 ~user:"c" () ]);
  Shard_store.sync a;
  let _, wal, _ =
    List.find (fun (n, _, _) -> String.equal n "icu#0") (Shard_store.devices a)
  in
  let off, len, _ =
    List.hd
      (List.filter
         (fun (_, _, k) -> k = Durable.Frame.Data)
         (Durable.Wal.frame_spans (Durable.Device.contents wal)))
  in
  Durable.Device.corrupt_stable wal ~pos:(off + (len / 2)) ~bit:3;
  let b, report = Shard_store.reopen ~manifest:(Shard_store.manifest_device a)
      ~shards:(Shard_store.devices a) () in
  check_bool "manifest itself fine" false report.Shard_store.manifest_rebuilt;
  (match Shard_store.shard_status b ~site:"icu" ~bucket:0 with
  | Some (Shard_store.Tampered _) -> ()
  | s ->
    Alcotest.failf "expected Tampered, got %s"
      (match s with Some st -> Shard_store.status_to_string st | None -> "no shard"));
  check_int "tampered shard serves nothing" 0 (Shard_store.site_records b ~site:"icu");
  check_int "its records counted stranded" 2 (Shard_store.site_stranded b ~site:"icu");
  check_bool "site degraded" true (Shard_store.site_degraded b ~site:"icu");
  check_int "blast radius is one shard" 1 (Shard_store.shards_degraded b);
  check_int "other site unaffected" 1 (Shard_store.site_records b ~site:"lab");
  check_bool "merge excludes the quarantined shard" true
    (List.for_all
       (fun e -> e.Hdb.Audit_schema.user = "c")
       (Shard_store.merged b));
  (* a clean fetch supersedes the damaged archive *)
  let s = Shard_store.archive_site b ~site:"icu" icu in
  check_bool "rebuilt wholesale from the fetch" true s.Shard_store.rebuilt;
  check_bool "healthy again" false (Shard_store.site_degraded b ~site:"icu");
  check_int "records back" 2 (Shard_store.site_records b ~site:"icu")

(* A catalogued shard whose device is gone surfaces as lost: a torn
   placeholder keeps the site degraded until the next fetch rebuilds. *)
let test_archive_lost_shard_placeholder () =
  let a = Shard_store.create ~seed:33 () in
  let icu = [ entry ~time:1 ~user:"a" (); entry ~time:10_500 ~user:"b" () ] in
  ignore (Shard_store.archive_site a ~site:"icu" icu);
  Shard_store.sync a;
  let surviving =
    List.filter (fun (n, _, _) -> not (String.equal n "icu#1")) (Shard_store.devices a)
  in
  let b, report =
    Shard_store.reopen ~manifest:(Shard_store.manifest_device a) ~shards:surviving ()
  in
  check_bool "missing shard reported lost" true (report.Shard_store.lost = [ "icu#1" ]);
  check_bool "site degraded until refetched" true (Shard_store.site_degraded b ~site:"icu");
  let s = Shard_store.archive_site b ~site:"icu" icu in
  check_bool "next fetch rebuilds the site" true s.Shard_store.rebuilt;
  check_bool "whole again" false (Shard_store.site_degraded b ~site:"icu");
  check_int "both records servable" 2 (Shard_store.site_records b ~site:"icu")

(* --- the fault matrix --- *)

let matrix_config =
  { Fault.no_faults with
    Fault.p_unavailable = 0.25;
    p_timeout = 0.15;
    p_flaky = 0.25;
    p_corrupt = 0.1;
  }

(* The paper's Table 1 trail, split round-robin across [nsites] sites,
   each behind a fault wrapper seeded from [seed]. *)
let build_matrix_federation ~seed ~nsites ~faulty =
  let sites =
    List.init nsites (fun i -> Site.create ~name:(Printf.sprintf "site-%d" i) ())
  in
  List.iteri
    (fun i e -> Site.ingest_entry (List.nth sites (i mod nsites)) e)
    (Workload.Scenario.table1_entries ());
  let fed = Federation.create ~seed () in
  List.iteri
    (fun i site ->
      if faulty then
        Federation.add_faulty_site fed
          (Fault.wrap ~config:matrix_config ~seed:((seed * 10) + i) site)
      else Federation.add_site fed site)
    sites;
  fed

let health_site_total (s : Health.site_health) =
  s.Health.entries + s.Health.quarantined + s.Health.skipped_entries

let health_fingerprint (h : Health.t) =
  ( h.Health.delivered,
    h.Health.quarantined,
    h.Health.skipped_entries,
    List.map
      (fun (s : Health.site_health) ->
        (s.Health.site, s.Health.entries, s.Health.quarantined, s.Health.skipped_entries))
      h.Health.sites )

(* Invariant: every record a site holds is delivered, quarantined or
   stranded — the report accounts for 100% of input. *)
let assert_accounts_for_all_input fed (h : Health.t) =
  let known =
    List.fold_left
      (fun acc site -> acc + Site.length site + Site.quarantined_count site)
      0 (Federation.sites fed)
  in
  check_int "total = known input" known h.Health.total;
  check_int "delivered + quarantined + stranded = total"
    h.Health.total
    (h.Health.delivered + h.Health.quarantined + h.Health.skipped_entries);
  List.iter
    (fun (s : Health.site_health) ->
      match Federation.site fed s.Health.site with
      | Some site ->
        check_int
          (Printf.sprintf "site %s accounts for its records" s.Health.site)
          (Site.length site + Site.quarantined_count site)
          (health_site_total s)
      | None -> Alcotest.fail "health names an unknown site")
    h.Health.sites

let test_matrix_accounting_and_determinism seed () =
  let run () =
    let fed = build_matrix_federation ~seed ~nsites:3 ~faulty:true in
    let result = Federation.consolidated_result fed in
    assert_accounts_for_all_input fed result.Federation.health;
    (result, fed)
  in
  let r1, _ = run () in
  let r2, _ = run () in
  check_bool "same health, bit for bit" true
    (health_fingerprint r1.Federation.health = health_fingerprint r2.Federation.health);
  check_bool "same entries, bit for bit" true
    (List.for_all2 Hdb.Audit_schema.equal r1.Federation.entries r2.Federation.entries)

(* The convergence oracle: after heal + reprocess, consolidation is
   complete and refinement accepts exactly the fault-free baseline. *)
let test_matrix_convergence seed () =
  let vocab = Workload.Scenario.vocab () in
  let p_ps = Workload.Scenario.policy_store () in
  let epoch entries =
    Prima_core.Refinement.run_epoch ~vocab ~p_ps
      ~p_al:(To_policy.policy_of_entries entries) ()
  in
  let baseline_fed = build_matrix_federation ~seed ~nsites:3 ~faulty:false in
  let baseline = Federation.consolidated baseline_fed in
  let baseline_report = epoch baseline in
  check_int "baseline adopts the Table 1 pattern" 1
    (List.length baseline_report.Prima_core.Refinement.accepted);
  let fed = build_matrix_federation ~seed ~nsites:3 ~faulty:true in
  let degraded = Federation.consolidated_result fed in
  assert_accounts_for_all_input fed degraded.Federation.health;
  (* The matrix seeds are chosen to actually degrade consolidation —
     otherwise this oracle proves nothing. *)
  check_bool "schedule degrades the window" true
    (degraded.Federation.health.Health.completeness < 1.0);
  (* Recovery: heal every site; a clean fetch supersedes transit
     corruption, so consolidation is complete again. *)
  Federation.heal_all fed;
  let recovered = Federation.consolidated_result fed in
  check_bool "complete after recovery" true (Health.complete recovered.Federation.health);
  check_bool "recovered view = fault-free view" true
    (List.for_all2 Hdb.Audit_schema.equal recovered.Federation.entries baseline);
  let recovered_report = epoch recovered.Federation.entries in
  check_bool "same accepted rules as the fault-free run" true
    (List.for_all2 Prima_core.Rule.equal_syntactic
       (List.sort Prima_core.Rule.compare recovered_report.Prima_core.Refinement.accepted)
       (List.sort Prima_core.Rule.compare baseline_report.Prima_core.Refinement.accepted))

(* Ingest-path convergence: a site whose mapping is broken quarantines its
   batch; after the mapping fix and reprocessing, refinement matches the
   run whose mapping was correct from the start. *)
let test_matrix_convergence_through_quarantine () =
  let raws =
    List.map
      (fun e ->
        List.map
          (fun (k, v) ->
            if String.equal k Vocabulary.Audit_attrs.op then
              (k, if String.equal v "1" then "ok" else "nope")
            else (k, v))
          (Hdb.Audit_schema.to_assoc e))
      (Workload.Scenario.table1_entries ())
  in
  let good_mapping =
    Mapping.create
      ~value_synonyms:[ (("op", "ok"), "granted"); (("op", "nope"), "denied") ]
      ()
  in
  let vocab = Workload.Scenario.vocab () in
  let p_ps = Workload.Scenario.policy_store () in
  let epoch fed =
    Prima_core.Refinement.run_epoch ~vocab ~p_ps ~p_al:(Federation.to_policy fed) ()
  in
  (* Baseline: correct mapping from the start. *)
  let clean = Site.create ~mapping:good_mapping ~name:"legacy" () in
  let s = Site.ingest_raw_all clean raws in
  check_int "baseline ingests all" (List.length raws) s.Site.ingested;
  let baseline_report = epoch (Federation.of_sites [ clean ]) in
  (* Degraded: broken mapping quarantines every record... *)
  let broken = Site.create ~name:"legacy" () in
  let s = Site.ingest_raw_all broken raws in
  check_int "all quarantined" (List.length raws) s.Site.quarantined;
  let fed = Federation.of_sites [ broken ] in
  let degraded = Federation.consolidated_result fed in
  check_bool "nothing delivered" true
    (degraded.Federation.health.Health.completeness = 0.0);
  (* ...until the mapping fix lets the quarantine drain. *)
  Site.set_mapping broken good_mapping;
  let s = Site.reprocess_quarantined broken in
  check_int "all reprocessed" (List.length raws) s.Site.ingested;
  let recovered = Federation.consolidated_result fed in
  check_bool "complete after reprocess" true (Health.complete recovered.Federation.health);
  let recovered_report = epoch fed in
  check_bool "same accepted rules as the clean-mapping run" true
    (List.for_all2 Prima_core.Rule.equal_syntactic
       (List.sort Prima_core.Rule.compare recovered_report.Prima_core.Refinement.accepted)
       (List.sort Prima_core.Rule.compare baseline_report.Prima_core.Refinement.accepted))

let matrix_cases =
  List.concat_map
    (fun seed ->
      [ Alcotest.test_case
          (Printf.sprintf "accounting + determinism (seed %d)" seed)
          `Quick
          (test_matrix_accounting_and_determinism seed);
        Alcotest.test_case
          (Printf.sprintf "convergence oracle (seed %d)" seed)
          `Quick (test_matrix_convergence seed);
      ])
    matrix_seeds

let () =
  Alcotest.run "faults"
    [ ( "retry",
        [ Alcotest.test_case "flaky then success" `Quick test_retry_flaky_then_success;
          Alcotest.test_case "exhaustion and deadline" `Quick
            test_retry_exhaustion_and_deadline;
          Alcotest.test_case "deadline boundary is closed" `Quick
            test_retry_deadline_boundary;
          Alcotest.test_case "jitter determinism" `Quick test_retry_jitter_determinism;
        ] );
      ( "breaker",
        [ Alcotest.test_case "transitions through the federation" `Quick
            test_breaker_transitions;
          Alcotest.test_case "half-open failure reopens" `Quick
            test_breaker_halfopen_failure_reopens;
          Alcotest.test_case "half-open admits exactly one probe" `Quick
            test_breaker_halfopen_single_probe;
        ] );
      ( "archive",
        [ Alcotest.test_case "stale serving from shards" `Quick test_archive_stale_serving;
          Alcotest.test_case "torn manifest rebuilt from scans" `Quick
            test_archive_manifest_rebuild;
          Alcotest.test_case "tampered shard quarantined per-shard" `Quick
            test_archive_tampered_shard_quarantined;
          Alcotest.test_case "lost shard placeholder until refetch" `Quick
            test_archive_lost_shard_placeholder;
        ] );
      ("fault-matrix", matrix_cases);
      ( "quarantine-convergence",
        [ Alcotest.test_case "mapping fix converges" `Quick
            test_matrix_convergence_through_quarantine;
        ] );
    ]
