(* Fault-matrix suite: deterministic fault injection over the federation.

   For seeded fault schedules, consolidation must never raise, the health
   report must account for 100% of input records (delivered + quarantined +
   stranded at skipped sites), runs must be reproducible bit-for-bit from
   the seed, and — the convergence oracle — once every site recovers and
   quarantined records are reprocessed, the refinement loop must accept
   exactly the same rules as the fault-free run.

   `make faults` runs this binary; the three fixed seeds of the matrix are
   baked in below. *)

open Audit_mgmt

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let matrix_seeds = [ 101; 202; 303 ]

let entry ?(time = 1) ?(op = Hdb.Audit_schema.Allow) ?(user = "u") ?(data = "referral")
    ?(purpose = "treatment") ?(authorized = "nurse")
    ?(status = Hdb.Audit_schema.Regular) () =
  Hdb.Audit_schema.entry ~time ~op ~user ~data ~purpose ~authorized ~status

(* --- retry --- *)

let test_retry_flaky_then_success () =
  let prng = Splitmix.create ~seed:1 in
  let clock = ref 0 in
  let calls = ref 0 in
  let result, stats =
    Retry.run ~policy:{ Retry.default with max_attempts = 5 } ~prng ~clock (fun ~attempt ->
        incr calls;
        if attempt < 3 then Error "flaky" else Ok attempt)
  in
  check_bool "succeeded" true (result = Ok 3);
  check_int "three calls" 3 !calls;
  check_int "attempts reported" 3 stats.Retry.attempts;
  check_bool "backoff advanced the clock" true (!clock > 0)

let test_retry_exhaustion_and_deadline () =
  let prng = Splitmix.create ~seed:1 in
  let clock = ref 0 in
  let result, stats =
    Retry.run ~policy:{ Retry.default with max_attempts = 3 } ~prng ~clock (fun ~attempt:_ ->
        Error "down")
  in
  check_bool "exhausted" true (result = Error "down");
  check_int "bounded attempts" 3 stats.Retry.attempts;
  (* A tight deadline cuts retries short regardless of max_attempts. *)
  let clock = ref 0 in
  let _, stats =
    Retry.run
      ~policy:{ Retry.default with max_attempts = 100; base_delay = 600; deadline = 1_000 }
      ~prng ~clock
      (fun ~attempt:_ -> Error "down")
  in
  check_bool "deadline bounds attempts" true (stats.Retry.attempts < 100)

(* --- breaker transitions --- *)

let breaker_config = { Breaker.failure_threshold = 2; cooldown = 100; success_threshold = 1 }

let breaker_state fed name =
  match Federation.breaker fed name with
  | Some b -> Breaker.state b
  | None -> Alcotest.fail "no breaker"

let test_breaker_transitions () =
  let site = Site.create ~name:"icu" () in
  Site.ingest_entries site [ entry ~time:1 (); entry ~time:2 () ];
  let fault = Fault.wrap ~seed:7 site in
  Fault.take_down fault;
  let fed = Federation.create ~retry:Retry.no_retry () in
  Federation.add_faulty_site ~breaker:breaker_config fed fault;
  (* First failure: still closed. *)
  let r1 = Federation.consolidated_result fed in
  check_bool "closed after 1 failure" true (breaker_state fed "icu" = Breaker.Closed);
  check_bool "skipped for unavailability" true
    (match (List.hd r1.Federation.health.Health.sites).Health.status with
    | Health.Skipped (Health.Fetch_failed _) -> true
    | _ -> false);
  check_int "entries stranded" 2 r1.Federation.health.Health.skipped_entries;
  (* Second failure trips the breaker. *)
  ignore (Federation.consolidated_result fed);
  check_bool "open after threshold" true (breaker_state fed "icu" = Breaker.Open);
  (* While open and before cooldown, the site is skipped without a fetch. *)
  let r3 = Federation.consolidated_result fed in
  check_bool "skipped by breaker" true
    (match (List.hd r3.Federation.health.Health.sites).Health.status with
    | Health.Skipped Health.Breaker_open -> true
    | _ -> false);
  check_bool "still open" true (breaker_state fed "icu" = Breaker.Open);
  (* Cooldown elapses; the site has recovered; the probe closes it. *)
  Federation.advance_clock fed breaker_config.Breaker.cooldown;
  Fault.restore fault;
  let r4 = Federation.consolidated_result fed in
  check_bool "closed after successful probe" true (breaker_state fed "icu" = Breaker.Closed);
  check_int "entries delivered again" 2 (List.length r4.Federation.entries);
  check_bool "complete again" true (Health.complete r4.Federation.health)

let test_breaker_halfopen_failure_reopens () =
  let b = Breaker.create ~config:breaker_config () in
  Breaker.record_failure b ~now:0;
  Breaker.record_failure b ~now:0;
  check_bool "open" true (Breaker.state b = Breaker.Open);
  check_bool "denied before cooldown" false (Breaker.allow b ~now:50);
  check_bool "probe allowed after cooldown" true (Breaker.allow b ~now:100);
  check_bool "half-open" true (Breaker.state b = Breaker.Half_open);
  Breaker.record_failure b ~now:100;
  check_bool "failed probe reopens" true (Breaker.state b = Breaker.Open)

(* --- the fault matrix --- *)

let matrix_config =
  { Fault.no_faults with
    Fault.p_unavailable = 0.25;
    p_timeout = 0.15;
    p_flaky = 0.25;
    p_corrupt = 0.1;
  }

(* The paper's Table 1 trail, split round-robin across [nsites] sites,
   each behind a fault wrapper seeded from [seed]. *)
let build_matrix_federation ~seed ~nsites ~faulty =
  let sites =
    List.init nsites (fun i -> Site.create ~name:(Printf.sprintf "site-%d" i) ())
  in
  List.iteri
    (fun i e -> Site.ingest_entry (List.nth sites (i mod nsites)) e)
    (Workload.Scenario.table1_entries ());
  let fed = Federation.create ~seed () in
  List.iteri
    (fun i site ->
      if faulty then
        Federation.add_faulty_site fed
          (Fault.wrap ~config:matrix_config ~seed:((seed * 10) + i) site)
      else Federation.add_site fed site)
    sites;
  fed

let health_site_total (s : Health.site_health) =
  s.Health.entries + s.Health.quarantined + s.Health.skipped_entries

let health_fingerprint (h : Health.t) =
  ( h.Health.delivered,
    h.Health.quarantined,
    h.Health.skipped_entries,
    List.map
      (fun (s : Health.site_health) ->
        (s.Health.site, s.Health.entries, s.Health.quarantined, s.Health.skipped_entries))
      h.Health.sites )

(* Invariant: every record a site holds is delivered, quarantined or
   stranded — the report accounts for 100% of input. *)
let assert_accounts_for_all_input fed (h : Health.t) =
  let known =
    List.fold_left
      (fun acc site -> acc + Site.length site + Site.quarantined_count site)
      0 (Federation.sites fed)
  in
  check_int "total = known input" known h.Health.total;
  check_int "delivered + quarantined + stranded = total"
    h.Health.total
    (h.Health.delivered + h.Health.quarantined + h.Health.skipped_entries);
  List.iter
    (fun (s : Health.site_health) ->
      match Federation.site fed s.Health.site with
      | Some site ->
        check_int
          (Printf.sprintf "site %s accounts for its records" s.Health.site)
          (Site.length site + Site.quarantined_count site)
          (health_site_total s)
      | None -> Alcotest.fail "health names an unknown site")
    h.Health.sites

let test_matrix_accounting_and_determinism seed () =
  let run () =
    let fed = build_matrix_federation ~seed ~nsites:3 ~faulty:true in
    let result = Federation.consolidated_result fed in
    assert_accounts_for_all_input fed result.Federation.health;
    (result, fed)
  in
  let r1, _ = run () in
  let r2, _ = run () in
  check_bool "same health, bit for bit" true
    (health_fingerprint r1.Federation.health = health_fingerprint r2.Federation.health);
  check_bool "same entries, bit for bit" true
    (List.for_all2 Hdb.Audit_schema.equal r1.Federation.entries r2.Federation.entries)

(* The convergence oracle: after heal + reprocess, consolidation is
   complete and refinement accepts exactly the fault-free baseline. *)
let test_matrix_convergence seed () =
  let vocab = Workload.Scenario.vocab () in
  let p_ps = Workload.Scenario.policy_store () in
  let epoch entries =
    Prima_core.Refinement.run_epoch ~vocab ~p_ps
      ~p_al:(To_policy.policy_of_entries entries) ()
  in
  let baseline_fed = build_matrix_federation ~seed ~nsites:3 ~faulty:false in
  let baseline = Federation.consolidated baseline_fed in
  let baseline_report = epoch baseline in
  check_int "baseline adopts the Table 1 pattern" 1
    (List.length baseline_report.Prima_core.Refinement.accepted);
  let fed = build_matrix_federation ~seed ~nsites:3 ~faulty:true in
  let degraded = Federation.consolidated_result fed in
  assert_accounts_for_all_input fed degraded.Federation.health;
  (* The matrix seeds are chosen to actually degrade consolidation —
     otherwise this oracle proves nothing. *)
  check_bool "schedule degrades the window" true
    (degraded.Federation.health.Health.completeness < 1.0);
  (* Recovery: heal every site; a clean fetch supersedes transit
     corruption, so consolidation is complete again. *)
  Federation.heal_all fed;
  let recovered = Federation.consolidated_result fed in
  check_bool "complete after recovery" true (Health.complete recovered.Federation.health);
  check_bool "recovered view = fault-free view" true
    (List.for_all2 Hdb.Audit_schema.equal recovered.Federation.entries baseline);
  let recovered_report = epoch recovered.Federation.entries in
  check_bool "same accepted rules as the fault-free run" true
    (List.for_all2 Prima_core.Rule.equal_syntactic
       (List.sort Prima_core.Rule.compare recovered_report.Prima_core.Refinement.accepted)
       (List.sort Prima_core.Rule.compare baseline_report.Prima_core.Refinement.accepted))

(* Ingest-path convergence: a site whose mapping is broken quarantines its
   batch; after the mapping fix and reprocessing, refinement matches the
   run whose mapping was correct from the start. *)
let test_matrix_convergence_through_quarantine () =
  let raws =
    List.map
      (fun e ->
        List.map
          (fun (k, v) ->
            if String.equal k Vocabulary.Audit_attrs.op then
              (k, if String.equal v "1" then "ok" else "nope")
            else (k, v))
          (Hdb.Audit_schema.to_assoc e))
      (Workload.Scenario.table1_entries ())
  in
  let good_mapping =
    Mapping.create
      ~value_synonyms:[ (("op", "ok"), "granted"); (("op", "nope"), "denied") ]
      ()
  in
  let vocab = Workload.Scenario.vocab () in
  let p_ps = Workload.Scenario.policy_store () in
  let epoch fed =
    Prima_core.Refinement.run_epoch ~vocab ~p_ps ~p_al:(Federation.to_policy fed) ()
  in
  (* Baseline: correct mapping from the start. *)
  let clean = Site.create ~mapping:good_mapping ~name:"legacy" () in
  let s = Site.ingest_raw_all clean raws in
  check_int "baseline ingests all" (List.length raws) s.Site.ingested;
  let baseline_report = epoch (Federation.of_sites [ clean ]) in
  (* Degraded: broken mapping quarantines every record... *)
  let broken = Site.create ~name:"legacy" () in
  let s = Site.ingest_raw_all broken raws in
  check_int "all quarantined" (List.length raws) s.Site.quarantined;
  let fed = Federation.of_sites [ broken ] in
  let degraded = Federation.consolidated_result fed in
  check_bool "nothing delivered" true
    (degraded.Federation.health.Health.completeness = 0.0);
  (* ...until the mapping fix lets the quarantine drain. *)
  Site.set_mapping broken good_mapping;
  let s = Site.reprocess_quarantined broken in
  check_int "all reprocessed" (List.length raws) s.Site.ingested;
  let recovered = Federation.consolidated_result fed in
  check_bool "complete after reprocess" true (Health.complete recovered.Federation.health);
  let recovered_report = epoch fed in
  check_bool "same accepted rules as the clean-mapping run" true
    (List.for_all2 Prima_core.Rule.equal_syntactic
       (List.sort Prima_core.Rule.compare recovered_report.Prima_core.Refinement.accepted)
       (List.sort Prima_core.Rule.compare baseline_report.Prima_core.Refinement.accepted))

let matrix_cases =
  List.concat_map
    (fun seed ->
      [ Alcotest.test_case
          (Printf.sprintf "accounting + determinism (seed %d)" seed)
          `Quick
          (test_matrix_accounting_and_determinism seed);
        Alcotest.test_case
          (Printf.sprintf "convergence oracle (seed %d)" seed)
          `Quick (test_matrix_convergence seed);
      ])
    matrix_seeds

let () =
  Alcotest.run "faults"
    [ ( "retry",
        [ Alcotest.test_case "flaky then success" `Quick test_retry_flaky_then_success;
          Alcotest.test_case "exhaustion and deadline" `Quick
            test_retry_exhaustion_and_deadline;
        ] );
      ( "breaker",
        [ Alcotest.test_case "transitions through the federation" `Quick
            test_breaker_transitions;
          Alcotest.test_case "half-open failure reopens" `Quick
            test_breaker_halfopen_failure_reopens;
        ] );
      ("fault-matrix", matrix_cases);
      ( "quarantine-convergence",
        [ Alcotest.test_case "mapping fix converges" `Quick
            test_matrix_convergence_through_quarantine;
        ] );
    ]
