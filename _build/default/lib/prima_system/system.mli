(** The assembled PRIMA architecture of Figure 4.

    Wires Privacy Policy Definition (the HDB Control Center), Audit
    Management (the federation) and Policy Refinement together, and closes
    the loop: patterns accepted during refinement are installed both in the
    formal policy store P_PS and as Active Enforcement permit rules, so the
    corresponding accesses stop needing Break-The-Glass — privacy controls
    are "gradually and seamlessly" embedded into the clinical workflow. *)

type t

val create :
  ?training_minimum:int ->
  ?config:Prima_core.Refinement.config ->
  vocab:Vocabulary.Vocab.t ->
  p_ps:Prima_core.Policy.t ->
  unit ->
  t
(** Seeds the enforcement rule base from [p_ps] and registers the clinical
    database's audit store as the federation's first site. *)

val control : t -> Hdb.Control_center.t
val federation : t -> Audit_mgmt.Federation.t
val prima : t -> Prima_core.Prima.t

val add_site : t -> Audit_mgmt.Site.t -> unit
(** Bring another system's audit trail into the consolidated view. *)

val sync_audit : t -> unit
(** Pull the consolidated view into the refinement component's P_AL. *)

val coverage : t -> Prima_core.Prima.coverage_report
(** Syncs, then reports both coverage readings. *)

val install_pattern : t -> Prima_core.Rule.t -> unit
(** Install a pattern as an enforcement permit rule (no-op for rules
    without the three pattern attributes). *)

val trend : t -> window:int -> Prima_core.Trend.point list
(** Coverage trend of the consolidated trail against the current store;
    {!Prima_core.Trend.drifting} on the result signals a refinement run is
    due. *)

val refine : t -> (Prima_core.Refinement.epoch_report, string) result
(** One full cycle: consolidate logs, run Algorithm 2 with the configured
    acceptance, embed accepted patterns into enforcement.  [Error] during
    the training period. *)
