lib/prima_system/system.ml: Audit_mgmt Hdb List Prima_core Vocabulary
