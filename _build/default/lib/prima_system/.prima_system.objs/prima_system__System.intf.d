lib/prima_system/system.mli: Audit_mgmt Hdb Prima_core Vocabulary
