(* The assembled PRIMA architecture of Figure 4:

     stakeholders -> Privacy Policy Definition (HDB Control Center)
                  -> privacy controls in the clinical environment
                  -> audit logs -> Audit Management (federation)
                  -> Policy Refinement -> definitions back into the policy

   This module wires the three components together and closes the loop:
   patterns accepted during refinement are installed both in the formal
   policy store P_PS and as Active Enforcement permit rules, so the
   corresponding accesses stop needing Break-The-Glass — privacy controls
   are "gradually and seamlessly" embedded into the clinical workflow. *)

type t = {
  control : Hdb.Control_center.t;
  federation : Audit_mgmt.Federation.t;
  prima : Prima_core.Prima.t;
}

let create ?(training_minimum = 0) ?config ~vocab ~p_ps () =
  let control = Hdb.Control_center.create ~vocab () in
  (* Seed the enforcement rule base from the initial policy store. *)
  List.iter
    (fun rule ->
      match
        ( Prima_core.Rule.find_attr rule Vocabulary.Audit_attrs.data,
          Prima_core.Rule.find_attr rule Vocabulary.Audit_attrs.purpose,
          Prima_core.Rule.find_attr rule Vocabulary.Audit_attrs.authorized )
      with
      | Some data, Some purpose, Some authorized ->
        Hdb.Control_center.permit control ~data ~purpose ~authorized
      | _ -> ())
    (Prima_core.Policy.rules p_ps);
  let federation = Audit_mgmt.Federation.create () in
  Audit_mgmt.Federation.add_site federation
    (Audit_mgmt.Site.of_store ~name:"clinical-db" (Hdb.Control_center.audit_store control));
  let prima = Prima_core.Prima.create ~training_minimum ?config ~vocab ~p_ps () in
  { control; federation; prima }

let control t = t.control
let federation t = t.federation
let prima t = t.prima

let add_site t site = Audit_mgmt.Federation.add_site t.federation site

(* Pull the consolidated audit view into the refinement component's P_AL. *)
let sync_audit t =
  Prima_core.Prima.reset_audit t.prima;
  Prima_core.Prima.ingest_rules t.prima
    (Prima_core.Policy.rules (Audit_mgmt.Federation.to_policy t.federation))

let coverage t =
  sync_audit t;
  Prima_core.Prima.coverage t.prima

(* Install an adopted pattern as an enforcement rule so subsequent accesses
   matching it are regular, not exception-based. *)
let install_pattern t rule =
  match
    ( Prima_core.Rule.find_attr rule Vocabulary.Audit_attrs.data,
      Prima_core.Rule.find_attr rule Vocabulary.Audit_attrs.purpose,
      Prima_core.Rule.find_attr rule Vocabulary.Audit_attrs.authorized )
  with
  | Some data, Some purpose, Some authorized ->
    Hdb.Control_center.permit t.control ~data ~purpose ~authorized
  | _ -> ()

(* Coverage trend over the consolidated trail, judged against the current
   store; [drifting] on its result signals a refinement run is due. *)
let trend t ~window =
  sync_audit t;
  Prima_core.Trend.compute
    (Prima_core.Prima.vocab t.prima)
    ~p_ps:(Prima_core.Prima.policy_store t.prima)
    ~p_al:(Prima_core.Prima.audit_policy t.prima)
    ~window ()

(* One full refinement cycle: consolidate logs, run Algorithm 2 with the
   configured acceptance, embed accepted patterns into enforcement. *)
let refine t : (Prima_core.Refinement.epoch_report, string) result =
  sync_audit t;
  match Prima_core.Prima.refine t.prima with
  | Error _ as e -> e
  | Ok report ->
    List.iter (install_pattern t) report.Prima_core.Refinement.accepted;
    Ok report
