(* Append-only audit logging with a logical clock.  Every enforcement
   decision — permitted, denied, or break-glass — lands here. *)

type t = {
  store : Audit_store.t;
  mutable clock : int;
}

let create ?(start_time = 1) () = { store = Audit_store.create (); clock = start_time }

let store t = t.store

let now t = t.clock

let tick t =
  let time = t.clock in
  t.clock <- t.clock + 1;
  time

(* [log t ...] stamps the entry with the current clock without advancing it;
   one user action (query) may produce several same-time entries. *)
let log t ~op ~user ~data ~purpose ~authorized ~status =
  Audit_store.append t.store
    (Audit_schema.entry ~time:t.clock ~op ~user ~data ~purpose ~authorized ~status)

let log_entry t entry =
  Audit_store.append t.store entry;
  if entry.Audit_schema.time >= t.clock then t.clock <- entry.Audit_schema.time + 1

let length t = Audit_store.length t.store

let entries t = Audit_store.to_list t.store
