(* Mapping from physical schema to the privacy vocabulary: which data
   category each (table, column) holds, and which column identifies the
   patient.  Active Enforcement needs this to know what a query touches. *)

type t = {
  categories : (string * string, string) Hashtbl.t; (* (table, column) -> category *)
  patient_columns : (string, string) Hashtbl.t; (* table -> patient id column *)
}

let create () = { categories = Hashtbl.create 32; patient_columns = Hashtbl.create 8 }

let normalize = String.lowercase_ascii

let set_category t ~table ~column ~category =
  Hashtbl.replace t.categories (normalize table, normalize column) category

let category_of t ~table ~column =
  Hashtbl.find_opt t.categories (normalize table, normalize column)

let set_patient_column t ~table ~column =
  Hashtbl.replace t.patient_columns (normalize table) (normalize column)

let patient_column t ~table = Hashtbl.find_opt t.patient_columns (normalize table)

let is_mapped_table t ~table =
  Hashtbl.mem t.patient_columns (normalize table)
  || Hashtbl.fold
       (fun (tbl, _) _ acc -> acc || String.equal tbl (normalize table))
       t.categories false

let categories_of_table t ~table =
  Hashtbl.fold
    (fun (tbl, column) category acc ->
      if String.equal tbl (normalize table) then (column, category) :: acc else acc)
    t.categories []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
