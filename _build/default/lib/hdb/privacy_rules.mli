(** The fine-grained privacy rules entered through the HDB Control Center:
    (data category, purpose, authorized role) triples with an effect.

    Matching is vocabulary-aware: a rule naming a composite value covers
    every ground value beneath it, so one abstract rule authorises a whole
    subtree — exactly the composite-rule semantics of the formal model.
    Decisions are closed-world (no matching permit means deny) and deny
    overrides permit. *)

type effect =
  | Permit
  | Forbid

type rule = {
  data : string;
  purpose : string;
  authorized : string;
  effect : effect;
}

type t

val create : vocab:Vocabulary.Vocab.t -> t
val vocab : t -> Vocabulary.Vocab.t

val add : t -> ?effect:effect -> data:string -> purpose:string -> authorized:string -> unit -> unit
(** [effect] defaults to {!Permit}. *)

val rules : t -> rule list
(** In insertion order. *)

val count : t -> int

val decide : t -> data:string -> purpose:string -> authorized:string -> effect
val permits : t -> data:string -> purpose:string -> authorized:string -> bool

val permit_triples : t -> (string * string * string) list
(** The permit rules as triples — the rule base exported as P_PS. *)

val conflicts : t -> (rule * rule) list
(** (permit, forbid) pairs whose subtrees intersect: some ground access
    both rules claim.  Deny wins at decision time; surfacing the pairs lets
    the privacy officer repair the rule base. *)

val pp_rule : Format.formatter -> rule -> unit
val pp : Format.formatter -> t -> unit
