(** Mapping from physical schema to the privacy vocabulary: which data
    category each (table, column) holds, and which column identifies the
    patient.  Active Enforcement needs this to know what a query touches. *)

type t

val create : unit -> t
val set_category : t -> table:string -> column:string -> category:string -> unit
val category_of : t -> table:string -> column:string -> string option
val set_patient_column : t -> table:string -> column:string -> unit
val patient_column : t -> table:string -> string option

val is_mapped_table : t -> table:string -> bool
(** Whether the table is under enforcement at all. *)

val categories_of_table : t -> table:string -> (string * string) list
(** (column, category) pairs, sorted by column. *)
