(** Append-only audit logging with a logical clock.  Every enforcement
    decision — permitted, denied, or break-glass — lands here. *)

type t

val create : ?start_time:int -> unit -> t
val store : t -> Audit_store.t
val now : t -> int

val tick : t -> int
(** Returns the current time and advances the clock.  One user action may
    produce several same-time entries between ticks. *)

val log :
  t ->
  op:Audit_schema.op ->
  user:string ->
  data:string ->
  purpose:string ->
  authorized:string ->
  status:Audit_schema.status ->
  unit
(** Appends an entry stamped with the current clock (not advancing it). *)

val log_entry : t -> Audit_schema.entry -> unit
(** Appends a pre-stamped entry; the clock jumps past its time. *)

val length : t -> int
val entries : t -> Audit_schema.entry list
