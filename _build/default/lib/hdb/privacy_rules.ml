(* The fine-grained privacy rules entered through the HDB Control Center:
   (data category, purpose, authorized role) triples with an effect.
   Matching is vocabulary-aware — a rule naming a composite value covers
   every ground value beneath it, so one abstract rule authorises a whole
   subtree, exactly the composite-rule semantics of the formal model. *)

type effect =
  | Permit
  | Forbid

type rule = {
  data : string;
  purpose : string;
  authorized : string;
  effect : effect;
}

type t = {
  vocab : Vocabulary.Vocab.t;
  mutable rules : rule list;
}

let create ~vocab = { vocab; rules = [] }

let vocab t = t.vocab

let add t ?(effect = Permit) ~data ~purpose ~authorized () =
  t.rules <- { data; purpose; authorized; effect } :: t.rules

let rules t = List.rev t.rules

let count t = List.length t.rules

let covers_value vocab ~attr ~rule_value ~request_value =
  Vocabulary.Vocab.subsumes_value vocab ~attr ~ancestor:rule_value
    ~descendant:request_value

let rule_matches vocab rule ~data ~purpose ~authorized =
  covers_value vocab ~attr:Vocabulary.Samples.attr_data ~rule_value:rule.data
    ~request_value:data
  && covers_value vocab ~attr:Vocabulary.Samples.attr_purpose ~rule_value:rule.purpose
       ~request_value:purpose
  && covers_value vocab ~attr:Vocabulary.Samples.attr_authorized
       ~rule_value:rule.authorized ~request_value:authorized

(* Deny overrides permit; absence of any matching rule denies (closed
   world, per the limited-use-and-disclosure provision). *)
let decide t ~data ~purpose ~authorized =
  let matching =
    List.filter (fun r -> rule_matches t.vocab r ~data ~purpose ~authorized) t.rules
  in
  if List.exists (fun r -> r.effect = Forbid) matching then Forbid
  else if List.exists (fun r -> r.effect = Permit) matching then Permit
  else Forbid

let permits t ~data ~purpose ~authorized = decide t ~data ~purpose ~authorized = Permit

(* The triples of every permit rule, for exporting the rule base as the
   policy store P_PS. *)
let permit_triples t =
  List.filter_map
    (fun r ->
      match r.effect with
      | Permit -> Some (r.data, r.purpose, r.authorized)
      | Forbid -> None)
    (rules t)

(* Conflicts: a permit and a forbid whose (data, purpose, authorized)
   subtrees intersect — some ground access both rules claim.  Deny wins at
   decision time, but surfacing the pairs lets the privacy officer repair
   the rule base. *)
let conflicts t : (rule * rule) list =
  let values_intersect attr a b =
    Vocabulary.Vocab.equivalent_values t.vocab ~attr a b
  in
  let overlap a b =
    values_intersect Vocabulary.Samples.attr_data a.data b.data
    && values_intersect Vocabulary.Samples.attr_purpose a.purpose b.purpose
    && values_intersect Vocabulary.Samples.attr_authorized a.authorized b.authorized
  in
  let all = rules t in
  List.concat_map
    (fun permit_rule ->
      match permit_rule.effect with
      | Forbid -> []
      | Permit ->
        List.filter_map
          (fun forbid_rule ->
            match forbid_rule.effect with
            | Permit -> None
            | Forbid ->
              if overlap permit_rule forbid_rule then Some (permit_rule, forbid_rule)
              else None)
          all)
    all

let pp_rule ppf r =
  Fmt.pf ppf "%s: data=%s purpose=%s authorized=%s"
    (match r.effect with Permit -> "permit" | Forbid -> "forbid")
    r.data r.purpose r.authorized

let pp ppf t = Fmt.(list ~sep:(any "@.") pp_rule) ppf (rules t)
