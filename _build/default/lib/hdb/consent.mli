(** Patient consent (choice) store.

    HIPAA-style defaults: uses are permitted unless the patient opted out;
    the default is configurable per store.  Choices are recorded at
    (patient, purpose, category) granularity, with composite vocabulary
    values covering their subtrees; the most recent matching record wins. *)

type choice =
  | Opt_in
  | Opt_out

type record = {
  patient : string;
  purpose : string;
  data : string;
  choice : choice;
}

type t

val create : ?default:choice -> vocab:Vocabulary.Vocab.t -> unit -> t
(** [default] applies when no record matches (defaults to {!Opt_in}). *)

val default : t -> choice
val record : t -> patient:string -> purpose:string -> data:string -> choice -> unit

val records : t -> record list
(** Grouped by patient; newest-first within a patient. *)

val choice_for : t -> patient:string -> purpose:string -> data:string -> choice
val permits : t -> patient:string -> purpose:string -> data:string -> bool

val opted_out_patients :
  t -> patients:string list -> purpose:string -> categories:string list -> string list
(** Patients who withheld consent for (purpose, any of [categories]) — the
    exclusion set Active Enforcement injects into rewritten queries. *)

val count : t -> int
(** Total records (including superseded ones). *)
