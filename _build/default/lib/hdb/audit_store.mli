(** Storage-efficient audit log — the "minimal impact, storage and
    performance efficient logs" of HDB Compliance Auditing.

    Columnar layout: times in an int vector; user/data/purpose/authorized
    dictionary-encoded (audit logs repeat a small set of strings
    endlessly); op and status bit-packed.  {!naive_bytes} and
    {!encoded_bytes} feed the storage-efficiency experiment (E6). *)

type t

val create : unit -> t
val length : t -> int
val append : t -> Audit_schema.entry -> unit

val get : t -> int -> Audit_schema.entry
(** @raise Invalid_argument when out of bounds. *)

val iter : (Audit_schema.entry -> unit) -> t -> unit
val fold : ('acc -> Audit_schema.entry -> 'acc) -> 'acc -> t -> 'acc
val to_list : t -> Audit_schema.entry list
val append_all : t -> Audit_schema.entry list -> unit
val of_entries : Audit_schema.entry list -> t

val naive_bytes : t -> int
(** Estimated size of the flat row-store equivalent (strings inline). *)

val encoded_bytes : t -> int
(** Estimated size of this encoded representation (id vectors + packed
    bits + dictionaries). *)

val to_table : t -> database:Relational.Database.t -> table_name:string -> Relational.Table.t
(** Exports into a relational table (truncating any previous export), for
    SQL analysis over the log. *)
