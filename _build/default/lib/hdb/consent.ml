(* Patient consent (choice) store.  HIPAA-style defaults: uses for
   treatment/payment/operations are permitted unless the patient opted out;
   the default is configurable per store.  Choices are recorded at
   (patient, purpose, category) granularity, with composite vocabulary
   values covering their subtrees. *)

type choice =
  | Opt_in
  | Opt_out

type record = {
  patient : string;
  purpose : string;
  data : string;
  choice : choice;
}

type t = {
  vocab : Vocabulary.Vocab.t;
  default : choice;
  by_patient : (string, record list) Hashtbl.t; (* newest-first per patient *)
  mutable total : int;
}

let create ?(default = Opt_in) ~vocab () =
  { vocab; default; by_patient = Hashtbl.create 64; total = 0 }

let default t = t.default

let record t ~patient ~purpose ~data choice =
  let existing = Option.value (Hashtbl.find_opt t.by_patient patient) ~default:[] in
  Hashtbl.replace t.by_patient patient ({ patient; purpose; data; choice } :: existing);
  t.total <- t.total + 1

let records t =
  Hashtbl.fold (fun _ rs acc -> List.rev_append rs acc) t.by_patient []
  |> List.sort (fun a b -> String.compare a.patient b.patient)

(* Most recent matching record for the patient wins. *)
let choice_for t ~patient ~purpose ~data =
  let matches r =
    Vocabulary.Vocab.subsumes_value t.vocab ~attr:Vocabulary.Samples.attr_purpose
      ~ancestor:r.purpose ~descendant:purpose
    && Vocabulary.Vocab.subsumes_value t.vocab ~attr:Vocabulary.Samples.attr_data
         ~ancestor:r.data ~descendant:data
  in
  match Hashtbl.find_opt t.by_patient patient with
  | None -> t.default
  | Some rs ->
    (match List.find_opt matches rs with
    | Some r -> r.choice
    | None -> t.default)

let permits t ~patient ~purpose ~data = choice_for t ~patient ~purpose ~data = Opt_in

(* Patients among [patients] who opted out of (purpose, any of categories):
   the exclusion set Active Enforcement injects into rewritten queries.
   With an opt-in default, patients without records can never be excluded,
   so only recorded patients are examined. *)
let opted_out_patients t ~patients ~purpose ~categories =
  let blocked patient =
    List.exists (fun data -> not (permits t ~patient ~purpose ~data)) categories
  in
  if t.default = Opt_in then
    List.filter (fun p -> Hashtbl.mem t.by_patient p && blocked p) patients
  else List.filter blocked patients

let count t = t.total
