lib/hdb/consent.ml: Hashtbl List Option String Vocabulary
