lib/hdb/audit_schema.mli: Format Relational
