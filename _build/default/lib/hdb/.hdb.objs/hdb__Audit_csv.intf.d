lib/hdb/audit_csv.mli: Audit_schema Audit_store
