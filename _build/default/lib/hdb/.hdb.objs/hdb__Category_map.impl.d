lib/hdb/category_map.ml: Hashtbl List String
