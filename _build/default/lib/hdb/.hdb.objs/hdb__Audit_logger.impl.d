lib/hdb/audit_logger.ml: Audit_schema Audit_store
