lib/hdb/audit_schema.ml: Fmt List Printf Relational Row Value Vocabulary
