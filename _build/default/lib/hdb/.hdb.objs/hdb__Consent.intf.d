lib/hdb/consent.mli: Vocabulary
