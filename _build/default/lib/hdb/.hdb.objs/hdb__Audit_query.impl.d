lib/hdb/audit_query.ml: Audit_schema Audit_store Hashtbl Int List Option
