lib/hdb/audit_store.ml: Array Audit_schema Bytes Char Hashtbl List Relational String
