lib/hdb/audit_logger.mli: Audit_schema Audit_store
