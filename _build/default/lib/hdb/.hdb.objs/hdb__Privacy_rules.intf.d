lib/hdb/privacy_rules.mli: Format Vocabulary
