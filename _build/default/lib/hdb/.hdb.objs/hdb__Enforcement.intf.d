lib/hdb/enforcement.mli: Audit_logger Category_map Consent Privacy_rules Relational
