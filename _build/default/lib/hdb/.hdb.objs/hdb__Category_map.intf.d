lib/hdb/category_map.mli:
