lib/hdb/audit_csv.ml: Audit_schema Audit_store Fun List Printf Relational String
