lib/hdb/control_center.mli: Audit_logger Audit_schema Audit_store Consent Enforcement Privacy_rules Relational Vocabulary
