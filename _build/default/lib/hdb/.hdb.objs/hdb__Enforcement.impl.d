lib/hdb/enforcement.ml: Audit_logger Audit_schema Category_map Consent Database Engine Executor Hashtbl List Logs Option Printf Privacy_rules Relational Row Schema Sql_ast String Table Value
