lib/hdb/control_center.ml: Audit_logger Category_map Consent Enforcement Privacy_rules Relational
