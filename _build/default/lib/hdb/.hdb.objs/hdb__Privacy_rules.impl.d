lib/hdb/privacy_rules.ml: Fmt List Vocabulary
