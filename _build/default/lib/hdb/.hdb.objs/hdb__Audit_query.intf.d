lib/hdb/audit_query.mli: Audit_schema Audit_store
