lib/hdb/audit_store.mli: Audit_schema Relational
