(* In-memory heap table: schema + growable row store + optional hash
   indexes.  Deletions compact the store and rebuild indexes — acceptable
   for the read-mostly, append-heavy workloads of PRIMA (audit logs,
   clinical tables). *)

type t = {
  name : string;
  schema : Schema.t;
  rows : Row.t Vec.t;
  mutable indexes : Index.t list;
}

let create ~name ~schema = { name; schema; rows = Vec.create (); indexes = [] }

let name t = t.name

let schema t = t.schema

let row_count t = Vec.length t.rows

let check_row t row =
  if Row.arity row <> Schema.arity t.schema then
    Errors.fail Errors.Execute "table %s: row arity %d, schema arity %d" t.name
      (Row.arity row) (Schema.arity t.schema);
  Array.mapi
    (fun i v ->
      match Value.coerce (Schema.ty_at t.schema i) v with
      | Some v' -> v'
      | None ->
        Errors.fail Errors.Execute "table %s: column %s expects %s, got %s" t.name
          (Schema.name_at t.schema i)
          (Value.ty_to_string (Schema.ty_at t.schema i))
          (Value.to_string v))
    row

let insert t row =
  let row = check_row t row in
  let row_id = Vec.length t.rows in
  Vec.push t.rows row;
  List.iter (fun idx -> Index.add idx row row_id) t.indexes

let insert_values t values = insert t (Row.of_list values)

let get t row_id = Vec.get t.rows row_id

let iter f t = Vec.iter f t.rows

let iteri f t = Vec.iteri f t.rows

let fold f init t = Vec.fold_left f init t.rows

let to_list t = Vec.to_list t.rows

let rebuild_indexes t =
  List.iter Index.clear t.indexes;
  Vec.iteri
    (fun row_id row -> List.iter (fun idx -> Index.add idx row row_id) t.indexes)
    t.rows

let create_index t ~column_name =
  let column = Schema.find_exn t.schema column_name in
  if List.exists (fun idx -> Index.column idx = column) t.indexes then ()
  else begin
    let idx = Index.create ~column in
    t.indexes <- idx :: t.indexes;
    rebuild_indexes t
  end

let index_on t ~column =
  List.find_opt (fun idx -> Index.column idx = column) t.indexes

(* Keep rows satisfying [keep]; returns the number removed. *)
let delete_where t keep =
  let kept = Vec.filter keep t.rows in
  let removed = Vec.length t.rows - Vec.length kept in
  Vec.clear t.rows;
  Vec.iter (Vec.push t.rows) kept;
  rebuild_indexes t;
  removed

let update_where t ~pred ~transform =
  let changed = ref 0 in
  Vec.iteri
    (fun i row ->
      if pred row then begin
        Vec.set t.rows i (check_row t (transform row));
        incr changed
      end)
    t.rows;
  if !changed > 0 then rebuild_indexes t;
  !changed

let truncate t =
  Vec.clear t.rows;
  List.iter Index.clear t.indexes

let pp ppf t =
  Fmt.pf ppf "table %s %a: %d rows" t.name Schema.pp t.schema (row_count t)
