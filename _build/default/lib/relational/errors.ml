(* Engine-wide error reporting.  Every user-facing failure is a [Sql_error]
   carrying a phase, so callers never have to match on internal exceptions. *)

type phase =
  | Lex
  | Parse
  | Plan
  | Execute
  | Catalog

exception Sql_error of phase * string

let phase_to_string = function
  | Lex -> "lex"
  | Parse -> "parse"
  | Plan -> "plan"
  | Execute -> "execute"
  | Catalog -> "catalog"

let fail phase fmt = Fmt.kstr (fun msg -> raise (Sql_error (phase, msg))) fmt

let to_string = function
  | Sql_error (phase, msg) -> Printf.sprintf "%s error: %s" (phase_to_string phase) msg
  | exn -> Printexc.to_string exn
