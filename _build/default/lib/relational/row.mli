(** Rows: flat value arrays aligned with a schema. *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val arity : t -> int
val get : t -> int -> Value.t

val equal : t -> t -> bool
(** Pointwise {!Value.equal}; arities must agree. *)

val compare : t -> t -> int
(** Lexicographic {!Value.compare}; shorter rows order first. *)

val hash : t -> int
(** Consistent with {!equal}. *)

val concat : t -> t -> t

val project : t -> int array -> t
(** [project row indices] selects the given positions, in order. *)

val pp : Format.formatter -> t -> unit
