(* SQL values.  NULL is a first-class value; three-valued logic lives in
   Expr — here comparisons are total orders used for sorting and grouping,
   with NULL ordered first. *)

type ty =
  | T_int
  | T_float
  | T_string
  | T_bool

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

let ty_to_string = function
  | T_int -> "INTEGER"
  | T_float -> "REAL"
  | T_string -> "TEXT"
  | T_bool -> "BOOLEAN"

let ty_of_string s =
  match String.uppercase_ascii s with
  | "INT" | "INTEGER" | "BIGINT" | "TIMESTAMP" -> Some T_int
  | "REAL" | "FLOAT" | "DOUBLE" -> Some T_float
  | "TEXT" | "STRING" | "VARCHAR" | "CHAR" -> Some T_string
  | "BOOL" | "BOOLEAN" -> Some T_bool
  | _ -> None

let type_of = function
  | Null -> None
  | Int _ -> Some T_int
  | Float _ -> Some T_float
  | Str _ -> Some T_string
  | Bool _ -> Some T_bool

let is_null = function Null -> true | Int _ | Float _ | Str _ | Bool _ -> false

(* Numeric coercion: INTEGER widens to REAL when the two sides mix. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | Str x, Str y -> String.compare x y
  | Bool x, Bool y -> Bool.compare x y
  | (Null | Int _ | Float _ | Str _ | Bool _), _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 0
  | Int x -> Hashtbl.hash x
  | Float x -> Hashtbl.hash x
  | Str x -> Hashtbl.hash x
  | Bool x -> Hashtbl.hash x

let to_string = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x -> Printf.sprintf "%g" x
  | Str x -> x
  | Bool true -> "TRUE"
  | Bool false -> "FALSE"

(* SQL-literal rendering: strings quoted with '' doubling. *)
let to_sql_literal = function
  | Null -> "NULL"
  | Int x -> string_of_int x
  | Float x -> Printf.sprintf "%g" x
  | Bool true -> "TRUE"
  | Bool false -> "FALSE"
  | Str x ->
    let buffer = Buffer.create (String.length x + 2) in
    Buffer.add_char buffer '\'';
    String.iter
      (fun c ->
        if c = '\'' then Buffer.add_string buffer "''" else Buffer.add_char buffer c)
      x;
    Buffer.add_char buffer '\'';
    Buffer.contents buffer

let pp ppf v = Fmt.string ppf (to_string v)

let as_int = function
  | Int x -> Some x
  | Float x when Float.is_integer x -> Some (int_of_float x)
  | Null | Float _ | Str _ | Bool _ -> None

let as_float = function
  | Int x -> Some (float_of_int x)
  | Float x -> Some x
  | Null | Str _ | Bool _ -> None

let as_string = function
  | Str x -> Some x
  | Null | Int _ | Float _ | Bool _ -> None

let as_bool = function
  | Bool x -> Some x
  | Null | Int _ | Float _ | Str _ -> None

(* Coerce a value into a column type at insert time; lossless widenings only. *)
let coerce ty v =
  match ty, v with
  | _, Null -> Some Null
  | T_int, Int _ -> Some v
  | T_int, Float f when Float.is_integer f -> Some (Int (int_of_float f))
  | T_float, Float _ -> Some v
  | T_float, Int i -> Some (Float (float_of_int i))
  | T_string, Str _ -> Some v
  | T_bool, Bool _ -> Some v
  | (T_int | T_float | T_string | T_bool), _ -> None
