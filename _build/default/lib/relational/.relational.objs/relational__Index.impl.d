lib/relational/index.ml: Hashtbl List Row Value
