lib/relational/vec.ml: Array List
