lib/relational/sql_ast.ml: Buffer List Option String Value
