lib/relational/engine.ml: Csv Database Errors Executor Fmt List Row Schema Sql_ast Sql_parser String Table Value
