lib/relational/schema.ml: Array Errors Fmt Fun List Option Printf String Value
