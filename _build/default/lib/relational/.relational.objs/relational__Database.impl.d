lib/relational/database.ml: Errors Hashtbl List String Table
