lib/relational/errors.mli: Format
