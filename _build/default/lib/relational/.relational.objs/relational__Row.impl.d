lib/relational/row.ml: Array Fmt Value
