lib/relational/executor.mli: Database Row Schema Sql_ast
