lib/relational/errors.ml: Fmt Printexc Printf
