lib/relational/table.ml: Array Errors Fmt Index List Row Schema Value Vec
