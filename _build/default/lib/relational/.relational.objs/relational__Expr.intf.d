lib/relational/expr.mli: Row Schema Sql_ast Value
