lib/relational/aggregate.ml: Errors Hashtbl Sql_ast Value
