lib/relational/index.mli: Row Value
