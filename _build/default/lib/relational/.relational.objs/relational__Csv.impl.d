lib/relational/csv.ml: Buffer Errors List Row Schema String Table Value
