lib/relational/aggregate.mli: Sql_ast Value
