lib/relational/expr.ml: Array Errors Float Hashtbl List Option Row Schema Sql_ast String Value
