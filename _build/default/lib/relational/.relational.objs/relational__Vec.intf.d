lib/relational/vec.mli:
