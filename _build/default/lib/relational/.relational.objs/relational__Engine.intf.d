lib/relational/engine.mli: Database Executor Format Sql_ast Table Value
