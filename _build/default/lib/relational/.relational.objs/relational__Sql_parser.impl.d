lib/relational/sql_parser.ml: Errors List Sql_ast Sql_lexer String Value
