lib/relational/executor.ml: Aggregate Array Database Errors Expr Hashtbl Index List Option Printf Row Schema Sql_ast String Table Value
