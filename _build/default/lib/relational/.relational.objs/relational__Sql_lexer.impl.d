lib/relational/sql_lexer.ml: Buffer Errors List String
