lib/relational/csv.mli: Row Schema Table Value
