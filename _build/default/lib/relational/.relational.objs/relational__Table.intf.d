lib/relational/table.mli: Format Index Row Schema Value
