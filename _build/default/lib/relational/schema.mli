(** Table schemas: named, typed columns with optional qualifiers.

    Column names are case-insensitive; qualifiers carry table aliases
    through joins so that [t.col] references resolve unambiguously. *)

type column = {
  name : string; (** stored lowercase *)
  ty : Value.ty;
  qualifier : string option; (** table alias in scope, if any *)
}

type t = column array

val column : ?qualifier:string -> string -> Value.ty -> column
(** Builds a column; the name is lowercased. *)

val of_list : column list -> t
val arity : t -> int
val columns : t -> column list
val column_names : t -> string list

val find_all : t -> ?qualifier:string -> string -> int list
(** All positions matching name (and qualifier, when given). *)

val find : t -> ?qualifier:string -> string -> (int, string) result
(** Unique resolution; [Error] describes unknown or ambiguous columns. *)

val find_exn : t -> ?qualifier:string -> string -> int
(** @raise Errors.Sql_error (Plan) on unknown/ambiguous columns. *)

val mem : t -> string -> bool
val ty_at : t -> int -> Value.ty
val name_at : t -> int -> string

val with_qualifier : t -> string -> t
(** Requalifies every column, e.g. when a table enters scope under an
    alias. *)

val concat : t -> t -> t
(** Join output schema: left columns then right columns. *)

val equal_modulo_qualifiers : t -> t -> bool

val pp_column : Format.formatter -> column -> unit
val pp : Format.formatter -> t -> unit
