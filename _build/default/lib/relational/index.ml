(* Hash index over one column: equality lookups in O(1).  Used by the
   executor for point predicates and by HDB consent semi-joins. *)

module Value_tbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal
  let hash = Value.hash
end)

type t = {
  column : int;
  entries : int list ref Value_tbl.t;
}

let create ~column = { column; entries = Value_tbl.create 256 }

let column t = t.column

let add t row row_id =
  let key = Row.get row t.column in
  match Value_tbl.find_opt t.entries key with
  | Some ids -> ids := row_id :: !ids
  | None -> Value_tbl.add t.entries key (ref [ row_id ])

let lookup t key =
  match Value_tbl.find_opt t.entries key with
  | Some ids -> List.rev !ids
  | None -> []

let clear t = Value_tbl.reset t.entries

let cardinality t = Value_tbl.length t.entries
