(** In-memory heap tables: schema + growable row store + hash indexes.

    Inserts type-check and coerce values against the schema.  Deletions
    compact the store and rebuild indexes — the right trade-off for PRIMA's
    read-mostly, append-heavy workloads (audit logs, clinical tables). *)

type t

val create : name:string -> schema:Schema.t -> t
val name : t -> string
val schema : t -> Schema.t
val row_count : t -> int

val insert : t -> Row.t -> unit
(** @raise Errors.Sql_error (Execute) on arity or type mismatch. *)

val insert_values : t -> Value.t list -> unit

val get : t -> int -> Row.t
(** By row id (insertion position). *)

val iter : (Row.t -> unit) -> t -> unit
val iteri : (int -> Row.t -> unit) -> t -> unit
val fold : ('acc -> Row.t -> 'acc) -> 'acc -> t -> 'acc
val to_list : t -> Row.t list

val create_index : t -> column_name:string -> unit
(** Idempotent; indexes existing rows immediately. *)

val index_on : t -> column:int -> Index.t option

val delete_where : t -> (Row.t -> bool) -> int
(** [delete_where t keep] retains rows satisfying [keep]; returns the number
    removed.  Row ids are renumbered. *)

val update_where : t -> pred:(Row.t -> bool) -> transform:(Row.t -> Row.t) -> int
(** Returns the number of rows changed; transformed rows are re-checked
    against the schema. *)

val truncate : t -> unit
val pp : Format.formatter -> t -> unit
