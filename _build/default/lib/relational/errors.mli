(** Engine-wide error reporting.

    Every user-facing failure of the relational engine is a {!Sql_error}
    tagged with the phase that produced it, so callers can report precisely
    without matching internal exceptions. *)

type phase =
  | Lex  (** tokenisation of SQL text *)
  | Parse  (** syntactic analysis *)
  | Plan  (** name resolution / query validation *)
  | Execute  (** runtime evaluation *)
  | Catalog  (** table catalog operations *)

exception Sql_error of phase * string

val phase_to_string : phase -> string

val fail : phase -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [fail phase fmt ...] raises {!Sql_error} with a formatted message. *)

val to_string : exn -> string
(** Human-readable rendering; falls back to [Printexc] for foreign
    exceptions. *)
