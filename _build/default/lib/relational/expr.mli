(** Compilation of AST expressions to closures over rows.

    Column references resolve against a schema once at compile time, so
    per-row evaluation does no name lookups.  Aggregate nodes compile to
    positional references into an "aggregate segment" — an array of values
    the executor computes per group, identified by structural equality with
    the query's collected aggregate expressions.

    NULL follows SQL three-valued logic: comparisons involving NULL yield
    NULL, AND/OR are Kleene connectives, and predicates treat a NULL result
    as false (see {!is_true}). *)

type ctx = {
  schema : Schema.t;
  agg_exprs : Sql_ast.expr array;
      (** the aggregate expressions available positionally, [||] for scalar
          contexts *)
}

type compiled = Row.t -> Value.t array -> Value.t
(** A compiled expression: applied to an input row and the group's
    aggregate segment. *)

val scalar_ctx : Schema.t -> ctx
(** Context with no aggregate segment (WHERE, join conditions, DML). *)

val is_true : Value.t -> bool
(** Predicate semantics: only [Bool true] passes; NULL does not. *)

val like_match : pattern:string -> string -> bool
(** SQL LIKE: [%] matches any run, [_] any single character. *)

val compile : ctx -> Sql_ast.expr -> compiled
(** @raise Errors.Sql_error (Plan) on unknown columns, aggregates without a
    segment slot, stray ['*'], or unresolved subqueries. *)

val infer_type : Schema.t -> Sql_ast.expr -> Value.ty
(** Best-effort static type for result schemas; defaults to TEXT. *)
