(** Statement execution.

    SELECT pipeline: FROM (scans, nested-loop joins) → WHERE →
    grouping/aggregation → HAVING → projection → DISTINCT → ORDER BY →
    OFFSET/LIMIT.  Uncorrelated [IN (SELECT ...)] subqueries in WHERE and
    HAVING are evaluated eagerly and replaced by literal lists. *)

type result_set = {
  schema : Schema.t;
  rows : Row.t list;
}

type outcome =
  | Rows of result_set  (** SELECT *)
  | Affected of int  (** INSERT/DELETE/UPDATE row count *)
  | Table_created of string
  | Table_dropped of string

val resolve_subqueries : Database.t -> Sql_ast.expr -> Sql_ast.expr
(** Replaces every [In_select] with an [In_list] of the subquery's first
    column.  @raise Errors.Sql_error (Plan) when a subquery is not
    single-column. *)

val exec_select : Database.t -> Sql_ast.select -> result_set
(** @raise Errors.Sql_error on any planning or runtime failure. *)

val exec_compound : Database.t -> Sql_ast.compound -> result_set
(** UNION chains: branches must agree in arity; the first branch names the
    output; plain UNION deduplicates, UNION ALL concatenates. *)

val exec_stmt : Database.t -> Sql_ast.stmt -> outcome
(** Executes any statement. *)
