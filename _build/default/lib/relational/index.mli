(** Hash index over one column: O(1) equality lookups.

    Maintained by {!Table} on insert; rebuilt after deletes and updates. *)

type t

val create : column:int -> t
(** An empty index keyed on the column at position [column]. *)

val column : t -> int

val add : t -> Row.t -> int -> unit
(** [add t row row_id] indexes [row] (its key is read at the index's
    column). *)

val lookup : t -> Value.t -> int list
(** Row ids whose key equals the probe, in insertion order. *)

val clear : t -> unit

val cardinality : t -> int
(** Number of distinct keys. *)
