(** Minimal RFC-4180-style CSV for fixtures and result export.

    Quoted fields may contain commas, quotes ([""] escape) and newlines.
    Empty fields read as NULL; NULL writes as the empty field. *)

val parse_line_seq : string -> string list list
(** Raw records (no header handling).
    @raise Errors.Sql_error (Parse) on unterminated quotes. *)

val parse_value : Value.ty -> string -> Value.t
(** One field under a column type; [""] is NULL.
    @raise Errors.Sql_error (Parse) on unreadable fields. *)

val load_into : Table.t -> string -> has_header:bool -> int
(** Appends parsed rows (column order must match the schema); returns the
    number of rows loaded. *)

val escape_field : string -> string
(** Quotes a field when it contains commas, quotes or newlines. *)

val value_to_field : Value.t -> string
val result_to_csv : Schema.t -> Row.t list -> string
(** With a header line of column names. *)
