(* Catalog: named tables. *)

type t = {
  name : string;
  tables : (string, Table.t) Hashtbl.t;
}

let create ?(name = "main") () = { name; tables = Hashtbl.create 16 }

let name t = t.name

let normalize = String.lowercase_ascii

let table_exists t table_name = Hashtbl.mem t.tables (normalize table_name)

let create_table t ~name ~schema =
  let key = normalize name in
  if Hashtbl.mem t.tables key then
    Errors.fail Errors.Catalog "table %s already exists" name;
  let table = Table.create ~name:key ~schema in
  Hashtbl.add t.tables key table;
  table

let drop_table t table_name =
  let key = normalize table_name in
  if not (Hashtbl.mem t.tables key) then
    Errors.fail Errors.Catalog "no such table: %s" table_name;
  Hashtbl.remove t.tables key

let find_table t table_name = Hashtbl.find_opt t.tables (normalize table_name)

let table t table_name =
  match find_table t table_name with
  | Some table -> table
  | None -> Errors.fail Errors.Catalog "no such table: %s" table_name

let table_names t =
  Hashtbl.fold (fun key _ acc -> key :: acc) t.tables [] |> List.sort String.compare
