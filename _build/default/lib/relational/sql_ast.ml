(* Abstract syntax of the SQL dialect.  The same AST is produced by the
   parser, manipulated by HDB Active Enforcement's query rewriter, and
   consumed by the planner; [to_sql] renders any statement back to concrete
   syntax so rewritten queries stay inspectable and loggable. *)

type agg_fn =
  | Count
  | Sum
  | Avg
  | Min
  | Max

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Concat
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type unop =
  | Not
  | Neg

type expr =
  | Lit of Value.t
  | Col of { qualifier : string option; name : string }
  | Star
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Agg of { fn : agg_fn; distinct : bool; arg : expr }
  | Call of string * expr list
  | In_list of { scrutinee : expr; negated : bool; items : expr list }
  | In_select of { scrutinee : expr; negated : bool; select : select }
  | Exists of select
  | Scalar_select of select
  | Like of { scrutinee : expr; negated : bool; pattern : expr }
  | Is_null of { scrutinee : expr; negated : bool }
  | Between of { scrutinee : expr; negated : bool; low : expr; high : expr }

and order_dir =
  | Asc
  | Desc

and projection =
  | All_columns
  | Proj of expr * string option

and join_kind =
  | Inner
  | Left
  | Cross

and table_ref =
  | Table of { name : string; alias : string option }
  | Derived of { select : select; alias : string }
  | Join of { left : table_ref; right : table_ref; kind : join_kind; on : expr option }

and select = {
  distinct : bool;
  projections : projection list;
  from : table_ref option;
  where : expr option;
  group_by : expr list;
  having : expr option;
  order_by : (expr * order_dir) list;
  limit : int option;
  offset : int option;
}

(* A UNION chain: the first branch plus (all?, branch) continuations. *)
type compound = {
  first : select;
  rest : (bool * select) list;
}

type stmt =
  | Select of select
  | Compound of compound
  | Create_table of { name : string; columns : (string * Value.ty) list }
  | Drop_table of string
  | Insert of { table : string; columns : string list option; rows : expr list list }
  | Delete of { table : string; where : expr option }
  | Update of { table : string; assignments : (string * expr) list; where : expr option }

let col ?qualifier name = Col { qualifier; name }

let lit v = Lit v
let int_lit i = Lit (Value.Int i)
let str_lit s = Lit (Value.Str s)
let bool_lit b = Lit (Value.Bool b)

let eq a b = Binop (Eq, a, b)
let and_ a b = Binop (And, a, b)
let or_ a b = Binop (Or, a, b)

let conj = function
  | [] -> Lit (Value.Bool true)
  | e :: es -> List.fold_left and_ e es

let disj = function
  | [] -> Lit (Value.Bool false)
  | e :: es -> List.fold_left or_ e es

let select ?(distinct = false) ?from ?where ?(group_by = []) ?having ?(order_by = [])
    ?limit ?offset projections =
  { distinct; projections; from; where; group_by; having; order_by; limit; offset }

(* Structural equality on expressions; used by the planner to identify the
   distinct aggregate computations a query needs. *)
let rec equal_expr a b =
  match a, b with
  | Lit x, Lit y -> Value.equal x y
  | Col x, Col y ->
    Option.equal String.equal x.qualifier y.qualifier && String.equal x.name y.name
  | Star, Star -> true
  | Unop (opa, xa), Unop (opb, xb) -> opa = opb && equal_expr xa xb
  | Binop (opa, la, ra), Binop (opb, lb, rb) ->
    opa = opb && equal_expr la lb && equal_expr ra rb
  | Agg a', Agg b' -> a'.fn = b'.fn && a'.distinct = b'.distinct && equal_expr a'.arg b'.arg
  | Call (fa, xa), Call (fb, xb) ->
    String.equal fa fb && List.length xa = List.length xb && List.for_all2 equal_expr xa xb
  | In_list a', In_list b' ->
    a'.negated = b'.negated
    && equal_expr a'.scrutinee b'.scrutinee
    && List.length a'.items = List.length b'.items
    && List.for_all2 equal_expr a'.items b'.items
  | Like a', Like b' ->
    a'.negated = b'.negated
    && equal_expr a'.scrutinee b'.scrutinee
    && equal_expr a'.pattern b'.pattern
  | In_select a', In_select b' ->
    a'.negated = b'.negated && equal_expr a'.scrutinee b'.scrutinee && a'.select = b'.select
  | Exists a', Exists b' -> a' = b'
  | Scalar_select a', Scalar_select b' -> a' = b' 
  | Is_null a', Is_null b' -> a'.negated = b'.negated && equal_expr a'.scrutinee b'.scrutinee
  | Between a', Between b' ->
    a'.negated = b'.negated
    && equal_expr a'.scrutinee b'.scrutinee
    && equal_expr a'.low b'.low
    && equal_expr a'.high b'.high
  | ( ( Lit _ | Col _ | Star | Unop _ | Binop _ | Agg _ | Call _ | In_list _ | In_select _
      | Exists _ | Scalar_select _ | Like _ | Is_null _ | Between _ ),
      _ ) ->
    false

let rec contains_agg = function
  | Agg _ -> true
  | Lit _ | Col _ | Star -> false
  | Unop (_, e) -> contains_agg e
  | Binop (_, a, b) -> contains_agg a || contains_agg b
  | Call (_, args) -> List.exists contains_agg args
  | In_list { scrutinee; items; _ } -> contains_agg scrutinee || List.exists contains_agg items
  | In_select { scrutinee; _ } -> contains_agg scrutinee
  | Exists _ | Scalar_select _ -> false
  | Like { scrutinee; pattern; _ } -> contains_agg scrutinee || contains_agg pattern
  | Is_null { scrutinee; _ } -> contains_agg scrutinee
  | Between { scrutinee; low; high; _ } ->
    contains_agg scrutinee || contains_agg low || contains_agg high

let agg_fn_name = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Concat -> "||"
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"

let rec expr_to_sql = function
  | Lit v -> Value.to_sql_literal v
  | Col { qualifier = Some q; name } -> q ^ "." ^ name
  | Col { qualifier = None; name } -> name
  | Star -> "*"
  | Unop (Not, e) -> "NOT (" ^ expr_to_sql e ^ ")"
  | Unop (Neg, e) -> "-(" ^ expr_to_sql e ^ ")"
  | Binop (op, a, b) ->
    "(" ^ expr_to_sql a ^ " " ^ binop_name op ^ " " ^ expr_to_sql b ^ ")"
  | Agg { fn; distinct; arg } ->
    agg_fn_name fn ^ "(" ^ (if distinct then "DISTINCT " else "") ^ expr_to_sql arg ^ ")"
  | Call (f, args) ->
    String.uppercase_ascii f ^ "(" ^ String.concat ", " (List.map expr_to_sql args) ^ ")"
  | In_list { scrutinee; negated; items } ->
    expr_to_sql scrutinee
    ^ (if negated then " NOT IN (" else " IN (")
    ^ String.concat ", " (List.map expr_to_sql items)
    ^ ")"
  | Like { scrutinee; negated; pattern } ->
    expr_to_sql scrutinee ^ (if negated then " NOT LIKE " else " LIKE ") ^ expr_to_sql pattern
  | Is_null { scrutinee; negated } ->
    expr_to_sql scrutinee ^ if negated then " IS NOT NULL" else " IS NULL"
  | In_select { scrutinee; negated; select } ->
    expr_to_sql scrutinee
    ^ (if negated then " NOT IN (" else " IN (")
    ^ select_to_sql select ^ ")"
  | Exists select -> "EXISTS (" ^ select_to_sql select ^ ")"
  | Scalar_select select -> "(" ^ select_to_sql select ^ ")"
  | Between { scrutinee; negated; low; high } ->
    expr_to_sql scrutinee
    ^ (if negated then " NOT BETWEEN " else " BETWEEN ")
    ^ expr_to_sql low ^ " AND " ^ expr_to_sql high

and projection_to_sql = function
  | All_columns -> "*"
  | Proj (e, Some alias) -> expr_to_sql e ^ " AS " ^ alias
  | Proj (e, None) -> expr_to_sql e

and table_ref_to_sql = function
  | Table { name; alias = Some a } -> name ^ " AS " ^ a
  | Table { name; alias = None } -> name
  | Derived { select; alias } -> "(" ^ select_to_sql select ^ ") AS " ^ alias
  | Join { left; right; kind; on } ->
    let kind_str =
      match kind with Inner -> " JOIN " | Left -> " LEFT JOIN " | Cross -> " CROSS JOIN "
    in
    table_ref_to_sql left ^ kind_str ^ table_ref_to_sql right
    ^ (match on with Some e -> " ON " ^ expr_to_sql e | None -> "")

and select_to_sql s =
  let buffer = Buffer.create 128 in
  Buffer.add_string buffer "SELECT ";
  if s.distinct then Buffer.add_string buffer "DISTINCT ";
  Buffer.add_string buffer (String.concat ", " (List.map projection_to_sql s.projections));
  Option.iter (fun f -> Buffer.add_string buffer (" FROM " ^ table_ref_to_sql f)) s.from;
  Option.iter (fun w -> Buffer.add_string buffer (" WHERE " ^ expr_to_sql w)) s.where;
  if s.group_by <> [] then
    Buffer.add_string buffer
      (" GROUP BY " ^ String.concat ", " (List.map expr_to_sql s.group_by));
  Option.iter (fun h -> Buffer.add_string buffer (" HAVING " ^ expr_to_sql h)) s.having;
  if s.order_by <> [] then begin
    let item (e, dir) = expr_to_sql e ^ (match dir with Asc -> " ASC" | Desc -> " DESC") in
    Buffer.add_string buffer (" ORDER BY " ^ String.concat ", " (List.map item s.order_by))
  end;
  Option.iter (fun n -> Buffer.add_string buffer (" LIMIT " ^ string_of_int n)) s.limit;
  Option.iter (fun n -> Buffer.add_string buffer (" OFFSET " ^ string_of_int n)) s.offset;
  Buffer.contents buffer

let compound_to_sql c =
  select_to_sql c.first
  ^ String.concat ""
      (List.map
         (fun (all, s) -> (if all then " UNION ALL " else " UNION ") ^ select_to_sql s)
         c.rest)

let to_sql = function
  | Select s -> select_to_sql s
  | Compound c -> compound_to_sql c
  | Create_table { name; columns } ->
    "CREATE TABLE " ^ name ^ " ("
    ^ String.concat ", "
        (List.map (fun (c, ty) -> c ^ " " ^ Value.ty_to_string ty) columns)
    ^ ")"
  | Drop_table name -> "DROP TABLE " ^ name
  | Insert { table; columns; rows } ->
    let cols =
      match columns with
      | Some cs -> " (" ^ String.concat ", " cs ^ ")"
      | None -> ""
    in
    let row vs = "(" ^ String.concat ", " (List.map expr_to_sql vs) ^ ")" in
    "INSERT INTO " ^ table ^ cols ^ " VALUES " ^ String.concat ", " (List.map row rows)
  | Delete { table; where } ->
    "DELETE FROM " ^ table
    ^ (match where with Some w -> " WHERE " ^ expr_to_sql w | None -> "")
  | Update { table; assignments; where } ->
    "UPDATE " ^ table ^ " SET "
    ^ String.concat ", "
        (List.map (fun (c, e) -> c ^ " = " ^ expr_to_sql e) assignments)
    ^ (match where with Some w -> " WHERE " ^ expr_to_sql w | None -> "")
