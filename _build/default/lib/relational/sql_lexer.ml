(* Hand-written SQL lexer.  Keywords are not distinguished here — the parser
   matches identifiers case-insensitively, so user tables may freely use
   names like "status" that are keywords elsewhere. *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Star_tok
  | Plus
  | Minus
  | Slash
  | Percent
  | Eq_tok
  | Neq_tok
  | Lt_tok
  | Le_tok
  | Gt_tok
  | Ge_tok
  | Concat_tok
  | Semicolon
  | Eof

let token_to_string = function
  | Ident s -> s
  | Int_lit i -> string_of_int i
  | Float_lit f -> string_of_float f
  | String_lit s -> "'" ^ s ^ "'"
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Dot -> "."
  | Star_tok -> "*"
  | Plus -> "+"
  | Minus -> "-"
  | Slash -> "/"
  | Percent -> "%"
  | Eq_tok -> "="
  | Neq_tok -> "<>"
  | Lt_tok -> "<"
  | Le_tok -> "<="
  | Gt_tok -> ">"
  | Ge_tok -> ">="
  | Concat_tok -> "||"
  | Semicolon -> ";"
  | Eof -> "<eof>"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(* [tokenize s] returns the token list or raises [Errors.Sql_error (Lex, _)].
   Vocabulary values containing '-' (e.g. lab-results) must appear as string
   literals or double-quoted identifiers, never as bare identifiers. *)
let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let read_while p =
    let start = !pos in
    while !pos < n && p input.[!pos] do
      advance ()
    done;
    String.sub input start (!pos - start)
  in
  let read_string_literal () =
    (* Opening quote consumed by caller; '' is an escaped quote. *)
    let buffer = Buffer.create 16 in
    let rec go () =
      if !pos >= n then Errors.fail Errors.Lex "unterminated string literal"
      else begin
        let c = input.[!pos] in
        advance ();
        if c = '\'' then begin
          if !pos < n && input.[!pos] = '\'' then begin
            Buffer.add_char buffer '\'';
            advance ();
            go ()
          end
        end
        else begin
          Buffer.add_char buffer c;
          go ()
        end
      end
    in
    go ();
    Buffer.contents buffer
  in
  let read_number () =
    let integral = read_while is_digit in
    let is_float =
      !pos + 1 < n && input.[!pos] = '.' && is_digit input.[!pos + 1]
    in
    if is_float then begin
      advance ();
      let fractional = read_while is_digit in
      emit (Float_lit (float_of_string (integral ^ "." ^ fractional)))
    end
    else emit (Int_lit (int_of_string integral))
  in
  let rec loop () =
    match peek () with
    | None -> ()
    | Some c ->
      (match c with
      | ' ' | '\t' | '\n' | '\r' -> advance ()
      | '(' -> advance (); emit Lparen
      | ')' -> advance (); emit Rparen
      | ',' -> advance (); emit Comma
      | '.' -> advance (); emit Dot
      | '*' -> advance (); emit Star_tok
      | '+' -> advance (); emit Plus
      | '-' ->
        advance ();
        if peek () = Some '-' then begin
          (* line comment *)
          advance ();
          let _ = read_while (fun c -> c <> '\n') in
          ()
        end
        else emit Minus
      | '/' -> advance (); emit Slash
      | '%' -> advance (); emit Percent
      | ';' -> advance (); emit Semicolon
      | '=' -> advance (); emit Eq_tok
      | '!' ->
        advance ();
        if peek () = Some '=' then begin advance (); emit Neq_tok end
        else Errors.fail Errors.Lex "unexpected character '!'"
      | '<' ->
        advance ();
        (match peek () with
        | Some '=' -> advance (); emit Le_tok
        | Some '>' -> advance (); emit Neq_tok
        | Some _ | None -> emit Lt_tok)
      | '>' ->
        advance ();
        (match peek () with
        | Some '=' -> advance (); emit Ge_tok
        | Some _ | None -> emit Gt_tok)
      | '|' ->
        advance ();
        if peek () = Some '|' then begin advance (); emit Concat_tok end
        else Errors.fail Errors.Lex "unexpected character '|'"
      | '\'' ->
        advance ();
        emit (String_lit (read_string_literal ()))
      | '"' ->
        (* Double-quoted identifier. *)
        advance ();
        let name = read_while (fun c -> c <> '"') in
        if !pos >= n then Errors.fail Errors.Lex "unterminated quoted identifier";
        advance ();
        emit (Ident name)
      | c when is_digit c -> read_number ()
      | c when is_ident_start c -> emit (Ident (read_while is_ident_char))
      | c -> Errors.fail Errors.Lex "unexpected character %C" c);
      loop ()
  in
  loop ();
  List.rev (Eof :: !tokens)
