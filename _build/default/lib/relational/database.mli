(** Catalog of named tables.  Table names are case-insensitive. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val table_exists : t -> string -> bool

val create_table : t -> name:string -> schema:Schema.t -> Table.t
(** @raise Errors.Sql_error (Catalog) when the name is taken. *)

val drop_table : t -> string -> unit
(** @raise Errors.Sql_error (Catalog) when absent. *)

val find_table : t -> string -> Table.t option

val table : t -> string -> Table.t
(** @raise Errors.Sql_error (Catalog) when absent. *)

val table_names : t -> string list
(** Sorted. *)
