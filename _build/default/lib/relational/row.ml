(* Rows are flat value arrays aligned with a schema. *)

type t = Value.t array

let of_list = Array.of_list

let to_list = Array.to_list

let arity (t : t) = Array.length t

let get (t : t) i = t.(i)

let equal (a : t) (b : t) =
  Array.length a = Array.length b && Array.for_all2 Value.equal a b

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash (t : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let concat (a : t) (b : t) : t = Array.append a b

let project (t : t) indices = Array.map (fun i -> t.(i)) indices

let pp ppf (t : t) =
  Fmt.pf ppf "(%a)" (Fmt.array ~sep:(Fmt.any ", ") Value.pp) t
