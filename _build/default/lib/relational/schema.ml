(* Table schemas.  Column names are case-insensitive, matching SQL
   convention; qualifiers carry the table alias through joins so that
   [t.col] references resolve unambiguously. *)

type column = {
  name : string;
  ty : Value.ty;
  qualifier : string option;
}

type t = column array

let column ?qualifier name ty = { name = String.lowercase_ascii name; ty; qualifier }

let of_list columns = Array.of_list columns

let arity (t : t) = Array.length t

let columns (t : t) = Array.to_list t

let column_names (t : t) = Array.to_list (Array.map (fun c -> c.name) t)

let normalize = String.lowercase_ascii

(* Resolution returns all candidate positions so callers can report
   ambiguity precisely. *)
let find_all (t : t) ?qualifier name =
  let name = normalize name in
  let qualifier = Option.map normalize qualifier in
  let matches i c =
    let name_ok = String.equal c.name name in
    let qual_ok =
      match qualifier with
      | None -> true
      | Some q -> (match c.qualifier with Some cq -> String.equal (normalize cq) q | None -> false)
    in
    if name_ok && qual_ok then Some i else None
  in
  Array.to_list t |> List.mapi matches |> List.filter_map Fun.id

let find (t : t) ?qualifier name =
  match find_all t ?qualifier name with
  | [ i ] -> Ok i
  | [] ->
    Error
      (Printf.sprintf "unknown column %s%s"
         (match qualifier with Some q -> q ^ "." | None -> "")
         name)
  | _ :: _ ->
    Error
      (Printf.sprintf "ambiguous column %s%s"
         (match qualifier with Some q -> q ^ "." | None -> "")
         name)

let find_exn (t : t) ?qualifier name =
  match find t ?qualifier name with
  | Ok i -> i
  | Error msg -> Errors.fail Errors.Plan "%s" msg

let mem (t : t) name = find_all t name <> []

let ty_at (t : t) i = t.(i).ty

let name_at (t : t) i = t.(i).name

(* Requalify every column, e.g. when a table is brought into scope under an
   alias in a FROM clause. *)
let with_qualifier (t : t) qualifier =
  Array.map (fun c -> { c with qualifier = Some qualifier }) t

let concat (a : t) (b : t) : t = Array.append a b

let equal_modulo_qualifiers (a : t) (b : t) =
  arity a = arity b
  && Array.for_all2 (fun ca cb -> String.equal ca.name cb.name && ca.ty = cb.ty) a b

let pp_column ppf c =
  match c.qualifier with
  | Some q -> Fmt.pf ppf "%s.%s %s" q c.name (Value.ty_to_string c.ty)
  | None -> Fmt.pf ppf "%s %s" c.name (Value.ty_to_string c.ty)

let pp ppf (t : t) =
  Fmt.pf ppf "(%a)" (Fmt.array ~sep:(Fmt.any ", ") pp_column) t
