(** SQL values and column types.

    NULL is a first-class value.  Three-valued logic is implemented at the
    expression layer ({!Expr}); the comparisons here are total orders used
    for sorting, grouping and index keys, with NULL ordered first. *)

type ty =
  | T_int
  | T_float
  | T_string
  | T_bool

type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

val ty_to_string : ty -> string
(** SQL spelling of the type, e.g. ["INTEGER"]. *)

val ty_of_string : string -> ty option
(** Parses SQL type names; TIMESTAMP maps to {!T_int}, VARCHAR to
    {!T_string}. *)

val type_of : t -> ty option
(** [None] for {!Null}. *)

val is_null : t -> bool

val compare : t -> t -> int
(** Total order: NULL first, then by type rank; mixed INTEGER/REAL compare
    numerically. *)

val equal : t -> t -> bool
(** [equal a b] iff [compare a b = 0]; note [Int 2] equals [Float 2.0]. *)

val hash : t -> int

val to_string : t -> string
(** Display form (unquoted strings). *)

val to_sql_literal : t -> string
(** Concrete-syntax literal; strings quoted with [''] doubling. *)

val pp : Format.formatter -> t -> unit

val as_int : t -> int option
(** Also accepts integral floats. *)

val as_float : t -> float option
val as_string : t -> string option
val as_bool : t -> bool option

val coerce : ty -> t -> t option
(** [coerce ty v] fits [v] into a column of type [ty] using lossless
    widenings only (INT into REAL, integral REAL into INT); NULL fits every
    type.  [None] when the value does not fit. *)
