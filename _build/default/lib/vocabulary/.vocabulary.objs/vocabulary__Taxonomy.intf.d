lib/vocabulary/taxonomy.mli: Format
