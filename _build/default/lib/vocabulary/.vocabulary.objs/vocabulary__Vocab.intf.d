lib/vocabulary/vocab.mli: Format Taxonomy
