lib/vocabulary/audit_attrs.ml:
