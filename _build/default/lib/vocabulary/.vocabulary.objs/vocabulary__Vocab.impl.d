lib/vocabulary/vocab.ml: List Map String Taxonomy
