lib/vocabulary/samples.mli: Taxonomy Vocab
