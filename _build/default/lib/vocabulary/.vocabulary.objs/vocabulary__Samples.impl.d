lib/vocabulary/samples.ml: Taxonomy Vocab
