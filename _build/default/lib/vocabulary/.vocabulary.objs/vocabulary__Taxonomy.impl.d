lib/vocabulary/taxonomy.ml: Fmt Hashtbl List
