(* Concrete vocabularies.

   [figure1] reconstructs the sample vocabulary of Figure 1 and Section 3.3:
   the narrative fixes (data, demographic) with a four-element ground set
   containing address and gender, a routine clinical category covering
   prescription and referral (rule 1 grounds to 1a and 1b), psychiatry outside
   it (so the Figure 3(b) rule-4 exception is genuinely uncovered), and the
   purposes and roles used by Figure 3 and Table 1.

   The policy-store rule for psychiatry uses the psychiatrist leaf: the paper
   says psychiatry data is reserved to "a physician", yet counts both the
   Nurse (Figure 3) and Doctor (Table 1, t4) accesses as uncovered, so the
   authorizing role must be a strict sub-category of physician distinct from
   the doctor leaf. *)

let attr_data = "data"
let attr_purpose = "purpose"
let attr_authorized = "authorized"

let n = Taxonomy.node
let l = Taxonomy.leaf

let figure1_data () =
  Taxonomy.create ~attr:attr_data
    (n "data"
       [ n "demographic" [ l "name"; l "address"; l "gender"; l "birthdate" ];
         n "clinical"
           [ n "routine" [ l "prescription"; l "referral"; l "lab-results" ];
             n "sensitive" [ l "psychiatry"; l "hiv-status"; l "genetic" ];
           ];
         n "financial" [ l "insurance"; l "payment-history" ];
       ])

let figure1_purpose () =
  Taxonomy.create ~attr:attr_purpose
    (n "purpose"
       [ n "administering-healthcare" [ l "treatment"; l "registration"; l "billing" ];
         l "research";
         l "telemarketing";
       ])

let figure1_authorized () =
  Taxonomy.create ~attr:attr_authorized
    (n "staff"
       [ n "clinical-staff"
           [ n "physician" [ l "psychiatrist"; l "doctor"; l "surgeon" ]; l "nurse" ];
         n "administrative-staff" [ l "clerk"; l "receptionist" ];
       ])

let figure1 () =
  Vocab.of_taxonomies [ figure1_data (); figure1_purpose (); figure1_authorized () ]

(* A larger vocabulary for the synthetic hospital of lib/workload: same three
   attributes, wider and deeper trees, so scaling experiments exercise
   non-trivial grounding. *)

let hospital_data () =
  Taxonomy.create ~attr:attr_data
    (n "data"
       [ n "demographic"
           [ l "name"; l "address"; l "gender"; l "birthdate"; l "phone"; l "email" ];
         n "clinical"
           [ n "routine"
               [ l "prescription"; l "referral"; l "lab-results"; l "vitals";
                 l "allergies"; l "immunizations" ];
             n "sensitive"
               [ l "psychiatry"; l "hiv-status"; l "genetic"; l "substance-abuse";
                 l "reproductive-health" ];
             n "imaging" [ l "x-ray"; l "mri"; l "ct-scan" ];
           ];
         n "financial" [ l "insurance"; l "payment-history"; l "billing-address" ];
         n "administrative" [ l "appointments"; l "admission-record"; l "discharge-record" ];
       ])

let hospital_purpose () =
  Taxonomy.create ~attr:attr_purpose
    (n "purpose"
       [ n "administering-healthcare"
           [ n "care-delivery" [ l "treatment"; l "diagnosis"; l "emergency-care" ];
             n "care-coordination" [ l "registration"; l "scheduling"; l "transfer" ];
             n "payment" [ l "billing"; l "claims-processing" ];
           ];
         n "secondary-use" [ l "research"; l "quality-improvement"; l "training" ];
         l "telemarketing";
       ])

let hospital_authorized () =
  Taxonomy.create ~attr:attr_authorized
    (n "staff"
       [ n "clinical-staff"
           [ n "physician"
               [ l "psychiatrist"; l "doctor"; l "surgeon"; l "radiologist";
                 l "emergency-physician" ];
             n "nursing" [ l "nurse"; l "head-nurse"; l "nurse-assistant" ];
             l "pharmacist";
             l "lab-technician";
           ];
         n "administrative-staff" [ l "clerk"; l "receptionist"; l "billing-specialist" ];
         n "oversight" [ l "privacy-officer"; l "auditor" ];
       ])

let hospital () =
  Vocab.of_taxonomies [ hospital_data (); hospital_purpose (); hospital_authorized () ]
