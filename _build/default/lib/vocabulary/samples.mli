(** Ready-made vocabularies: the paper's Figure 1 reconstruction and a larger
    synthetic-hospital vocabulary used by the workload generator. *)

val attr_data : string
(** The ["data"] attribute name. *)

val attr_purpose : string
(** The ["purpose"] attribute name. *)

val attr_authorized : string
(** The ["authorized"] (role) attribute name. *)

val figure1_data : unit -> Taxonomy.t
val figure1_purpose : unit -> Taxonomy.t
val figure1_authorized : unit -> Taxonomy.t

val figure1 : unit -> Vocab.t
(** The sample vocabulary of Figure 1 / Section 3.3:  demographic grounds to
    four terms including address and gender; prescription and referral share
    the routine-clinical parent; psychiatry is a sensitive sibling. *)

val hospital_data : unit -> Taxonomy.t
val hospital_purpose : unit -> Taxonomy.t
val hospital_authorized : unit -> Taxonomy.t

val hospital : unit -> Vocab.t
(** A wider and deeper three-attribute vocabulary for synthetic workloads and
    scaling experiments. *)
