(* A privacy policy vocabulary V: one taxonomy per policy attribute.  The
   vocabulary is what makes grounding (Definition 3) well defined. *)

module String_map = Map.Make (String)

type t = Taxonomy.t String_map.t

exception Unknown_attribute of string
exception Duplicate_attribute of string

let empty = String_map.empty

let add t taxonomy =
  let attr = Taxonomy.attr taxonomy in
  if String_map.mem attr t then raise (Duplicate_attribute attr)
  else String_map.add attr taxonomy t

let of_taxonomies taxonomies = List.fold_left add empty taxonomies

let attributes t = List.map fst (String_map.bindings t)

let mem_attribute t attr = String_map.mem attr t

let taxonomy t attr =
  match String_map.find_opt attr t with
  | Some tax -> tax
  | None -> raise (Unknown_attribute attr)

let taxonomy_opt t attr = String_map.find_opt attr t

let mem_value t ~attr ~value =
  match String_map.find_opt attr t with
  | Some tax -> Taxonomy.mem tax value
  | None -> false

(* Grounding treats values of attributes outside the vocabulary (e.g. the
   audit log's user names and timestamps) as already ground: the vocabulary
   cannot refine what it does not describe. *)
let is_ground t ~attr ~value =
  match String_map.find_opt attr t with
  | Some tax -> if Taxonomy.mem tax value then Taxonomy.is_ground tax value else true
  | None -> true

let ground_set t ~attr ~value =
  match String_map.find_opt attr t with
  | Some tax when Taxonomy.mem tax value -> Taxonomy.leaves_under tax value
  | Some _ | None -> [ value ]

let equivalent_values t ~attr v1 v2 =
  match String_map.find_opt attr t with
  | Some tax when Taxonomy.mem tax v1 && Taxonomy.mem tax v2 ->
    Taxonomy.equivalent tax v1 v2
  | Some _ | None -> String.equal v1 v2

let subsumes_value t ~attr ~ancestor ~descendant =
  match String_map.find_opt attr t with
  | Some tax when Taxonomy.mem tax ancestor && Taxonomy.mem tax descendant ->
    Taxonomy.subsumes tax ~ancestor ~descendant
  | Some _ | None -> String.equal ancestor descendant

let cardinality t =
  String_map.fold (fun _ tax acc -> acc + Taxonomy.size tax) t 0

let pp ppf t =
  String_map.iter (fun _ tax -> Taxonomy.pp ppf tax) t
