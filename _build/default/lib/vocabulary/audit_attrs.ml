(* Names of the audit-entry attributes (Section 4.2 schema).  Shared here so
   the HDB audit components and the PRIMA core algorithms agree on the
   strings by construction. *)

let time = "time"
let op = "op"
let user = "user"
let data = "data"
let purpose = "purpose"
let authorized = "authorized"
let status = "status"

(* Schema order as given in the paper. *)
let all = [ time; op; user; data; purpose; authorized; status ]

(* The default analysis projection A of Algorithm 4. *)
let pattern = [ data; purpose; authorized ]

(* Values of op and status, as recorded in rules/logs. *)
let op_allow = "1"
let op_disallow = "0"
let status_regular = "1"
let status_exception = "0"
