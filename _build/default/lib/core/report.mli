(** Human-readable reporting: patterns, epoch summaries, audit tables and
    ASCII coverage trajectories (the Figure 2 rendering). *)

val pp_pattern : Format.formatter -> Rule.t -> unit
(** Capitalised compact form over the pattern attributes, e.g.
    ["Referral:registration:nurse"]. *)

val pp_patterns : Format.formatter -> Rule.t list -> unit

val pp_epoch : Format.formatter -> Refinement.epoch_report -> unit

val pp_series : ?width:int -> Format.formatter -> (string * float) list -> unit
(** One bar per (label, fraction) row:
    {v epoch 1  |############............| 48.0% v} *)

val pp_audit_table : Format.formatter -> Rule.t list -> unit
(** Renders audit rules in the paper's Table 1 layout. *)
