(** Filter (Algorithm 3): keep the exception-based entries of P_AL — the
    undocumented practice refinement feeds on. *)

val is_exception : Rule.t -> bool
(** Carries (status, 0). *)

val is_prohibition : Rule.t -> bool
(** Carries (op, 0). *)

val run : ?keep_prohibitions:bool -> Policy.t -> Policy.t
(** Keeps exception-based rules; prohibitions (denied accesses) are dropped
    too unless [keep_prohibitions] is set — Algorithm 3 only tests
    [status], but its contract says "returns the non-prohibitions" (the two
    readings agree on the paper's Table 1, where every op is an allow). *)
