(* Definition 1: a RuleTerm is an (attr, value) pair — the atomic unit every
   policy notation maps onto. *)

type t = {
  attr : string;
  value : string;
}

let make ~attr ~value = { attr; value }

let attr t = t.attr

let value t = t.value

(* Syntactic identity, used to canonicalise ground rules. *)
let equal_syntactic a b = String.equal a.attr b.attr && String.equal a.value b.value

let compare a b =
  let c = String.compare a.attr b.attr in
  if c <> 0 then c else String.compare a.value b.value

(* Definition 2: ground iff the value is atomic w.r.t. the vocabulary. *)
let is_ground vocab t = Vocabulary.Vocab.is_ground vocab ~attr:t.attr ~value:t.value

(* Definition 3: the set RT' of ground terms derivable from this term. *)
let ground_set vocab t =
  List.map
    (fun value -> { t with value })
    (Vocabulary.Vocab.ground_set vocab ~attr:t.attr ~value:t.value)

(* Definition 4: terms are equivalent iff their ground sets share a member
   with equal attr and value.  Terms over different attributes are never
   equivalent. *)
let equivalent vocab a b =
  String.equal a.attr b.attr
  && Vocabulary.Vocab.equivalent_values vocab ~attr:a.attr a.value b.value

let pp ppf t = Fmt.pf ppf "(%s, %s)" t.attr t.value

let to_string t = Fmt.str "%a" pp t
