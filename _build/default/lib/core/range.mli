(** Range (Definition 8): the set of all ground rules derivable from a
    policy under the vocabulary.

    Equivalent ground rules of equal cardinality are syntactically equal
    after canonicalisation, so the Definition 6 intersection of Algorithm 1
    reduces to structural set operations. *)

type t

val empty : t
val of_rules : Vocabulary.Vocab.t -> Rule.t list -> t
val of_policy : Vocabulary.Vocab.t -> Policy.t -> t

val cardinality : t -> int
(** #Range of Definition 8. *)

val mem : Rule.t -> t -> bool
(** Membership of a (canonical, ground) rule. *)

val inter : t -> t -> t
val diff : t -> t -> t
val union : t -> t -> t
val subset : t -> t -> bool
val elements : t -> Rule.t list
val is_empty : t -> bool

val covers : Vocabulary.Vocab.t -> t -> Rule.t -> bool
(** Every ground instance of the rule lies in the range. *)

val intersects : Vocabulary.Vocab.t -> t -> Rule.t -> bool
(** Some ground instance of the rule lies in the range. *)

val pp : Format.formatter -> t -> unit
