(** dataAnalysis (Algorithm 5): translate (A, f, c) into the SQL statement

    {v SELECT A1,..,An FROM <table> GROUP BY A1,..,An
   HAVING COUNT( * ) >= f AND c v}

    and execute it on the relational engine. *)

type comparator =
  | At_least
      (** [COUNT( * ) >= f] — matches the paper's prose ("occurred at least
          f times") and the Section 5 walkthrough, where the pattern occurs
          exactly f = 5 times. *)
  | More_than  (** [COUNT( * ) > f] — the pseudocode read literally. *)

type config = {
  attributes : string list;  (** A: a subset of the audit schema *)
  min_frequency : int;  (** f: the system-defined threshold *)
  comparator : comparator;
  condition : string option;  (** c: extra HAVING conjunct, SQL text *)
}

val default_config : config
(** Algorithm 4's defaults: A = (data, purpose, authorized), f = 5,
    c = [COUNT(DISTINCT user) > 1], at-least comparator. *)

val materialize : Relational.Engine.t -> table_name:string -> Policy.t -> string list
(** Loads a policy of audit rules into a (re)created TEXT table, one column
    per attribute appearing in the rules; returns the column order. *)

val statement : table_name:string -> config -> string
(** The generated SQL text (Algorithm 5, line 2). *)

val run : Relational.Engine.t -> table_name:string -> config -> Rule.t list
(** Executes the statement; each surviving group becomes a rule over
    [config.attributes]. *)

val analyse : ?config:config -> Policy.t -> Rule.t list
(** One-call variant: materialise into a fresh engine and run there. *)
