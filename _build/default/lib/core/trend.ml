(* Coverage trends: the Figure 2 measurement computed from one audit trail,
   bucketed by time windows.  Where Refinement.run_epochs asks "how does
   coverage evolve as the store is refined", a trend asks the dual question
   a privacy officer monitors continuously: "against the store of today,
   how covered was each period of the log?"  A falling trend is the early
   signal that practice has drifted away from policy again. *)

type point = {
  window_start : int; (* inclusive *)
  window_end : int; (* inclusive *)
  entries : int;
  stats : Coverage.stats;
}

let time_of_rule rule =
  Option.bind (Rule.find_attr rule Vocabulary.Audit_attrs.time) int_of_string_opt

(* [compute vocab ~p_ps ~p_al ~window ()] buckets the audit rules by
   timestamp into consecutive windows of [window] ticks and reports bag
   coverage per bucket.  Rules without a readable timestamp are ignored.
   @raise Invalid_argument when [window <= 0]. *)
let compute ?(attrs = Vocabulary.Audit_attrs.pattern) vocab ~p_ps ~p_al ~window () :
    point list =
  if window <= 0 then invalid_arg "Trend.compute: window must be positive";
  let timed =
    List.filter_map
      (fun rule -> Option.map (fun t -> (t, rule)) (time_of_rule rule))
      (Policy.rules p_al)
  in
  match timed with
  | [] -> []
  | _ ->
    let min_time = List.fold_left (fun acc (t, _) -> min acc t) max_int timed in
    let max_time = List.fold_left (fun acc (t, _) -> max acc t) min_int timed in
    let bucket_of t = (t - min_time) / window in
    let bucket_count = bucket_of max_time + 1 in
    let buckets = Array.make bucket_count [] in
    List.iter
      (fun (t, rule) ->
        let b = bucket_of t in
        buckets.(b) <- rule :: buckets.(b))
      timed;
    List.init bucket_count (fun b ->
        let rules = List.rev buckets.(b) in
        let batch = Policy.make ~source:Policy.Audit_log rules in
        { window_start = min_time + (b * window);
          window_end = min_time + ((b + 1) * window) - 1;
          entries = List.length rules;
          stats = Coverage.aligned ~bag:true vocab ~attrs ~p_x:p_ps ~p_y:batch;
        })

(* Series form for Report.pp_series. *)
let to_series points =
  List.map
    (fun p ->
      ( Printf.sprintf "t%d-%d" p.window_start p.window_end,
        p.stats.Coverage.coverage ))
    points

(* Simple drift detector: true when the last window's coverage sits more
   than [tolerance] below the best window seen — practice has moved away
   from the store again and a refinement run is due. *)
let drifting ?(tolerance = 0.1) points =
  match List.rev points with
  | [] -> false
  | last :: _ ->
    let best =
      List.fold_left (fun acc p -> Float.max acc p.stats.Coverage.coverage) 0. points
    in
    best -. last.stats.Coverage.coverage > tolerance

let pp ppf points = Report.pp_series ppf (to_series points)
