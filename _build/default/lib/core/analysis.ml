(* Policy analysis: redundancy, minimization and generalization.

   Refinement grows the policy store with ground rules, one adopted pattern
   at a time.  Left alone, the store degenerates into the flat rule list the
   paper's Section 2 complains about.  These analyses push back:

   - [redundant_rules] finds rules already implied by the rest of the store;
   - [minimize] drops them;
   - [generalize] climbs the vocabulary: when every child of a composite
     value appears in otherwise-identical rules, the siblings collapse into
     one composite rule — the inverse of grounding, recovering the abstract
     rules a privacy officer would have written. *)

(* A rule is redundant when the rest of the policy already covers its whole
   ground set. *)
let redundant_rules vocab (policy : Policy.t) : Rule.t list =
  let rules = Policy.rules policy in
  List.filteri
    (fun i rule ->
      let others = List.filteri (fun j _ -> j <> i) rules in
      let range = Range.of_rules vocab others in
      Range.covers vocab range rule)
    rules

(* Greedy minimization: drop each rule that the remaining rules still
   cover.  Scanning in reverse order keeps the earliest (most
   deliberate) statement of any duplicated coverage. *)
let minimize vocab (policy : Policy.t) : Policy.t =
  let keep =
    List.fold_left
      (fun kept rule ->
        let without = List.filter (fun r -> not (r == rule)) kept in
        let range = Range.of_rules vocab without in
        if Range.covers vocab range rule then without else kept)
      (Policy.rules policy)
      (List.rev (Policy.rules policy))
  in
  Policy.make ~source:(Policy.source policy) keep

(* One generalization step: find a composite vocabulary value [v] on
   attribute [attr] such that for *every* child of [v] there is a rule in
   the policy identical to a template except for carrying that child as its
   [attr] value; replace those sibling rules by the template with [v].
   Returns [None] when no step applies. *)
let generalize_step vocab (rules : Rule.t list) : Rule.t list option =
  let try_attr attr =
    match Vocabulary.Vocab.taxonomy_opt vocab attr with
    | None -> None
    | Some taxonomy ->
      (* Candidate parents: composite values of the taxonomy. *)
      let composites =
        List.filter
          (fun v -> not (Vocabulary.Taxonomy.is_ground taxonomy v))
          (Vocabulary.Taxonomy.all_values taxonomy)
      in
      let template_of rule =
        List.filter (fun t -> Rule_term.attr t <> attr) (Rule.terms rule)
      in
      let find_parent () =
        List.find_map
          (fun parent ->
            let children = Vocabulary.Taxonomy.children taxonomy parent in
            (* For some rule carrying one of the children, check that every
               sibling version exists. *)
            let rule_with template value =
              Rule.make (Rule_term.make ~attr ~value :: template)
            in
            List.find_map
              (fun rule ->
                match Rule.find_attr rule attr with
                | Some value when List.mem value children ->
                  let template = template_of rule in
                  let siblings = List.map (rule_with template) children in
                  if
                    List.for_all
                      (fun s -> List.exists (Rule.equal_syntactic s) rules)
                      siblings
                  then Some (siblings, rule_with template parent)
                  else None
                | Some _ | None -> None)
              rules)
          composites
      in
      find_parent ()
  in
  let attrs =
    List.sort_uniq String.compare
      (List.concat_map (fun r -> List.map Rule_term.attr (Rule.terms r)) rules)
  in
  match List.find_map try_attr attrs with
  | None -> None
  | Some (siblings, replacement) ->
    let without =
      List.filter (fun r -> not (List.exists (Rule.equal_syntactic r) siblings)) rules
    in
    Some (replacement :: without)

(* Generalize to fixpoint, then minimize.  The result has the same range as
   the input (coverage is preserved) with fewer, more abstract rules. *)
let generalize vocab (policy : Policy.t) : Policy.t =
  let rec fixpoint rules =
    match generalize_step vocab rules with
    | Some rules' -> fixpoint rules'
    | None -> rules
  in
  minimize vocab (Policy.make ~source:(Policy.source policy) (fixpoint (Policy.rules policy)))

type summary = {
  rules_before : int;
  rules_after : int;
  range_cardinality : int;
  range_preserved : bool;
}

(* Apply [generalize] and report what happened; used by the ablation bench. *)
let summarize_generalization vocab (policy : Policy.t) : Policy.t * summary =
  let before = Range.of_policy vocab policy in
  let generalized = generalize vocab policy in
  let after = Range.of_policy vocab generalized in
  ( generalized,
    { rules_before = Policy.cardinality policy;
      rules_after = Policy.cardinality generalized;
      range_cardinality = Range.cardinality after;
      range_preserved =
        Range.cardinality (Range.inter before after) = Range.cardinality before
        && Range.cardinality before = Range.cardinality after;
    } )
