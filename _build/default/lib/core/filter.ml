(* Algorithm 3: Filter.

   Keeps the exception-based entries of P_AL — rules with (status, 0) —
   which embody the undocumented practice refinement feeds on.  The
   algorithm's contract ("returns the non-prohibitions") additionally
   requires dropping denied accesses, so rules carrying (op, 0) are removed
   too unless [keep_prohibitions] is set; in the paper's Table 1 every op is
   an allow, making both readings agree. *)

let is_exception rule =
  match Rule.find_attr rule Vocabulary.Audit_attrs.status with
  | Some v -> String.equal v Vocabulary.Audit_attrs.status_exception
  | None -> false

let is_prohibition rule =
  match Rule.find_attr rule Vocabulary.Audit_attrs.op with
  | Some v -> String.equal v Vocabulary.Audit_attrs.op_disallow
  | None -> false

let run ?(keep_prohibitions = false) (p_al : Policy.t) : Policy.t =
  let practice =
    Policy.filter
      (fun rule ->
        is_exception rule && (keep_prohibitions || not (is_prohibition rule)))
      p_al
  in
  Policy.make ~source:(Policy.Derived "practice") (Policy.rules practice)
