(* Textual policy-store format.

   One rule per line, two notations, freely mixed:

     routine:treatment:nurse             — the (data, purpose, authorized)
                                           triple shorthand of the use case
     data=routine, purpose=treatment     — general attr=value conjunctions

   '#' starts a comment; blank lines are ignored. *)

exception Bad_line of string

let parse_line line : Rule.t option =
  let line = match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then None
  else if String.contains line '=' then begin
    let pairs =
      String.split_on_char ',' line
      |> List.map (fun chunk ->
             match String.split_on_char '=' (String.trim chunk) with
             | [ attr; value ] -> (String.trim attr, String.trim value)
             | _ -> raise (Bad_line line))
    in
    Some (Rule.of_assoc pairs)
  end
  else
    match String.split_on_char ':' line with
    | [ data; purpose; authorized ] ->
      Some
        (Rule.of_assoc
           [ (Vocabulary.Audit_attrs.data, String.trim data);
             (Vocabulary.Audit_attrs.purpose, String.trim purpose);
             (Vocabulary.Audit_attrs.authorized, String.trim authorized);
           ])
    | _ -> raise (Bad_line line)

(* [of_string text] parses a policy store.
   @raise Bad_line on malformed lines. *)
let of_string ?(source = Policy.Policy_store) text : Policy.t =
  Policy.make ~source
    (List.filter_map parse_line (String.split_on_char '\n' text))

let rule_to_line rule =
  let assoc = Rule.to_assoc rule in
  let is_pattern_triple =
    List.length assoc = 3
    && List.for_all (fun (a, _) -> List.mem a Vocabulary.Audit_attrs.pattern) assoc
  in
  if is_pattern_triple then
    Rule.to_compact_string ~attrs:Vocabulary.Audit_attrs.pattern rule
  else String.concat ", " (List.map (fun (a, v) -> a ^ "=" ^ v) assoc)

let to_string (policy : Policy.t) : string =
  let header =
    Printf.sprintf "# policy store [%s], %d rules\n"
      (Policy.source_to_string (Policy.source policy))
      (Policy.cardinality policy)
  in
  header ^ String.concat "\n" (List.map rule_to_line (Policy.rules policy)) ^ "\n"

let load path : Policy.t =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let save path (policy : Policy.t) : unit =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string policy))
