(** Policy analysis: redundancy, minimization and generalization.

    Refinement grows the store with ground rules one pattern at a time;
    these analyses keep it the small, abstract rule base Section 2 says
    organizations actually want. *)

val redundant_rules : Vocabulary.Vocab.t -> Policy.t -> Rule.t list
(** Rules whose whole ground set is already covered by the rest of the
    policy. *)

val minimize : Vocabulary.Vocab.t -> Policy.t -> Policy.t
(** Greedily drops redundant rules; the range is preserved.  Earlier rules
    win over later duplicates. *)

val generalize_step : Vocabulary.Vocab.t -> Rule.t list -> Rule.t list option
(** One climbing step: when every child of some composite vocabulary value
    appears in otherwise-identical rules, the siblings collapse into the
    composite rule.  [None] when no step applies. *)

val generalize : Vocabulary.Vocab.t -> Policy.t -> Policy.t
(** {!generalize_step} to fixpoint, then {!minimize}.  Range-preserving:
    coverage judgments are unchanged. *)

type summary = {
  rules_before : int;
  rules_after : int;
  range_cardinality : int;
  range_preserved : bool;  (** always true; reported as a self-check *)
}

val summarize_generalization : Vocabulary.Vocab.t -> Policy.t -> Policy.t * summary
