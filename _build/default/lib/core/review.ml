(* The human step between Prune and adoption.

   The paper is explicit that Prune's output is not auto-adopted: "human
   input is prudent at this stage to determine which patterns are actually
   good practice and which should be investigated or terminated."  This
   module is that workstation: useful patterns are queued with their
   supporting evidence, a privacy officer approves, rejects or flags each
   for investigation, and only approved patterns flow back into the policy
   store. *)

type evidence = {
  occurrences : int; (* practice entries matching the pattern *)
  distinct_users : string list;
  first_seen : int option; (* earliest timestamp among supporting entries *)
  last_seen : int option;
}

type decision =
  | Approved
  | Rejected of string (* reason, e.g. "single-user snooping" *)
  | Investigate of string (* handed to security, e.g. possible violation *)

type state =
  | Pending
  | Decided of { decision : decision; by : string; at : int }

type item = {
  id : int;
  pattern : Rule.t;
  evidence : evidence;
  submitted_at : int;
  mutable state : state;
}

type t = {
  mutable items : item list; (* newest first *)
  mutable next_id : int;
  mutable clock : int;
}

let create () = { items = []; next_id = 1; clock = 0 }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let items t = List.rev t.items

let pending t = List.filter (fun i -> i.state = Pending) (items t)

let find t id = List.find_opt (fun i -> i.id = id) t.items

let mem_pattern t pattern =
  List.exists (fun i -> Rule.equal_syntactic i.pattern pattern) t.items

(* Supporting evidence from the practice entries the pattern was mined
   from. *)
let gather_evidence (practice : Policy.t) (pattern : Rule.t) : evidence =
  let pattern_assoc = Rule.to_assoc pattern in
  let matching =
    List.filter
      (fun rule ->
        let assoc = Rule.to_assoc rule in
        List.for_all (fun (a, v) -> List.assoc_opt a assoc = Some v) pattern_assoc)
      (Policy.rules practice)
  in
  let users =
    List.filter_map (fun rule -> Rule.find_attr rule Vocabulary.Audit_attrs.user) matching
    |> List.sort_uniq String.compare
  in
  let times =
    List.filter_map
      (fun rule ->
        Option.bind (Rule.find_attr rule Vocabulary.Audit_attrs.time) int_of_string_opt)
      matching
  in
  { occurrences = List.length matching;
    distinct_users = users;
    first_seen = (match times with [] -> None | ts -> Some (List.fold_left min max_int ts));
    last_seen = (match times with [] -> None | ts -> Some (List.fold_left max min_int ts));
  }

(* [submit t ~practice pattern] queues a pattern unless an item for it
   already exists (pending or decided); returns the item either way. *)
let submit t ~practice pattern : item =
  match List.find_opt (fun i -> Rule.equal_syntactic i.pattern pattern) t.items with
  | Some existing -> existing
  | None ->
    let item =
      { id = t.next_id;
        pattern;
        evidence = gather_evidence practice pattern;
        submitted_at = tick t;
        state = Pending;
      }
    in
    t.next_id <- t.next_id + 1;
    t.items <- item :: t.items;
    item

(* Queue every useful pattern of a refinement run. *)
let submit_epoch t ~practice (report : Refinement.epoch_report) : item list =
  List.map (submit t ~practice) report.Refinement.useful

let decide t ~id ~by decision : (item, string) result =
  match find t id with
  | None -> Error (Printf.sprintf "no review item %d" id)
  | Some item -> begin
    match item.state with
    | Decided _ -> Error (Printf.sprintf "item %d is already decided" id)
    | Pending ->
      item.state <- Decided { decision; by; at = tick t };
      Ok item
  end

let approved_patterns t =
  List.filter_map
    (fun i ->
      match i.state with
      | Decided { decision = Approved; _ } -> Some i.pattern
      | Decided _ | Pending -> None)
    (items t)

let rejected_patterns t =
  List.filter_map
    (fun i ->
      match i.state with
      | Decided { decision = Rejected _; _ } -> Some i.pattern
      | Decided _ | Pending -> None)
    (items t)

let under_investigation t =
  List.filter
    (fun i -> match i.state with Decided { decision = Investigate _; _ } -> true | _ -> false)
    (items t)

(* An acceptance policy that adopts exactly the patterns this queue has
   approved — plug into Refinement so re-runs pick up past decisions and
   never auto-adopt anything new. *)
let acceptance t : Refinement.acceptance =
  Refinement.Oracle (fun pattern ->
      List.exists
        (fun i ->
          match i.state with
          | Decided { decision = Approved; _ } -> Rule.equal_syntactic i.pattern pattern
          | Decided _ | Pending -> false)
        t.items)

let pp_item ppf item =
  let state =
    match item.state with
    | Pending -> "pending"
    | Decided { decision = Approved; by; _ } -> "approved by " ^ by
    | Decided { decision = Rejected reason; by; _ } ->
      Printf.sprintf "rejected by %s (%s)" by reason
    | Decided { decision = Investigate reason; by; _ } ->
      Printf.sprintf "under investigation, flagged by %s (%s)" by reason
  in
  Fmt.pf ppf "#%d %s — %d occurrences by %d users — %s" item.id
    (Rule.to_compact_string ~attrs:Vocabulary.Audit_attrs.pattern item.pattern)
    item.evidence.occurrences
    (List.length item.evidence.distinct_users)
    state

let pp ppf t =
  match items t with
  | [] -> Fmt.pf ppf "review queue: empty@."
  | items -> List.iter (fun i -> Fmt.pf ppf "%a@." pp_item i) items
