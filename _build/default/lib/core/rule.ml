(* Definition 5: a Rule is a conjunction of RuleTerms.  Terms are kept
   sorted by (attr, value) so structurally equal ground rules compare equal,
   which makes range sets (Definition 8) well defined. *)

type t = Rule_term.t list

let make terms : t =
  if terms = [] then invalid_arg "Rule.make: a rule needs at least one term";
  List.sort_uniq Rule_term.compare terms

let of_assoc pairs = make (List.map (fun (attr, value) -> Rule_term.make ~attr ~value) pairs)

let to_assoc (t : t) = List.map (fun term -> (Rule_term.attr term, Rule_term.value term)) t

let terms (t : t) = t

(* #R of Definition 5. *)
let cardinality (t : t) = List.length t

let compare (a : t) (b : t) = List.compare Rule_term.compare a b

let equal_syntactic a b = compare a b = 0

let find_attr (t : t) attr =
  List.find_opt (fun term -> String.equal (Rule_term.attr term) attr) t
  |> Option.map Rule_term.value

(* Restriction of the rule to the given attributes, e.g. projecting a
   seven-term audit rule onto (data, purpose, authorized).  None when no
   term survives. *)
let project (t : t) ~attrs =
  match List.filter (fun term -> List.mem (Rule_term.attr term) attrs) t with
  | [] -> None
  | survivors -> Some (make survivors)

let is_ground vocab (t : t) = List.for_all (Rule_term.is_ground vocab) t

(* Corollary 1: the ground rules derivable from this rule — the cartesian
   product of its terms' ground sets. *)
let ground_rules vocab (t : t) : t list =
  let per_term = List.map (Rule_term.ground_set vocab) t in
  List.fold_right
    (fun choices acc ->
      List.concat_map (fun term -> List.map (fun rest -> term :: rest) acc) choices)
    per_term [ [] ]
  |> List.map make

(* Definition 6: same cardinality, and every term of [a] is equivalent to
   some term of [b]. *)
let equivalent vocab (a : t) (b : t) =
  cardinality a = cardinality b
  && List.for_all (fun x -> List.exists (Rule_term.equivalent vocab x) b) a

let pp ppf (t : t) =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any " @<1>∧ ") Rule_term.pp) t

let to_string t = Fmt.str "%a" pp t

(* Compact rendering in the paper's use-case notation, e.g.
   "Referral:Registration:Nurse" for the pattern attributes. *)
let to_compact_string ?attrs (t : t) =
  let values =
    match attrs with
    | Some attrs -> List.filter_map (find_attr t) attrs
    | None -> List.map Rule_term.value t
  in
  String.concat ":" values
