(** Textual policy-store format.

    One rule per line in either notation, freely mixed:
    {v routine:treatment:nurse                   (pattern-triple shorthand)
   data=routine, purpose=treatment, authorized=nurse v}
    ['#'] starts a comment; blank lines are ignored. *)

exception Bad_line of string

val parse_line : string -> Rule.t option
(** [None] for blank/comment lines.
    @raise Bad_line on malformed lines. *)

val of_string : ?source:Policy.source -> string -> Policy.t
(** @raise Bad_line on malformed lines. *)

val rule_to_line : Rule.t -> string
(** Pattern triples render in the shorthand; anything else as
    [attr=value] pairs. *)

val to_string : Policy.t -> string
(** Round-trips through {!of_string} (modulo the header comment). *)

val load : string -> Policy.t
val save : string -> Policy.t -> unit
