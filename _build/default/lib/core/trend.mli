(** Coverage trends: bag coverage of an audit trail bucketed into time
    windows, judged against one fixed policy store.

    Where {!Refinement.run_epochs} asks how coverage evolves as the store
    is refined, a trend asks the question a privacy officer monitors
    continuously: against today's store, how covered was each period of
    the log?  A falling trend signals that practice has drifted away from
    policy again. *)

type point = {
  window_start : int;  (** inclusive *)
  window_end : int;  (** inclusive *)
  entries : int;
  stats : Coverage.stats;
}

val compute :
  ?attrs:string list ->
  Vocabulary.Vocab.t ->
  p_ps:Policy.t ->
  p_al:Policy.t ->
  window:int ->
  unit ->
  point list
(** Buckets audit rules by timestamp into consecutive windows of [window]
    ticks; rules without a readable [time] attribute are ignored.
    @raise Invalid_argument when [window <= 0]. *)

val to_series : point list -> (string * float) list

val drifting : ?tolerance:float -> point list -> bool
(** True when the last window's coverage sits more than [tolerance]
    (default 0.1) below the best window's. *)

val pp : Format.formatter -> point list -> unit
