(** The human step between Prune and adoption.

    The paper: "human input is prudent at this stage to determine which
    patterns are actually good practice and which should be investigated or
    terminated."  Useful patterns are queued with their supporting
    evidence; a privacy officer approves, rejects, or flags each; only
    approved patterns flow back into the policy store. *)

type evidence = {
  occurrences : int;  (** practice entries matching the pattern *)
  distinct_users : string list;
  first_seen : int option;
  last_seen : int option;
}

type decision =
  | Approved
  | Rejected of string  (** with a reason, e.g. "single-user snooping" *)
  | Investigate of string  (** handed to security *)

type state =
  | Pending
  | Decided of { decision : decision; by : string; at : int }

type item = {
  id : int;
  pattern : Rule.t;
  evidence : evidence;
  submitted_at : int;
  mutable state : state;
}

type t

val create : unit -> t
val items : t -> item list
(** Oldest first. *)

val pending : t -> item list
val find : t -> int -> item option
val mem_pattern : t -> Rule.t -> bool

val gather_evidence : Policy.t -> Rule.t -> evidence
(** Occurrences, distinct users, and the time span of the supporting
    practice entries. *)

val submit : t -> practice:Policy.t -> Rule.t -> item
(** Queues a pattern; resubmission of a known pattern returns the existing
    item unchanged (decisions are never reopened silently). *)

val submit_epoch : t -> practice:Policy.t -> Refinement.epoch_report -> item list
(** Queue every useful pattern of a refinement run. *)

val decide : t -> id:int -> by:string -> decision -> (item, string) result
(** [Error] for unknown ids and already-decided items. *)

val approved_patterns : t -> Rule.t list
val rejected_patterns : t -> Rule.t list
val under_investigation : t -> item list

val acceptance : t -> Refinement.acceptance
(** Adopts exactly the patterns this queue has approved: plug into
    {!Refinement} so re-runs pick up past decisions and never auto-adopt
    anything new. *)

val pp_item : Format.formatter -> item -> unit
val pp : Format.formatter -> t -> unit
