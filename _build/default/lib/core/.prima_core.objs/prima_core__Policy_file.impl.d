lib/core/policy_file.ml: Fun List Policy Printf Rule String Vocabulary
