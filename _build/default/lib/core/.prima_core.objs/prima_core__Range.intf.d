lib/core/range.mli: Format Policy Rule Vocabulary
