lib/core/data_analysis.ml: List Policy Printf Relational Rule Rule_term String Vocabulary
