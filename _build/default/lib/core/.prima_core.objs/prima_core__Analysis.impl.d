lib/core/analysis.ml: List Policy Range Rule Rule_term String Vocabulary
