lib/core/review.ml: Fmt List Option Policy Printf Refinement Rule String Vocabulary
