lib/core/rule.ml: Fmt List Option Rule_term String
