lib/core/trend.mli: Coverage Format Policy Vocabulary
