lib/core/prima.mli: Coverage Policy Refinement Rule Vocabulary
