lib/core/policy_file.mli: Policy Rule
