lib/core/rule_term.mli: Format Vocabulary
