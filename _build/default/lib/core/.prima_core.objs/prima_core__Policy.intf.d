lib/core/policy.mli: Format Rule Vocabulary
