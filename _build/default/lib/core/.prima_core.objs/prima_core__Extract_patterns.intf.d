lib/core/extract_patterns.mli: Data_analysis Mining Policy Rule
