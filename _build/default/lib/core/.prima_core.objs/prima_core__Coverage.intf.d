lib/core/coverage.mli: Format Policy Rule Vocabulary
