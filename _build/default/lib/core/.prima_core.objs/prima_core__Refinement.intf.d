lib/core/refinement.mli: Coverage Extract_patterns Policy Rule Vocabulary
