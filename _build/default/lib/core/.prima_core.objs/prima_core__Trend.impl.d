lib/core/trend.ml: Array Coverage Float List Option Policy Printf Report Rule Vocabulary
