lib/core/report.mli: Format Refinement Rule
