lib/core/coverage.ml: Fmt List Policy Range Rule
