lib/core/report.ml: Coverage Float Fmt List Option Refinement Rule String Vocabulary
