lib/core/policy.ml: Fmt Hashtbl List Rule
