lib/core/analysis.mli: Policy Rule Vocabulary
