lib/core/prima.ml: Coverage List Policy Printf Refinement Vocabulary
