lib/core/extract_patterns.ml: Data_analysis List Mining Policy Rule Rule_term String Vocabulary
