lib/core/prune.ml: List Policy Range Rule Rule_term String
