lib/core/rule_term.ml: Fmt List String Vocabulary
