lib/core/rule.mli: Format Rule_term Vocabulary
