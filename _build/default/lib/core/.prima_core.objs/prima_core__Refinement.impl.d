lib/core/refinement.ml: Coverage Extract_patterns Filter List Logs Policy Prune Rule Vocabulary
