lib/core/prune.mli: Policy Rule Vocabulary
