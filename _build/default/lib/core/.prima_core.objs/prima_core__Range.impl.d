lib/core/range.ml: Fmt List Policy Rule Set
