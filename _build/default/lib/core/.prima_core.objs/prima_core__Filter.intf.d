lib/core/filter.mli: Policy Rule
