lib/core/data_analysis.mli: Policy Relational Rule
