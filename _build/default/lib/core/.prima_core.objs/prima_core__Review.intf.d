lib/core/review.mli: Format Policy Refinement Rule
