lib/core/filter.ml: Policy Rule String Vocabulary
