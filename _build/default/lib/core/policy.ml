(* Definition 7: a policy is a collection of rules tied to a data store —
   the policy store (P_PS, the ideal workflow) or the audit logs (P_AL, the
   real workflow).  The collection is a *sequence*, not a set: audit-log
   policies legitimately repeat rules, and Section 5's 3/10 coverage counts
   those repetitions. *)

type source =
  | Policy_store
  | Audit_log
  | Derived of string

type t = {
  source : source;
  rules : Rule.t list;
}

let make ?(source = Derived "anonymous") rules = { source; rules }

let of_assoc_list ?source pairs = make ?source (List.map Rule.of_assoc pairs)

let source t = t.source

let rules t = t.rules

(* #P of Definition 7. *)
let cardinality t = List.length t.rules

let is_empty t = t.rules = []

let is_ground vocab t = List.for_all (Rule.is_ground vocab) t.rules

let add_rule t rule = { t with rules = t.rules @ [ rule ] }

let add_rules t rules = { t with rules = t.rules @ rules }

let union a b = { a with rules = a.rules @ b.rules }

let filter p t = { t with rules = List.filter p t.rules }

(* Distinct rules under syntactic equality, preserving first-seen order. *)
let dedupe t =
  let seen = Hashtbl.create 64 in
  let rules =
    List.filter
      (fun rule ->
        let key = Rule.to_assoc rule in
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      t.rules
  in
  { t with rules }

(* Project every rule onto [attrs]; rules with no surviving term drop out. *)
let project t ~attrs =
  { t with rules = List.filter_map (fun rule -> Rule.project rule ~attrs) t.rules }

let mem_syntactic t rule = List.exists (Rule.equal_syntactic rule) t.rules

let source_to_string = function
  | Policy_store -> "PS"
  | Audit_log -> "AL"
  | Derived name -> name

let pp ppf t =
  Fmt.pf ppf "policy[%s] (%d rules):@." (source_to_string t.source) (cardinality t);
  List.iteri (fun i rule -> Fmt.pf ppf "  %d. %a@." (i + 1) Rule.pp rule) t.rules
