(** Policy (Definition 7): a collection of rules tied to a data store — the
    policy store P_PS (the ideal workflow) or the audit logs P_AL (the real
    workflow).

    The collection is a {e sequence}, not a set: audit-log policies
    legitimately repeat rules, and the Section 5 coverage accounting counts
    the repetitions. *)

type source =
  | Policy_store
  | Audit_log
  | Derived of string

type t

val make : ?source:source -> Rule.t list -> t
val of_assoc_list : ?source:source -> (string * string) list list -> t
val source : t -> source
val rules : t -> Rule.t list

val cardinality : t -> int
(** #P of Definition 7 (occurrences, not distinct rules). *)

val is_empty : t -> bool
val is_ground : Vocabulary.Vocab.t -> t -> bool
val add_rule : t -> Rule.t -> t
val add_rules : t -> Rule.t list -> t
val union : t -> t -> t
val filter : (Rule.t -> bool) -> t -> t

val dedupe : t -> t
(** Distinct rules under syntactic equality, first-seen order. *)

val project : t -> attrs:string list -> t
(** Projects every rule; rules with no surviving term drop out. *)

val mem_syntactic : t -> Rule.t -> bool
val source_to_string : source -> string
val pp : Format.formatter -> t -> unit
