(** Prune (Algorithm 6): remove the patterns already present in the policy
    store — the useful patterns are Range(Patterns) \ Range(P_PS).

    The result deliberately stops short of adoption: "human input is
    prudent at this stage" (the acceptance step of {!Refinement}). *)

val run : Vocabulary.Vocab.t -> patterns:Rule.t list -> p_ps:Policy.t -> Rule.t list
(** Patterns with at least one uncovered ground instance.  The store is
    projected onto the patterns' attributes first, so composite store rules
    prune the ground patterns beneath them. *)

val ground_complement :
  Vocabulary.Vocab.t -> patterns:Rule.t list -> p_ps:Policy.t -> Rule.t list
(** Exactly getComplement(range_x, range_y): the uncovered ground rules
    themselves. *)
