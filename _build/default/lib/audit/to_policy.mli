(** Bridge between the audit world and the formal model: an audit entry is
    a seven-term rule (Section 4.2); a log is the ground policy P_AL
    (Definition 7). *)

val rule_of_entry : Hdb.Audit_schema.entry -> Prima_core.Rule.t

val pattern_rule_of_entry : Hdb.Audit_schema.entry -> Prima_core.Rule.t
(** Projection to (data, purpose, authorized), as Figure 3(b) presents log
    rules. *)

val policy_of_entries : Hdb.Audit_schema.entry list -> Prima_core.Policy.t
(** Tagged with the {!Prima_core.Policy.Audit_log} source. *)

val policy_of_store : Hdb.Audit_store.t -> Prima_core.Policy.t

val entry_of_rule : Prima_core.Rule.t -> Hdb.Audit_schema.entry option
(** Inverse direction; [None] unless the rule carries all seven audit
    attributes with readable time/op/status values. *)
