lib/audit/mapping.mli: Hdb
