lib/audit/to_policy.ml: Hdb List Prima_core Vocabulary
