lib/audit/federation.mli: Format Hdb Prima_core Site
