lib/audit/site.ml: Hdb List Mapping
