lib/audit/to_policy.mli: Hdb Prima_core
