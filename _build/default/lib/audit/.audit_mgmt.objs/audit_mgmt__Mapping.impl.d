lib/audit/mapping.ml: Hdb List Printf String Vocabulary
