lib/audit/site.mli: Hdb Mapping
