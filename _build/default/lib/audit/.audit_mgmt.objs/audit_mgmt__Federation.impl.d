lib/audit/federation.ml: Fmt Hdb Int List Option Prima_core Site String To_policy
