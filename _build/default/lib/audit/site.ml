(* One audited system in the clinical environment: a named audit store plus
   the mapping that normalises its raw records.  A modern HDB-instrumented
   site ingests standard entries directly; a legacy site ingests raw
   records through its mapping. *)

type t = {
  name : string;
  store : Hdb.Audit_store.t;
  mapping : Mapping.t;
}

let create ?(mapping = Mapping.identity) ~name () =
  { name; store = Hdb.Audit_store.create (); mapping }

let name t = t.name

let store t = t.store

let length t = Hdb.Audit_store.length t.store

let ingest_entry t entry = Hdb.Audit_store.append t.store entry

let ingest_entries t entries = List.iter (ingest_entry t) entries

(* @raise Mapping.Unmappable on malformed raw records. *)
let ingest_raw t raw = ingest_entry t (Mapping.apply t.mapping raw)

let ingest_raw_all t raws = List.iter (ingest_raw t) raws

let entries t = Hdb.Audit_store.to_list t.store

(* Attach an existing store (e.g. an enforcement logger's). *)
let of_store ?(mapping = Mapping.identity) ~name store = { name; store; mapping }
