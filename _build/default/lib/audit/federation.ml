(* The PRIMA Audit Management component: a consolidated virtual view over
   every site's audit trail (the role DB2 Information Integrator plays in
   the paper's first instantiation).  Entries are merged by timestamp with
   a k-way merge; per-site logs are append-ordered so each is already
   sorted, and out-of-order sites are sorted defensively. *)

type t = {
  mutable sites : Site.t list;
}

let create () = { sites = [] }

let of_sites sites = { sites }

let add_site t site = t.sites <- t.sites @ [ site ]

let sites t = t.sites

let site t name = List.find_opt (fun s -> String.equal (Site.name s) name) t.sites

let total_entries t =
  List.fold_left (fun acc site -> acc + Site.length site) 0 t.sites

let is_sorted entries =
  let rec go = function
    | a :: (b :: _ as rest) ->
      a.Hdb.Audit_schema.time <= b.Hdb.Audit_schema.time && go rest
    | [ _ ] | [] -> true
  in
  go entries

let sorted_entries site =
  let entries = Site.entries site in
  if is_sorted entries then entries
  else
    List.stable_sort
      (fun a b -> Int.compare a.Hdb.Audit_schema.time b.Hdb.Audit_schema.time)
      entries

(* K-way merge of the per-site streams; ties resolve in site order, keeping
   the merge stable and deterministic. *)
let consolidated t : Hdb.Audit_schema.entry list =
  let streams = List.map sorted_entries t.sites in
  let rec merge streams acc =
    let heads =
      List.filter_map (function [] -> None | e :: rest -> Some (e, rest)) streams
    in
    match heads with
    | [] -> List.rev acc
    | _ ->
      let best, _ =
        List.fold_left
          (fun (best, best_time) (e, _) ->
            let time = e.Hdb.Audit_schema.time in
            if time < best_time then (Some e, time) else (best, best_time))
          (None, max_int) heads
      in
      let best = Option.get best in
      (* Remove exactly one occurrence of [best], from the first stream
         whose head it is. *)
      let consumed = ref false in
      let streams' =
        List.map
          (fun stream ->
            match stream with
            | e :: rest when (not !consumed) && e == best ->
              consumed := true;
              rest
            | _ -> stream)
          streams
      in
      merge streams' (best :: acc)
  in
  merge streams []

(* The consolidated view as P_AL. *)
let to_policy t : Prima_core.Policy.t = To_policy.policy_of_entries (consolidated t)

(* Entries within a time window — e.g. one refinement epoch. *)
let window t ~time_from ~time_to =
  List.filter
    (fun e -> e.Hdb.Audit_schema.time >= time_from && e.Hdb.Audit_schema.time <= time_to)
    (consolidated t)

let pp ppf t =
  Fmt.pf ppf "federation of %d sites, %d entries@." (List.length t.sites) (total_entries t);
  List.iter (fun s -> Fmt.pf ppf "  %s: %d entries@." (Site.name s) (Site.length s)) t.sites
