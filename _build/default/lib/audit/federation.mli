(** The PRIMA Audit Management component: a consolidated virtual view over
    every site's audit trail — the role DB2 Information Integrator plays in
    the paper's first instantiation. *)

type t

val create : unit -> t
val of_sites : Site.t list -> t
val add_site : t -> Site.t -> unit
val sites : t -> Site.t list
val site : t -> string -> Site.t option
val total_entries : t -> int

val consolidated : t -> Hdb.Audit_schema.entry list
(** K-way merge of the per-site streams by timestamp; ties resolve in site
    order (stable and deterministic).  Out-of-order site logs are sorted
    defensively. *)

val to_policy : t -> Prima_core.Policy.t
(** The consolidated view as P_AL. *)

val window : t -> time_from:int -> time_to:int -> Hdb.Audit_schema.entry list
(** Consolidated entries within an inclusive time window — e.g. one
    refinement epoch. *)

val pp : Format.formatter -> t -> unit
