(** One audited system in the clinical environment: a named audit store
    plus the mapping that normalises its raw records. *)

type t

val create : ?mapping:Mapping.t -> name:string -> unit -> t
(** A fresh site with its own store; [mapping] defaults to
    {!Mapping.identity}. *)

val of_store : ?mapping:Mapping.t -> name:string -> Hdb.Audit_store.t -> t
(** Attach an existing store — e.g. an enforcement logger's. *)

val name : t -> string
val store : t -> Hdb.Audit_store.t
val length : t -> int
val ingest_entry : t -> Hdb.Audit_schema.entry -> unit
val ingest_entries : t -> Hdb.Audit_schema.entry list -> unit

val ingest_raw : t -> (string * string) list -> unit
(** Legacy path: a raw record through the site's mapping.
    @raise Mapping.Unmappable on malformed records. *)

val ingest_raw_all : t -> (string * string) list list -> unit
val entries : t -> Hdb.Audit_schema.entry list
