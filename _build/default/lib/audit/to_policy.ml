(* Bridge between the audit world and the formal model: an audit entry is a
   seven-term rule (Section 4.2), a log is the ground policy P_AL
   (Definition 7). *)

let rule_of_entry (e : Hdb.Audit_schema.entry) : Prima_core.Rule.t =
  Prima_core.Rule.of_assoc (Hdb.Audit_schema.to_assoc e)

(* Projection to the pattern attributes, as Figure 3(b) presents log rules. *)
let pattern_rule_of_entry (e : Hdb.Audit_schema.entry) : Prima_core.Rule.t =
  Prima_core.Rule.of_assoc
    [ (Vocabulary.Audit_attrs.data, e.Hdb.Audit_schema.data);
      (Vocabulary.Audit_attrs.purpose, e.Hdb.Audit_schema.purpose);
      (Vocabulary.Audit_attrs.authorized, e.Hdb.Audit_schema.authorized);
    ]

let policy_of_entries entries : Prima_core.Policy.t =
  Prima_core.Policy.make ~source:Prima_core.Policy.Audit_log
    (List.map rule_of_entry entries)

let policy_of_store store : Prima_core.Policy.t =
  policy_of_entries (Hdb.Audit_store.to_list store)

(* Inverse direction (rules carrying all seven attributes only). *)
let entry_of_rule (rule : Prima_core.Rule.t) : Hdb.Audit_schema.entry option =
  let find attr = Prima_core.Rule.find_attr rule attr in
  match
    ( find Vocabulary.Audit_attrs.time,
      find Vocabulary.Audit_attrs.op,
      find Vocabulary.Audit_attrs.user,
      find Vocabulary.Audit_attrs.data,
      find Vocabulary.Audit_attrs.purpose,
      find Vocabulary.Audit_attrs.authorized,
      find Vocabulary.Audit_attrs.status )
  with
  | Some time, Some op, Some user, Some data, Some purpose, Some authorized, Some status
    -> begin
    match int_of_string_opt time, int_of_string_opt op, int_of_string_opt status with
    | Some time, Some op, Some status ->
      Some
        (Hdb.Audit_schema.entry ~time ~op:(Hdb.Audit_schema.op_of_int op) ~user ~data
           ~purpose ~authorized
           ~status:(Hdb.Audit_schema.status_of_int status))
    | _ -> None
  end
  | _ -> None
