(* A store of hierarchical patient records: one XML document per patient,
   with a path-to-category mapping that plays the role Category_map plays
   for relational clinical tables. *)

type t = {
  documents : (string, Xml.node) Hashtbl.t; (* patient id -> record *)
  mutable category_paths : (Path.t * string) list; (* path -> data category *)
}

let create () = { documents = Hashtbl.create 32; category_paths = [] }

let put t ~patient document = Hashtbl.replace t.documents patient document

let put_xml t ~patient xml = put t ~patient (Xml.parse xml)

let get t ~patient = Hashtbl.find_opt t.documents patient

let patients t =
  Hashtbl.fold (fun patient _ acc -> patient :: acc) t.documents []
  |> List.sort String.compare

let count t = Hashtbl.length t.documents

let map_path t ~path ~category =
  t.category_paths <- t.category_paths @ [ (Path.parse path, category) ]

let mappings t = t.category_paths

(* The data category of a node at tag path [tags] (root tag first):
   first mapping whose path matches, searched innermost-first so more
   specific mappings can be listed later. *)
let category_of_tags t tags =
  List.fold_left
    (fun found (path, category) ->
      if Path.matches path tags then Some category else found)
    None t.category_paths

(* All categories present in a document. *)
let categories_in t document =
  let acc = ref [] in
  let rec go tags node =
    let tags = tags @ [ node.Xml.tag ] in
    (match category_of_tags t tags with
    | Some category when not (List.mem category !acc) -> acc := category :: !acc
    | Some _ | None -> ());
    List.iter (go tags) node.Xml.children
  in
  go [] document;
  List.rev !acc
