(** A store of hierarchical patient records: one XML document per patient,
    with a path-to-category mapping playing the role {!Hdb.Category_map}
    plays for relational clinical tables. *)

type t

val create : unit -> t
val put : t -> patient:string -> Xml.node -> unit

val put_xml : t -> patient:string -> string -> unit
(** @raise Xml.Parse_error on malformed documents. *)

val get : t -> patient:string -> Xml.node option
val patients : t -> string list
val count : t -> int

val map_path : t -> path:string -> category:string -> unit
(** Declares that nodes matching [path] hold data of [category].
    @raise Path.Invalid_path on malformed paths. *)

val mappings : t -> (Path.t * string) list

val category_of_tags : t -> string list -> string option
(** Category of a node at the given tag path (root first); later mappings
    win, so more specific ones can be listed last. *)

val categories_in : t -> Xml.node -> string list
(** All categories present in a document, in discovery order. *)
