(** Active Enforcement over hierarchical records: the tree analogue of the
    relational middleware.

    Retrieving a patient record prunes every subtree whose data category is
    not permitted for the requester's (role, purpose) and withholds
    categories the patient opted out of.  Disclosures and Break-The-Glass
    retrievals feed the same audit schema as the relational path, so
    refinement is oblivious to which substrate produced the log. *)

type context = {
  user : string;
  role : string;
  purpose : string;
}

type t

type outcome = {
  document : Xml.node;  (** the pruned record *)
  pruned_categories : string list;
  disclosed_categories : string list;
  break_glass : bool;
}

type error =
  | Denied of string
  | Not_found of string

val create :
  store:Tree_store.t ->
  rules:Hdb.Privacy_rules.t ->
  consent:Hdb.Consent.t ->
  logger:Hdb.Audit_logger.t ->
  t

val store : t -> Tree_store.t
val logger : t -> Hdb.Audit_logger.t
val rules : t -> Hdb.Privacy_rules.t
val consent : t -> Hdb.Consent.t

val retrieve : ?break_glass:bool -> t -> context -> patient:string -> (outcome, error) result
(** The policy- and consent-pruned record.  When nothing at all may be
    disclosed the retrieval is denied (and audited with op 0); retried with
    [~break_glass:true] it returns the full record and logs every category
    as an exception-based access. *)

val error_to_string : error -> string
