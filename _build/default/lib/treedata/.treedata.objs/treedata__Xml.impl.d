lib/treedata/xml.ml: Buffer Fmt List Printf String
