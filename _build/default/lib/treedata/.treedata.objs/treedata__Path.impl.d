lib/treedata/path.ml: List String Xml
