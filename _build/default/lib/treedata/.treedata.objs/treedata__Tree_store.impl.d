lib/treedata/tree_store.ml: Hashtbl List Path String Xml
