lib/treedata/xml.mli: Format
