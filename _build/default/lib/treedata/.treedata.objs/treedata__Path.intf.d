lib/treedata/path.mli: Xml
