lib/treedata/tree_enforcement.ml: Hdb List Printf Tree_store Xml
