lib/treedata/tree_store.mli: Path Xml
