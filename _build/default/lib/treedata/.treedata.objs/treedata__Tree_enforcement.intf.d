lib/treedata/tree_enforcement.mli: Hdb Tree_store Xml
