(* Active Enforcement over hierarchical records: the paper's "natural
   evolution" of PRIMA to tree-based legacy structures.

   Retrieving a patient record prunes every subtree whose data category is
   not permitted for the requester's (role, purpose) — the tree analogue of
   cell-level masking — and excludes whole documents the patient withheld
   consent for.  Disclosures and Break-The-Glass retrievals feed the same
   audit schema as the relational path, so refinement is oblivious to which
   substrate produced the log. *)

type context = {
  user : string;
  role : string;
  purpose : string;
}

type t = {
  store : Tree_store.t;
  rules : Hdb.Privacy_rules.t;
  consent : Hdb.Consent.t;
  logger : Hdb.Audit_logger.t;
}

type outcome = {
  document : Xml.node;
  pruned_categories : string list;
  disclosed_categories : string list;
  break_glass : bool;
}

type error =
  | Denied of string
  | Not_found of string

let create ~store ~rules ~consent ~logger = { store; rules; consent; logger }

let store t = t.store
let logger t = t.logger
let rules t = t.rules
let consent t = t.consent

let log_categories t ctx ~op ~status categories =
  let _ = Hdb.Audit_logger.tick t.logger in
  List.iter
    (fun data ->
      Hdb.Audit_logger.log t.logger ~op ~user:ctx.user ~data ~purpose:ctx.purpose
        ~authorized:ctx.role ~status)
    categories

(* Categories in the document the context may see. *)
let permitted_categories t ctx categories =
  List.partition
    (fun data ->
      Hdb.Privacy_rules.permits t.rules ~data ~purpose:ctx.purpose ~authorized:ctx.role)
    categories

let prune_document t ctx ~patient document =
  let keep tags node =
    ignore node;
    match Tree_store.category_of_tags t.store tags with
    | None -> true (* structural nodes without a category stay *)
    | Some category ->
      Hdb.Privacy_rules.permits t.rules ~data:category ~purpose:ctx.purpose
        ~authorized:ctx.role
      && Hdb.Consent.permits t.consent ~patient ~purpose:ctx.purpose ~data:category
  in
  Xml.filter_children ~keep document

(* [retrieve t ctx ~patient] returns the policy- and consent-pruned record.
   When nothing at all may be disclosed the retrieval is denied; a denied
   retrieval may be retried with [~break_glass:true], which returns the full
   record and logs every category as an exception-based access. *)
let retrieve ?(break_glass = false) t ctx ~patient : (outcome, error) result =
  match Tree_store.get t.store ~patient with
  | None -> Error (Not_found patient)
  | Some document ->
    let categories = Tree_store.categories_in t.store document in
    let allowed, forbidden = permitted_categories t ctx categories in
    let consented =
      List.filter
        (fun data -> Hdb.Consent.permits t.consent ~patient ~purpose:ctx.purpose ~data)
        allowed
    in
    if consented = [] && categories <> [] then begin
      if break_glass then begin
        log_categories t ctx ~op:Hdb.Audit_schema.Allow
          ~status:Hdb.Audit_schema.Exception_based categories;
        Ok
          { document;
            pruned_categories = [];
            disclosed_categories = categories;
            break_glass = true;
          }
      end
      else begin
        log_categories t ctx ~op:Hdb.Audit_schema.Disallow ~status:Hdb.Audit_schema.Regular
          categories;
        Error
          (Denied
             (Printf.sprintf "no category of %s's record is permitted for %s/%s" patient
                ctx.role ctx.purpose))
      end
    end
    else begin
      let pruned = prune_document t ctx ~patient document in
      log_categories t ctx ~op:Hdb.Audit_schema.Allow ~status:Hdb.Audit_schema.Regular
        consented;
      Ok
        { document = pruned;
          pruned_categories =
            forbidden
            @ List.filter (fun c -> not (List.mem c consented)) allowed;
          disclosed_categories = consented;
          break_glass = false;
        }
    end

let error_to_string = function
  | Denied reason -> "denied: " ^ reason
  | Not_found patient -> "no record for patient " ^ patient
