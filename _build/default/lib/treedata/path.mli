(** Path expressions over tree records: the XPath subset PRIMA needs to map
    subtrees to privacy vocabulary categories.

    {v /record/medications/prescription    absolute child steps
   /record/*/date                       single-level wildcard
   //psychiatry                         descendant search
   /record//note                        mixed v} *)

type step =
  | Child of string
  | Any_child
  | Descendant of string

type t = step list

exception Invalid_path of string

val parse : string -> t
(** @raise Invalid_path on malformed expressions (must start with [/];
    [//*] is not supported). *)

val to_string : t -> string

val select : t -> Xml.node -> Xml.node list
(** All nodes reached by the path; the first step is matched against the
    root element itself. *)

val matches : t -> string list -> bool
(** Does a concrete tag path (root tag first) satisfy the expression? *)
