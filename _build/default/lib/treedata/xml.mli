(** A small XML-like document model and parser for hierarchical legacy
    records — the paper's conclusion names tree-based structures as PRIMA's
    natural evolution.

    Supported syntax: elements with attributes, text content, self-closing
    tags, the five predefined entities, and comments.  No namespaces,
    CDATA, or processing instructions. *)

type node = {
  tag : string;
  attributes : (string * string) list;
  children : node list;
  text : string;  (** concatenated, trimmed character data of this node *)
}

exception Parse_error of string

val element : ?attributes:(string * string) list -> ?text:string -> string -> node list -> node
val attribute : node -> string -> string option

val parse : string -> node
(** Parses one document (a single root element, optionally preceded by an
    XML declaration and comments).
    @raise Parse_error on malformed input. *)

val escape : string -> string
val to_string : ?indent:int -> node -> string
val pp : Format.formatter -> node -> unit

val iter : (node -> unit) -> node -> unit
val fold : ('acc -> node -> 'acc) -> 'acc -> node -> 'acc
val count : node -> int
val equal : node -> node -> bool

val filter_children : keep:(string list -> node -> bool) -> node -> node
(** Structure-preserving filter: a child subtree survives only when [keep]
    holds for it.  The predicate receives each candidate's tag path from
    the root (inclusive) and the node itself; the root always survives. *)
