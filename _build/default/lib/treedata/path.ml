(* Path expressions over tree records: the XPath subset PRIMA needs to map
   subtrees to privacy vocabulary categories.

     /record/medications/prescription     absolute child steps
     /record/*/date                        single-level wildcard
     //psychiatry                          descendant-or-self search
     /record//note                         mixed

   A path matches *nodes*; [select] returns every matching node, [matches]
   tests a concrete tag path (root tag first). *)

type step =
  | Child of string
  | Any_child
  | Descendant of string

type t = step list

exception Invalid_path of string

let parse (input : string) : t =
  if input = "" || input.[0] <> '/' then
    raise (Invalid_path (input ^ ": a path must start with '/'"));
  (* Tokenise on '/' keeping '//' markers: split and interpret empty
     segments after the first as descendant markers. *)
  let segments = String.split_on_char '/' input in
  let rec go acc ~descendant = function
    | [] -> List.rev acc
    | "" :: rest ->
      if rest = [] then List.rev acc (* trailing slash *)
      else go acc ~descendant:true rest
    | name :: rest ->
      let step =
        if descendant then begin
          if name = "*" then raise (Invalid_path (input ^ ": '//*' is not supported"));
          Descendant name
        end
        else if name = "*" then Any_child
        else Child name
      in
      go (step :: acc) ~descendant:false rest
  in
  match segments with
  | "" :: rest ->
    let path = go [] ~descendant:false rest in
    if path = [] then raise (Invalid_path (input ^ ": empty path")) else path
  | _ -> raise (Invalid_path input)

let to_string (t : t) =
  String.concat ""
    (List.map
       (function
         | Child name -> "/" ^ name
         | Any_child -> "/*"
         | Descendant name -> "//" ^ name)
       t)

(* [select path root] — all nodes of [root]'s tree reached by [path].  The
   first step is matched against the root element itself. *)
let select (path : t) (root : Xml.node) : Xml.node list =
  let rec descendants_named name node =
    let self = if node.Xml.tag = name then [ node ] else [] in
    self @ List.concat_map (descendants_named name) node.Xml.children
  in
  let step_from nodes = function
    | Child name ->
      List.concat_map
        (fun n -> List.filter (fun c -> c.Xml.tag = name) n.Xml.children)
        nodes
    | Any_child -> List.concat_map (fun n -> n.Xml.children) nodes
    | Descendant name ->
      List.concat_map (fun n -> List.concat_map (descendants_named name) n.Xml.children) nodes
  in
  match path with
  | [] -> []
  | first :: rest ->
    let start =
      match first with
      | Child name -> if root.Xml.tag = name then [ root ] else []
      | Any_child -> [ root ]
      | Descendant name -> descendants_named name root
    in
    List.fold_left step_from start rest

(* [matches path tags] — does the concrete tag path [tags] (root first)
   satisfy [path]?  Used to classify a node by its location without
   materialising node sets. *)
let matches (path : t) (tags : string list) : bool =
  let rec go steps tags =
    match steps, tags with
    | [], [] -> true
    | [], _ :: _ -> false
    | _ :: _, [] -> false
    | Child name :: steps', tag :: tags' -> tag = name && go steps' tags'
    | Any_child :: steps', _ :: tags' -> go steps' tags'
    | Descendant name :: steps', _ ->
      (* skip zero or more tags, then require [name] *)
      let rec search = function
        | [] -> false
        | tag :: rest -> (tag = name && go steps' rest) || search rest
      in
      search tags
  in
  go path tags
