(* A small XML-like document model and parser for hierarchical legacy
   records — the paper's conclusion names tree-based structures as PRIMA's
   natural evolution, since "legacy systems employ hierarchical, XML-like
   structures".

   Supported syntax: elements with attributes, text content, self-closing
   tags, &amp;-style entities and comments.  No namespaces, CDATA or
   processing instructions — clinical exports in the wild that PRIMA would
   face are regular enough for this subset. *)

type node = {
  tag : string;
  attributes : (string * string) list;
  children : node list;
  text : string; (* concatenated character data directly under this node *)
}

exception Parse_error of string

let element ?(attributes = []) ?(text = "") tag children =
  { tag; attributes; children; text }

let attribute node name = List.assoc_opt name node.attributes

(* --- parsing --- *)

type cursor = {
  input : string;
  mutable pos : int;
}

let fail_at cursor fmt =
  Fmt.kstr (fun msg -> raise (Parse_error (Printf.sprintf "at %d: %s" cursor.pos msg))) fmt

let peek_char c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_whitespace c =
  while
    c.pos < String.length c.input
    && (match c.input.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance c
  done

let looking_at c prefix =
  let n = String.length prefix in
  c.pos + n <= String.length c.input && String.sub c.input c.pos n = prefix

let expect_string c prefix =
  if looking_at c prefix then c.pos <- c.pos + String.length prefix
  else fail_at c "expected %S" prefix

let is_name_char ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || (ch >= '0' && ch <= '9')
  || ch = '-' || ch = '_' || ch = '.'

let read_name c =
  let start = c.pos in
  while c.pos < String.length c.input && is_name_char c.input.[c.pos] do
    advance c
  done;
  if c.pos = start then fail_at c "expected a name";
  String.sub c.input start (c.pos - start)

let decode_entities s =
  let buffer = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else if s.[i] = '&' then begin
      let rest = String.sub s i (min 6 (n - i)) in
      let emit entity char =
        Buffer.add_char buffer char;
        go (i + String.length entity)
      in
      if String.length rest >= 5 && String.sub rest 0 5 = "&amp;" then emit "&amp;" '&'
      else if String.length rest >= 4 && String.sub rest 0 4 = "&lt;" then emit "&lt;" '<'
      else if String.length rest >= 4 && String.sub rest 0 4 = "&gt;" then emit "&gt;" '>'
      else if String.length rest >= 6 && String.sub rest 0 6 = "&quot;" then emit "&quot;" '"'
      else if String.length rest >= 6 && String.sub rest 0 6 = "&apos;" then emit "&apos;" '\''
      else begin
        Buffer.add_char buffer '&';
        go (i + 1)
      end
    end
    else begin
      Buffer.add_char buffer s.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buffer

let read_attribute c =
  let name = read_name c in
  skip_whitespace c;
  expect_string c "=";
  skip_whitespace c;
  let quote =
    match peek_char c with
    | Some ('"' as q) | Some ('\'' as q) -> q
    | _ -> fail_at c "expected a quoted attribute value"
  in
  advance c;
  let start = c.pos in
  while c.pos < String.length c.input && c.input.[c.pos] <> quote do
    advance c
  done;
  if c.pos >= String.length c.input then fail_at c "unterminated attribute value";
  let value = String.sub c.input start (c.pos - start) in
  advance c;
  (name, decode_entities value)

let rec skip_misc c =
  skip_whitespace c;
  if looking_at c "<!--" then begin
    match
      let rec find i =
        if i + 3 > String.length c.input then None
        else if String.sub c.input i 3 = "-->" then Some i
        else find (i + 1)
      in
      find (c.pos + 4)
    with
    | Some i ->
      c.pos <- i + 3;
      skip_misc c
    | None -> fail_at c "unterminated comment"
  end
  else if looking_at c "<?" then begin
    match String.index_from_opt c.input c.pos '>' with
    | Some i ->
      c.pos <- i + 1;
      skip_misc c
    | None -> fail_at c "unterminated declaration"
  end

let rec parse_element c =
  expect_string c "<";
  let tag = read_name c in
  let rec attributes acc =
    skip_whitespace c;
    match peek_char c with
    | Some '>' | Some '/' -> List.rev acc
    | Some _ -> attributes (read_attribute c :: acc)
    | None -> fail_at c "unterminated tag %s" tag
  in
  let attrs = attributes [] in
  skip_whitespace c;
  if looking_at c "/>" then begin
    expect_string c "/>";
    { tag; attributes = attrs; children = []; text = "" }
  end
  else begin
    expect_string c ">";
    let buffer = Buffer.create 16 in
    let rec content children =
      if c.pos >= String.length c.input then fail_at c "unterminated element %s" tag
      else if looking_at c "</" then begin
        expect_string c "</";
        let closing = read_name c in
        if closing <> tag then fail_at c "mismatched close: <%s> vs </%s>" tag closing;
        skip_whitespace c;
        expect_string c ">";
        List.rev children
      end
      else if looking_at c "<!--" then begin
        skip_misc c;
        content children
      end
      else if looking_at c "<" then content (parse_element c :: children)
      else begin
        Buffer.add_char buffer c.input.[c.pos];
        advance c;
        content children
      end
    in
    let children = content [] in
    { tag;
      attributes = attrs;
      children;
      text = decode_entities (String.trim (Buffer.contents buffer));
    }
  end

(* [parse s] parses one document (a single root element, optionally
   preceded by an XML declaration and comments).
   @raise Parse_error on malformed input. *)
let parse input =
  let c = { input; pos = 0 } in
  skip_misc c;
  if peek_char c <> Some '<' then fail_at c "expected an element";
  let root = parse_element c in
  skip_misc c;
  if c.pos < String.length c.input then fail_at c "trailing content after root element";
  root

(* --- printing --- *)

let escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun ch ->
      match ch with
      | '&' -> Buffer.add_string buffer "&amp;"
      | '<' -> Buffer.add_string buffer "&lt;"
      | '>' -> Buffer.add_string buffer "&gt;"
      | '"' -> Buffer.add_string buffer "&quot;"
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let rec to_string ?(indent = 0) node =
  let pad = String.make (2 * indent) ' ' in
  let attrs =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k (escape v)) node.attributes)
  in
  if node.children = [] && node.text = "" then Printf.sprintf "%s<%s%s/>" pad node.tag attrs
  else if node.children = [] then
    Printf.sprintf "%s<%s%s>%s</%s>" pad node.tag attrs (escape node.text) node.tag
  else begin
    let inner =
      String.concat "\n" (List.map (to_string ~indent:(indent + 1)) node.children)
    in
    let text_line =
      if node.text = "" then ""
      else Printf.sprintf "%s%s\n" (String.make (2 * (indent + 1)) ' ') (escape node.text)
    in
    Printf.sprintf "%s<%s%s>\n%s%s\n%s</%s>" pad node.tag attrs text_line inner pad node.tag
  end

let pp ppf node = Fmt.string ppf (to_string node)

(* --- traversal helpers --- *)

let rec iter f node =
  f node;
  List.iter (iter f) node.children

let rec fold f acc node = List.fold_left (fold f) (f acc node) node.children

let count node = fold (fun acc _ -> acc + 1) 0 node

let equal (a : node) (b : node) = a = b

(* Structure-preserving filter: keep a child subtree only when [keep] holds
   for it; the predicate sees each node with its path from the root. *)
let filter_children ~keep root =
  let rec go path node =
    let path = path @ [ node.tag ] in
    let children =
      List.filter_map
        (fun child ->
          if keep (path @ [ child.tag ]) child then Some (go path child) else None)
        node.children
    in
    { node with children }
  in
  go [] root
