(* The synthetic hospital: staffing, the documented policy (what the privacy
   officer wrote down), and the informal practices (what care delivery
   actually requires) — the substitute for the real audit-trail study the
   paper builds on ([2]). *)

type informal_practice = {
  data : string;
  purpose : string;
  authorized : string;
  weight : int; (* relative frequency among informal accesses *)
}

type config = {
  seed : int;
  vocab : Vocabulary.Vocab.t;
  staff_per_role : (string * int) list; (* leaf role -> head count *)
  total_accesses : int;
  epoch_size : int; (* accesses per refinement epoch *)
  documented : (string * string * string) list; (* (data, purpose, authorized) *)
  informal : informal_practice list;
  informal_rate : float; (* fraction of accesses that are informal practice *)
  violation_rate : float; (* fraction that are rogue accesses *)
  btg_on_covered : float; (* covered accesses still using BTG out of habit *)
  rogue_users : int; (* distinct users responsible for violations *)
}

let practice ~data ~purpose ~authorized ~weight = { data; purpose; authorized; weight }

let default_config ?(seed = 42) () =
  let vocab = Vocabulary.Samples.hospital () in
  { seed;
    vocab;
    staff_per_role =
      [ ("nurse", 14); ("head-nurse", 2); ("nurse-assistant", 6); ("doctor", 8);
        ("psychiatrist", 2); ("surgeon", 3); ("radiologist", 2);
        ("emergency-physician", 3); ("pharmacist", 2); ("lab-technician", 3);
        ("clerk", 4); ("receptionist", 3); ("billing-specialist", 3);
      ];
    total_accesses = 4000;
    epoch_size = 500;
    documented =
      [ ("routine", "care-delivery", "nursing");
        ("routine", "care-delivery", "physician");
        ("sensitive", "diagnosis", "doctor");
        ("psychiatry", "treatment", "psychiatrist");
        ("imaging", "diagnosis", "radiologist");
        ("demographic", "payment", "billing-specialist");
        ("demographic", "care-coordination", "receptionist");
        ("prescription", "treatment", "pharmacist");
        ("lab-results", "diagnosis", "lab-technician");
      ];
    informal =
      [ practice ~data:"referral" ~purpose:"registration" ~authorized:"nurse" ~weight:6;
        practice ~data:"prescription" ~purpose:"billing" ~authorized:"clerk" ~weight:4;
        practice ~data:"x-ray" ~purpose:"emergency-care" ~authorized:"emergency-physician"
          ~weight:4;
        practice ~data:"vitals" ~purpose:"transfer" ~authorized:"nurse-assistant" ~weight:3;
        practice ~data:"lab-results" ~purpose:"scheduling" ~authorized:"clerk" ~weight:2;
        practice ~data:"insurance" ~purpose:"claims-processing" ~authorized:"billing-specialist"
          ~weight:3;
        practice ~data:"psychiatry" ~purpose:"emergency-care" ~authorized:"emergency-physician"
          ~weight:3;
      ];
    informal_rate = 0.22;
    violation_rate = 0.02;
    btg_on_covered = 0.05;
    rogue_users = 2;
  }

(* The documented policy as the initial P_PS. *)
let policy_store config : Prima_core.Policy.t =
  Prima_core.Policy.of_assoc_list ~source:Prima_core.Policy.Policy_store
    (List.map
       (fun (data, purpose, authorized) ->
         [ (Vocabulary.Audit_attrs.data, data);
           (Vocabulary.Audit_attrs.purpose, purpose);
           (Vocabulary.Audit_attrs.authorized, authorized);
         ])
       config.documented)

(* Every staff member, as (user name, leaf role). *)
let staff config =
  List.concat_map
    (fun (role, count) -> List.init count (fun i -> (Printf.sprintf "%s-%02d" role (i + 1), role)))
    config.staff_per_role

let users_of_role config role =
  List.filter_map (fun (user, r) -> if String.equal r role then Some user else None)
    (staff config)

(* Does [rule] (over the pattern attributes) describe one of the informal
   practices?  This is the ground-truth oracle experiments hand to the
   refinement acceptance step. *)
let is_informal_pattern config (rule : Prima_core.Rule.t) =
  let find attr = Prima_core.Rule.find_attr rule attr in
  match
    ( find Vocabulary.Audit_attrs.data,
      find Vocabulary.Audit_attrs.purpose,
      find Vocabulary.Audit_attrs.authorized )
  with
  | Some data, Some purpose, Some authorized ->
    List.exists
      (fun p ->
        String.equal p.data data && String.equal p.purpose purpose
        && String.equal p.authorized authorized)
      config.informal
  | _ -> false
