(* The paper's running example, as executable fixtures:

   - the Figure 1 vocabulary (via Vocabulary.Samples.figure1);
   - the Figure 3(a) policy store P_PS: three composite rules whose ground
     expansions include 1a (prescription, treatment, nurse),
     1b (referral, treatment, nurse) and 3a (address, billing, clerk);
   - the Figure 3(b) audit log: six entries of which 1, 2 and 5 are covered
     and 3, 4 and 6 are the annotated exception scenarios — coverage 3/6;
   - the Table 1 audit trail: ten entries, coverage 3/10, whose exception
     subset yields the Referral:Registration:Nurse pattern at f = 5. *)

let vocab = Vocabulary.Samples.figure1

let data = Vocabulary.Audit_attrs.data
let purpose = Vocabulary.Audit_attrs.purpose
let authorized = Vocabulary.Audit_attrs.authorized

(* Figure 3(a): the abstract-level composite policy P_PS. *)
let policy_store () : Prima_core.Policy.t =
  Prima_core.Policy.of_assoc_list ~source:Prima_core.Policy.Policy_store
    [ (* Rule 1: nurses use routine clinical data for treatment. *)
      [ (data, "routine"); (purpose, "treatment"); (authorized, "nurse") ];
      (* Rule 2: psychiatry data is reserved to the treating psychiatrist. *)
      [ (data, "psychiatry"); (purpose, "treatment"); (authorized, "psychiatrist") ];
      (* Rule 3: clerks use demographic data for billing. *)
      [ (data, "demographic"); (purpose, "billing"); (authorized, "clerk") ];
    ]

let allow = Hdb.Audit_schema.Allow
let regular = Hdb.Audit_schema.Regular
let exception_based = Hdb.Audit_schema.Exception_based

let entry = Hdb.Audit_schema.entry

(* Figure 3(b): the six-rule audit-log policy. *)
let figure3_entries () : Hdb.Audit_schema.entry list =
  [ entry ~time:1 ~op:allow ~user:"john" ~data:"prescription" ~purpose:"treatment"
      ~authorized:"nurse" ~status:regular;
    entry ~time:2 ~op:allow ~user:"tim" ~data:"referral" ~purpose:"treatment"
      ~authorized:"nurse" ~status:regular;
    entry ~time:3 ~op:allow ~user:"mark" ~data:"referral" ~purpose:"registration"
      ~authorized:"nurse" ~status:exception_based;
    entry ~time:4 ~op:allow ~user:"sarah" ~data:"psychiatry" ~purpose:"treatment"
      ~authorized:"nurse" ~status:exception_based;
    entry ~time:5 ~op:allow ~user:"bill" ~data:"address" ~purpose:"billing"
      ~authorized:"clerk" ~status:regular;
    entry ~time:6 ~op:allow ~user:"jason" ~data:"prescription" ~purpose:"billing"
      ~authorized:"clerk" ~status:exception_based;
  ]

(* Table 1: the audit trail after the training period. *)
let table1_entries () : Hdb.Audit_schema.entry list =
  [ entry ~time:1 ~op:allow ~user:"john" ~data:"prescription" ~purpose:"treatment"
      ~authorized:"nurse" ~status:regular;
    entry ~time:2 ~op:allow ~user:"tim" ~data:"referral" ~purpose:"treatment"
      ~authorized:"nurse" ~status:regular;
    entry ~time:3 ~op:allow ~user:"mark" ~data:"referral" ~purpose:"registration"
      ~authorized:"nurse" ~status:exception_based;
    entry ~time:4 ~op:allow ~user:"sarah" ~data:"psychiatry" ~purpose:"treatment"
      ~authorized:"doctor" ~status:exception_based;
    entry ~time:5 ~op:allow ~user:"bill" ~data:"address" ~purpose:"billing"
      ~authorized:"clerk" ~status:regular;
    entry ~time:6 ~op:allow ~user:"jason" ~data:"prescription" ~purpose:"billing"
      ~authorized:"clerk" ~status:exception_based;
    entry ~time:7 ~op:allow ~user:"mark" ~data:"referral" ~purpose:"registration"
      ~authorized:"nurse" ~status:exception_based;
    entry ~time:8 ~op:allow ~user:"tim" ~data:"referral" ~purpose:"registration"
      ~authorized:"nurse" ~status:exception_based;
    entry ~time:9 ~op:allow ~user:"bob" ~data:"referral" ~purpose:"registration"
      ~authorized:"nurse" ~status:exception_based;
    entry ~time:10 ~op:allow ~user:"mark" ~data:"referral" ~purpose:"registration"
      ~authorized:"nurse" ~status:exception_based;
  ]

let figure3_audit_policy () = Audit_mgmt.To_policy.policy_of_entries (figure3_entries ())

let table1_audit_policy () = Audit_mgmt.To_policy.policy_of_entries (table1_entries ())

(* The pattern Section 5's refinement run discovers. *)
let expected_pattern () : Prima_core.Rule.t =
  Prima_core.Rule.of_assoc
    [ (data, "referral"); (purpose, "registration"); (authorized, "nurse") ]
