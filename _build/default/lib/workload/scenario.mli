(** The paper's running example, as executable fixtures: the Figure 1
    vocabulary, the Figure 3(a) policy store, the Figure 3(b) audit log
    (coverage 3/6) and the Table 1 trail (coverage 3/10, refinement finds
    Referral:Registration:Nurse at f = 5). *)

val vocab : unit -> Vocabulary.Vocab.t

val policy_store : unit -> Prima_core.Policy.t
(** Figure 3(a): three composite rules — (routine, treatment, nurse),
    (psychiatry, treatment, psychiatrist), (demographic, billing, clerk). *)

val figure3_entries : unit -> Hdb.Audit_schema.entry list
(** Six entries; 1, 2, 5 covered; 3, 4, 6 are the exception scenarios. *)

val table1_entries : unit -> Hdb.Audit_schema.entry list
(** The ten-entry trail of Table 1, verbatim. *)

val figure3_audit_policy : unit -> Prima_core.Policy.t
val table1_audit_policy : unit -> Prima_core.Policy.t

val expected_pattern : unit -> Prima_core.Rule.t
(** (referral, registration, nurse) — what Section 5's run discovers. *)
