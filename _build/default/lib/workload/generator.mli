(** Synthetic audit-trail generation with ground truth.

    Each access is labelled [Covered] (permitted by the documented policy;
    a configurable fraction still goes through Break-The-Glass out of
    habit), [Informal] (undocumented but legitimate practice — what
    refinement should surface; always exception-based), or [Violation]
    (snooping: a rogue user repeatedly prying into the same target; always
    exception-based — what pruning and human review should reject).

    Ground truth lets experiments measure refinement precision/recall,
    which the paper could not do on the real trails it discusses. *)

type label =
  | Covered
  | Informal of Hospital.informal_practice
  | Violation

type labelled = {
  entry : Hdb.Audit_schema.entry;
  label : label;
}

val generate : Hospital.config -> labelled list
(** The full labelled trail, time-ordered, deterministic in
    [config.seed]. *)

val entries : labelled list -> Hdb.Audit_schema.entry list

val epochs : Hospital.config -> labelled list -> labelled list list
(** Consecutive batches of [config.epoch_size] accesses (last may be
    short). *)

val oracle : Hospital.config -> Prima_core.Rule.t -> bool
(** Ground-truth acceptance: adopt exactly the informal-practice
    patterns. *)

val practices_covered : Hospital.config -> Prima_core.Policy.t -> Hospital.informal_practice list
(** The informal practices whose pattern the policy now covers — a
    recall-style metric. *)
