(* Synthetic audit-trail generation with ground truth.

   Each generated access is labelled:
   - [Covered]: permitted by the documented policy (grounded from a
     documented triple).  Mostly regular accesses; a configurable fraction
     still goes through Break-The-Glass out of habit — the paper notes
     controls are bypassed "even for some [accesses] that are" covered.
   - [Informal]: one of the hospital's informal practices — undocumented
     but legitimate clinical workflow, always exception-based.  These are
     what refinement should surface.
   - [Violation]: rogue accesses by a small set of users, exception-based.
     These are what the pruning/human step should reject.

   Ground truth lets experiments measure refinement precision/recall, which
   the paper could not do on the real trails it discusses. *)

type label =
  | Covered
  | Informal of Hospital.informal_practice
  | Violation

type labelled = {
  entry : Hdb.Audit_schema.entry;
  label : label;
}

(* Ground a possibly-composite vocabulary value by picking a random leaf
   beneath it. *)
let ground_value rng vocab ~attr value =
  match Vocabulary.Vocab.ground_set vocab ~attr ~value with
  | [] -> value
  | leaves -> Prng.pick rng leaves

let leaf_roles config =
  List.map fst config.Hospital.staff_per_role

let random_user rng config role =
  match Hospital.users_of_role config role with
  | [] -> role ^ "-00"
  | users -> Prng.pick rng users

let generate_covered rng (config : Hospital.config) time =
  let data, purpose, authorized = Prng.pick rng config.documented in
  let vocab = config.vocab in
  let data = ground_value rng vocab ~attr:Vocabulary.Audit_attrs.data data in
  let purpose = ground_value rng vocab ~attr:Vocabulary.Audit_attrs.purpose purpose in
  let role = ground_value rng vocab ~attr:Vocabulary.Audit_attrs.authorized authorized in
  (* Composite roles ground to any leaf; keep only staffed ones. *)
  let role = if Hospital.users_of_role config role = [] then
      Prng.pick rng (leaf_roles config)
    else role
  in
  let status =
    if Prng.bool rng ~probability:config.btg_on_covered then
      Hdb.Audit_schema.Exception_based
    else Hdb.Audit_schema.Regular
  in
  { entry =
      Hdb.Audit_schema.entry ~time ~op:Hdb.Audit_schema.Allow
        ~user:(random_user rng config role) ~data ~purpose ~authorized:role ~status;
    label = Covered;
  }

let generate_informal rng (config : Hospital.config) time =
  let weighted = List.map (fun p -> (p, p.Hospital.weight)) config.informal in
  let p = Prng.pick_weighted rng weighted in
  { entry =
      Hdb.Audit_schema.entry ~time ~op:Hdb.Audit_schema.Allow
        ~user:(random_user rng config p.Hospital.authorized) ~data:p.Hospital.data
        ~purpose:p.Hospital.purpose ~authorized:p.Hospital.authorized
        ~status:Hdb.Audit_schema.Exception_based;
    label = Informal p;
  }

(* Violations model snooping: each rogue user repeatedly pries into the same
   target — a fixed (data, purpose, role) derived from the rogue's identity.
   Repetition is what makes contamination dangerous for refinement: a rogue's
   habit can cross the frequency threshold f, and only the distinct-user
   condition (or the human review step) then keeps it out of the policy. *)
let generate_violation rng (config : Hospital.config) time =
  let vocab = config.vocab in
  let rogue = Prng.int rng (max 1 config.rogue_users) in
  let nth_of xs k = List.nth xs (k mod List.length xs) in
  let data_leaves =
    Vocabulary.Taxonomy.ground_values
      (Vocabulary.Vocab.taxonomy vocab Vocabulary.Audit_attrs.data)
  in
  let purpose_leaves =
    Vocabulary.Taxonomy.ground_values
      (Vocabulary.Vocab.taxonomy vocab Vocabulary.Audit_attrs.purpose)
  in
  let data = nth_of data_leaves ((rogue * 7) + 3) in
  let purpose = nth_of purpose_leaves ((rogue * 5) + 2) in
  let role = nth_of (leaf_roles config) ((rogue * 3) + 1) in
  { entry =
      Hdb.Audit_schema.entry ~time ~op:Hdb.Audit_schema.Allow
        ~user:(Printf.sprintf "rogue-%02d" rogue) ~data ~purpose ~authorized:role
        ~status:Hdb.Audit_schema.Exception_based;
    label = Violation;
  }

(* [generate config] produces the full labelled trail, time-ordered. *)
let generate (config : Hospital.config) : labelled list =
  let rng = Prng.create ~seed:config.seed in
  List.init config.total_accesses (fun i ->
      let time = i + 1 in
      let draw = Prng.float rng in
      if draw < config.violation_rate then generate_violation rng config time
      else if draw < config.violation_rate +. config.informal_rate then
        generate_informal rng config time
      else generate_covered rng config time)

let entries labelled = List.map (fun l -> l.entry) labelled

(* Split into consecutive epochs of [config.epoch_size] accesses. *)
let epochs (config : Hospital.config) labelled =
  let rec go acc current n = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | x :: rest ->
      if n = config.Hospital.epoch_size then go (List.rev current :: acc) [ x ] 1 rest
      else go acc (x :: current) (n + 1) rest
  in
  go [] [] 0 labelled

(* Ground-truth acceptance oracle for refinement: adopt exactly the
   patterns describing informal practice. *)
let oracle (config : Hospital.config) : Prima_core.Rule.t -> bool =
  fun rule -> Hospital.is_informal_pattern config rule

(* How many of the informal practices does the policy [p_ps] now cover?
   Used for recall-style metrics. *)
let practices_covered (config : Hospital.config) (p_ps : Prima_core.Policy.t) =
  let vocab = config.vocab in
  let attrs = Vocabulary.Audit_attrs.pattern in
  let range = Prima_core.Range.of_policy vocab (Prima_core.Policy.project p_ps ~attrs) in
  List.filter
    (fun (p : Hospital.informal_practice) ->
      let rule =
        Prima_core.Rule.of_assoc
          [ (Vocabulary.Audit_attrs.data, p.Hospital.data);
            (Vocabulary.Audit_attrs.purpose, p.Hospital.purpose);
            (Vocabulary.Audit_attrs.authorized, p.Hospital.authorized);
          ]
      in
      Prima_core.Range.covers vocab range rule)
    config.informal
