lib/workload/prng.mli:
