lib/workload/scenario.mli: Hdb Prima_core Vocabulary
