lib/workload/generator.ml: Hdb Hospital List Prima_core Printf Prng Vocabulary
