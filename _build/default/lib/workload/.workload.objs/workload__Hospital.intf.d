lib/workload/hospital.mli: Prima_core Vocabulary
