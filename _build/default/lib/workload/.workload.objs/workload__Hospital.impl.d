lib/workload/hospital.ml: List Prima_core Printf String Vocabulary
