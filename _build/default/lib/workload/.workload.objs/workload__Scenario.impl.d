lib/workload/scenario.ml: Audit_mgmt Hdb Prima_core Vocabulary
