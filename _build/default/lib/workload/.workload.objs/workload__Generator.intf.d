lib/workload/generator.mli: Hdb Hospital Prima_core
