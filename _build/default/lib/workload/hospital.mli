(** The synthetic hospital: staffing, the documented policy (what the
    privacy officer wrote down) and the informal practices (what care
    delivery actually requires) — the substitute for the real audit-trail
    study the paper builds on ([2], the Norwegian hospital data). *)

type informal_practice = {
  data : string;
  purpose : string;
  authorized : string;
  weight : int;  (** relative frequency among informal accesses *)
}

type config = {
  seed : int;
  vocab : Vocabulary.Vocab.t;
  staff_per_role : (string * int) list;  (** leaf role -> head count *)
  total_accesses : int;
  epoch_size : int;  (** accesses per refinement epoch *)
  documented : (string * string * string) list;
      (** (data, purpose, authorized) triples, possibly composite *)
  informal : informal_practice list;
  informal_rate : float;  (** fraction of accesses that are informal practice *)
  violation_rate : float;  (** fraction that are rogue accesses *)
  btg_on_covered : float;  (** covered accesses still using BTG out of habit *)
  rogue_users : int;  (** distinct users responsible for violations *)
}

val practice :
  data:string -> purpose:string -> authorized:string -> weight:int -> informal_practice

val default_config : ?seed:int -> unit -> config
(** 55 staff over 13 leaf roles, 9 documented (mostly composite) rules,
    7 informal practices, 22 % informal rate, 2 % violations. *)

val policy_store : config -> Prima_core.Policy.t
(** The documented policy as the initial P_PS. *)

val staff : config -> (string * string) list
(** Every staff member as (user name, leaf role). *)

val users_of_role : config -> string -> string list

val is_informal_pattern : config -> Prima_core.Rule.t -> bool
(** Ground truth: does this pattern rule describe one of the informal
    practices?  The oracle experiments hand to the acceptance step. *)
