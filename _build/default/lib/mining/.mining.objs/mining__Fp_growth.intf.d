lib/mining/fp_growth.mli: Apriori Transactions
