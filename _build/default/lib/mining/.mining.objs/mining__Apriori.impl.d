lib/mining/apriori.ml: Array Itemset List Transactions
