lib/mining/transactions.ml: Array Itemset List
