lib/mining/transactions.mli: Itemset
