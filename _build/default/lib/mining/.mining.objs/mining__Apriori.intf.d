lib/mining/apriori.mli: Itemset Transactions
