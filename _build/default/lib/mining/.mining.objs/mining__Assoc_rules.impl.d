lib/mining/assoc_rules.ml: Apriori Float Fmt Int Itemset List Transactions
