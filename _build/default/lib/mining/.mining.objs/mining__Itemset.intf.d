lib/mining/itemset.mli: Format Hashtbl
