lib/mining/fp_growth.ml: Apriori Array Hashtbl Int Itemset List Transactions
