lib/mining/assoc_rules.mli: Apriori Format Itemset Transactions
