lib/mining/itemset.ml: Array Fmt Hashtbl Int List String
