(* Apriori (Agrawal & Srikant, VLDB 1994) — the algorithm the paper proposes
   for its future-work pattern extraction.  Classic levelwise search:
   L1 from item frequencies, then candidate generation by joining k-itemsets
   sharing a (k-1)-prefix, subset-based pruning, and a counting pass per
   level. *)

type frequent = {
  itemset : Itemset.t;
  support : int;
}

(* Join step: two sorted k-itemsets sharing their first k-1 items produce a
   (k+1)-candidate. *)
let join (a : Itemset.t) (b : Itemset.t) : Itemset.t option =
  let k = Array.length a in
  let rec prefix_equal i = i >= k - 1 || (a.(i) = b.(i) && prefix_equal (i + 1)) in
  if k = 0 || not (prefix_equal 0) then None
  else if a.(k - 1) >= b.(k - 1) then None
  else begin
    let candidate = Array.make (k + 1) 0 in
    Array.blit a 0 candidate 0 k;
    candidate.(k) <- b.(k - 1);
    Some candidate
  end

(* Prune step: every immediate subset of a candidate must be frequent. *)
let all_subsets_frequent frequent_set candidate =
  List.for_all
    (fun sub -> Itemset.Tbl.mem frequent_set sub)
    (Itemset.immediate_subsets candidate)

let generate_candidates (level : Itemset.t array) : Itemset.t list =
  let frequent_set = Itemset.Tbl.create (Array.length level) in
  Array.iter (fun s -> Itemset.Tbl.replace frequent_set s ()) level;
  let candidates = ref [] in
  let n = Array.length level in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match join level.(i) level.(j) with
      | Some candidate ->
        if all_subsets_frequent frequent_set candidate then
          candidates := candidate :: !candidates
      | None -> ()
    done
  done;
  List.rev !candidates

(* [mine tx ~min_support] returns all frequent itemsets with absolute support
   >= min_support, level by level.  ~max_size bounds the itemset size. *)
let mine ?(max_size = max_int) (tx : Transactions.t) ~min_support : frequent list =
  if min_support <= 0 then invalid_arg "Apriori.mine: min_support must be positive";
  let frequencies = Transactions.item_frequencies tx in
  let level1 =
    frequencies
    |> Array.to_list
    |> List.mapi (fun id support -> (id, support))
    |> List.filter (fun (_, support) -> support >= min_support)
    |> List.map (fun (id, support) -> { itemset = [| id |]; support })
  in
  let results = ref (List.rev level1) in
  let rec loop level k =
    if k > max_size || Array.length level < 2 then ()
    else begin
      let candidates = generate_candidates level in
      if candidates <> [] then begin
        let counts = Itemset.Tbl.create (List.length candidates) in
        List.iter (fun c -> Itemset.Tbl.replace counts c 0) candidates;
        Transactions.iter
          (fun row ->
            List.iter
              (fun c ->
                if Itemset.subset c row then
                  Itemset.Tbl.replace counts c (Itemset.Tbl.find counts c + 1))
              candidates)
          tx;
        let survivors =
          List.filter_map
            (fun c ->
              let support = Itemset.Tbl.find counts c in
              if support >= min_support then Some { itemset = c; support } else None)
            candidates
        in
        results := List.rev_append survivors !results;
        loop (Array.of_list (List.map (fun f -> f.itemset) survivors)) (k + 1)
      end
    end
  in
  loop (Array.of_list (List.map (fun f -> f.itemset) level1)) 2;
  List.rev !results

(* Only the maximal frequent itemsets (no frequent superset). *)
let maximal (frequents : frequent list) : frequent list =
  List.filter
    (fun f ->
      not
        (List.exists
           (fun g ->
             Itemset.size g.itemset > Itemset.size f.itemset
             && Itemset.subset f.itemset g.itemset)
           frequents))
    frequents

(* Frequent itemsets of exactly size k. *)
let of_size k frequents = List.filter (fun f -> Itemset.size f.itemset = k) frequents
