(** Association rules from frequent itemsets (support/confidence framework).

    PRIMA uses these to surface cross-attribute correlations the plain SQL
    analysis misses, e.g. "purpose=registration -> authorized=nurse". *)

type rule = {
  antecedent : Itemset.t;
  consequent : Itemset.t;
  support : int;  (** absolute support of antecedent ∪ consequent *)
  confidence : float;
  lift : float;
}

val proper_subsets : Itemset.t -> Itemset.t list
(** Non-empty proper subsets.
    @raise Invalid_argument on itemsets larger than 20. *)

val derive : Transactions.t -> Apriori.frequent list -> min_confidence:float -> rule list
(** All rules X -> Y with X ∪ Y frequent, X ∩ Y = ∅ and confidence >=
    [min_confidence]. *)

val sort_by_confidence : rule list -> rule list
(** Descending confidence, then support. *)

val pp : Itemset.interner -> Format.formatter -> rule -> unit
