(** Items and itemsets for frequent-pattern mining.

    An item is an (attribute, value) pair — e.g. (data, referral) —
    interned to a dense integer id, so itemsets are strictly increasing int
    arrays with cheap hashing. *)

type item = {
  attr : string;
  value : string;
}

type interner

val create_interner : unit -> interner

val intern : interner -> item -> int
(** Stable: the same item always gets the same id. *)

val item_of_id : interner -> int -> item
(** @raise Invalid_argument on unknown ids. *)

val universe_size : interner -> int

type t = int array
(** Invariant: strictly increasing ids. *)

val of_sorted_list : int list -> t
(** Trusts the caller's ordering. *)

val of_list : int list -> t
(** Sorts and deduplicates. *)

val to_list : t -> int list
val size : t -> int
val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val subset : t -> t -> bool
(** [subset a b]: is [a] ⊆ [b]?  Linear merge. *)

val mem : t -> int -> bool
val union : t -> t -> t

val diff : t -> t -> t
(** Items of the first not in the second. *)

val immediate_subsets : t -> t list
(** All subsets of size n-1 (drop each element in turn). *)

val pp : interner -> Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
