(* Association rules from frequent itemsets (support/confidence framework of
   Agrawal & Srikant).  PRIMA uses these to surface cross-attribute
   correlations the plain SQL analysis misses, e.g. "purpose=registration ->
   authorized=nurse" with high confidence. *)

type rule = {
  antecedent : Itemset.t;
  consequent : Itemset.t;
  support : int; (* absolute support of antecedent ∪ consequent *)
  confidence : float;
  lift : float;
}

(* Proper non-empty subsets of [s], as itemsets. *)
let proper_subsets (s : Itemset.t) : Itemset.t list =
  let items = Itemset.to_list s in
  let n = List.length items in
  if n > 20 then invalid_arg "Assoc_rules: itemset too large";
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
      let subs = go rest in
      subs @ List.map (fun sub -> x :: sub) subs
  in
  go items
  |> List.filter (fun sub -> sub <> [] && List.length sub < n)
  |> List.map Itemset.of_list

(* [derive tx frequents ~min_confidence] enumerates all rules X -> Y with
   X ∪ Y frequent, X ∩ Y = ∅ and confidence >= min_confidence. *)
let derive (tx : Transactions.t) (frequents : Apriori.frequent list) ~min_confidence :
    rule list =
  let support_of =
    let table = Itemset.Tbl.create (List.length frequents) in
    List.iter
      (fun (f : Apriori.frequent) -> Itemset.Tbl.replace table f.itemset f.support)
      frequents;
    fun itemset ->
      match Itemset.Tbl.find_opt table itemset with
      | Some s -> s
      | None -> Transactions.support tx itemset
  in
  let total = float_of_int (Transactions.count tx) in
  List.concat_map
    (fun (f : Apriori.frequent) ->
      if Itemset.size f.itemset < 2 then []
      else
        List.filter_map
          (fun antecedent ->
            let consequent = Itemset.diff f.itemset antecedent in
            let support_a = support_of antecedent in
            if support_a = 0 then None
            else begin
              let confidence = float_of_int f.support /. float_of_int support_a in
              if confidence < min_confidence then None
              else begin
                let support_c = support_of consequent in
                let lift =
                  if support_c = 0 || total = 0. then 0.
                  else confidence /. (float_of_int support_c /. total)
                in
                Some { antecedent; consequent; support = f.support; confidence; lift }
              end
            end)
          (proper_subsets f.itemset))
    frequents

let sort_by_confidence rules =
  List.sort
    (fun a b ->
      let c = Float.compare b.confidence a.confidence in
      if c <> 0 then c else Int.compare b.support a.support)
    rules

let pp interner ppf rule =
  Fmt.pf ppf "%a -> %a  (support=%d, confidence=%.2f, lift=%.2f)"
    (Itemset.pp interner) rule.antecedent (Itemset.pp interner) rule.consequent rule.support
    rule.confidence rule.lift
