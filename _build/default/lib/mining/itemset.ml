(* Items and itemsets.

   An item is an (attribute, value) pair — e.g. (data, referral) — interned
   to a dense integer id so itemsets are sorted int arrays with cheap
   hashing, as Apriori's candidate generation requires. *)

type item = {
  attr : string;
  value : string;
}

type interner = {
  ids : (item, int) Hashtbl.t;
  mutable items : item array;
  mutable count : int;
}

let create_interner () = { ids = Hashtbl.create 256; items = [||]; count = 0 }

let intern t item =
  match Hashtbl.find_opt t.ids item with
  | Some id -> id
  | None ->
    let id = t.count in
    if id >= Array.length t.items then begin
      let capacity = max 16 (2 * Array.length t.items) in
      let items = Array.make capacity item in
      Array.blit t.items 0 items 0 t.count;
      t.items <- items
    end;
    t.items.(id) <- item;
    t.count <- t.count + 1;
    Hashtbl.add t.ids item id;
    id

let item_of_id t id =
  if id < 0 || id >= t.count then invalid_arg "Itemset.item_of_id";
  t.items.(id)

let universe_size t = t.count

(* An itemset is a strictly increasing array of item ids. *)
type t = int array

let of_sorted_list ids : t = Array.of_list ids

let of_list ids : t =
  let sorted = List.sort_uniq Int.compare ids in
  Array.of_list sorted

let to_list (s : t) = Array.to_list s

let size (s : t) = Array.length s

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec go i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let hash (s : t) = Array.fold_left (fun acc i -> (acc * 31) + i) 17 s

(* [subset a b]: is [a] a subset of [b]?  Both sorted; linear merge. *)
let subset (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la then true
    else if j >= lb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  go 0 0

let mem (s : t) id = Array.exists (fun x -> x = id) s

(* [union a b] of two sorted itemsets. *)
let union (a : t) (b : t) : t =
  let out = ref [] in
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i >= la && j >= lb then ()
    else if i >= la then begin out := b.(j) :: !out; go i (j + 1) end
    else if j >= lb then begin out := a.(i) :: !out; go (i + 1) j end
    else if a.(i) = b.(j) then begin out := a.(i) :: !out; go (i + 1) (j + 1) end
    else if a.(i) < b.(j) then begin out := a.(i) :: !out; go (i + 1) j end
    else begin out := b.(j) :: !out; go i (j + 1) end
  in
  go 0 0;
  Array.of_list (List.rev !out)

(* [diff a b]: items of [a] not in [b]. *)
let diff (a : t) (b : t) : t = Array.of_list (List.filter (fun x -> not (mem b x)) (Array.to_list a))

(* All subsets of size (n-1): drop each element in turn. *)
let immediate_subsets (s : t) : t list =
  let n = Array.length s in
  List.init n (fun drop -> Array.init (n - 1) (fun i -> if i < drop then s.(i) else s.(i + 1)))

let pp interner ppf (s : t) =
  let render id =
    let item = item_of_id interner id in
    item.attr ^ "=" ^ item.value
  in
  Fmt.pf ppf "{%s}" (String.concat ", " (List.map render (to_list s)))

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
