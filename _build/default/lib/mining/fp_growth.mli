(** FP-growth: frequent-itemset mining without candidate generation.

    The ablation baseline against {!Apriori} — both must produce identical
    frequent sets (experiment E7 and the property suite check this). *)

val mine : ?max_size:int -> Transactions.t -> min_support:int -> Apriori.frequent list
(** Same result set as {!Apriori.mine} (order may differ).
    @raise Invalid_argument when [min_support <= 0]. *)

val normalize : Apriori.frequent list -> Apriori.frequent list
(** Canonical order (by size, then itemset) for comparing miners. *)
