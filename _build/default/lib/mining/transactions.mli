(** A transaction database: each transaction is one audit entry rendered as
    a set of (attribute, value) items. *)

type t

val of_item_lists : Itemset.item list list -> t
(** Interns items and sorts each transaction once. *)

val interner : t -> Itemset.interner
val count : t -> int
val get : t -> int -> Itemset.t
val iter : (Itemset.t -> unit) -> t -> unit

val support : t -> Itemset.t -> int
(** Absolute support: transactions containing the itemset. *)

val relative_support : t -> Itemset.t -> float

val item_frequencies : t -> int array
(** Per-item absolute frequencies, indexed by item id. *)
