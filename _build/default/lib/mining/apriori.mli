(** Apriori (Agrawal & Srikant, VLDB 1994) — the frequent-itemset algorithm
    the paper proposes for its future-work pattern extraction.

    Classic levelwise search: L1 from item frequencies, candidate
    generation by joining k-itemsets sharing a (k-1)-prefix, subset-based
    pruning, and a counting pass per level. *)

type frequent = {
  itemset : Itemset.t;
  support : int;  (** absolute *)
}

val join : Itemset.t -> Itemset.t -> Itemset.t option
(** The join step: two sorted k-itemsets sharing their first k-1 items
    produce a (k+1)-candidate; exposed for testing. *)

val mine : ?max_size:int -> Transactions.t -> min_support:int -> frequent list
(** All frequent itemsets with absolute support >= [min_support], level by
    level; [max_size] bounds itemset size.
    @raise Invalid_argument when [min_support <= 0]. *)

val maximal : frequent list -> frequent list
(** Only the maximal frequent itemsets (no frequent superset). *)

val of_size : int -> frequent list -> frequent list
