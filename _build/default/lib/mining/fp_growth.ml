(* FP-growth: frequent itemset mining without candidate generation.
   Used as the ablation baseline against Apriori in experiment E7 — both must
   produce identical frequent sets. *)

type node = {
  item : int; (* -1 at the root *)
  mutable count : int;
  parent : node option;
  mutable children : (int * node) list;
}

type tree = {
  root : node;
  (* Header table: item id -> every node carrying that item. *)
  header : (int, node list ref) Hashtbl.t;
}

let make_root () = { item = -1; count = 0; parent = None; children = [] }

let new_tree () = { root = make_root (); header = Hashtbl.create 64 }

let child_for tree parent item =
  match List.assoc_opt item parent.children with
  | Some child -> child
  | None ->
    let child = { item; count = 0; parent = Some parent; children = [] } in
    parent.children <- (item, child) :: parent.children;
    (match Hashtbl.find_opt tree.header item with
    | Some nodes -> nodes := child :: !nodes
    | None -> Hashtbl.add tree.header item (ref [ child ]));
    child

(* Insert a transaction (already frequency-ordered) with multiplicity. *)
let insert tree items count =
  let node =
    List.fold_left
      (fun parent item ->
        let child = child_for tree parent item in
        child.count <- child.count + count;
        child)
      tree.root items
  in
  ignore node

(* Order items in a transaction by decreasing global frequency (ties broken
   by id) and drop infrequent ones: the canonical FP-tree insertion order. *)
let order_items frequencies ~min_support items =
  items
  |> List.filter (fun id -> frequencies.(id) >= min_support)
  |> List.sort (fun a b ->
         let c = Int.compare frequencies.(b) frequencies.(a) in
         if c <> 0 then c else Int.compare a b)

let build_tree (transactions : (int list * int) list) frequencies ~min_support =
  let tree = new_tree () in
  List.iter
    (fun (items, count) ->
      let ordered = order_items frequencies ~min_support items in
      if ordered <> [] then insert tree ordered count)
    transactions;
  tree

(* Conditional pattern base of an item: for each node carrying it, the path
   to the root with that node's count. *)
let conditional_base tree item =
  match Hashtbl.find_opt tree.header item with
  | None -> []
  | Some nodes ->
    List.filter_map
      (fun node ->
        let rec path acc n =
          match n.parent with
          | None -> acc
          | Some p -> if p.item = -1 then acc else path (p.item :: acc) p
        in
        let items = path [] node in
        if items = [] then None else Some (items, node.count))
      !nodes

let item_support tree item =
  match Hashtbl.find_opt tree.header item with
  | None -> 0
  | Some nodes -> List.fold_left (fun acc n -> acc + n.count) 0 !nodes

let tree_items tree = Hashtbl.fold (fun item _ acc -> item :: acc) tree.header []

let frequencies_of transactions universe =
  let freq = Array.make universe 0 in
  List.iter
    (fun (items, count) -> List.iter (fun id -> freq.(id) <- freq.(id) + count) items)
    transactions;
  freq

(* [mine tx ~min_support] produces the same result set as [Apriori.mine]
   (order may differ).  ~max_size bounds itemset size. *)
let mine ?(max_size = max_int) (tx : Transactions.t) ~min_support : Apriori.frequent list
    =
  if min_support <= 0 then invalid_arg "Fp_growth.mine: min_support must be positive";
  let universe = Itemset.universe_size (Transactions.interner tx) in
  let results = ref [] in
  let rec grow transactions suffix suffix_support =
    if List.length suffix > 0 then
      results :=
        { Apriori.itemset = Itemset.of_list suffix; support = suffix_support } :: !results;
    if List.length suffix >= max_size then ()
    else begin
      let frequencies = frequencies_of transactions universe in
      let tree = build_tree transactions frequencies ~min_support in
      let items =
        tree_items tree
        |> List.filter (fun item -> item_support tree item >= min_support)
        (* Mine least-frequent first, canonical FP-growth order. *)
        |> List.sort (fun a b ->
               let c = Int.compare (item_support tree a) (item_support tree b) in
               if c <> 0 then c else Int.compare b a)
      in
      List.iter
        (fun item ->
          let support = item_support tree item in
          grow (conditional_base tree item) (item :: suffix) support)
        items
    end
  in
  let base =
    List.init (Transactions.count tx) (fun i ->
        (Itemset.to_list (Transactions.get tx i), 1))
  in
  grow base [] 0;
  !results

(* Normalise a frequent-set list for comparison across miners. *)
let normalize (frequents : Apriori.frequent list) =
  List.sort
    (fun (a : Apriori.frequent) b ->
      let c = Int.compare (Itemset.size a.itemset) (Itemset.size b.itemset) in
      if c <> 0 then c else Itemset.compare a.itemset b.itemset)
    frequents
