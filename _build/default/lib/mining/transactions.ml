(* A transaction database: each transaction is one audit entry rendered as a
   set of (attribute, value) items.  Construction interns items and sorts
   each transaction once, so the miners work on dense ids. *)

type t = {
  interner : Itemset.interner;
  rows : Itemset.t array;
}

let of_item_lists (lists : Itemset.item list list) =
  let interner = Itemset.create_interner () in
  let rows =
    Array.of_list
      (List.map
         (fun items -> Itemset.of_list (List.map (Itemset.intern interner) items))
         lists)
  in
  { interner; rows }

let interner t = t.interner

let count t = Array.length t.rows

let get t i = t.rows.(i)

let iter f t = Array.iter f t.rows

(* Absolute support of an itemset: number of transactions containing it. *)
let support t itemset =
  Array.fold_left (fun acc row -> if Itemset.subset itemset row then acc + 1 else acc) 0 t.rows

let relative_support t itemset =
  if count t = 0 then 0. else float_of_int (support t itemset) /. float_of_int (count t)

(* Per-item absolute frequencies, indexed by item id. *)
let item_frequencies t =
  let freq = Array.make (Itemset.universe_size t.interner) 0 in
  iter (fun row -> Array.iter (fun id -> freq.(id) <- freq.(id) + 1) row) t;
  freq
