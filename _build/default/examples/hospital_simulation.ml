(* A synthetic hospital over several refinement epochs — the Figure 2 story:
   coverage climbing from the initial documented policy towards complete
   coverage as PRIMA adopts the informal practices, guided by a ground-truth
   oracle (the "privacy officer") that rejects rogue patterns.

     dune exec examples/hospital_simulation.exe *)

module Ref = Prima_core.Refinement
module C = Prima_core.Coverage

let () =
  let config =
    { (Workload.Hospital.default_config ()) with
      Workload.Hospital.total_accesses = 1600;
      epoch_size = 200;
    }
  in
  let vocab = config.Workload.Hospital.vocab in
  Fmt.pr "Synthetic hospital: %d staff, %d accesses (%d per epoch)@."
    (List.length (Workload.Hospital.staff config))
    config.Workload.Hospital.total_accesses config.Workload.Hospital.epoch_size;
  Fmt.pr "Informal practices planted: %d, violation rate: %.1f%%@.@."
    (List.length config.Workload.Hospital.informal)
    (100. *. config.Workload.Hospital.violation_rate);

  let trail = Workload.Generator.generate config in
  let batches =
    List.map
      (fun batch ->
        Audit_mgmt.To_policy.policy_of_entries (Workload.Generator.entries batch))
      (Workload.Generator.epochs config trail)
  in
  let oracle = Workload.Generator.oracle config in
  let ref_config =
    { Ref.default_config with Ref.acceptance = Ref.Oracle oracle }
  in
  let p_ps = Workload.Hospital.policy_store config in

  let attrs = Vocabulary.Audit_attrs.pattern in
  let series = ref [] in
  let store = ref p_ps in
  List.iteri
    (fun i batch ->
      let before = C.aligned ~bag:true vocab ~attrs ~p_x:!store ~p_y:batch in
      let report = Ref.run_epoch ~config:ref_config ~vocab ~p_ps:!store ~p_al:batch () in
      store := report.Ref.p_ps';
      let adopted =
        String.concat ", "
          (List.map
             (Prima_core.Rule.to_compact_string ~attrs)
             report.Ref.accepted)
      in
      Fmt.pr "epoch %d: coverage %5.1f%% -> %5.1f%%  adopted: %s@." (i + 1)
        (100. *. before.C.coverage)
        (100. *. report.Ref.coverage_after.C.coverage)
        (if adopted = "" then "(nothing)" else adopted);
      series := (Printf.sprintf "epoch %d" (i + 1), before.C.coverage) :: !series)
    batches;

  Fmt.pr "@.Coverage trajectory (entering each epoch, Figure 2 style):@.";
  Prima_core.Report.pp_series Fmt.stdout (List.rev !series);

  let covered = Workload.Generator.practices_covered config !store in
  Fmt.pr "@.Informal practices now documented: %d / %d@." (List.length covered)
    (List.length config.Workload.Hospital.informal);
  List.iter
    (fun (p : Workload.Hospital.informal_practice) ->
      Fmt.pr "  + %s:%s:%s@." p.Workload.Hospital.data p.Workload.Hospital.purpose
        p.Workload.Hospital.authorized)
    covered;
  Fmt.pr "@.Final policy store: %d rules (started with %d)@."
    (Prima_core.Policy.cardinality !store)
    (Prima_core.Policy.cardinality p_ps)
