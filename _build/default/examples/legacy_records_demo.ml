(* PRIMA over hierarchical legacy records — the paper's stated next step:
   "legacy systems employ hierarchical, XML-like structures.  Thus, the
   natural evolution for PRIMA is to adapt the core concepts and technology
   to the tree-based structures."

   A legacy department stores XML patient records; path-to-category mappings
   classify subtrees; enforcement prunes what the requester may not see, and
   Break-The-Glass retrievals feed the same audit pipeline, so refinement
   works unchanged across substrates.

     dune exec examples/legacy_records_demo.exe *)

open Treedata

let record_p1 = {|
<record id="p1">
  <demographics>
    <name>Ann Ames</name>
    <address>12 Elm St</address>
  </demographics>
  <medications>
    <prescription drug="statin" dose="20mg"/>
  </medications>
  <referrals>
    <referral to="cardiology"/>
  </referrals>
  <labs>
    <lab-results test="hba1c"/>
  </labs>
  <psychiatry>
    <note>anxiety follow-up</note>
  </psychiatry>
</record>
|}

let () =
  let vocab = Vocabulary.Samples.figure1 () in

  let store = Tree_store.create () in
  Tree_store.put_xml store ~patient:"p1" record_p1;
  Tree_store.map_path store ~path:"/record/demographics/name" ~category:"name";
  Tree_store.map_path store ~path:"/record/demographics/address" ~category:"address";
  Tree_store.map_path store ~path:"//prescription" ~category:"prescription";
  Tree_store.map_path store ~path:"//referral" ~category:"referral";
  Tree_store.map_path store ~path:"//lab-results" ~category:"lab-results";
  Tree_store.map_path store ~path:"/record/psychiatry" ~category:"psychiatry";

  let rules = Hdb.Privacy_rules.create ~vocab in
  Hdb.Privacy_rules.add rules ~data:"routine" ~purpose:"treatment" ~authorized:"nurse" ();
  Hdb.Privacy_rules.add rules ~data:"demographic" ~purpose:"treatment" ~authorized:"nurse" ();
  let consent = Hdb.Consent.create ~vocab () in
  let logger = Hdb.Audit_logger.create () in
  let enforcement = Tree_enforcement.create ~store ~rules ~consent ~logger in

  let nurse = { Tree_enforcement.user = "tim"; role = "nurse"; purpose = "treatment" } in
  Fmt.pr "=== Nurse retrieves p1 for treatment (psychiatry subtree pruned) ===@.";
  (match Tree_enforcement.retrieve enforcement nurse ~patient:"p1" with
  | Ok outcome ->
    Fmt.pr "%a@." Xml.pp outcome.Tree_enforcement.document;
    Fmt.pr "pruned   : %s@." (String.concat ", " outcome.Tree_enforcement.pruned_categories);
    Fmt.pr "disclosed: %s@."
      (String.concat ", " outcome.Tree_enforcement.disclosed_categories)
  | Error e -> Fmt.pr "%s@." (Tree_enforcement.error_to_string e));

  Fmt.pr "@.=== Registration clerks keep breaking the glass... ===@.";
  let clerk user =
    { Tree_enforcement.user; role = "nurse"; purpose = "registration" }
  in
  List.iter
    (fun user ->
      match Tree_enforcement.retrieve ~break_glass:true enforcement (clerk user) ~patient:"p1" with
      | Ok outcome ->
        Fmt.pr "  %s: BTG retrieval, %d categories disclosed@." user
          (List.length outcome.Tree_enforcement.disclosed_categories)
      | Error e -> Fmt.pr "  %s: %s@." user (Tree_enforcement.error_to_string e))
    [ "mark"; "tim"; "bob"; "mark"; "olga"; "mark" ];

  Fmt.pr "@.=== ...and refinement sees it, exactly as with the relational substrate ===@.";
  let p_al = Audit_mgmt.To_policy.policy_of_store (Hdb.Audit_logger.store logger) in
  let p_ps = Workload.Scenario.policy_store () in
  let report = Prima_core.Refinement.run_epoch ~vocab ~p_ps ~p_al () in
  Prima_core.Report.pp_epoch Fmt.stdout report;

  Fmt.pr "@.=== Generalization keeps the refined store abstract ===@.";
  let refined = report.Prima_core.Refinement.p_ps' in
  let generalized, summary =
    Prima_core.Analysis.summarize_generalization vocab refined
  in
  Fmt.pr "rules: %d -> %d (range preserved: %b)@." summary.Prima_core.Analysis.rules_before
    summary.Prima_core.Analysis.rules_after summary.Prima_core.Analysis.range_preserved;
  Fmt.pr "%a" Prima_core.Policy.pp generalized
