(* Quickstart: the paper's running example, end to end.

   Walks through Section 3.3 (coverage of the Figure 3 system), Section 5
   (the Table 1 audit trail, the Refinement run and the discovered
   Referral:Registration:Nurse pattern) and shows the coverage gain after
   adopting the pattern.

     dune exec examples/quickstart.exe *)

module P = Prima_core.Policy
module C = Prima_core.Coverage
module S = Workload.Scenario

let section title = Fmt.pr "@.=== %s ===@.@." title

let () =
  let vocab = S.vocab () in
  let attrs = Vocabulary.Audit_attrs.pattern in

  section "Privacy policy vocabulary (Figure 1)";
  Fmt.pr "%a" Vocabulary.Vocab.pp vocab;

  section "Policy store P_PS (Figure 3a)";
  let p_ps = S.policy_store () in
  Fmt.pr "%a" P.pp p_ps;
  Fmt.pr "@.Ground range of P_PS (%d rules):@."
    (Prima_core.Range.cardinality (Prima_core.Range.of_policy vocab p_ps));
  Fmt.pr "%a" Prima_core.Range.pp (Prima_core.Range.of_policy vocab p_ps);

  section "Audit log P_AL (Figure 3b) and its coverage";
  let p_al6 = S.figure3_audit_policy () in
  let stats = C.aligned ~bag:false vocab ~attrs ~p_x:p_ps ~p_y:p_al6 in
  Fmt.pr "ComputeCoverage(P_PS, P_AL, V): %a@." C.pp_stats stats;
  Fmt.pr "Uncovered (the exception scenarios):@.";
  List.iter (fun r -> Fmt.pr "  - %a@." Prima_core.Report.pp_pattern r) stats.C.uncovered;

  section "Audit trail after the training period (Table 1)";
  let entries = S.table1_entries () in
  Prima_core.Report.pp_audit_table Fmt.stdout
    (List.map Audit_mgmt.To_policy.rule_of_entry entries);
  let p_al10 = S.table1_audit_policy () in
  let stats10 = C.aligned ~bag:true vocab ~attrs ~p_x:p_ps ~p_y:p_al10 in
  Fmt.pr "@.Coverage has dropped to: %a@." C.pp_stats stats10;

  section "Refinement (Algorithm 2)";
  let report = Prima_core.Refinement.run_epoch ~vocab ~p_ps ~p_al:p_al10 () in
  Prima_core.Report.pp_epoch Fmt.stdout report;

  section "Policy store after adoption";
  Fmt.pr "%a" P.pp report.Prima_core.Refinement.p_ps';
  Fmt.pr
    "@.Nurses may now access patient Referral data for Registration purposes@.\
     without breaking the glass; coverage went from %.0f%% to %.0f%%.@."
    (100. *. report.Prima_core.Refinement.coverage_before.C.coverage)
    (100. *. report.Prima_core.Refinement.coverage_after.C.coverage)
