(* Audit Management across heterogeneous sites: a modern HDB-instrumented
   clinical database plus a legacy departmental system with its own column
   names and value encodings, consolidated into one virtual audit view
   (the paper uses DB2 Information Integrator for this) and fed to
   refinement.

     dune exec examples/federation_demo.exe *)

module F = Audit_mgmt.Federation

let () =
  let vocab = Vocabulary.Samples.figure1 () in

  (* Site 1: the main clinical system, already producing standard entries
     (the first half of the Table 1 trail). *)
  let main = Audit_mgmt.Site.create ~name:"main-ehr" () in
  Audit_mgmt.Site.ingest_entries main
    (List.filteri (fun i _ -> i < 5) (Workload.Scenario.table1_entries ()));

  (* Site 2: a legacy departmental app logging raw records with its own
     schema; a Mapping normalises them. *)
  let mapping =
    Audit_mgmt.Mapping.create
      ~column_aliases:
        [ ("ts", "time"); ("action", "op"); ("who", "user"); ("category", "data");
          ("reason", "purpose"); ("role", "authorized"); ("mode", "status") ]
      ~value_synonyms:[ (("authorized", "rn"), "nurse"); (("data", "rx"), "prescription") ]
      ()
  in
  let legacy = Audit_mgmt.Site.create ~mapping ~name:"radiology-legacy" () in
  List.iter
    (Audit_mgmt.Site.ingest_raw legacy)
    [ [ ("ts", "6"); ("action", "GRANTED"); ("who", "Jason"); ("category", "RX");
        ("reason", "Billing"); ("role", "Clerk"); ("mode", "BTG") ];
      [ ("ts", "7"); ("action", "GRANTED"); ("who", "Mark"); ("category", "Referral");
        ("reason", "Registration"); ("role", "RN"); ("mode", "BTG") ];
      [ ("ts", "8"); ("action", "GRANTED"); ("who", "Tim"); ("category", "Referral");
        ("reason", "Registration"); ("role", "RN"); ("mode", "BTG") ];
      [ ("ts", "9"); ("action", "GRANTED"); ("who", "Bob"); ("category", "Referral");
        ("reason", "Registration"); ("role", "RN"); ("mode", "BTG") ];
      [ ("ts", "10"); ("action", "GRANTED"); ("who", "Mark"); ("category", "Referral");
        ("reason", "Registration"); ("role", "RN"); ("mode", "BTG") ];
    ];

  let fed = F.of_sites [ main; legacy ] in
  Fmt.pr "%a@." F.pp fed;

  Fmt.pr "Consolidated virtual view (time-ordered):@.";
  List.iter (fun e -> Fmt.pr "  %a@." Hdb.Audit_schema.pp e) (F.consolidated fed);

  (* The consolidated view is P_AL; refine against the Figure 3(a) store. *)
  let p_ps = Workload.Scenario.policy_store () in
  let p_al = F.to_policy fed in
  let report = Prima_core.Refinement.run_epoch ~vocab ~p_ps ~p_al () in
  Fmt.pr "@.Refinement over the federation:@.";
  Prima_core.Report.pp_epoch Fmt.stdout report;

  Fmt.pr
    "@.The cross-site pattern was only frequent enough because both sites'@.\
     entries were consolidated: neither log alone reaches the f = 5 threshold.@."
