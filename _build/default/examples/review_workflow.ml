(* The privacy officer's day: refinement proposes, a human disposes.

   The paper insists Prune's output must not be auto-adopted: "human input
   is prudent at this stage to determine which patterns are actually good
   practice and which should be investigated or terminated."  This example
   runs that workflow: refinement surfaces two frequent exception patterns,
   the officer approves the legitimate one and flags the suspicious one for
   investigation, and only the approved pattern enters the policy.

     dune exec examples/review_workflow.exe *)

module Rev = Prima_core.Review
module Ref = Prima_core.Refinement
module P = Prima_core.Policy
module S = Workload.Scenario

let () =
  let vocab = S.vocab () in
  let p_ps = S.policy_store () in

  (* The Table 1 trail, plus a second frequent exception pattern that is
     *not* legitimate practice: several billing clerks poking at psychiatry
     notes. *)
  let suspicious =
    List.init 6 (fun i ->
        Hdb.Audit_schema.entry ~time:(20 + i) ~op:Hdb.Audit_schema.Allow
          ~user:(List.nth [ "jason"; "bill"; "jason"; "dana"; "bill"; "jason" ] i)
          ~data:"psychiatry" ~purpose:"billing" ~authorized:"clerk"
          ~status:Hdb.Audit_schema.Exception_based)
  in
  let p_al =
    Audit_mgmt.To_policy.policy_of_entries (S.table1_entries () @ suspicious)
  in

  let queue = Rev.create () in
  let config queue = { Ref.default_config with Ref.acceptance = Rev.acceptance queue } in

  Fmt.pr "=== Round 1: refinement proposes, nothing is adopted yet ===@.";
  let round1 = Ref.run_epoch ~config:(config queue) ~vocab ~p_ps ~p_al () in
  Fmt.pr "useful patterns: %d, adopted: %d@." (List.length round1.Ref.useful)
    (List.length round1.Ref.accepted);

  let practice = Prima_core.Filter.run p_al in
  let items = Rev.submit_epoch queue ~practice round1 in
  Fmt.pr "@.=== The review queue, with evidence ===@.%a" Rev.pp queue;

  Fmt.pr "@.=== The officer decides ===@.";
  List.iter
    (fun (item : Rev.item) ->
      let decision =
        match Prima_core.Rule.find_attr item.Rev.pattern "data" with
        | Some "referral" -> Rev.Approved
        | _ -> Rev.Investigate "billing clerks reading psychiatry notes"
      in
      match Rev.decide queue ~id:item.Rev.id ~by:"privacy-officer" decision with
      | Ok decided -> Fmt.pr "  %a@." Rev.pp_item decided
      | Error e -> Fmt.pr "  error: %s@." e)
    items;

  Fmt.pr "@.=== Round 2: past decisions drive adoption ===@.";
  let round2 = Ref.run_epoch ~config:(config queue) ~vocab ~p_ps ~p_al () in
  Prima_core.Report.pp_epoch Fmt.stdout round2;

  Fmt.pr "@.=== Coverage trend against the refined store ===@.";
  let points =
    Prima_core.Trend.compute vocab ~p_ps:round2.Ref.p_ps' ~p_al ~window:10 ()
  in
  Prima_core.Trend.pp Fmt.stdout points;
  Fmt.pr
    "@.The residual gap is exactly the pattern under investigation — as it@.\
     should be: suspicious practice must stay exception-based and visible.@."
