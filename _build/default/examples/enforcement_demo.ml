(* HDB Active Enforcement in action (Figure 5): fine-grained rules, patient
   consent, cell-level masking, row-level exclusion, Break-The-Glass, and
   the audit trail every decision leaves behind.

     dune exec examples/enforcement_demo.exe *)

module CC = Hdb.Control_center

let show_outcome label (outcome : Hdb.Enforcement.outcome) =
  Fmt.pr "@.-- %s --@." label;
  Fmt.pr "rewritten: %s@." outcome.Hdb.Enforcement.rewritten_sql;
  if outcome.Hdb.Enforcement.masked_columns <> [] then
    Fmt.pr "masked   : %s@." (String.concat ", " outcome.Hdb.Enforcement.masked_columns);
  if outcome.Hdb.Enforcement.excluded_patients <> [] then
    Fmt.pr "excluded : %s@." (String.concat ", " outcome.Hdb.Enforcement.excluded_patients);
  if outcome.Hdb.Enforcement.break_glass then Fmt.pr "break-the-glass access!@.";
  Fmt.pr "%a" Relational.Engine.pp_result outcome.Hdb.Enforcement.result

let run ?break_glass control ~user ~role ~purpose sql =
  Fmt.pr "@.%s (%s) asks, for %s:@.  %s@." user role purpose sql;
  match CC.query ?break_glass control ~user ~role ~purpose sql with
  | Ok outcome -> show_outcome "answer" outcome
  | Error e -> Fmt.pr "  => %s@." (Hdb.Enforcement.error_to_string e)

let () =
  let vocab = Vocabulary.Samples.figure1 () in
  let control = CC.create ~vocab () in

  (* Clinical schema + data. *)
  List.iter
    (fun sql -> ignore (CC.admin_exec control sql))
    [ "CREATE TABLE records (patient TEXT, name TEXT, address TEXT, referral TEXT, \
       prescription TEXT, psychiatry TEXT)";
      "INSERT INTO records VALUES \
       ('p1', 'Ann Ames',  '12 Elm St',  'cardiology',  'statin',   'none'), \
       ('p2', 'Bob Banks', '9 Oak Ave',  'radiology',   'insulin',  'anxiety'), \
       ('p3', 'Cyd Cole',  '4 Pine Rd',  'neurology',   'warfarin', 'none')";
    ];
  CC.set_patient_column control ~table:"records" ~column:"patient";
  List.iter
    (fun (column, category) -> CC.map_column control ~table:"records" ~column ~category)
    [ ("name", "name"); ("address", "address"); ("referral", "referral");
      ("prescription", "prescription"); ("psychiatry", "psychiatry") ];

  (* Stakeholder-defined policy: the Figure 3(a) rules. *)
  CC.permit control ~data:"routine" ~purpose:"treatment" ~authorized:"nurse";
  CC.permit control ~data:"psychiatry" ~purpose:"treatment" ~authorized:"psychiatrist";
  CC.permit control ~data:"demographic" ~purpose:"billing" ~authorized:"clerk";

  (* Patient choice: Bob opts out of billing uses of his demographics. *)
  CC.opt_out control ~patient:"p2" ~purpose:"billing" ~data:"demographic";

  Fmt.pr "=== Cell-level masking ===@.";
  run control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
    "SELECT patient, referral, psychiatry FROM records";

  Fmt.pr "@.=== Row-level consent exclusion ===@.";
  run control ~user:"bill" ~role:"clerk" ~purpose:"billing"
    "SELECT patient, name, address FROM records";

  Fmt.pr "@.=== Denial: purpose not permitted ===@.";
  run control ~user:"mark" ~role:"nurse" ~purpose:"registration"
    "SELECT referral FROM records";

  Fmt.pr "@.=== Break The Glass ===@.";
  run ~break_glass:true control ~user:"mark" ~role:"nurse" ~purpose:"registration"
    "SELECT referral FROM records";

  Fmt.pr "@.=== Denial: predicate over a forbidden category ===@.";
  run control ~user:"tim" ~role:"nurse" ~purpose:"treatment"
    "SELECT referral FROM records WHERE psychiatry = 'anxiety'";

  Fmt.pr "@.=== The audit trail (Compliance Auditing) ===@.";
  List.iter (fun e -> Fmt.pr "  %a@." Hdb.Audit_schema.pp e) (CC.audit_entries control);

  Fmt.pr "@.=== Compliance question: who saw referral data? ===@.";
  List.iter
    (fun e -> Fmt.pr "  %a@." Hdb.Audit_schema.pp e)
    (Hdb.Audit_query.disclosures (CC.audit_store control) ~data:"referral" ());

  Fmt.pr "@.=== Storage efficiency of the audit store ===@.";
  let store = CC.audit_store control in
  Fmt.pr "naive row-store bytes : %d@." (Hdb.Audit_store.naive_bytes store);
  Fmt.pr "dictionary-encoded    : %d@." (Hdb.Audit_store.encoded_bytes store)
