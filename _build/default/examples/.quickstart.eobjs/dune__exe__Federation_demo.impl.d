examples/federation_demo.ml: Audit_mgmt Fmt Hdb List Prima_core Vocabulary Workload
