examples/quickstart.mli:
