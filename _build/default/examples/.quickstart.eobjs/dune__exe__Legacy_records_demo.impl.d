examples/legacy_records_demo.ml: Audit_mgmt Fmt Hdb List Prima_core String Tree_enforcement Tree_store Treedata Vocabulary Workload Xml
