examples/federation_demo.mli:
