examples/hospital_simulation.ml: Audit_mgmt Fmt List Prima_core Printf String Vocabulary Workload
