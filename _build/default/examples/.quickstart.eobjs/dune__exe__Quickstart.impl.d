examples/quickstart.ml: Audit_mgmt Fmt List Prima_core Vocabulary Workload
