examples/enforcement_demo.mli:
