examples/enforcement_demo.ml: Fmt Hdb List Relational String Vocabulary
