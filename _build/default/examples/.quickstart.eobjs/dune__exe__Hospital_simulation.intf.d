examples/hospital_simulation.mli:
