examples/review_workflow.mli:
