examples/review_workflow.ml: Audit_mgmt Fmt Hdb List Prima_core Workload
