examples/legacy_records_demo.mli:
