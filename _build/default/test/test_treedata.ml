(* Tests for the tree-structured records substrate: XML parsing/printing,
   path expressions, the tree store and tree-level enforcement. *)

open Treedata

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let sample_record = {|
<!-- exported from the legacy department system -->
<record id="p1">
  <demographics>
    <name>Ann Ames</name>
    <address>12 Elm St</address>
  </demographics>
  <medications>
    <prescription drug="statin" dose="20mg"/>
    <prescription drug="aspirin" dose="75mg"/>
  </medications>
  <psychiatry>
    <note>Patient reports anxiety &amp; stress.</note>
  </psychiatry>
</record>
|}

(* --- xml --- *)

let test_parse_structure () =
  let root = Xml.parse sample_record in
  check_string "root" "record" root.Xml.tag;
  check_int "children" 3 (List.length root.Xml.children);
  Alcotest.(check (option string)) "attribute" (Some "p1") (Xml.attribute root "id")

let test_parse_text_and_entities () =
  let root = Xml.parse sample_record in
  let note = List.hd (Path.select (Path.parse "/record/psychiatry/note") root) in
  check_string "entity decoded" "Patient reports anxiety & stress." note.Xml.text

let test_parse_self_closing_and_attrs () =
  let root = Xml.parse sample_record in
  let prescriptions = Path.select (Path.parse "/record/medications/prescription") root in
  check_int "two" 2 (List.length prescriptions);
  Alcotest.(check (option string)) "drug attr" (Some "statin")
    (Xml.attribute (List.hd prescriptions) "drug")

let test_parse_errors () =
  let expect_error s =
    match Xml.parse s with
    | exception Xml.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected parse error: %s" s
  in
  expect_error "<a><b></a></b>";
  expect_error "<a>";
  expect_error "no markup";
  expect_error "<a></a><b></b>"

let test_print_parse_roundtrip () =
  let root = Xml.parse sample_record in
  let reparsed = Xml.parse (Xml.to_string root) in
  check_bool "roundtrip" true (Xml.equal root reparsed)

let test_count_fold () =
  let root = Xml.parse sample_record in
  check_int "nodes" 9 (Xml.count root)

(* --- path --- *)

let test_path_parse_and_print () =
  check_string "roundtrip" "/record/medications/prescription"
    (Path.to_string (Path.parse "/record/medications/prescription"));
  check_string "descendant" "//note" (Path.to_string (Path.parse "//note"));
  check_string "wildcard" "/record/*" (Path.to_string (Path.parse "/record/*"))

let test_path_invalid () =
  let expect_invalid s =
    match Path.parse s with
    | exception Path.Invalid_path _ -> ()
    | _ -> Alcotest.failf "expected invalid: %s" s
  in
  expect_invalid "";
  expect_invalid "record/x";
  expect_invalid "/"

let test_path_select () =
  let root = Xml.parse sample_record in
  check_int "absolute" 1 (List.length (Path.select (Path.parse "/record/demographics/name") root));
  check_int "wildcard" 3 (List.length (Path.select (Path.parse "/record/*") root));
  check_int "descendant" 2 (List.length (Path.select (Path.parse "//prescription") root));
  check_int "mixed" 1 (List.length (Path.select (Path.parse "/record//note") root));
  check_int "no match" 0 (List.length (Path.select (Path.parse "/record/billing") root))

let test_path_matches () =
  let p = Path.parse "/record/medications/prescription" in
  check_bool "exact" true (Path.matches p [ "record"; "medications"; "prescription" ]);
  check_bool "too deep" false
    (Path.matches p [ "record"; "medications"; "prescription"; "dose" ]);
  check_bool "descendant" true
    (Path.matches (Path.parse "//note") [ "record"; "psychiatry"; "note" ]);
  check_bool "wildcard" true (Path.matches (Path.parse "/record/*") [ "record"; "medications" ])

(* --- tree store --- *)

let make_store () =
  let store = Tree_store.create () in
  Tree_store.put_xml store ~patient:"p1" sample_record;
  Tree_store.map_path store ~path:"/record/demographics/name" ~category:"name";
  Tree_store.map_path store ~path:"/record/demographics/address" ~category:"address";
  Tree_store.map_path store ~path:"//prescription" ~category:"prescription";
  Tree_store.map_path store ~path:"/record/psychiatry" ~category:"psychiatry";
  store

let test_store_basics () =
  let store = make_store () in
  check_int "one patient" 1 (Tree_store.count store);
  Alcotest.(check (list string)) "patients" [ "p1" ] (Tree_store.patients store);
  check_bool "missing" true (Tree_store.get store ~patient:"zz" = None)

let test_store_categories () =
  let store = make_store () in
  let doc = Option.get (Tree_store.get store ~patient:"p1") in
  Alcotest.(check (list string)) "categories found"
    [ "name"; "address"; "prescription"; "psychiatry" ]
    (Tree_store.categories_in store doc);
  check_bool "psychiatry note inherits nothing"
    true
    (Tree_store.category_of_tags store [ "record"; "psychiatry" ] = Some "psychiatry")

(* --- tree enforcement --- *)

let vocab = Vocabulary.Samples.figure1 ()

let make_enforcement () =
  let store = make_store () in
  let rules = Hdb.Privacy_rules.create ~vocab in
  Hdb.Privacy_rules.add rules ~data:"routine" ~purpose:"treatment" ~authorized:"nurse" ();
  Hdb.Privacy_rules.add rules ~data:"demographic" ~purpose:"treatment" ~authorized:"nurse" ();
  Hdb.Privacy_rules.add rules ~data:"psychiatry" ~purpose:"treatment"
    ~authorized:"psychiatrist" ();
  let consent = Hdb.Consent.create ~vocab () in
  let logger = Hdb.Audit_logger.create () in
  Tree_enforcement.create ~store ~rules ~consent ~logger

let nurse = { Tree_enforcement.user = "tim"; role = "nurse"; purpose = "treatment" }

let test_enforcement_prunes_forbidden_subtree () =
  let enforcement = make_enforcement () in
  match Tree_enforcement.retrieve enforcement nurse ~patient:"p1" with
  | Ok outcome ->
    check_bool "psychiatry pruned" true
      (Path.select (Path.parse "//note") outcome.Tree_enforcement.document = []);
    check_bool "prescriptions kept" true
      (List.length
         (Path.select (Path.parse "//prescription") outcome.Tree_enforcement.document)
      = 2);
    Alcotest.(check (list string)) "pruned categories" [ "psychiatry" ]
      outcome.Tree_enforcement.pruned_categories;
    check_bool "not break-glass" false outcome.Tree_enforcement.break_glass
  | Error e -> Alcotest.fail (Tree_enforcement.error_to_string e)

let test_enforcement_consent_prunes () =
  let enforcement = make_enforcement () in
  Hdb.Consent.record
    (Tree_enforcement.consent enforcement)
    ~patient:"p1" ~purpose:"treatment" ~data:"prescription" Hdb.Consent.Opt_out;
  match Tree_enforcement.retrieve enforcement nurse ~patient:"p1" with
  | Ok outcome ->
    check_bool "prescriptions withheld" true
      (Path.select (Path.parse "//prescription") outcome.Tree_enforcement.document = []);
    check_bool "demographics kept" true
      (Path.select (Path.parse "/record/demographics/name") outcome.Tree_enforcement.document
      <> []);
    check_bool "prescription not disclosed" true
      (not (List.mem "prescription" outcome.Tree_enforcement.disclosed_categories))
  | Error e -> Alcotest.fail (Tree_enforcement.error_to_string e)

let test_enforcement_denied_and_btg () =
  let enforcement = make_enforcement () in
  let clerk = { Tree_enforcement.user = "bill"; role = "clerk"; purpose = "billing" } in
  (match Tree_enforcement.retrieve enforcement clerk ~patient:"p1" with
  | Error (Tree_enforcement.Denied _) -> ()
  | _ -> Alcotest.fail "expected denial");
  match Tree_enforcement.retrieve ~break_glass:true enforcement clerk ~patient:"p1" with
  | Ok outcome ->
    check_bool "break glass" true outcome.Tree_enforcement.break_glass;
    check_int "full document" 9 (Xml.count outcome.Tree_enforcement.document);
    let exceptions =
      Hdb.Audit_query.exceptions (Hdb.Audit_logger.store (Tree_enforcement.logger enforcement))
    in
    check_bool "exception trail" true (List.length exceptions > 0)
  | Error e -> Alcotest.fail (Tree_enforcement.error_to_string e)

let test_enforcement_missing_patient () =
  let enforcement = make_enforcement () in
  match Tree_enforcement.retrieve enforcement nurse ~patient:"ghost" with
  | Error (Tree_enforcement.Not_found "ghost") -> ()
  | _ -> Alcotest.fail "expected not-found"

let test_enforcement_audit_feeds_refinement () =
  (* Tree-substrate exceptions look exactly like relational ones to the
     refinement pipeline. *)
  let enforcement = make_enforcement () in
  let clerk = { Tree_enforcement.user = "bill"; role = "clerk"; purpose = "billing" } in
  let retrieve_btg user =
    match
      Tree_enforcement.retrieve ~break_glass:true enforcement
        { clerk with Tree_enforcement.user } ~patient:"p1"
    with
    | Ok _ -> ()
    | Error e -> Alcotest.fail (Tree_enforcement.error_to_string e)
  in
  List.iter retrieve_btg [ "bill"; "jane"; "bill"; "jane"; "bill"; "kate" ];
  let p_al =
    Audit_mgmt.To_policy.policy_of_store
      (Hdb.Audit_logger.store (Tree_enforcement.logger enforcement))
  in
  let patterns =
    Prima_core.Extract_patterns.run (Prima_core.Filter.run p_al)
  in
  check_bool "patterns mined from tree audit" true (List.length patterns > 0)

let () =
  Alcotest.run "treedata"
    [ ( "xml",
        [ Alcotest.test_case "structure" `Quick test_parse_structure;
          Alcotest.test_case "text & entities" `Quick test_parse_text_and_entities;
          Alcotest.test_case "self-closing & attrs" `Quick test_parse_self_closing_and_attrs;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "print/parse roundtrip" `Quick test_print_parse_roundtrip;
          Alcotest.test_case "count" `Quick test_count_fold;
        ] );
      ( "path",
        [ Alcotest.test_case "parse/print" `Quick test_path_parse_and_print;
          Alcotest.test_case "invalid" `Quick test_path_invalid;
          Alcotest.test_case "select" `Quick test_path_select;
          Alcotest.test_case "matches" `Quick test_path_matches;
        ] );
      ( "store",
        [ Alcotest.test_case "basics" `Quick test_store_basics;
          Alcotest.test_case "categories" `Quick test_store_categories;
        ] );
      ( "enforcement",
        [ Alcotest.test_case "prunes forbidden subtree" `Quick
            test_enforcement_prunes_forbidden_subtree;
          Alcotest.test_case "consent prunes" `Quick test_enforcement_consent_prunes;
          Alcotest.test_case "denied & break-glass" `Quick test_enforcement_denied_and_btg;
          Alcotest.test_case "missing patient" `Quick test_enforcement_missing_patient;
          Alcotest.test_case "audit feeds refinement" `Quick
            test_enforcement_audit_feeds_refinement;
        ] );
    ]
