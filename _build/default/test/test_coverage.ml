(* Tests for Definition 9 / Algorithm 1 (ComputeCoverage), Definition 10
   (complete coverage), and the exact numbers of the paper's Section 3.3
   example and Section 5 use case. *)

module C = Prima_core.Coverage
module P = Prima_core.Policy
module S = Workload.Scenario

let vocab = S.vocab ()
let attrs = Vocabulary.Audit_attrs.pattern

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- the paper's numbers --- *)

let test_figure3_coverage_50_percent () =
  let stats =
    C.aligned ~bag:false vocab ~attrs ~p_x:(S.policy_store ())
      ~p_y:(S.figure3_audit_policy ())
  in
  check_int "overlap" 3 stats.C.overlap;
  check_int "denominator" 6 stats.C.denominator;
  check_float "50%" 0.5 stats.C.coverage

let test_figure3_matched_rules () =
  (* Rules 1, 2, 5 match (1a, 1b, 3a); rules 3, 4, 6 do not. *)
  let stats =
    C.aligned ~bag:false vocab ~attrs ~p_x:(S.policy_store ())
      ~p_y:(S.figure3_audit_policy ())
  in
  let uncovered_compact =
    List.map (Prima_core.Rule.to_compact_string ~attrs) stats.C.uncovered
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "the three exception scenarios"
    [ "prescription:billing:clerk"; "psychiatry:treatment:nurse";
      "referral:registration:nurse" ]
    uncovered_compact

let test_table1_coverage_30_percent () =
  let stats =
    C.aligned ~bag:true vocab ~attrs ~p_x:(S.policy_store ()) ~p_y:(S.table1_audit_policy ())
  in
  check_int "matched entries" 3 stats.C.overlap;
  check_int "total entries" 10 stats.C.denominator;
  check_float "30%" 0.3 stats.C.coverage

let test_table1_set_semantics_differs () =
  (* Under Definition 9's set semantics Table 1 has 6 distinct patterns of
     which 3 covered: the bag/set split the paper glosses over. *)
  let stats =
    C.aligned ~bag:false vocab ~attrs ~p_x:(S.policy_store ()) ~p_y:(S.table1_audit_policy ())
  in
  check_int "distinct" 6 stats.C.denominator;
  check_int "covered" 3 stats.C.overlap

(* --- definition-level properties --- *)

let test_coverage_reflexive () =
  let p = S.policy_store () in
  let stats = C.compute vocab ~p_x:p ~p_y:p in
  check_float "self-coverage 1.0" 1.0 stats.C.coverage

let test_coverage_empty_y () =
  let p = S.policy_store () in
  let empty = P.make [] in
  let stats = C.compute vocab ~p_x:p ~p_y:empty in
  check_float "vacuous 1.0" 1.0 stats.C.coverage;
  check_int "zero denominator" 0 stats.C.denominator

let test_coverage_empty_x () =
  let p = P.of_assoc_list [ [ ("data", "gender") ] ] in
  let stats = C.compute vocab ~p_x:(P.make []) ~p_y:p in
  check_float "zero" 0.0 stats.C.coverage

let test_coverage_asymmetric () =
  (* Composite x covers ground y fully, but ground y covers only part of x. *)
  let x = P.of_assoc_list [ [ ("data", "demographic") ] ] in
  let y = P.of_assoc_list [ [ ("data", "address") ] ] in
  let xy = C.compute vocab ~p_x:x ~p_y:y in
  let yx = C.compute vocab ~p_x:y ~p_y:x in
  check_float "x covers y" 1.0 xy.C.coverage;
  check_float "y covers 1/4 of x" 0.25 yx.C.coverage

let test_complete_coverage () =
  let x = P.of_assoc_list [ [ ("data", "demographic") ] ] in
  let y = P.of_assoc_list [ [ ("data", "address") ]; [ ("data", "gender") ] ] in
  check_bool "complete" true (C.complete vocab ~p_x:x ~p_y:y);
  check_bool "not complete reversed" false (C.complete vocab ~p_x:y ~p_y:x)

let test_bag_counts_composite_rules () =
  (* A composite audit rule is covered only if its whole ground set is. *)
  let x = P.of_assoc_list [ [ ("data", "routine") ] ] in
  let y_good = P.of_assoc_list [ [ ("data", "routine") ] ] in
  let y_bad = P.of_assoc_list [ [ ("data", "clinical") ] ] in
  check_float "covered" 1.0 (C.compute_bag vocab ~p_x:x ~p_y:y_good).C.coverage;
  check_float "partially grounded not covered" 0.0
    (C.compute_bag vocab ~p_x:x ~p_y:y_bad).C.coverage

let test_monotone_in_x () =
  (* Adding rules to P_x never lowers coverage. *)
  let y = S.figure3_audit_policy () in
  let base = S.policy_store () in
  let richer = P.add_rule base (S.expected_pattern ()) in
  let before = (C.aligned ~bag:true vocab ~attrs ~p_x:base ~p_y:y).C.coverage in
  let after = (C.aligned ~bag:true vocab ~attrs ~p_x:richer ~p_y:y).C.coverage in
  check_bool "monotone" true (after >= before)

let test_uncovered_listed () =
  let y = S.table1_audit_policy () in
  let stats = C.aligned ~bag:true vocab ~attrs ~p_x:(S.policy_store ()) ~p_y:y in
  check_int "seven uncovered entries" 7 (List.length stats.C.uncovered)

let () =
  Alcotest.run "coverage"
    [ ( "paper-numbers",
        [ Alcotest.test_case "Figure 3: 3/6 = 50%" `Quick test_figure3_coverage_50_percent;
          Alcotest.test_case "Figure 3: exception scenarios" `Quick test_figure3_matched_rules;
          Alcotest.test_case "Table 1: 3/10 = 30%" `Quick test_table1_coverage_30_percent;
          Alcotest.test_case "Table 1: set semantics" `Quick test_table1_set_semantics_differs;
        ] );
      ( "properties",
        [ Alcotest.test_case "reflexive" `Quick test_coverage_reflexive;
          Alcotest.test_case "empty y" `Quick test_coverage_empty_y;
          Alcotest.test_case "empty x" `Quick test_coverage_empty_x;
          Alcotest.test_case "asymmetric" `Quick test_coverage_asymmetric;
          Alcotest.test_case "complete (Def 10)" `Quick test_complete_coverage;
          Alcotest.test_case "bag composite rules" `Quick test_bag_counts_composite_rules;
          Alcotest.test_case "monotone in P_x" `Quick test_monotone_in_x;
          Alcotest.test_case "uncovered listed" `Quick test_uncovered_listed;
        ] );
    ]
