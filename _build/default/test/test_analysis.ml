(* Tests for policy analysis (redundancy, minimization, generalization) and
   privacy-rule conflict detection. *)

module A = Prima_core.Analysis
module P = Prima_core.Policy
module R = Prima_core.Rule
module Range = Prima_core.Range

let vocab = Vocabulary.Samples.figure1 ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rule triple = R.of_assoc triple

(* --- redundancy --- *)

let test_redundant_ground_under_composite () =
  let p =
    P.of_assoc_list
      [ [ ("data", "routine"); ("purpose", "treatment"); ("authorized", "nurse") ];
        [ ("data", "referral"); ("purpose", "treatment"); ("authorized", "nurse") ];
      ]
  in
  let redundant = A.redundant_rules vocab p in
  check_int "one redundant" 1 (List.length redundant);
  Alcotest.(check (option string)) "the ground one" (Some "referral")
    (R.find_attr (List.hd redundant) "data")

let test_no_redundancy () =
  let p = Workload.Scenario.policy_store () in
  check_int "store is tight" 0 (List.length (A.redundant_rules vocab p))

let test_duplicate_rules_redundant () =
  let r = [ ("data", "gender") ] in
  let p = P.of_assoc_list [ r; r ] in
  (* Each copy is covered by the other. *)
  check_int "both flagged" 2 (List.length (A.redundant_rules vocab p))

(* --- minimize --- *)

let test_minimize_preserves_range () =
  let p =
    P.of_assoc_list
      [ [ ("data", "routine") ]; [ ("data", "referral") ]; [ ("data", "prescription") ];
        [ ("data", "gender") ] ]
  in
  let minimized = A.minimize vocab p in
  check_int "two rules left" 2 (P.cardinality minimized);
  check_bool "range preserved" true
    (Range.cardinality (Range.of_policy vocab p)
    = Range.cardinality (Range.of_policy vocab minimized))

let test_minimize_keeps_duplicates_once () =
  let r = [ ("data", "gender") ] in
  let p = P.of_assoc_list [ r; r; r ] in
  check_int "one copy survives" 1 (P.cardinality (A.minimize vocab p))

let test_minimize_idempotent () =
  let p =
    P.of_assoc_list [ [ ("data", "demographic") ]; [ ("data", "address") ] ]
  in
  let once = A.minimize vocab p in
  let twice = A.minimize vocab once in
  check_int "stable" (P.cardinality once) (P.cardinality twice)

(* --- generalize --- *)

let test_generalize_collapses_siblings () =
  (* All three routine leaves present -> one (routine, ...) rule. *)
  let template = [ ("purpose", "treatment"); ("authorized", "nurse") ] in
  let p =
    P.of_assoc_list
      [ ("data", "prescription") :: template;
        ("data", "referral") :: template;
        ("data", "lab-results") :: template;
      ]
  in
  let generalized, summary = A.summarize_generalization vocab p in
  check_int "one rule" 1 (P.cardinality generalized);
  Alcotest.(check (option string)) "the composite" (Some "routine")
    (R.find_attr (List.hd (P.rules generalized)) "data");
  check_bool "range preserved" true summary.A.range_preserved

let test_generalize_partial_siblings_untouched () =
  let template = [ ("purpose", "treatment"); ("authorized", "nurse") ] in
  let p =
    P.of_assoc_list
      [ ("data", "prescription") :: template; ("data", "referral") :: template ]
  in
  (* lab-results missing: nothing to collapse. *)
  check_int "unchanged" 2 (P.cardinality (A.generalize vocab p))

let test_generalize_multi_level () =
  (* routine + sensitive -> clinical (two levels of climbing). *)
  let p =
    P.of_assoc_list
      [ [ ("data", "prescription") ]; [ ("data", "referral") ]; [ ("data", "lab-results") ];
        [ ("data", "psychiatry") ]; [ ("data", "hiv-status") ]; [ ("data", "genetic") ];
      ]
  in
  let generalized = A.generalize vocab p in
  check_int "single clinical rule" 1 (P.cardinality generalized);
  Alcotest.(check (option string)) "clinical" (Some "clinical")
    (R.find_attr (List.hd (P.rules generalized)) "data")

let test_generalize_across_attrs () =
  (* treatment+registration+billing collapse on the purpose attribute. *)
  let template = [ ("data", "referral"); ("authorized", "nurse") ] in
  let p =
    P.of_assoc_list
      [ ("purpose", "treatment") :: template;
        ("purpose", "registration") :: template;
        ("purpose", "billing") :: template;
      ]
  in
  let generalized = A.generalize vocab p in
  check_int "one rule" 1 (P.cardinality generalized);
  Alcotest.(check (option string)) "administering-healthcare"
    (Some "administering-healthcare")
    (R.find_attr (List.hd (P.rules generalized)) "purpose")

let test_generalize_respects_differing_templates () =
  (* Same data leaves but different roles: no collapse. *)
  let p =
    P.of_assoc_list
      [ [ ("data", "prescription"); ("authorized", "nurse") ];
        [ ("data", "referral"); ("authorized", "clerk") ];
        [ ("data", "lab-results"); ("authorized", "nurse") ];
      ]
  in
  check_int "unchanged" 3 (P.cardinality (A.generalize vocab p))

let test_generalize_after_refinement_story () =
  (* The refinement loop adopts ground patterns; generalization recovers the
     abstract rule. *)
  let adopted =
    [ rule [ ("data", "prescription"); ("purpose", "registration"); ("authorized", "nurse") ];
      rule [ ("data", "referral"); ("purpose", "registration"); ("authorized", "nurse") ];
      rule [ ("data", "lab-results"); ("purpose", "registration"); ("authorized", "nurse") ];
    ]
  in
  let p = P.add_rules (Workload.Scenario.policy_store ()) adopted in
  let generalized, summary = A.summarize_generalization vocab p in
  check_bool "fewer rules" true (P.cardinality generalized < P.cardinality p);
  check_bool "range preserved" true summary.A.range_preserved;
  check_bool "routine:registration:nurse present" true
    (P.mem_syntactic generalized
       (rule [ ("data", "routine"); ("purpose", "registration"); ("authorized", "nurse") ]))

(* --- conflicts (hdb) --- *)

let test_conflicts_detected () =
  let rules = Hdb.Privacy_rules.create ~vocab in
  Hdb.Privacy_rules.add rules ~data:"clinical" ~purpose:"treatment" ~authorized:"nurse" ();
  Hdb.Privacy_rules.add rules ~effect:Hdb.Privacy_rules.Forbid ~data:"psychiatry"
    ~purpose:"treatment" ~authorized:"clinical-staff" ();
  let conflicts = Hdb.Privacy_rules.conflicts rules in
  check_int "one conflict" 1 (List.length conflicts)

let test_no_conflicts_when_disjoint () =
  let rules = Hdb.Privacy_rules.create ~vocab in
  Hdb.Privacy_rules.add rules ~data:"routine" ~purpose:"treatment" ~authorized:"nurse" ();
  Hdb.Privacy_rules.add rules ~effect:Hdb.Privacy_rules.Forbid ~data:"psychiatry"
    ~purpose:"treatment" ~authorized:"nurse" ();
  check_int "disjoint data subtrees" 0 (List.length (Hdb.Privacy_rules.conflicts rules))

let () =
  Alcotest.run "analysis"
    [ ( "redundancy",
        [ Alcotest.test_case "ground under composite" `Quick
            test_redundant_ground_under_composite;
          Alcotest.test_case "tight store" `Quick test_no_redundancy;
          Alcotest.test_case "duplicates" `Quick test_duplicate_rules_redundant;
        ] );
      ( "minimize",
        [ Alcotest.test_case "preserves range" `Quick test_minimize_preserves_range;
          Alcotest.test_case "duplicates once" `Quick test_minimize_keeps_duplicates_once;
          Alcotest.test_case "idempotent" `Quick test_minimize_idempotent;
        ] );
      ( "generalize",
        [ Alcotest.test_case "collapses siblings" `Quick test_generalize_collapses_siblings;
          Alcotest.test_case "partial siblings untouched" `Quick
            test_generalize_partial_siblings_untouched;
          Alcotest.test_case "multi-level" `Quick test_generalize_multi_level;
          Alcotest.test_case "across attributes" `Quick test_generalize_across_attrs;
          Alcotest.test_case "differing templates" `Quick
            test_generalize_respects_differing_templates;
          Alcotest.test_case "post-refinement story" `Quick
            test_generalize_after_refinement_story;
        ] );
      ( "conflicts",
        [ Alcotest.test_case "detected" `Quick test_conflicts_detected;
          Alcotest.test_case "disjoint" `Quick test_no_conflicts_when_disjoint;
        ] );
    ]
