(* Tests for the vocabulary substrate: taxonomies, grounding, subsumption,
   equivalence, and the Figure 1 sample vocabulary. *)

module T = Vocabulary.Taxonomy
module V = Vocabulary.Vocab
module S = Vocabulary.Samples

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_strings = Alcotest.(check (list string))

let small_tax () =
  T.create ~attr:"data"
    (T.node "data"
       [ T.node "demographic" [ T.leaf "name"; T.leaf "address" ];
         T.leaf "insurance";
       ])

(* --- Taxonomy --- *)

let test_create_and_attr () =
  let t = small_tax () in
  check Alcotest.string "attr" "data" (T.attr t);
  check Alcotest.string "root" "data" (T.root_value t)

let test_duplicate_value_rejected () =
  Alcotest.check_raises "duplicate" (T.Duplicate_value "name") (fun () ->
      ignore (T.create ~attr:"x" (T.node "root" [ T.leaf "name"; T.leaf "name" ])))

let test_mem () =
  let t = small_tax () in
  check_bool "root" true (T.mem t "data");
  check_bool "leaf" true (T.mem t "address");
  check_bool "foreign" false (T.mem t "telephone")

let test_is_ground () =
  let t = small_tax () in
  check_bool "leaf ground" true (T.is_ground t "name");
  check_bool "interior composite" false (T.is_ground t "demographic");
  check_bool "root composite" false (T.is_ground t "data");
  check_bool "single leaf sibling" true (T.is_ground t "insurance")

let test_unknown_value_raises () =
  let t = small_tax () in
  Alcotest.check_raises "unknown" (T.Unknown_value "zz") (fun () ->
      ignore (T.is_ground t "zz"))

let test_children () =
  let t = small_tax () in
  check_strings "children of demographic" [ "name"; "address" ] (T.children t "demographic");
  check_strings "children of leaf" [] (T.children t "insurance")

let test_leaves_under () =
  let t = small_tax () in
  check_strings "under demographic" [ "name"; "address" ] (T.leaves_under t "demographic");
  check_strings "under root" [ "name"; "address"; "insurance" ] (T.leaves_under t "data");
  check_strings "leaf grounds to itself" [ "insurance" ] (T.leaves_under t "insurance")

let test_subsumes () =
  let t = small_tax () in
  check_bool "ancestor" true (T.subsumes t ~ancestor:"demographic" ~descendant:"name");
  check_bool "reflexive" true (T.subsumes t ~ancestor:"name" ~descendant:"name");
  check_bool "reversed" false (T.subsumes t ~ancestor:"name" ~descendant:"demographic");
  check_bool "siblings" false (T.subsumes t ~ancestor:"insurance" ~descendant:"name");
  check_bool "root subsumes all" true (T.subsumes t ~ancestor:"data" ~descendant:"address")

let test_equivalent () =
  let t = small_tax () in
  check_bool "descendant equivalent" true (T.equivalent t "demographic" "address");
  check_bool "symmetric" true (T.equivalent t "address" "demographic");
  check_bool "distinct leaves" false (T.equivalent t "name" "address");
  check_bool "self" true (T.equivalent t "name" "name")

let test_all_and_ground_values () =
  let t = small_tax () in
  check_strings "all preorder" [ "data"; "demographic"; "name"; "address"; "insurance" ]
    (T.all_values t);
  check_strings "ground values" [ "name"; "address"; "insurance" ] (T.ground_values t)

let test_size_depth () =
  let t = small_tax () in
  check_int "size" 5 (T.size t);
  check_int "depth" 3 (T.depth t)

let test_parent_and_path () =
  let t = small_tax () in
  check Alcotest.(option string) "parent of name" (Some "demographic") (T.parent t "name");
  check Alcotest.(option string) "parent of root" None (T.parent t "data");
  check_strings "path" [ "data"; "demographic"; "address" ] (T.path_to t "address")

(* --- Vocab --- *)

let test_vocab_add_duplicate () =
  let v = V.add V.empty (small_tax ()) in
  Alcotest.check_raises "dup attr" (V.Duplicate_attribute "data") (fun () ->
      ignore (V.add v (small_tax ())))

let test_vocab_attributes () =
  let v = S.figure1 () in
  check_strings "attrs sorted" [ "authorized"; "data"; "purpose" ] (V.attributes v)

let test_vocab_unknown_attr () =
  let v = S.figure1 () in
  Alcotest.check_raises "unknown" (V.Unknown_attribute "location") (fun () ->
      ignore (V.taxonomy v "location"))

let test_vocab_foreign_values_are_ground () =
  let v = S.figure1 () in
  (* user names / timestamps are outside the vocabulary: ground by fiat *)
  check_bool "foreign attr" true (V.is_ground v ~attr:"user" ~value:"mark");
  check_bool "foreign value" true (V.is_ground v ~attr:"data" ~value:"not-in-tree");
  check_strings "foreign ground set" [ "mark" ] (V.ground_set v ~attr:"user" ~value:"mark")

let test_vocab_equivalence_foreign () =
  let v = S.figure1 () in
  check_bool "foreign equal" true (V.equivalent_values v ~attr:"user" "tim" "tim");
  check_bool "foreign distinct" false (V.equivalent_values v ~attr:"user" "tim" "bob")

let test_vocab_cardinality () =
  let v = V.add V.empty (small_tax ()) in
  check_int "cardinality" 5 (V.cardinality v)

(* --- Figure 1 sample --- *)

let test_figure1_demographic_ground_set () =
  let v = S.figure1 () in
  (* The paper: RT'_1 for (data, demographic) has four ground terms,
     including address and gender. *)
  let ground = V.ground_set v ~attr:"data" ~value:"demographic" in
  check_int "four ground terms" 4 (List.length ground);
  check_bool "address in" true (List.mem "address" ground);
  check_bool "gender in" true (List.mem "gender" ground)

let test_figure1_gender_is_ground () =
  let v = S.figure1 () in
  check_bool "gender ground" true (V.is_ground v ~attr:"data" ~value:"gender");
  check_bool "demographic composite" false (V.is_ground v ~attr:"data" ~value:"demographic")

let test_figure1_equivalences () =
  let v = S.figure1 () in
  (* RT2=(data,address) and RT3=(data,gender) are equivalent to RT1. *)
  check_bool "address ~ demographic" true
    (V.equivalent_values v ~attr:"data" "address" "demographic");
  check_bool "gender ~ demographic" true
    (V.equivalent_values v ~attr:"data" "gender" "demographic");
  check_bool "address !~ gender" false (V.equivalent_values v ~attr:"data" "address" "gender")

let test_figure1_routine_covers_prescription_referral () =
  let v = S.figure1 () in
  let ground = V.ground_set v ~attr:"data" ~value:"routine" in
  check_bool "prescription" true (List.mem "prescription" ground);
  check_bool "referral" true (List.mem "referral" ground);
  check_bool "psychiatry outside routine" false (List.mem "psychiatry" ground)

let test_figure1_psychiatrist_under_physician () =
  let v = S.figure1 () in
  check_bool "psychiatrist is a physician" true
    (V.subsumes_value v ~attr:"authorized" ~ancestor:"physician" ~descendant:"psychiatrist");
  check_bool "doctor distinct from psychiatrist" false
    (V.equivalent_values v ~attr:"authorized" "doctor" "psychiatrist")

let test_figure1_purposes () =
  let v = S.figure1 () in
  let ground = V.ground_set v ~attr:"purpose" ~value:"administering-healthcare" in
  check_strings "broad purpose grounds" [ "treatment"; "registration"; "billing" ] ground

let test_hospital_vocab_sane () =
  let v = S.hospital () in
  check_strings "attrs" [ "authorized"; "data"; "purpose" ] (V.attributes v);
  check_bool "deep role" true
    (V.subsumes_value v ~attr:"authorized" ~ancestor:"clinical-staff" ~descendant:"head-nurse");
  check_bool "x-ray under imaging" true
    (V.subsumes_value v ~attr:"data" ~ancestor:"imaging" ~descendant:"x-ray")

let test_hospital_vocab_structure () =
  let v = S.hospital () in
  let data = V.taxonomy v "data" in
  check_bool "deeper than figure1" true (T.depth data >= 4);
  check_int "imaging has 3 leaves" 3 (List.length (T.leaves_under data "imaging"));
  let purpose = V.taxonomy v "purpose" in
  check_bool "treatment under care-delivery" true
    (T.subsumes purpose ~ancestor:"care-delivery" ~descendant:"treatment");
  check_bool "billing under payment" true
    (T.subsumes purpose ~ancestor:"payment" ~descendant:"billing");
  let roles = V.taxonomy v "authorized" in
  check_bool "auditor in oversight" true
    (T.subsumes roles ~ancestor:"oversight" ~descendant:"auditor")

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_pp_smoke () =
  let v = S.figure1 () in
  let s = Fmt.str "%a" V.pp v in
  check_bool "pp mentions demographic" true (contains s "demographic")

let () =
  Alcotest.run "vocabulary"
    [ ( "taxonomy",
        [ Alcotest.test_case "create/attr" `Quick test_create_and_attr;
          Alcotest.test_case "duplicate rejected" `Quick test_duplicate_value_rejected;
          Alcotest.test_case "mem" `Quick test_mem;
          Alcotest.test_case "is_ground" `Quick test_is_ground;
          Alcotest.test_case "unknown raises" `Quick test_unknown_value_raises;
          Alcotest.test_case "children" `Quick test_children;
          Alcotest.test_case "leaves_under" `Quick test_leaves_under;
          Alcotest.test_case "subsumes" `Quick test_subsumes;
          Alcotest.test_case "equivalent" `Quick test_equivalent;
          Alcotest.test_case "all/ground values" `Quick test_all_and_ground_values;
          Alcotest.test_case "size/depth" `Quick test_size_depth;
          Alcotest.test_case "parent/path" `Quick test_parent_and_path;
        ] );
      ( "vocab",
        [ Alcotest.test_case "duplicate attribute" `Quick test_vocab_add_duplicate;
          Alcotest.test_case "attributes" `Quick test_vocab_attributes;
          Alcotest.test_case "unknown attribute" `Quick test_vocab_unknown_attr;
          Alcotest.test_case "foreign values ground" `Quick test_vocab_foreign_values_are_ground;
          Alcotest.test_case "foreign equivalence" `Quick test_vocab_equivalence_foreign;
          Alcotest.test_case "cardinality" `Quick test_vocab_cardinality;
        ] );
      ( "figure1",
        [ Alcotest.test_case "demographic ground set" `Quick test_figure1_demographic_ground_set;
          Alcotest.test_case "gender ground" `Quick test_figure1_gender_is_ground;
          Alcotest.test_case "equivalences" `Quick test_figure1_equivalences;
          Alcotest.test_case "routine covers rx+referral" `Quick
            test_figure1_routine_covers_prescription_referral;
          Alcotest.test_case "psychiatrist under physician" `Quick
            test_figure1_psychiatrist_under_physician;
          Alcotest.test_case "broad purpose" `Quick test_figure1_purposes;
          Alcotest.test_case "hospital vocab" `Quick test_hospital_vocab_sane;
          Alcotest.test_case "hospital structure" `Quick test_hospital_vocab_structure;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        ] );
    ]
