(* Tests for the human-review queue between Prune and adoption. *)

module Rev = Prima_core.Review
module Ref = Prima_core.Refinement
module P = Prima_core.Policy
module R = Prima_core.Rule
module S = Workload.Scenario

let vocab = S.vocab ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let practice () = Prima_core.Filter.run (S.table1_audit_policy ())

let report () =
  Ref.run_epoch
    ~config:{ Ref.default_config with Ref.acceptance = Ref.Reject_all }
    ~vocab ~p_ps:(S.policy_store ()) ~p_al:(S.table1_audit_policy ()) ()

let test_submit_collects_evidence () =
  let queue = Rev.create () in
  let item = Rev.submit queue ~practice:(practice ()) (S.expected_pattern ()) in
  check_int "five occurrences" 5 item.Rev.evidence.Rev.occurrences;
  check_int "three users" 3 (List.length item.Rev.evidence.Rev.distinct_users);
  check_bool "time span" true
    (item.Rev.evidence.Rev.first_seen = Some 3 && item.Rev.evidence.Rev.last_seen = Some 10);
  check_bool "pending" true (item.Rev.state = Rev.Pending)

let test_submit_dedupes () =
  let queue = Rev.create () in
  let a = Rev.submit queue ~practice:(practice ()) (S.expected_pattern ()) in
  let b = Rev.submit queue ~practice:(practice ()) (S.expected_pattern ()) in
  check_int "same item" a.Rev.id b.Rev.id;
  check_int "one item total" 1 (List.length (Rev.items queue))

let test_submit_epoch () =
  let queue = Rev.create () in
  let items = Rev.submit_epoch queue ~practice:(practice ()) (report ()) in
  check_int "one useful pattern queued" 1 (List.length items);
  check_int "pending" 1 (List.length (Rev.pending queue))

let test_decide_lifecycle () =
  let queue = Rev.create () in
  let item = Rev.submit queue ~practice:(practice ()) (S.expected_pattern ()) in
  (match Rev.decide queue ~id:item.Rev.id ~by:"privacy-officer" Rev.Approved with
  | Ok decided -> check_bool "decided" true (decided.Rev.state <> Rev.Pending)
  | Error e -> Alcotest.fail e);
  (* second decision is refused *)
  (match Rev.decide queue ~id:item.Rev.id ~by:"someone-else" (Rev.Rejected "changed mind") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "re-decision allowed");
  (* unknown id *)
  match Rev.decide queue ~id:999 ~by:"x" Rev.Approved with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown id decided"

let test_partitions () =
  let queue = Rev.create () in
  let practice = practice () in
  let p1 = S.expected_pattern () in
  let p2 = R.of_assoc [ ("data", "psychiatry"); ("purpose", "treatment"); ("authorized", "doctor") ] in
  let p3 = R.of_assoc [ ("data", "prescription"); ("purpose", "billing"); ("authorized", "clerk") ] in
  let i1 = Rev.submit queue ~practice p1 in
  let i2 = Rev.submit queue ~practice p2 in
  let i3 = Rev.submit queue ~practice p3 in
  ignore (Rev.decide queue ~id:i1.Rev.id ~by:"po" Rev.Approved);
  ignore (Rev.decide queue ~id:i2.Rev.id ~by:"po" (Rev.Rejected "reserved to psychiatrists"));
  ignore (Rev.decide queue ~id:i3.Rev.id ~by:"po" (Rev.Investigate "check with billing"));
  check_int "approved" 1 (List.length (Rev.approved_patterns queue));
  check_int "rejected" 1 (List.length (Rev.rejected_patterns queue));
  check_int "investigating" 1 (List.length (Rev.under_investigation queue));
  check_int "none pending" 0 (List.length (Rev.pending queue))

let test_acceptance_integration () =
  (* Round 1: refinement proposes, nothing adopted; officer approves; round
     2 adopts exactly the approved pattern. *)
  let queue = Rev.create () in
  let p_ps = S.policy_store () in
  let p_al = S.table1_audit_policy () in
  let review_config acceptance = { Ref.default_config with Ref.acceptance } in
  let round1 = Ref.run_epoch ~config:(review_config (Rev.acceptance queue)) ~vocab ~p_ps ~p_al () in
  check_int "round 1 adopts nothing" 0 (List.length round1.Ref.accepted);
  let items = Rev.submit_epoch queue ~practice:(Prima_core.Filter.run p_al) round1 in
  List.iter
    (fun (i : Rev.item) -> ignore (Rev.decide queue ~id:i.Rev.id ~by:"po" Rev.Approved))
    items;
  let round2 = Ref.run_epoch ~config:(review_config (Rev.acceptance queue)) ~vocab ~p_ps ~p_al () in
  check_int "round 2 adopts the approved pattern" 1 (List.length round2.Ref.accepted);
  check_bool "the right one" true
    (R.equal_syntactic (List.hd round2.Ref.accepted) (S.expected_pattern ()))

let test_pp_smoke () =
  let queue = Rev.create () in
  let item = Rev.submit queue ~practice:(practice ()) (S.expected_pattern ()) in
  ignore (Rev.decide queue ~id:item.Rev.id ~by:"po" Rev.Approved);
  let s = Fmt.str "%a" Rev.pp queue in
  check_bool "mentions approval" true
    (let nh = String.length s in
     let needle = "approved by po" in
     let nn = String.length needle in
     let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
     go 0)

let () =
  Alcotest.run "review"
    [ ( "queue",
        [ Alcotest.test_case "evidence" `Quick test_submit_collects_evidence;
          Alcotest.test_case "dedupes" `Quick test_submit_dedupes;
          Alcotest.test_case "submit epoch" `Quick test_submit_epoch;
          Alcotest.test_case "decide lifecycle" `Quick test_decide_lifecycle;
          Alcotest.test_case "partitions" `Quick test_partitions;
          Alcotest.test_case "acceptance integration" `Quick test_acceptance_integration;
          Alcotest.test_case "pp" `Quick test_pp_smoke;
        ] );
    ]
