(* Property-based tests (QCheck) on the core invariants: grounding,
   range algebra, coverage bounds and monotonicity, miner agreement,
   store roundtrips and SQL literal quoting. *)

let vocab = Vocabulary.Samples.figure1 ()

module R = Prima_core.Rule
module P = Prima_core.Policy
module Range = Prima_core.Range
module C = Prima_core.Coverage

(* --- generators --- *)

let data_values =
  Vocabulary.Taxonomy.all_values (Vocabulary.Vocab.taxonomy vocab "data")

let purpose_values =
  Vocabulary.Taxonomy.all_values (Vocabulary.Vocab.taxonomy vocab "purpose")

let role_values =
  Vocabulary.Taxonomy.all_values (Vocabulary.Vocab.taxonomy vocab "authorized")

let gen_value_of values = QCheck2.Gen.oneofl values

let gen_rule : R.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* d = gen_value_of data_values in
  let* p = gen_value_of purpose_values in
  let* a = gen_value_of role_values in
  (* Sometimes drop attributes to vary cardinality. *)
  let* keep_p = bool and* keep_a = bool in
  let terms =
    [ ("data", d) ]
    @ (if keep_p then [ ("purpose", p) ] else [])
    @ if keep_a then [ ("authorized", a) ] else []
  in
  return (R.of_assoc terms)

let gen_policy : P.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* rules = list_size (int_range 0 8) gen_rule in
  return (P.make rules)

let print_rule r = R.to_string r
let print_policy p = Fmt.str "%a" P.pp p

(* --- grounding properties --- *)

let prop_ground_rules_all_ground =
  QCheck2.Test.make ~name:"ground rules are ground" ~count:300
    ~print:print_rule gen_rule (fun rule ->
      List.for_all (R.is_ground vocab) (R.ground_rules vocab rule))

let prop_ground_rules_cardinality =
  QCheck2.Test.make ~name:"grounding size = product of term ground sets" ~count:300
    ~print:print_rule gen_rule (fun rule ->
      let expected =
        List.fold_left
          (fun acc term ->
            acc * List.length (Prima_core.Rule_term.ground_set vocab term))
          1 (R.terms rule)
      in
      List.length (R.ground_rules vocab rule) = expected)

let prop_ground_rules_equivalent_to_parent =
  QCheck2.Test.make ~name:"every ground instance is equivalent to its rule (Def 6)"
    ~count:300 ~print:print_rule gen_rule (fun rule ->
      List.for_all (fun g -> R.equivalent vocab g rule) (R.ground_rules vocab rule))

let prop_grounding_idempotent =
  QCheck2.Test.make ~name:"grounding a ground rule is the identity" ~count:300
    ~print:print_rule gen_rule (fun rule ->
      List.for_all
        (fun g -> R.ground_rules vocab g = [ g ])
        (R.ground_rules vocab rule))

(* --- range algebra --- *)

let prop_range_union =
  QCheck2.Test.make ~name:"range of union = union of ranges" ~count:200
    ~print:(fun (a, b) -> print_policy a ^ " / " ^ print_policy b)
    QCheck2.Gen.(pair gen_policy gen_policy)
    (fun (a, b) ->
      Range.cardinality (Range.of_policy vocab (P.union a b))
      = Range.cardinality
          (Range.union (Range.of_policy vocab a) (Range.of_policy vocab b)))

let prop_range_covers_members =
  QCheck2.Test.make ~name:"range covers every rule of its policy" ~count:200
    ~print:print_policy gen_policy (fun p ->
      let range = Range.of_policy vocab p in
      List.for_all (Range.covers vocab range) (P.rules p))

(* --- coverage properties --- *)

let prop_coverage_unit_interval =
  QCheck2.Test.make ~name:"coverage lies in [0,1]" ~count:200
    ~print:(fun (a, b) -> print_policy a ^ " / " ^ print_policy b)
    QCheck2.Gen.(pair gen_policy gen_policy)
    (fun (a, b) ->
      let set = (C.compute vocab ~p_x:a ~p_y:b).C.coverage in
      let bag = (C.compute_bag vocab ~p_x:a ~p_y:b).C.coverage in
      set >= 0. && set <= 1. && bag >= 0. && bag <= 1.)

let prop_coverage_reflexive =
  QCheck2.Test.make ~name:"every policy covers itself" ~count:200 ~print:print_policy
    gen_policy (fun p ->
      (C.compute vocab ~p_x:p ~p_y:p).C.coverage = 1.0
      && (C.compute_bag vocab ~p_x:p ~p_y:p).C.coverage = 1.0)

let prop_coverage_monotone_in_x =
  QCheck2.Test.make ~name:"adding rules to P_x never lowers coverage" ~count:200
    ~print:(fun ((a, b), r) ->
      print_policy a ^ " / " ^ print_policy b ^ " + " ^ print_rule r)
    QCheck2.Gen.(pair (pair gen_policy gen_policy) gen_rule)
    (fun ((a, b), extra) ->
      let before = (C.compute vocab ~p_x:a ~p_y:b).C.coverage in
      let after = (C.compute vocab ~p_x:(P.add_rule a extra) ~p_y:b).C.coverage in
      after >= before)

let prop_coverage_complete_iff_one =
  QCheck2.Test.make ~name:"complete coverage iff ratio is 1" ~count:200
    ~print:(fun (a, b) -> print_policy a ^ " / " ^ print_policy b)
    QCheck2.Gen.(pair gen_policy gen_policy)
    (fun (a, b) ->
      let stats = C.compute vocab ~p_x:a ~p_y:b in
      C.complete vocab ~p_x:a ~p_y:b = (stats.C.coverage = 1.0))

(* --- prune properties --- *)

let prop_prune_result_disjoint_from_store =
  QCheck2.Test.make ~name:"pruned patterns are never fully covered by the store"
    ~count:200
    ~print:(fun (p, rules) ->
      print_policy p ^ " / " ^ String.concat "; " (List.map print_rule rules))
    QCheck2.Gen.(pair gen_policy (list_size (int_range 0 5) gen_rule))
    (fun (p_ps, patterns) ->
      let useful = Prima_core.Prune.run vocab ~patterns ~p_ps in
      let attrs =
        List.sort_uniq String.compare
          (List.concat_map
             (fun r -> List.map Prima_core.Rule_term.attr (R.terms r))
             patterns)
      in
      let range =
        if patterns = [] then Range.empty
        else Range.of_policy vocab (P.project p_ps ~attrs)
      in
      List.for_all (fun r -> not (Range.covers vocab range r)) useful)

(* --- miner agreement --- *)

let gen_transactions : Mining.Transactions.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let item i = { Mining.Itemset.attr = "x"; value = string_of_int i } in
  let* rows =
    list_size (int_range 1 60)
      (let* ids = list_size (int_range 1 5) (int_range 0 7) in
       return (List.map item ids))
  in
  return (Mining.Transactions.of_item_lists rows)

let prop_apriori_eq_fp_growth =
  QCheck2.Test.make ~name:"apriori and fp-growth agree" ~count:60
    ~print:(fun tx -> Printf.sprintf "<%d transactions>" (Mining.Transactions.count tx))
    gen_transactions (fun tx ->
      let norm l =
        List.map
          (fun (f : Mining.Apriori.frequent) ->
            (Mining.Itemset.to_list f.itemset, f.support))
          (Mining.Fp_growth.normalize l)
      in
      norm (Mining.Apriori.mine tx ~min_support:3)
      = norm (Mining.Fp_growth.mine tx ~min_support:3))

let prop_apriori_antimonotone =
  QCheck2.Test.make ~name:"support is anti-monotone in itemset size" ~count:60
    ~print:(fun tx -> Printf.sprintf "<%d transactions>" (Mining.Transactions.count tx))
    gen_transactions (fun tx ->
      let frequents = Mining.Apriori.mine tx ~min_support:2 in
      List.for_all
        (fun (f : Mining.Apriori.frequent) ->
          List.for_all
            (fun sub ->
              Mining.Transactions.support tx sub >= f.support)
            (Mining.Itemset.immediate_subsets f.itemset))
        frequents)

(* --- audit store roundtrip --- *)

let gen_entry : Hdb.Audit_schema.entry QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* time = int_range 0 100000 in
  let* op = oneofl [ Hdb.Audit_schema.Allow; Hdb.Audit_schema.Disallow ] in
  let* status = oneofl [ Hdb.Audit_schema.Regular; Hdb.Audit_schema.Exception_based ] in
  let* user = string_size ~gen:(char_range 'a' 'z') (int_range 1 8) in
  let* data = gen_value_of data_values in
  let* purpose = gen_value_of purpose_values in
  let* authorized = gen_value_of role_values in
  return (Hdb.Audit_schema.entry ~time ~op ~user ~data ~purpose ~authorized ~status)

let prop_store_roundtrip =
  QCheck2.Test.make ~name:"audit store roundtrips entries" ~count:100
    ~print:(fun es -> Printf.sprintf "<%d entries>" (List.length es))
    QCheck2.Gen.(list_size (int_range 0 50) gen_entry)
    (fun entries ->
      let store = Hdb.Audit_store.of_entries entries in
      Hdb.Audit_store.to_list store = entries)

let prop_entry_rule_roundtrip =
  QCheck2.Test.make ~name:"entry -> rule -> entry" ~count:200
    ~print:(fun e -> Fmt.str "%a" Hdb.Audit_schema.pp e)
    gen_entry (fun e ->
      Audit_mgmt.To_policy.entry_of_rule (Audit_mgmt.To_policy.rule_of_entry e) = Some e)

(* --- SQL literal quoting --- *)

let prop_sql_string_literal_roundtrip =
  QCheck2.Test.make ~name:"string literals roundtrip through lexer" ~count:300
    ~print:(fun s -> s)
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 30))
    (fun s ->
      match Relational.Sql_parser.parse_expr_string
              (Relational.Value.to_sql_literal (Relational.Value.Str s))
      with
      | Relational.Sql_ast.Lit (Relational.Value.Str s') -> String.equal s s'
      | _ -> false)

let prop_like_percent_matches_all =
  QCheck2.Test.make ~name:"LIKE '%' matches everything" ~count:200 ~print:(fun s -> s)
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 20))
    (fun s -> Relational.Expr.like_match ~pattern:"%" s)

let prop_like_self_matches =
  QCheck2.Test.make ~name:"a %%-free pattern matches exactly itself" ~count:200
    ~print:(fun s -> s)
    QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 15))
    (fun s -> Relational.Expr.like_match ~pattern:s s)

(* --- vec behaves like list --- *)

let prop_vec_like_list =
  QCheck2.Test.make ~name:"vec of_list/to_list identity" ~count:200
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck2.Gen.(list int)
    (fun l ->
      Relational.Vec.to_list (Relational.Vec.of_list l) = l
      && Relational.Vec.length (Relational.Vec.of_list l) = List.length l)

(* --- generalization preserves ranges --- *)

let prop_generalize_preserves_range =
  QCheck2.Test.make ~name:"generalize preserves the range" ~count:100
    ~print:print_policy gen_policy (fun p ->
      let before = Range.of_policy vocab p in
      let after = Range.of_policy vocab (Prima_core.Analysis.generalize vocab p) in
      Range.cardinality before = Range.cardinality after
      && Range.subset before after && Range.subset after before)

let prop_minimize_preserves_range =
  QCheck2.Test.make ~name:"minimize preserves the range" ~count:100 ~print:print_policy
    gen_policy (fun p ->
      let before = Range.of_policy vocab p in
      let minimized = Prima_core.Analysis.minimize vocab p in
      let after = Range.of_policy vocab minimized in
      Range.cardinality before = Range.cardinality after
      && P.cardinality minimized <= P.cardinality p)

(* --- persistence roundtrips --- *)

let prop_policy_file_roundtrip =
  QCheck2.Test.make ~name:"policy file roundtrips" ~count:150 ~print:print_policy
    gen_policy (fun p ->
      let p' = Prima_core.Policy_file.of_string (Prima_core.Policy_file.to_string p) in
      List.length (P.rules p) = List.length (P.rules p')
      && List.for_all2 R.equal_syntactic (P.rules p) (P.rules p'))

let prop_audit_csv_roundtrip =
  QCheck2.Test.make ~name:"audit csv roundtrips nasty strings" ~count:150
    ~print:(fun es -> Printf.sprintf "<%d entries>" (List.length es))
    QCheck2.Gen.(
      list_size (int_range 0 20)
        (let* time = int_range 0 1000 in
         let* user = string_size ~gen:printable (int_range 1 12) in
         let* data = string_size ~gen:printable (int_range 1 12) in
         return
           (Hdb.Audit_schema.entry ~time ~op:Hdb.Audit_schema.Allow ~user ~data
              ~purpose:"treatment" ~authorized:"nurse"
              ~status:Hdb.Audit_schema.Regular)))
    (fun entries ->
      (* CSV cannot carry CR (normalised at record boundaries); skip those. *)
      let has_cr (e : Hdb.Audit_schema.entry) =
        String.contains e.Hdb.Audit_schema.user '\r'
        || String.contains e.Hdb.Audit_schema.data '\r'
      in
      List.exists has_cr entries
      || Hdb.Audit_csv.of_string (Hdb.Audit_csv.to_string entries) = entries)

(* --- xml roundtrip --- *)

let gen_xml : Treedata.Xml.node QCheck2.Gen.t =
  let open QCheck2.Gen in
  let gen_name = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  let gen_text = string_size ~gen:(char_range 'a' 'z') (int_range 0 10) in
  let rec node depth =
    let* tag = gen_name in
    let* attributes =
      list_size (int_range 0 2)
        (let* k = gen_name in
         let* v = gen_text in
         return (k, v))
    in
    (* attribute names must be unique for roundtripping *)
    let attributes =
      List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) attributes
    in
    let* children =
      if depth = 0 then return [] else list_size (int_range 0 3) (node (depth - 1))
    in
    let* text = gen_text in
    return (Treedata.Xml.element ~attributes ~text tag children)
  in
  node 3

let prop_xml_roundtrip =
  QCheck2.Test.make ~name:"xml print/parse roundtrip" ~count:150
    ~print:Treedata.Xml.to_string gen_xml (fun node ->
      Treedata.Xml.equal node (Treedata.Xml.parse (Treedata.Xml.to_string node)))

(* --- index pushdown equivalence --- *)

let prop_index_pushdown_equivalent =
  QCheck2.Test.make ~name:"index probe matches full scan" ~count:100
    ~print:(fun rows -> Printf.sprintf "<%d rows>" (List.length rows))
    QCheck2.Gen.(
      list_size (int_range 0 40)
        (pair (string_size ~gen:(char_range 'a' 'c') (int_range 1 1)) (int_range 0 5)))
    (fun rows ->
      let open Relational in
      let build ~indexed =
        let e = Engine.create () in
        ignore (Engine.exec e "CREATE TABLE t (k TEXT, v INTEGER)");
        if indexed then Table.create_index (Engine.table e "t") ~column_name:"k";
        List.iter
          (fun (k, v) -> Engine.insert_row e ~table:"t" [ Value.Str k; Value.Int v ])
          rows;
        e
      in
      let plain = build ~indexed:false and indexed = build ~indexed:true in
      List.for_all
        (fun probe ->
          let sql = Printf.sprintf "SELECT v FROM t WHERE k = '%s' AND v < 4" probe in
          (Engine.query plain sql).Executor.rows = (Engine.query indexed sql).Executor.rows)
        [ "a"; "b"; "c"; "z" ])

(* --- enforcement security invariant --- *)

(* Whatever the context and projection, an enforced (non-break-glass) answer
   never contains a non-NULL value from a column whose category the context
   is not permitted to see. *)
let prop_enforcement_never_leaks =
  let columns = [ "referral"; "psychiatry"; "address"; "gender" ] in
  let roles = [ "nurse"; "clerk"; "psychiatrist"; "doctor" ] in
  let purposes = [ "treatment"; "billing"; "registration" ] in
  QCheck2.Test.make ~name:"enforcement never leaks a forbidden cell" ~count:150
    ~print:(fun (cols, role, purpose) ->
      Printf.sprintf "SELECT %s AS %s FOR %s" (String.concat "," cols) role purpose)
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 4) (oneofl columns))
        (oneofl roles) (oneofl purposes))
    (fun (cols, role, purpose) ->
      let control = Hdb.Control_center.create ~vocab () in
      ignore
        (Hdb.Control_center.admin_exec control
           "CREATE TABLE recs (patient TEXT, referral TEXT, psychiatry TEXT, address TEXT, gender TEXT)");
      ignore
        (Hdb.Control_center.admin_exec control
           "INSERT INTO recs VALUES ('p1', 'REF', 'PSY', 'ADDR', 'GEN'), ('p2', 'REF2', 'PSY2', 'ADDR2', 'GEN2')");
      Hdb.Control_center.set_patient_column control ~table:"recs" ~column:"patient";
      List.iter
        (fun c -> Hdb.Control_center.map_column control ~table:"recs" ~column:c ~category:c)
        columns;
      Hdb.Control_center.permit control ~data:"routine" ~purpose:"treatment"
        ~authorized:"nurse";
      Hdb.Control_center.permit control ~data:"demographic" ~purpose:"billing"
        ~authorized:"clerk";
      Hdb.Control_center.permit control ~data:"psychiatry" ~purpose:"treatment"
        ~authorized:"psychiatrist";
      let sql = "SELECT " ^ String.concat ", " cols ^ " FROM recs" in
      let forbidden_values =
        List.filteri (fun _ c ->
            not
              (Hdb.Privacy_rules.permits
                 (Hdb.Control_center.rules control)
                 ~data:c ~purpose ~authorized:role))
          cols
        |> List.concat_map (fun c ->
               match c with
               | "referral" -> [ "REF"; "REF2" ]
               | "psychiatry" -> [ "PSY"; "PSY2" ]
               | "address" -> [ "ADDR"; "ADDR2" ]
               | _ -> [ "GEN"; "GEN2" ])
      in
      match Hdb.Control_center.query control ~user:"u" ~role ~purpose sql with
      | Error _ -> true (* denial never leaks *)
      | Ok outcome ->
        List.for_all
          (fun row ->
            List.for_all
              (fun v ->
                match v with
                | Relational.Value.Str s -> not (List.mem s forbidden_values)
                | _ -> true)
              (Relational.Row.to_list row))
          outcome.Hdb.Enforcement.result.Relational.Executor.rows)

(* --- federation is a sorted permutation --- *)

let prop_federation_sorted_permutation =
  QCheck2.Test.make ~name:"consolidated view is a sorted permutation" ~count:100
    ~print:(fun sites ->
      Printf.sprintf "<%d sites>" (List.length sites))
    QCheck2.Gen.(
      list_size (int_range 0 4) (list_size (int_range 0 15) (int_range 0 50)))
    (fun site_times ->
      let sites =
        List.mapi
          (fun i times ->
            let site = Audit_mgmt.Site.create ~name:(Printf.sprintf "s%d" i) () in
            List.iter
              (fun time ->
                Audit_mgmt.Site.ingest_entry site
                  (Hdb.Audit_schema.entry ~time ~op:Hdb.Audit_schema.Allow
                     ~user:(Printf.sprintf "u%d" i) ~data:"referral" ~purpose:"treatment"
                     ~authorized:"nurse" ~status:Hdb.Audit_schema.Regular))
              times;
            site)
          site_times
      in
      let merged = Audit_mgmt.Federation.consolidated (Audit_mgmt.Federation.of_sites sites) in
      let times = List.map (fun e -> e.Hdb.Audit_schema.time) merged in
      let all_times = List.concat site_times in
      List.sort Int.compare times = times
      && List.sort Int.compare times = List.sort Int.compare all_times)

(* --- trend windows partition the timed entries --- *)

let gen_timed_policy : P.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* rows =
    list_size (int_range 1 30)
      (let* time = int_range 0 100 in
       let* d = gen_value_of data_values in
       return [ ("time", string_of_int time); ("data", d) ])
  in
  return (P.of_assoc_list rows)

let prop_trend_partitions =
  QCheck2.Test.make ~name:"trend windows partition the entries" ~count:150
    ~print:print_policy gen_timed_policy (fun p_al ->
      let p_ps = P.of_assoc_list [ [ ("data", "data") ] ] in
      let points = Prima_core.Trend.compute vocab ~p_ps ~p_al ~window:7 () in
      let total =
        List.fold_left (fun acc p -> acc + p.Prima_core.Trend.entries) 0 points
      in
      let disjoint =
        let rec go = function
          | a :: (b :: _ as rest) ->
            a.Prima_core.Trend.window_end < b.Prima_core.Trend.window_start && go rest
          | _ -> true
        in
        go points
      in
      total = P.cardinality p_al && disjoint)

let suite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "properties"
    [ suite "grounding"
        [ prop_ground_rules_all_ground; prop_ground_rules_cardinality;
          prop_ground_rules_equivalent_to_parent; prop_grounding_idempotent ];
      suite "range" [ prop_range_union; prop_range_covers_members ];
      suite "coverage"
        [ prop_coverage_unit_interval; prop_coverage_reflexive;
          prop_coverage_monotone_in_x; prop_coverage_complete_iff_one ];
      suite "prune" [ prop_prune_result_disjoint_from_store ];
      suite "mining" [ prop_apriori_eq_fp_growth; prop_apriori_antimonotone ];
      suite "stores" [ prop_store_roundtrip; prop_entry_rule_roundtrip ];
      suite "sql" [ prop_sql_string_literal_roundtrip; prop_like_percent_matches_all;
                    prop_like_self_matches ];
      suite "vec" [ prop_vec_like_list ];
      suite "analysis" [ prop_generalize_preserves_range; prop_minimize_preserves_range ];
      suite "persistence" [ prop_policy_file_roundtrip; prop_audit_csv_roundtrip ];
      suite "xml" [ prop_xml_roundtrip ];
      suite "index" [ prop_index_pushdown_equivalent ];
      suite "enforcement" [ prop_enforcement_never_leaks ];
      suite "federation" [ prop_federation_sorted_permutation ];
      suite "trend" [ prop_trend_partitions ];
    ]
