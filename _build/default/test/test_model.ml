(* Tests for the formal model: RuleTerm (Defs 1-4), Rule (Defs 5-6),
   Policy (Def 7) and Range (Def 8). *)

module RT = Prima_core.Rule_term
module R = Prima_core.Rule
module P = Prima_core.Policy
module Range = Prima_core.Range

let vocab = Vocabulary.Samples.figure1 ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let rt attr value = RT.make ~attr ~value

(* --- RuleTerm --- *)

let test_rt_accessors () =
  let t = rt "data" "demographic" in
  Alcotest.(check string) "attr" "data" (RT.attr t);
  Alcotest.(check string) "value" "demographic" (RT.value t)

let test_rt_ground () =
  check_bool "gender ground" true (RT.is_ground vocab (rt "data" "gender"));
  check_bool "demographic composite" false (RT.is_ground vocab (rt "data" "demographic"));
  check_bool "foreign attr ground" true (RT.is_ground vocab (rt "user" "mark"))

let test_rt_ground_set () =
  (* Definition 3: every composite term grounds to a non-empty set. *)
  let ground = RT.ground_set vocab (rt "data" "demographic") in
  check_int "four terms" 4 (List.length ground);
  check_bool "all ground" true (List.for_all (RT.is_ground vocab) ground);
  check_bool "self for leaves" true
    (RT.ground_set vocab (rt "data" "gender") = [ rt "data" "gender" ])

let test_rt_equivalence () =
  (* Definition 4 and the paper's worked example. *)
  check_bool "RT2 ~ RT1" true
    (RT.equivalent vocab (rt "data" "address") (rt "data" "demographic"));
  check_bool "RT3 ~ RT1" true
    (RT.equivalent vocab (rt "data" "gender") (rt "data" "demographic"));
  check_bool "RT2 !~ RT3" false (RT.equivalent vocab (rt "data" "address") (rt "data" "gender"));
  check_bool "cross attribute never" false
    (RT.equivalent vocab (rt "data" "gender") (rt "purpose" "treatment"))

let test_rt_compare_total () =
  check_bool "orders by attr first" true (RT.compare (rt "a" "z") (rt "b" "a") < 0);
  check_bool "then value" true (RT.compare (rt "a" "a") (rt "a" "b") < 0);
  check_int "reflexive" 0 (RT.compare (rt "a" "a") (rt "a" "a"))

(* --- Rule --- *)

let nurse_referral_treatment =
  R.of_assoc [ ("data", "referral"); ("purpose", "treatment"); ("authorized", "nurse") ]

let test_rule_requires_term () =
  Alcotest.check_raises "empty rule"
    (Invalid_argument "Rule.make: a rule needs at least one term") (fun () ->
      ignore (R.make []))

let test_rule_cardinality () =
  check_int "three terms" 3 (R.cardinality nurse_referral_treatment)

let test_rule_canonical_order () =
  let r1 = R.of_assoc [ ("purpose", "treatment"); ("data", "referral"); ("authorized", "nurse") ] in
  check_bool "order independent" true (R.equal_syntactic r1 nurse_referral_treatment)

let test_rule_dedupes_terms () =
  let r = R.of_assoc [ ("data", "x"); ("data", "x") ] in
  check_int "dedup" 1 (R.cardinality r)

let test_rule_find_attr () =
  Alcotest.(check (option string)) "found" (Some "nurse")
    (R.find_attr nurse_referral_treatment "authorized");
  Alcotest.(check (option string)) "absent" None (R.find_attr nurse_referral_treatment "user")

let test_rule_project () =
  let audit =
    R.of_assoc
      [ ("time", "3"); ("op", "1"); ("user", "mark"); ("data", "referral");
        ("purpose", "registration"); ("authorized", "nurse"); ("status", "0") ]
  in
  match R.project audit ~attrs:[ "data"; "purpose"; "authorized" ] with
  | Some projected ->
    check_int "three left" 3 (R.cardinality projected);
    Alcotest.(check (option string)) "keeps data" (Some "referral") (R.find_attr projected "data")
  | None -> Alcotest.fail "projection lost everything"

let test_rule_project_to_nothing () =
  check_bool "none" true (R.project nurse_referral_treatment ~attrs:[ "user" ] = None)

let test_rule_ground_rules () =
  (* Corollary 1: (routine, treatment, nurse) grounds to 3 data leaves × 1 × 1. *)
  let composite =
    R.of_assoc [ ("data", "routine"); ("purpose", "treatment"); ("authorized", "nurse") ]
  in
  let ground = R.ground_rules vocab composite in
  check_int "three ground rules" 3 (List.length ground);
  check_bool "all ground" true (List.for_all (R.is_ground vocab) ground);
  check_bool "referral instance present" true
    (List.exists (R.equal_syntactic nurse_referral_treatment) ground)

let test_rule_ground_rules_product () =
  let composite = R.of_assoc [ ("data", "demographic"); ("purpose", "administering-healthcare") ] in
  check_int "4 x 3 product" 12 (List.length (R.ground_rules vocab composite))

let test_rule_equivalent () =
  (* Definition 6: same cardinality and termwise equivalence. *)
  let composite =
    R.of_assoc [ ("data", "routine"); ("purpose", "treatment"); ("authorized", "nurse") ]
  in
  check_bool "ground ~ composite" true (R.equivalent vocab nurse_referral_treatment composite);
  let two_terms = R.of_assoc [ ("data", "referral"); ("purpose", "treatment") ] in
  check_bool "different cardinality" false (R.equivalent vocab two_terms composite)

let test_rule_compact_string_no_attrs () =
  Alcotest.(check string) "all values in term order" "nurse:referral"
    (R.to_compact_string (R.of_assoc [ ("data", "referral"); ("authorized", "nurse") ]))

let test_rule_ground_rules_foreign_attrs () =
  (* Foreign attributes (user, time) ground to themselves: the 7-term audit
     rule grounds to exactly itself when its vocab terms are leaves. *)
  let audit =
    R.of_assoc
      [ ("time", "3"); ("op", "1"); ("user", "mark"); ("data", "referral");
        ("purpose", "registration"); ("authorized", "nurse"); ("status", "0") ]
  in
  check_int "single ground instance" 1 (List.length (R.ground_rules vocab audit));
  check_bool "itself" true
    (R.equal_syntactic (List.hd (R.ground_rules vocab audit)) audit)

let test_rule_compact_string () =
  Alcotest.(check string) "pattern format" "referral:registration:nurse"
    (R.to_compact_string
       ~attrs:[ "data"; "purpose"; "authorized" ]
       (R.of_assoc
          [ ("authorized", "nurse"); ("data", "referral"); ("purpose", "registration") ]))

(* --- Policy --- *)

let sample_policy () =
  P.of_assoc_list ~source:P.Policy_store
    [ [ ("data", "routine"); ("purpose", "treatment"); ("authorized", "nurse") ];
      [ ("data", "psychiatry"); ("purpose", "treatment"); ("authorized", "psychiatrist") ];
    ]

let test_policy_cardinality () = check_int "#P" 2 (P.cardinality (sample_policy ()))

let test_policy_is_ground () =
  check_bool "composite policy" false (P.is_ground vocab (sample_policy ()));
  let ground = P.of_assoc_list [ [ ("data", "gender") ] ] in
  check_bool "ground policy" true (P.is_ground vocab ground)

let test_policy_bag_semantics () =
  (* Definition 7 keeps duplicates: audit logs repeat rules. *)
  let rule = [ ("data", "gender") ] in
  let p = P.of_assoc_list [ rule; rule; rule ] in
  check_int "three occurrences" 3 (P.cardinality p);
  check_int "dedupe collapses" 1 (P.cardinality (P.dedupe p))

let test_policy_union_add () =
  let p = sample_policy () in
  let p' = P.add_rule p nurse_referral_treatment in
  check_int "added" 3 (P.cardinality p');
  check_int "union" 5 (P.cardinality (P.union p p'))

let test_policy_project () =
  let p =
    P.of_assoc_list [ [ ("time", "1"); ("data", "gender") ]; [ ("time", "2"); ("user", "x") ] ]
  in
  let projected = P.project p ~attrs:[ "data" ] in
  check_int "rule without data dropped" 1 (P.cardinality projected)

(* --- Range --- *)

let test_range_of_policy () =
  (* P_PS of the paper: 3 + 1 + 4 = 8 ground rules. *)
  let p = Workload.Scenario.policy_store () in
  let range = Range.of_policy vocab p in
  check_int "eight ground rules" 8 (Range.cardinality range)

let test_range_dedupes () =
  let p =
    P.of_assoc_list [ [ ("data", "demographic") ]; [ ("data", "address") ] ]
  in
  (* address ∈ ground(demographic): union must not double count. *)
  check_int "four distinct" 4 (Range.cardinality (Range.of_policy vocab p))

let test_range_set_operations () =
  let r1 = Range.of_rules vocab [ R.of_assoc [ ("data", "demographic") ] ] in
  let r2 = Range.of_rules vocab [ R.of_assoc [ ("data", "address") ] ] in
  check_int "intersection" 1 (Range.cardinality (Range.inter r1 r2));
  check_int "difference" 3 (Range.cardinality (Range.diff r1 r2));
  check_bool "subset" true (Range.subset r2 r1)

let test_range_covers_intersects () =
  let range = Range.of_rules vocab [ R.of_assoc [ ("data", "routine") ] ] in
  check_bool "covers leaf" true (Range.covers vocab range (R.of_assoc [ ("data", "referral") ]));
  check_bool "covers itself" true (Range.covers vocab range (R.of_assoc [ ("data", "routine") ]));
  check_bool "does not cover clinical" false
    (Range.covers vocab range (R.of_assoc [ ("data", "clinical") ]));
  check_bool "but intersects clinical" true
    (Range.intersects vocab range (R.of_assoc [ ("data", "clinical") ]))

let test_range_empty () =
  check_bool "empty" true (Range.is_empty Range.empty);
  check_int "zero" 0 (Range.cardinality (Range.of_rules vocab []))

let () =
  Alcotest.run "model"
    [ ( "rule-term",
        [ Alcotest.test_case "accessors" `Quick test_rt_accessors;
          Alcotest.test_case "groundness (Def 2)" `Quick test_rt_ground;
          Alcotest.test_case "ground set (Def 3)" `Quick test_rt_ground_set;
          Alcotest.test_case "equivalence (Def 4)" `Quick test_rt_equivalence;
          Alcotest.test_case "total order" `Quick test_rt_compare_total;
        ] );
      ( "rule",
        [ Alcotest.test_case "non-empty" `Quick test_rule_requires_term;
          Alcotest.test_case "cardinality (Def 5)" `Quick test_rule_cardinality;
          Alcotest.test_case "canonical order" `Quick test_rule_canonical_order;
          Alcotest.test_case "term dedup" `Quick test_rule_dedupes_terms;
          Alcotest.test_case "find_attr" `Quick test_rule_find_attr;
          Alcotest.test_case "project" `Quick test_rule_project;
          Alcotest.test_case "project to nothing" `Quick test_rule_project_to_nothing;
          Alcotest.test_case "grounding (Cor 1)" `Quick test_rule_ground_rules;
          Alcotest.test_case "grounding product" `Quick test_rule_ground_rules_product;
          Alcotest.test_case "equivalence (Def 6)" `Quick test_rule_equivalent;
          Alcotest.test_case "compact string" `Quick test_rule_compact_string;
          Alcotest.test_case "compact string (no attrs)" `Quick
            test_rule_compact_string_no_attrs;
          Alcotest.test_case "foreign attrs ground to self" `Quick
            test_rule_ground_rules_foreign_attrs;
        ] );
      ( "policy",
        [ Alcotest.test_case "cardinality (Def 7)" `Quick test_policy_cardinality;
          Alcotest.test_case "groundness" `Quick test_policy_is_ground;
          Alcotest.test_case "bag semantics" `Quick test_policy_bag_semantics;
          Alcotest.test_case "union/add" `Quick test_policy_union_add;
          Alcotest.test_case "project" `Quick test_policy_project;
        ] );
      ( "range",
        [ Alcotest.test_case "of P_PS (Def 8)" `Quick test_range_of_policy;
          Alcotest.test_case "dedupes overlaps" `Quick test_range_dedupes;
          Alcotest.test_case "set operations" `Quick test_range_set_operations;
          Alcotest.test_case "covers/intersects" `Quick test_range_covers_intersects;
          Alcotest.test_case "empty" `Quick test_range_empty;
        ] );
    ]
