(* Tests for Algorithms 2-6: Filter, dataAnalysis, extractPatterns, Prune and
   the Refinement pipeline, pinned to the Section 5 use case. *)

module F = Prima_core.Filter
module DA = Prima_core.Data_analysis
module EP = Prima_core.Extract_patterns
module Pr = Prima_core.Prune
module Ref = Prima_core.Refinement
module P = Prima_core.Policy
module R = Prima_core.Rule
module S = Workload.Scenario

let vocab = S.vocab ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let compact = R.to_compact_string ~attrs:Vocabulary.Audit_attrs.pattern

(* --- Filter (Algorithm 3) --- *)

let test_filter_keeps_exceptions () =
  let practice = F.run (S.table1_audit_policy ()) in
  (* t3, t4, t6, t7, t8, t9, t10 *)
  check_int "seven practice entries" 7 (P.cardinality practice)

let test_filter_drops_regular () =
  let practice = F.run (S.figure3_audit_policy ()) in
  check_int "three exceptions" 3 (P.cardinality practice);
  check_bool "no regular left" true
    (List.for_all F.is_exception (P.rules practice))

let test_filter_drops_prohibitions () =
  let denied =
    R.of_assoc
      [ ("time", "99"); ("op", "0"); ("user", "eve"); ("data", "psychiatry");
        ("purpose", "research"); ("authorized", "clerk"); ("status", "0") ]
  in
  let p = P.add_rule (S.table1_audit_policy ()) denied in
  check_int "denied dropped" 7 (P.cardinality (F.run p));
  check_int "kept when asked" 8 (P.cardinality (F.run ~keep_prohibitions:true p))

let test_filter_empty () =
  check_int "empty in, empty out" 0 (P.cardinality (F.run (P.make [])))

(* --- dataAnalysis (Algorithm 5) --- *)

let test_data_analysis_statement_text () =
  let sql = DA.statement ~table_name:"practice" DA.default_config in
  check_string "paper's statement"
    "SELECT data, purpose, authorized FROM practice GROUP BY data, purpose, authorized HAVING COUNT(*) >= 5 AND COUNT(DISTINCT user) > 1"
    sql

let test_data_analysis_strict_comparator () =
  let config = { DA.default_config with DA.comparator = DA.More_than } in
  let sql = DA.statement ~table_name:"p" config in
  check_bool "uses >" true
    (String.length sql > 0
    &&
    let rec contains i =
      i + 12 <= String.length sql
      && (String.sub sql i 12 = "COUNT(*) > 5" || contains (i + 1))
    in
    contains 0)

let test_data_analysis_finds_pattern () =
  let practice = F.run (S.table1_audit_policy ()) in
  let patterns = DA.analyse practice in
  check_int "exactly one" 1 (List.length patterns);
  check_string "the pattern" "referral:registration:nurse" (compact (List.hd patterns))

let test_data_analysis_threshold_edge () =
  (* The pattern occurs exactly 5 times: f = 5 at-least finds it, more-than
     does not — the pseudocode/narrative discrepancy made executable. *)
  let practice = F.run (S.table1_audit_policy ()) in
  let strict = { DA.default_config with DA.comparator = DA.More_than } in
  check_int "strict misses it" 0 (List.length (DA.analyse ~config:strict practice));
  let lower = { DA.default_config with DA.min_frequency = 6 } in
  check_int "f=6 misses it" 0 (List.length (DA.analyse ~config:lower practice))

let test_data_analysis_distinct_user_condition () =
  (* With the distinct-user condition dropped, single-user repetition also
     surfaces; with it, the pattern needs >= 2 users (it has 3). *)
  let single_user_spam =
    List.init 5 (fun i ->
        R.of_assoc
          [ ("time", string_of_int (100 + i)); ("op", "1"); ("user", "solo");
            ("data", "genetic"); ("purpose", "research"); ("authorized", "clerk");
            ("status", "0") ])
  in
  let practice = P.add_rules (F.run (S.table1_audit_policy ())) single_user_spam in
  let with_condition = DA.analyse practice in
  check_int "condition filters solo runs" 1 (List.length with_condition);
  let no_condition = { DA.default_config with DA.condition = None } in
  check_int "without condition both" 2 (List.length (DA.analyse ~config:no_condition practice))

let test_data_analysis_custom_attributes () =
  let practice = F.run (S.table1_audit_policy ()) in
  let config =
    { DA.default_config with
      DA.attributes = [ "purpose"; "authorized" ];
      DA.condition = None;
    }
  in
  let patterns = DA.analyse ~config practice in
  check_bool "registration:nurse found" true
    (List.exists (fun r -> compact r = "registration:nurse") patterns)

(* --- extractPatterns (Algorithm 4) --- *)

let test_extract_sql_backend () =
  let practice = F.run (S.table1_audit_policy ()) in
  let patterns = EP.run practice in
  check_int "one pattern" 1 (List.length patterns);
  check_bool "it is the expected one" true
    (R.equal_syntactic (List.hd patterns) (S.expected_pattern ()))

let test_extract_mining_backend_agrees () =
  let practice = F.run (S.table1_audit_policy ()) in
  let sql_patterns = EP.run practice in
  let mine cfg = EP.run ~backend:(EP.Mining cfg) practice in
  let apriori = mine EP.default_mining in
  let fp = mine { EP.default_mining with EP.algorithm = `Fp_growth } in
  let sorted ps = List.sort String.compare (List.map compact ps) in
  Alcotest.(check (list string)) "apriori = sql" (sorted sql_patterns) (sorted apriori);
  Alcotest.(check (list string)) "fp = sql" (sorted sql_patterns) (sorted fp)

let test_extract_mining_distinct_users () =
  let single_user_spam =
    List.init 6 (fun i ->
        R.of_assoc
          [ ("time", string_of_int (200 + i)); ("op", "1"); ("user", "solo");
            ("data", "genetic"); ("purpose", "research"); ("authorized", "clerk");
            ("status", "0") ])
  in
  let practice = P.make single_user_spam in
  check_int "solo pattern suppressed" 0
    (List.length (EP.run ~backend:(EP.Mining EP.default_mining) practice));
  check_int "allowed when disabled" 1
    (List.length
       (EP.run
          ~backend:(EP.Mining { EP.default_mining with EP.distinct_users = false })
          practice))

let test_correlations () =
  let practice = F.run (S.table1_audit_policy ()) in
  let interner, rules = EP.correlations ~min_support:5 ~min_confidence:0.9 practice in
  ignore interner;
  (* (data=referral) -> (purpose=registration) holds with confidence 1 in
     the filtered practice set. *)
  check_bool "correlations found" true (List.length rules > 0)

(* --- Prune (Algorithm 6) --- *)

let test_prune_removes_covered () =
  let covered = R.of_assoc [ ("data", "referral"); ("purpose", "treatment"); ("authorized", "nurse") ] in
  let useful =
    Pr.run vocab
      ~patterns:[ covered; S.expected_pattern () ]
      ~p_ps:(S.policy_store ())
  in
  check_int "one survives" 1 (List.length useful);
  check_bool "the uncovered one" true (R.equal_syntactic (List.hd useful) (S.expected_pattern ()))

let test_prune_composite_store_rule_covers () =
  (* The store rule (routine, treatment, nurse) is composite: it must prune
     ground patterns under it. *)
  let pattern = R.of_assoc [ ("data", "prescription"); ("purpose", "treatment"); ("authorized", "nurse") ] in
  check_int "pruned by composite" 0
    (List.length (Pr.run vocab ~patterns:[ pattern ] ~p_ps:(S.policy_store ())))

let test_prune_empty_patterns () =
  check_int "empty in" 0 (List.length (Pr.run vocab ~patterns:[] ~p_ps:(S.policy_store ())))

let test_prune_ground_complement () =
  let pattern = R.of_assoc [ ("data", "routine"); ("purpose", "billing"); ("authorized", "nurse") ] in
  let ground = Pr.ground_complement vocab ~patterns:[ pattern ] ~p_ps:(S.policy_store ()) in
  (* none of routine's three leaves is covered for billing:nurse *)
  check_int "three uncovered ground rules" 3 (List.length ground)

(* --- Refinement (Algorithm 2) --- *)

let test_refinement_use_case () =
  let report =
    Ref.run_epoch ~vocab ~p_ps:(S.policy_store ()) ~p_al:(S.table1_audit_policy ()) ()
  in
  check_int "practice size" 7 report.Ref.practice_size;
  check_int "one pattern" 1 (List.length report.Ref.patterns);
  check_string "referral:registration:nurse" "referral:registration:nurse"
    (compact (List.hd report.Ref.useful));
  Alcotest.(check (float 1e-9)) "before 30%" 0.3 report.Ref.coverage_before.Prima_core.Coverage.coverage;
  Alcotest.(check (float 1e-9)) "after 80%" 0.8 report.Ref.coverage_after.Prima_core.Coverage.coverage

let test_refinement_reject_all () =
  let config = { Ref.default_config with Ref.acceptance = Ref.Reject_all } in
  let report =
    Ref.run_epoch ~config ~vocab ~p_ps:(S.policy_store ()) ~p_al:(S.table1_audit_policy ()) ()
  in
  check_int "nothing accepted" 0 (List.length report.Ref.accepted);
  Alcotest.(check (float 1e-9)) "coverage unchanged" 0.3
    report.Ref.coverage_after.Prima_core.Coverage.coverage

let test_refinement_oracle () =
  let only_billing rule = R.find_attr rule "purpose" = Some "billing" in
  let config = { Ref.default_config with Ref.acceptance = Ref.Oracle only_billing } in
  let report =
    Ref.run_epoch ~config ~vocab ~p_ps:(S.policy_store ()) ~p_al:(S.table1_audit_policy ()) ()
  in
  check_int "oracle rejected the pattern" 0 (List.length report.Ref.accepted)

let test_refinement_idempotent_after_adoption () =
  (* A second run over the same log finds nothing new: Prune removes the
     now-covered pattern. *)
  let p_al = S.table1_audit_policy () in
  let first = Ref.run_epoch ~vocab ~p_ps:(S.policy_store ()) ~p_al () in
  let second = Ref.run_epoch ~vocab ~p_ps:first.Ref.p_ps' ~p_al () in
  check_int "no new useful patterns" 0 (List.length second.Ref.useful)

let test_refinement_epochs_accumulate () =
  let batch = S.table1_audit_policy () in
  let reports, final =
    Ref.run_epochs ~vocab ~p_ps:(S.policy_store ()) ~batches:[ batch; batch ] ()
  in
  check_int "two epochs" 2 (List.length reports);
  check_int "store grew once" (P.cardinality (S.policy_store ()) + 1) (P.cardinality final)

(* --- Prima facade --- *)

let test_prima_training_period () =
  let prima =
    Prima_core.Prima.create ~training_minimum:20 ~vocab ~p_ps:(S.policy_store ()) ()
  in
  Prima_core.Prima.ingest_rules prima (P.rules (S.table1_audit_policy ()));
  check_bool "still training" true (Prima_core.Prima.in_training prima);
  (match Prima_core.Prima.refine prima with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "refined during training");
  Prima_core.Prima.set_training_minimum prima 5;
  match Prima_core.Prima.refine prima with
  | Ok report -> check_int "accepted" 1 (List.length report.Ref.accepted)
  | Error e -> Alcotest.fail e

let test_prima_history_and_store_growth () =
  let prima = Prima_core.Prima.create ~vocab ~p_ps:(S.policy_store ()) () in
  Prima_core.Prima.ingest_rules prima (P.rules (S.table1_audit_policy ()));
  (match Prima_core.Prima.refine prima with Ok _ -> () | Error e -> Alcotest.fail e);
  check_int "history" 1 (List.length (Prima_core.Prima.history prima));
  check_int "store has 4 rules" 4 (P.cardinality (Prima_core.Prima.policy_store prima));
  let cov = Prima_core.Prima.coverage prima in
  Alcotest.(check (float 1e-9)) "bag coverage now 80%" 0.8
    cov.Prima_core.Prima.bag_semantics.Prima_core.Coverage.coverage

let () =
  Alcotest.run "refinement"
    [ ( "filter",
        [ Alcotest.test_case "keeps exceptions" `Quick test_filter_keeps_exceptions;
          Alcotest.test_case "drops regular" `Quick test_filter_drops_regular;
          Alcotest.test_case "drops prohibitions" `Quick test_filter_drops_prohibitions;
          Alcotest.test_case "empty" `Quick test_filter_empty;
        ] );
      ( "data-analysis",
        [ Alcotest.test_case "statement text" `Quick test_data_analysis_statement_text;
          Alcotest.test_case "strict comparator" `Quick test_data_analysis_strict_comparator;
          Alcotest.test_case "finds the pattern" `Quick test_data_analysis_finds_pattern;
          Alcotest.test_case "threshold edge" `Quick test_data_analysis_threshold_edge;
          Alcotest.test_case "distinct-user condition" `Quick
            test_data_analysis_distinct_user_condition;
          Alcotest.test_case "custom attributes" `Quick test_data_analysis_custom_attributes;
        ] );
      ( "extract-patterns",
        [ Alcotest.test_case "sql backend" `Quick test_extract_sql_backend;
          Alcotest.test_case "mining backends agree" `Quick test_extract_mining_backend_agrees;
          Alcotest.test_case "mining distinct users" `Quick test_extract_mining_distinct_users;
          Alcotest.test_case "correlations" `Quick test_correlations;
        ] );
      ( "prune",
        [ Alcotest.test_case "removes covered" `Quick test_prune_removes_covered;
          Alcotest.test_case "composite store rules" `Quick test_prune_composite_store_rule_covers;
          Alcotest.test_case "empty" `Quick test_prune_empty_patterns;
          Alcotest.test_case "ground complement" `Quick test_prune_ground_complement;
        ] );
      ( "refinement",
        [ Alcotest.test_case "Section 5 use case" `Quick test_refinement_use_case;
          Alcotest.test_case "reject all" `Quick test_refinement_reject_all;
          Alcotest.test_case "oracle" `Quick test_refinement_oracle;
          Alcotest.test_case "idempotent after adoption" `Quick
            test_refinement_idempotent_after_adoption;
          Alcotest.test_case "epochs accumulate" `Quick test_refinement_epochs_accumulate;
        ] );
      ( "prima",
        [ Alcotest.test_case "training period" `Quick test_prima_training_period;
          Alcotest.test_case "history & growth" `Quick test_prima_history_and_store_growth;
        ] );
    ]
