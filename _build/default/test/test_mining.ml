(* Tests for the mining substrate: itemsets, transactions, Apriori,
   FP-growth (including agreement between the two) and association rules. *)

open Mining

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let item attr value = { Itemset.attr; value }

(* The canonical toy dataset (a,b,c over 5 baskets). *)
let toy () =
  Transactions.of_item_lists
    [ [ item "i" "a"; item "i" "b" ];
      [ item "i" "b"; item "i" "c" ];
      [ item "i" "a"; item "i" "b"; item "i" "c" ];
      [ item "i" "a"; item "i" "b" ];
      [ item "i" "b" ];
    ]

let find_support tx frequents items =
  let interner = Transactions.interner tx in
  let target = Itemset.of_list (List.map (Itemset.intern interner) items) in
  List.find_map
    (fun (f : Apriori.frequent) ->
      if Itemset.equal f.itemset target then Some f.support else None)
    frequents

(* --- itemsets --- *)

let test_itemset_basics () =
  let s1 = Itemset.of_list [ 3; 1; 2; 1 ] in
  check_int "dedup+sort" 3 (Itemset.size s1);
  check_bool "subset" true (Itemset.subset (Itemset.of_list [ 1; 3 ]) s1);
  check_bool "not subset" false (Itemset.subset (Itemset.of_list [ 1; 4 ]) s1);
  check_bool "union" true
    (Itemset.equal (Itemset.union (Itemset.of_list [ 1 ]) (Itemset.of_list [ 2 ]))
       (Itemset.of_list [ 1; 2 ]));
  check_bool "diff" true
    (Itemset.equal (Itemset.diff s1 (Itemset.of_list [ 2 ])) (Itemset.of_list [ 1; 3 ]))

let test_itemset_immediate_subsets () =
  let subs = Itemset.immediate_subsets (Itemset.of_list [ 1; 2; 3 ]) in
  check_int "three subsets" 3 (List.length subs);
  check_bool "all size 2" true (List.for_all (fun s -> Itemset.size s = 2) subs)

let test_interner () =
  let i = Itemset.create_interner () in
  let a = Itemset.intern i (item "x" "1") in
  let b = Itemset.intern i (item "x" "2") in
  let a' = Itemset.intern i (item "x" "1") in
  check_int "stable" a a';
  check_bool "distinct" true (a <> b);
  check_int "universe" 2 (Itemset.universe_size i)

(* --- transactions --- *)

let test_transaction_support () =
  let tx = toy () in
  let interner = Transactions.interner tx in
  let b = Itemset.of_list [ Itemset.intern interner (item "i" "b") ] in
  check_int "support b" 5 (Transactions.support tx b);
  Alcotest.(check (float 1e-9)) "relative" 1.0 (Transactions.relative_support tx b)

(* --- apriori --- *)

let test_apriori_toy () =
  let tx = toy () in
  let frequents = Apriori.mine tx ~min_support:3 in
  check_bool "a freq 3" true (find_support tx frequents [ item "i" "a" ] = Some 3);
  check_bool "b freq 5" true (find_support tx frequents [ item "i" "b" ] = Some 5);
  check_bool "c below threshold" true (find_support tx frequents [ item "i" "c" ] = None);
  check_bool "ab freq 3" true
    (find_support tx frequents [ item "i" "a"; item "i" "b" ] = Some 3);
  check_bool "bc infrequent" true
    (find_support tx frequents [ item "i" "b"; item "i" "c" ] = None)

let test_apriori_min_support_validation () =
  Alcotest.check_raises "bad support"
    (Invalid_argument "Apriori.mine: min_support must be positive") (fun () ->
      ignore (Apriori.mine (toy ()) ~min_support:0))

let test_apriori_max_size () =
  let tx = toy () in
  let frequents = Apriori.mine tx ~min_support:1 ~max_size:1 in
  check_bool "only singletons" true
    (List.for_all (fun (f : Apriori.frequent) -> Itemset.size f.itemset = 1) frequents)

let test_apriori_maximal () =
  let tx = toy () in
  let frequents = Apriori.mine tx ~min_support:3 in
  let maximal = Apriori.maximal frequents in
  (* At support 3 the frequents are {a}, {b}, {a,b}; only {a,b} is maximal. *)
  check_int "single maximal" 1 (List.length maximal);
  check_int "of size two" 2 (Itemset.size (List.hd maximal).Apriori.itemset)

let test_apriori_join_prune () =
  (* join only on shared prefix *)
  check_bool "join ok" true (Apriori.join [| 1; 2 |] [| 1; 3 |] = Some [| 1; 2; 3 |]);
  check_bool "join refused" true (Apriori.join [| 1; 2 |] [| 2; 3 |] = None);
  check_bool "join ordered" true (Apriori.join [| 1; 3 |] [| 1; 2 |] = None)

(* --- fp-growth --- *)

let test_fp_growth_matches_apriori_toy () =
  let tx = toy () in
  let a = Fp_growth.normalize (Apriori.mine tx ~min_support:2) in
  let f = Fp_growth.normalize (Fp_growth.mine tx ~min_support:2) in
  check_int "same count" (List.length a) (List.length f);
  List.iter2
    (fun (x : Apriori.frequent) (y : Apriori.frequent) ->
      check_bool "same itemset" true (Itemset.equal x.itemset y.itemset);
      check_int "same support" x.support y.support)
    a f

let test_fp_growth_matches_apriori_random () =
  (* Deterministic pseudo-random transactions over 8 items. *)
  let state = ref 12345 in
  let next () =
    state := (!state * 1103515245) + 121007;
    abs !state
  in
  let lists =
    List.init 120 (fun _ ->
        List.filter_map
          (fun i -> if next () mod 3 = 0 then Some (item "x" (string_of_int i)) else None)
          (List.init 8 Fun.id))
    |> List.filter (fun l -> l <> [])
  in
  let tx = Transactions.of_item_lists lists in
  List.iter
    (fun min_support ->
      let a = Fp_growth.normalize (Apriori.mine tx ~min_support) in
      let f = Fp_growth.normalize (Fp_growth.mine tx ~min_support) in
      check_int
        (Printf.sprintf "count at support %d" min_support)
        (List.length a) (List.length f);
      List.iter2
        (fun (x : Apriori.frequent) (y : Apriori.frequent) ->
          check_bool "itemset" true (Itemset.equal x.itemset y.itemset);
          check_int "support" x.support y.support)
        a f)
    [ 5; 10; 20 ]

let test_fp_growth_empty () =
  let tx = Transactions.of_item_lists [] in
  check_int "no frequents" 0 (List.length (Fp_growth.mine tx ~min_support:1))

(* --- association rules --- *)

let test_assoc_rules_confidence () =
  let tx = toy () in
  let frequents = Apriori.mine tx ~min_support:3 in
  let rules = Assoc_rules.derive tx frequents ~min_confidence:0.9 in
  (* a -> b has confidence 3/3 = 1.0; b -> a has 3/5 = 0.6 < 0.9. *)
  let interner = Transactions.interner tx in
  let a = Itemset.of_list [ Itemset.intern interner (item "i" "a") ] in
  let b = Itemset.of_list [ Itemset.intern interner (item "i" "b") ] in
  let a_to_b =
    List.find_opt
      (fun r -> Itemset.equal r.Assoc_rules.antecedent a && Itemset.equal r.Assoc_rules.consequent b)
      rules
  in
  check_bool "a->b present" true (Option.is_some a_to_b);
  Alcotest.(check (float 1e-9)) "confidence 1.0" 1.0 (Option.get a_to_b).Assoc_rules.confidence;
  check_bool "b->a absent" true
    (not
       (List.exists
          (fun r ->
            Itemset.equal r.Assoc_rules.antecedent b && Itemset.equal r.Assoc_rules.consequent a)
          rules))

let test_assoc_rules_lift () =
  let tx = toy () in
  let frequents = Apriori.mine tx ~min_support:3 in
  let rules = Assoc_rules.derive tx frequents ~min_confidence:0.5 in
  List.iter
    (fun r -> check_bool "lift positive" true (r.Assoc_rules.lift > 0.))
    rules

let test_assoc_rules_sorting () =
  let tx = toy () in
  let frequents = Apriori.mine tx ~min_support:2 in
  let rules = Assoc_rules.sort_by_confidence (Assoc_rules.derive tx frequents ~min_confidence:0.1) in
  let rec non_increasing = function
    | a :: (b :: _ as rest) ->
      a.Assoc_rules.confidence >= b.Assoc_rules.confidence && non_increasing rest
    | _ -> true
  in
  check_bool "sorted" true (non_increasing rules)

let () =
  Alcotest.run "mining"
    [ ( "itemset",
        [ Alcotest.test_case "basics" `Quick test_itemset_basics;
          Alcotest.test_case "immediate subsets" `Quick test_itemset_immediate_subsets;
          Alcotest.test_case "interner" `Quick test_interner;
        ] );
      ("transactions", [ Alcotest.test_case "support" `Quick test_transaction_support ]);
      ( "apriori",
        [ Alcotest.test_case "toy dataset" `Quick test_apriori_toy;
          Alcotest.test_case "min_support validation" `Quick test_apriori_min_support_validation;
          Alcotest.test_case "max size" `Quick test_apriori_max_size;
          Alcotest.test_case "maximal" `Quick test_apriori_maximal;
          Alcotest.test_case "join/prune" `Quick test_apriori_join_prune;
        ] );
      ( "fp-growth",
        [ Alcotest.test_case "agrees with apriori (toy)" `Quick
            test_fp_growth_matches_apriori_toy;
          Alcotest.test_case "agrees with apriori (random)" `Quick
            test_fp_growth_matches_apriori_random;
          Alcotest.test_case "empty" `Quick test_fp_growth_empty;
        ] );
      ( "assoc-rules",
        [ Alcotest.test_case "confidence filter" `Quick test_assoc_rules_confidence;
          Alcotest.test_case "lift" `Quick test_assoc_rules_lift;
          Alcotest.test_case "sorting" `Quick test_assoc_rules_sorting;
        ] );
    ]
