(* Tests for coverage trends and drift detection. *)

module T = Prima_core.Trend
module P = Prima_core.Policy
module C = Prima_core.Coverage
module S = Workload.Scenario

let vocab = S.vocab ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let test_windows_partition_entries () =
  let p_al = S.table1_audit_policy () in
  let points = T.compute vocab ~p_ps:(S.policy_store ()) ~p_al ~window:5 () in
  check_int "two windows over t1..t10" 2 (List.length points);
  check_int "first window entries" 5 (List.hd points).T.entries;
  check_int "second window entries" 5 (List.nth points 1).T.entries;
  check_int "starts at t1" 1 (List.hd points).T.window_start;
  check_int "second starts at t6" 6 (List.nth points 1).T.window_start

let test_window_coverage_values () =
  (* t1-t5: t1,t2,t5 covered -> 3/5; t6-t10: none covered -> 0/5. *)
  let p_al = S.table1_audit_policy () in
  let points = T.compute vocab ~p_ps:(S.policy_store ()) ~p_al ~window:5 () in
  check_float "first window 60%" 0.6 (List.hd points).T.stats.C.coverage;
  check_float "second window 0%" 0.0 (List.nth points 1).T.stats.C.coverage

let test_single_window_matches_global () =
  let p_al = S.table1_audit_policy () in
  let points = T.compute vocab ~p_ps:(S.policy_store ()) ~p_al ~window:1000 () in
  check_int "one window" 1 (List.length points);
  check_float "30% overall" 0.3 (List.hd points).T.stats.C.coverage

let test_empty_and_untimed () =
  check_int "empty" 0
    (List.length
       (T.compute vocab ~p_ps:(S.policy_store ()) ~p_al:(P.make []) ~window:5 ()));
  let untimed = P.of_assoc_list [ [ ("data", "gender") ] ] in
  check_int "untimed rules ignored" 0
    (List.length (T.compute vocab ~p_ps:(S.policy_store ()) ~p_al:untimed ~window:5 ()))

let test_window_validation () =
  Alcotest.check_raises "bad window" (Invalid_argument "Trend.compute: window must be positive")
    (fun () ->
      ignore
        (T.compute vocab ~p_ps:(S.policy_store ()) ~p_al:(S.table1_audit_policy ())
           ~window:0 ()))

let test_drift_detection () =
  let p_al = S.table1_audit_policy () in
  let points = T.compute vocab ~p_ps:(S.policy_store ()) ~p_al ~window:5 () in
  (* 60% then 0%: clearly drifting. *)
  check_bool "drifting" true (T.drifting points);
  check_bool "tolerant enough" false (T.drifting ~tolerance:0.7 points);
  check_bool "empty not drifting" false (T.drifting [])

let test_drift_resolved_after_refinement () =
  let p_al = S.table1_audit_policy () in
  let report =
    Prima_core.Refinement.run_epoch ~vocab ~p_ps:(S.policy_store ()) ~p_al ()
  in
  let points =
    T.compute vocab ~p_ps:report.Prima_core.Refinement.p_ps' ~p_al ~window:5 ()
  in
  (* After adoption, t6-t10 is 4/5 covered: drift within tolerance 0.3. *)
  check_bool "no more drift" false (T.drifting ~tolerance:0.3 points)

(* End-to-end drift story: practice changes mid-stream (a new informal
   practice appears), the trend over the old store shows drift, refinement
   over the late window documents it, and the drift clears. *)
let test_drift_appears_and_is_refined_away () =
  let config =
    { (Workload.Hospital.default_config ()) with
      Workload.Hospital.total_accesses = 600;
      informal_rate = 0.0;
      violation_rate = 0.0;
      btg_on_covered = 0.0;
    }
  in
  let hospital_vocab = config.Workload.Hospital.vocab in
  let covered_trail = Workload.Generator.entries (Workload.Generator.generate config) in
  (* From t601 a new ward habit appears: nurses BTG-ing referrals for
     scheduling. *)
  let new_practice =
    List.init 120 (fun i ->
        Hdb.Audit_schema.entry ~time:(601 + i) ~op:Hdb.Audit_schema.Allow
          ~user:(Printf.sprintf "nurse-%02d" ((i mod 4) + 1))
          ~data:"referral" ~purpose:"scheduling" ~authorized:"nurse"
          ~status:Hdb.Audit_schema.Exception_based)
  in
  let p_al = Audit_mgmt.To_policy.policy_of_entries (covered_trail @ new_practice) in
  let p_ps = Workload.Hospital.policy_store config in
  let before = T.compute hospital_vocab ~p_ps ~p_al ~window:300 () in
  check_bool "drift detected" true (T.drifting before);
  let report = Prima_core.Refinement.run_epoch ~vocab:hospital_vocab ~p_ps ~p_al () in
  check_bool "practice adopted" true
    (List.exists
       (fun r -> Prima_core.Rule.find_attr r "purpose" = Some "scheduling")
       report.Prima_core.Refinement.accepted);
  let after =
    T.compute hospital_vocab ~p_ps:report.Prima_core.Refinement.p_ps' ~p_al ~window:300 ()
  in
  check_bool "drift resolved" false (T.drifting after)

let test_system_trend () =
  let system =
    Prima_system.System.create ~vocab ~p_ps:(S.policy_store ()) ()
  in
  let site = Audit_mgmt.Site.create ~name:"icu" () in
  Audit_mgmt.Site.ingest_entries site (S.table1_entries ());
  Prima_system.System.add_site system site;
  let points = Prima_system.System.trend system ~window:5 in
  check_int "two windows" 2 (List.length points)

let () =
  Alcotest.run "trend"
    [ ( "trend",
        [ Alcotest.test_case "windows partition" `Quick test_windows_partition_entries;
          Alcotest.test_case "window coverage" `Quick test_window_coverage_values;
          Alcotest.test_case "single window = global" `Quick test_single_window_matches_global;
          Alcotest.test_case "empty/untimed" `Quick test_empty_and_untimed;
          Alcotest.test_case "validation" `Quick test_window_validation;
          Alcotest.test_case "drift detection" `Quick test_drift_detection;
          Alcotest.test_case "drift resolved by refinement" `Quick
            test_drift_resolved_after_refinement;
          Alcotest.test_case "drift appears and is refined away" `Quick
            test_drift_appears_and_is_refined_away;
          Alcotest.test_case "system trend" `Quick test_system_trend;
        ] );
    ]
