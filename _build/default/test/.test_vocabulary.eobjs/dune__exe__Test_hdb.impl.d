test/test_hdb.ml: Alcotest Audit_logger Audit_query Audit_schema Audit_store Consent Control_center Enforcement Hdb List Printf Privacy_rules Relational Result String Vocabulary
