test/test_treedata.ml: Alcotest Audit_mgmt Hdb List Option Path Prima_core Tree_enforcement Tree_store Treedata Vocabulary Xml
