test/test_trend.mli:
