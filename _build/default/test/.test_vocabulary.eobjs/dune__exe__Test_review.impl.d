test/test_review.ml: Alcotest Fmt List Prima_core String Workload
