test/test_persistence.ml: Alcotest Filename Fun Hdb List Prima_core Sys Workload
