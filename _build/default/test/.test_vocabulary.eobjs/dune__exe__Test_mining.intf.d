test/test_mining.mli:
