test/test_workload.ml: Alcotest Array Float Fun Generator Hdb Hospital List Prima_core Prng String Vocabulary Workload
