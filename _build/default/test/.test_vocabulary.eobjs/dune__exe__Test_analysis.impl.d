test/test_analysis.ml: Alcotest Hdb List Prima_core Vocabulary Workload
