test/test_treedata.mli:
