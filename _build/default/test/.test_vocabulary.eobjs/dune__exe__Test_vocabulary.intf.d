test/test_vocabulary.mli:
