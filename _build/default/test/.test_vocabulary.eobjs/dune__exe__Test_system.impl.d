test/test_system.ml: Alcotest Audit_mgmt Hdb List Prima_core Prima_system Vocabulary Workload
