test/test_properties.ml: Alcotest Audit_mgmt Engine Executor Fmt Hdb Int List Mining Prima_core Printf QCheck2 QCheck_alcotest Relational String Table Treedata Value Vocabulary
