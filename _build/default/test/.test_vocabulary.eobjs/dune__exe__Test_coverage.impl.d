test/test_coverage.ml: Alcotest List Prima_core String Vocabulary Workload
