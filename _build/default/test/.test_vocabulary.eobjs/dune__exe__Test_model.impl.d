test/test_model.ml: Alcotest List Prima_core Vocabulary Workload
