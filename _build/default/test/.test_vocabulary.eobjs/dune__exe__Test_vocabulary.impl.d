test/test_vocabulary.ml: Alcotest Fmt List String Vocabulary
