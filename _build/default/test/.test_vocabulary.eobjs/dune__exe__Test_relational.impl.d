test/test_relational.ml: Alcotest Array Csv Database Errors Index Option Relational Result Row Schema Table Value Vec
