test/test_review.mli:
