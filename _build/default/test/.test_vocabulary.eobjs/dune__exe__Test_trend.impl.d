test/test_trend.ml: Alcotest Audit_mgmt Hdb List Prima_core Prima_system Printf Workload
