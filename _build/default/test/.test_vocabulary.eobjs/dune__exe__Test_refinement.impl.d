test/test_refinement.ml: Alcotest List Prima_core String Vocabulary Workload
