test/test_sql.ml: Alcotest Engine Errors Executor Hdb List Option Relational Row Schema Sql_ast Sql_lexer Sql_parser Value Vocabulary
