test/test_mining.ml: Alcotest Apriori Assoc_rules Fp_growth Fun Itemset List Mining Option Printf Transactions
