test/test_audit.ml: Alcotest Audit_mgmt Federation Hdb List Mapping Option Prima_core Site To_policy Workload
