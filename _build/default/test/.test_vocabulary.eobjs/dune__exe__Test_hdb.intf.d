test/test_hdb.mli:
