(* Tests for Audit Management: schema mappings, sites, the consolidated
   federation view and the audit-to-policy bridge. *)

open Audit_mgmt

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let entry ?(time = 1) ?(op = Hdb.Audit_schema.Allow) ?(user = "u") ?(data = "referral")
    ?(purpose = "treatment") ?(authorized = "nurse")
    ?(status = Hdb.Audit_schema.Regular) () =
  Hdb.Audit_schema.entry ~time ~op ~user ~data ~purpose ~authorized ~status

(* --- to_policy --- *)

let test_rule_of_entry () =
  let rule = To_policy.rule_of_entry (entry ~time:3 ~status:Hdb.Audit_schema.Exception_based ()) in
  check_int "seven terms" 7 (Prima_core.Rule.cardinality rule);
  Alcotest.(check (option string)) "status" (Some "0")
    (Prima_core.Rule.find_attr rule "status")

let test_entry_of_rule_roundtrip () =
  let e = entry ~time:9 ~op:Hdb.Audit_schema.Disallow () in
  let rule = To_policy.rule_of_entry e in
  match To_policy.entry_of_rule rule with
  | Some e' -> check_bool "roundtrip" true (Hdb.Audit_schema.equal e e')
  | None -> Alcotest.fail "roundtrip failed"

let test_entry_of_rule_partial () =
  let rule = Prima_core.Rule.of_assoc [ ("data", "x") ] in
  check_bool "partial rejected" true (To_policy.entry_of_rule rule = None)

let test_pattern_rule_projection () =
  let rule = To_policy.pattern_rule_of_entry (entry ()) in
  check_int "three terms" 3 (Prima_core.Rule.cardinality rule)

(* --- mapping --- *)

let legacy_mapping () =
  Mapping.create
    ~column_aliases:[ ("ts", "time"); ("action", "op"); ("who", "user"); ("category", "data");
                      ("reason", "purpose"); ("role", "authorized"); ("mode", "status") ]
    ~value_synonyms:[ (("authorized", "rn"), "nurse"); (("data", "xray"), "x-ray") ]
    ()

let legacy_row =
  [ ("ts", "17"); ("action", "GRANTED"); ("who", "Olga"); ("category", "XRAY");
    ("reason", "Treatment"); ("role", "RN"); ("mode", "BTG") ]

let test_mapping_normalises () =
  let e = Mapping.apply (legacy_mapping ()) legacy_row in
  check_int "time" 17 e.Hdb.Audit_schema.time;
  check_bool "granted is allow" true (e.Hdb.Audit_schema.op = Hdb.Audit_schema.Allow);
  check_string "user lowercased" "olga" e.Hdb.Audit_schema.user;
  check_string "synonym applied" "x-ray" e.Hdb.Audit_schema.data;
  check_string "role synonym" "nurse" e.Hdb.Audit_schema.authorized;
  check_bool "btg is exception" true
    (e.Hdb.Audit_schema.status = Hdb.Audit_schema.Exception_based)

let test_mapping_missing_attribute () =
  let incomplete = List.filter (fun (k, _) -> k <> "who") legacy_row in
  Alcotest.check_raises "missing" (Mapping.Unmappable "missing attribute user") (fun () ->
      ignore (Mapping.apply (legacy_mapping ()) incomplete))

let test_mapping_bad_time () =
  let bad = ("ts", "yesterday") :: List.remove_assoc "ts" legacy_row in
  Alcotest.check_raises "bad time" (Mapping.Unmappable "cannot read time value \"yesterday\"")
    (fun () -> ignore (Mapping.apply (legacy_mapping ()) bad))

let test_mapping_identity () =
  let raw =
    [ ("time", "5"); ("op", "1"); ("user", "u"); ("data", "referral");
      ("purpose", "treatment"); ("authorized", "nurse"); ("status", "1") ]
  in
  let e = Mapping.apply Mapping.identity raw in
  check_int "time" 5 e.Hdb.Audit_schema.time

(* --- site --- *)

let test_site_ingest () =
  let site = Site.create ~name:"icu" () in
  Site.ingest_entries site [ entry ~time:1 (); entry ~time:2 () ];
  check_int "two" 2 (Site.length site);
  check_string "name" "icu" (Site.name site)

let test_site_legacy_raw () =
  let site = Site.create ~mapping:(legacy_mapping ()) ~name:"legacy" () in
  Site.ingest_raw site legacy_row;
  check_int "ingested" 1 (Site.length site);
  check_string "normalised" "nurse" (List.hd (Site.entries site)).Hdb.Audit_schema.authorized

(* --- federation --- *)

let test_federation_merges_by_time () =
  let a = Site.create ~name:"a" () in
  let b = Site.create ~name:"b" () in
  Site.ingest_entries a [ entry ~time:1 ~user:"a1" (); entry ~time:5 ~user:"a5" () ];
  Site.ingest_entries b [ entry ~time:2 ~user:"b2" (); entry ~time:4 ~user:"b4" () ];
  let fed = Federation.of_sites [ a; b ] in
  let merged = Federation.consolidated fed in
  Alcotest.(check (list string)) "time order" [ "a1"; "b2"; "b4"; "a5" ]
    (List.map (fun e -> e.Hdb.Audit_schema.user) merged)

let test_federation_tie_stability () =
  let a = Site.create ~name:"a" () in
  let b = Site.create ~name:"b" () in
  Site.ingest_entries a [ entry ~time:3 ~user:"first" () ];
  Site.ingest_entries b [ entry ~time:3 ~user:"second" () ];
  let merged = Federation.consolidated (Federation.of_sites [ a; b ]) in
  Alcotest.(check (list string)) "site order on ties" [ "first"; "second" ]
    (List.map (fun e -> e.Hdb.Audit_schema.user) merged)

let test_federation_unsorted_site () =
  let a = Site.create ~name:"a" () in
  Site.ingest_entries a [ entry ~time:9 (); entry ~time:1 (); entry ~time:5 () ];
  let merged = Federation.consolidated (Federation.of_sites [ a ]) in
  Alcotest.(check (list int)) "sorted defensively" [ 1; 5; 9 ]
    (List.map (fun e -> e.Hdb.Audit_schema.time) merged)

let test_federation_window () =
  let a = Site.create ~name:"a" () in
  Site.ingest_entries a (List.init 10 (fun i -> entry ~time:(i + 1) ()));
  let fed = Federation.of_sites [ a ] in
  check_int "window" 4 (List.length (Federation.window fed ~time_from:3 ~time_to:6))

let test_federation_empty () =
  let fed = Federation.create () in
  check_int "no entries" 0 (List.length (Federation.consolidated fed));
  check_int "empty policy" 0 (Prima_core.Policy.cardinality (Federation.to_policy fed))

let test_federation_window_boundaries () =
  let a = Site.create ~name:"a" () in
  Site.ingest_entries a [ entry ~time:1 (); entry ~time:5 (); entry ~time:9 () ];
  let fed = Federation.of_sites [ a ] in
  check_int "inclusive both ends" 3 (List.length (Federation.window fed ~time_from:1 ~time_to:9));
  check_int "point window" 1 (List.length (Federation.window fed ~time_from:5 ~time_to:5));
  check_int "empty window" 0 (List.length (Federation.window fed ~time_from:6 ~time_to:4))

let test_federation_to_policy () =
  let a = Site.create ~name:"a" () in
  Site.ingest_entries a [ entry ~time:1 (); entry ~time:2 () ];
  let p = Federation.to_policy (Federation.of_sites [ a ]) in
  check_int "two rules" 2 (Prima_core.Policy.cardinality p);
  check_bool "audit source" true (Prima_core.Policy.source p = Prima_core.Policy.Audit_log)

let test_federation_totals () =
  let a = Site.create ~name:"a" () in
  let b = Site.create ~name:"b" () in
  Site.ingest_entries a [ entry () ];
  Site.ingest_entries b [ entry (); entry ~time:2 () ];
  let fed = Federation.create () in
  Federation.add_site fed a;
  Federation.add_site fed b;
  check_int "three total" 3 (Federation.total_entries fed);
  check_bool "lookup" true (Option.is_some (Federation.site fed "b"));
  check_bool "missing" true (Federation.site fed "zzz" = None)

(* The legacy-site end-to-end: raw rows through mapping, federation, policy,
   refinement sees them like native entries. *)
let test_federation_heterogeneous_end_to_end () =
  let modern = Site.create ~name:"modern" () in
  Site.ingest_entries modern
    (List.filteri (fun i _ -> i < 5) (Workload.Scenario.table1_entries ()));
  let legacy = Site.create ~mapping:(legacy_mapping ()) ~name:"legacy" () in
  List.iteri
    (fun i e ->
      Site.ingest_raw legacy
        [ ("ts", string_of_int e.Hdb.Audit_schema.time);
          ("action", if e.Hdb.Audit_schema.op = Hdb.Audit_schema.Allow then "granted" else "denied");
          ("who", e.Hdb.Audit_schema.user);
          ("category", e.Hdb.Audit_schema.data);
          ("reason", e.Hdb.Audit_schema.purpose);
          ("role", if i mod 2 = 0 then "RN" else e.Hdb.Audit_schema.authorized);
          ("mode",
           if e.Hdb.Audit_schema.status = Hdb.Audit_schema.Regular then "regular" else "btg");
        ])
    (List.filteri (fun i _ -> i >= 5) (Workload.Scenario.table1_entries ()));
  let fed = Federation.of_sites [ modern; legacy ] in
  check_int "all ten consolidated" 10 (List.length (Federation.consolidated fed));
  let p_al = Federation.to_policy fed in
  check_int "ten rules" 10 (Prima_core.Policy.cardinality p_al)

let () =
  Alcotest.run "audit"
    [ ( "to-policy",
        [ Alcotest.test_case "rule of entry" `Quick test_rule_of_entry;
          Alcotest.test_case "roundtrip" `Quick test_entry_of_rule_roundtrip;
          Alcotest.test_case "partial rejected" `Quick test_entry_of_rule_partial;
          Alcotest.test_case "pattern projection" `Quick test_pattern_rule_projection;
        ] );
      ( "mapping",
        [ Alcotest.test_case "normalises" `Quick test_mapping_normalises;
          Alcotest.test_case "missing attribute" `Quick test_mapping_missing_attribute;
          Alcotest.test_case "bad time" `Quick test_mapping_bad_time;
          Alcotest.test_case "identity" `Quick test_mapping_identity;
        ] );
      ( "site",
        [ Alcotest.test_case "ingest" `Quick test_site_ingest;
          Alcotest.test_case "legacy raw" `Quick test_site_legacy_raw;
        ] );
      ( "federation",
        [ Alcotest.test_case "merge by time" `Quick test_federation_merges_by_time;
          Alcotest.test_case "tie stability" `Quick test_federation_tie_stability;
          Alcotest.test_case "unsorted site" `Quick test_federation_unsorted_site;
          Alcotest.test_case "window" `Quick test_federation_window;
          Alcotest.test_case "empty" `Quick test_federation_empty;
          Alcotest.test_case "window boundaries" `Quick test_federation_window_boundaries;
          Alcotest.test_case "to policy" `Quick test_federation_to_policy;
          Alcotest.test_case "totals/lookup" `Quick test_federation_totals;
          Alcotest.test_case "heterogeneous end-to-end" `Quick
            test_federation_heterogeneous_end_to_end;
        ] );
    ]
