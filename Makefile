.PHONY: build test faults crash fuzz chaos shrink tamper federation overload bench bench-quick bench-coverage bench-wal bench-governor

build:
	dune build

test:
	dune build && dune runtest

# Fault-matrix suite: deterministic fault injection across the 3 fixed
# seeds baked into test/test_faults.ml (101, 202, 303) — accounting
# invariant, breaker transitions, and the convergence oracle.
faults:
	dune build && dune exec test/test_faults.exe

# Crash-point matrix: every Durable.Device crash point x the 3 fixed
# seeds baked into test/test_durable.ml (11, 22, 33) — verified-prefix
# recovery, WAL/snapshot round-trips, and the QCheck oracle parity suite.
crash:
	dune build && dune exec test/test_durable.exe

# SQL fuzzing sweep: 10 seeds x 2000 statements against the resource
# governor — no untyped exception may escape the engine, and budgeted
# runs that complete must match ungoverned runs bitwise.  A smaller
# 3-seed regression lives in dune runtest (test/test_fuzz.ml).
fuzz:
	dune build && dune exec bench/fuzz.exe

# Whole-system chaos sweep: 20 seeds x 400-step composed fault schedules
# (crashes, outages, corruption, budget trips) checked against the pure
# model oracle's nine invariants.  A smaller 3-seed regression lives in
# dune runtest (test/test_chaos.ml); one schedule replays with
# `prima chaos --seed N --steps M`.
chaos:
	dune build && dune exec bench/chaos_sweep.exe

# E17 delta-debugging sweep: harvest >= 20 failing 400-step schedules
# (cycling the harness's injected defects across seeds) and shrink each
# with ddmin; gates on <= 40 actions per minimal repro, byte-identical
# determinism across two shrinks, and faithfulness to the original
# invariant.  Refreshes BENCH_shrink.json and drops the smallest repro
# under _chaos/ (replay with `prima chaos --replay FILE`).
shrink:
	dune build && dune exec bench/shrink_sweep.exe

# Tamper-evidence sweep: the same 20 seeds x 400-step schedules graded
# on invariant 6 alone — every seeded in-place mutation of stable media
# caught by the next recovery at its exact offset, no crash misread as
# tampering, and every final trail verifying clean.  Offline check of a
# single WAL: `prima verify --wal F [--snapshot F]`.
tamper:
	dune build && dune exec bench/tamper_sweep.exe

# Federation durability sweep: a (sites x entries) grid over the per-site
# durable federation — write-ahead-logged ingest and consolidation
# throughput, plus a hard crash-recovery gate (power-cut one site's WAL
# per point; every synced entry must recover and consolidation must
# reconverge).  Refreshes BENCH_federation.json and saves the largest
# point's per-site WALs under _build/federation-wals/ for
# `prima verify --wal _build/federation-wals`.
federation:
	dune build && dune exec bench/federation_sweep.exe

# E18 overload-storm admission sweep: 10:1 hot-tenant storms arbitrated
# by deficit-round-robin drains.  Gates: every victim tenant keeps >= 80%
# of its no-storm baseline throughput, every shed batch is all-or-nothing
# with an honest retry hint, invariant 10 holds over 20 seeds x 400-step
# chaos schedules with Overload_storm in the alphabet, and every brownout
# refinement epoch reports Coverage.Lower_bound.  Refreshes
# BENCH_overload.json.
overload:
	dune build && dune exec bench/overload_sweep.exe

# All experiments + Bechamel microbenchmarks.
bench:
	dune exec bench/main.exe

# Experiments only (skips Bechamel); regenerates BENCH_coverage.json.
bench-quick:
	dune exec bench/main.exe -- quick

# Only the coverage-scaling sweep; fastest way to refresh BENCH_coverage.json.
bench-coverage:
	dune exec bench/main.exe -- coverage

# Only the WAL replay-throughput sweep; fastest way to refresh BENCH_wal.json.
bench-wal:
	dune exec bench/main.exe -- wal

# Only the query-governance overhead sweep (E13); refreshes BENCH_governor.json.
bench-governor:
	dune exec bench/main.exe -- governor
