.PHONY: build test faults bench bench-quick bench-coverage

build:
	dune build

test:
	dune build && dune runtest

# Fault-matrix suite: deterministic fault injection across the 3 fixed
# seeds baked into test/test_faults.ml (101, 202, 303) — accounting
# invariant, breaker transitions, and the convergence oracle.
faults:
	dune build && dune exec test/test_faults.exe

# All experiments + Bechamel microbenchmarks.
bench:
	dune exec bench/main.exe

# Experiments only (skips Bechamel); regenerates BENCH_coverage.json.
bench-quick:
	dune exec bench/main.exe -- quick

# Only the coverage-scaling sweep; fastest way to refresh BENCH_coverage.json.
bench-coverage:
	dune exec bench/main.exe -- coverage
