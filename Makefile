.PHONY: build test bench bench-quick bench-coverage

build:
	dune build

test:
	dune build && dune runtest

# All experiments + Bechamel microbenchmarks.
bench:
	dune exec bench/main.exe

# Experiments only (skips Bechamel); regenerates BENCH_coverage.json.
bench-quick:
	dune exec bench/main.exe -- quick

# Only the coverage-scaling sweep; fastest way to refresh BENCH_coverage.json.
bench-coverage:
	dune exec bench/main.exe -- coverage
