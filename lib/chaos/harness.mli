(** Whole-system chaos harness: composed fault schedules against a
    model-based invariant checker.

    One seeded {!Schedule} drives a full {!Prima_system.System} — durable
    storage, fault-injected federation, budgeted queries, the refinement
    loop — while a pure {!Model} oracle receives the same inputs
    fault-free.  Five invariants are checked as the run unfolds:

    + {b no-loss} — recovery yields a prefix of the appended entries,
      never below the durable floor (the lying-fsync [Truncated_sync]
      point excepted); consolidated windows are sub-multisets of the
      model trail.
    + {b quarantine-exactly-once} — [delivered + quarantined + skipped =
      total]; items unique per [(site, seq)]; crash recovery restores
      exactly the synced item set.
    + {b coverage-bound} — the system's coverage numerator/denominator
      never exceed the model's exact readings; nothing refinement accepts
      falls outside the fault-free epoch's acceptance.
    + {b recovery-idempotent} — recovering the same devices twice yields
      identical state with nothing newly dropped.
    + {b convergence} — after faults stop, consolidation, coverage and a
      final refinement all agree exactly with the model.
    + {b tamper-evidence} — every injected bit-flip of an accepted
      (stable) audit record is reported as
      {!Durable.Recovery.Tamper_detected} at the exact frame offset,
      idempotently; the mutated record is never read back; the rebuilt
      system is durably degraded with [Lower_bound] coverage; and no
      ordinary crash is ever classified as tampering.
    + {b site-local-recovery} — a remote whose own WAL is power-cut
      recovers locally to a prefix of its ingested stream, never below its
      durable floor ([Truncated_sync] excepted), never as tampering,
      idempotently; a lossy recovery keeps coverage at [Lower_bound] until
      the feed replays the lost suffix, after which the system
      re-converges to [Exact].

    Fully deterministic in [seed]: a violation replays from its seed. *)

type violation = {
  step : int;  (** 1-based schedule position; 0 = setup, steps+1 = epilogue *)
  action : string;
  invariant : string;
  detail : string;
}

type report = {
  seed : int;
  steps : int;
  actions_run : int;
  appended : int;
  crashes : int;
  site_crashes : int;  (** power cuts to a remote site's own WAL *)
  site_recovered : int;  (** entries the crashed sites replayed from their WALs *)
  site_replayed : int;  (** lost-suffix entries the feed re-sent after site crashes *)
  consolidations : int;
  refines_ok : int;
  refines_rejected : int;
  degraded_epochs : int;
  enforce_trips : int;
  tampers : int;  (** bit-flips injected into accepted (stable) records *)
  tampers_detected : int;  (** of those, reported as [Tamper_detected] *)
  events : string list;  (** step-by-step fault log, oldest first *)
  violation : violation option;
}

val run : ?nsites:int -> ?trace:(string -> unit) -> seed:int -> steps:int -> unit -> report
(** Execute a [steps]-action schedule over [nsites] faulty remotes
    (default 2) plus the clinical DB, then the convergence epilogue.
    [trace] streams the event log as it is produced.  Stops at the first
    violation. *)

val passed : report -> bool

val pp : Format.formatter -> report -> unit
val pp_violation : Format.formatter -> violation -> unit
