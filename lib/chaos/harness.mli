(** Whole-system chaos harness: composed fault schedules against a
    model-based invariant checker.

    One seeded {!Schedule} drives a full {!Prima_system.System} — durable
    storage, fault-injected federation, budgeted queries, the refinement
    loop — while a pure {!Model} oracle receives the same inputs
    fault-free.  Ten invariants are checked as the run unfolds:

    + {b no-loss} — recovery yields a prefix of the appended entries,
      never below the durable floor (the lying-fsync [Truncated_sync]
      point excepted); consolidated windows are sub-multisets of the
      model trail.
    + {b quarantine-exactly-once} — [delivered + quarantined + skipped =
      total]; items unique per [(site, seq)]; crash recovery restores
      exactly the synced item set.
    + {b coverage-bound} — the system's coverage numerator/denominator
      never exceed the model's exact readings; nothing refinement accepts
      falls outside the fault-free epoch's acceptance.
    + {b recovery-idempotent} — recovering the same devices twice yields
      identical state with nothing newly dropped.
    + {b convergence} — after faults stop, consolidation, coverage and a
      final refinement all agree exactly with the model.
    + {b tamper-evidence} — every injected bit-flip of an accepted
      (stable) audit record is reported as
      {!Durable.Recovery.Tamper_detected} at the exact frame offset,
      idempotently; the mutated record is never read back; the rebuilt
      system is durably degraded with [Lower_bound] coverage; and no
      ordinary crash is ever classified as tampering.
    + {b site-local-recovery} — a remote whose own WAL is power-cut
      recovers locally to a prefix of its ingested stream, never below its
      durable floor ([Truncated_sync] excepted), never as tampering,
      idempotently; a lossy recovery keeps coverage at [Lower_bound] until
      the feed replays the lost suffix, after which the system
      re-converges to [Exact].
    + {b cache-coherence} — after a mid-run vocabulary edit, the system's
      coverage readings equal a from-scratch recompute over the same
      policies under an identically rebuilt (freshly stamped) vocabulary:
      no grounding cache may answer from a dead stamp.  Checked at every
      edit and every consolidation.
    + {b purpose-plausibility} — multi-step clinical plans from
      {!Workload.Purpose} are classified exactly as generated: untwisted
      instances pass prefix conformance, twisted ones never do.
    + {b admission-fairness} — during an {!Schedule.action.Overload_storm}
      through {!Audit_mgmt.Admission.drain}, every non-storm tenant's
      admitted count equals its pure token-bucket floor exactly (a 10:1
      hot tenant cannot starve the others), the storm tenant matches the
      bucket-and-drain-capacity prediction, no mutation ever browns out,
      every shed carries an honest retry hint, and a shed batch leaves no
      partial mutation behind (store, sequence floor and quarantine all
      untouched).  The controller is client-owned: crashes and rebuilds
      must never refill a bucket or reset a counter.

    The raw federation path additionally checks mapping coherence: under
    the correct foreign-dialect mapping every raw record ingests and
    round-trips exactly; under a broken one every record quarantines
    (never drops); fixing the mapping reprocesses exactly the backlog.

    Fully deterministic in [seed]: a violation replays from its seed
    alone, or — via {!run_actions} — from an explicit (possibly shrunk)
    action list. *)

type violation = {
  step : int;  (** 1-based schedule position; 0 = setup, steps+1 = epilogue *)
  action : string;
  invariant : string;
  detail : string;
}

(** A deliberate, deterministic bug the harness can arm ({!run_actions}'s
    [defect]) so the {!Shrink} minimizer has real failures to work on. *)
type defect =
  | Eat_entry of int  (** swallow the [k]-th clinical append (1-based) *)
  | Drop_replay  (** skip the first post-crash replay of the lost suffix *)
  | Stale_vocab  (** never hand vocabulary edits to the system *)

val defect_to_string : defect -> string

val defect_of_string : string -> defect option
(** Total inverse of {!defect_to_string}; [None] on anything else. *)

type report = {
  seed : int;
  steps : int;
  actions_run : int;
  appended : int;
  crashes : int;
  site_crashes : int;  (** power cuts to a remote site's own WAL *)
  site_recovered : int;  (** entries the crashed sites replayed from their WALs *)
  site_replayed : int;  (** lost-suffix entries the feed re-sent after site crashes *)
  consolidations : int;
  refines_ok : int;
  refines_rejected : int;
  degraded_epochs : int;
  enforce_trips : int;
  tampers : int;  (** bit-flips injected into accepted (stable) records *)
  tampers_detected : int;  (** of those, reported as [Tamper_detected] *)
  raw_ingested : int;  (** raw foreign-dialect records mapped and ingested *)
  raw_quarantined : int;  (** raw records a broken mapping sent to quarantine *)
  reprocessed : int;  (** quarantined records re-ingested after a mapping fix *)
  workflows : int;  (** purpose-workflow plan instances appended *)
  twisted_workflows : int;  (** of those, plan-implausible (twisted) ones *)
  vocab_edits : int;  (** mid-run vocabulary edits adopted *)
  storms : int;  (** overload bursts driven through the admission gate *)
  storm_admitted : int;  (** storm + probe requests the gate admitted *)
  storm_shed : int;  (** storm + probe requests shed, all-or-nothing *)
  events : string list;  (** step-by-step fault log, oldest first *)
  violation : violation option;
}

val run :
  ?nsites:int ->
  ?defect:defect ->
  ?trace:(string -> unit) ->
  seed:int ->
  steps:int ->
  unit ->
  report
(** Execute a [steps]-action schedule over [nsites] faulty remotes
    (default 2) plus the clinical DB, then the convergence epilogue.
    [trace] streams the event log as it is produced; [defect] arms one
    injected bug.  Stops at the first violation. *)

val run_actions :
  ?nsites:int ->
  ?defect:defect ->
  ?trace:(string -> unit) ->
  ?pool:int ->
  seed:int ->
  actions:Schedule.action list ->
  unit ->
  report
(** {!run} over an explicit action list — the replay/shrink entry point.
    [pool] fixes the workload pool size (default [3·|actions| + 120]);
    repros record it so a shrunk schedule draws from the same entry
    stream as the original run.  Deterministic in
    [(seed, nsites, pool, defect, actions)]. *)

val passed : report -> bool

val pp : Format.formatter -> report -> unit
val pp_violation : Format.formatter -> violation -> unit
