(** Seeded whole-system fault schedules.

    One action stream interleaves the normal PRIMA loop with every fault
    plane the stack owns: federation outages/heals and simulated-clock
    advances ({!Audit_mgmt.Fault}), durable-device power cuts at each
    {!Durable.Device.crash_point}, and query-budget regimes on the
    enforcement path ({!Relational.Budget}).  Deterministic in [seed]. *)

type enforce =
  | E_plain  (** ungoverned; must return the full result set *)
  | E_tight_rows  (** row quota below the table size: must raise, not truncate *)
  | E_wall of int  (** wall-clock deadline driven off the simulated clock *)
  | E_cancel of int  (** cooperative cancellation after [n] ticks *)

type action =
  | Append_clinical of int
  | Append_remote of int * int  (** (site index, count) *)
  | Sync_durable
  | Checkpoint_durable
  | Crash of Durable.Device.crash_point
  | Site_crash of int * Durable.Device.crash_point
      (** (site index, point): power-cut that remote's own WAL, recover
          it locally, reseat it and replay the lost suffix *)
  | Consolidate
  | Outage of int
  | Heal of int
  | Advance_clock of int
  | Refine of int option  (** [Some ticks]: governed extraction budget *)
  | Enforce of enforce
  | Set_group_commit of bool
  | Tamper of int * int
      (** (record pick, bit pick): flip one bit of a previously accepted
          (stable) audit WAL record; recovery must say [Tamper_detected] *)

val generate : nsites:int -> seed:int -> steps:int -> action list
val to_string : action -> string
val pp : Format.formatter -> action -> unit
