(** Seeded whole-system fault schedules.

    One action stream interleaves the normal PRIMA loop with every fault
    plane the stack owns: federation outages/heals and simulated-clock
    advances ({!Audit_mgmt.Fault}), durable-device power cuts at each
    {!Durable.Device.crash_point}, query-budget regimes on the
    enforcement path ({!Relational.Budget}), schema-mapping swaps on the
    raw ingest path ({!Audit_mgmt.Mapping}), mid-run vocabulary edits
    racing the grounding caches, auto-checkpoint toggles, and
    purpose-workflow plans with plan-implausible twists
    ({!Workload.Purpose}).  Deterministic in [seed].

    Actions serialize through {!to_string}/{!of_string}, so a shrunk
    schedule replays from its textual repro alone ({!Shrink}). *)

type enforce =
  | E_plain  (** ungoverned; must return the full result set *)
  | E_tight_rows  (** row quota below the table size: must raise, not truncate *)
  | E_wall of int  (** wall-clock deadline driven off the simulated clock *)
  | E_cancel of int  (** cooperative cancellation after [n] ticks *)

type action =
  | Append_clinical of int
  | Append_remote of int * int  (** (site index, count) *)
  | Append_remote_raw of int * int
      (** (site index, count): the same accesses arrive as foreign-dialect
          raw rows through the site's schema {!Audit_mgmt.Mapping} — under
          a broken mapping they must quarantine, never drop *)
  | Set_mapping of int * bool
      (** (site index, correct?): swap remote [i]'s schema mapping mid-run.
          [true] installs the correct foreign-dialect mapping and
          reprocesses whatever the previous mapping quarantined; [false]
          installs a broken one (the role column alias is missing) *)
  | Append_workflow of int * Workload.Purpose.twist option
      (** (template pick, twist): one multi-step clinical plan lands on the
          clinical DB — admission through billing — either faithful to its
          template or twisted into a plan-implausible sequence *)
  | Vocab_edit of int
      (** grow a taxonomy leaf under the picked parent category and adopt
          the re-stamped vocabulary mid-run, then append one access using
          the new leaf: every grounding cache keyed by the old stamp must
          go cold, post-edit coverage must equal a from-scratch recompute *)
  | Sync_durable
  | Checkpoint_durable
  | Set_auto_checkpoint of bool
      (** toggle background WAL compaction on every attached log while
          appends, crashes and consolidations keep racing it *)
  | Crash of Durable.Device.crash_point
  | Site_crash of int * Durable.Device.crash_point
      (** (site index, point): power-cut that remote's own WAL, recover
          it locally, reseat it and replay the lost suffix *)
  | Consolidate
  | Outage of int
  | Heal of int
  | Advance_clock of int
  | Refine of int option  (** [Some ticks]: governed extraction budget *)
  | Refine_race of int
      (** consolidate, let [n] fresh accesses land behind the window's
          back, then refine: the epoch must stay sound for the window it
          actually saw *)
  | Set_threshold of int
      (** set the completeness threshold to [pct]/100 mid-run; acceptance
          discipline must follow the new floor immediately *)
  | Enforce of enforce
  | Set_group_commit of bool
  | Tamper of int * int
      (** (record pick, bit pick): flip one bit of a previously accepted
          (stable) audit WAL record; recovery must say [Tamper_detected] *)
  | Overload_storm of int * int
      (** (tenant index, rate): [rate] single-row mutation requests from
          the storm tenant race fixed probe loads from every other tenant
          through the admission gate's weighted-fair arbiter
          ({!Audit_mgmt.Admission.drain}); non-storm tenants must keep
          exactly their token-bucket floor, no mutation may brown out,
          and every shed request must be all-or-nothing with an honest
          retry hint *)
  | Set_budget_class of int * int
      (** (tenant index, preset pick): reconfigure that tenant's budget
          class to one of {!n_class_presets} fixed presets mid-run — from
          generous down to a zero-capacity class that can never admit *)

(** {1 Generation} *)

exception Invalid_weights of string
(** Raised by {!generate} when a weight is negative or the table sums to
    zero — a schedule that could draw nothing is a configuration error,
    not an empty run. *)

type weights = {
  w_append_clinical : int;
  w_append_remote : int;
  w_append_remote_raw : int;
  w_set_mapping : int;
  w_append_workflow : int;
  w_vocab_edit : int;
  w_sync : int;
  w_checkpoint : int;
  w_auto_checkpoint : int;
  w_crash : int;
  w_site_crash : int;
  w_consolidate : int;
  w_outage : int;
  w_heal : int;
  w_advance : int;
  w_refine : int;
  w_refine_race : int;
  w_threshold : int;
  w_enforce : int;
  w_group_commit : int;
  w_tamper : int;
  w_overload_storm : int;
  w_set_budget_class : int;
}
(** Relative draw frequency per action class.  A zero weight means that
    class is never drawn (pinned by test); negative weights and all-zero
    tables raise {!Invalid_weights}. *)

val default_weights : weights

val n_tenants : int
(** The fixed multi-tenant cast (3): storm and probe principals are
    always drawn from tenants [0 .. n_tenants - 1], each bound to its own
    budget class. *)

val n_class_presets : int
(** Size of the budget-class preset palette {!Set_budget_class} draws
    from (4): generous, standard, tight, zero-capacity. *)

val generate :
  ?weights:weights -> nsites:int -> seed:int -> steps:int -> unit -> action list
(** @raise Invalid_weights on a negative weight or an all-zero table. *)

(** {1 Serialization} *)

val to_string : action -> string
val pp : Format.formatter -> action -> unit

val of_string : string -> action option
(** Total inverse of {!to_string}: [of_string (to_string a) = Some a] for
    every action; [None] on anything else. *)
