(** Pure in-memory oracle for the chaos harness.

    Fed the same entries and the same accepted patterns as the real system
    but subject to no faults: plain lists for the stores, a stable sort by
    timestamp for consolidation, and the fault-free ungoverned refinement
    epoch as the ceiling on what the system may accept.  Shares no
    machinery with the implementation under test. *)

type t

val create : vocab:Vocabulary.Vocab.t -> p_ps:Prima_core.Policy.t -> nsites:int -> t

val append_clinical : t -> Hdb.Audit_schema.entry list -> unit
val append_remote : t -> int -> Hdb.Audit_schema.entry list -> unit

val clinical : t -> Hdb.Audit_schema.entry list
(** Everything ever appended to the clinical store, in append order. *)

val clinical_length : t -> int

val synced : t -> int
(** The durable floor: a crash may never lose entries below this index. *)

val set_synced : t -> int -> unit

val remote : t -> int -> Hdb.Audit_schema.entry list
(** Everything ever ingested at remote [i], in append order. *)

val remote_length : t -> int -> int

val remote_synced : t -> int -> int
(** Remote [i]'s durable floor: a site-local crash may never lose entries
    below this index. *)

val set_remote_synced : t -> int -> int -> unit

val mark_all_synced : t -> unit
(** A whole-system sync: the clinical floor and every remote floor rise
    to the current stream lengths. *)

val p_ps : t -> Prima_core.Policy.t

val vocab : t -> Vocabulary.Vocab.t

val set_vocab : t -> Vocabulary.Vocab.t -> unit
(** Mirror a mid-run vocabulary edit: every subsequent coverage and epoch
    computation grounds against the re-stamped vocabulary the system
    adopted. *)

val consolidated : t -> Hdb.Audit_schema.entry list
(** The fault-free consolidated trail: stable time sort across the
    clinical and remote streams in federation site order. *)

val total_entries : t -> int

val trail_policy : t -> Prima_core.Policy.t
(** P_AL over the full fault-free trail. *)

val coverage : t -> Prima_core.Coverage.stats * Prima_core.Coverage.stats
(** Exact (set, bag) coverage of the full trail against the mirrored
    store, pattern-attribute projection — the system's readings may never
    exceed these. *)

val epoch : t -> Prima_core.Refinement.epoch_report
(** The hypothetical fault-free, ungoverned refinement epoch: the ceiling
    on what the system's refine may accept. *)

val install : t -> Prima_core.Rule.t list -> unit
(** Mirror patterns the system actually accepted into the model's store. *)

(** {1 Admission mirror}

    A pure token bucket per tenant — the oracle for invariant 10
    (admission fairness).  Same closed-boundary refill arithmetic as
    {!Audit_mgmt.Admission}, none of its machinery. *)

val set_tenant_classes : t -> (int * int) list -> unit
(** One [(capacity, refill_per_s)] rows bucket per tenant, full at
    clock 0. *)

val set_tenant_quota : t -> tenant:int -> capacity:int -> refill_per_s:int -> unit
(** Mirror a mid-run class reconfiguration: the level clamps to the new
    capacity; carry and refill clock survive. *)

val tenant_tokens : t -> tenant:int -> now:int -> int
(** The bucket level after refilling to [now]. *)

val admit_requests :
  t -> tenant:int -> now:int -> level:int -> ?serve_cap:int -> count:int -> unit -> int
(** How many of [count] single-row mutation requests the gate must admit
    at [now] under pressure [level] (strict admission needs [1 + level]
    tokens per request, debits one); [serve_cap] caps the answer at the
    server drain capacity left for this tenant.  Debits the bucket by the
    returned count. *)
