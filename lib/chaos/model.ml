(* The pure in-memory oracle the harness checks the real system against.

   It sees the same inputs — every appended entry and every pattern the
   system actually installed — but none of the faults: plain lists stand in
   for the durable store and the remote sites, and consolidation is a
   stable sort by timestamp over the streams in federation site order
   (clinical first), which is exactly what the fault-free k-way heap merge
   produces.  Everything here is a few lines of obviously-correct code; the
   point is that it shares no machinery with the implementation under
   test. *)

(* One pure token bucket per tenant — the mirror of the rows bucket the
   admission controller meters storm mutations against.  Same arithmetic
   as Admission.refill: closed boundary (integer credit
   (carry + elapsed * rate) / 1000), carry resets when the bucket tops
   out. *)
type tenant_bucket = {
  mutable cap : int;
  mutable rate : int;  (** tokens per second *)
  mutable tokens : int;
  mutable carry : int;  (** refill numerator remainder, < 1000 *)
  mutable tlast : int;  (** clock reading of the last refill *)
}

type t = {
  mutable vocab : Vocabulary.Vocab.t;
  mutable p_ps : Prima_core.Policy.t;
  mutable clinical_rev : Hdb.Audit_schema.entry list;
  mutable clinical_len : int;
  mutable synced : int;  (** durable floor: entries guaranteed to survive a crash *)
  remote_rev : Hdb.Audit_schema.entry list array;
  remote_synced : int array;  (** per-remote durable floors (site WALs) *)
  mutable tenants : tenant_bucket array;  (** admission mirror, [] until set *)
}

let create ~vocab ~p_ps ~nsites =
  {
    vocab;
    p_ps;
    clinical_rev = [];
    clinical_len = 0;
    synced = 0;
    remote_rev = Array.make nsites [];
    remote_synced = Array.make nsites 0;
    tenants = [||];
  }

let append_clinical t entries =
  List.iter
    (fun e ->
      t.clinical_rev <- e :: t.clinical_rev;
      t.clinical_len <- t.clinical_len + 1)
    entries

let append_remote t i entries =
  List.iter (fun e -> t.remote_rev.(i) <- e :: t.remote_rev.(i)) entries

let clinical t = List.rev t.clinical_rev
let clinical_length t = t.clinical_len
let synced t = t.synced
let set_synced t n = t.synced <- n

let remote t i = List.rev t.remote_rev.(i)
let remote_length t i = List.length t.remote_rev.(i)
let remote_synced t i = t.remote_synced.(i)
let set_remote_synced t i n = t.remote_synced.(i) <- n

(* A whole-system sync makes every attached WAL durable: the clinical
   floor and each remote site's floor all rise to the current lengths. *)
let mark_all_synced t =
  t.synced <- t.clinical_len;
  Array.iteri (fun i l -> t.remote_synced.(i) <- List.length l) t.remote_rev

let p_ps t = t.p_ps
let vocab t = t.vocab

(* Mirror a mid-run vocabulary edit: the oracle grounds everything from
   here on against the same re-stamped vocabulary the system adopted. *)
let set_vocab t vocab = t.vocab <- vocab

(* The fault-free consolidated trail.  Workload timestamps are strictly
   increasing, so a stable sort keyed on time alone reproduces the heap
   merge (and its site-order tie-break never fires). *)
let consolidated t =
  let streams =
    clinical t :: (Array.to_list t.remote_rev |> List.map List.rev)
  in
  List.stable_sort
    (fun (a : Hdb.Audit_schema.entry) (b : Hdb.Audit_schema.entry) ->
      compare a.time b.time)
    (List.concat streams)

let total_entries t =
  t.clinical_len + Array.fold_left (fun n l -> n + List.length l) 0 t.remote_rev

let trail_policy t = Audit_mgmt.To_policy.policy_of_entries (consolidated t)

(* Both coverage readings over the full trail, same projection the system
   uses (the three pattern attributes). *)
let coverage t =
  let attrs = Vocabulary.Audit_attrs.pattern in
  let p_y = trail_policy t in
  ( Prima_core.Coverage.aligned ~bag:false t.vocab ~attrs ~p_x:t.p_ps ~p_y,
    Prima_core.Coverage.aligned ~bag:true t.vocab ~attrs ~p_x:t.p_ps ~p_y )

(* The hypothetical fault-free, ungoverned refinement epoch over the full
   trail: what the system's refine could at most accept. *)
let epoch t =
  Prima_core.Refinement.run_epoch ~vocab:t.vocab ~p_ps:t.p_ps
    ~p_al:(trail_policy t) ()

(* Mirror the system's store: whatever the system actually accepted and
   installed is installed here too, keeping P_PS bitwise in step. *)
let install t rules = t.p_ps <- Prima_core.Policy.add_rules t.p_ps rules

(* ---------- admission mirror (invariant 10) ---------- *)

let set_tenant_classes t specs =
  t.tenants <-
    Array.of_list
      (List.map
         (fun (cap, rate) -> { cap; rate; tokens = cap; carry = 0; tlast = 0 })
         specs)

(* Mirror of Admission.set_class on an existing bucket: the level is
   clamped to the new capacity, carry and refill clock survive. *)
let set_tenant_quota t ~tenant ~capacity ~refill_per_s =
  let b = t.tenants.(tenant) in
  b.cap <- capacity;
  b.rate <- refill_per_s;
  b.tokens <- min capacity b.tokens

(* Closed-boundary refill, identical to Admission.refill. *)
let refill_bucket b ~now =
  if now > b.tlast then begin
    let elapsed = now - b.tlast in
    b.tlast <- now;
    let num = b.carry + (elapsed * b.rate) in
    b.tokens <- b.tokens + (num / 1000);
    b.carry <- num mod 1000;
    if b.tokens >= b.cap then begin
      b.tokens <- b.cap;
      b.carry <- 0
    end
  end

let tenant_tokens t ~tenant ~now =
  let b = t.tenants.(tenant) in
  refill_bucket b ~now;
  b.tokens

(* How many of [count] single-row mutation requests the gate admits at
   [now] under pressure [level], and the bucket debit that goes with
   them.  Strict admission needs [1 + level] tokens per request but
   debits one, so a bucket holding [tok] covers [tok - level] requests;
   [serve_cap] additionally models the server's drain capacity left after
   the other tenants were served. *)
let admit_requests t ~tenant ~now ~level ?serve_cap ~count () =
  let b = t.tenants.(tenant) in
  refill_bucket b ~now;
  let by_bucket = max 0 (min count (b.tokens - level)) in
  let admitted =
    match serve_cap with None -> by_bucket | Some cap -> max 0 (min by_bucket cap)
  in
  b.tokens <- b.tokens - admitted;
  admitted
