(* ddmin over chaos schedules.

   The oracle is the harness itself: a candidate action list "fails" when
   [Harness.run_actions] over it — same seed, same site count, same
   workload pool, same armed defect — violates the same invariant the
   original run violated.  Any sublist of a valid schedule is itself valid
   (site indices are fixed at generation, pool exhaustion is a handled
   no-op), so candidates need no repair step; and because a run is a pure
   function of (seed, nsites, pool, defect, actions), the oracle's answers
   are stable and the whole minimization is deterministic.

   Shrinking proceeds in rounds to a fixpoint:

   1. ddmin chunk deletion — try dropping ever-smaller chunks (n/2 down to
      single actions) until no single deletion keeps the failure alive:
      the result is 1-minimal.
   2. clock collapsing — adjacent [Advance_clock] actions merge into one.
   3. parameter simplification — per surviving action, try canonical
      smaller parameters (counts to 1, picks and site indices to 0,
      governed refinement to plain, wall/cancel budgets to plain
      enforcement, crash points to clean-loss) and keep the first that
      still fails.
   4. site-count reduction — when no surviving action touches the higher
      site indices, re-run with fewer sites.

   Chunk deletion dominates the candidate budget; the passes polish the
   survivors so committed repros read as small, round numbers. *)

type repro = {
  seed : int;
  nsites : int;
  pool : int;
  defect : Harness.defect option;
  invariant : string;
  step : int;
  actions : Schedule.action list;
}

let replay r =
  Harness.run_actions ~nsites:r.nsites ?defect:r.defect ~pool:r.pool ~seed:r.seed
    ~actions:r.actions ()

let violation_of r actions =
  let report =
    Harness.run_actions ~nsites:r.nsites ?defect:r.defect ~pool:r.pool ~seed:r.seed
      ~actions ()
  in
  match report.Harness.violation with
  | Some v when String.equal v.Harness.invariant r.invariant -> Some v
  | _ -> None

let still_fails r = violation_of r r.actions <> None

let of_report ?defect ?(nsites = 2) ~actions (report : Harness.report) =
  match report.Harness.violation with
  | None -> None
  | Some v ->
    Some
      {
        seed = report.Harness.seed;
        nsites;
        pool = (report.Harness.steps * 3) + 120;
        defect;
        invariant = v.Harness.invariant;
        step = v.Harness.step;
        actions;
      }

type stats = {
  original : int;
  minimal : int;
  candidates : int;
  rounds : int;
}

(* ---------- pass 1: ddmin chunk deletion ---------- *)

let drop_range xs ~from ~len =
  List.filteri (fun i _ -> i < from || i >= from + len) xs

(* Delete chunks of [size], left to right, restarting the scan on every
   successful deletion (the classic ddmin complement step); halve the
   chunk size when a whole scan removes nothing.  Terminates with a list
   from which no single action can be deleted. *)
let ddmin ~oracle actions =
  let tried = ref 0 in
  let fails candidate =
    incr tried;
    oracle candidate
  in
  let rec at_size actions size =
    if size < 1 then actions
    else begin
      let rec scan actions from =
        if from >= List.length actions then None
        else begin
          let candidate =
            drop_range actions ~from ~len:(min size (List.length actions - from))
          in
          if candidate <> [] && fails candidate then Some candidate
          else scan actions (from + size)
        end
      in
      match scan actions 0 with
      | Some smaller -> at_size smaller (min size (List.length smaller))
      | None -> at_size actions (size / 2)
    end
  in
  let n = List.length actions in
  let result = at_size actions (max 1 (n / 2)) in
  (result, !tried)

(* ---------- pass 2: collapse adjacent clock advances ---------- *)

let collapse_clocks actions =
  let rec go = function
    | Schedule.Advance_clock a :: Schedule.Advance_clock b :: rest ->
      go (Schedule.Advance_clock (a + b) :: rest)
    | x :: rest -> x :: go rest
    | [] -> []
  in
  go actions

(* ---------- pass 3: per-action parameter simplification ---------- *)

(* Candidate replacements, most aggressive first; the first that keeps the
   failure alive wins.  Only emit genuinely different actions. *)
let simpler (action : Schedule.action) : Schedule.action list =
  let clean = Durable.Device.Clean_loss in
  let all =
    match action with
    | Schedule.Append_clinical n -> [ Schedule.Append_clinical 1; Schedule.Append_clinical (n / 2) ]
    | Schedule.Append_remote (i, n) ->
      [ Schedule.Append_remote (0, 1); Schedule.Append_remote (i, 1);
        Schedule.Append_remote (0, n) ]
    | Schedule.Append_remote_raw (i, n) ->
      [ Schedule.Append_remote_raw (0, 1); Schedule.Append_remote_raw (i, 1);
        Schedule.Append_remote_raw (0, n) ]
    | Schedule.Set_mapping (_, c) -> [ Schedule.Set_mapping (0, c) ]
    | Schedule.Append_workflow (_, twist) -> [ Schedule.Append_workflow (0, twist) ]
    | Schedule.Vocab_edit _ -> [ Schedule.Vocab_edit 0 ]
    | Schedule.Crash _ -> [ Schedule.Crash clean ]
    | Schedule.Site_crash (i, point) ->
      [ Schedule.Site_crash (0, clean); Schedule.Site_crash (i, clean);
        Schedule.Site_crash (0, point) ]
    | Schedule.Outage _ -> [ Schedule.Outage 0 ]
    | Schedule.Heal _ -> [ Schedule.Heal 0 ]
    | Schedule.Advance_clock _ -> [ Schedule.Advance_clock 50 ]
    | Schedule.Refine (Some _) -> [ Schedule.Refine None ]
    | Schedule.Refine_race _ -> [ Schedule.Refine_race 1 ]
    | Schedule.Enforce (Schedule.E_wall _) | Schedule.Enforce (Schedule.E_cancel _) ->
      [ Schedule.Enforce Schedule.E_plain ]
    | Schedule.Tamper (pick, bit) ->
      [ Schedule.Tamper (0, 0); Schedule.Tamper (pick mod 8, bit mod 64) ]
    | Schedule.Overload_storm (t, rate) ->
      [ Schedule.Overload_storm (0, 10); Schedule.Overload_storm (t, 10);
        Schedule.Overload_storm (0, rate) ]
    | Schedule.Set_budget_class (_, preset) -> [ Schedule.Set_budget_class (0, preset) ]
    | Schedule.Set_auto_checkpoint _ | Schedule.Sync_durable | Schedule.Checkpoint_durable
    | Schedule.Consolidate | Schedule.Refine None | Schedule.Set_threshold _
    | Schedule.Enforce _ | Schedule.Set_group_commit _ ->
      []
  in
  List.filter (fun a -> a <> action) all

let replace_nth xs n x = List.mapi (fun i y -> if i = n then x else y) xs

let simplify_params ~oracle actions =
  let tried = ref 0 in
  let fails candidate =
    incr tried;
    oracle candidate
  in
  let rec at actions n =
    if n >= List.length actions then actions
    else begin
      let current = List.nth actions n in
      let rec first = function
        | [] -> None
        | candidate_action :: rest ->
          let candidate = replace_nth actions n candidate_action in
          if fails candidate then Some candidate else first rest
      in
      match first (simpler current) with
      | Some better -> at better (n + 1)
      | None -> at actions (n + 1)
    end
  in
  (at actions 0, !tried)

(* ---------- pass 4: site-count reduction ---------- *)

let max_site_index actions =
  List.fold_left
    (fun acc a ->
      match a with
      | Schedule.Append_remote (i, _) | Schedule.Append_remote_raw (i, _)
      | Schedule.Set_mapping (i, _) | Schedule.Site_crash (i, _) | Schedule.Outage i
      | Schedule.Heal i ->
        max acc i
      | _ -> acc)
    (-1) actions

(* ---------- the driver ---------- *)

let shrink ?(max_rounds = 10) r =
  let original = List.length r.actions in
  let candidates = ref 0 in
  let current = ref r in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < max_rounds do
    incr rounds;
    changed := false;
    let r0 = !current in
    let oracle actions = violation_of r0 actions <> None in
    (* 1. chunk deletion to 1-minimality *)
    let smaller, n1 = ddmin ~oracle r0.actions in
    candidates := !candidates + n1;
    if List.length smaller < List.length r0.actions then changed := true;
    (* 2. merge adjacent clock advances (validated as one candidate) *)
    let smaller =
      let merged = collapse_clocks smaller in
      if merged <> smaller then begin
        incr candidates;
        if oracle merged then begin
          changed := true;
          merged
        end
        else smaller
      end
      else smaller
    in
    (* 3. per-action parameter simplification *)
    let simpler_actions, n3 = simplify_params ~oracle smaller in
    candidates := !candidates + n3;
    if simpler_actions <> smaller then changed := true;
    current := { r0 with actions = simpler_actions };
    (* 4. drop sites no surviving action touches *)
    let needed = max 1 (max_site_index simpler_actions + 1) in
    if needed < !current.nsites then begin
      incr candidates;
      let candidate = { !current with nsites = needed } in
      if still_fails candidate then begin
        changed := true;
        current := candidate
      end
    end
  done;
  (* pin the violation step of the minimal schedule into the repro *)
  let final =
    match violation_of !current !current.actions with
    | Some v -> { !current with step = v.Harness.step }
    | None -> !current (* unreachable: every accepted candidate fails *)
  in
  ( final,
    {
      original;
      minimal = List.length final.actions;
      candidates = !candidates;
      rounds = !rounds;
    } )

(* ---------- serialization ---------- *)

let header = "prima-chaos-repro v1"

let to_string r =
  let b = Buffer.create 1024 in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  Printf.bprintf b "seed %d\n" r.seed;
  Printf.bprintf b "nsites %d\n" r.nsites;
  Printf.bprintf b "pool %d\n" r.pool;
  Printf.bprintf b "defect %s\n"
    (match r.defect with None -> "none" | Some d -> Harness.defect_to_string d);
  Printf.bprintf b "invariant %s\n" r.invariant;
  Printf.bprintf b "step %d\n" r.step;
  Printf.bprintf b "actions %d\n" (List.length r.actions);
  List.iter
    (fun a ->
      Buffer.add_string b (Schedule.to_string a);
      Buffer.add_char b '\n')
    r.actions;
  Buffer.contents b

let of_string s =
  let lines =
    String.split_on_char '\n' s |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let field name = function
    | line :: rest ->
      let prefix = name ^ " " in
      let plen = String.length prefix in
      if String.length line > plen && String.sub line 0 plen = prefix then
        Ok (String.sub line plen (String.length line - plen), rest)
      else Error (Printf.sprintf "expected %S line, got %S" name line)
    | [] -> Error (Printf.sprintf "missing %S line" name)
  in
  let int_field name lines =
    match field name lines with
    | Error _ as e -> e
    | Ok (v, rest) -> (
      match int_of_string_opt v with
      | Some n -> Ok (n, rest)
      | None -> Error (Printf.sprintf "%s: %S is not an integer" name v))
  in
  let ( let* ) = Result.bind in
  match lines with
  | h :: rest when h = header ->
    let* seed, rest = int_field "seed" rest in
    let* nsites, rest = int_field "nsites" rest in
    let* pool, rest = int_field "pool" rest in
    let* defect_s, rest = field "defect" rest in
    let* defect =
      if defect_s = "none" then Ok None
      else
        match Harness.defect_of_string defect_s with
        | Some d -> Ok (Some d)
        | None -> Error (Printf.sprintf "unknown defect %S" defect_s)
    in
    let* invariant, rest = field "invariant" rest in
    let* step, rest = int_field "step" rest in
    let* count, rest = int_field "actions" rest in
    if List.length rest <> count then
      Error
        (Printf.sprintf "declared %d action(s) but found %d" count (List.length rest))
    else
      let* actions =
        List.fold_left
          (fun acc line ->
            let* acc = acc in
            match Schedule.of_string line with
            | Some a -> Ok (a :: acc)
            | None -> Error (Printf.sprintf "unparseable action %S" line))
          (Ok []) rest
      in
      Ok { seed; nsites; pool; defect; invariant; step; actions = List.rev actions }
  | h :: _ -> Error (Printf.sprintf "bad header %S (want %S)" h header)
  | [] -> Error "empty repro"

let save path r =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (to_string r);
  close_out oc;
  Sys.rename tmp path

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s
