(* A composed fault schedule: one seeded stream of whole-system actions
   interleaving the normal PRIMA loop (appends, consolidation, refinement,
   enforcement queries) with every fault plane the stack owns — federation
   outages and clock advances, durable-device crash points, query-budget
   trips, schema-mapping swaps on the raw ingest path, mid-run vocabulary
   edits, auto-checkpoint toggles, and purpose-workflow plans with
   plan-implausible twists.  Generation is deterministic in the seed, so
   any run replays from its seed alone; individual actions round-trip
   through to_string/of_string, so a shrunk schedule also replays from its
   textual repro alone. *)

type enforce =
  | E_plain  (** ungoverned; must return the full result set *)
  | E_tight_rows  (** row quota below the table size: must raise, not truncate *)
  | E_wall of int  (** wall-clock deadline driven off the simulated clock *)
  | E_cancel of int  (** cooperative cancellation after [n] ticks *)

type action =
  | Append_clinical of int  (** next [n] workload accesses hit the clinical DB *)
  | Append_remote of int * int  (** (site index, n) accesses land at a remote *)
  | Append_remote_raw of int * int
      (** (site index, n): the same accesses arrive as foreign-dialect raw
          rows through the site's schema mapping — under a broken mapping
          they must quarantine, never drop *)
  | Set_mapping of int * bool
      (** (site index, correct?): swap remote [i]'s schema mapping mid-run;
          [true] also reprocesses what the previous mapping quarantined *)
  | Append_workflow of int * Workload.Purpose.twist option
      (** (template pick, twist): one multi-step clinical plan, faithful
          or twisted into a plan-implausible sequence *)
  | Vocab_edit of int
      (** grow a taxonomy leaf under the picked parent and adopt the
          re-stamped vocabulary mid-run *)
  | Sync_durable  (** fsync both WALs: everything so far becomes the floor *)
  | Checkpoint_durable  (** snapshot + truncate both logs *)
  | Set_auto_checkpoint of bool  (** toggle background WAL compaction *)
  | Crash of Durable.Device.crash_point
      (** power-cut the durable devices, recover, and resume on the
          rebuilt system *)
  | Site_crash of int * Durable.Device.crash_point
      (** power-cut remote [i]'s own WAL at the drawn point, recover the
          site locally from its op log, reseat it into the federation and
          replay the lost suffix *)
  | Consolidate  (** fault-aware consolidation + qualified coverage *)
  | Outage of int  (** force the persistent outage on remote [i] *)
  | Heal of int  (** clear every injected fault on remote [i] *)
  | Advance_clock of int  (** simulated ms: retries, breaker cooldowns *)
  | Refine of int option  (** one refinement cycle; [Some ticks] governs it *)
  | Refine_race of int
      (** consolidate, let [n] accesses land behind the window's back,
          then refine *)
  | Set_threshold of int  (** completeness threshold := [pct]/100 *)
  | Enforce of enforce  (** an enforcement query under a budget regime *)
  | Set_group_commit of bool  (** toggle WAL group-commit batching *)
  | Tamper of int * int
      (** flip bit [pick2 mod 8] of a previously accepted (stable) audit
          WAL record chosen by [pick1]; recovery must report
          [Tamper_detected], never a clean or torn verdict *)
  | Overload_storm of int * int
      (** (tenant index, rate): an overload burst — [rate] single-row
          mutation requests from the storm tenant race fixed probe loads
          from every other tenant through the admission gate's
          weighted-fair arbiter; non-storm tenants must keep exactly their
          token-bucket floor and every shed request must be all-or-nothing
          with an honest retry hint *)
  | Set_budget_class of int * int
      (** (tenant index, preset pick): reconfigure the storm tenant's
          budget class to one of the fixed presets mid-run — from generous
          down to a zero-capacity class that can never admit *)

let enforce_to_string = function
  | E_plain -> "enforce(plain)"
  | E_tight_rows -> "enforce(tight-rows)"
  | E_wall w -> Printf.sprintf "enforce(wall %dms)" w
  | E_cancel n -> Printf.sprintf "enforce(cancel@%d)" n

let to_string = function
  | Append_clinical n -> Printf.sprintf "append-clinical %d" n
  | Append_remote (i, n) -> Printf.sprintf "append-remote site-%d %d" i n
  | Append_remote_raw (i, n) -> Printf.sprintf "append-remote-raw site-%d %d" i n
  | Set_mapping (i, correct) ->
    Printf.sprintf "set-mapping site-%d %s" i (if correct then "correct" else "broken")
  | Append_workflow (pick, twist) ->
    Printf.sprintf "append-workflow template-%d %s" pick
      (match twist with
      | None -> "plausible"
      | Some tw -> Workload.Purpose.twist_to_string tw)
  | Vocab_edit pick -> Printf.sprintf "vocab-edit %d" pick
  | Sync_durable -> "sync-durable"
  | Checkpoint_durable -> "checkpoint-durable"
  | Set_auto_checkpoint b -> Printf.sprintf "auto-checkpoint %b" b
  | Crash p -> "crash " ^ Durable.Device.crash_point_to_string p
  | Site_crash (i, p) ->
    Printf.sprintf "site-crash site-%d %s" i (Durable.Device.crash_point_to_string p)
  | Consolidate -> "consolidate"
  | Outage i -> Printf.sprintf "outage site-%d" i
  | Heal i -> Printf.sprintf "heal site-%d" i
  | Advance_clock ms -> Printf.sprintf "advance-clock %dms" ms
  | Refine None -> "refine"
  | Refine (Some ticks) -> Printf.sprintf "refine(governed %d ticks)" ticks
  | Refine_race n -> Printf.sprintf "refine-race %d" n
  | Set_threshold pct -> Printf.sprintf "set-threshold %d" pct
  | Enforce e -> enforce_to_string e
  | Set_group_commit b -> Printf.sprintf "group-commit %b" b
  | Tamper (pick, bit) -> Printf.sprintf "tamper record-pick %d bit-pick %d" pick bit
  | Overload_storm (tenant, rate) -> Printf.sprintf "overload-storm tenant-%d %d" tenant rate
  | Set_budget_class (tenant, preset) ->
    Printf.sprintf "set-budget-class tenant-%d preset-%d" tenant preset

let pp ppf a = Format.pp_print_string ppf (to_string a)

(* Parsing helpers for the exact shapes to_string emits. *)
let site_of s =
  if String.starts_with ~prefix:"site-" s then
    int_of_string_opt (String.sub s 5 (String.length s - 5))
  else None

let template_of s =
  if String.starts_with ~prefix:"template-" s then
    int_of_string_opt (String.sub s 9 (String.length s - 9))
  else None

let tenant_of s =
  if String.starts_with ~prefix:"tenant-" s then
    int_of_string_opt (String.sub s 7 (String.length s - 7))
  else None

let preset_of s =
  if String.starts_with ~prefix:"preset-" s then
    int_of_string_opt (String.sub s 7 (String.length s - 7))
  else None

let ms_of s =
  if String.length s > 2 && String.sub s (String.length s - 2) 2 = "ms" then
    int_of_string_opt (String.sub s 0 (String.length s - 2))
  else None

let bool_of = function
  | "true" -> Some true
  | "false" -> Some false
  | _ -> None

let nonneg = function
  | Some n when n >= 0 -> Some n
  | _ -> None

let of_string line : action option =
  let ( let* ) = Option.bind in
  match String.split_on_char ' ' (String.trim line) with
  | [ "append-clinical"; n ] ->
    let* n = nonneg (int_of_string_opt n) in
    Some (Append_clinical n)
  | [ "append-remote"; site; n ] ->
    let* i = site_of site in
    let* n = nonneg (int_of_string_opt n) in
    Some (Append_remote (i, n))
  | [ "append-remote-raw"; site; n ] ->
    let* i = site_of site in
    let* n = nonneg (int_of_string_opt n) in
    Some (Append_remote_raw (i, n))
  | [ "set-mapping"; site; style ] ->
    let* i = site_of site in
    (match style with
    | "correct" -> Some (Set_mapping (i, true))
    | "broken" -> Some (Set_mapping (i, false))
    | _ -> None)
  | [ "append-workflow"; template; style ] ->
    let* pick = template_of template in
    (match style with
    | "plausible" -> Some (Append_workflow (pick, None))
    | _ ->
      let* tw = Workload.Purpose.twist_of_string style in
      Some (Append_workflow (pick, Some tw)))
  | [ "vocab-edit"; pick ] ->
    let* pick = nonneg (int_of_string_opt pick) in
    Some (Vocab_edit pick)
  | [ "sync-durable" ] -> Some Sync_durable
  | [ "checkpoint-durable" ] -> Some Checkpoint_durable
  | [ "auto-checkpoint"; b ] ->
    let* b = bool_of b in
    Some (Set_auto_checkpoint b)
  | [ "crash"; point ] ->
    let* p = Durable.Device.crash_point_of_string point in
    Some (Crash p)
  | [ "site-crash"; site; point ] ->
    let* i = site_of site in
    let* p = Durable.Device.crash_point_of_string point in
    Some (Site_crash (i, p))
  | [ "consolidate" ] -> Some Consolidate
  | [ "outage"; site ] ->
    let* i = site_of site in
    Some (Outage i)
  | [ "heal"; site ] ->
    let* i = site_of site in
    Some (Heal i)
  | [ "advance-clock"; ms ] ->
    let* ms = nonneg (ms_of ms) in
    Some (Advance_clock ms)
  | [ "refine" ] -> Some (Refine None)
  | [ "refine(governed"; ticks; "ticks)" ] ->
    let* t = nonneg (int_of_string_opt ticks) in
    Some (Refine (Some t))
  | [ "refine-race"; n ] ->
    let* n = nonneg (int_of_string_opt n) in
    Some (Refine_race n)
  | [ "set-threshold"; pct ] ->
    let* pct = nonneg (int_of_string_opt pct) in
    Some (Set_threshold pct)
  | [ "enforce(plain)" ] -> Some (Enforce E_plain)
  | [ "enforce(tight-rows)" ] -> Some (Enforce E_tight_rows)
  | [ "enforce(wall"; ms ] when String.length ms > 3 && ms.[String.length ms - 1] = ')' ->
    let* w = nonneg (ms_of (String.sub ms 0 (String.length ms - 1))) in
    Some (Enforce (E_wall w))
  | [ cancel ] when String.starts_with ~prefix:"enforce(cancel@" cancel ->
    let body = String.sub cancel 15 (String.length cancel - 15) in
    if String.length body > 1 && body.[String.length body - 1] = ')' then
      let* n = nonneg (int_of_string_opt (String.sub body 0 (String.length body - 1))) in
      Some (Enforce (E_cancel n))
    else None
  | [ "group-commit"; b ] ->
    let* b = bool_of b in
    Some (Set_group_commit b)
  | [ "tamper"; "record-pick"; pick; "bit-pick"; bit ] ->
    let* pick = nonneg (int_of_string_opt pick) in
    let* bit = nonneg (int_of_string_opt bit) in
    Some (Tamper (pick, bit))
  | [ "overload-storm"; tenant; rate ] ->
    let* t = nonneg (tenant_of tenant) in
    let* r = nonneg (int_of_string_opt rate) in
    Some (Overload_storm (t, r))
  | [ "set-budget-class"; tenant; preset ] ->
    let* t = nonneg (tenant_of tenant) in
    let* p = nonneg (preset_of preset) in
    Some (Set_budget_class (t, p))
  | _ -> None

(* Crash points weighted towards the recoverable ones; [Truncated_sync] —
   the lying fsync — stays rare but present, it is the only point allowed
   to eat below the durable floor. *)
let gen_crash_point rng =
  Splitmix.pick_weighted rng
    Durable.Device.
      [
        (Clean_loss, 3);
        (Torn_tail, 3);
        (Partial_header, 2);
        (Bit_flip, 2);
        (Truncated_sync, 1);
      ]

exception Invalid_weights of string

type weights = {
  w_append_clinical : int;
  w_append_remote : int;
  w_append_remote_raw : int;
  w_set_mapping : int;
  w_append_workflow : int;
  w_vocab_edit : int;
  w_sync : int;
  w_checkpoint : int;
  w_auto_checkpoint : int;
  w_crash : int;
  w_site_crash : int;
  w_consolidate : int;
  w_outage : int;
  w_heal : int;
  w_advance : int;
  w_refine : int;
  w_refine_race : int;
  w_threshold : int;
  w_enforce : int;
  w_group_commit : int;
  w_tamper : int;
  w_overload_storm : int;
  w_set_budget_class : int;
}

let default_weights =
  {
    w_append_clinical = 6;
    w_append_remote = 4;
    w_append_remote_raw = 3;
    w_set_mapping = 2;
    w_append_workflow = 4;
    w_vocab_edit = 1;
    w_sync = 3;
    w_checkpoint = 1;
    w_auto_checkpoint = 1;
    w_crash = 2;
    w_site_crash = 2;
    w_consolidate = 5;
    w_outage = 2;
    w_heal = 2;
    w_advance = 3;
    w_refine = 2;
    w_refine_race = 2;
    w_threshold = 1;
    w_enforce = 3;
    w_group_commit = 1;
    w_tamper = 2;
    w_overload_storm = 2;
    w_set_budget_class = 1;
  }

let weight_table w =
  [
    (`Append_clinical, w.w_append_clinical);
    (`Append_remote, w.w_append_remote);
    (`Append_remote_raw, w.w_append_remote_raw);
    (`Set_mapping, w.w_set_mapping);
    (`Append_workflow, w.w_append_workflow);
    (`Vocab_edit, w.w_vocab_edit);
    (`Sync, w.w_sync);
    (`Checkpoint, w.w_checkpoint);
    (`Auto_checkpoint, w.w_auto_checkpoint);
    (`Crash, w.w_crash);
    (`Site_crash, w.w_site_crash);
    (`Consolidate, w.w_consolidate);
    (`Outage, w.w_outage);
    (`Heal, w.w_heal);
    (`Advance, w.w_advance);
    (`Refine, w.w_refine);
    (`Refine_race, w.w_refine_race);
    (`Threshold, w.w_threshold);
    (`Enforce, w.w_enforce);
    (`Group_commit, w.w_group_commit);
    (`Tamper, w.w_tamper);
    (`Overload_storm, w.w_overload_storm);
    (`Set_budget_class, w.w_set_budget_class);
  ]

(* Reject bad tables before any draw: a negative weight or an all-zero
   table is a configuration error, not an empty run.  Zero entries in an
   otherwise positive table are fine — Splitmix.pick_weighted's walk never
   lands on them. *)
let validate_weights table =
  List.iter
    (fun (_, w) ->
      if w < 0 then raise (Invalid_weights (Printf.sprintf "negative weight %d" w)))
    table;
  if List.fold_left (fun acc (_, w) -> acc + w) 0 table <= 0 then
    raise (Invalid_weights "all weights are zero")

let n_templates = List.length Workload.Purpose.templates

(* The fixed multi-tenant cast: three tenants, each with its own budget
   class, reconfigurable through a small preset palette.  The harness
   names them tenant-0..2 / class-0..2. *)
let n_tenants = 3
let n_class_presets = 4

let gen_action rng ~nsites ~table =
  match Splitmix.pick_weighted rng table with
  | `Append_clinical -> Append_clinical (1 + Splitmix.int rng 4)
  | `Append_remote -> Append_remote (Splitmix.int rng nsites, 1 + Splitmix.int rng 4)
  | `Append_remote_raw -> Append_remote_raw (Splitmix.int rng nsites, 1 + Splitmix.int rng 4)
  (* Mostly swaps back to the correct mapping, so quarantined raw rows get
     reprocessed often enough to exercise the exactly-once ledger. *)
  | `Set_mapping -> Set_mapping (Splitmix.int rng nsites, Splitmix.bool rng ~probability:0.7)
  | `Append_workflow ->
    let twist =
      if Splitmix.bool rng ~probability:0.35 then
        Some (Splitmix.pick rng Workload.Purpose.all_twists)
      else None
    in
    Append_workflow (Splitmix.int rng n_templates, twist)
  | `Vocab_edit -> Vocab_edit (Splitmix.int rng 1_000_000)
  | `Sync -> Sync_durable
  | `Checkpoint -> Checkpoint_durable
  | `Auto_checkpoint -> Set_auto_checkpoint (Splitmix.bool rng ~probability:0.5)
  | `Crash -> Crash (gen_crash_point rng)
  | `Site_crash -> Site_crash (Splitmix.int rng nsites, gen_crash_point rng)
  | `Consolidate -> Consolidate
  | `Outage -> Outage (Splitmix.int rng nsites)
  | `Heal -> Heal (Splitmix.int rng nsites)
  | `Advance -> Advance_clock (50 + Splitmix.int rng 450)
  | `Refine ->
    Refine
      (if Splitmix.bool rng ~probability:0.4 then
         Some (30 + Splitmix.int rng 600)
       else None)
  | `Refine_race -> Refine_race (1 + Splitmix.int rng 3)
  | `Threshold -> Set_threshold (50 + Splitmix.int rng 50)
  | `Enforce ->
    Enforce
      (Splitmix.pick rng
         [
           E_plain;
           E_tight_rows;
           E_wall (5 + Splitmix.int rng 40);
           E_cancel (1 + Splitmix.int rng 60);
         ])
  | `Group_commit -> Set_group_commit (Splitmix.bool rng ~probability:0.5)
  (* The picks are drawn at generation time (kept deterministic in the
     seed); the harness maps them onto whatever accepted records exist
     when the action fires. *)
  | `Tamper -> Tamper (Splitmix.int rng 1_000_000, Splitmix.int rng 1_000_000)
  (* Rates up to 10:1 against the fixed 4-request probe loads: small
     storms drain only the storm tenant's own bucket, large ones also
     exhaust the server's drain capacity and must overload-shed. *)
  | `Overload_storm -> Overload_storm (Splitmix.int rng n_tenants, 10 + Splitmix.int rng 80)
  | `Set_budget_class ->
    Set_budget_class (Splitmix.int rng n_tenants, Splitmix.int rng n_class_presets)

let generate ?(weights = default_weights) ~nsites ~seed ~steps () =
  let table = weight_table weights in
  validate_weights table;
  let rng = Splitmix.create ~seed in
  let rec go acc n =
    if n = 0 then List.rev acc else go (gen_action rng ~nsites ~table :: acc) (n - 1)
  in
  go [] steps
