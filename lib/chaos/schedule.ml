(* A composed fault schedule: one seeded stream of whole-system actions
   interleaving the normal PRIMA loop (appends, consolidation, refinement,
   enforcement queries) with every fault plane the stack owns — federation
   outages and clock advances, durable-device crash points, and query-budget
   trips.  Generation is deterministic in the seed, so any run replays from
   its seed alone. *)

type enforce =
  | E_plain  (** ungoverned; must return the full result set *)
  | E_tight_rows  (** row quota below the table size: must raise, not truncate *)
  | E_wall of int  (** wall-clock deadline driven off the simulated clock *)
  | E_cancel of int  (** cooperative cancellation after [n] ticks *)

type action =
  | Append_clinical of int  (** next [n] workload accesses hit the clinical DB *)
  | Append_remote of int * int  (** (site index, n) accesses land at a remote *)
  | Sync_durable  (** fsync both WALs: everything so far becomes the floor *)
  | Checkpoint_durable  (** snapshot + truncate both logs *)
  | Crash of Durable.Device.crash_point
      (** power-cut the durable devices, recover, and resume on the
          rebuilt system *)
  | Site_crash of int * Durable.Device.crash_point
      (** power-cut remote [i]'s own WAL at the drawn point, recover the
          site locally from its op log, reseat it into the federation and
          replay the lost suffix *)
  | Consolidate  (** fault-aware consolidation + qualified coverage *)
  | Outage of int  (** force the persistent outage on remote [i] *)
  | Heal of int  (** clear every injected fault on remote [i] *)
  | Advance_clock of int  (** simulated ms: retries, breaker cooldowns *)
  | Refine of int option  (** one refinement cycle; [Some ticks] governs it *)
  | Enforce of enforce  (** an enforcement query under a budget regime *)
  | Set_group_commit of bool  (** toggle WAL group-commit batching *)
  | Tamper of int * int
      (** flip bit [pick2 mod 8] of a previously accepted (stable) audit
          WAL record chosen by [pick1]; recovery must report
          [Tamper_detected], never a clean or torn verdict *)

let enforce_to_string = function
  | E_plain -> "enforce(plain)"
  | E_tight_rows -> "enforce(tight-rows)"
  | E_wall w -> Printf.sprintf "enforce(wall %dms)" w
  | E_cancel n -> Printf.sprintf "enforce(cancel@%d)" n

let to_string = function
  | Append_clinical n -> Printf.sprintf "append-clinical %d" n
  | Append_remote (i, n) -> Printf.sprintf "append-remote site-%d %d" i n
  | Sync_durable -> "sync-durable"
  | Checkpoint_durable -> "checkpoint-durable"
  | Crash p -> "crash " ^ Durable.Device.crash_point_to_string p
  | Site_crash (i, p) ->
    Printf.sprintf "site-crash site-%d %s" i (Durable.Device.crash_point_to_string p)
  | Consolidate -> "consolidate"
  | Outage i -> Printf.sprintf "outage site-%d" i
  | Heal i -> Printf.sprintf "heal site-%d" i
  | Advance_clock ms -> Printf.sprintf "advance-clock %dms" ms
  | Refine None -> "refine"
  | Refine (Some ticks) -> Printf.sprintf "refine(governed %d ticks)" ticks
  | Enforce e -> enforce_to_string e
  | Set_group_commit b -> Printf.sprintf "group-commit %b" b
  | Tamper (pick, bit) -> Printf.sprintf "tamper record-pick %d bit-pick %d" pick bit

let pp ppf a = Format.pp_print_string ppf (to_string a)

(* Crash points weighted towards the recoverable ones; [Truncated_sync] —
   the lying fsync — stays rare but present, it is the only point allowed
   to eat below the durable floor. *)
let gen_crash_point rng =
  Splitmix.pick_weighted rng
    Durable.Device.
      [
        (Clean_loss, 3);
        (Torn_tail, 3);
        (Partial_header, 2);
        (Bit_flip, 2);
        (Truncated_sync, 1);
      ]

let gen_action rng ~nsites =
  match
    Splitmix.pick_weighted rng
      [
        (`Append_clinical, 6);
        (`Append_remote, 5);
        (`Sync, 3);
        (`Checkpoint, 1);
        (`Crash, 2);
        (`Site_crash, 2);
        (`Consolidate, 5);
        (`Outage, 2);
        (`Heal, 2);
        (`Advance, 3);
        (`Refine, 2);
        (`Enforce, 3);
        (`Group_commit, 1);
        (`Tamper, 2);
      ]
  with
  | `Append_clinical -> Append_clinical (1 + Splitmix.int rng 4)
  | `Append_remote -> Append_remote (Splitmix.int rng nsites, 1 + Splitmix.int rng 4)
  | `Sync -> Sync_durable
  | `Checkpoint -> Checkpoint_durable
  | `Crash -> Crash (gen_crash_point rng)
  | `Site_crash -> Site_crash (Splitmix.int rng nsites, gen_crash_point rng)
  | `Consolidate -> Consolidate
  | `Outage -> Outage (Splitmix.int rng nsites)
  | `Heal -> Heal (Splitmix.int rng nsites)
  | `Advance -> Advance_clock (50 + Splitmix.int rng 450)
  | `Refine ->
    Refine
      (if Splitmix.bool rng ~probability:0.4 then
         Some (30 + Splitmix.int rng 600)
       else None)
  | `Enforce ->
    Enforce
      (Splitmix.pick rng
         [
           E_plain;
           E_tight_rows;
           E_wall (5 + Splitmix.int rng 40);
           E_cancel (1 + Splitmix.int rng 60);
         ])
  | `Group_commit -> Set_group_commit (Splitmix.bool rng ~probability:0.5)
  (* The picks are drawn at generation time (kept deterministic in the
     seed); the harness maps them onto whatever accepted records exist
     when the action fires. *)
  | `Tamper -> Tamper (Splitmix.int rng 1_000_000, Splitmix.int rng 1_000_000)

let generate ~nsites ~seed ~steps =
  let rng = Splitmix.create ~seed in
  let rec go acc n = if n = 0 then List.rev acc else go (gen_action rng ~nsites :: acc) (n - 1) in
  go [] steps
