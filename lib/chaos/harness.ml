(* Whole-system chaos harness.

   Drives a full [Prima_system.System] — durable storage, fault-injected
   federation, budgeted queries, the refinement loop — through a seeded
   [Schedule] of composed faults, while a pure [Model] oracle receives the
   same inputs fault-free.  After every step the harness checks ten
   invariants:

   1. no-loss            — across any crash+recover, the recovered clinical
                           store is a prefix of the model's entries and never
                           shorter than the durable floor (except under the
                           lying-fsync [Truncated_sync] point, which is
                           allowed to eat below it); consolidated output is
                           always a sub-multiset of the model trail.
   2. quarantine-exactly-once — the health accounting identity
                           delivered + quarantined + skipped = total holds;
                           quarantine items are unique per (site, seq); a
                           crash recovers exactly the synced item set.
   3. coverage-bound     — the system's coverage numerator and denominator
                           never exceed the model's exact readings (set and
                           bag), and any reading computed from a partial or
                           unverified window carries the [Lower_bound] label.
   4. recovery-idempotent — recovering the same devices twice yields
                           identical state, and the second pass drops
                           nothing new.
   5. convergence        — once faults stop, consolidation re-delivers the
                           whole trail, coverage equals the model's exact
                           stats, and a final refinement accepts exactly the
                           patterns the fault-free model epoch accepts.
   6. tamper-evidence    — every injected bit-flip of a previously accepted
                           (stable) audit record is reported as
                           [Tamper_detected] at the exact frame offset by the
                           next recovery, verifying twice gives the same
                           verdict, the mutated record is never read back as
                           accepted data, the rebuilt system is durably
                           degraded with [Lower_bound] coverage — and no
                           ordinary crash, however ugly, is ever classified
                           as tampering (zero false positives).
   7. site-local-recovery — a remote whose own WAL is power-cut recovers
                           locally: the rebuilt site is a prefix of its
                           ingested stream, never below its durable floor
                           (again excepting [Truncated_sync]), the crash is
                           never classified as tampering, recovery is
                           idempotent, a lossy recovery forces [Lower_bound]
                           coverage until the feed replays the lost suffix —
                           and after the replay the system re-converges to
                           [Exact].
   8. cache-coherence    — after a mid-run vocabulary edit (a taxonomy that
                           grew a leaf, adopted with a fresh stamp) the
                           system's coverage readings equal a from-scratch
                           recompute over the same policies under an
                           identically rebuilt vocabulary: no grounding
                           cache may serve an answer from the old stamp.
                           Checked at every edit and every consolidation.
   9. purpose-plausibility — every multi-step clinical plan the workload
                           emits is classified correctly by the prefix
                           conformance checker: untwisted instances conform
                           to their template, twisted ones (skipped step,
                           transposed steps, alien role) never do — the
                           violation is visible only as a sequence.
   10. admission-fairness — during an overload storm driven through the
                           admission gate's weighted-fair arbiter, every
                           non-storm tenant's admitted count equals its pure
                           token-bucket floor exactly (a 10:1 hot tenant
                           cannot starve the others), the storm tenant's own
                           count matches the bucket-and-drain-capacity
                           prediction, no mutation is ever browned out,
                           every shed carries an honest retry hint, and a
                           shed batch leaves no partial mutation behind
                           (store, sequence floor and quarantine all
                           untouched).

   The raw federation path carries its own mapping-coherence discipline:
   under the correct foreign-dialect mapping every raw record ingests and
   round-trips exactly; under a broken mapping every record quarantines
   (never drops); fixing the mapping reprocesses exactly the quarantined
   backlog, in sequence order, with nothing double-ingested.

   Everything is deterministic in the seed: the schedule, the workload, the
   fault wrappers and the device damage all draw from seeded Splitmix
   streams, so a violation replays from its seed alone — and, after
   [Shrink], from its minimized action list alone ([run_actions]).

   For shrinker tests the harness can also carry one injected defect — a
   deliberate bug switched on by [run_actions ~defect] — so there is a
   real, deterministic failure to minimize:

   - [Eat_entry k]   the k-th clinical append is silently dropped on the
                     system side (the model still sees it);
   - [Drop_replay]   the client forgets the first post-crash replay of the
                     lost unsynced suffix;
   - [Stale_vocab]   a vocabulary edit is adopted by the model and the
                     workload but never handed to the system, so its
                     grounding caches keep answering under the old stamp. *)

module Sys_ = Prima_system.System
module H = Audit_mgmt.Health
module Q = Audit_mgmt.Quarantine
module Site = Audit_mgmt.Site
module Adm = Audit_mgmt.Admission

type violation = {
  step : int;  (** 1-based schedule position; 0 = setup, steps+1 = epilogue *)
  action : string;
  invariant : string;
  detail : string;
}

type defect =
  | Eat_entry of int  (** swallow the [k]-th clinical append (1-based) *)
  | Drop_replay  (** skip the first post-crash replay of the lost suffix *)
  | Stale_vocab  (** never hand vocabulary edits to the system *)

let defect_to_string = function
  | Eat_entry k -> Printf.sprintf "eat-entry %d" k
  | Drop_replay -> "drop-replay"
  | Stale_vocab -> "stale-vocab"

let defect_of_string s =
  match String.split_on_char ' ' (String.trim s) with
  | [ "eat-entry"; k ] ->
    (match int_of_string_opt k with Some k when k > 0 -> Some (Eat_entry k) | _ -> None)
  | [ "drop-replay" ] -> Some Drop_replay
  | [ "stale-vocab" ] -> Some Stale_vocab
  | _ -> None

type report = {
  seed : int;
  steps : int;
  actions_run : int;
  appended : int;  (** workload entries fed to the system (and model) *)
  crashes : int;
  site_crashes : int;  (** power cuts to a remote site's own WAL *)
  site_recovered : int;  (** entries the crashed sites replayed from their WALs *)
  site_replayed : int;  (** lost-suffix entries the feed re-sent after site crashes *)
  consolidations : int;
  refines_ok : int;
  refines_rejected : int;  (** completeness below the adaptive floor *)
  degraded_epochs : int;  (** governed extractions that hit their budget *)
  enforce_trips : int;  (** typed budget/cancel trips on the enforcement path *)
  tampers : int;  (** bit-flips injected into accepted (stable) records *)
  tampers_detected : int;  (** of those, reported as [Tamper_detected] *)
  raw_ingested : int;  (** raw foreign-dialect records mapped and ingested *)
  raw_quarantined : int;  (** raw records a broken mapping sent to quarantine *)
  reprocessed : int;  (** quarantined records re-ingested after a mapping fix *)
  workflows : int;  (** purpose-workflow plan instances appended *)
  twisted_workflows : int;  (** of those, plan-implausible (twisted) ones *)
  vocab_edits : int;  (** mid-run vocabulary edits adopted *)
  storms : int;  (** overload bursts driven through the admission gate *)
  storm_admitted : int;  (** storm + probe requests the gate admitted *)
  storm_shed : int;  (** storm + probe requests shed, all-or-nothing *)
  events : string list;  (** step-by-step fault log, oldest first *)
  violation : violation option;
}

let passed r = r.violation = None

exception Violation of string * string  (** (invariant, detail) *)

(* ---------- internal state ---------- *)

type t = {
  seed : int;
  mutable vocab : Vocabulary.Vocab.t;  (** current, including mid-run edits *)
  model : Model.t;
  mutable sys : Sys_.t;
  archive : Audit_mgmt.Shard_store.t;  (** the durable consolidated archive *)
  faults : Audit_mgmt.Fault.t array;
  wconfig : Workload.Hospital.config;
  wf_rng : Splitmix.t;  (** drawn from only by workflow instantiation *)
  pool : Hdb.Audit_schema.entry array;  (** the pre-generated workload stream *)
  defect : defect option;
  mutable next_entry : int;
  mutable next_time : int;  (** global restamping clock: appended entries get
                                strictly increasing times in append order *)
  mutable q_floor : Q.item list;  (** sorted synced quarantine items *)
  mutable group_commit : bool;
  mutable auto_checkpoint : bool;
  mutable threshold : float option;  (** completeness threshold, if overridden *)
  mutable edits : (string * string) list;  (** (parent, leaf), oldest first *)
  pending : Hdb.Audit_schema.entry list array;
      (** per-remote raw records a broken mapping quarantined, seq order *)
  mapping_correct : bool array;
  mutable clinical_seen : int;  (** clinical appends so far (for [Eat_entry]) *)
  mutable replay_dropped : bool;  (** [Drop_replay] already fired *)
  mutable events : string list;  (** newest first *)
  mutable appended : int;
  mutable crashes : int;
  mutable site_crashes : int;
  mutable site_recovered : int;
  mutable site_replayed : int;
  mutable consolidations : int;
  mutable refines_ok : int;
  mutable refines_rejected : int;
  mutable degraded_epochs : int;
  mutable enforce_trips : int;
  mutable tampers : int;
  mutable tampers_detected : int;
  mutable raw_ingested : int;
  mutable raw_quarantined : int;
  mutable reprocessed : int;
  mutable workflows : int;
  mutable twisted_workflows : int;
  mutable vocab_edits : int;
  admission : Adm.t;
      (** the shared tenant gate — owned by the harness (the client side),
          so it survives system rebuilds: a crash must not refill anyone's
          bucket *)
  tenant_quota : (int * int) array;  (** current (capacity, refill/s) per tenant *)
  mutable storms : int;
  mutable storm_admitted : int;
  mutable storm_shed : int;
  trace : (string -> unit) option;
}

let site_name i = Printf.sprintf "site-%d" i
let tenant_name i = Printf.sprintf "tenant-%d" i
let class_name i = Printf.sprintf "class-%d" i

(* (capacity, refill/s, weight) of each tenant's budget class at setup —
   one class per tenant, in Schedule.n_tenants order. *)
let initial_classes = [| (60, 25, 1); (80, 30, 2); (40, 15, 1) |]

(* The Set_budget_class preset palette (name, capacity, refill/s,
   weight), kept in step with Schedule.n_class_presets: "zero" is the
   class that can never admit, so its sheds must say so (no retry
   hint). *)
let class_presets =
  [| ("generous", 120, 60, 2);
     ("standard", 60, 25, 1);
     ("tight", 12, 5, 1);
     ("zero", 0, 0, 1);
  |]

let rows_class ~cap ~rate ~weight =
  Adm.class_config ~weight ~rows:(Adm.quota ~refill_per_s:rate ~capacity:cap ()) ()

let make_admission () =
  let adm =
    Adm.create ~default_class:(class_name 0) ~now:0
      (List.mapi
         (fun i (cap, rate, weight) -> (class_name i, rows_class ~cap ~rate ~weight))
         (Array.to_list initial_classes))
  in
  Array.iteri
    (fun i _ -> Adm.assign adm ~tenant:(tenant_name i) (class_name i))
    initial_classes;
  adm

let event h fmt =
  Printf.ksprintf
    (fun line ->
      h.events <- line :: h.events;
      match h.trace with Some f -> f line | None -> ())
    fmt

let violate invariant fmt = Printf.ksprintf (fun d -> raise (Violation (invariant, d))) fmt

(* ---------- small helpers ---------- *)

let audit_store h = Hdb.Control_center.audit_store (Sys_.control h.sys)
let store_entries sys = Hdb.Audit_store.to_list (Hdb.Control_center.audit_store (Sys_.control sys))
let transit sys = Audit_mgmt.Federation.transit_quarantine (Sys_.federation sys)
let q_items sys = List.sort compare (Q.items (transit sys))

let rule_key r = List.sort compare (Prima_core.Rule.to_assoc r)
let rule_keys rules = List.sort compare (List.map rule_key rules)
let policy_keys p = rule_keys (Prima_core.Policy.rules p)

(* [a] a sub-multiset of [b]; both sorted. *)
let rec sorted_multiset_leq a b =
  match (a, b) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs, y :: ys ->
    let c = compare x y in
    if c = 0 then sorted_multiset_leq xs ys
    else if c > 0 then sorted_multiset_leq a ys
    else false

let rec has_dup = function
  | a :: (b :: _ as tl) -> a = b || has_dup tl
  | _ -> false

(* Every entry the harness appends anywhere is restamped off one global
   clock, so times stay strictly increasing in append order across the
   clinical stream, the remotes, raw batches and workflow plans alike —
   the property that makes the model's stable time sort reproduce the
   fault-free heap merge. *)
let stamp h (e : Hdb.Audit_schema.entry) =
  h.next_time <- h.next_time + 1;
  { e with Hdb.Audit_schema.time = h.next_time }

let take_pool h n =
  let avail = Array.length h.pool - h.next_entry in
  let n = min n avail in
  let es = Array.to_list (Array.sub h.pool h.next_entry n) in
  h.next_entry <- h.next_entry + n;
  h.appended <- h.appended + n;
  List.map (stamp h) es

(* All clinical-store writes funnel through here so the [Eat_entry] defect
   has one switch to throw. *)
let append_clinical_sys h es =
  let store = audit_store h in
  List.iter
    (fun e ->
      h.clinical_seen <- h.clinical_seen + 1;
      let eaten =
        match h.defect with Some (Eat_entry k) -> h.clinical_seen = k | _ -> false
      in
      if not eaten then Hdb.Audit_store.append store e)
    es

let sync_q_floor h =
  let q = transit h.sys in
  Q.sync q;
  h.q_floor <- List.sort compare (Q.items q)

(* The demo table the enforcement-path budget checks query. *)
let enforcement_rows = 40

let setup_enforcement sys =
  let control = Sys_.control sys in
  ignore
    (Hdb.Control_center.admin_exec control
       "CREATE TABLE chaos_patients (id INT, name TEXT)");
  for i = 1 to enforcement_rows do
    ignore
      (Hdb.Control_center.admin_exec control
         (Printf.sprintf "INSERT INTO chaos_patients VALUES (%d, 'p%d')" i i))
  done

(* Re-apply the operator-visible configuration a rebuilt system must keep:
   the group-commit toggle, any overridden completeness threshold, the
   auto-checkpoint policy (the rebuilt logs start without one), and the
   client-owned admission controller — tenant buckets and counters ride
   across the rebuild untouched. *)
let reapply_config h sys =
  Sys_.set_group_commit sys h.group_commit;
  Option.iter (Sys_.set_completeness_threshold sys) h.threshold;
  if h.auto_checkpoint then Sys_.set_auto_checkpoint sys true;
  Sys_.set_admission sys (Some h.admission)

(* ---------- the foreign raw dialect ---------- *)

(* The remotes' legacy export: renamed columns, GRANTED/DENIED op tokens,
   BTG status tokens, and "RN" as the local synonym for nurse.  The correct
   mapping normalises all of it; the broken one has lost the role alias,
   so every record is missing [authorized] and must quarantine. *)
let dialect_aliases =
  [ ("ts", Vocabulary.Audit_attrs.time);
    ("op_code", Vocabulary.Audit_attrs.op);
    ("actor", Vocabulary.Audit_attrs.user);
    ("category", Vocabulary.Audit_attrs.data);
    ("reason", Vocabulary.Audit_attrs.purpose);
    ("role", Vocabulary.Audit_attrs.authorized);
    ("mode", Vocabulary.Audit_attrs.status);
  ]

let dialect_synonyms = [ ((Vocabulary.Audit_attrs.authorized, "rn"), "nurse") ]

let correct_mapping () =
  Audit_mgmt.Mapping.create ~column_aliases:dialect_aliases
    ~value_synonyms:dialect_synonyms ()

let broken_mapping () =
  Audit_mgmt.Mapping.create
    ~column_aliases:(List.remove_assoc "role" dialect_aliases)
    ~value_synonyms:dialect_synonyms ()

let raw_of_entry (e : Hdb.Audit_schema.entry) =
  [ ("ts", string_of_int e.Hdb.Audit_schema.time);
    ("op_code",
     match e.Hdb.Audit_schema.op with
     | Hdb.Audit_schema.Allow -> "GRANTED"
     | Hdb.Audit_schema.Disallow -> "DENIED");
    ("actor", e.Hdb.Audit_schema.user);
    ("category", e.Hdb.Audit_schema.data);
    ("reason", e.Hdb.Audit_schema.purpose);
    ("role",
     if String.equal e.Hdb.Audit_schema.authorized "nurse" then "RN"
     else e.Hdb.Audit_schema.authorized);
    ("mode",
     match e.Hdb.Audit_schema.status with
     | Hdb.Audit_schema.Regular -> "regular"
     | Hdb.Audit_schema.Exception_based -> "BTG");
  ]

(* The last [n] elements of [xs]. *)
let last_n xs n =
  let len = List.length xs in
  List.filteri (fun i _ -> i >= len - n) xs

(* After a raw batch lands, the site's WAL is synced (batch interfaces
   acknowledge durably), so the whole remote stream known to the model is
   on stable media: raise the model's floor to match. *)
let sync_site_floor h i =
  Site.sync_wal (Audit_mgmt.Fault.site h.faults.(i));
  Model.set_remote_synced h.model i (Model.remote_length h.model i)

(* ---------- vocabulary edits (invariant 8) ---------- *)

(* Each edit grows one fresh leaf under a data category that the documented
   policy covers, so an access using the new leaf is covered — the edit
   moves real coverage numbers, giving the cache-coherence check (and the
   [Stale_vocab] defect) teeth. *)
let vocab_edit_targets =
  [| ("routine", "treatment", "nurse");
     ("sensitive", "diagnosis", "doctor");
     ("imaging", "diagnosis", "radiologist");
     ("demographic", "registration", "receptionist");
  |]

(* An identically re-grown vocabulary, from scratch: fresh base, fresh
   stamp, stone-cold caches.  Coverage under this value is the
   "from-scratch recompute" the live readings are compared against. *)
let rebuild_vocab h =
  List.fold_left
    (fun v (parent, leaf) ->
      Vocabulary.Vocab.with_leaf v ~attr:Vocabulary.Audit_attrs.data ~parent ~value:leaf)
    (Vocabulary.Samples.hospital ()) h.edits

(* Invariant 8: the system's live coverage readings — computed against its
   current vocabulary, whose grounding caches have been warmed across
   stamps, edits and crashes — must equal a from-scratch recompute over
   the same two policies under an identically rebuilt vocabulary.  Any
   divergence means a cache served an answer from a dead stamp. *)
let check_cache_coherence h =
  let prima = Sys_.prima h.sys in
  let live = Prima_core.Prima.coverage prima in
  let fresh = rebuild_vocab h in
  let attrs = Vocabulary.Audit_attrs.pattern in
  let p_x = Prima_core.Prima.policy_store prima in
  let p_y = Prima_core.Prima.audit_policy prima in
  let check name (l : Prima_core.Coverage.stats) bag =
    let f = Prima_core.Coverage.aligned ~bag fresh ~attrs ~p_x ~p_y in
    if l.Prima_core.Coverage.overlap <> f.Prima_core.Coverage.overlap
       || l.Prima_core.Coverage.denominator <> f.Prima_core.Coverage.denominator
    then
      violate "cache-coherence"
        "%s coverage reads %d/%d live but %d/%d from scratch (stale grounding cache?)"
        name l.Prima_core.Coverage.overlap l.Prima_core.Coverage.denominator
        f.Prima_core.Coverage.overlap f.Prima_core.Coverage.denominator
  in
  check "set" live.Prima_core.Prima.set_semantics false;
  check "bag" live.Prima_core.Prima.bag_semantics true

let run_vocab_edit h pick =
  let parent, purpose, role =
    vocab_edit_targets.(pick mod Array.length vocab_edit_targets)
  in
  let leaf = Printf.sprintf "chaos-%s-%d" parent h.vocab_edits in
  let vocab' =
    Vocabulary.Vocab.with_leaf h.vocab ~attr:Vocabulary.Audit_attrs.data ~parent
      ~value:leaf
  in
  h.vocab <- vocab';
  h.edits <- h.edits @ [ (parent, leaf) ];
  h.vocab_edits <- h.vocab_edits + 1;
  (* the [Stale_vocab] defect: the model and the workload adopt the edit,
     the system never hears of it *)
  (match h.defect with
  | Some Stale_vocab -> ()
  | _ -> Sys_.set_vocab h.sys vocab');
  Model.set_vocab h.model vocab';
  (* one access under the new leaf, with a purpose/role pair the documented
     policy covers: the edit changes real coverage, not just the tree *)
  let e =
    stamp h
      (Hdb.Audit_schema.entry ~time:0 ~op:Hdb.Audit_schema.Allow ~user:(role ^ "-01")
         ~data:leaf ~purpose ~authorized:role ~status:Hdb.Audit_schema.Regular)
  in
  append_clinical_sys h [ e ];
  Model.append_clinical h.model [ e ];
  h.appended <- h.appended + 1;
  check_cache_coherence h;
  (* the fresh stamp itself is a process-global counter — don't log it, or
     event logs stop being deterministic across runs in one process *)
  Printf.sprintf "leaf %s under %s (edit %d)" leaf parent h.vocab_edits

(* ---------- purpose workflows (invariant 9) ---------- *)

let n_templates = List.length Workload.Purpose.templates

let run_workflow h pick twist =
  let template = List.nth Workload.Purpose.templates (pick mod n_templates) in
  let inst =
    Workload.Purpose.instantiate h.wf_rng h.wconfig ?twist ~start_time:0 template
  in
  let entries = List.map (stamp h) inst.Workload.Purpose.entries in
  (* invariant 9: the conformance checker classifies the instance exactly
     as generated — untwisted plans conform, twisted ones never do *)
  let plausible = Workload.Purpose.conforms (Workload.Purpose.steps_of_entries entries) in
  (match (plausible, twist) with
  | false, None ->
    violate "purpose-plausibility" "untwisted %s instance fails prefix conformance"
      template.Workload.Purpose.name
  | true, Some tw ->
    violate "purpose-plausibility"
      "%s instance twisted by %s still conforms to a template"
      template.Workload.Purpose.name
      (Workload.Purpose.twist_to_string tw)
  | _ -> ());
  append_clinical_sys h entries;
  Model.append_clinical h.model entries;
  let n = List.length entries in
  h.appended <- h.appended + n;
  h.workflows <- h.workflows + 1;
  if twist <> None then h.twisted_workflows <- h.twisted_workflows + 1;
  Printf.sprintf "%s: %d step(s), %s" template.Workload.Purpose.name n
    (match twist with
    | None -> "plausible"
    | Some tw -> "twisted (" ^ Workload.Purpose.twist_to_string tw ^ ")")

(* ---------- the raw federation path (mapping coherence) ---------- *)

let run_raw_append h i n =
  let es = take_pool h n in
  if es = [] then "pool dry"
  else begin
    let site = Audit_mgmt.Fault.site h.faults.(i) in
    let before = Site.length site in
    let s = Site.ingest_raw_batch site (List.map raw_of_entry es) in
    let n' = List.length es in
    if s.Site.duplicates <> 0 then
      violate "mapping-coherence" "fresh raw batch at site %d counted %d duplicate(s)" i
        s.Site.duplicates;
    let outcome =
      if h.mapping_correct.(i) then begin
        if s.Site.ingested <> n' || s.Site.quarantined <> 0 then
          violate "mapping-coherence"
            "correct mapping at site %d ingested %d/%d, quarantined %d" i s.Site.ingested
            n' s.Site.quarantined;
        (* round-trip: the mapped entries equal the originals, in order *)
        let got = last_n (Site.entries site) (Site.length site - before) in
        if List.length got <> n' || not (List.for_all2 Hdb.Audit_schema.equal got es) then
          violate "mapping-coherence" "raw round-trip at site %d altered the records" i;
        Model.append_remote h.model i es;
        h.raw_ingested <- h.raw_ingested + n';
        Printf.sprintf "%d raw record(s) mapped" n'
      end
      else begin
        if s.Site.ingested <> 0 || s.Site.quarantined <> n' then
          violate "mapping-coherence"
            "broken mapping at site %d ingested %d, quarantined %d/%d" i s.Site.ingested
            s.Site.quarantined n';
        h.pending.(i) <- h.pending.(i) @ es;
        h.raw_quarantined <- h.raw_quarantined + n';
        Printf.sprintf "%d raw record(s) quarantined (broken mapping)" n'
      end
    in
    sync_site_floor h i;
    outcome
  end

let run_set_mapping h i correct =
  let site = Audit_mgmt.Fault.site h.faults.(i) in
  if correct then begin
    Site.set_mapping site (correct_mapping ());
    h.mapping_correct.(i) <- true;
    let pending = h.pending.(i) in
    let np = List.length pending in
    let before = Site.length site in
    let s = Site.reprocess_quarantined site in
    if s.Site.ingested <> np || s.Site.quarantined <> 0 then
      violate "mapping-coherence"
        "reprocess at site %d under the fixed mapping ingested %d/%d, %d still quarantined"
        i s.Site.ingested np s.Site.quarantined;
    (* reprocessing walks the quarantine in seq order: the re-ingested
       records are the backlog, byte for byte, in arrival order *)
    let got = last_n (Site.entries site) (Site.length site - before) in
    if List.length got <> np || not (List.for_all2 Hdb.Audit_schema.equal got pending)
    then violate "mapping-coherence" "reprocess at site %d reordered or altered the backlog" i;
    Model.append_remote h.model i pending;
    h.pending.(i) <- [];
    h.reprocessed <- h.reprocessed + np;
    sync_site_floor h i;
    Printf.sprintf "correct mapping, reprocessed %d" np
  end
  else begin
    Site.set_mapping site (broken_mapping ());
    h.mapping_correct.(i) <- false;
    "broken mapping installed"
  end

(* ---------- invariant checks ---------- *)

(* Consolidation-time checks: accounting, exactly-once, coverage bounds,
   the lower-bound labelling discipline (invariants 1-3), and cache
   coherence against a from-scratch vocabulary (invariant 8). *)
let check_consolidate h =
  h.consolidations <- h.consolidations + 1;
  let qc = Sys_.coverage_qualified h.sys in
  let health = qc.Sys_.health in
  (* invariant 2: every input record is accounted for exactly once *)
  if health.H.delivered + health.H.quarantined + health.H.skipped_entries <> health.H.total
  then
    violate "quarantine-exactly-once" "accounting broken: %d + %d + %d <> %d"
      health.H.delivered health.H.quarantined health.H.skipped_entries health.H.total;
  let keys = List.map (fun (it : Q.item) -> (it.site, it.seq)) (Q.items (transit h.sys)) in
  if has_dup (List.sort compare keys) then
    violate "quarantine-exactly-once" "duplicate (site, seq) in transit quarantine";
  (* the model mirrors the store exactly *)
  if policy_keys (Prima_core.Prima.policy_store (Sys_.prima h.sys)) <> policy_keys (Model.p_ps h.model)
  then violate "coverage-bound" "policy store diverged from the model mirror";
  (* invariant 1 (partial-trail side): delivered entries, as ingested into
     P_AL, are a sub-multiset of the model's fault-free trail *)
  let sys_rules = policy_keys (Prima_core.Prima.audit_policy (Sys_.prima h.sys)) in
  let model_rules = policy_keys (Model.trail_policy h.model) in
  if not (sorted_multiset_leq sys_rules model_rules) then
    violate "no-loss" "consolidated window is not a sub-multiset of the model trail";
  (* invariant 3: coverage bounds + label discipline *)
  let mset, mbag = Model.coverage h.model in
  let check_sem name (s : Prima_core.Coverage.qualified) (m : Prima_core.Coverage.stats) =
    let st = s.Prima_core.Coverage.stats in
    if st.overlap > m.overlap then
      violate "coverage-bound" "%s overlap %d exceeds model's exact %d" name st.overlap
        m.overlap;
    if st.denominator > m.denominator then
      violate "coverage-bound" "%s denominator %d exceeds model's exact %d" name
        st.denominator m.denominator
  in
  check_sem "set" qc.Sys_.set_semantics mset;
  check_sem "bag" qc.Sys_.bag_semantics mbag;
  let expect_exact = health.H.completeness >= 1.0 && Sys_.fully_verified h.sys in
  let label_ok (q : Prima_core.Coverage.qualified) =
    match (q.Prima_core.Coverage.qualifier, expect_exact) with
    | Prima_core.Coverage.Exact, true -> true
    | Prima_core.Coverage.Lower_bound _, false -> true
    | _ -> false
  in
  if not (label_ok qc.Sys_.set_semantics && label_ok qc.Sys_.bag_semantics) then
    violate "lower-bound-label"
      "coverage over a %s window (completeness %.3f, fully_verified %b) mislabelled"
      (if expect_exact then "complete" else "partial")
      health.H.completeness (Sys_.fully_verified h.sys);
  (* invariant 8: the live readings (vocab caches warmed across edits and
     crashes) against a from-scratch recompute over the same window *)
  check_cache_coherence h;
  (* the health report's degraded tallies must agree with the members *)
  if Sys_.federation_degraded h.sys
     && health.H.degraded_sites = 0 && health.H.degraded_shards = 0
  then
    violate "site-local-recovery"
      "federation durably degraded but the health report shows no degraded site or shard";
  (* consolidation mutated the quarantine: make its state the synced floor *)
  sync_q_floor h;
  health

(* Refinement-time checks: whatever the system accepts from a faulty,
   possibly budget-degraded window must be a subset of what the fault-free
   ungoverned model epoch accepts; the model then mirrors the install. *)
let check_refine h =
  match Sys_.refine h.sys with
  | Error reason ->
    h.refines_rejected <- h.refines_rejected + 1;
    sync_q_floor h;
    Printf.sprintf "rejected (%s)" reason
  | Ok report ->
    h.refines_ok <- h.refines_ok + 1;
    if report.Prima_core.Refinement.degraded then
      h.degraded_epochs <- h.degraded_epochs + 1;
    let model_epoch = Model.epoch h.model in
    let accepted = report.Prima_core.Refinement.accepted in
    if
      not
        (sorted_multiset_leq (rule_keys accepted)
           (rule_keys model_epoch.Prima_core.Refinement.accepted))
    then
      violate "coverage-bound"
        "refine accepted %d pattern(s) the fault-free model epoch would not"
        (List.length accepted);
    let c = Sys_.completeness h.sys in
    let expect_exact =
      c >= 1.0
      && Sys_.fully_verified h.sys
      && not report.Prima_core.Refinement.degraded
    in
    (match (report.Prima_core.Refinement.qualifier, expect_exact) with
    | Prima_core.Coverage.Exact, true | Prima_core.Coverage.Lower_bound _, false -> ()
    | q, _ ->
      violate "lower-bound-label"
        "epoch qualifier %s but completeness %.3f, degraded %b"
        (match q with
        | Prima_core.Coverage.Exact -> "Exact"
        | Prima_core.Coverage.Lower_bound _ -> "Lower_bound")
        c report.Prima_core.Refinement.degraded);
    Model.install h.model accepted;
    sync_q_floor h;
    Printf.sprintf "accepted %d pattern(s)%s" (List.length accepted)
      (if report.Prima_core.Refinement.degraded then " [degraded extraction]" else "")

(* ---------- crash + recovery (invariants 1, 2, 4) ---------- *)

let crash_and_recover h point =
  h.crashes <- h.crashes + 1;
  let sys = h.sys in
  let audit_log =
    match Hdb.Audit_store.log (Hdb.Control_center.audit_store (Sys_.control sys)) with
    | Some l -> l
    | None -> violate "no-loss" "audit store lost its durable log"
  in
  let q_log =
    match Q.log (transit sys) with
    | Some l -> l
    | None -> violate "quarantine-exactly-once" "transit quarantine lost its durable log"
  in
  let awal = Durable.Log.wal_device audit_log in
  let asnap = Durable.Log.snapshot_device audit_log in
  let qwal = Durable.Log.wal_device q_log in
  let qsnap = Durable.Log.snapshot_device q_log in
  (* Power cut: the drawn point hits the audit WAL; the other devices take
     a clean loss of their unsynced tails (all four lose power together).
     The quarantine WAL is synced after every mutation batch, so its
     recovered state must equal the floor exactly. *)
  Durable.Device.crash awal ~point;
  Durable.Device.crash asnap ~point:Durable.Device.Clean_loss;
  Durable.Device.crash qwal ~point:Durable.Device.Clean_loss;
  Durable.Device.crash qsnap ~point:Durable.Device.Clean_loss;
  let p_ps = Prima_core.Prima.policy_store (Sys_.prima sys) in
  let rebuild () =
    let storage =
      {
        Sys_.audit_log = Durable.Log.of_devices ~wal:awal ~snapshot:asnap;
        quarantine_log = Durable.Log.of_devices ~wal:qwal ~snapshot:qsnap;
      }
    in
    Sys_.create ~storage ~vocab:h.vocab ~p_ps ()
  in
  (* invariant 4: recovery is idempotent — run it twice over the same
     devices and demand identical state with nothing newly dropped *)
  let sys_a = rebuild () in
  (* invariant 6 (zero false positives): crash damage, however ugly, lands
     in the unsynced tail — it must read as a torn tail, never tampering *)
  if Sys_.tampered sys_a then
    violate "tamper-evidence" "crash point %s misclassified as tampering"
      (Durable.Device.crash_point_to_string point);
  let entries_a = store_entries sys_a in
  let qitems_a = q_items sys_a in
  let sys_b = rebuild () in
  if Sys_.tampered sys_b then
    violate "tamper-evidence" "second recovery after crash point %s reports tampering"
      (Durable.Device.crash_point_to_string point);
  let entries_b = store_entries sys_b in
  let qitems_b = q_items sys_b in
  if List.length entries_a <> List.length entries_b
     || not (List.for_all2 Hdb.Audit_schema.equal entries_a entries_b)
  then violate "recovery-idempotent" "second recovery produced a different store";
  if qitems_a <> qitems_b then
    violate "recovery-idempotent" "second recovery produced a different quarantine";
  (match Sys_.recovery sys_b with
  | None -> violate "recovery-idempotent" "rebuilt system reports no recovery"
  | Some r ->
    if Durable.Recovery.dropped_tail r.Sys_.audit
       || Durable.Recovery.dropped_tail r.Sys_.quarantine
    then violate "recovery-idempotent" "second recovery still dropping WAL bytes");
  (* invariant 1: prefix + durable floor *)
  let k = List.length entries_b in
  let model_all = Model.clinical h.model in
  let model_len = Model.clinical_length h.model in
  if k > model_len then
    violate "no-loss" "recovered %d entries but only %d were ever appended" k model_len;
  if point <> Durable.Device.Truncated_sync && k < Model.synced h.model then
    violate "no-loss" "recovered %d entries, below the durable floor of %d (point %s)" k
      (Model.synced h.model)
      (Durable.Device.crash_point_to_string point);
  let prefix = List.filteri (fun i _ -> i < k) model_all in
  if not (List.for_all2 Hdb.Audit_schema.equal entries_b prefix) then
    violate "no-loss" "recovered store is not a prefix of the appended entries";
  (* invariant 2: the quarantine comes back exactly as last synced *)
  if qitems_b <> h.q_floor then
    violate "quarantine-exactly-once"
      "recovered quarantine (%d items) differs from the synced floor (%d items)"
      (List.length qitems_b) (List.length h.q_floor);
  (* resume: re-wire the fault plane, enforcement table and operator
     config, then have the client replay the lost unsynced suffix
     (at-least-once delivery) *)
  Array.iter (fun f -> Sys_.add_faulty_site sys_b f) h.faults;
  Sys_.attach_archive sys_b h.archive;
  reapply_config h sys_b;
  setup_enforcement sys_b;
  h.sys <- sys_b;
  let lost = List.filteri (fun i _ -> i >= k) model_all in
  let dropped =
    h.defect = Some Drop_replay && not h.replay_dropped && lost <> []
  in
  if dropped then h.replay_dropped <- true
  else begin
    let store = Hdb.Control_center.audit_store (Sys_.control sys_b) in
    List.iter (Hdb.Audit_store.append store) lost
  end;
  (* everything recovered sits on stable storage; the replayed tail is the
     new unsynced region *)
  Model.set_synced h.model k;
  Printf.sprintf "recovered %d/%d, replayed %d" k model_len
    (if dropped then 0 else List.length lost)

(* ---------- site-local crash + recovery (invariant 7) ---------- *)

(* Power-cut remote [i]'s own WAL at the drawn point, rebuild the site
   from its op log alone, reseat it into the federation (keeping breaker
   history, fault schedule and schema mapping), and have the feed replay
   the lost suffix.  The clinical pair and every other site are untouched:
   the blast radius of a site-local crash is exactly one site. *)
let site_crash_and_recover h i point =
  h.site_crashes <- h.site_crashes + 1;
  let fault = h.faults.(i) in
  let old_site = Audit_mgmt.Fault.site fault in
  let name = Site.name old_site in
  let mapping = Site.mapping old_site in
  let log =
    match Site.wal old_site with
    | Some l -> l
    | None -> violate "site-local-recovery" "site %s lost its durable WAL" name
  in
  let wal = Durable.Log.wal_device log in
  let snap = Durable.Log.snapshot_device log in
  (* the drawn point hits the site's WAL; its snapshot loses power with a
     clean loss of the unsynced tail *)
  Durable.Device.crash wal ~point;
  Durable.Device.crash snap ~point:Durable.Device.Clean_loss;
  let open_once () =
    Site.open_durable ~mapping ~name (Durable.Log.of_devices ~wal ~snapshot:snap)
  in
  (* the first open truncates any torn tail and reseals, so it is the one
     that carries the true verdict — it becomes the live site; the second
     open is the idempotency probe over the now-clean devices *)
  let site', report, undecodable = open_once () in
  (* crash damage lands in the unsynced tail: never tampering, and the
     op codec did not change under us *)
  if Durable.Recovery.tampered report then
    violate "site-local-recovery" "site crash point %s misclassified as tampering"
      (Durable.Device.crash_point_to_string point);
  if undecodable > 0 then
    violate "site-local-recovery" "%d recovered site op(s) no longer decode" undecodable;
  let entries = Site.entries site' in
  (* recovery is idempotent: a second open over the same devices yields
     the same site and drops nothing new *)
  let site_b, report_b, _ = open_once () in
  if Durable.Recovery.tampered report_b then
    violate "site-local-recovery" "second site recovery after point %s reports tampering"
      (Durable.Device.crash_point_to_string point);
  if Durable.Recovery.dropped_tail report_b then
    violate "site-local-recovery" "second site recovery still dropping WAL bytes";
  let entries_b = Site.entries site_b in
  if List.length entries <> List.length entries_b
     || not (List.for_all2 Hdb.Audit_schema.equal entries entries_b)
  then violate "site-local-recovery" "second site recovery produced a different store";
  (* prefix + durable floor, against the model's fault-free remote stream *)
  let k = List.length entries in
  let model_all = Model.remote h.model i in
  let model_len = Model.remote_length h.model i in
  if k > model_len then
    violate "site-local-recovery" "site %s recovered %d entries but only %d were ingested"
      name k model_len;
  if point <> Durable.Device.Truncated_sync && k < Model.remote_synced h.model i then
    violate "site-local-recovery"
      "site %s recovered %d entries, below its durable floor of %d (point %s)" name k
      (Model.remote_synced h.model i)
      (Durable.Device.crash_point_to_string point);
  let prefix = List.filteri (fun j _ -> j < k) model_all in
  if not (List.for_all2 Hdb.Audit_schema.equal entries prefix) then
    violate "site-local-recovery" "site %s recovered store is not a prefix of its stream"
      name;
  h.site_recovered <- h.site_recovered + k;
  (* a site with auto-compaction enabled keeps it across the restart *)
  if h.auto_checkpoint then Site.enable_auto_checkpoint site';
  (* swap the rebuilt site back in; the member keeps its breaker history
     and fault schedule (Fault.reseat inside) *)
  Sys_.reseat_site h.sys name site';
  let lost = List.filteri (fun j _ -> j >= k) model_all in
  (* a lossy recovery leaves the site durably degraded: until the feed
     replays, every coverage reading must carry the Lower_bound label *)
  if Site.durably_degraded site' then begin
    if not (Sys_.federation_degraded h.sys) then
      violate "site-local-recovery"
        "site %s degraded after a lossy recovery but the system does not see it" name;
    let qc = Sys_.coverage_qualified h.sys in
    let lower (q : Prima_core.Coverage.qualified) =
      match q.Prima_core.Coverage.qualifier with
      | Prima_core.Coverage.Lower_bound _ -> true
      | Prima_core.Coverage.Exact -> false
    in
    if not (lower qc.Sys_.set_semantics && lower qc.Sys_.bag_semantics) then
      violate "site-local-recovery"
        "coverage after site %s's lossy recovery not labelled Lower_bound" name;
    sync_q_floor h
  end;
  (* the feed replays the lost suffix (at-least-once) and declares the
     site whole again; the recovered prefix sits on stable storage *)
  Site.ingest_entries site' lost;
  Site.acknowledge_replay site';
  if Site.durably_degraded site' then
    violate "site-local-recovery" "site %s still degraded after the replay" name;
  (* A lying-fsync crash can rewind even synced quarantine ops,
     resurrecting already-reprocessed records or un-quarantining pending
     ones.  The recovered site is ground truth: re-derive the raw-path
     bookkeeping from its quarantine, and drop any resurrected record the
     model already holds (its entry was replayed above) so a later
     reprocess cannot double-ingest it. *)
  let site_q = Site.quarantine site' in
  let items =
    List.sort
      (fun (a : Q.item) (b : Q.item) -> compare a.seq b.seq)
      (Q.site_items site_q ~site:name)
  in
  h.pending.(i) <-
    List.filter_map
      (fun (it : Q.item) ->
        let e = Audit_mgmt.Mapping.apply (correct_mapping ()) it.raw in
        if List.exists (Hdb.Audit_schema.equal e) model_all then begin
          Q.remove site_q ~site:name ~seq:it.seq;
          None
        end
        else Some e)
      items;
  Model.set_remote_synced h.model i k;
  h.site_replayed <- h.site_replayed + List.length lost;
  Printf.sprintf "recovered %d/%d, replayed %d" k model_len (List.length lost)

(* ---------- tampering fault (invariant 6) ---------- *)

(* Flip one bit of a previously accepted — synced, stable — audit WAL
   record, then demand the whole detection story: a read-only verification
   reports [Tamper_detected] at the exact frame offset, a second pass says
   the same, the mutated record is never surfaced as accepted data, and a
   full rebuild over the tampered devices comes up tampered + durably
   degraded with lower-bound coverage.  Unlike the crash path the system
   is rebuilt only once: the first open's reopen truncates the log at the
   divergence and reseals, consuming the evidence a second open would
   need.  The client then replays the amputated suffix, exactly as after
   a lossy crash. *)
let tamper_and_verify h pick bit_pick =
  let sys = h.sys in
  let audit_log =
    match Hdb.Audit_store.log (Hdb.Control_center.audit_store (Sys_.control sys)) with
    | Some l -> l
    | None -> violate "tamper-evidence" "audit store lost its durable log"
  in
  let q_log =
    match Q.log (transit sys) with
    | Some l -> l
    | None -> violate "quarantine-exactly-once" "transit quarantine lost its durable log"
  in
  let awal = Durable.Log.wal_device audit_log in
  let asnap = Durable.Log.snapshot_device audit_log in
  let qwal = Durable.Log.wal_device q_log in
  let qsnap = Durable.Log.snapshot_device q_log in
  let image = Durable.Device.contents awal in
  let data_spans =
    List.filter
      (fun (_, _, k) -> match k with Durable.Frame.Data -> true | Durable.Frame.Seal -> false)
      (Durable.Wal.frame_spans image)
  in
  if data_spans = [] then "no-op (no accepted record on stable media)"
  else begin
    let idx = pick mod List.length data_spans in
    let off, len, _ = List.nth data_spans idx in
    let bit_total = bit_pick mod (len * 8) in
    let pos = off + (bit_total / 8) in
    let bit = bit_total mod 8 in
    Durable.Device.corrupt_stable awal ~pos ~bit;
    h.tampers <- h.tampers + 1;
    (* detection, at the exact frame offset, idempotently (read-only) *)
    let r1 = Durable.Recovery.run ~wal:awal ~snapshot:asnap () in
    let r2 = Durable.Recovery.run ~wal:awal ~snapshot:asnap () in
    (match r1.Durable.Recovery.verdict with
    | Durable.Recovery.Tamper_detected { offset } when offset = off -> ()
    | Durable.Recovery.Tamper_detected { offset } ->
      violate "tamper-evidence" "tamper at frame offset %d reported at offset %d" off offset
    | v ->
      violate "tamper-evidence"
        "flipped bit %d of stable byte %d (frame at %d) but the verdict is %s" bit pos off
        (Durable.Recovery.verdict_to_string v));
    if r2.Durable.Recovery.verdict <> r1.Durable.Recovery.verdict then
      violate "tamper-evidence" "verifying the tampered log twice changed the verdict";
    (* the scan must stop dead at the mutated frame: the tampered record is
       never part of the verified prefix *)
    if r1.Durable.Recovery.wal_records <> idx then
      violate "tamper-evidence"
        "tampered WAL record %d, but the scan verified %d record(s) — mutated data %s" idx
        r1.Durable.Recovery.wal_records
        (if r1.Durable.Recovery.wal_records > idx then "read back as accepted"
         else "took earlier records with it");
    (* power-cut all four devices and rebuild once over the tampered media *)
    Durable.Device.crash awal ~point:Durable.Device.Clean_loss;
    Durable.Device.crash asnap ~point:Durable.Device.Clean_loss;
    Durable.Device.crash qwal ~point:Durable.Device.Clean_loss;
    Durable.Device.crash qsnap ~point:Durable.Device.Clean_loss;
    let p_ps = Prima_core.Prima.policy_store (Sys_.prima sys) in
    let storage =
      {
        Sys_.audit_log = Durable.Log.of_devices ~wal:awal ~snapshot:asnap;
        quarantine_log = Durable.Log.of_devices ~wal:qwal ~snapshot:qsnap;
      }
    in
    let sys' = Sys_.create ~storage ~vocab:h.vocab ~p_ps () in
    if not (Sys_.tampered sys') then
      violate "tamper-evidence" "rebuilt system does not report the tampering";
    if not (Sys_.durably_degraded sys') then
      violate "tamper-evidence" "tampered recovery not flagged durably degraded";
    (* invariant 1 still holds: the amputated store is a (shorter) prefix *)
    let entries = store_entries sys' in
    let k = List.length entries in
    let model_all = Model.clinical h.model in
    let model_len = Model.clinical_length h.model in
    if k > model_len then
      violate "no-loss" "recovered %d entries but only %d were ever appended" k model_len;
    let prefix = List.filteri (fun i _ -> i < k) model_all in
    if not (List.for_all2 Hdb.Audit_schema.equal entries prefix) then
      violate "no-loss" "post-tamper recovered store is not a prefix of the appended entries";
    (* resume on the rebuilt system; the next coverage reading must carry
       the Lower_bound label even over a nominally complete window *)
    Array.iter (fun f -> Sys_.add_faulty_site sys' f) h.faults;
    Sys_.attach_archive sys' h.archive;
    reapply_config h sys';
    setup_enforcement sys';
    h.sys <- sys';
    let qc = Sys_.coverage_qualified h.sys in
    let lower (q : Prima_core.Coverage.qualified) =
      match q.Prima_core.Coverage.qualifier with
      | Prima_core.Coverage.Lower_bound _ -> true
      | Prima_core.Coverage.Exact -> false
    in
    if not (lower qc.Sys_.set_semantics && lower qc.Sys_.bag_semantics) then
      violate "tamper-evidence" "coverage after a tampered recovery not labelled Lower_bound";
    sync_q_floor h;
    (* the client replays everything the amputation cost (at-least-once) *)
    let lost = List.filteri (fun i _ -> i >= k) model_all in
    let store = Hdb.Control_center.audit_store (Sys_.control h.sys) in
    List.iter (Hdb.Audit_store.append store) lost;
    Model.set_synced h.model k;
    h.tampers_detected <- h.tampers_detected + 1;
    Printf.sprintf "bit %d of byte %d (record %d): detected at offset %d, replayed %d" bit
      pos idx off (List.length lost)
  end

(* ---------- enforcement-path budget regimes ---------- *)

let run_enforce h kind =
  let control = Sys_.control h.sys in
  let run ?budget () =
    Hdb.Control_center.query ?budget control ~user:"chaos" ~role:"nurse"
      ~purpose:"treatment" "SELECT * FROM chaos_patients"
  in
  let full_rows label = function
    | Ok (o : Hdb.Enforcement.outcome) ->
      let n = List.length o.Hdb.Enforcement.result.Relational.Executor.rows in
      if n <> enforcement_rows then
        violate "enforce-strict" "%s returned %d/%d rows (silent truncation?)" label n
          enforcement_rows
    | Error e -> violate "enforce-strict" "%s denied: %s" label (Hdb.Enforcement.error_to_string e)
  in
  match kind with
  | Schedule.E_plain ->
    Sys_.set_query_limits h.sys None;
    full_rows "plain query" (run ());
    "full result set"
  | Schedule.E_tight_rows -> (
    Sys_.set_query_limits h.sys (Some (Relational.Budget.limits ~rows:3 ()));
    let out = try `Res (run ()) with Relational.Errors.Budget_exceeded _ -> `Trip in
    Sys_.set_query_limits h.sys None;
    match out with
    | `Trip ->
      h.enforce_trips <- h.enforce_trips + 1;
      "typed Budget_exceeded"
    | `Res (Ok (o : Hdb.Enforcement.outcome)) ->
      violate "enforce-strict" "over-quota query returned %d rows instead of raising"
        (List.length o.Hdb.Enforcement.result.Relational.Executor.rows)
    | `Res (Error e) ->
      violate "enforce-strict" "over-quota query denied instead of budget trip: %s"
        (Hdb.Enforcement.error_to_string e))
  | Schedule.E_wall w -> (
    (* drive the wall deadline off the federation's simulated clock: every
       budget tick advances it 1ms, so the deadline trips deterministically *)
    let fed = Sys_.federation h.sys in
    let now () =
      Audit_mgmt.Federation.advance_clock fed 1;
      float_of_int (Audit_mgmt.Federation.clock fed)
    in
    let budget = Relational.Budget.create ~now (Relational.Budget.limits ~wall_ms:w ()) in
    match run ~budget () with
    | res ->
      full_rows "wall-governed query" res;
      "completed under wall deadline"
    | exception Relational.Errors.Budget_exceeded (Relational.Errors.Time, _) ->
      h.enforce_trips <- h.enforce_trips + 1;
      "wall deadline tripped (typed)"
    | exception Relational.Errors.Budget_exceeded (r, _) ->
      violate "enforce-strict" "wall-governed query tripped on %s, not Time"
        (match r with
        | Relational.Errors.Rows -> "Rows"
        | Relational.Errors.Tuples -> "Tuples"
        | Relational.Errors.Time -> "Time"))
  | Schedule.E_cancel n -> (
    let budget = Relational.Budget.create ~cancel_at:n Relational.Budget.unlimited in
    match run ~budget () with
    | res ->
      full_rows "cancellable query" res;
      "completed before cancellation"
    | exception Relational.Errors.Cancelled _ ->
      h.enforce_trips <- h.enforce_trips + 1;
      "cancelled (typed)")

(* ---------- overload storms (invariant 10) ---------- *)

(* Probe load every non-storm tenant offers per storm. *)
let probe_count = 4

(* Server drain capacity for a storm of [rate]: large enough that the
   probes can never be overload-shed — the storm class's worst-case
   round-1 service is its carried DRR deficit (at most one quantum
   round, 16) plus a fresh round's quantum (weight <= 2 x quantum 8),
   then the 8 probes — yet small enough that a big storm (rate beyond
   ~43) exhausts it and must shed by overload, not just by its own
   bucket. *)
let storm_serve_limit ~rate = 40 + (rate / 4)

let tenant_index h name =
  let nt = Array.length h.tenant_quota in
  let rec go i =
    if i >= nt then violate "harness-error" "decision for unknown tenant %s" name
    else if String.equal (tenant_name i) name then i
    else go (i + 1)
  in
  go 0

(* One overload burst through the admission gate's weighted-fair
   arbiter: [rate] single-row mutations from the storm tenant race
   [probe_count] probes from every other tenant, all at the same clock
   reading.  The pure model predicts every tenant's admitted count from
   its token bucket alone — the check that a hot tenant cannot starve
   the others.  The admitted requests then ingest for real (system and
   model alike), and two gated batches pin the all-or-nothing shed
   discipline on the site itself. *)
let run_overload_storm h ti rate =
  let nt = Array.length h.tenant_quota in
  let storm = ti mod nt in
  let adm = h.admission in
  (* the gate must see the freshest overload signals *)
  Sys_.refresh_pressure h.sys;
  let level = Adm.pressure_level adm in
  let now = Audit_mgmt.Federation.clock (Sys_.federation h.sys) in
  let one_row = Adm.cost ~rows:1 () in
  let principal t =
    Adm.principal ~tenant:(tenant_name t)
      ~session:(Printf.sprintf "storm-%d" (h.storms + 1))
      ~request:(Printf.sprintf "step-%d" now) ()
  in
  let burst t n = List.init n (fun _ -> (principal t, one_row, Adm.Mutation)) in
  let reqs =
    burst storm rate
    @ List.concat
        (List.init nt (fun t -> if t = storm then [] else burst t probe_count))
  in
  let serve_limit = storm_serve_limit ~rate in
  let decisions = Adm.drain adm ~now ~serve_limit reqs in
  let admitted = Array.make nt 0 in
  let shed = Array.make nt 0 in
  List.iter
    (fun ((p : Adm.principal), d) ->
      let t = tenant_index h p.Adm.tenant in
      match d with
      | Adm.Admitted _ -> admitted.(t) <- admitted.(t) + 1
      | Adm.Brownout _ ->
        violate "admission-fairness" "mutation from %s browned out — mutations are whole or shed"
          p.Adm.tenant
      | Adm.Rejected r ->
        shed.(t) <- shed.(t) + 1;
        let cap, refill = h.tenant_quota.(t) in
        (match (r.Adm.r_resource, r.Adm.retry_after_ms) with
        (* overload and pressure-only sheds: affordable at face value, so
           the earliest retry is the very next tick *)
        | Relational.Errors.Time, Some 1 -> ()
        | Relational.Errors.Time, hint ->
          violate "admission-fairness" "overload shed for %s hints %s instead of 1ms"
            p.Adm.tenant
            (match hint with None -> "never" | Some ms -> Printf.sprintf "%dms" ms)
        (* bucket sheds: retryable exactly when the bucket can ever refill *)
        | _, Some ms when ms >= 1 && cap >= 1 && refill > 0 -> ()
        | _, None when cap < 1 || refill <= 0 -> ()
        | _, Some ms ->
          violate "admission-fairness"
            "shed for %s (capacity %d, %d/s) carries hint %dms for a bucket that never refills"
            p.Adm.tenant cap refill ms
        | _, None ->
          violate "admission-fairness"
            "shed for %s (capacity %d, %d/s) claims it is never retryable" p.Adm.tenant cap
            refill))
    decisions;
  (* non-storm tenants first: their token-bucket floor must hold exactly *)
  let probes_admitted = ref 0 in
  for t = 0 to nt - 1 do
    if t <> storm then begin
      let expect =
        Model.admit_requests h.model ~tenant:t ~now ~level ~count:probe_count ()
      in
      probes_admitted := !probes_admitted + admitted.(t);
      if admitted.(t) <> expect then
        violate "admission-fairness"
          "storm on %s (x%d): probe %s admitted %d/%d, its token-bucket floor says %d (level %d)"
          (tenant_name storm) rate (tenant_name t) admitted.(t) probe_count expect level
    end
  done;
  (* the storm tenant itself: bucket + leftover drain capacity *)
  let serve_cap = max 0 (serve_limit - !probes_admitted) in
  let expect_storm =
    Model.admit_requests h.model ~tenant:storm ~now ~level ~serve_cap ~count:rate ()
  in
  if admitted.(storm) <> expect_storm then
    violate "admission-fairness"
      "storm tenant %s admitted %d/%d, bucket-and-capacity prediction says %d (level %d)"
      (tenant_name storm) admitted.(storm) rate expect_storm level;
  (* admitted traffic ingests for real — same entries on both sides *)
  let total_admitted = Array.fold_left ( + ) 0 admitted in
  let site_i = storm mod Array.length h.faults in
  let site = Audit_mgmt.Fault.site h.faults.(site_i) in
  let es = take_pool h total_admitted in
  if es <> [] then begin
    Site.ingest_entries site es;
    Model.append_remote h.model site_i es
  end;
  (* a batch larger than the whole bucket can never be admitted: it must
     shed whole — no partial mutation, no retry hint — through the gated
     batch interface itself *)
  let cap, _ = h.tenant_quota.(storm) in
  let p_storm = principal storm in
  let oversized = List.init (cap + 1) (fun _ -> h.pool.(0)) in
  let len0 = Site.length site in
  let seq0 = Site.next_seq site in
  let q0 = Site.quarantined_count site in
  (match Site.ingest_entries_admitted site ~now ~principal:p_storm oversized with
  | Ok n ->
    violate "admission-fairness" "oversized batch (%d rows over capacity %d) admitted %d"
      (cap + 1) cap n
  | Error r ->
    if r.Adm.retry_after_ms <> None then
      violate "admission-fairness" "oversized batch got a retry hint but can never fit";
    if Site.length site <> len0 || Site.next_seq site <> seq0
       || Site.quarantined_count site <> q0
    then
      violate "admission-fairness"
        "shed batch left a partial mutation behind (%d->%d entries, seq %d->%d, %d->%d quarantined)"
        len0 (Site.length site) seq0 (Site.next_seq site) q0 (Site.quarantined_count site));
  (* and a single-entry gated batch agrees with the mirror about whether
     anything is left in the storm tenant's bucket *)
  let expect_one = Model.admit_requests h.model ~tenant:storm ~now ~level ~count:1 () in
  (match take_pool h 1 with
  | [] -> ()
  | es1 -> (
    match Site.ingest_entries_admitted site ~now ~principal:p_storm es1 with
    | Ok _ ->
      if expect_one = 0 then
        violate "admission-fairness" "gated batch admitted from a drained bucket";
      Model.append_remote h.model site_i es1
    | Error _ ->
      if expect_one = 1 then
        violate "admission-fairness"
          "gated single-entry batch shed though the mirror holds %d token(s)"
          (Model.tenant_tokens h.model ~tenant:storm ~now)));
  h.storms <- h.storms + 1;
  h.storm_admitted <- h.storm_admitted + total_admitted;
  h.storm_shed <- h.storm_shed + Array.fold_left ( + ) 0 shed;
  let probe_sum =
    String.concat "+"
      (List.filter_map
         (fun t -> if t = storm then None else Some (string_of_int admitted.(t)))
         (List.init nt (fun t -> t)))
  in
  Printf.sprintf "%s x%d level %d: admitted %d (probes %s), shed %d" (tenant_name storm)
    rate level total_admitted probe_sum
    (Array.fold_left ( + ) 0 shed)

let run_set_budget_class h ti pick =
  let nt = Array.length h.tenant_quota in
  let t = ti mod nt in
  let pname, cap, rate, weight = class_presets.(pick mod Array.length class_presets) in
  Adm.set_class h.admission (class_name t) (rows_class ~cap ~rate ~weight);
  h.tenant_quota.(t) <- (cap, rate);
  Model.set_tenant_quota h.model ~tenant:t ~capacity:cap ~refill_per_s:rate;
  Printf.sprintf "%s -> %s (%d rows, %d/s, weight %d)" (tenant_name t) pname cap rate weight

(* ---------- the step interpreter ---------- *)

let run_action h step action =
  let outcome =
    match action with
    | Schedule.Append_clinical n ->
      let es = take_pool h n in
      if es = [] then "pool dry"
      else begin
        append_clinical_sys h es;
        Model.append_clinical h.model es;
        Printf.sprintf "%d entries" (List.length es)
      end
    | Schedule.Append_remote (i, n) ->
      let es = take_pool h n in
      if es = [] then "pool dry"
      else begin
        Site.ingest_entries (Audit_mgmt.Fault.site h.faults.(i)) es;
        Model.append_remote h.model i es;
        Printf.sprintf "%d entries" (List.length es)
      end
    | Schedule.Append_remote_raw (i, n) -> run_raw_append h i n
    | Schedule.Set_mapping (i, correct) -> run_set_mapping h i correct
    | Schedule.Append_workflow (pick, twist) -> run_workflow h pick twist
    | Schedule.Vocab_edit pick -> run_vocab_edit h pick
    | Schedule.Sync_durable ->
      Sys_.sync_durable h.sys;
      Model.mark_all_synced h.model;
      sync_q_floor h;
      Printf.sprintf "floor now %d" (Model.synced h.model)
    | Schedule.Checkpoint_durable ->
      Sys_.checkpoint_durable h.sys;
      Model.mark_all_synced h.model;
      sync_q_floor h;
      "compacted"
    | Schedule.Set_auto_checkpoint on ->
      Sys_.set_auto_checkpoint h.sys on;
      h.auto_checkpoint <- on;
      if on then "auto-compaction on" else "auto-compaction off"
    | Schedule.Crash point -> crash_and_recover h point
    | Schedule.Site_crash (i, point) -> site_crash_and_recover h i point
    | Schedule.Consolidate ->
      let health = check_consolidate h in
      Printf.sprintf "completeness %.3f (%d/%d, %d quarantined)" health.H.completeness
        health.H.delivered health.H.total health.H.quarantined
    | Schedule.Outage i ->
      Audit_mgmt.Fault.take_down h.faults.(i);
      "down"
    | Schedule.Heal i ->
      Audit_mgmt.Fault.heal h.faults.(i);
      "healed"
    | Schedule.Advance_clock ms ->
      Sys_.advance_clock h.sys ms;
      Printf.sprintf "clock %dms" (Audit_mgmt.Federation.clock (Sys_.federation h.sys))
    | Schedule.Refine ticks ->
      Sys_.set_query_limits h.sys
        (Option.map (fun t -> Relational.Budget.limits ~ticks:t ()) ticks);
      let msg = check_refine h in
      Sys_.set_query_limits h.sys None;
      msg
    | Schedule.Refine_race n ->
      (* consolidation fixes the window; [n] fresh accesses then land
         behind its back before the epoch runs — refinement must stay
         sound for the window it actually saw *)
      ignore (check_consolidate h);
      let es = take_pool h n in
      append_clinical_sys h es;
      Model.append_clinical h.model es;
      let msg = check_refine h in
      Printf.sprintf "%s (%d raced in)" msg (List.length es)
    | Schedule.Set_threshold pct ->
      let v = float_of_int pct /. 100.0 in
      Sys_.set_completeness_threshold h.sys v;
      h.threshold <- Some v;
      if Sys_.completeness_threshold h.sys <> v then
        violate "harness-error" "completeness threshold did not take";
      Printf.sprintf "completeness threshold %.2f" v
    | Schedule.Enforce kind -> run_enforce h kind
    | Schedule.Set_group_commit on ->
      Sys_.set_group_commit h.sys on;
      h.group_commit <- on;
      if on then "batching on" else "batching off"
    | Schedule.Tamper (pick, bit_pick) -> tamper_and_verify h pick bit_pick
    | Schedule.Overload_storm (ti, rate) -> run_overload_storm h ti rate
    | Schedule.Set_budget_class (ti, pick) -> run_set_budget_class h ti pick
  in
  event h "%4d  %-28s  %s" step (Schedule.to_string action) outcome

(* ---------- convergence epilogue (invariant 5) ---------- *)

let epilogue h =
  (* stop the faults for good: fix any still-broken schema mapping (which
     reprocesses its quarantined backlog), heal everything, and swap each
     wrapper for a genuinely fault-free one, so the remaining fetches are
     clean draws *)
  Array.iteri
    (fun i _ -> if not h.mapping_correct.(i) then ignore (run_set_mapping h i true))
    h.faults;
  Sys_.heal_all h.sys;
  let fed = Sys_.federation h.sys in
  Array.iteri
    (fun i f ->
      Audit_mgmt.Federation.set_fault fed (site_name i)
        (Some
           (Audit_mgmt.Fault.wrap ~config:Audit_mgmt.Fault.no_faults ~seed:(h.seed + i)
              (Audit_mgmt.Fault.site f))))
    h.faults;
  (* let every breaker cooldown elapse, then consolidate twice: the first
     pass closes half-open breakers, the second must see everything *)
  Sys_.advance_clock h.sys 120_000;
  ignore (check_consolidate h);
  let health = check_consolidate h in
  event h "      epilogue consolidation      completeness %.3f" health.H.completeness;
  if health.H.completeness < 1.0 then
    violate "convergence" "completeness %.3f after all faults healed" health.H.completeness;
  let sys_rules = policy_keys (Prima_core.Prima.audit_policy (Sys_.prima h.sys)) in
  let model_rules = policy_keys (Model.trail_policy h.model) in
  if sys_rules <> model_rules then
    violate "convergence" "fault-free consolidated trail differs from the model";
  (* exact coverage parity on the healed trail *)
  let check_parity () =
    let qc = Sys_.coverage_qualified h.sys in
    let mset, mbag = Model.coverage h.model in
    let same (s : Prima_core.Coverage.qualified) (m : Prima_core.Coverage.stats) =
      let st = s.Prima_core.Coverage.stats in
      st.overlap = m.overlap && st.denominator = m.denominator
    in
    if not (same qc.Sys_.set_semantics mset && same qc.Sys_.bag_semantics mbag) then
      violate "convergence" "coverage over the healed trail differs from the model";
    let expect_exact = Sys_.fully_verified h.sys in
    let label_ok (q : Prima_core.Coverage.qualified) =
      match (q.Prima_core.Coverage.qualifier, expect_exact) with
      | Prima_core.Coverage.Exact, true -> true
      | Prima_core.Coverage.Lower_bound _, false -> true
      | _ -> false
    in
    if not (label_ok qc.Sys_.set_semantics && label_ok qc.Sys_.bag_semantics) then
      violate "convergence" "healed-trail coverage carries the wrong qualifier"
  in
  check_parity ();
  (* final refinement parity: the system must accept exactly the fault-free
     model epoch's patterns, after which the mirrored stores still agree *)
  Sys_.set_query_limits h.sys None;
  let model_epoch = Model.epoch h.model in
  (match Sys_.refine h.sys with
  | Error reason -> violate "convergence" "final refine refused on a healed trail: %s" reason
  | Ok report ->
    h.refines_ok <- h.refines_ok + 1;
    let accepted = report.Prima_core.Refinement.accepted in
    if rule_keys accepted <> rule_keys model_epoch.Prima_core.Refinement.accepted then
      violate "convergence"
        "final refine accepted %d pattern(s), the fault-free model epoch %d"
        (List.length accepted)
        (List.length model_epoch.Prima_core.Refinement.accepted);
    Model.install h.model accepted;
    event h "      epilogue refine             accepted %d pattern(s)"
      (List.length accepted));
  check_parity ();
  (* invariant 6, clean side: the final durable trail verifies free of
     tampering — trivially so for a zero-tamper run, and equally after
     tampers, whose evidence was consumed when the log was truncated and
     resealed at rebuild *)
  match Hdb.Audit_store.log (audit_store h) with
  | None -> violate "tamper-evidence" "audit store lost its durable log"
  | Some log ->
    let r =
      Durable.Recovery.run ~wal:(Durable.Log.wal_device log)
        ~snapshot:(Durable.Log.snapshot_device log) ()
    in
    if Durable.Recovery.tampered r then
      violate "tamper-evidence" "%d tamper(s) injected yet the final trail verifies as %s"
        h.tampers
        (Durable.Recovery.verdict_to_string r.Durable.Recovery.verdict)

(* ---------- entry points ---------- *)

(* Run an explicit action list — the replay/shrink entry point.  [pool] is
   the workload pool size (recorded in repros so a shrunk schedule draws
   from the same entry stream as the original run); [defect] arms one
   injected bug.  Deterministic in (seed, nsites, pool, defect, actions). *)
let run_actions ?(nsites = 2) ?defect ?trace ?pool ~seed ~actions () =
  let steps = List.length actions in
  let pool_size = match pool with Some n -> n | None -> (steps * 3) + 120 in
  (* the workload: one globally time-ordered stream of hospital accesses,
     split across the clinical DB and the remotes by the schedule *)
  let config =
    let base = Workload.Hospital.default_config ~seed:((seed * 31) + 7) () in
    { base with Workload.Hospital.total_accesses = pool_size }
  in
  let pool = Array.of_list (Workload.Generator.entries (Workload.Generator.generate config)) in
  let vocab = config.Workload.Hospital.vocab in
  let p_ps = Workload.Hospital.policy_store config in
  let storage =
    {
      Sys_.audit_log = Durable.Log.create ~seed:((seed * 13) + 1) ();
      quarantine_log = Durable.Log.create ~seed:((seed * 13) + 2) ();
    }
  in
  let sys = Sys_.create ~storage ~vocab ~p_ps () in
  setup_enforcement sys;
  let fault_config =
    {
      Audit_mgmt.Fault.p_unavailable = 0.1;
      p_timeout = 0.1;
      p_flaky = 0.15;
      p_corrupt = 0.08;
      latency = 5;
      timeout_cost = 40;
    }
  in
  (* every remote sits on its own durable op log, so a site-local crash
     recovers from the site's WAL instead of re-ingesting from source;
     each speaks the foreign dialect through the correct mapping until a
     Set_mapping action breaks it *)
  let faults =
    Array.init nsites (fun i ->
        let site =
          Site.create ~mapping:(correct_mapping ()) ~name:(site_name i) ()
        in
        Site.attach_wal site (Durable.Log.create ~seed:((seed * 13) + 10 + i) ());
        Audit_mgmt.Fault.wrap ~config:fault_config ~seed:((seed * 101) + i) site)
  in
  Array.iter (fun f -> Sys_.add_faulty_site sys f) faults;
  (* the durable consolidated archive: failed fetches degrade to stale
     shard reads instead of skipping the site outright *)
  let archive = Audit_mgmt.Shard_store.create ~seed:((seed * 13) + 5) () in
  Sys_.attach_archive sys archive;
  (* the multi-tenant admission gate, client-owned so it survives system
     rebuilds, and its pure token-bucket mirror in the model *)
  let admission = make_admission () in
  Sys_.set_admission sys (Some admission);
  let model = Model.create ~vocab ~p_ps ~nsites in
  Model.set_tenant_classes model
    (List.map (fun (cap, rate, _) -> (cap, rate)) (Array.to_list initial_classes));
  let h =
    {
      seed;
      vocab;
      model;
      sys;
      archive;
      faults;
      wconfig = config;
      wf_rng = Splitmix.create ~seed:((seed * 41) + 9);
      pool;
      defect;
      next_entry = 0;
      next_time = 0;
      q_floor = [];
      group_commit = false;
      auto_checkpoint = false;
      threshold = None;
      edits = [];
      pending = Array.make nsites [];
      mapping_correct = Array.make nsites true;
      clinical_seen = 0;
      replay_dropped = false;
      events = [];
      appended = 0;
      crashes = 0;
      site_crashes = 0;
      site_recovered = 0;
      site_replayed = 0;
      consolidations = 0;
      refines_ok = 0;
      refines_rejected = 0;
      degraded_epochs = 0;
      enforce_trips = 0;
      tampers = 0;
      tampers_detected = 0;
      raw_ingested = 0;
      raw_quarantined = 0;
      reprocessed = 0;
      workflows = 0;
      twisted_workflows = 0;
      vocab_edits = 0;
      admission;
      tenant_quota = Array.map (fun (cap, rate, _) -> (cap, rate)) initial_classes;
      storms = 0;
      storm_admitted = 0;
      storm_shed = 0;
      trace;
    }
  in
  let violation = ref None in
  let actions_run = ref 0 in
  let guard step action f =
    try f () with
    | Violation (invariant, detail) ->
      violation :=
        Some { step; action = Schedule.to_string action; invariant; detail }
    | e ->
      violation :=
        Some
          {
            step;
            action = Schedule.to_string action;
            invariant = "harness-error";
            detail = Printexc.to_string e;
          }
  in
  (let rec loop step = function
     | [] -> ()
     | action :: rest ->
       guard step action (fun () ->
           run_action h step action;
           incr actions_run);
       if !violation = None then loop (step + 1) rest
   in
   loop 1 actions);
  if !violation = None then
    guard (steps + 1) Schedule.Consolidate (fun () -> epilogue h);
  {
    seed;
    steps;
    actions_run = !actions_run;
    appended = h.appended;
    crashes = h.crashes;
    site_crashes = h.site_crashes;
    site_recovered = h.site_recovered;
    site_replayed = h.site_replayed;
    consolidations = h.consolidations;
    refines_ok = h.refines_ok;
    refines_rejected = h.refines_rejected;
    degraded_epochs = h.degraded_epochs;
    enforce_trips = h.enforce_trips;
    tampers = h.tampers;
    tampers_detected = h.tampers_detected;
    raw_ingested = h.raw_ingested;
    raw_quarantined = h.raw_quarantined;
    reprocessed = h.reprocessed;
    workflows = h.workflows;
    twisted_workflows = h.twisted_workflows;
    vocab_edits = h.vocab_edits;
    storms = h.storms;
    storm_admitted = h.storm_admitted;
    storm_shed = h.storm_shed;
    events = List.rev h.events;
    violation = !violation;
  }

let run ?(nsites = 2) ?defect ?trace ~seed ~steps () =
  let actions = Schedule.generate ~nsites ~seed ~steps () in
  run_actions ~nsites ?defect ?trace ~pool:((steps * 3) + 120) ~seed ~actions ()

(* ---------- reporting ---------- *)

let pp_violation ppf v =
  Fmt.pf ppf "step %d (%s): invariant %S violated — %s" v.step v.action v.invariant
    v.detail

let pp ppf (r : report) =
  Fmt.pf ppf
    "@[<v>seed %d: %d/%d steps, %d entries, %d crashes, %d site crashes (%d \
     recovered/%d replayed), %d consolidations, %d+%d refines (%d degraded), %d budget \
     trips, %d/%d tampers detected, %d raw (%d quarantined, %d reprocessed), %d \
     workflows (%d twisted), %d vocab edits, %d storms (%d admitted/%d shed) — %a@]"
    r.seed r.actions_run r.steps r.appended r.crashes r.site_crashes r.site_recovered
    r.site_replayed r.consolidations r.refines_ok r.refines_rejected r.degraded_epochs
    r.enforce_trips r.tampers_detected r.tampers r.raw_ingested r.raw_quarantined
    r.reprocessed r.workflows r.twisted_workflows r.vocab_edits r.storms r.storm_admitted
    r.storm_shed
    (fun ppf -> function
      | None -> Fmt.pf ppf "all invariants held"
      | Some v -> pp_violation ppf v)
    r.violation
