(** Delta-debugging minimizer for failing chaos schedules.

    A 400-step failing schedule is a haystack: the handful of actions that
    actually interact to violate an invariant are buried among hundreds of
    bystanders.  {!shrink} reduces a failing action list to a
    1-minimal repro — every remaining action is load-bearing: deleting any
    one of them makes the failure disappear — by ddmin chunk deletion
    followed by action-level simplification passes (clock-advance
    collapsing, count/pick/site-index parameter reduction, governed →
    plain refinement) and a site-count reduction, each candidate validated
    by deterministically re-running the harness ({!Harness.run_actions})
    and demanding the {e same} invariant still fail.

    Everything is deterministic: the same failing repro shrinks to the
    same minimal repro, byte for byte, every time.  Minimal repros
    serialize to a line-oriented text format ({!to_string}/{!of_string},
    {!save}/{!load}) and replay from the file alone, so they can be
    committed as pinned regressions. *)

type repro = {
  seed : int;  (** workload/device/fault seed of the original run *)
  nsites : int;
  pool : int;  (** workload pool size of the original run — recorded so a
                   shrunk schedule draws from the same entry stream *)
  defect : Harness.defect option;
  invariant : string;  (** the invariant the schedule violates *)
  step : int;  (** violation step when this repro last ran *)
  actions : Schedule.action list;
}

val replay : repro -> Harness.report
(** Re-run the repro's schedule ({!Harness.run_actions}). *)

val still_fails : repro -> bool
(** Whether {!replay} violates the {e recorded} invariant ([invariant]
    field) — a different violation does not count. *)

val of_report : ?defect:Harness.defect -> ?nsites:int -> actions:Schedule.action list ->
  Harness.report -> repro option
(** Package a failing run as a repro ([None] if the report passed).
    [nsites] defaults to 2, matching {!Harness.run}'s default; [pool] is
    taken as [3·steps + 120], {!Harness.run}'s derivation. *)

type stats = {
  original : int;  (** actions before shrinking *)
  minimal : int;  (** actions after *)
  candidates : int;  (** harness runs spent *)
  rounds : int;  (** ddmin+pass fixpoint iterations *)
}

val shrink : ?max_rounds:int -> repro -> repro * stats
(** Minimize: ddmin to 1-minimality, then the simplification passes, to a
    fixpoint (at most [max_rounds], default 10).  The result still fails
    the recorded invariant; its [step] is updated to the violation step of
    the minimal schedule.  Deterministic in the input repro. *)

(** {1 Serialization} *)

val to_string : repro -> string
(** Line-oriented: a [prima-chaos-repro v1] header, one [key value] line
    per field, then one {!Schedule.to_string} line per action. *)

val of_string : string -> (repro, string) result
(** Total inverse of {!to_string}; [Error] names the offending line. *)

val save : string -> repro -> unit
(** Write [to_string] to a file (atomically via a temp file + rename). *)

val load : string -> (repro, string) result
