(* The durable pair a store sits on: one WAL device and one snapshot
   device, with the open-or-recover and checkpoint protocols in one place
   so every caller (audit store, quarantine) crashes into the same
   well-tested states.

   Checkpoint protocol — the ordering is the whole point:

     1. write the full image to the snapshot device and sync it;
     2. only then reformat the WAL at base_lsn = snapshot LSN.

   A crash after (1) but before (2) leaves a WAL whose base precedes the
   snapshot; recovery skips the overlap.  A crash during (2) leaves a
   truncated or header-less WAL; recovery falls back to the snapshot.
   Either way no verified record is lost and none is duplicated.

   Background checkpointing: a store can register a size/age policy plus
   an image callback, and the log compacts itself during [append] once the
   WAL exceeds the policy's thresholds.  The trigger is evaluated BEFORE
   the new payload is appended: callers log first and update memory after
   (write-ahead), so at trigger time the image callback sees exactly the
   state the WAL covers.  Checkpointing after the append would snapshot a
   memory state that lacks the record just logged, and the truncation
   would silently drop it. *)

type checkpoint_policy = {
  max_records : int option;
  max_bytes : int option;
}

let checkpoint_every ?records ?bytes () = { max_records = records; max_bytes = bytes }

type t = {
  wal_device : Device.t;
  snapshot_device : Device.t;
  mutable wal : Wal.t option; (* Some once opened/recovered *)
  mutable auto : (checkpoint_policy * (unit -> string list)) option;
  mutable wal_payload_bytes : int; (* payload bytes appended since the last checkpoint *)
  mutable auto_checkpoints : int;
  (* Re-applied whenever the Wal.t is replaced (recovery, checkpoint). *)
  mutable group_commit : bool;
}

let create ?(seed = 0) () =
  { wal_device = Device.create ~seed ();
    snapshot_device = Device.create ~seed:(seed + 1) ();
    wal = None;
    auto = None;
    wal_payload_bytes = 0;
    auto_checkpoints = 0;
    group_commit = false;
  }

let of_devices ~wal ~snapshot =
  { wal_device = wal;
    snapshot_device = snapshot;
    wal = None;
    auto = None;
    wal_payload_bytes = 0;
    auto_checkpoints = 0;
    group_commit = false;
  }

let wal_device t = t.wal_device
let snapshot_device t = t.snapshot_device

let open_or_recover t =
  let r = Recovery.run ~wal:t.wal_device ~snapshot:t.snapshot_device () in
  let wal =
    if r.Recovery.wal_ok then
      Wal.reopen t.wal_device ~base_lsn:r.Recovery.wal_base_lsn
        ~entries:r.Recovery.wal_records ~verified_bytes:r.Recovery.wal_verified_bytes
        ~chain:r.Recovery.chain_head ~ends_sealed:r.Recovery.wal_ends_sealed
    else
      Wal.format t.wal_device ~base_lsn:r.Recovery.next_lsn
        ~base_chain:r.Recovery.chain_head ()
  in
  (* Framed bytes, so slightly above the payload sum — the policy trigger
     only needs the right order of magnitude. *)
  t.wal_payload_bytes <- (if r.Recovery.wal_ok then r.Recovery.wal_verified_bytes else 0);
  Wal.set_group_commit wal t.group_commit;
  t.wal <- Some wal;
  r

let wal t =
  match t.wal with
  | Some w -> w
  | None ->
    (* First touch of a log nobody recovered explicitly: run the protocol
       and discard the (necessarily clean-or-reported) report. *)
    ignore (open_or_recover t);
    Option.get t.wal

let sync t = Wal.sync (wal t)

let next_lsn t = Wal.next_lsn (wal t)

let chain_head t = Wal.chain_head (wal t)

let checkpoint t ~entries =
  let w = wal t in
  (* Everything the snapshot will claim must be durable first. *)
  Wal.sync w;
  let lsn = Wal.next_lsn w in
  let chain = Wal.chain_head w in
  (* The snapshot seals the chain head; the fresh WAL links from it, so
     the chain is continuous across the truncation. *)
  Snapshot.write t.snapshot_device ~lsn ~chain ~entries;
  let fresh = Wal.format t.wal_device ~base_lsn:lsn ~base_chain:chain () in
  Wal.set_group_commit fresh t.group_commit;
  t.wal <- Some fresh;
  t.wal_payload_bytes <- 0

let set_group_commit t on =
  t.group_commit <- on;
  match t.wal with Some w -> Wal.set_group_commit w on | None -> ()

let group_commit t = t.group_commit

let pending_records t = match t.wal with Some w -> Wal.pending_records w | None -> 0

let set_auto_checkpoint t policy image = t.auto <- Some (policy, image)
let clear_auto_checkpoint t = t.auto <- None
let auto_checkpoints t = t.auto_checkpoints

let over_policy policy ~records ~bytes =
  (match policy.max_records with Some n -> records >= n | None -> false)
  || (match policy.max_bytes with Some n -> bytes >= n | None -> false)

let append t payload =
  let w = wal t in
  (match t.auto with
  | Some (policy, image)
    when over_policy policy
           ~records:(Wal.next_lsn w - Wal.base_lsn w)
           ~bytes:t.wal_payload_bytes ->
    checkpoint t ~entries:(image ());
    t.auto_checkpoints <- t.auto_checkpoints + 1
  | _ -> ());
  t.wal_payload_bytes <- t.wal_payload_bytes + String.length payload;
  (* [checkpoint] replaced the Wal.t — re-fetch. *)
  Wal.append (wal t) payload
