(* The durable pair a store sits on: one WAL device and one snapshot
   device, with the open-or-recover and checkpoint protocols in one place
   so every caller (audit store, quarantine) crashes into the same
   well-tested states.

   Checkpoint protocol — the ordering is the whole point:

     1. write the full image to the snapshot device and sync it;
     2. only then reformat the WAL at base_lsn = snapshot LSN.

   A crash after (1) but before (2) leaves a WAL whose base precedes the
   snapshot; recovery skips the overlap.  A crash during (2) leaves a
   truncated or header-less WAL; recovery falls back to the snapshot.
   Either way no verified record is lost and none is duplicated. *)

type t = {
  wal_device : Device.t;
  snapshot_device : Device.t;
  mutable wal : Wal.t option; (* Some once opened/recovered *)
}

let create ?(seed = 0) () =
  { wal_device = Device.create ~seed ();
    snapshot_device = Device.create ~seed:(seed + 1) ();
    wal = None;
  }

let of_devices ~wal ~snapshot = { wal_device = wal; snapshot_device = snapshot; wal = None }

let wal_device t = t.wal_device
let snapshot_device t = t.snapshot_device

let open_or_recover t =
  let r = Recovery.run ~wal:t.wal_device ~snapshot:t.snapshot_device in
  let wal =
    if r.Recovery.wal_ok then
      Wal.reopen t.wal_device ~base_lsn:r.Recovery.wal_base_lsn
        ~entries:r.Recovery.wal_records ~verified_bytes:r.Recovery.wal_verified_bytes
    else Wal.format t.wal_device ~base_lsn:r.Recovery.next_lsn
  in
  t.wal <- Some wal;
  r

let wal t =
  match t.wal with
  | Some w -> w
  | None ->
    (* First touch of a log nobody recovered explicitly: run the protocol
       and discard the (necessarily clean-or-reported) report. *)
    ignore (open_or_recover t);
    Option.get t.wal

let append t payload = Wal.append (wal t) payload

let sync t = Wal.sync (wal t)

let next_lsn t = Wal.next_lsn (wal t)

let checkpoint t ~entries =
  let w = wal t in
  (* Everything the snapshot will claim must be durable first. *)
  Wal.sync w;
  let lsn = Wal.next_lsn w in
  Snapshot.write t.snapshot_device ~lsn ~entries;
  t.wal <- Some (Wal.format t.wal_device ~base_lsn:lsn)
