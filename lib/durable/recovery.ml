(* Crash recovery: scan the stable images of a snapshot device and a WAL
   device, verify checksums, and stop at the first record that does not
   verify.  The contract (after Garg, Jia & Datta's evolving-audit-log
   enforcement): the recovered log is a *verified prefix* of what was
   appended — never reordered, never a corrupted record surfaced — and
   anything dropped is reported, so downstream coverage can be downgraded
   to a lower bound instead of silently passing off a truncated trail as
   the whole truth.

   Snapshot/WAL reconciliation covers every state the checkpoint protocol
   can crash in:

   - WAL base = snapshot LSN: the steady state; entries are snapshot then
     WAL records.
   - WAL base < snapshot LSN: the crash hit between snapshot sync and WAL
     truncation; the WAL records the snapshot already covers are skipped
     (no duplication).
   - snapshot missing/invalid but WAL base 0: virgin log or rejected
     image; the WAL alone is the truth.
   - an LSN gap (WAL base past the snapshot, or a WAL that expects a
     snapshot which is gone): unreconstructable middle — the snapshot
     prefix is kept, the WAL is reported and reformatted. *)

type t = {
  entries : string list; (* the verified logical log, in append order *)
  snapshot_lsn : int; (* 0 when no snapshot image contributed *)
  snapshot_entries : int;
  wal_entries : int; (* records the WAL contributed after overlap skip *)
  dropped_tail : int; (* unverifiable trailing WAL bytes discarded *)
  tail_error : string option; (* why the WAL scan stopped early *)
  snapshot_error : string option;
  next_lsn : int; (* where appends resume *)
  (* reopen plumbing, consumed by Log *)
  wal_ok : bool; (* the WAL file itself is adoptable as-is *)
  wal_base_lsn : int;
  wal_records : int; (* records verified in the WAL file *)
  wal_verified_bytes : int;
}

let clean t = t.dropped_tail = 0 && t.tail_error = None && t.snapshot_error = None

let dropped_tail t = t.dropped_tail > 0

(* Scan one WAL image: the verified records and where/why the scan
   stopped. *)
let scan_wal image =
  match Wal.read_header image with
  | Error why -> Error why
  | Ok base_lsn ->
    let rec go acc pos =
      match Frame.scan image ~pos with
      | Frame.Record { payload; next } -> go (payload :: acc) next
      | Frame.End -> (List.rev acc, pos, None)
      | Frame.Bad why -> (List.rev acc, pos, Some why)
    in
    let records, verified, tail_error = go [] Wal.header_size in
    Ok (base_lsn, records, String.length image - verified, verified, tail_error)

let rec drop n = function
  | rest when n <= 0 -> rest
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

let run ~wal ~snapshot =
  let snap, snapshot_error =
    match Snapshot.read snapshot with
    | Ok s -> (s, None)
    | Error why -> (None, Some why)
  in
  let snap_lsn = match snap with Some s -> s.Snapshot.lsn | None -> 0 in
  let snap_entries = match snap with Some s -> s.Snapshot.entries | None -> [] in
  if Device.durable_size wal = 0 then
    (* A virgin device: nothing to verify, nothing lost; the caller
       formats it with a fresh header before appending. *)
    { entries = snap_entries;
      snapshot_lsn = snap_lsn;
      snapshot_entries = List.length snap_entries;
      wal_entries = 0;
      dropped_tail = 0;
      tail_error = None;
      snapshot_error;
      next_lsn = snap_lsn;
      wal_ok = false;
      wal_base_lsn = snap_lsn;
      wal_records = 0;
      wal_verified_bytes = 0;
    }
  else
  match scan_wal (Device.contents wal) with
  | Error why ->
    (* No readable header: nothing in this file is trustworthy. *)
    { entries = snap_entries;
      snapshot_lsn = snap_lsn;
      snapshot_entries = List.length snap_entries;
      wal_entries = 0;
      dropped_tail = Device.durable_size wal;
      tail_error = Some why;
      snapshot_error;
      next_lsn = snap_lsn;
      wal_ok = false;
      wal_base_lsn = snap_lsn;
      wal_records = 0;
      wal_verified_bytes = 0;
    }
  | Ok (base_lsn, records, dropped_tail, verified_bytes, tail_error) ->
    let count = List.length records in
    let stitched, wal_used, wal_ok, next_lsn, snapshot_error =
      if snap = None && base_lsn > 0 then
        (* The WAL's prefix lives in a snapshot that is gone. *)
        ( snap_entries,
          0,
          false,
          snap_lsn,
          Some
            (Option.value snapshot_error
               ~default:
                 (Printf.sprintf "WAL expects a snapshot up to LSN %d but none verifies"
                    base_lsn)) )
      else if base_lsn > snap_lsn then
        (* LSN gap between the snapshot image and the WAL's first record. *)
        ( snap_entries,
          0,
          false,
          snap_lsn,
          Some (Printf.sprintf "LSN gap: snapshot covers %d, WAL starts at %d" snap_lsn base_lsn)
        )
      else begin
        (* base_lsn <= snap_lsn: skip the records the snapshot already
           covers (a crash between snapshot sync and WAL truncation leaves
           them behind). *)
        let fresh = drop (snap_lsn - base_lsn) records in
        if fresh = [] && base_lsn + count < snap_lsn then
          (* The whole WAL predates the snapshot: stale, reformat. *)
          (snap_entries, 0, false, snap_lsn, snapshot_error)
        else
          ( snap_entries @ fresh,
            List.length fresh,
            true,
            max snap_lsn (base_lsn + count),
            snapshot_error )
      end
    in
    { entries = stitched;
      snapshot_lsn = snap_lsn;
      snapshot_entries = List.length snap_entries;
      wal_entries = wal_used;
      dropped_tail;
      tail_error;
      snapshot_error;
      next_lsn;
      wal_ok;
      wal_base_lsn = base_lsn;
      wal_records = count;
      wal_verified_bytes = verified_bytes;
    }

let pp ppf t =
  Fmt.pf ppf "recovered %d entries (snapshot %d up to LSN %d, WAL %d); next LSN %d@."
    (List.length t.entries) t.snapshot_entries t.snapshot_lsn t.wal_entries t.next_lsn;
  (match t.tail_error with
  | Some why -> Fmt.pf ppf "  dropped tail: %d unverifiable bytes (%s)@." t.dropped_tail why
  | None -> if t.dropped_tail > 0 then Fmt.pf ppf "  dropped tail: %d bytes@." t.dropped_tail);
  (match t.snapshot_error with
  | Some why -> Fmt.pf ppf "  snapshot: %s@." why
  | None -> ());
  if clean t then Fmt.pf ppf "  clean recovery: the log verifies end-to-end@."
  else
    Fmt.pf ppf
      "  WARNING: the recovered log is a verified prefix; treat coverage over it as a \
       lower bound@."
