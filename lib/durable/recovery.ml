(* Crash recovery: scan the stable images of a snapshot device and a WAL
   device, verify checksums AND hash-chain integrity, and stop at the
   first record that does not verify.  The contract (after Garg, Jia &
   Datta's evolving-audit-log enforcement): the recovered log is a
   *verified prefix* of what was appended — never reordered, never a
   corrupted record surfaced — and anything dropped is reported, so
   downstream coverage can be downgraded to a lower bound instead of
   silently passing off a truncated trail as the whole truth.

   Tamper classification.  Byte-for-byte, a crash-time bit flip and a
   malicious one are identical; what separates them is *where they can
   land*.  Crash damage only ever touches the unsynced tail (or truncates
   a suffix), and seal frames reach stable media exclusively through
   completed syncs — so a benign crash can never leave a valid seal AFTER
   the damage.  The classifier exploits exactly that:

     - scan stops at offset [p] (bad CRC, broken chain link, bad seal);
     - the remaining bytes are searched for any fully valid seal frame;
     - a valid seal at or after [p] proves the bytes at [p] were once
       durable and verified => [Tamper_detected { offset = p }];
     - no such seal => the damage is an unsynced tail => [Torn_tail].

   The chain gives the same verdict across the checkpoint boundary: the
   snapshot header carries the sealed chain head, and the WAL's chain at
   the snapshot's LSN must reproduce it.

   Snapshot/WAL reconciliation covers every state the checkpoint protocol
   can crash in:

   - WAL base = snapshot LSN: the steady state; entries are snapshot then
     WAL records.
   - WAL base < snapshot LSN: the crash hit between snapshot sync and WAL
     truncation; the WAL records the snapshot already covers are skipped
     (no duplication).
   - snapshot missing/invalid but WAL base 0: virgin log or rejected
     image; the WAL alone is the truth.
   - an LSN gap (WAL base past the snapshot, or a WAL that expects a
     snapshot which is gone): unreconstructable middle — the snapshot
     prefix is kept, the WAL is reported and reformatted. *)

type verdict =
  | Verified (* every image verified end-to-end *)
  | Torn_tail
    (* benign, crash-consistent damage: data was dropped or an image
       failed to verify, with no evidence of interior mutation *)
  | Tamper_detected of { offset : int }
    (* bytes at [offset] of the WAL image were durable and verified once,
       and do not verify now *)

let verdict_to_string = function
  | Verified -> "verified"
  | Torn_tail -> "torn-tail"
  | Tamper_detected { offset } -> Printf.sprintf "TAMPER at offset %d" offset

type t = {
  entries : string list; (* the verified logical log, in append order *)
  snapshot_lsn : int; (* 0 when no snapshot image contributed *)
  snapshot_entries : int;
  wal_entries : int; (* records the WAL contributed after overlap skip *)
  dropped_tail : int; (* unverifiable trailing WAL bytes discarded *)
  tail_error : string option; (* why the WAL scan stopped early *)
  snapshot_error : string option;
  next_lsn : int; (* where appends resume *)
  verdict : verdict;
  chain_head : int; (* hash-chain head over the recovered logical log *)
  (* reopen plumbing, consumed by Log *)
  wal_ok : bool; (* the WAL file itself is adoptable as-is *)
  wal_base_lsn : int;
  wal_records : int; (* records verified in the WAL file *)
  wal_verified_bytes : int;
  wal_ends_sealed : bool; (* the verified prefix ends in a seal (or is empty) *)
}

let clean t = t.dropped_tail = 0 && t.tail_error = None && t.snapshot_error = None

let dropped_tail t = t.dropped_tail > 0

let tampered t = match t.verdict with Tamper_detected _ -> true | _ -> false

(* Is there any fully valid seal frame starting at or after [pos]?  Benign
   crash damage can never be followed by one (seals only reach stable
   media through completed syncs), so a hit turns "the scan stopped at
   [pos]" into "the bytes at [pos] were mutated after they were synced". *)
let valid_seal_after image ~pos =
  let n = String.length image in
  let magic = Wal.seal_magic in
  let rec go from =
    if from >= n then false
    else
      match String.index_from_opt image from magic.[0] with
      | None -> false
      | Some i ->
        if i + String.length magic > n then false
        else if
          String.sub image i (String.length magic) = magic
          && i - Frame.header_size >= pos
        then begin
          match Frame.scan image ~pos:(i - Frame.header_size) with
          | Frame.Record { kind = Frame.Seal; payload; _ }
            when Wal.read_seal_payload payload <> None ->
            true
          | _ -> go (i + 1)
        end
        else go (i + 1)
  in
  go pos

(* One WAL image, scanned and chain-verified.  [s_divergence] is the
   offset where verification stopped early (the first-divergence offset a
   tamper verdict reports). *)
type scan = {
  s_base_lsn : int;
  s_base_chain : int;
  s_records : string list; (* data payloads, in order *)
  s_chains : int array; (* chain head after each data record *)
  s_verified : int;
  s_tail_error : string option;
  s_divergence : int option;
  s_ends_sealed : bool;
  s_chain_head : int;
}

let scan_wal ?(verify_chain = true) image =
  match Wal.read_header image with
  | Error why -> Error why
  | Ok (base_lsn, base_chain) ->
    let finish payloads chains head pos ~ends_sealed ~error ~divergence =
      { s_base_lsn = base_lsn;
        s_base_chain = base_chain;
        s_records = List.rev payloads;
        s_chains = Array.of_list (List.rev chains);
        s_verified = pos;
        s_tail_error = error;
        s_divergence = divergence;
        s_ends_sealed = ends_sealed;
        s_chain_head = head;
      }
    in
    let rec go payloads chains head count pos ends_sealed =
      let stop why =
        finish payloads chains head pos ~ends_sealed ~error:(Some why)
          ~divergence:(Some pos)
      in
      match Frame.scan image ~pos with
      | Frame.End -> finish payloads chains head pos ~ends_sealed ~error:None ~divergence:None
      | Frame.Bad why -> stop why
      | Frame.Record { payload; kind = Frame.Data; chain; next } ->
        let expected = if verify_chain then Chain.step head payload else chain in
        if chain <> expected then stop "record breaks the hash chain"
        else go (payload :: payloads) (expected :: chains) expected (count + 1) next false
      | Frame.Record { payload; kind = Frame.Seal; chain; next } ->
        if not verify_chain then go payloads chains head count next true
        else begin
          match Wal.read_seal_payload payload with
          | None -> stop "malformed seal frame"
          | Some (sealed_chain, sealed_lsn) ->
            if sealed_chain <> head || chain <> head then
              stop "seal disagrees with the chain head"
            else if sealed_lsn <> base_lsn + count then
              stop "seal disagrees with the log position"
            else go payloads chains head count next true
        end
    in
    Ok (go [] [] base_chain 0 Wal.header_size true)

let rec drop n = function
  | rest when n <= 0 -> rest
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

let run ?(verify_chain = true) ~wal ~snapshot () =
  let snap, snapshot_error =
    match Snapshot.read snapshot with
    | Ok s -> (s, None)
    | Error why -> (None, Some why)
  in
  let snap_lsn = match snap with Some s -> s.Snapshot.lsn | None -> 0 in
  let snap_chain = match snap with Some s -> s.Snapshot.chain | None -> Chain.zero in
  let snap_entries = match snap with Some s -> s.Snapshot.entries | None -> [] in
  (* Benign unless proven otherwise: [Verified] on a fully clean pair,
     [Torn_tail] on any drop or image error without tamper evidence. *)
  let default_verdict ~dropped ~tail_error =
    if dropped = 0 && tail_error = None && snapshot_error = None then Verified else Torn_tail
  in
  if Device.durable_size wal = 0 then
    (* A virgin device: nothing to verify, nothing lost; the caller
       formats it with a fresh header before appending. *)
    { entries = snap_entries;
      snapshot_lsn = snap_lsn;
      snapshot_entries = List.length snap_entries;
      wal_entries = 0;
      dropped_tail = 0;
      tail_error = None;
      snapshot_error;
      next_lsn = snap_lsn;
      verdict = default_verdict ~dropped:0 ~tail_error:None;
      chain_head = snap_chain;
      wal_ok = false;
      wal_base_lsn = snap_lsn;
      wal_records = 0;
      wal_verified_bytes = 0;
      wal_ends_sealed = true;
    }
  else
  let image = Device.contents wal in
  match scan_wal ~verify_chain image with
  | Error why ->
    (* No readable header: nothing in this file is trustworthy.  A valid
       seal anywhere in the image still proves the file once verified —
       a mutilated header over sealed records is tampering, not a torn
       tail (crashes cannot damage an already-synced header). *)
    let verdict =
      if valid_seal_after image ~pos:0 then Tamper_detected { offset = 0 } else Torn_tail
    in
    { entries = snap_entries;
      snapshot_lsn = snap_lsn;
      snapshot_entries = List.length snap_entries;
      wal_entries = 0;
      dropped_tail = Device.durable_size wal;
      tail_error = Some why;
      snapshot_error;
      next_lsn = snap_lsn;
      verdict;
      chain_head = snap_chain;
      wal_ok = false;
      wal_base_lsn = snap_lsn;
      wal_records = 0;
      wal_verified_bytes = 0;
      wal_ends_sealed = false;
    }
  | Ok s ->
    let base_lsn = s.s_base_lsn in
    let records = s.s_records in
    let count = List.length records in
    let dropped_tail = String.length image - s.s_verified in
    (* Classify the divergence: damage followed by a valid seal can only
       be post-sync mutation. *)
    let scan_tamper =
      match s.s_divergence with
      | Some p when valid_seal_after image ~pos:p -> Some p
      | _ -> None
    in
    let stitched, wal_used, wal_ok, next_lsn, snapshot_error, anchor_tamper =
      if snap = None && base_lsn > 0 then
        (* The WAL's prefix lives in a snapshot that is gone. *)
        ( snap_entries,
          0,
          false,
          snap_lsn,
          Some
            (Option.value snapshot_error
               ~default:
                 (Printf.sprintf "WAL expects a snapshot up to LSN %d but none verifies"
                    base_lsn)),
          false )
      else if base_lsn > snap_lsn then
        (* LSN gap between the snapshot image and the WAL's first record. *)
        ( snap_entries,
          0,
          false,
          snap_lsn,
          Some (Printf.sprintf "LSN gap: snapshot covers %d, WAL starts at %d" snap_lsn base_lsn),
          false )
      else begin
        (* base_lsn <= snap_lsn: skip the records the snapshot already
           covers (a crash between snapshot sync and WAL truncation leaves
           them behind). *)
        let overlap = snap_lsn - base_lsn in
        let fresh = drop overlap records in
        if fresh = [] && base_lsn + count < snap_lsn then
          (* The whole WAL predates the snapshot: stale, reformat. *)
          (snap_entries, 0, false, snap_lsn, snapshot_error, false)
        else begin
          (* Cross-device anchor: the WAL's chain at the snapshot's LSN
             must reproduce the sealed head the snapshot carries.  A
             mismatch means one side's history was rewritten. *)
          let anchor_tamper =
            verify_chain && snap <> None
            &&
            let chain_at_overlap =
              if overlap = 0 then s.s_base_chain else s.s_chains.(overlap - 1)
            in
            chain_at_overlap <> snap_chain
          in
          ( snap_entries @ fresh,
            List.length fresh,
            true,
            max snap_lsn (base_lsn + count),
            snapshot_error,
            anchor_tamper )
        end
      end
    in
    let verdict =
      match scan_tamper with
      | Some offset -> Tamper_detected { offset }
      | None ->
        if anchor_tamper then
          (* The divergence is the anchor itself: point at the header's
             base_chain field. *)
          Tamper_detected { offset = String.length Wal.magic + 8 }
        else default_verdict ~dropped:dropped_tail ~tail_error:s.s_tail_error
    in
    { entries = stitched;
      snapshot_lsn = snap_lsn;
      snapshot_entries = List.length snap_entries;
      wal_entries = wal_used;
      dropped_tail;
      tail_error = s.s_tail_error;
      snapshot_error;
      next_lsn;
      verdict;
      chain_head = (if wal_ok then s.s_chain_head else snap_chain);
      wal_ok;
      wal_base_lsn = base_lsn;
      wal_records = count;
      wal_verified_bytes = s.s_verified;
      wal_ends_sealed = s.s_ends_sealed;
    }

let pp ppf t =
  Fmt.pf ppf "recovered %d entries (snapshot %d up to LSN %d, WAL %d); next LSN %d@."
    (List.length t.entries) t.snapshot_entries t.snapshot_lsn t.wal_entries t.next_lsn;
  Fmt.pf ppf "  chain head %s; verdict: %s@." (Chain.to_hex t.chain_head)
    (verdict_to_string t.verdict);
  (match t.tail_error with
  | Some why -> Fmt.pf ppf "  dropped tail: %d unverifiable bytes (%s)@." t.dropped_tail why
  | None -> if t.dropped_tail > 0 then Fmt.pf ppf "  dropped tail: %d bytes@." t.dropped_tail);
  (match t.snapshot_error with
  | Some why -> Fmt.pf ppf "  snapshot: %s@." why
  | None -> ());
  match t.verdict with
  | Tamper_detected { offset } ->
    Fmt.pf ppf
      "  ALERT: tamper detected — the WAL diverges at offset %d inside its once-verified \
       prefix; the trail before that point verifies, nothing after it is trustworthy@."
      offset
  | Torn_tail | Verified ->
    if clean t then Fmt.pf ppf "  clean recovery: the log verifies end-to-end@."
    else
      Fmt.pf ppf
        "  WARNING: the recovered log is a verified prefix; treat coverage over it as a \
         lower bound@."
