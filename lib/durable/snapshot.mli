(** A compact point-in-time image of a store, written at a checkpoint so
    the WAL can be truncated.

    [lsn] is the LSN the image covers up to (exclusive): replay resumes at
    a WAL whose [base_lsn] equals it.  [chain] is the logical log's sealed
    hash-chain head at that LSN, carried as an opaque anchor (the entries
    are a state image, not the payload history) so recovery can check the
    WAL's chain across the truncation boundary; the image frames
    additionally carry their own mini-chain.  The image is all-or-nothing:
    written and synced {e before} the WAL is truncated, and rejected
    wholesale when any part fails to verify — the WAL then still holds
    everything. *)

val magic : string

type t = {
  lsn : int;
  chain : int;  (** the logical log's sealed chain head at [lsn] *)
  entries : string list;
}

val write : Device.t -> lsn:int -> chain:int -> entries:string list -> unit
(** Replace the device's contents with a fresh image and sync it. *)

val read : Device.t -> (t option, string) result
(** [Ok None] on an empty device (no checkpoint yet); [Error] when the
    image does not verify end-to-end. *)
