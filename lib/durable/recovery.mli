(** Crash recovery: scan a snapshot device and a WAL device, verify every
    checksum {e and} the hash chain, stop at the first record that does
    not verify.

    Contract: {!run} returns a {e verified prefix} of what was appended —
    never reordered, never a corrupted record surfaced — and reports
    whatever it had to drop, so downstream coverage can be downgraded to a
    lower bound.  Reconciliation handles every state the checkpoint
    protocol can crash in (overlapping WAL after an interrupted
    truncation, missing or invalid snapshot, LSN gaps).

    Tamper classification: crash damage only lands in the unsynced tail,
    and seal frames reach stable media exclusively through completed
    syncs, so damage {e followed by} a valid seal can only be post-sync
    mutation — reported as {!Tamper_detected} with the first-divergence
    offset.  Damage with no seal after it is a benign {!Torn_tail}.
    {!run} never writes: verifying a tampered log twice yields the same
    verdict. *)

type verdict =
  | Verified  (** every image verified end-to-end *)
  | Torn_tail
      (** benign, crash-consistent damage: data was dropped or an image
          failed to verify, with no evidence of interior mutation *)
  | Tamper_detected of { offset : int }
      (** bytes at [offset] of the WAL image were durable and verified
          once, and do not verify now *)

val verdict_to_string : verdict -> string

type t = {
  entries : string list;  (** the verified logical log, in append order *)
  snapshot_lsn : int;  (** 0 when no snapshot image contributed *)
  snapshot_entries : int;
  wal_entries : int;  (** records the WAL contributed after overlap skip *)
  dropped_tail : int;  (** unverifiable trailing WAL bytes discarded *)
  tail_error : string option;  (** why the WAL scan stopped early *)
  snapshot_error : string option;
  next_lsn : int;  (** where appends resume *)
  verdict : verdict;
  chain_head : int;  (** hash-chain head over the recovered logical log *)
  wal_ok : bool;  (** the WAL file is adoptable as-is (see {!Log}) *)
  wal_base_lsn : int;
  wal_records : int;
  wal_verified_bytes : int;
  wal_ends_sealed : bool;  (** the verified prefix ends sealed (or is empty) *)
}

val run : ?verify_chain:bool -> wal:Device.t -> snapshot:Device.t -> unit -> t
(** Read-only — safe to repeat, same verdict every time.  [verify_chain]
    (default [true]) exists so the replay bench can measure a CRC-only
    baseline; every production caller leaves it on. *)

val clean : t -> bool
(** Nothing was dropped and both images verified. *)

val dropped_tail : t -> bool
(** Some appended bytes did not survive: coverage over the recovered trail
    is a lower bound. *)

val tampered : t -> bool
(** The verdict is {!Tamper_detected}. *)

val pp : Format.formatter -> t -> unit
