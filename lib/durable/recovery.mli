(** Crash recovery: scan a snapshot device and a WAL device, verify every
    checksum, stop at the first record that does not verify.

    Contract: {!run} returns a {e verified prefix} of what was appended —
    never reordered, never a corrupted record surfaced — and reports
    whatever it had to drop, so downstream coverage can be downgraded to a
    lower bound.  Reconciliation handles every state the checkpoint
    protocol can crash in (overlapping WAL after an interrupted
    truncation, missing or invalid snapshot, LSN gaps). *)

type t = {
  entries : string list;  (** the verified logical log, in append order *)
  snapshot_lsn : int;  (** 0 when no snapshot image contributed *)
  snapshot_entries : int;
  wal_entries : int;  (** records the WAL contributed after overlap skip *)
  dropped_tail : int;  (** unverifiable trailing WAL bytes discarded *)
  tail_error : string option;  (** why the WAL scan stopped early *)
  snapshot_error : string option;
  next_lsn : int;  (** where appends resume *)
  wal_ok : bool;  (** the WAL file is adoptable as-is (see {!Log}) *)
  wal_base_lsn : int;
  wal_records : int;
  wal_verified_bytes : int;
}

val run : wal:Device.t -> snapshot:Device.t -> t

val clean : t -> bool
(** Nothing was dropped and both images verified. *)

val dropped_tail : t -> bool
(** Some appended bytes did not survive: coverage over the recovered trail
    is a lower bound. *)

val pp : Format.formatter -> t -> unit
