(** Length-prefixed, checksummed, hash-chained record framing shared by
    the WAL and the snapshot image:
    [[length : u32 LE] [crc32 : u32 LE] [kind : u8] [chain : u64 LE]
    [payload]].  The CRC covers the length bytes, the kind byte, the chain
    bytes and the payload, so a flipped length (or kind, or chain) field
    fails verification even when it stays in bounds.  [chain] is the
    record's hash-chain value — recovery re-derives the expected value to
    catch interior mutations. *)

val header_size : int
val max_payload : int

type kind =
  | Data  (** a logical record; advances the LSN and the chain *)
  | Seal  (** a sync marker carrying the chain head; advances neither *)

val add : Buffer.t -> ?kind:kind -> chain:int -> string -> unit
(** Append one framed record ([kind] defaults to [Data]).
    @raise Invalid_argument when the payload exceeds {!max_payload}. *)

val encode : ?kind:kind -> chain:int -> string -> string

type scan_result =
  | Record of { payload : string; kind : kind; chain : int; next : int }
  | End  (** exactly at the end of the image: a clean boundary *)
  | Bad of string  (** the remaining tail cannot be verified *)

val scan : string -> pos:int -> scan_result
(** Verify the record starting at [pos] of a stable image. *)

(** Little-endian integer plumbing, shared with the WAL/snapshot headers
    and the wire codecs of the stores built on top. *)

val put_u32 : Buffer.t -> int -> unit
val get_u32 : string -> int -> int
val put_u64 : Buffer.t -> int -> unit
val get_u64 : string -> int -> int
