(** Length-prefixed, checksummed record framing shared by the WAL and the
    snapshot image: [[length : u32 LE] [crc32 : u32 LE] [payload]].  The
    CRC covers the length bytes and the payload, so a flipped length field
    fails verification even when it stays in bounds. *)

val header_size : int
val max_payload : int

val add : Buffer.t -> string -> unit
(** Append one framed record.
    @raise Invalid_argument when the payload exceeds {!max_payload}. *)

val encode : string -> string

type scan_result =
  | Record of { payload : string; next : int }
  | End  (** exactly at the end of the image: a clean boundary *)
  | Bad of string  (** the remaining tail cannot be verified *)

val scan : string -> pos:int -> scan_result
(** Verify the record starting at [pos] of a stable image. *)

(** Little-endian integer plumbing, shared with the WAL/snapshot headers
    and the wire codecs of the stores built on top. *)

val put_u32 : Buffer.t -> int -> unit
val get_u32 : string -> int -> int
val put_u64 : Buffer.t -> int -> unit
val get_u64 : string -> int -> int
