(* A compact point-in-time image of a store, written at a checkpoint so the
   WAL can be truncated:

     [magic "PSNP0001" : 8] [lsn : u64 LE] [count : u32 LE]  -- header
     [Frame]*                                                -- count records

   [lsn] is the LSN the image covers up to (exclusive): replay resumes at
   a WAL whose base_lsn equals it.  The image is all-or-nothing — it is
   written to its device and synced *before* the WAL is truncated, and a
   reader rejects any image whose record count or framing does not verify,
   falling back to the WAL that still holds everything. *)

let magic = "PSNP0001"

let header_size = String.length magic + 8 + 4

type t = {
  lsn : int;
  entries : string list;
}

(* Replace the device's contents with a fresh image and sync it. *)
let write device ~lsn ~entries =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer magic;
  Frame.put_u64 buffer lsn;
  Frame.put_u32 buffer (List.length entries);
  List.iter (Frame.add buffer) entries;
  Device.truncate device 0;
  Device.append device (Buffer.contents buffer);
  Device.sync device

(* [Ok None] on an empty device (no checkpoint yet); [Error] on an image
   that does not verify end-to-end. *)
let read device =
  let image = Device.contents device in
  if image = "" then Ok None
  else if String.length image < header_size then Error "truncated snapshot header"
  else if String.sub image 0 (String.length magic) <> magic then Error "bad snapshot magic"
  else begin
    let lsn = Frame.get_u64 image (String.length magic) in
    let count = Frame.get_u32 image (String.length magic + 8) in
    if lsn < 0 then Error "implausible snapshot LSN"
    else begin
      let rec records acc pos remaining =
        if remaining = 0 then
          if pos = String.length image then Ok (List.rev acc)
          else Error "snapshot has trailing bytes"
        else
          match Frame.scan image ~pos with
          | Frame.Record { payload; next } -> records (payload :: acc) next (remaining - 1)
          | Frame.End -> Error "snapshot missing records"
          | Frame.Bad why -> Error (Printf.sprintf "snapshot record invalid: %s" why)
      in
      match records [] header_size count with
      | Ok entries -> Ok (Some { lsn; entries })
      | Error _ as e -> e
    end
  end
