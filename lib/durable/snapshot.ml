(* A compact point-in-time image of a store, written at a checkpoint so the
   WAL can be truncated:

     [magic "PSNP0002" : 8] [lsn : u64 LE] [chain : u64 LE] [count : u32 LE]
     [Frame]*                                              -- count records

   [lsn] is the LSN the image covers up to (exclusive): replay resumes at
   a WAL whose base_lsn equals it.  [chain] is the logical log's sealed
   hash-chain head at that LSN — an *opaque anchor*: the image's entries
   are a state snapshot, not the payload history (the quarantine's image
   re-encodes live state), so the head cannot be recomputed from them; it
   is carried verbatim so recovery can check the WAL's chain against it
   across the truncation boundary.

   The image frames themselves carry a mini-chain (from Chain.zero over
   the image entries in order), so an interior mutation of the image is
   caught the same way WAL tampering is.

   The image is all-or-nothing — it is written to its device and synced
   *before* the WAL is truncated, and a reader rejects any image whose
   record count, framing or mini-chain does not verify, falling back to
   the WAL that still holds everything. *)

let magic = "PSNP0002"

let header_size = String.length magic + 8 + 8 + 4

type t = {
  lsn : int;
  chain : int; (* the logical log's sealed chain head at [lsn] *)
  entries : string list;
}

(* Replace the device's contents with a fresh image and sync it. *)
let write device ~lsn ~chain ~entries =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer magic;
  Frame.put_u64 buffer lsn;
  Frame.put_u64 buffer chain;
  Frame.put_u32 buffer (List.length entries);
  let mini = ref Chain.zero in
  List.iter
    (fun entry ->
      mini := Chain.step !mini entry;
      Frame.add buffer ~chain:!mini entry)
    entries;
  Device.truncate device 0;
  Device.append device (Buffer.contents buffer);
  Device.sync device

(* [Ok None] on an empty device (no checkpoint yet); [Error] on an image
   that does not verify end-to-end. *)
let read device =
  let image = Device.contents device in
  if image = "" then Ok None
  else if String.length image < header_size then Error "truncated snapshot header"
  else if String.sub image 0 (String.length magic) <> magic then Error "bad snapshot magic"
  else begin
    (* same top-byte plausibility check as Wal.read_header: get_u64 would
       silently drop a set bit 63, and both fields are < 2^62 by
       construction *)
    let implausible pos = Char.code image.[pos + 7] land 0xc0 <> 0 in
    let lsn_pos = String.length magic in
    let lsn = Frame.get_u64 image lsn_pos in
    let chain = Frame.get_u64 image (lsn_pos + 8) in
    let count = Frame.get_u32 image (lsn_pos + 16) in
    if implausible lsn_pos then Error "implausible snapshot LSN"
    else if implausible (lsn_pos + 8) then Error "implausible snapshot chain"
    else begin
      let rec records acc mini pos remaining =
        if remaining = 0 then
          if pos = String.length image then Ok (List.rev acc)
          else Error "snapshot has trailing bytes"
        else
          match Frame.scan image ~pos with
          | Frame.Record { payload; kind = Frame.Data; chain = c; next } ->
            let mini = Chain.step mini payload in
            if c <> mini then Error "snapshot record breaks the image chain"
            else records (payload :: acc) mini next (remaining - 1)
          | Frame.Record { kind = Frame.Seal; _ } -> Error "seal frame inside snapshot image"
          | Frame.End -> Error "snapshot missing records"
          | Frame.Bad why -> Error (Printf.sprintf "snapshot record invalid: %s" why)
      in
      match records [] Chain.zero header_size count with
      | Ok entries -> Ok (Some { lsn; chain; entries })
      | Error _ as e -> e
    end
  end
