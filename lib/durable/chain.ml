(* The hash chain that makes the WAL tamper-evident.

   Every data frame carries [step prev payload]: an FNV-1a-style hash over
   the previous chain head (8 bytes LE) followed by the payload bytes, so
   the value at position [k] commits to the entire record history up to
   [k].  Flipping any bit of any earlier record — payload or header —
   changes every subsequent chain value, which is what lets recovery
   distinguish an interior mutation from a benign torn tail.

   Values are masked to 62 bits: they stay positive in a native OCaml int
   on 64-bit platforms and round-trip through the u64 header field
   unchanged.  This is an integrity check against accidental or casual
   tampering, matching the CRC threat model of the framing layer — not a
   cryptographic MAC; an adversary who can rewrite the whole suffix can
   recompute chains too.  What it guarantees is that no *prefix-preserving*
   mutation survives verification. *)

let mask = (1 lsl 62) - 1

(* FNV-1a 64-bit offset basis (pre-masked to 62 bits) and prime. *)
let basis = 0x0bf29ce484222325
let prime = 0x100000001b3

let zero = basis

(* One mix step over a 64-bit word.  x -> (x lxor w) * prime mod 2^62 is
   injective in each argument (prime is odd, hence invertible mod 2^62),
   so a single flipped bit anywhere in one word yields a different value
   at that step and every step after it. *)
let mix h word = (h lxor word) * prime land mask

(* Word-at-a-time fold: 8-byte little-endian words, then the zero-padded
   tail, then the length — mixing the length keeps "a" and "a\000"
   distinct despite the padding.  One multiply per word instead of one
   per byte keeps chain verification close to the cost of the CRC scan
   it rides on (the E12 bench gates the overhead at 15%). *)
let fold_string h s =
  let n = String.length s in
  let h = ref h in
  let i = ref 0 in
  while !i + 8 <= n do
    (* Int64.to_int wraps mod 2^63; fine, every mix masks back to 62 bits *)
    h := mix !h (Int64.to_int (String.get_int64_le s !i));
    i := !i + 8
  done;
  let tail = ref 0 in
  let shift = ref 0 in
  while !i < n do
    tail := !tail lor (Char.code (String.unsafe_get s !i) lsl !shift);
    shift := !shift + 8;
    incr i
  done;
  mix (mix !h !tail) n

let step prev payload = fold_string (mix basis prev) payload

(* A standalone hash of one string (no chaining): the per-record integrity
   hash of the provenance extension uses this. *)
let hash_string s = fold_string basis s

let to_hex n = Printf.sprintf "%016x" n

let of_hex s =
  if String.length s <> 16 then None
  else
    let rec go i acc =
      if i = 16 then Some (acc land mask)
      else
        match s.[i] with
        | '0' .. '9' as c -> go (i + 1) ((acc lsl 4) lor (Char.code c - Char.code '0'))
        | 'a' .. 'f' as c -> go (i + 1) ((acc lsl 4) lor (Char.code c - Char.code 'a' + 10))
        | _ -> None
    in
    go 0 0
