(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320): the checksum
   every WAL and snapshot record carries.  Detects all single-bit flips and
   all burst errors up to 32 bits, which covers the fault injector's
   corruption repertoire.  Values are 32-bit and therefore always fit a
   native OCaml int. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let update crc s ~pos ~len =
  let table = Lazy.force table in
  let crc = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code s.[i]) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let string s = update 0 s ~pos:0 ~len:(String.length s)

let strings parts = List.fold_left (fun crc s -> update crc s ~pos:0 ~len:(String.length s)) 0 parts
