(** A simulated storage device with injected crash points.

    Separates what a real disk separates: bytes written by the application
    ({!append}, into a volatile page cache) versus bytes on stable media
    ({!sync}).  {!crash} discards the volatile tail except for the damage
    its crash point leaves behind, driving recovery code through every
    state a power cut produces.  Damage decisions draw from a SplitMix
    stream seeded at {!create}, so crash schedules replay bit-for-bit. *)

type crash_point =
  | Clean_loss  (** the whole unsynced tail vanishes *)
  | Torn_tail  (** an arbitrary prefix of the unsynced bytes survives *)
  | Partial_header  (** the cut lands inside one record's header *)
  | Bit_flip  (** the unsynced tail survives, but one bit of it flipped *)
  | Truncated_sync  (** a truncation crashed mid-fsync: stable bytes lost *)

val all_crash_points : crash_point list
val crash_point_to_string : crash_point -> string

val crash_point_of_string : string -> crash_point option
(** Inverse of {!crash_point_to_string} — serialized chaos schedules
    round-trip through these names. *)

type t

val create : ?seed:int -> unit -> t
val of_string : ?seed:int -> string -> t
(** A device whose stable image is the given bytes (e.g. a loaded file). *)

val durable_size : t -> int
val unsynced : t -> int
val syncs : t -> int
val crashes : t -> int

val contents : t -> string
(** The stable image — what recovery after a crash gets to read. *)

val append : t -> string -> unit
(** Write into the page cache.  Each call is one write boundary, which
    [Partial_header] uses to cut inside a record header specifically. *)

val sync : t -> unit
(** fsync: move the volatile tail onto stable media. *)

val truncate : t -> int -> unit
(** Cut the stable image to [n] bytes, discarding the volatile tail (only
    issued by checkpointing code that already synced what it keeps). *)

val crash : t -> point:crash_point -> unit
(** Lose the volatile tail, minus the crash point's survivors. *)

val corrupt_stable : t -> pos:int -> bit:int -> unit
(** The tampering fault: flip bit [bit] of stable byte [pos] — damage in
    the region {!crash} can never touch.
    @raise Invalid_argument when [pos] is not durable or [bit] not 0–7. *)

val save : t -> string -> unit
(** Write the stable image to a real file. *)

val load : ?seed:int -> string -> t
(** Load a real file as the stable image of a fresh device. *)
