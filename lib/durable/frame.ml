(* Length-prefixed, checksummed, hash-chained record framing shared by the
   WAL and the snapshot image:

     [length : u32 LE] [crc32 : u32 LE] [kind : u8] [chain : u64 LE] [payload]

   The CRC covers the length bytes, the kind byte, the chain bytes *and*
   the payload, so a flipped length field fails verification even when the
   corrupted length happens to stay in bounds — and so does a flipped kind
   or chain field.

   [chain] is the hash-chain value of this record ([Chain.step] of the
   previous head and the payload for data records; the current head for
   seal records) — the scanner surfaces it and recovery re-derives the
   expected value, which is how interior mutations are caught even when a
   record's own CRC still verifies.

   [scan] distinguishes a clean end of log from a tail that cannot be
   verified — the distinction recovery reports. *)

let header_size = 4 + 4 + 1 + 8

(* Generous but bounded: a corrupted length field must not convince the
   scanner to allocate gigabytes. *)
let max_payload = 1 lsl 28

let put_u32 buffer n =
  for shift = 0 to 3 do
    Buffer.add_char buffer (Char.chr ((n lsr (8 * shift)) land 0xFF))
  done

let get_u32 s pos =
  let byte i = Char.code s.[pos + i] in
  byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

let put_u64 buffer n =
  for shift = 0 to 7 do
    Buffer.add_char buffer (Char.chr ((n lsr (8 * shift)) land 0xFF))
  done

let get_u64 s pos =
  let n = ref 0 in
  for i = 7 downto 0 do
    n := (!n lsl 8) lor Char.code s.[pos + i]
  done;
  !n

type kind =
  | Data (* a logical record; advances the LSN and the chain *)
  | Seal (* a sync marker carrying the chain head; advances neither *)

let kind_byte = function Data -> 0 | Seal -> 1

let length_bytes n =
  let buffer = Buffer.create 4 in
  put_u32 buffer n;
  Buffer.contents buffer

let trailer_bytes kind chain =
  let buffer = Buffer.create 9 in
  Buffer.add_char buffer (Char.chr (kind_byte kind));
  put_u64 buffer chain;
  Buffer.contents buffer

let add buffer ?(kind = Data) ~chain payload =
  let len = String.length payload in
  if len > max_payload then invalid_arg "Frame.add: payload too large";
  let len_bytes = length_bytes len in
  let trailer = trailer_bytes kind chain in
  Buffer.add_string buffer len_bytes;
  put_u32 buffer (Crc.strings [ len_bytes; trailer; payload ]);
  Buffer.add_string buffer trailer;
  Buffer.add_string buffer payload

let encode ?(kind = Data) ~chain payload =
  let buffer = Buffer.create (header_size + String.length payload) in
  add buffer ~kind ~chain payload;
  Buffer.contents buffer

type scan_result =
  | Record of { payload : string; kind : kind; chain : int; next : int }
  | End (* exactly at the end of the image: a clean boundary *)
  | Bad of string (* the remaining tail cannot be verified *)

let scan image ~pos =
  let n = String.length image in
  if pos = n then End
  else if pos + header_size > n then Bad "truncated record header"
  else begin
    let len = get_u32 image pos in
    if len > max_payload then Bad "implausible record length"
    else if pos + header_size + len > n then Bad "record extends past end of log"
    else begin
      let stored = get_u32 image (pos + 4) in
      let computed =
        Crc.update
          (Crc.update (Crc.update 0 image ~pos ~len:4) image ~pos:(pos + 8) ~len:9)
          image ~pos:(pos + header_size) ~len
      in
      if stored <> computed then Bad "record checksum mismatch"
      else begin
        let kind =
          match Char.code image.[pos + 8] with
          | 0 -> Some Data
          | 1 -> Some Seal
          | _ -> None
        in
        match kind with
        | None -> Bad "unknown record kind"
        | Some kind ->
          Record
            { payload = String.sub image (pos + header_size) len;
              kind;
              chain = get_u64 image (pos + 9);
              next = pos + header_size + len;
            }
      end
    end
  end
