(** The hash chain that makes the WAL tamper-evident.

    [step prev payload] hashes the previous chain head together with the
    payload, so the value at position [k] commits to the whole record
    history up to [k] and any prefix-preserving mutation is caught by
    re-verification.  Values fit in 62 bits (always positive, round-trip
    through a u64 header field).  Integrity-check strength — the threat
    model of the framing CRC, not a cryptographic MAC. *)

val zero : int
(** The chain head of an empty log. *)

val step : int -> string -> int
(** [step prev payload] — the chain value of the record holding
    [payload] appended under head [prev]. *)

val hash_string : string -> int
(** A standalone (unchained) hash of one string, for per-record integrity
    fields. *)

val to_hex : int -> string
(** 16 lowercase hex digits. *)

val of_hex : string -> int option
(** Inverse of {!to_hex}; [None] unless exactly 16 lowercase hex digits. *)
