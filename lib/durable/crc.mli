(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).

    The checksum every WAL and snapshot record carries.  Detects all
    single-bit flips and all burst errors up to 32 bits — the fault
    injector's corruption repertoire.  Results are 32-bit values in a
    native int. *)

val string : string -> int

val strings : string list -> int
(** CRC of the concatenation, without concatenating. *)

val update : int -> string -> pos:int -> len:int -> int
(** Extend a running checksum over a substring. *)
