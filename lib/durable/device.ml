(* A simulated storage device with injected crash points.

   The device separates what a real disk separates: bytes an application
   has written ([append], into the volatile page cache) versus bytes that
   have reached stable media ([sync]).  A [crash] discards the volatile
   tail — except for whatever damage the chosen crash point leaves behind —
   so recovery code can be driven through every ugly state a power cut
   produces: a torn tail record, a partial record header, a bit flip in
   the unsynced region, a truncation that died mid-fsync.

   Damage decisions draw from a SplitMix stream owned by the device (the
   seeded style of [Audit_mgmt.Fault]), so a crash schedule replays
   bit-for-bit from its seed.

   Every [append] call is remembered as one write boundary while it sits in
   the cache; [Partial_header] uses the boundaries to cut inside a record's
   header specifically, which is the classic "header landed, payload did
   not" torn write. *)

type crash_point =
  | Clean_loss (* the whole unsynced tail vanishes *)
  | Torn_tail (* an arbitrary prefix of the unsynced bytes survives *)
  | Partial_header (* the cut lands inside one record's header *)
  | Bit_flip (* the tail survives, but one bit of it flipped *)
  | Truncated_sync (* a truncation crashed mid-fsync: stable bytes lost *)

let all_crash_points = [ Clean_loss; Torn_tail; Partial_header; Bit_flip; Truncated_sync ]

let crash_point_to_string = function
  | Clean_loss -> "clean-loss"
  | Torn_tail -> "torn-tail"
  | Partial_header -> "partial-header"
  | Bit_flip -> "bit-flip"
  | Truncated_sync -> "truncated-sync"

let crash_point_of_string = function
  | "clean-loss" -> Some Clean_loss
  | "torn-tail" -> Some Torn_tail
  | "partial-header" -> Some Partial_header
  | "bit-flip" -> Some Bit_flip
  | "truncated-sync" -> Some Truncated_sync
  | _ -> None

type t = {
  mutable durable : Bytes.t; (* stable media *)
  mutable dlen : int;
  volatile : Buffer.t; (* written but not fsynced *)
  mutable marks : int list; (* volatile write-start offsets, newest first *)
  prng : Splitmix.t;
  mutable syncs : int;
  mutable crashes : int;
}

let create ?(seed = 0) () =
  { durable = Bytes.create 0;
    dlen = 0;
    volatile = Buffer.create 256;
    marks = [];
    prng = Splitmix.create ~seed;
    syncs = 0;
    crashes = 0;
  }

let of_string ?(seed = 0) image =
  let t = create ~seed () in
  t.durable <- Bytes.of_string image;
  t.dlen <- String.length image;
  t

let durable_size t = t.dlen

let unsynced t = Buffer.length t.volatile

let syncs t = t.syncs

let crashes t = t.crashes

let contents t = Bytes.sub_string t.durable 0 t.dlen

let append t s =
  t.marks <- Buffer.length t.volatile :: t.marks;
  Buffer.add_string t.volatile s

let ensure_capacity t extra =
  let needed = t.dlen + extra in
  if needed > Bytes.length t.durable then begin
    let capacity = max needed (max 256 (2 * Bytes.length t.durable)) in
    let grown = Bytes.create capacity in
    Bytes.blit t.durable 0 grown 0 t.dlen;
    t.durable <- grown
  end

let commit_bytes t s =
  ensure_capacity t (String.length s);
  Bytes.blit_string s 0 t.durable t.dlen (String.length s);
  t.dlen <- t.dlen + String.length s

let sync t =
  commit_bytes t (Buffer.contents t.volatile);
  Buffer.clear t.volatile;
  t.marks <- [];
  t.syncs <- t.syncs + 1

(* Cut the stable image to [n] bytes.  The volatile tail is discarded: a
   truncation is only issued by checkpointing code that has already synced
   everything it means to keep. *)
let truncate t n =
  Buffer.clear t.volatile;
  t.marks <- [];
  t.dlen <- min t.dlen (max 0 n);
  t.syncs <- t.syncs + 1

(* The survivor prefix of the volatile tail for each crash point. *)
let survivor t = function
  | Clean_loss | Truncated_sync -> ""
  | Torn_tail ->
    let tail = Buffer.contents t.volatile in
    if tail = "" then "" else String.sub tail 0 (Splitmix.int t.prng (String.length tail))
  | Partial_header ->
    let tail = Buffer.contents t.volatile in
    if tail = "" then ""
    else begin
      (* Pick one buffered write and keep strictly less of it than a frame
         header (8 bytes), so the scanner sees a header it cannot finish. *)
      let marks = Array.of_list (List.rev t.marks) in
      let w = Splitmix.int t.prng (Array.length marks) in
      let start = marks.(w) in
      let write_len =
        (if w + 1 < Array.length marks then marks.(w + 1) else String.length tail) - start
      in
      let keep = start + 1 + Splitmix.int t.prng (max 1 (min 7 (write_len - 1))) in
      String.sub tail 0 (min keep (String.length tail))
    end
  | Bit_flip ->
    let tail = Buffer.contents t.volatile in
    if tail = "" then ""
    else begin
      let damaged = Bytes.of_string tail in
      let pos = Splitmix.int t.prng (Bytes.length damaged) in
      let bit = Splitmix.int t.prng 8 in
      Bytes.set damaged pos (Char.chr (Char.code (Bytes.get damaged pos) lxor (1 lsl bit)));
      Bytes.to_string damaged
    end

let crash t ~point =
  let kept = survivor t point in
  (match point with
  | Truncated_sync ->
    (* The in-flight truncation died partway: the stable image itself ends
       at an arbitrary earlier byte. *)
    if t.dlen > 0 then t.dlen <- Splitmix.int t.prng (t.dlen + 1)
  | Clean_loss | Torn_tail | Partial_header | Bit_flip -> ());
  commit_bytes t kept;
  Buffer.clear t.volatile;
  t.marks <- [];
  t.crashes <- t.crashes + 1

(* The tampering fault: flip one bit of the *stable* image — bytes a sync
   already promised durable.  Unlike [crash], which only damages the
   unsynced tail, this is the mutation recovery must classify as
   [Tamper_detected] rather than a torn tail. *)
let corrupt_stable t ~pos ~bit =
  if pos < 0 || pos >= t.dlen then invalid_arg "Device.corrupt_stable: position not durable";
  if bit < 0 || bit > 7 then invalid_arg "Device.corrupt_stable: bit out of range";
  Bytes.set t.durable pos
    (Char.chr (Char.code (Bytes.get t.durable pos) lxor (1 lsl bit)))

(* Real-file interchange, for `prima recover` on WALs written by another
   process: only the stable image travels. *)
let save t path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (contents t))

let load ?seed path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string ?seed (really_input_string ic (in_channel_length ic)))
