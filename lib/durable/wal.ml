(* The write-ahead log: an append-only sequence of framed records behind a
   fixed header.

     [magic "PWAL0001" : 8 bytes] [base_lsn : u64 LE]  -- header
     [Frame]*                                          -- records

   LSNs are global record indexes: the record at LSN [l] is the [l]-th
   entry ever appended to the logical log, across snapshot truncations.
   [base_lsn] is the LSN of this file's first record — 0 for a virgin log,
   the snapshot's LSN after a checkpoint truncated the file.

   Appends go to the device's page cache; [sync] is the fsync point.  A
   record is durable only once synced — the crash-point suite is built on
   exactly that boundary. *)

let magic = "PWAL0001"

let header_size = String.length magic + 8

let header_bytes ~base_lsn =
  let buffer = Buffer.create header_size in
  Buffer.add_string buffer magic;
  Frame.put_u64 buffer base_lsn;
  Buffer.contents buffer

(* Parse the header of a stable image.  [Ok base_lsn] or why not. *)
let read_header image =
  if String.length image < header_size then Error "missing or truncated WAL header"
  else if String.sub image 0 (String.length magic) <> magic then Error "bad WAL magic"
  else begin
    let base_lsn = Frame.get_u64 image (String.length magic) in
    if base_lsn < 0 then Error "implausible WAL base LSN" else Ok base_lsn
  end

type t = {
  device : Device.t;
  base_lsn : int;
  mutable next_lsn : int;
}

(* Initialise (or re-initialise after a checkpoint) the device as an empty
   log starting at [base_lsn].  The header is synced immediately: an
   unreadable header is indistinguishable from data loss, so it is never
   left in the page cache. *)
let format device ~base_lsn =
  Device.truncate device 0;
  Device.append device (header_bytes ~base_lsn);
  Device.sync device;
  { device; base_lsn; next_lsn = base_lsn }

(* Adopt a device whose image recovery has already verified: the stable
   image is cut back to the verified prefix ([verified_bytes]) so the
   unverifiable tail can never resurface, and appends continue at the
   next LSN. *)
let reopen device ~base_lsn ~entries ~verified_bytes =
  Device.truncate device verified_bytes;
  { device; base_lsn; next_lsn = base_lsn + entries }

let device t = t.device
let base_lsn t = t.base_lsn
let next_lsn t = t.next_lsn

let append t payload =
  let lsn = t.next_lsn in
  Device.append t.device (Frame.encode payload);
  t.next_lsn <- lsn + 1;
  lsn

let sync t = Device.sync t.device
