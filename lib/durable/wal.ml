(* The write-ahead log: an append-only sequence of framed records behind a
   fixed header.

     [magic "PWAL0002" : 8 bytes] [base_lsn : u64 LE] [base_chain : u64 LE]
     [Frame]*

   LSNs are global record indexes: the record at LSN [l] is the [l]-th
   entry ever appended to the logical log, across snapshot truncations.
   [base_lsn] is the LSN of this file's first record — 0 for a virgin log,
   the snapshot's LSN after a checkpoint truncated the file.  [base_chain]
   is the hash-chain head the file's first record links from (Chain.zero
   for a virgin log, the snapshot's sealed head after a checkpoint), so a
   truncated WAL still anchors its chain to the full logical history.

   Appends go to the device's page cache; [sync] is the fsync point.  A
   record is durable only once synced — the crash-point suite is built on
   exactly that boundary.

   Tamper evidence: every data record carries its chain value, and every
   [sync] that flushed unsealed data appends a SEAL frame — a marker whose
   payload repeats the chain head and the next LSN.  Seals only ever reach
   stable media through a completed sync, which is what lets recovery tell
   a benign torn tail (damage with no valid seal after it) from interior
   tampering (damage *followed by* a seal we durably wrote). *)

let magic = "PWAL0002"

let header_size = String.length magic + 8 + 8

let header_bytes ~base_lsn ~base_chain =
  let buffer = Buffer.create header_size in
  Buffer.add_string buffer magic;
  Frame.put_u64 buffer base_lsn;
  Frame.put_u64 buffer base_chain;
  Buffer.contents buffer

(* Parse the header of a stable image.  [Ok (base_lsn, base_chain)] or why
   not. *)
let read_header image =
  if String.length image < header_size then Error "missing or truncated WAL header"
  else if String.sub image 0 (String.length magic) <> magic then Error "bad WAL magic"
  else begin
    (* [Frame.get_u64] folds 64 stored bits into a 63-bit OCaml int, so a
       set bit 63 would vanish silently — and both fields are < 2^62 by
       construction (the chain is 62-bit-masked, the LSN a record count).
       Reject a top byte with either high bit set instead of dropping it:
       the header has no CRC of its own, so this plausibility check is
       what turns a high-bit flip into detectable damage. *)
    let implausible pos = Char.code image.[pos + 7] land 0xc0 <> 0 in
    let lsn_pos = String.length magic in
    if implausible lsn_pos then Error "implausible WAL base LSN"
    else if implausible (lsn_pos + 8) then Error "implausible WAL base chain"
    else Ok (Frame.get_u64 image lsn_pos, Frame.get_u64 image (lsn_pos + 8))
  end

(* Seal payload: [magic "PSEAL001" : 8] [chain : u64 LE] [lsn : u64 LE].
   The magic is what recovery's resync scan greps the damaged suffix for. *)

let seal_magic = "PSEAL001"

let seal_payload_size = String.length seal_magic + 8 + 8

let seal_payload ~chain ~lsn =
  let buffer = Buffer.create seal_payload_size in
  Buffer.add_string buffer seal_magic;
  Frame.put_u64 buffer chain;
  Frame.put_u64 buffer lsn;
  Buffer.contents buffer

let read_seal_payload payload =
  if String.length payload <> seal_payload_size then None
  else if String.sub payload 0 (String.length seal_magic) <> seal_magic then None
  else
    Some
      ( Frame.get_u64 payload (String.length seal_magic),
        Frame.get_u64 payload (String.length seal_magic + 8) )

type t = {
  device : Device.t;
  base_lsn : int;
  mutable next_lsn : int;
  mutable chain : int; (* running hash-chain head over data records *)
  mutable unsealed : bool; (* data appended since the last seal frame *)
  (* Group commit: framed records accumulate here (user space, not even in
     the page cache) and reach the device as ONE write at the next [sync] —
     the batching a real WAL does to amortise the write syscall.  A crash
     loses the pending batch entirely, which is strictly safer than losing
     an arbitrary suffix of per-record writes: unsynced records carried no
     durability promise either way, and the stable prefix is untouched. *)
  mutable group_commit : bool;
  pending : Buffer.t;
  mutable pending_records : int;
}

(* Initialise (or re-initialise after a checkpoint) the device as an empty
   log starting at [base_lsn] under chain head [base_chain].  The header is
   synced immediately: an unreadable header is indistinguishable from data
   loss, so it is never left in the page cache. *)
let format device ~base_lsn ?(base_chain = Chain.zero) () =
  Device.truncate device 0;
  Device.append device (header_bytes ~base_lsn ~base_chain);
  Device.sync device;
  { device;
    base_lsn;
    next_lsn = base_lsn;
    chain = base_chain;
    unsealed = false;
    group_commit = false;
    pending = Buffer.create 256;
    pending_records = 0;
  }

(* Adopt a device whose image recovery has already verified: the stable
   image is cut back to the verified prefix ([verified_bytes]) so the
   unverifiable tail can never resurface, and appends continue at the next
   LSN under chain head [chain].  A prefix that does not end in a seal
   (the crash hit after data records synced but before/without their seal)
   is resealed immediately, so the durable image always ends sealed and a
   later mutation of any adopted record is classified as tampering, not a
   torn tail. *)
let reopen device ~base_lsn ~entries ~verified_bytes ~chain ~ends_sealed =
  Device.truncate device verified_bytes;
  let t =
    { device;
      base_lsn;
      next_lsn = base_lsn + entries;
      chain;
      unsealed = not ends_sealed;
      group_commit = false;
      pending = Buffer.create 256;
      pending_records = 0;
    }
  in
  if t.unsealed then begin
    Device.append device
      (Frame.encode ~kind:Frame.Seal ~chain:t.chain
         (seal_payload ~chain:t.chain ~lsn:t.next_lsn));
    Device.sync device;
    t.unsealed <- false
  end;
  t

let device t = t.device
let base_lsn t = t.base_lsn
let next_lsn t = t.next_lsn
let chain_head t = t.chain

let flush_pending t =
  if Buffer.length t.pending > 0 then begin
    Device.append t.device (Buffer.contents t.pending);
    Buffer.clear t.pending;
    t.pending_records <- 0
  end

let set_group_commit t on =
  if not on then flush_pending t;
  t.group_commit <- on

let group_commit t = t.group_commit
let pending_records t = t.pending_records

let append t payload =
  let lsn = t.next_lsn in
  let chain = Chain.step t.chain payload in
  (if t.group_commit then begin
     Buffer.add_string t.pending (Frame.encode ~chain payload);
     t.pending_records <- t.pending_records + 1
   end
   else Device.append t.device (Frame.encode ~chain payload));
  t.chain <- chain;
  t.unsealed <- true;
  t.next_lsn <- lsn + 1;
  lsn

let sync t =
  flush_pending t;
  if t.unsealed then begin
    Device.append t.device
      (Frame.encode ~kind:Frame.Seal ~chain:t.chain
         (seal_payload ~chain:t.chain ~lsn:t.next_lsn));
    t.unsealed <- false
  end;
  Device.sync t.device

(* The frame layout of a stable image: (offset, total length, kind) for
   every frame of the verified prefix, in order.  Test and chaos code uses
   this to aim a tampering fault at a specific accepted data record. *)
let frame_spans image =
  match read_header image with
  | Error _ -> []
  | Ok _ ->
    let rec go acc pos =
      match Frame.scan image ~pos with
      | Frame.Record { kind; next; _ } -> go ((pos, next - pos, kind) :: acc) next
      | Frame.End | Frame.Bad _ -> List.rev acc
    in
    go [] header_size
