(* The write-ahead log: an append-only sequence of framed records behind a
   fixed header.

     [magic "PWAL0001" : 8 bytes] [base_lsn : u64 LE]  -- header
     [Frame]*                                          -- records

   LSNs are global record indexes: the record at LSN [l] is the [l]-th
   entry ever appended to the logical log, across snapshot truncations.
   [base_lsn] is the LSN of this file's first record — 0 for a virgin log,
   the snapshot's LSN after a checkpoint truncated the file.

   Appends go to the device's page cache; [sync] is the fsync point.  A
   record is durable only once synced — the crash-point suite is built on
   exactly that boundary. *)

let magic = "PWAL0001"

let header_size = String.length magic + 8

let header_bytes ~base_lsn =
  let buffer = Buffer.create header_size in
  Buffer.add_string buffer magic;
  Frame.put_u64 buffer base_lsn;
  Buffer.contents buffer

(* Parse the header of a stable image.  [Ok base_lsn] or why not. *)
let read_header image =
  if String.length image < header_size then Error "missing or truncated WAL header"
  else if String.sub image 0 (String.length magic) <> magic then Error "bad WAL magic"
  else begin
    let base_lsn = Frame.get_u64 image (String.length magic) in
    if base_lsn < 0 then Error "implausible WAL base LSN" else Ok base_lsn
  end

type t = {
  device : Device.t;
  base_lsn : int;
  mutable next_lsn : int;
  (* Group commit: framed records accumulate here (user space, not even in
     the page cache) and reach the device as ONE write at the next [sync] —
     the batching a real WAL does to amortise the write syscall.  A crash
     loses the pending batch entirely, which is strictly safer than losing
     an arbitrary suffix of per-record writes: unsynced records carried no
     durability promise either way, and the stable prefix is untouched. *)
  mutable group_commit : bool;
  pending : Buffer.t;
  mutable pending_records : int;
}

(* Initialise (or re-initialise after a checkpoint) the device as an empty
   log starting at [base_lsn].  The header is synced immediately: an
   unreadable header is indistinguishable from data loss, so it is never
   left in the page cache. *)
let format device ~base_lsn =
  Device.truncate device 0;
  Device.append device (header_bytes ~base_lsn);
  Device.sync device;
  { device;
    base_lsn;
    next_lsn = base_lsn;
    group_commit = false;
    pending = Buffer.create 256;
    pending_records = 0;
  }

(* Adopt a device whose image recovery has already verified: the stable
   image is cut back to the verified prefix ([verified_bytes]) so the
   unverifiable tail can never resurface, and appends continue at the
   next LSN. *)
let reopen device ~base_lsn ~entries ~verified_bytes =
  Device.truncate device verified_bytes;
  { device;
    base_lsn;
    next_lsn = base_lsn + entries;
    group_commit = false;
    pending = Buffer.create 256;
    pending_records = 0;
  }

let device t = t.device
let base_lsn t = t.base_lsn
let next_lsn t = t.next_lsn

let flush_pending t =
  if Buffer.length t.pending > 0 then begin
    Device.append t.device (Buffer.contents t.pending);
    Buffer.clear t.pending;
    t.pending_records <- 0
  end

let set_group_commit t on =
  if not on then flush_pending t;
  t.group_commit <- on

let group_commit t = t.group_commit
let pending_records t = t.pending_records

let append t payload =
  let lsn = t.next_lsn in
  (if t.group_commit then begin
     Buffer.add_string t.pending (Frame.encode payload);
     t.pending_records <- t.pending_records + 1
   end
   else Device.append t.device (Frame.encode payload));
  t.next_lsn <- lsn + 1;
  lsn

let sync t =
  flush_pending t;
  Device.sync t.device
