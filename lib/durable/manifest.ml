(* The shard manifest: a small checksummed catalogue of the shards a
   sharded store is made of, written atomically at every durability point:

     [magic "PMAN0001" : 8] [Frame]        -- exactly one Data frame

   The single frame's payload is the whole catalogue —

     [count : u32 LE]
     ([name] [lo : u64] [hi : u64] [records : u64] [chain : u64]) x count

   with [name] length-prefixed (u32 LE).  One frame means one CRC and one
   chain value cover every descriptor: a torn write, a truncated tail or a
   flipped bit anywhere invalidates the whole image, and the reader
   reports it as unreadable rather than serving a half-catalogue.  That is
   the intended failure mode — a sharded store that cannot read its
   manifest rebuilds the catalogue by scanning the shards themselves,
   which remain individually recoverable.

   The frame's chain field carries [Chain.hash_string payload]: redundant
   with the CRC against random damage, but it keeps the manifest under the
   same integrity discipline as every other durable image. *)

let magic = "PMAN0001"

type shard = {
  name : string; (* owning site (or any shard key rendered as a string) *)
  lo : int; (* lowest timestamp the shard covers (inclusive) *)
  hi : int; (* highest timestamp the shard covers (inclusive) *)
  records : int; (* records durable in the shard when the manifest was written *)
  chain : int; (* the shard WAL's hash-chain head at that point *)
}

type t = { shards : shard list }

let empty = { shards = [] }

let add_str buffer s =
  Frame.put_u32 buffer (String.length s);
  Buffer.add_string buffer s

let encode_payload t =
  let buffer = Buffer.create 256 in
  Frame.put_u32 buffer (List.length t.shards);
  List.iter
    (fun s ->
      add_str buffer s.name;
      Frame.put_u64 buffer s.lo;
      Frame.put_u64 buffer s.hi;
      Frame.put_u64 buffer s.records;
      Frame.put_u64 buffer s.chain)
    t.shards;
  Buffer.contents buffer

let encode t =
  let payload = encode_payload t in
  magic ^ Frame.encode ~chain:(Chain.hash_string payload) payload

let decode_payload payload =
  let n = String.length payload in
  let pos = ref 0 in
  let ( let* ) = Option.bind in
  let u32 () =
    if !pos + 4 > n then None
    else begin
      let v = Frame.get_u32 payload !pos in
      pos := !pos + 4;
      if v < 0 then None else Some v
    end
  in
  let u64 () =
    if !pos + 8 > n then None
    else begin
      let v = Frame.get_u64 payload !pos in
      pos := !pos + 8;
      if v < 0 then None else Some v
    end
  in
  let str () =
    let* len = u32 () in
    if !pos + len > n then None
    else begin
      let v = String.sub payload !pos len in
      pos := !pos + len;
      Some v
    end
  in
  let* count = u32 () in
  let rec shards acc k =
    if k = 0 then if !pos = n then Some (List.rev acc) else None
    else
      let* name = str () in
      let* lo = u64 () in
      let* hi = u64 () in
      let* records = u64 () in
      let* chain = u64 () in
      shards ({ name; lo; hi; records; chain } :: acc) (k - 1)
  in
  let* shards = shards [] count in
  Some { shards }

let decode image =
  if String.length image < String.length magic then Error "truncated manifest header"
  else if String.sub image 0 (String.length magic) <> magic then Error "bad manifest magic"
  else
    match Frame.scan image ~pos:(String.length magic) with
    | Frame.End -> Error "manifest missing its catalogue frame"
    | Frame.Bad why -> Error (Printf.sprintf "manifest frame invalid: %s" why)
    | Frame.Record { kind = Frame.Seal; _ } -> Error "seal frame in manifest"
    | Frame.Record { payload; chain; next; kind = Frame.Data } ->
      if next <> String.length image then Error "manifest has trailing bytes"
      else if chain <> Chain.hash_string payload then Error "manifest chain mismatch"
      else (
        match decode_payload payload with
        | Some t -> Ok t
        | None -> Error "manifest catalogue does not decode")

(* Replace the device's contents with a fresh image and sync it — the
   manifest is rewritten whole at every durability point, never appended. *)
let write device t =
  Device.truncate device 0;
  Device.append device (encode t);
  Device.sync device

(* [Ok None] on an empty device (no manifest written yet); [Error] when
   the image does not verify — the caller falls back to scanning shards. *)
let read device =
  let image = Device.contents device in
  if image = "" then Ok None
  else match decode image with Ok t -> Ok (Some t) | Error _ as e -> e

let find t name = List.find_opt (fun s -> String.equal s.name name) t.shards

let pp_shard ppf s =
  Fmt.pf ppf "%s [%d, %d] %d record(s) chain %s" s.name s.lo s.hi s.records
    (Chain.to_hex s.chain)

let pp ppf t =
  Fmt.pf ppf "manifest of %d shard(s):@." (List.length t.shards);
  List.iter (fun s -> Fmt.pf ppf "  %a@." pp_shard s) t.shards
