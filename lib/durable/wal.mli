(** The write-ahead log: framed records behind a fixed header
    ([magic "PWAL0001"], [base_lsn : u64 LE]).

    LSNs are global record indexes across snapshot truncations; [base_lsn]
    is the LSN of the file's first record.  Appends land in the device's
    page cache; {!sync} is the fsync point — a record is durable only once
    synced. *)

val magic : string
val header_size : int

val read_header : string -> (int, string) result
(** The [base_lsn] of a stable image, or why it has no readable header. *)

type t

val format : Device.t -> base_lsn:int -> t
(** Initialise the device as an empty log at [base_lsn]; the header is
    synced immediately. *)

val reopen : Device.t -> base_lsn:int -> entries:int -> verified_bytes:int -> t
(** Adopt a recovered device: the stable image is truncated to the
    verified prefix so an unverifiable tail can never resurface, and
    appends continue at [base_lsn + entries]. *)

val device : t -> Device.t
val base_lsn : t -> int

val next_lsn : t -> int
(** The LSN the next {!append} will receive. *)

val append : t -> string -> int
(** Write one record into the page cache; returns its LSN.  Not durable
    until {!sync}. *)

val sync : t -> unit

(** {1 Group commit}

    With group commit on, {!append} accumulates framed records in a
    user-space batch instead of issuing one device write per record;
    {!sync} flushes the whole batch as {e one} device write before the
    fsync.  A crash loses the pending batch entirely — strictly within
    the existing contract, which promises nothing for unsynced records —
    and the verified-prefix recovery guarantee is unchanged. *)

val set_group_commit : t -> bool -> unit
(** Turning group commit {e off} flushes the pending batch into the page
    cache (without syncing). *)

val group_commit : t -> bool

val pending_records : t -> int
(** Records waiting in the group-commit batch (0 with group commit off). *)
