(** The write-ahead log: framed records behind a fixed header
    ([magic "PWAL0001"], [base_lsn : u64 LE]).

    LSNs are global record indexes across snapshot truncations; [base_lsn]
    is the LSN of the file's first record.  Appends land in the device's
    page cache; {!sync} is the fsync point — a record is durable only once
    synced. *)

val magic : string
val header_size : int

val read_header : string -> (int, string) result
(** The [base_lsn] of a stable image, or why it has no readable header. *)

type t

val format : Device.t -> base_lsn:int -> t
(** Initialise the device as an empty log at [base_lsn]; the header is
    synced immediately. *)

val reopen : Device.t -> base_lsn:int -> entries:int -> verified_bytes:int -> t
(** Adopt a recovered device: the stable image is truncated to the
    verified prefix so an unverifiable tail can never resurface, and
    appends continue at [base_lsn + entries]. *)

val device : t -> Device.t
val base_lsn : t -> int

val next_lsn : t -> int
(** The LSN the next {!append} will receive. *)

val append : t -> string -> int
(** Write one record into the page cache; returns its LSN.  Not durable
    until {!sync}. *)

val sync : t -> unit
