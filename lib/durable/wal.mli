(** The write-ahead log: framed records behind a fixed header
    ([magic "PWAL0002"], [base_lsn : u64 LE], [base_chain : u64 LE]).

    LSNs are global record indexes across snapshot truncations; [base_lsn]
    is the LSN of the file's first record and [base_chain] the hash-chain
    head it links from.  Appends land in the device's page cache; {!sync}
    is the fsync point — a record is durable only once synced.

    Tamper evidence: every data record carries its chain value, and every
    sync that flushed unsealed data appends a {e seal} frame repeating the
    chain head and next LSN.  Seals only reach stable media through a
    completed sync, which is how recovery tells a benign torn tail from
    interior tampering (damage followed by a durably written seal). *)

val magic : string
val header_size : int

val read_header : string -> (int * int, string) result
(** The [(base_lsn, base_chain)] of a stable image, or why it has no
    readable header. *)

val seal_magic : string
(** The 8-byte marker opening every seal frame's payload. *)

val seal_payload : chain:int -> lsn:int -> string
val read_seal_payload : string -> (int * int) option
(** [(chain, lsn)] of a well-formed seal payload. *)

type t

val format : Device.t -> base_lsn:int -> ?base_chain:int -> unit -> t
(** Initialise the device as an empty log at [base_lsn] under chain head
    [base_chain] (default {!Chain.zero}); the header is synced
    immediately. *)

val reopen :
  Device.t ->
  base_lsn:int ->
  entries:int ->
  verified_bytes:int ->
  chain:int ->
  ends_sealed:bool ->
  t
(** Adopt a recovered device: the stable image is truncated to the
    verified prefix so an unverifiable tail can never resurface, and
    appends continue at [base_lsn + entries] under chain head [chain].  A
    prefix not ending in a seal is resealed (and synced) immediately. *)

val device : t -> Device.t
val base_lsn : t -> int

val next_lsn : t -> int
(** The LSN the next {!append} will receive. *)

val chain_head : t -> int
(** The running hash-chain head over every data record appended so far. *)

val append : t -> string -> int
(** Write one record into the page cache; returns its LSN.  Not durable
    until {!sync}. *)

val sync : t -> unit
(** Flush, seal (when unsealed data records were flushed), fsync. *)

val frame_spans : string -> (int * int * Frame.kind) list
(** The [(offset, total length, kind)] of every verifiable frame of a
    stable image, in order — how tests and the chaos harness aim a
    tampering fault at a specific accepted record. *)

(** {1 Group commit}

    With group commit on, {!append} accumulates framed records in a
    user-space batch instead of issuing one device write per record;
    {!sync} flushes the whole batch as {e one} device write before the
    fsync.  A crash loses the pending batch entirely — strictly within
    the existing contract, which promises nothing for unsynced records —
    and the verified-prefix recovery guarantee is unchanged. *)

val set_group_commit : t -> bool -> unit
(** Turning group commit {e off} flushes the pending batch into the page
    cache (without syncing). *)

val group_commit : t -> bool

val pending_records : t -> int
(** Records waiting in the group-commit batch (0 with group commit off). *)
