(** The durable pair a store sits on: one WAL device and one snapshot
    device, with the open-or-recover and checkpoint protocols in one
    place.

    Checkpoint ordering: the snapshot image is written and synced {e
    before} the WAL is reformatted, so a crash anywhere in between loses
    no verified record and duplicates none (recovery skips the overlap). *)

type t

val create : ?seed:int -> unit -> t
(** A fresh in-memory pair; [seed] feeds the devices' crash-damage PRNGs. *)

val of_devices : wal:Device.t -> snapshot:Device.t -> t
(** Wrap existing devices — e.g. the surviving media of a "crashed"
    process, or images loaded from real files. *)

val wal_device : t -> Device.t
val snapshot_device : t -> Device.t

val open_or_recover : t -> Recovery.t
(** Run recovery over both devices, adopt the verified WAL prefix (or
    format a fresh WAL when the file is virgin or unusable), and return
    the report. *)

val append : t -> string -> int
(** Append one record, returning its LSN; opens the log first if nobody
    did.  Not durable until {!sync}. *)

val sync : t -> unit
val next_lsn : t -> int

val checkpoint : t -> entries:string list -> unit
(** Sync, write [entries] as the new snapshot image, then truncate the
    WAL to empty at the snapshot's LSN. *)
