(** The durable pair a store sits on: one WAL device and one snapshot
    device, with the open-or-recover and checkpoint protocols in one
    place.

    Checkpoint ordering: the snapshot image is written and synced {e
    before} the WAL is reformatted, so a crash anywhere in between loses
    no verified record and duplicates none (recovery skips the overlap). *)

type t

val create : ?seed:int -> unit -> t
(** A fresh in-memory pair; [seed] feeds the devices' crash-damage PRNGs. *)

val of_devices : wal:Device.t -> snapshot:Device.t -> t
(** Wrap existing devices — e.g. the surviving media of a "crashed"
    process, or images loaded from real files. *)

val wal_device : t -> Device.t
val snapshot_device : t -> Device.t

val open_or_recover : t -> Recovery.t
(** Run recovery over both devices, adopt the verified WAL prefix (or
    format a fresh WAL when the file is virgin or unusable), and return
    the report. *)

val append : t -> string -> int
(** Append one record, returning its LSN; opens the log first if nobody
    did.  Not durable until {!sync}.  With an auto-checkpoint policy
    registered, the log may compact itself first — the trigger is checked
    {e before} the new record is written, so the image callback sees
    exactly the state the WAL covers (callers log first, then update
    memory). *)

val sync : t -> unit
val next_lsn : t -> int

val chain_head : t -> int
(** The running hash-chain head of the logical log (see {!Chain}). *)

val set_group_commit : t -> bool -> unit
(** Group-commit batching: appends accumulate in a user-space batch and
    reach the device as one write at the next {!sync} (or {!checkpoint},
    which syncs first).  Survives WAL replacement on recovery and
    checkpoint.  A crash loses the pending batch entirely — within the
    existing contract (unsynced records carry no durability promise), and
    the verified-prefix recovery guarantee is unchanged.  Turning it off
    flushes the batch into the page cache. *)

val group_commit : t -> bool

val pending_records : t -> int
(** Records waiting in the group-commit batch (0 with it off). *)

val checkpoint : t -> entries:string list -> unit
(** Sync, write [entries] as the new snapshot image, then truncate the
    WAL to empty at the snapshot's LSN. *)

(** {1 Background checkpointing} *)

type checkpoint_policy = {
  max_records : int option;  (** checkpoint once the WAL holds this many records *)
  max_bytes : int option;  (** … or roughly this many bytes *)
}

val checkpoint_every : ?records:int -> ?bytes:int -> unit -> checkpoint_policy

val set_auto_checkpoint : t -> checkpoint_policy -> (unit -> string list) -> unit
(** Register a policy and an image callback; when an {!append} finds the
    WAL over a threshold, the log checkpoints itself with the callback's
    image before admitting the new record.  The callback must return the
    full state the WAL currently covers — for a write-ahead store, its
    in-memory contents at call time. *)

val clear_auto_checkpoint : t -> unit

val auto_checkpoints : t -> int
(** How many policy-triggered checkpoints have fired on this log. *)
