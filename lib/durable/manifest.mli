(** The shard manifest: a checksummed catalogue of the shards a sharded
    store is made of, written atomically (whole-image replace + sync) at
    every durability point.

    The catalogue is one {!Frame}-checksummed record: a torn write, a
    truncated tail or a flipped bit anywhere makes the whole manifest
    unreadable, and {!read} reports it as such instead of serving a
    half-catalogue — the store then rebuilds the catalogue by scanning
    the shards themselves, which remain individually recoverable. *)

type shard = {
  name : string;  (** owning site (or any shard key rendered as a string) *)
  lo : int;  (** lowest timestamp the shard covers (inclusive) *)
  hi : int;  (** highest timestamp the shard covers (inclusive) *)
  records : int;  (** records durable in the shard at manifest-write time *)
  chain : int;  (** the shard WAL's hash-chain head at that point *)
}

type t = { shards : shard list }

val empty : t

val encode : t -> string
(** The full device image: magic + one checksummed catalogue frame. *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; [Error] on any framing, checksum, chain or
    codec damage. *)

val write : Device.t -> t -> unit
(** Replace the device's contents with a fresh image and sync it. *)

val read : Device.t -> (t option, string) result
(** [Ok None] on an empty device (no manifest yet); [Error] when the
    image does not verify — fall back to scanning the shards. *)

val find : t -> string -> shard option

val pp_shard : Format.formatter -> shard -> unit
val pp : Format.formatter -> t -> unit
