(* SplitMix64: a tiny, fast, high-quality deterministic PRNG.  Experiments
   must be reproducible bit-for-bit across runs and machines, so the
   generator never touches the stdlib's global Random state. *)

type t = {
  mutable state : int64;
}

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, bound).  The shift by 2 keeps 62 bits, which always fits
   positively in OCaml's 63-bit native int. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

(* Uniform in [0, 1). *)
let float t =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  raw /. 9007199254740992.0 (* 2^53 *)

let bool t ~probability = float t < probability

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

(* Pick with integer weights. *)
let pick_weighted t pairs =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 pairs in
  if total <= 0 then invalid_arg "Prng.pick_weighted: weights must sum to > 0";
  let target = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Prng.pick_weighted: unreachable"
    | (x, w) :: rest -> if target < acc + w then x else go (acc + w) rest
  in
  go 0 pairs

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
