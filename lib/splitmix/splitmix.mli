(** SplitMix64: a tiny, fast, high-quality deterministic PRNG.

    Experiments must be reproducible bit-for-bit across runs and machines,
    so the generator never touches the stdlib's global [Random] state. *)

type t

val create : seed:int -> t
val copy : t -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [0, bound).
    @raise Invalid_argument when the bound is not positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> probability:float -> bool

val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on the empty list. *)

val pick_weighted : t -> ('a * int) list -> 'a
(** Integer-weighted choice.
    @raise Invalid_argument when weights sum to 0 or less. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates. *)
