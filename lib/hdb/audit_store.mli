(** Storage-efficient audit log — the "minimal impact, storage and
    performance efficient logs" of HDB Compliance Auditing.

    Columnar layout: times in an int vector; user/data/purpose/authorized
    dictionary-encoded (audit logs repeat a small set of strings
    endlessly); op and status bit-packed.  {!naive_bytes} and
    {!encoded_bytes} feed the storage-efficiency experiment (E6). *)

type t

val create : unit -> t
val length : t -> int
val append : t -> Audit_schema.entry -> unit

val get : t -> int -> Audit_schema.entry
(** @raise Invalid_argument when out of bounds. *)

val iter : (Audit_schema.entry -> unit) -> t -> unit
val fold : ('acc -> Audit_schema.entry -> 'acc) -> 'acc -> t -> 'acc
val to_list : t -> Audit_schema.entry list
val append_all : t -> Audit_schema.entry list -> unit
val of_entries : Audit_schema.entry list -> t

(** {2 Durability}

    A store may sit on a {!Durable.Log.t}: every {!append} is then framed
    into the write-ahead log {e before} the columns are touched, so the
    recovered WAL prefix is always a prefix of what the store held.
    Appends are durable once {!sync}ed; {!checkpoint} compacts the log
    into a snapshot image. *)

val attach_log : t -> Durable.Log.t -> unit
(** Future appends are write-ahead logged.  Entries already in the store
    are {e not} retro-logged — attach at creation or via {!restore}. *)

val log : t -> Durable.Log.t option

val lsn : t -> int
(** LSN the next append will receive ([base + length]); equals {!length}
    for a store with no log. *)

val sync : t -> unit
(** fsync the attached log (no-op without one). *)

val checkpoint : t -> unit
(** Write the whole store as a snapshot image and truncate the WAL. *)

val enable_auto_checkpoint : ?policy:Durable.Log.checkpoint_policy -> t -> unit
(** Register a background-compaction policy (default: every 1024 WAL
    records) on the attached log; no-op without one.  The log then
    checkpoints itself mid-append once over a threshold — safe because
    appends are write-ahead, so the image taken at trigger time is exactly
    the state the WAL covers. *)

val restore : t -> Durable.Log.t -> Durable.Recovery.t * int
(** Open-or-recover [log], replay the verified entries into [t] (assumed
    fresh), attach the log, and return the recovery report plus the count
    of payloads that no longer decode (0 unless the codec changed). *)

val open_durable : Durable.Log.t -> t * Durable.Recovery.t * int
(** [create] + {!restore}. *)

val naive_bytes : t -> int
(** Estimated size of the flat row-store equivalent (strings inline). *)

val encoded_bytes : t -> int
(** Estimated size of this encoded representation (id vectors + packed
    bits + dictionaries). *)

val to_table : t -> database:Relational.Database.t -> table_name:string -> Relational.Table.t
(** Exports into a relational table (truncating any previous export), for
    SQL analysis over the log. *)
