(* The Compliance Auditing entry schema of Section 4.2:

     {(time,t), (op,X), (user,u), (data,d), (purpose,p), (authorized,a),
      (status,s)}

   op: 0 = disallow, 1 = allow.  status: 0 = exception-based access (the
   user manually entered the purpose — Break The Glass), 1 = regular. *)

type op =
  | Disallow
  | Allow

type status =
  | Exception_based
  | Regular

type entry = {
  time : int;
  op : op;
  user : string;
  data : string;
  purpose : string;
  authorized : string;
  status : status;
}

let entry ~time ~op ~user ~data ~purpose ~authorized ~status =
  { time; op; user; data; purpose; authorized; status }

let op_to_int = function Disallow -> 0 | Allow -> 1

let op_of_int = function
  | 0 -> Disallow
  | 1 -> Allow
  | n -> invalid_arg (Printf.sprintf "Audit_schema.op_of_int: %d" n)

let status_to_int = function Exception_based -> 0 | Regular -> 1

let status_of_int = function
  | 0 -> Exception_based
  | 1 -> Regular
  | n -> invalid_arg (Printf.sprintf "Audit_schema.status_of_int: %d" n)

let attr_time = Vocabulary.Audit_attrs.time
let attr_op = Vocabulary.Audit_attrs.op
let attr_user = Vocabulary.Audit_attrs.user
let attr_data = Vocabulary.Audit_attrs.data
let attr_purpose = Vocabulary.Audit_attrs.purpose
let attr_authorized = Vocabulary.Audit_attrs.authorized
let attr_status = Vocabulary.Audit_attrs.status

(* Attribute order of the schema in the paper. *)
let attributes =
  [ attr_time; attr_op; attr_user; attr_data; attr_purpose; attr_authorized; attr_status ]

(* The A default of Algorithm 4: the projection the SQL analysis groups by. *)
let pattern_attributes = [ attr_data; attr_purpose; attr_authorized ]

let relational_columns =
  [ (attr_time, Relational.Value.T_int);
    (attr_op, Relational.Value.T_int);
    (attr_user, Relational.Value.T_string);
    (attr_data, Relational.Value.T_string);
    (attr_purpose, Relational.Value.T_string);
    (attr_authorized, Relational.Value.T_string);
    (attr_status, Relational.Value.T_int);
  ]

let relational_schema () =
  Relational.Schema.of_list
    (List.map (fun (n, ty) -> Relational.Schema.column n ty) relational_columns)

let to_row e : Relational.Row.t =
  [| Relational.Value.Int e.time;
     Relational.Value.Int (op_to_int e.op);
     Relational.Value.Str e.user;
     Relational.Value.Str e.data;
     Relational.Value.Str e.purpose;
     Relational.Value.Str e.authorized;
     Relational.Value.Int (status_to_int e.status);
  |]

let of_row (row : Relational.Row.t) : entry =
  let open Relational in
  let int_at i =
    match Value.as_int (Row.get row i) with
    | Some v -> v
    | None -> invalid_arg "Audit_schema.of_row: expected integer"
  in
  let str_at i =
    match Value.as_string (Row.get row i) with
    | Some v -> v
    | None -> invalid_arg "Audit_schema.of_row: expected string"
  in
  { time = int_at 0;
    op = op_of_int (int_at 1);
    user = str_at 2;
    data = str_at 3;
    purpose = str_at 4;
    authorized = str_at 5;
    status = status_of_int (int_at 6);
  }

(* Association-list view: the entry as the paper's rule of seven RuleTerms. *)
let to_assoc e =
  [ (attr_time, string_of_int e.time);
    (attr_op, string_of_int (op_to_int e.op));
    (attr_user, e.user);
    (attr_data, e.data);
    (attr_purpose, e.purpose);
    (attr_authorized, e.authorized);
    (attr_status, string_of_int (status_to_int e.status));
  ]

(* Binary wire codec for durable storage (the WAL payload format).  CSV is
   the human interchange; the WAL needs something that round-trips any
   byte sequence a corrupted upstream might have handed us, so fields are
   length-prefixed rather than delimited:

     [op : 1] [status : 1] ([len : u16 LE] [bytes]) x5
                            for time (decimal), user, data, purpose, authorized *)

let add_field buffer s =
  let len = String.length s in
  if len > 0xFFFF then invalid_arg "Audit_schema.to_wire: field longer than 65535 bytes";
  Buffer.add_char buffer (Char.chr (len land 0xFF));
  Buffer.add_char buffer (Char.chr (len lsr 8));
  Buffer.add_string buffer s

let to_wire e =
  let buffer = Buffer.create 64 in
  Buffer.add_char buffer (Char.chr (op_to_int e.op));
  Buffer.add_char buffer (Char.chr (status_to_int e.status));
  add_field buffer (string_of_int e.time);
  add_field buffer e.user;
  add_field buffer e.data;
  add_field buffer e.purpose;
  add_field buffer e.authorized;
  Buffer.contents buffer

(* Total parser: a WAL payload has already passed its CRC, so a [None]
   here means a codec mismatch, not bit rot — the caller decides whether
   that is fatal. *)
let of_wire s =
  let n = String.length s in
  let pos = ref 0 in
  let byte () =
    if !pos >= n then None
    else begin
      let b = Char.code s.[!pos] in
      incr pos;
      Some b
    end
  in
  let field () =
    if !pos + 2 > n then None
    else begin
      let len = Char.code s.[!pos] lor (Char.code s.[!pos + 1] lsl 8) in
      pos := !pos + 2;
      if !pos + len > n then None
      else begin
        let f = String.sub s !pos len in
        pos := !pos + len;
        Some f
      end
    end
  in
  let ( let* ) = Option.bind in
  let* op = byte () in
  let* status = byte () in
  let* time = field () in
  let* user = field () in
  let* data = field () in
  let* purpose = field () in
  let* authorized = field () in
  let* time = int_of_string_opt time in
  if !pos <> n || op > 1 || status > 1 then None
  else
    Some
      { time;
        op = op_of_int op;
        user;
        data;
        purpose;
        authorized;
        status = status_of_int status;
      }

let equal (a : entry) (b : entry) = a = b

let pp ppf e =
  Fmt.pf ppf "t%d %s %s data=%s purpose=%s authorized=%s %s" e.time
    (match e.op with Allow -> "allow" | Disallow -> "disallow")
    e.user e.data e.purpose e.authorized
    (match e.status with Regular -> "regular" | Exception_based -> "exception")
